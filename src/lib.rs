//! systrace: a full reproduction of *Software Methods for System
//! Address Tracing* (Chen, Wall & Borg; HOTOS '93 / WRL 94/6).
//!
//! This facade crate re-exports the whole stack and provides the
//! [`harness`] that runs the paper's measured-vs-predicted validation
//! methodology end to end:
//!
//! * [`isa`] — the W3K (MIPS-I-like) instruction set, assembler,
//!   object format and linker;
//! * [`machine`] — the DECstation-5000/200-style whole-machine
//!   simulator with hardware event counters (the "measured" side);
//! * [`epoxie`] — the link-time instrumenter, its bbtrace/memtrace
//!   runtime, and the pixie baseline;
//! * [`trace`] — the one-word-per-entry trace format, static
//!   basic-block tables and the parsing library;
//! * [`kernel`] — the Ultrix-like and Mach-like operating systems,
//!   written in W3K assembly, with the in-kernel trace-control
//!   subsystem;
//! * [`memsim`] — the trace-driven memory-system simulator and the
//!   §5.1 execution-time predictor (the "predicted" side);
//! * [`workloads`] — the twelve Table-1 workloads;
//! * [`store`] — the compressed, seekable trace store (archive v2)
//!   and the parallel replay farm;
//! * [`tracer`] — the composable analysis-sink framework: N analyses
//!   fed from one decode+parse pass over a run, an archive or the
//!   replay farm;
//! * [`fault`] — seeded deterministic fault injection and the chaos
//!   campaign classifying every injected fault detected / harmless /
//!   absorbed (never forbidden);
//! * [`obs`] — the `wrl-obs` metrics facade (registry, exports and
//!   [`obs::register_all`]; see `docs/METRICS.md`).

pub use wrl_epoxie as epoxie;
pub use wrl_fabric as fabric;
pub use wrl_fault as fault;
pub use wrl_isa as isa;
pub use wrl_kernel as kernel;
pub use wrl_machine as machine;
pub use wrl_memsim as memsim;
pub use wrl_serve as serve;
pub use wrl_store as store;
pub use wrl_trace as trace;
pub use wrl_tracer as tracer;
pub use wrl_workloads as workloads;

pub mod harness;
pub mod obs;

pub use harness::{
    pixie_arith_stalls, predict_from_run, run_analyzed, run_measured, run_predicted,
    run_predicted_live, run_predicted_metered, run_predicted_streaming,
    run_predicted_streaming_hooked, run_predicted_streaming_metered, validate, AnalyzeCfg,
    AnalyzedRun, HarnessObs, Measured, Predicted, ValidationRow,
};
