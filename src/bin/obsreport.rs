//! obsreport: run the metered validation pipeline and export metrics.
//!
//! ```text
//! obsreport [workload] [ultrix|mach] [out.json]
//! ```
//!
//! Runs the batch *and* streaming metered predictors for one workload
//! (default `sed` on Ultrix), asserts they agree, writes the full
//! `wrl-obs` registry as `wrl-obs-metrics/v1` JSON (default
//! `results/metrics-<workload>-<os>.json`) and prints the
//! human-readable table.
//!
//! The streaming pass uses a *fixed* pipeline shape (2 workers, 4096
//! words per chunk, depth 2, 8192 events per batch) rather than
//! auto-detecting parallelism, so every counter in the emitted JSON is
//! reproducible across hosts — `tests/metrics_pinned.rs` pins the
//! committed file against a fresh run.

use systrace::kernel::KernelConfig;
use systrace::obs;
use systrace::trace::PipelineCfg;
use systrace::{pixie_arith_stalls, run_predicted_metered, run_predicted_streaming_metered};

/// The reproducible pipeline shape used for exported metrics.
pub const REPORT_PCFG: PipelineCfg = PipelineCfg {
    chunk_words: 4096,
    depth: 2,
    workers: 2,
    batch_events: 8192,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("sed");
    let os = args.get(1).map(String::as_str).unwrap_or("ultrix");
    let default_out = format!("results/metrics-{workload}-{os}.json");
    let out = args.get(2).map(String::as_str).unwrap_or(&default_out);

    let w = systrace::workloads::by_name(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload}");
        std::process::exit(2);
    });
    let cfg = match os {
        "ultrix" => KernelConfig::ultrix().traced(),
        "mach" => KernelConfig::mach().traced(),
        _ => {
            eprintln!("unknown os {os} (want ultrix|mach)");
            std::process::exit(2);
        }
    };

    obs::register_all();
    obs::global().reset();

    let arith = pixie_arith_stalls(&w);
    let batch = run_predicted_metered(&cfg, &w, arith);
    let streaming = run_predicted_streaming_metered(&cfg, &w, arith, REPORT_PCFG);
    assert_eq!(
        batch.prediction, streaming.prediction,
        "batch and streaming predictions must agree"
    );
    assert_eq!(batch.utlb_misses, streaming.utlb_misses);
    assert_eq!(batch.parse_errors, 0, "healthy system expected");

    let snap = obs::global().snapshot();
    let json = snap.to_json(&[
        ("workload", workload),
        ("os", os),
        ("generator", "obsreport"),
    ]);
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(out, &json).expect("write metrics json");

    println!("{}", snap.render());
    println!(
        "predicted {:.4}s (batch == streaming), {} trace words, wrote {out}",
        batch.seconds, batch.trace_words
    );
}
