//! tracedump: record, inspect and re-analyse system trace archives.
//!
//! ```text
//! tracedump record <workload> <ultrix|mach> <out.w3kt>   collect a system trace
//! tracedump info   <file.w3kt>                           summarise an archive (any version)
//! tracedump refs   <file.w3kt> [n]                       print the first n references
//! tracedump sim    <file.w3kt>                           run the memory-system simulation
//! tracedump metrics <file.w3kt> [out.json]               re-analyse and dump wrl-obs metrics
//! tracedump compress <in.w3kt> <out.w3kt> [block_words] [--format v3|v4]
//!                                                        write a compressed block store
//! tracedump serve  <addr> <file.w3kt>...                 serve archives over wrl-wire/v1
//! tracedump catalog <addr>                               list a server's archives
//! tracedump fetch  <addr> <archive> [--asid A] [--window LO..HI]
//!                                                        run a windowed query server-side
//! tracedump live   <addr> <workload> <ultrix|mach>       run a traced machine, serving its live feed
//! tracedump tail   <addr> <feed> [--asid A] [--window LO..HI] [--from-start]
//!                                                        follow a live feed's filtered tail
//! tracedump analyze <file.w3kt> <sinks> [--workers N] [--per-worker-parse]
//!                                                        run a composed sink stack in one pass
//! tracedump analyze <addr> <archive> <sinks> --tables <file.w3kt> [--asid A] [--window LO..HI]
//!                                                        same, over a remote node's word stream
//! tracedump shard  <in.w3kt> <out_dir> <n> [--plan block_range|asid_hash]
//!                                                        split a store into shard archives + manifest
//! tracedump fabric <addr> <manifest> <ep[,ep...]>...     coordinate shards behind one endpoint
//! tracedump shards <addr>                                list a coordinator's shard table
//! ```
//!
//! Every reading subcommand accepts all archive versions: raw v1
//! archives and compressed, block-indexed v2/v3/v4 stores
//! (`wrl-store`). `compress --format v4` writes the columnar layout
//! (per-class columns, per-ASID zonemaps) and `info` reports its
//! per-column byte split.
//! The `serve` / `catalog` / `fetch` trio is the `wrl-serve` client
//! and server surface: `serve` publishes archives (named by file
//! stem) on a TCP address, and `fetch` ships only the trace words the
//! predicate admits — blocks the index rules out are never decoded.
//! The `live` / `tail` pair is the on-the-fly half: `live` runs the
//! traced machine *while serving*, publishing each drained trace
//! buffer to a live feed named after the workload (and keeps serving
//! after the run so late tails replay the whole feed); `tail`
//! subscribes with the same predicate flags as `fetch` and streams
//! the filtered events until the end-of-feed marker, exiting 0.
//! `analyze` is the `wrl-tracer` surface: a comma-separated sink
//! spec (`cache:65536:2,tlb,dilation,pagemap,defense,sampled:64k,
//! wset:4096,phase:4096:0.5`) builds a composed stack fed from one
//! decode+parse pass — sequentially (the default, and forced when a
//! sink wants raw-word hooks) or over the replay farm with
//! `--workers`. The remote form ships only the predicate-admitted
//! word stream from a `serve`/`fabric` node; the static basic-block
//! tables are read from a locally-held archive (`--tables`), the
//! same split as debug symbols vs a core file.
//! The `shard` / `fabric` / `shards` trio scales that surface out
//! (`wrl-fabric`): `shard` splits a store into per-shard archives
//! (each a stock `W3KTRACE` file any `serve` node can publish) plus a
//! CRC-sealed `W3KSHARD` manifest, and `fabric` fronts those nodes
//! with a coordinator speaking the same wire protocol — `catalog` and
//! `fetch` against it look exactly like a single node holding the
//! whole archive. Each `fabric` endpoint argument lists one shard's
//! nodes, comma-separated, primary first; the extras are failover
//! replicas. `info` on a `.manifest` file prints the shard table.

use std::sync::Arc;
use systrace::fabric::{split_store, Coordinator, FabricCfg, Manifest, PlanKind, MANIFEST_MAGIC};
use systrace::kernel::{build_system, KernelConfig};
use systrace::memsim::{MemSim, PageMap, Policy, SimCfg, UtlbSynth};
use systrace::serve::{Catalog, Client, ClientCfg, ServeCfg, Server, TailItem};
use systrace::store::{BlockFormat, FarmCfg, Predicate, StoreObs, TraceStore, DEFAULT_BLOCK_WORDS};
use systrace::trace::{Space, TraceArchive, TraceSink};
use systrace::tracer::{analyze_store, analyze_words, build_stack, TracerObs};

fn usage() -> ! {
    eprintln!("usage: tracedump record <workload> <ultrix|mach> <out.w3kt>");
    eprintln!("       tracedump info <file.w3kt>");
    eprintln!("       tracedump refs <file.w3kt> [n]");
    eprintln!("       tracedump sim <file.w3kt>");
    eprintln!("       tracedump metrics <file.w3kt> [out.json]");
    eprintln!("       tracedump compress <in.w3kt> <out.w3kt> [block_words] [--format v3|v4]");
    eprintln!("       tracedump serve <addr> <file.w3kt>...");
    eprintln!("       tracedump catalog <addr>");
    eprintln!("       tracedump fetch <addr> <archive> [--asid A] [--window LO..HI]");
    eprintln!("       tracedump live <addr> <workload> <ultrix|mach>");
    eprintln!("       tracedump tail <addr> <feed> [--asid A] [--window LO..HI] [--from-start]");
    eprintln!("       tracedump analyze <file.w3kt> <sinks> [--workers N] [--per-worker-parse]");
    eprintln!(
        "       tracedump analyze <addr> <archive> <sinks> --tables <file.w3kt> [--asid A] [--window LO..HI]"
    );
    eprintln!("       tracedump shard <in.w3kt> <out_dir> <n> [--plan block_range|asid_hash]");
    eprintln!("       tracedump fabric <addr> <manifest> <ep[,ep...]>...");
    eprintln!("       tracedump shards <addr>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") if args.len() == 4 => record(&args[1], &args[2], &args[3]),
        Some("info") if args.len() == 2 => info(&args[1]),
        Some("refs") => refs(
            args.get(1).unwrap_or_else(|| usage()),
            args.get(2).and_then(|s| s.parse().ok()).unwrap_or(30),
        ),
        Some("sim") if args.len() == 2 => sim(&args[1]),
        Some("metrics") if args.len() == 2 || args.len() == 3 => {
            metrics(&args[1], args.get(2).map(String::as_str))
        }
        Some("compress") if args.len() >= 3 => {
            let mut block_words = DEFAULT_BLOCK_WORDS;
            let mut format = BlockFormat::Row;
            let mut it = args[3..].iter();
            while let Some(opt) = it.next() {
                match opt.as_str() {
                    "--format" => {
                        format = match it.next().map(String::as_str) {
                            Some("v3") => BlockFormat::Row,
                            Some("v4") => BlockFormat::Columnar,
                            _ => usage(),
                        }
                    }
                    s => block_words = s.parse().unwrap_or_else(|_| usage()),
                }
            }
            compress(&args[1], &args[2], block_words, format)
        }
        Some("serve") if args.len() >= 3 => serve(&args[1], &args[2..]),
        Some("catalog") if args.len() == 2 => catalog(&args[1]),
        Some("fetch") if args.len() >= 3 => fetch(&args[1], &args[2], &args[3..]),
        Some("live") if args.len() == 4 => live(&args[1], &args[2], &args[3]),
        Some("tail") if args.len() >= 3 => tail(&args[1], &args[2], &args[3..]),
        Some("analyze") if args.len() >= 3 => analyze(&args[1..]),
        Some("shard") if args.len() >= 4 => {
            let n: usize = args[3].parse().unwrap_or_else(|_| usage());
            let plan = match args.get(4).map(String::as_str) {
                None => PlanKind::BlockRange,
                Some("--plan") => match args.get(5).map(String::as_str) {
                    Some("block_range") => PlanKind::BlockRange,
                    Some("asid_hash") => PlanKind::AsidHash,
                    _ => usage(),
                },
                Some(_) => usage(),
            };
            shard(&args[1], &args[2], n, plan)
        }
        Some("fabric") if args.len() >= 4 => fabric(&args[1], &args[2], &args[3..]),
        Some("shards") if args.len() == 2 => shards(&args[1]),
        _ => usage(),
    }
}

fn record(workload: &str, os: &str, out: &str) {
    let w = systrace::workloads::by_name(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload}");
        std::process::exit(2);
    });
    let cfg = match os {
        "mach" => KernelConfig::mach().traced(),
        "ultrix" => KernelConfig::ultrix().traced(),
        _ => usage(),
    };
    let mut sys = build_system(&cfg, &[&w]);
    let run = sys.run(8_000_000_000);
    let archive = sys.archive(&run);
    archive.save(out).expect("write archive");
    println!(
        "recorded {} trace words ({} analysis phases) to {out}",
        archive.words.len(),
        run.drains.max(1)
    );
}

/// Loads either archive version as a block store (a v1 file is
/// compressed in memory).
fn load_store(path: &str) -> TraceStore {
    TraceStore::load(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    })
}

/// Loads either archive version as a raw in-memory archive.
fn load(path: &str) -> TraceArchive {
    load_store(path).to_archive().unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    })
}

/// The on-disk format version of a `W3KTRACE` file, if readable.
fn disk_version(path: &str) -> Option<u32> {
    let mut header = [0u8; 12];
    use std::io::Read;
    let mut f = std::fs::File::open(path).ok()?;
    f.read_exact(&mut header).ok()?;
    (&header[..8] == systrace::trace::archive::MAGIC)
        .then(|| u32::from_le_bytes(header[8..12].try_into().unwrap()))
}

fn info(path: &str) {
    // A `W3KSHARD` manifest is not an archive; print its shard table.
    if let Ok(bytes) = std::fs::read(path) {
        if bytes.len() >= 8 && &bytes[..8] == MANIFEST_MAGIC {
            match Manifest::decode(&bytes) {
                Ok(m) => {
                    println!("{path}:");
                    print!("{}", m.summary());
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
            return;
        }
    }
    let store = load_store(path);
    let a = store.to_archive().unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    println!("{path}:");
    match disk_version(path) {
        // Every on-disk version from 2 up is a compressed block store
        // (v3 adds index summaries; v2 lacks them but reads the same).
        Some(v) if v >= 2 => println!(
            "  format      : v{v} store, {} blocks of {} words, {} -> {} bytes ({:.2}x)",
            store.n_blocks(),
            store.block_words,
            store.raw_bytes(),
            store.compressed_bytes(),
            store.raw_bytes() as f64 / store.compressed_bytes().max(1) as f64,
        ),
        Some(v) => println!("  format      : v{v} archive (raw words)"),
        None => {}
    }
    // Columnar stores also report the per-column byte split — which
    // columns carry the bytes is what a projected query saves.
    if let Ok(Some(stats)) = store.column_stats() {
        let total = store.compressed_bytes().max(1);
        for (name, bytes) in systrace::store::column::COLUMN_NAMES
            .iter()
            .zip(stats.section_bytes)
        {
            println!(
                "  column      : {name:<12} {bytes:>10} bytes ({:.1}%)",
                100.0 * bytes as f64 / total as f64
            );
        }
        println!(
            "  column      : {:<12} {:>10} bytes ({:.1}%)",
            "(framing)",
            stats.overhead_bytes,
            100.0 * stats.overhead_bytes as f64 / total as f64
        );
    }
    println!("  trace words : {}", a.words.len());
    println!("  kernel table: {} blocks", a.kernel_table.len());
    for (asid, t) in &a.user_tables {
        println!("  user table  : asid {asid}, {} blocks", t.len());
    }
    let mut parser = a.parser();
    let mut sink = systrace::trace::CollectSink::default();
    parser.parse_all(&a.words, &mut sink);
    let s = &parser.stats;
    println!("  kernel refs : {} I, {} D", s.kernel_irefs, s.kernel_drefs);
    println!("  user refs   : {} I, {} D", s.user_irefs, s.user_drefs);
    println!(
        "  {} kernel entries, {} context switches, {} idle insts, {} errors",
        s.kernel_entries, s.ctx_switches, s.idle_insts, s.errors
    );
}

fn refs(path: &str, n: usize) {
    let a = load(path);
    struct Printer {
        left: usize,
    }
    impl TraceSink for Printer {
        fn iref(&mut self, va: u32, space: Space, idle: bool) {
            if self.left > 0 {
                println!(
                    "I {va:#010x} {}{}",
                    match space {
                        Space::Kernel => "kernel".into(),
                        Space::User(a) => format!("user:{a}"),
                    },
                    if idle { " idle" } else { "" }
                );
                self.left -= 1;
            }
        }
        fn dref(&mut self, va: u32, store: bool, _w: systrace::isa::Width, space: Space) {
            if self.left > 0 {
                println!(
                    "{} {va:#010x} {}",
                    if store { "S" } else { "L" },
                    match space {
                        Space::Kernel => "kernel".into(),
                        Space::User(a) => format!("user:{a}"),
                    }
                );
                self.left -= 1;
            }
        }
    }
    let mut parser = a.parser();
    let mut p = Printer { left: n };
    for &w in &a.words {
        if p.left == 0 {
            break;
        }
        parser.push_word(w, &mut p);
    }
}

fn sim(path: &str) {
    let a = load(path);
    let cfg = SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    };
    let mut parser = a.parser();
    let mut sim = MemSim::new(cfg, PageMap::new(Policy::FirstFree { base_pfn: 0x2000 }));
    parser.parse_all(&a.words, &mut sim);
    let s = &sim.stats;
    println!("memory-system simulation of {path}:");
    println!("  instructions : {}", s.insts());
    println!(
        "  icache misses: {} ({:.3}%)",
        s.imisses,
        100.0 * s.imisses as f64 / s.insts().max(1) as f64
    );
    println!("  dcache misses: {}", s.dmisses);
    println!("  wb stalls    : {} cycles", s.wb_stall_cycles);
    println!("  utlb misses  : {}", s.utlb_misses);
    println!(
        "  kernel CPI {:.2} / user CPI {:.2}",
        s.kernel_cpi(),
        s.user_cpi()
    );
    println!("  total cycles : {}", sim.cycles);
    let _ = Arc::new(0);
}

fn metrics(path: &str, out: Option<&str>) {
    systrace::obs::register_all();
    let a = load(path);
    let cfg = SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    };
    let mut parser = a.parser();
    parser.attach_obs(systrace::trace::ParserObs::register());
    let mut sim = MemSim::new(cfg, PageMap::new(Policy::FirstFree { base_pfn: 0x2000 }));
    parser.parse_all(&a.words, &mut sim);
    parser.stats.export_obs();
    sim.stats.export_obs();
    let json = systrace::obs::global()
        .snapshot()
        .to_json(&[("source", path)]);
    match out {
        Some(f) => {
            std::fs::write(f, &json).expect("write metrics json");
            eprintln!("wrote metrics to {f}");
        }
        None => println!("{json}"),
    }
}

/// Serves `paths` (named by file stem) on `addr` until killed. Used
/// interactively and by the CI serve-smoke job.
fn serve(addr: &str, paths: &[String]) {
    systrace::obs::register_all();
    let mut cat = Catalog::new();
    for p in paths {
        let name = std::path::Path::new(p)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(p)
            .to_string();
        let store = load_store(p);
        println!(
            "  {name}: {} words in {} blocks of {}",
            store.n_words,
            store.n_blocks(),
            store.block_words
        );
        cat.add(name, Arc::new(store));
    }
    let server = Server::start(addr, cat, ServeCfg::default()).unwrap_or_else(|e| {
        eprintln!("{addr}: {e}");
        std::process::exit(1);
    });
    println!("serving {} archive(s) on {}", paths.len(), server.addr());
    loop {
        std::thread::park();
    }
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("{addr}: {e}");
        std::process::exit(1);
    })
}

fn catalog(addr: &str) {
    let mut client = connect(addr);
    let rows = client.catalog().unwrap_or_else(|e| {
        eprintln!("catalog: {e}");
        std::process::exit(1);
    });
    println!("{addr}: {} archive(s)", rows.len());
    for r in rows {
        println!(
            "  {:<16} {:>10} words, {:>6} blocks of {:>5}, {:>9} bytes compressed",
            r.name, r.n_words, r.n_blocks, r.block_words, r.compressed_bytes
        );
    }
}

fn fetch(addr: &str, archive: &str, opts: &[String]) {
    let mut pred = Predicate::default();
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--asid" => {
                let a = it.next().and_then(|s| s.parse().ok());
                pred.asid = Some(a.unwrap_or_else(|| usage()));
            }
            "--window" => {
                let w = it.next().and_then(|s| {
                    let (lo, hi) = s.split_once("..")?;
                    Some((lo.parse().ok()?, hi.parse().ok()?))
                });
                pred.window = Some(w.unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    let mut client = connect(addr);
    let q = client.query(archive, &pred).unwrap_or_else(|e| {
        eprintln!("fetch: {e}");
        std::process::exit(1);
    });
    let touched = q.blocks_decoded + q.blocks_skipped;
    println!("{archive} @ {addr}:");
    println!(
        "  predicate   : asid={} window={}",
        pred.asid.map_or("any".into(), |a| a.to_string()),
        pred.window
            .map_or("all".into(), |(lo, hi)| format!("{lo}..{hi}")),
    );
    println!("  trace words : {}", q.words.len());
    println!(
        "  blocks      : {} decoded, {} skipped ({:.1}% pushed down)",
        q.blocks_decoded,
        q.blocks_skipped,
        100.0 * f64::from(q.blocks_skipped) / f64::from(touched.max(1)),
    );
}

/// Runs the traced system for `workload` while serving its trace as
/// the live feed named after the workload on `addr`. After the run
/// the prediction is printed and the server keeps running (feed
/// finished), so tails arriving late still replay the whole stream.
fn live(addr: &str, workload: &str, os: &str) {
    systrace::obs::register_all();
    let w = systrace::workloads::by_name(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload}");
        std::process::exit(2);
    });
    let cfg = match os {
        "mach" => KernelConfig::mach().traced(),
        "ultrix" => KernelConfig::ultrix().traced(),
        _ => usage(),
    };
    let server = Server::start(addr, Catalog::new(), ServeCfg::default()).unwrap_or_else(|e| {
        eprintln!("{addr}: {e}");
        std::process::exit(1);
    });
    let feed = server.live_feed(workload);
    println!("live feed \"{workload}\" on {}", server.addr());
    let arith = systrace::pixie_arith_stalls(&w);
    let p = systrace::run_predicted_live(
        &cfg,
        &w,
        arith,
        systrace::trace::PipelineCfg::default(),
        &feed,
    );
    println!(
        "machine finished: {} trace words, predicted {:.4}s, exit {}",
        p.trace_words, p.seconds, p.exit_code
    );
    loop {
        std::thread::park();
    }
}

/// Subscribes to a live feed and follows its predicate-filtered tail
/// until the end-of-feed marker, then exits 0. `--from-start` replays
/// the feed's history first; the default watches from now on.
fn tail(addr: &str, feed: &str, opts: &[String]) {
    let mut pred = Predicate::default();
    let mut from_start = false;
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--asid" => {
                let a = it.next().and_then(|s| s.parse().ok());
                pred.asid = Some(a.unwrap_or_else(|| usage()));
            }
            "--window" => {
                let w = it.next().and_then(|s| {
                    let (lo, hi) = s.split_once("..")?;
                    Some((lo.parse().ok()?, hi.parse().ok()?))
                });
                pred.window = Some(w.unwrap_or_else(|| usage()));
            }
            "--from-start" => from_start = true,
            _ => usage(),
        }
    }
    // A machine run pauses the feed for as long as it computes
    // between drains; give the tail a much larger stall budget than
    // a query client would use.
    let cfg = ClientCfg {
        max_stalls: 2400,
        ..ClientCfg::default()
    };
    let mut client = Client::connect_cfg(addr, cfg).unwrap_or_else(|e| {
        eprintln!("{addr}: {e}");
        std::process::exit(1);
    });
    client
        .subscribe(feed, &pred, from_start)
        .unwrap_or_else(|e| {
            eprintln!("subscribe: {e}");
            std::process::exit(1);
        });
    let (mut events, mut words) = (0u64, 0u64);
    loop {
        match client.next_event() {
            Ok(TailItem::Event { seq, words: w }) => {
                events += 1;
                words += w.len() as u64;
                println!("event seq={seq}: {} words", w.len());
            }
            Ok(TailItem::End) => {
                println!("feed ended: {events} event(s), {words} word(s)");
                return;
            }
            Err(e) => {
                eprintln!("tail: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Runs a composed sink stack in one decode+parse pass, locally over
/// a store file or remotely over a served archive's word stream.
/// Prints every sink's report; exits 1 if any sink failed mid-pass.
fn analyze(args: &[String]) {
    if args.iter().any(|a| a == "--tables") {
        if args.len() < 3 {
            usage();
        }
        analyze_remote(&args[0], &args[1], &args[2], &args[3..]);
    } else {
        analyze_local(&args[0], &args[1], &args[2..]);
    }
}

/// Builds the stack for `spec` (exiting with usage-style diagnostics
/// on a bad spec) and attaches the `tracer.*` metrics.
fn stack_for(spec: &str) -> systrace::tracer::Stack {
    let pagemap = PageMap::new(Policy::FirstFree { base_pfn: 0x2000 });
    let mut stack = build_stack(spec, &pagemap).unwrap_or_else(|e| {
        eprintln!("sink spec: {e}");
        std::process::exit(2);
    });
    stack.attach_obs(TracerObs::register());
    stack
}

/// Prints one pass's reports and exits nonzero if a sink failed.
fn finish_analysis(report: &systrace::tracer::StackReport) {
    println!(
        "  {} words decoded+parsed once for {} sink(s), {} events routed",
        report.words,
        report.reports.len(),
        report.applied
    );
    print!("{}", report.render());
    if report.failed() > 0 {
        std::process::exit(1);
    }
}

fn analyze_local(path: &str, spec: &str, opts: &[String]) {
    systrace::obs::register_all();
    let mut cfg = FarmCfg {
        workers: 1,
        ..FarmCfg::default()
    };
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--workers" => {
                cfg.workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--per-worker-parse" => cfg.shared_parse = false,
            _ => usage(),
        }
    }
    let store = load_store(path);
    let stack = stack_for(spec);
    println!("one-pass analysis of {path}:");
    let report = analyze_store(&store, stack, cfg).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    finish_analysis(&report);
}

/// Remote analysis: the word stream comes from a `serve`/`fabric`
/// node via a predicate-pushdown query; the static basic-block
/// tables (which the fetch path never ships) come from a locally
/// held archive of the same trace.
fn analyze_remote(addr: &str, archive: &str, spec: &str, opts: &[String]) {
    systrace::obs::register_all();
    let mut pred = Predicate::default();
    let mut tables: Option<&str> = None;
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--tables" => tables = Some(it.next().unwrap_or_else(|| usage())),
            "--asid" => {
                let a = it.next().and_then(|s| s.parse().ok());
                pred.asid = Some(a.unwrap_or_else(|| usage()));
            }
            "--window" => {
                let w = it.next().and_then(|s| {
                    let (lo, hi) = s.split_once("..")?;
                    Some((lo.parse().ok()?, hi.parse().ok()?))
                });
                pred.window = Some(w.unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    let tables = tables.unwrap_or_else(|| usage());
    let parser = load_store(tables).parser();
    let stack = stack_for(spec);
    let mut client = connect(addr);
    let q = client.query(archive, &pred).unwrap_or_else(|e| {
        eprintln!("analyze: {e}");
        std::process::exit(1);
    });
    println!(
        "one-pass analysis of {archive} @ {addr} ({} decoded / {} skipped blocks):",
        q.blocks_decoded, q.blocks_skipped
    );
    let report = analyze_words(parser, &q.words, stack);
    finish_analysis(&report);
}

/// Splits a store into `n` shard archives plus the manifest binding
/// them, written into `out_dir`. Shard files are named so that
/// serving them with `tracedump serve` publishes exactly the catalog
/// names the manifest records.
fn shard(inp: &str, out_dir: &str, n: usize, plan: PlanKind) {
    let stem = std::path::Path::new(inp)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(inp)
        .to_string();
    let store = load_store(inp);
    let (manifest, shards) = split_store(&store, &stem, n, plan).unwrap_or_else(|e| {
        eprintln!("{inp}: {e}");
        std::process::exit(1);
    });
    let dir = std::path::Path::new(out_dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("{out_dir}: {e}");
        std::process::exit(1);
    });
    for (entry, shard) in manifest.shards.iter().zip(&shards) {
        let path = dir.join(format!("{}.w3kt", entry.name));
        shard.save(&path).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "  {}: {} blocks, {} words",
            path.display(),
            entry.n_blocks,
            entry.n_words
        );
    }
    let mpath = dir.join(format!("{stem}.manifest"));
    std::fs::write(&mpath, manifest.encode()).unwrap_or_else(|e| {
        eprintln!("{}: {e}", mpath.display());
        std::process::exit(1);
    });
    println!(
        "sharded {} blocks across {} shards ({}) -> {}",
        manifest.n_blocks(),
        manifest.n_shards(),
        manifest.plan.name(),
        mpath.display()
    );
}

/// Starts a coordinator for `manifest` on `addr`. Each element of
/// `eps` lists one shard's endpoints, comma-separated, primary first.
fn fabric(addr: &str, manifest_path: &str, eps: &[String]) {
    systrace::obs::register_all();
    let bytes = std::fs::read(manifest_path).unwrap_or_else(|e| {
        eprintln!("{manifest_path}: {e}");
        std::process::exit(1);
    });
    let manifest = Manifest::decode(&bytes).unwrap_or_else(|e| {
        eprintln!("{manifest_path}: {e}");
        std::process::exit(1);
    });
    let endpoints: Vec<Vec<std::net::SocketAddr>> = eps
        .iter()
        .map(|spec| {
            spec.split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse().unwrap_or_else(|_| {
                        eprintln!("bad endpoint {s:?} (want host:port)");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .collect();
    println!(
        "fabric \"{}\": {} shards, {} blocks / {} words",
        manifest.archive,
        manifest.n_shards(),
        manifest.n_blocks(),
        manifest.n_words
    );
    let coord =
        Coordinator::start(addr, manifest, endpoints, FabricCfg::default()).unwrap_or_else(|e| {
            eprintln!("{addr}: {e}");
            std::process::exit(1);
        });
    println!("coordinating on {}", coord.addr());
    loop {
        std::thread::park();
    }
}

/// Prints a coordinator's shard table (`shards` opcode).
fn shards(addr: &str) {
    let mut client = connect(addr);
    let rows = client.shards().unwrap_or_else(|e| {
        eprintln!("shards: {e}");
        std::process::exit(1);
    });
    println!("{addr}: {} shard(s)", rows.len());
    for r in rows {
        let alive = (0..r.endpoints)
            .map(|e| if r.alive & (1 << e) != 0 { '+' } else { '-' })
            .collect::<String>();
        println!(
            "  {:<20} {:>10} words, {:>6} blocks, endpoints [{alive}], zonemap {}",
            r.name,
            r.n_words,
            r.n_blocks,
            if r.asid_mask == 0 {
                "none".to_string()
            } else {
                format!("{:#x}", r.asid_mask)
            }
        );
    }
}

fn compress(inp: &str, out: &str, block_words: usize, format: BlockFormat) {
    let obs = StoreObs::register();
    // Rebuild from the raw words so the requested block size and
    // format apply regardless of the input's format or block size.
    let a = load(inp);
    let store = TraceStore::from_archive_with(&a, block_words, format);
    store.save(out).unwrap_or_else(|e| {
        eprintln!("{out}: {e}");
        std::process::exit(1);
    });
    obs.export_store(&store);
    println!(
        "compressed {} words into {} v{} blocks: {} -> {} bytes ({:.2}x)",
        store.n_words,
        store.n_blocks(),
        format.version(),
        store.raw_bytes(),
        store.compressed_bytes(),
        store.raw_bytes() as f64 / store.compressed_bytes().max(1) as f64,
    );
}
