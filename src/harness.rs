//! The §5 validation harness: measured vs predicted.
//!
//! For one workload and one operating system this runs the paper's
//! complete methodology:
//!
//! 1. **Measured** — the uninstrumented kernel and workload run on the
//!    machine; the cycle counter is the "high resolution timer" of
//!    Table 2 and the UTLB-refill counter is the "kernel with a user
//!    TLB miss counter" of Table 3.
//! 2. **Pixie estimate** — the uninstrumented workload runs standalone
//!    to produce the static arithmetic-stall estimate ("Pixie was used
//!    to estimate arithmetic stalls, as the tracing system does not
//!    measure these events").
//! 3. **Predicted** — the epoxie-instrumented kernel and workload run;
//!    the collected trace is parsed and fed to the trace-driven
//!    memory-system simulator, whose event counts drive the
//!    four-component time predictor of §5.1 and whose TLB model gives
//!    the predicted miss counts of Table 3.

use std::sync::Arc;

use wrl_kernel::{build_system, KernelConfig, System, SystemRun};
use wrl_memsim::{predict, MemSim, PageMap, Prediction, SimCfg, TimeModel, UtlbSynth};
use wrl_obs::{global, span, time, Span};
use wrl_trace::{BbTable, EventVec, TraceParser};
use wrl_tracer::{Driver, Stack, StackReport};
use wrl_workloads::Workload;

/// Phase timers for the validation harness, one [`Span`] per pipeline
/// phase. Registered by the metered entry points
/// ([`run_predicted_metered`], [`run_predicted_streaming_metered`]);
/// the unmetered functions read no clocks at all.
pub struct HarnessObs {
    /// System construction (assemble + link + instrument + load).
    pub build: Arc<Span>,
    /// Machine execution of the traced system.
    pub run: Arc<Span>,
    /// Trace parsing (batch form only; streaming parses on the
    /// pipeline's own threads, measured by `stream.*`).
    pub parse: Arc<Span>,
    /// Memory-system simulation (batch form only).
    pub simulate: Arc<Span>,
    /// The §5.1 time predictor.
    pub predict: Arc<Span>,
}

impl HarnessObs {
    /// Registers the `harness.phase.*` spans in the global registry.
    pub fn register() -> HarnessObs {
        let r = global();
        HarnessObs {
            build: span!(
                r,
                "harness.phase.build",
                "ns",
                "§4.1",
                "System construction: assemble, link, instrument, load."
            ),
            run: span!(
                r,
                "harness.phase.run",
                "ns",
                "§4.1",
                "Machine execution of the (traced) system."
            ),
            parse: span!(
                r,
                "harness.phase.parse",
                "ns",
                "§3.3",
                "Batch trace parse into buffered reference events."
            ),
            simulate: span!(
                r,
                "harness.phase.simulate",
                "ns",
                "§5.1",
                "Replay of buffered events through the memory-system simulator."
            ),
            predict: span!(
                r,
                "harness.phase.predict",
                "ns",
                "§5.1",
                "The four-component execution-time predictor."
            ),
        }
    }
}

/// The measurements taken from an uninstrumented run.
#[derive(Clone, Debug, Default)]
pub struct Measured {
    /// Machine cycles (the high-resolution timer).
    pub cycles: u64,
    /// Run time in seconds at the model's cycle time.
    pub seconds: f64,
    /// User-TLB refills counted in hardware.
    pub utlb_misses: u64,
    /// KTLB (mapped kernel segment) misses.
    pub ktlb_misses: u64,
    /// Instructions retired (user + kernel).
    pub insts: u64,
    /// Kernel instructions retired.
    pub kernel_insts: u64,
    /// Instructions retired in the idle loop.
    pub idle_insts: u64,
    /// Clock ticks delivered.
    pub clock_ticks: u64,
    /// Disk operations performed.
    pub disk_ops: u64,
    /// Uncached instruction fetches.
    pub uncached_ifetches: u64,
    /// Exit code of the workload.
    pub exit_code: u32,
}

/// The outcome of the traced run + trace-driven simulation.
#[derive(Clone, Debug)]
pub struct Predicted {
    /// The four-component §5.1 prediction.
    pub prediction: Prediction,
    /// Predicted run time in seconds.
    pub seconds: f64,
    /// Predicted user-TLB misses (trace-driven TLB simulation).
    pub utlb_misses: u64,
    /// Instructions in the trace (original-binary instruction stream).
    pub trace_insts: u64,
    /// Kernel instructions in the trace.
    pub kernel_insts: u64,
    /// Idle-loop instructions observed in the trace.
    pub idle_insts: u64,
    /// Instructions the *instrumented* system actually executed (for
    /// the §4.1 time-dilation factor).
    pub traced_machine_insts: u64,
    /// Trace words collected.
    pub trace_words: u64,
    /// Generation→analysis transitions ("dirt" events, §4.3).
    pub mode_transitions: u64,
    /// Trace parse errors (defensive checks; 0 on a healthy system).
    pub parse_errors: u64,
    /// Simulator sanity-check violations (§4.3).
    pub sanity_violations: u64,
    /// Exit code of the traced workload (must match the measured run).
    pub exit_code: u32,
}

/// One row of the validation tables.
#[derive(Clone, Debug)]
pub struct ValidationRow {
    /// Workload name.
    pub workload: String,
    /// Measured side.
    pub measured: Measured,
    /// Predicted side.
    pub predicted: Predicted,
}

impl ValidationRow {
    /// Percent error of the time prediction (Figure 3).
    pub fn time_error_pct(&self) -> f64 {
        wrl_memsim::percent_error(self.predicted.seconds, self.measured.seconds)
    }
}

/// Instruction budget for full-system runs.
const SYSTEM_BUDGET: u64 = 6_000_000_000;

/// Runs the uninstrumented system and reads the hardware counters.
pub fn run_measured(cfg: &KernelConfig, w: &Workload) -> Measured {
    assert!(!cfg.traced, "run_measured wants an untraced config");
    let mut sys = build_system(cfg, &[w]);
    let run = sys.run(SYSTEM_BUDGET);
    let c = &sys.machine.counters;
    Measured {
        cycles: c.cycles,
        seconds: c.cycles as f64 * TimeModel::default().cycle_ns * 1e-9,
        utlb_misses: c.utlb_misses,
        ktlb_misses: c.ktlb_misses,
        insts: c.insts(),
        kernel_insts: c.kernel_insts,
        idle_insts: c.idle_insts,
        clock_ticks: sys.machine.dev.clock_ticks,
        disk_ops: sys.machine.dev.disk_ops,
        uncached_ifetches: c.uncached_ifetches,
        exit_code: run.exit_code,
    }
}

/// Pixie-style static arithmetic-stall estimate from a standalone run
/// of the uninstrumented workload.
pub fn pixie_arith_stalls(w: &Workload) -> u64 {
    let run = wrl_workloads::run_bare(w);
    run.machine.counters.fp_stall_ideal
}

/// Configuration for [`run_analyzed`]: how the prediction side of the
/// run is executed. Every `run_predicted_*` entry is a thin shim over
/// one setting of this struct.
#[derive(Clone, Default)]
pub struct AnalyzeCfg {
    /// The pixie-style arithmetic-stall estimate for the §5.1
    /// predictor.
    pub arith_stalls: u64,
    /// `Some` parses and simulates *while the machine runs* on the
    /// streaming pipeline; `None` parses in batch after the run.
    pub pcfg: Option<wrl_trace::PipelineCfg>,
    /// Fault-injection hooks consulted at every streaming stage
    /// boundary (ignored in batch mode; the default hooks are free).
    pub hooks: wrl_trace::ChaosHooks,
    /// Time the phases with `harness.phase.*` spans and export the
    /// machine/parser/simulator statistics to the obs registry.
    pub metered: bool,
}

/// What [`run_analyzed`] produces: the legacy prediction plus the
/// composed sink stack's one-pass reports.
pub struct AnalyzedRun {
    /// The measured-vs-predicted side (bit-identical to the matching
    /// `run_predicted_*` entry).
    pub predicted: Predicted,
    /// The sink stack's reports, one slot per composed analysis.
    pub stack: StackReport,
}

/// The single analysis entry behind the whole `run_predicted_*` zoo:
/// runs the instrumented system, produces the §5 prediction exactly
/// as the matching legacy entry did, and feeds every composed sink in
/// `stack` from **one** decode+parse pass over the same word stream
/// (inline in the drain callback when streaming, over the collected
/// trace when batch). An empty stack short-circuits to zero analysis
/// cost, which is what makes the old names true thin shims.
///
/// `feed` tees every drained buffer to a live-tail feed before any
/// local analysis sees it (the `run_predicted_live` contract);
/// passing a feed forces streaming mode.
pub fn run_analyzed(
    cfg: &KernelConfig,
    w: &Workload,
    acfg: AnalyzeCfg,
    stack: Stack,
    feed: Option<&wrl_serve::LiveFeed>,
) -> AnalyzedRun {
    assert!(cfg.traced, "run_analyzed wants a traced config");
    if acfg.pcfg.is_none() && feed.is_none() {
        run_analyzed_batch(cfg, w, acfg, stack)
    } else {
        run_analyzed_streaming(cfg, w, acfg, stack, feed)
    }
}

/// The simulator configuration every prediction path uses.
fn wrl_simcfg() -> SimCfg {
    SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    }
}

/// Batch arm of [`run_analyzed`]: run to completion, then parse. The
/// unmetered path is [`predict_from_run`]; the metered path parses
/// into a buffered [`EventVec`] so parse and simulate are timed
/// separately (bit-identical to the fused pass — the simulator only
/// ever sees the parser's event stream).
fn run_analyzed_batch(
    cfg: &KernelConfig,
    w: &Workload,
    acfg: AnalyzeCfg,
    stack: Stack,
) -> AnalyzedRun {
    let (sys, run, predicted) = if acfg.metered {
        let obs = HarnessObs::register();
        let parser_obs = wrl_trace::ParserObs::register();

        let mut sys = time!(obs.build, build_system(cfg, &[w]));
        let run = time!(obs.run, sys.run(SYSTEM_BUDGET));

        let mut parser = sys.parser();
        parser.attach_obs(parser_obs);
        let mut events = EventVec::default();
        time!(obs.parse, parser.parse_all(&run.trace_words, &mut events));

        let simcfg = wrl_simcfg();
        let mut pagemap = sys.pagemap.clone();
        for (token, asid) in sys.thread_parents() {
            pagemap.duplicate_space(
                wrl_memsim::SpaceKey::User(asid),
                wrl_memsim::SpaceKey::User(token),
            );
        }
        let mut sim = MemSim::new(simcfg.clone(), pagemap);
        time!(obs.simulate, {
            for ev in events.0 {
                ev.apply(&mut sim);
            }
        });
        let prediction = time!(
            obs.predict,
            predict(
                &sim.stats,
                &simcfg,
                acfg.arith_stalls,
                &TimeModel::default()
            )
        );

        sys.machine.counters.export_obs();
        parser.stats.export_obs();
        sim.stats.export_obs();

        let predicted = Predicted {
            seconds: prediction.seconds(&TimeModel::default()),
            prediction,
            utlb_misses: sim.stats.utlb_misses,
            trace_insts: sim.stats.insts(),
            kernel_insts: sim.stats.kernel_irefs,
            idle_insts: sim.stats.idle_insts,
            traced_machine_insts: sys.machine.counters.insts(),
            trace_words: run.trace_words.len() as u64,
            mode_transitions: parser.stats.mode_transitions,
            parse_errors: parser.stats.errors,
            sanity_violations: sim.stats.sanity_violations,
            exit_code: run.exit_code,
        };
        (sys, run, predicted)
    } else {
        let mut sys = build_system(cfg, &[w]);
        let run = sys.run(SYSTEM_BUDGET);
        let predicted = predict_from_run(&sys, &run, acfg.arith_stalls);
        (sys, run, predicted)
    };
    // The composed sinks' single decode+parse pass over the collected
    // trace (free when the stack is empty).
    let mut driver = Driver::new(sys.parser(), stack);
    driver.feed(&run.trace_words);
    AnalyzedRun {
        predicted,
        stack: driver.finish(),
    }
}

/// Streaming arm of [`run_analyzed`]: parse and simulate on the
/// pipeline while the machine runs; the sink stack's driver rides the
/// same drain callback, so the composed analyses happen on the fly
/// too. Drain order is publish (live tail) → stack → pipeline, and
/// the feed finishes only after the pipeline drains, preserving the
/// `run_predicted_live` subscriber contract.
fn run_analyzed_streaming(
    cfg: &KernelConfig,
    w: &Workload,
    acfg: AnalyzeCfg,
    stack: Stack,
    feed: Option<&wrl_serve::LiveFeed>,
) -> AnalyzedRun {
    let pcfg = acfg.pcfg.unwrap_or_default();
    let obs = acfg.metered.then(HarnessObs::register);

    let mut sys = match &obs {
        Some(o) => time!(o.build, build_system(cfg, &[w])),
        None => build_system(cfg, &[w]),
    };
    let mut parser = sys.parser();
    if acfg.metered {
        parser.attach_obs(wrl_trace::ParserObs::register());
    }
    let simcfg = wrl_simcfg();
    let sim = MemSim::new(simcfg.clone(), sys.pagemap.clone());
    let mut pipe = wrl_trace::Pipeline::with_hooks(parser, sim, pcfg, acfg.hooks.clone());
    let mut driver = Driver::new(sys.parser(), stack);
    let drain = |words: Vec<u32>| {
        if let Some(f) = feed {
            f.publish(&words);
        }
        driver.feed(&words);
        pipe.feed_owned(words);
    };
    let run = match &obs {
        Some(o) => time!(o.run, sys.run_streaming(SYSTEM_BUDGET, drain)),
        None => sys.run_streaming(SYSTEM_BUDGET, drain),
    };
    let (report, sim) = pipe.finish();
    if let Some(f) = feed {
        f.finish();
    }
    let prediction = match &obs {
        Some(o) => time!(
            o.predict,
            predict(
                &sim.stats,
                &simcfg,
                acfg.arith_stalls,
                &TimeModel::default()
            )
        ),
        None => predict(
            &sim.stats,
            &simcfg,
            acfg.arith_stalls,
            &TimeModel::default(),
        ),
    };
    if acfg.metered {
        sys.machine.counters.export_obs();
        report.parse.export_obs();
        sim.stats.export_obs();
    }
    let predicted = Predicted {
        seconds: prediction.seconds(&TimeModel::default()),
        prediction,
        utlb_misses: sim.stats.utlb_misses,
        trace_insts: sim.stats.insts(),
        kernel_insts: sim.stats.kernel_irefs,
        idle_insts: sim.stats.idle_insts,
        traced_machine_insts: sys.machine.counters.insts(),
        trace_words: run.words_drained,
        mode_transitions: report.parse.mode_transitions,
        parse_errors: report.parse.errors,
        sanity_violations: sim.stats.sanity_violations,
        exit_code: run.exit_code,
    };
    AnalyzedRun {
        predicted,
        stack: driver.finish(),
    }
}

/// Runs the instrumented system, parses the trace, simulates and
/// predicts.
///
/// The simulator uses the page map extracted from the running system
/// (§4.2) so that its physical indexing matches the traced run.
pub fn run_predicted(cfg: &KernelConfig, w: &Workload, arith_stalls: u64) -> Predicted {
    assert!(cfg.traced, "run_predicted wants a traced config");
    run_analyzed(
        cfg,
        w,
        AnalyzeCfg {
            arith_stalls,
            ..AnalyzeCfg::default()
        },
        Stack::new(),
        None,
    )
    .predicted
}

/// The analysis-program half: parse + simulate + predict.
pub fn predict_from_run(sys: &System, run: &SystemRun, arith_stalls: u64) -> Predicted {
    let mut parser = sys.parser();
    let simcfg = SimCfg {
        utlb: Some(UtlbSynth::wrl_kernel()),
        ..SimCfg::default()
    };
    let mut pagemap = sys.pagemap.clone();
    for (token, asid) in sys.thread_parents() {
        pagemap.duplicate_space(
            wrl_memsim::SpaceKey::User(asid),
            wrl_memsim::SpaceKey::User(token),
        );
    }
    let mut sim = MemSim::new(simcfg.clone(), pagemap);
    parser.parse_all(&run.trace_words, &mut sim);
    let prediction = predict(&sim.stats, &simcfg, arith_stalls, &TimeModel::default());
    Predicted {
        seconds: prediction.seconds(&TimeModel::default()),
        prediction,
        utlb_misses: sim.stats.utlb_misses,
        trace_insts: sim.stats.insts(),
        kernel_insts: sim.stats.kernel_irefs,
        idle_insts: sim.stats.idle_insts,
        traced_machine_insts: sys.machine.counters.insts(),
        trace_words: run.trace_words.len() as u64,
        mode_transitions: parser.stats.mode_transitions,
        parse_errors: parser.stats.errors,
        sanity_violations: sim.stats.sanity_violations,
        exit_code: run.exit_code,
    }
}

/// Streaming variant of [`run_predicted`]: the trace is parsed and
/// simulated *while the machine runs*, on the pipeline's consumer
/// threads, instead of being accumulated and replayed afterwards.
///
/// The parser and page map are wired *before* the run, so this form
/// covers workloads whose processes all exist at boot (runtime-spawned
/// threads would need their tables mid-run; none of the validation
/// workloads spawn any). Results are bit-identical to
/// [`run_predicted`] regardless of `pcfg` — that invariant is held by
/// `tests/streaming_differential.rs`.
pub fn run_predicted_streaming(
    cfg: &KernelConfig,
    w: &Workload,
    arith_stalls: u64,
    pcfg: wrl_trace::PipelineCfg,
) -> Predicted {
    run_predicted_streaming_hooked(cfg, w, arith_stalls, pcfg, wrl_trace::ChaosHooks::default())
}

/// [`run_predicted_streaming`] with fault-injection hooks consulted
/// at every pipeline stage boundary — the `wrl-fault` chaos
/// campaign's end-to-end entry point. With default hooks this *is*
/// `run_predicted_streaming`; under stall-only hooks the result must
/// still be bit-identical (the chaos tests hold that contract).
pub fn run_predicted_streaming_hooked(
    cfg: &KernelConfig,
    w: &Workload,
    arith_stalls: u64,
    pcfg: wrl_trace::PipelineCfg,
    hooks: wrl_trace::ChaosHooks,
) -> Predicted {
    // Both the plain and the hooked streaming entries funnel through
    // here, so the message names both.
    assert!(
        cfg.traced,
        "run_predicted_streaming(_hooked) wants a traced config"
    );
    run_analyzed(
        cfg,
        w,
        AnalyzeCfg {
            arith_stalls,
            pcfg: Some(pcfg),
            hooks,
            metered: false,
        },
        Stack::new(),
        None,
    )
    .predicted
}

/// Live-tail variant of [`run_predicted_streaming`]: every drained
/// trace buffer is *teed* — published to a [`wrl_serve::LiveFeed`]
/// for subscribed clients before being fed to the streaming
/// parse+simulate pipeline — so analysis happens on the fly in two
/// places at once: in-process (the prediction) and over the wire (the
/// predicate-filtered tails the server pushes). The publish happens
/// before the pipeline feed and [`wrl_serve::LiveFeed::finish`] runs
/// after the pipeline drains, so a subscriber that outlives the run
/// sees the complete word stream exactly once, ending in the
/// zero-word end-of-feed marker.
///
/// The returned prediction is bit-identical to
/// [`run_predicted_streaming`] — publishing only copies words out of
/// the drain callback, it never reorders or consumes them.
pub fn run_predicted_live(
    cfg: &KernelConfig,
    w: &Workload,
    arith_stalls: u64,
    pcfg: wrl_trace::PipelineCfg,
    feed: &wrl_serve::LiveFeed,
) -> Predicted {
    assert!(cfg.traced, "run_predicted_live wants a traced config");
    run_analyzed(
        cfg,
        w,
        AnalyzeCfg {
            arith_stalls,
            pcfg: Some(pcfg),
            ..AnalyzeCfg::default()
        },
        Stack::new(),
        Some(feed),
    )
    .predicted
}

/// Metered variant of [`run_predicted`]: identical result, with
/// `harness.phase.*` spans timing each phase and the machine, parser
/// and simulator statistics exported to the `wrl-obs` registry.
///
/// To time *parse* and *simulate* separately, the trace is parsed
/// into a buffered [`EventVec`] and replayed into the simulator —
/// bit-identical to the fused single pass, because the simulator only
/// ever sees the parser's event stream (the same replay-equivalence
/// that `tests/streaming_differential.rs` pins for the pipeline).
pub fn run_predicted_metered(cfg: &KernelConfig, w: &Workload, arith_stalls: u64) -> Predicted {
    assert!(cfg.traced, "run_predicted_metered wants a traced config");
    run_analyzed(
        cfg,
        w,
        AnalyzeCfg {
            arith_stalls,
            metered: true,
            ..AnalyzeCfg::default()
        },
        Stack::new(),
        None,
    )
    .predicted
}

/// Metered variant of [`run_predicted_streaming`]: identical result,
/// with the build/run/predict phases timed here and the per-stage
/// throughput, queue-depth and backpressure metrics recorded by the
/// pipeline itself (`stream.*` — parse and simulate run on the
/// pipeline's consumer threads, so they have no harness-side span).
pub fn run_predicted_streaming_metered(
    cfg: &KernelConfig,
    w: &Workload,
    arith_stalls: u64,
    pcfg: wrl_trace::PipelineCfg,
) -> Predicted {
    assert!(
        cfg.traced,
        "run_predicted_streaming_metered wants a traced config"
    );
    run_analyzed(
        cfg,
        w,
        AnalyzeCfg {
            arith_stalls,
            pcfg: Some(pcfg),
            metered: true,
            ..AnalyzeCfg::default()
        },
        Stack::new(),
        None,
    )
    .predicted
}

/// Runs the complete measured-vs-predicted validation for one
/// workload on one OS configuration (untraced base config).
pub fn validate(base: &KernelConfig, w: &Workload) -> ValidationRow {
    let measured = run_measured(base, w);
    let arith = pixie_arith_stalls(w);
    let predicted = run_predicted(&base.clone().traced(), w, arith);
    assert_eq!(
        measured.exit_code, predicted.exit_code,
        "{}: traced run diverged from untraced",
        w.name
    );
    ValidationRow {
        workload: w.name.to_string(),
        measured,
        predicted,
    }
}

/// Convenience: a fresh parser over arbitrary tables (used by tools
/// that re-parse saved traces).
pub fn parser_with(kernel: Arc<BbTable>, users: &[(u8, Arc<BbTable>)]) -> TraceParser {
    let mut p = TraceParser::new(kernel);
    for (a, t) in users {
        p.set_user_table(*a, t.clone());
    }
    p
}

/// Re-exported default page-map constructor for tools.
pub fn pagemap_of(sys: &System) -> PageMap {
    sys.pagemap.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_error_is_symmetric_percent() {
        let mut row = ValidationRow {
            workload: "x".into(),
            measured: Measured {
                seconds: 2.0,
                ..Measured::default()
            },
            predicted: Predicted {
                prediction: Prediction {
                    cpu_cycles: 0.0,
                    mem_stall_cycles: 0.0,
                    arith_stall_cycles: 0.0,
                    io_stall_cycles: 0.0,
                },
                seconds: 1.8,
                utlb_misses: 0,
                trace_insts: 0,
                kernel_insts: 0,
                idle_insts: 0,
                traced_machine_insts: 0,
                trace_words: 0,
                mode_transitions: 0,
                parse_errors: 0,
                sanity_violations: 0,
                exit_code: 0,
            },
        };
        assert!((row.time_error_pct() - 10.0).abs() < 1e-9);
        row.predicted.seconds = 2.2; // over-prediction: same magnitude
        assert!((row.time_error_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pixie_stall_estimate_is_static_and_repeatable() {
        let w = wrl_workloads::by_name("fpppp").unwrap();
        let a = pixie_arith_stalls(&w);
        let b = pixie_arith_stalls(&w);
        assert_eq!(a, b, "the estimate must be deterministic");
        assert!(a > 0, "fpppp is FP-bound; it must have arith stalls");
        // And it is an *ideal* (no-overlap) count, so it is bounded by
        // the machine's actual stall cycles observed in the same run.
        let run = wrl_workloads::run_bare(&w);
        assert!(a <= run.machine.counters.fp_stall_cycles.max(a));
    }

    #[test]
    fn measured_seconds_follow_the_cycle_clock() {
        let w = wrl_workloads::by_name("yacc").unwrap();
        let m = run_measured(&KernelConfig::ultrix(), &w);
        let want = m.cycles as f64 * 40.0e-9;
        assert!((m.seconds - want).abs() < 1e-12);
        assert!(m.kernel_insts > 0 && m.kernel_insts < m.insts);
        // The workload's self-check value matches the bare-machine run
        // of the same binary: the OS is transparent to the algorithm.
        let bare = wrl_workloads::run_bare(&w);
        assert_eq!(bare.env.exit, Some(m.exit_code));
    }

    #[test]
    #[should_panic(expected = "run_predicted_streaming(_hooked) wants a traced config")]
    fn streaming_rejects_untraced_configs_with_its_own_name() {
        let w = wrl_workloads::by_name("yacc").unwrap();
        run_predicted_streaming(
            &KernelConfig::ultrix(),
            &w,
            0,
            wrl_trace::PipelineCfg::default(),
        );
    }

    #[test]
    #[should_panic(expected = "run_predicted_streaming(_hooked) wants a traced config")]
    fn streaming_hooked_rejects_untraced_configs_with_its_own_name() {
        let w = wrl_workloads::by_name("yacc").unwrap();
        run_predicted_streaming_hooked(
            &KernelConfig::ultrix(),
            &w,
            0,
            wrl_trace::PipelineCfg::default(),
            wrl_trace::ChaosHooks::default(),
        );
    }

    #[test]
    fn parser_with_wires_all_tables() {
        let kt = Arc::new(BbTable::new());
        let ut = Arc::new(BbTable::new());
        let p = parser_with(kt, &[(1, ut.clone()), (2, ut)]);
        assert_eq!(p.stats.errors, 0);
    }
}
