//! Facade over [`wrl_obs`]: re-exports the metrics API and registers
//! every metric the stack defines.
//!
//! Binaries call [`register_all`] once at startup so the registry is
//! fully populated *before* any work runs — exports and the
//! `docs/METRICS.md` sync test then see the complete metric set even
//! for recording sites that never fire.

pub use wrl_obs::*;

/// Registers every metric in the stack (idempotent). The full set,
/// with name / type / unit / source site / paper section for each, is
/// documented in `docs/METRICS.md`; a sync test keeps that table and
/// this registry equal.
pub fn register_all() {
    crate::harness::HarnessObs::register();
    wrl_trace::ParserObs::register();
    wrl_trace::ParseStatsObs::register();
    wrl_trace::stream::StreamObs::register();
    wrl_machine::CountersObs::register();
    wrl_memsim::SimObs::register();
    wrl_store::StoreObs::register();
    wrl_tracer::TracerObs::register();
    wrl_serve::ServeObs::register();
    wrl_fabric::FabricObs::register();
    wrl_fault::FaultObs::register();
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_all_is_idempotent_and_nonempty() {
        super::register_all();
        super::register_all();
        let snap = wrl_obs::global().snapshot();
        let names: Vec<_> = snap.metrics.iter().map(|m| m.desc.name).collect();
        for expect in [
            "harness.phase.build",
            "trace.parse.words",
            "stream.chunks",
            "machine.cycles",
            "sim.irefs.kernel",
            "store.blocks",
            "tracer.passes",
            "serve.requests.query",
            "fabric.failover",
            "fault.forbidden",
        ] {
            assert!(names.contains(&expect), "{expect} missing from registry");
        }
    }
}
