//! The W3K linker.
//!
//! Combines object modules into an executable image, assigning final
//! addresses and applying relocations. Because epoxie rewrites object
//! files *before* this step, all address correction in instrumented
//! binaries is done statically here, "incurring no runtime overhead"
//! (§3.2) — unlike pixie, which must carry a translation table into
//! the rewritten executable.

use std::collections::HashMap;

use crate::obj::{BbFlags, Object, Reloc, RelocKind, SecId};

/// Memory-layout bases for a link.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Base virtual address of the text segment.
    pub text_base: u32,
    /// Base virtual address of the data segment.
    pub data_base: u32,
}

impl Layout {
    /// Conventional user layout: text at `0x0040_0000`, data at
    /// `0x0100_0000`. (Real Ultrix put data at `0x1000_0000`; we keep
    /// the whole user image below 32 MB so bare-machine runs can
    /// identity-map it into default-sized physical memory.)
    pub fn user() -> Layout {
        Layout {
            text_base: 0x0040_0000,
            data_base: 0x0100_0000,
        }
    }

    /// Conventional kernel layout in kseg0: text at `0x8003_0000`,
    /// data at `0x8030_0000`.
    pub fn kernel() -> Layout {
        Layout {
            text_base: 0x8003_0000,
            data_base: 0x8030_0000,
        }
    }
}

/// Where one object's sections landed in the final image.
#[derive(Clone, Copy, Debug)]
pub struct Placement {
    /// Final address of the object's text section.
    pub text_addr: u32,
    /// Final address of the object's data section.
    pub data_addr: u32,
    /// Final address of the object's bss section.
    pub bss_addr: u32,
}

/// A linked executable image.
#[derive(Clone, Debug)]
pub struct Executable {
    /// Text segment instruction words.
    pub text: Vec<u32>,
    /// Base virtual address of text.
    pub text_base: u32,
    /// Data segment bytes.
    pub data: Vec<u8>,
    /// Base virtual address of data.
    pub data_base: u32,
    /// Base virtual address of bss.
    pub bss_base: u32,
    /// Size of bss in bytes.
    pub bss_size: u32,
    /// Entry point address.
    pub entry: u32,
    /// Global symbol addresses.
    pub globals: HashMap<String, u32>,
    /// Basic-block flags by final text address.
    pub bb_flags: HashMap<u32, BbFlags>,
}

impl Executable {
    /// End of the text segment (exclusive).
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() * 4) as u32
    }

    /// Total break (end of bss), the initial program break.
    pub fn brk(&self) -> u32 {
        self.bss_base + self.bss_size
    }

    /// Looks up a global symbol address.
    pub fn sym(&self, name: &str) -> Option<u32> {
        self.globals.get(name).copied()
    }

    /// Returns the instruction word at a text address, if in range.
    pub fn text_word(&self, vaddr: u32) -> Option<u32> {
        if vaddr < self.text_base || vaddr >= self.text_end() || !vaddr.is_multiple_of(4) {
            return None;
        }
        Some(self.text[((vaddr - self.text_base) / 4) as usize])
    }

    /// Text size in bytes (the quantity the §3.2 footnote compares
    /// across instrumentation tools).
    pub fn text_size(&self) -> u32 {
        (self.text.len() * 4) as u32
    }
}

/// The result of a successful link.
#[derive(Clone, Debug)]
pub struct Linked {
    /// The executable image.
    pub exe: Executable,
    /// Per-object section placements, in input order.
    pub placements: Vec<Placement>,
}

/// Errors produced by the linker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// A relocation referenced a symbol that is not defined anywhere.
    Unresolved {
        /// The missing symbol.
        sym: String,
        /// The referencing object.
        obj: String,
    },
    /// Two objects define the same global symbol.
    Duplicate {
        /// The multiply-defined symbol.
        sym: String,
    },
    /// A conditional branch target is out of the ±128 KB range.
    BranchRange {
        /// Address of the branch instruction.
        at: u32,
        /// The unreachable target.
        target: u32,
    },
    /// A `j`/`jal` target lies outside the current 256 MB region.
    JumpRegion {
        /// Address of the jump instruction.
        at: u32,
        /// The unreachable target.
        target: u32,
    },
    /// The requested entry symbol is not defined.
    NoEntry {
        /// The entry symbol name.
        sym: String,
    },
}

impl core::fmt::Display for LinkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LinkError::Unresolved { sym, obj } => {
                write!(f, "unresolved symbol `{sym}` referenced from {obj}")
            }
            LinkError::Duplicate { sym } => write!(f, "duplicate global symbol `{sym}`"),
            LinkError::BranchRange { at, target } => {
                write!(f, "branch at {at:#010x} cannot reach {target:#010x}")
            }
            LinkError::JumpRegion { at, target } => {
                write!(f, "jump at {at:#010x} cannot reach {target:#010x}")
            }
            LinkError::NoEntry { sym } => write!(f, "entry symbol `{sym}` not defined"),
        }
    }
}

impl std::error::Error for LinkError {}

fn align8(v: u32) -> u32 {
    (v + 7) & !7
}

/// Links object modules into an executable.
///
/// `entry` names the global symbol where execution starts.
pub fn link(objects: &[Object], layout: Layout, entry: &str) -> Result<Linked, LinkError> {
    // Pass 1: place sections.
    let mut placements = Vec::with_capacity(objects.len());
    let mut text_off = 0u32;
    let mut data_off = 0u32;
    let mut bss_off = 0u32;
    for o in objects {
        placements.push((text_off, data_off, bss_off));
        text_off += o.text_bytes();
        data_off = align8(data_off + o.data.len() as u32);
        bss_off = align8(bss_off + o.bss_size);
    }
    let bss_base = align8(layout.data_base + data_off) + 0x1000; // guard gap
    let placements: Vec<Placement> = placements
        .into_iter()
        .map(|(t, d, b)| Placement {
            text_addr: layout.text_base + t,
            data_addr: layout.data_base + d,
            bss_addr: bss_base + b,
        })
        .collect();

    // Pass 2: build symbol tables.
    let mut globals: HashMap<String, u32> = HashMap::new();
    let mut locals: Vec<HashMap<&str, u32>> = Vec::with_capacity(objects.len());
    for (o, p) in objects.iter().zip(&placements) {
        let mut lmap = HashMap::new();
        for s in &o.symbols {
            let addr = match s.sec {
                SecId::Text => p.text_addr + s.off,
                SecId::Data => p.data_addr + s.off,
                SecId::Bss => p.bss_addr + s.off,
            };
            lmap.insert(s.name.as_str(), addr);
            if s.global && globals.insert(s.name.clone(), addr).is_some() {
                return Err(LinkError::Duplicate {
                    sym: s.name.clone(),
                });
            }
        }
        locals.push(lmap);
    }

    // Pass 3: concatenate sections and apply relocations.
    let mut text: Vec<u32> = Vec::with_capacity((text_off / 4) as usize);
    let mut data: Vec<u8> = Vec::with_capacity(data_off as usize);
    for (i, (o, p)) in objects.iter().zip(&placements).enumerate() {
        let resolve = |r: &Reloc| -> Result<u32, LinkError> {
            let base = locals[i]
                .get(r.sym.as_str())
                .copied()
                .or_else(|| globals.get(&r.sym).copied())
                .ok_or_else(|| LinkError::Unresolved {
                    sym: r.sym.clone(),
                    obj: o.name.clone(),
                })?;
            Ok(base.wrapping_add(r.addend as u32))
        };

        let tstart = text.len();
        text.extend_from_slice(&o.text);
        for r in &o.text_relocs {
            let target = resolve(r)?;
            let widx = tstart + (r.off / 4) as usize;
            let at = p.text_addr + r.off;
            let w = &mut text[widx];
            match r.kind {
                RelocKind::Hi16 => *w = (*w & 0xffff_0000) | (target >> 16),
                RelocKind::Lo16 => *w = (*w & 0xffff_0000) | (target & 0xffff),
                RelocKind::J26 => {
                    if (target ^ at.wrapping_add(4)) & 0xf000_0000 != 0 {
                        return Err(LinkError::JumpRegion { at, target });
                    }
                    *w = (*w & 0xfc00_0000) | ((target >> 2) & 0x03ff_ffff);
                }
                RelocKind::Br16 => {
                    let disp = (target as i64 - (at as i64 + 4)) >> 2;
                    if !(-32768..=32767).contains(&disp) {
                        return Err(LinkError::BranchRange { at, target });
                    }
                    *w = (*w & 0xffff_0000) | (disp as u32 & 0xffff);
                }
                RelocKind::Word32 => {
                    // Word32 in text is not generated by the assembler.
                    *w = target;
                }
            }
        }

        let dstart = data.len();
        data.resize((placements[i].data_addr - layout.data_base) as usize, 0);
        // The resize above pads to this object's aligned start; append.
        debug_assert!(data.len() >= dstart);
        data.extend_from_slice(&o.data);
        for r in &o.data_relocs {
            let target = resolve(r)?;
            let off = (placements[i].data_addr - layout.data_base + r.off) as usize;
            data[off..off + 4].copy_from_slice(&target.to_le_bytes());
        }
    }

    let entry_addr = globals
        .get(entry)
        .copied()
        .ok_or_else(|| LinkError::NoEntry { sym: entry.into() })?;

    // Merge bb flags to final addresses.
    let mut bb_flags = HashMap::new();
    for (o, p) in objects.iter().zip(&placements) {
        for (&off, &fl) in &o.bb_flags {
            bb_flags.insert(p.text_addr + off, fl);
        }
    }

    Ok(Linked {
        exe: Executable {
            text,
            text_base: layout.text_base,
            data,
            data_base: layout.data_base,
            bss_base,
            bss_size: bss_off,
            entry: entry_addr,
            globals,
            bb_flags,
        },
        placements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::encode::decode;
    use crate::inst::Inst;
    use crate::reg::*;

    fn two_objects() -> Vec<Object> {
        let mut a = Asm::new("a");
        a.global_label("main");
        a.jal("helper");
        a.nop();
        a.la(T0, "shared");
        a.label("spin");
        a.b("spin");
        a.nop();
        a.data();
        a.global_label("shared");
        a.word(7);

        let mut b = Asm::new("b");
        b.global_label("helper");
        b.jr(RA);
        b.nop();
        vec![a.finish(), b.finish()]
    }

    #[test]
    fn cross_object_call_resolves() {
        let objs = two_objects();
        let l = link(&objs, Layout::user(), "main").unwrap();
        let helper = l.exe.sym("helper").unwrap();
        // The jal at main+0 must target helper.
        let w = l.exe.text_word(l.exe.entry).unwrap();
        match decode(w).unwrap() {
            Inst::Jal { target } => assert_eq!((target << 2), helper & 0x0fff_ffff),
            other => panic!("expected jal, got {other:?}"),
        }
    }

    #[test]
    fn la_resolves_to_data_segment() {
        let objs = two_objects();
        let l = link(&objs, Layout::user(), "main").unwrap();
        let shared = l.exe.sym("shared").unwrap();
        assert_eq!(shared, l.exe.data_base);
        // lui imm must be the high half.
        let lui = l.exe.text_word(l.exe.entry + 8).unwrap();
        assert_eq!(lui & 0xffff, shared >> 16);
        let ori = l.exe.text_word(l.exe.entry + 12).unwrap();
        assert_eq!(ori & 0xffff, shared & 0xffff);
    }

    #[test]
    fn branch_backward_displacement() {
        let objs = two_objects();
        let l = link(&objs, Layout::user(), "main").unwrap();
        let spin = l.exe.sym("main").unwrap() + 16;
        let w = l.exe.text_word(spin).unwrap();
        match decode(w).unwrap() {
            Inst::Beq { off, .. } => assert_eq!(off, -1),
            other => panic!("expected beq, got {other:?}"),
        }
    }

    #[test]
    fn unresolved_symbol_errors() {
        let mut a = Asm::new("a");
        a.global_label("main");
        a.jal("nowhere");
        a.nop();
        let err = link(&[a.finish()], Layout::user(), "main").unwrap_err();
        assert!(matches!(err, LinkError::Unresolved { .. }));
    }

    #[test]
    fn duplicate_global_errors() {
        let mut a = Asm::new("a");
        a.global_label("main");
        a.nop();
        let mut b = Asm::new("b");
        b.global_label("main");
        b.nop();
        let err = link(&[a.finish(), b.finish()], Layout::user(), "main").unwrap_err();
        assert!(matches!(err, LinkError::Duplicate { .. }));
    }

    #[test]
    fn missing_entry_errors() {
        let mut a = Asm::new("a");
        a.label("quiet");
        a.nop();
        let err = link(&[a.finish()], Layout::user(), "quiet").unwrap_err();
        assert!(matches!(err, LinkError::NoEntry { .. }));
    }

    #[test]
    fn local_symbols_do_not_collide() {
        let mut a = Asm::new("a");
        a.global_label("main");
        a.label("loop");
        a.b("loop");
        a.nop();
        let mut b = Asm::new("b");
        b.global_label("aux");
        b.label("loop");
        b.b("loop");
        b.nop();
        let l = link(&[a.finish(), b.finish()], Layout::user(), "main").unwrap();
        // Each object's `loop` branch must be self-referential (-1).
        for addr in [l.exe.sym("main").unwrap(), l.exe.sym("aux").unwrap()] {
            let w = l.exe.text_word(addr).unwrap();
            match decode(w).unwrap() {
                Inst::Beq { off, .. } => assert_eq!(off, -1),
                other => panic!("expected beq, got {other:?}"),
            }
        }
    }
}
