//! General-purpose and floating-point register names for the W3K ISA.
//!
//! The W3K follows the MIPS-I register conventions: 32 general-purpose
//! registers with `r0` hardwired to zero, plus 32 single-precision
//! floating-point registers used in even/odd pairs for doubles.

use core::fmt;

/// A general-purpose register (`r0`..`r31`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// A floating-point register (`f0`..`f31`).
///
/// Double-precision values occupy an even/odd pair and are named by the
/// even register, as on the R3000.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl Reg {
    /// Returns the register number as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Returns the conventional ABI name of the register.
    pub fn name(self) -> &'static str {
        REG_NAMES[self.0 as usize & 31]
    }
}

impl FReg {
    /// Returns the register number as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

const REG_NAMES: [&str; 32] = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp",
    "ra",
];

/// Hardwired zero register.
pub const ZERO: Reg = Reg(0);
/// Assembler temporary.
pub const AT: Reg = Reg(1);
/// Function result register 0.
pub const V0: Reg = Reg(2);
/// Function result register 1.
pub const V1: Reg = Reg(3);
/// Argument register 0.
pub const A0: Reg = Reg(4);
/// Argument register 1.
pub const A1: Reg = Reg(5);
/// Argument register 2.
pub const A2: Reg = Reg(6);
/// Argument register 3.
pub const A3: Reg = Reg(7);
/// Caller-saved temporary 0.
pub const T0: Reg = Reg(8);
/// Caller-saved temporary 1.
pub const T1: Reg = Reg(9);
/// Caller-saved temporary 2.
pub const T2: Reg = Reg(10);
/// Caller-saved temporary 3.
pub const T3: Reg = Reg(11);
/// Caller-saved temporary 4.
pub const T4: Reg = Reg(12);
/// Caller-saved temporary 5.
pub const T5: Reg = Reg(13);
/// Caller-saved temporary 6.
pub const T6: Reg = Reg(14);
/// Caller-saved temporary 7.
pub const T7: Reg = Reg(15);
/// Callee-saved register 0.
pub const S0: Reg = Reg(16);
/// Callee-saved register 1.
pub const S1: Reg = Reg(17);
/// Callee-saved register 2.
pub const S2: Reg = Reg(18);
/// Callee-saved register 3.
pub const S3: Reg = Reg(19);
/// Callee-saved register 4.
pub const S4: Reg = Reg(20);
/// Callee-saved register 5. Stolen by epoxie as `xreg1`.
pub const S5: Reg = Reg(21);
/// Callee-saved register 6. Stolen by epoxie as `xreg2`.
pub const S6: Reg = Reg(22);
/// Callee-saved register 7. Stolen by epoxie as `xreg3`.
pub const S7: Reg = Reg(23);
/// Caller-saved temporary 8.
pub const T8: Reg = Reg(24);
/// Caller-saved temporary 9.
pub const T9: Reg = Reg(25);
/// Kernel temporary 0 (reserved for exception handlers).
pub const K0: Reg = Reg(26);
/// Kernel temporary 1 (reserved for exception handlers).
pub const K1: Reg = Reg(27);
/// Global pointer.
pub const GP: Reg = Reg(28);
/// Stack pointer.
pub const SP: Reg = Reg(29);
/// Frame pointer.
pub const FP: Reg = Reg(30);
/// Return address register, written by `jal`/`jalr`.
pub const RA: Reg = Reg(31);

/// Floating-point registers `f0`..`f30` (even registers name doubles).
pub const F0: FReg = FReg(0);
/// FP register pair 2.
pub const F2: FReg = FReg(2);
/// FP register pair 4.
pub const F4: FReg = FReg(4);
/// FP register pair 6.
pub const F6: FReg = FReg(6);
/// FP register pair 8.
pub const F8: FReg = FReg(8);
/// FP register pair 10.
pub const F10: FReg = FReg(10);
/// FP register pair 12.
pub const F12: FReg = FReg(12);
/// FP register pair 14.
pub const F14: FReg = FReg(14);
/// FP register pair 16.
pub const F16: FReg = FReg(16);
/// FP register pair 18.
pub const F18: FReg = FReg(18);
/// FP register pair 20.
pub const F20: FReg = FReg(20);
/// FP register pair 22.
pub const F22: FReg = FReg(22);
/// FP register pair 24.
pub const F24: FReg = FReg(24);
/// FP register pair 26.
pub const F26: FReg = FReg(26);
/// FP register pair 28.
pub const F28: FReg = FReg(28);
/// FP register pair 30.
pub const F30: FReg = FReg(30);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_convention() {
        assert_eq!(ZERO.name(), "zero");
        assert_eq!(SP.name(), "sp");
        assert_eq!(RA.name(), "ra");
        assert_eq!(K0.name(), "k0");
        assert_eq!(format!("{}", A0), "a0");
        assert_eq!(format!("{}", F12), "f12");
    }

    #[test]
    fn indices_round_trip() {
        for i in 0..32u8 {
            assert_eq!(Reg(i).idx(), i as usize);
        }
    }
}
