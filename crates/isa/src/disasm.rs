//! Disassembly of W3K instructions to assembler syntax.
//!
//! Used by the Figure-2 reproduction to print code sequences before
//! and after epoxie instrumentation, and by diagnostics throughout.

use crate::encode::decode;
use crate::inst::Inst;

/// Formats one instruction in assembler syntax.
pub fn disasm(i: Inst) -> String {
    use Inst::*;
    match i {
        Sll { rd, rt, sh } => {
            if rd.0 == 0 && rt.0 == 0 && sh == 0 {
                "nop".to_string()
            } else {
                format!("sll     {rd},{rt},{sh}")
            }
        }
        Srl { rd, rt, sh } => format!("srl     {rd},{rt},{sh}"),
        Sra { rd, rt, sh } => format!("sra     {rd},{rt},{sh}"),
        Sllv { rd, rt, rs } => format!("sllv    {rd},{rt},{rs}"),
        Srlv { rd, rt, rs } => format!("srlv    {rd},{rt},{rs}"),
        Srav { rd, rt, rs } => format!("srav    {rd},{rt},{rs}"),
        Addu { rd, rs, rt } => format!("addu    {rd},{rs},{rt}"),
        Subu { rd, rs, rt } => format!("subu    {rd},{rs},{rt}"),
        And { rd, rs, rt } => format!("and     {rd},{rs},{rt}"),
        Or { rd, rs, rt } => format!("or      {rd},{rs},{rt}"),
        Xor { rd, rs, rt } => format!("xor     {rd},{rs},{rt}"),
        Nor { rd, rs, rt } => format!("nor     {rd},{rs},{rt}"),
        Slt { rd, rs, rt } => format!("slt     {rd},{rs},{rt}"),
        Sltu { rd, rs, rt } => format!("sltu    {rd},{rs},{rt}"),
        Mult { rs, rt } => format!("mult    {rs},{rt}"),
        Multu { rs, rt } => format!("multu   {rs},{rt}"),
        Div { rs, rt } => format!("div     {rs},{rt}"),
        Divu { rs, rt } => format!("divu    {rs},{rt}"),
        Mfhi { rd } => format!("mfhi    {rd}"),
        Mflo { rd } => format!("mflo    {rd}"),
        Mthi { rs } => format!("mthi    {rs}"),
        Mtlo { rs } => format!("mtlo    {rs}"),
        Addiu { rt, rs, imm } => {
            if rs.0 == 0 && imm >= 0 {
                if rt.0 == 0 {
                    // The special no-op epoxie plants in the jal bbtrace
                    // delay slot: a load-immediate to the zero register.
                    format!("li      zero,{imm}")
                } else {
                    format!("li      {rt},{imm}")
                }
            } else {
                format!("addiu   {rt},{rs},{imm}")
            }
        }
        Slti { rt, rs, imm } => format!("slti    {rt},{rs},{imm}"),
        Sltiu { rt, rs, imm } => format!("sltiu   {rt},{rs},{imm}"),
        Andi { rt, rs, imm } => format!("andi    {rt},{rs},{imm:#x}"),
        Ori { rt, rs, imm } => format!("ori     {rt},{rs},{imm:#x}"),
        Xori { rt, rs, imm } => format!("xori    {rt},{rs},{imm:#x}"),
        Lui { rt, imm } => format!("lui     {rt},{imm:#x}"),
        Lb { rt, base, off } => format!("lb      {rt},{off}({base})"),
        Lbu { rt, base, off } => format!("lbu     {rt},{off}({base})"),
        Lh { rt, base, off } => format!("lh      {rt},{off}({base})"),
        Lhu { rt, base, off } => format!("lhu     {rt},{off}({base})"),
        Lw { rt, base, off } => format!("lw      {rt},{off}({base})"),
        Sb { rt, base, off } => format!("sb      {rt},{off}({base})"),
        Sh { rt, base, off } => format!("sh      {rt},{off}({base})"),
        Sw { rt, base, off } => format!("sw      {rt},{off}({base})"),
        Lwc1 { ft, base, off } => format!("lwc1    {ft},{off}({base})"),
        Swc1 { ft, base, off } => format!("swc1    {ft},{off}({base})"),
        Cache { op, base, off } => format!("cache   {op},{off}({base})"),
        Beq { rs, rt, off } => format!("beq     {rs},{rt},{off}"),
        Bne { rs, rt, off } => format!("bne     {rs},{rt},{off}"),
        Blez { rs, off } => format!("blez    {rs},{off}"),
        Bgtz { rs, off } => format!("bgtz    {rs},{off}"),
        Bltz { rs, off } => format!("bltz    {rs},{off}"),
        Bgez { rs, off } => format!("bgez    {rs},{off}"),
        J { target } => format!("j       {:#x}", target << 2),
        Jal { target } => format!("jal     {:#x}", target << 2),
        Jr { rs } => format!("jr      {rs}"),
        Jalr { rd, rs } => format!("jalr    {rd},{rs}"),
        Syscall { code } => format!("syscall {code}"),
        Break { code } => format!("break   {code}"),
        Mfc0 { rt, rd } => format!("mfc0    {rt},${rd}"),
        Mtc0 { rt, rd } => format!("mtc0    {rt},${rd}"),
        Tlbr => "tlbr".to_string(),
        Tlbwi => "tlbwi".to_string(),
        Tlbwr => "tlbwr".to_string(),
        Tlbp => "tlbp".to_string(),
        Rfe => "rfe".to_string(),
        Mfc1 { rt, fs } => format!("mfc1    {rt},{fs}"),
        Mtc1 { rt, fs } => format!("mtc1    {rt},{fs}"),
        AddD { fd, fs, ft } => format!("add.d   {fd},{fs},{ft}"),
        SubD { fd, fs, ft } => format!("sub.d   {fd},{fs},{ft}"),
        MulD { fd, fs, ft } => format!("mul.d   {fd},{fs},{ft}"),
        DivD { fd, fs, ft } => format!("div.d   {fd},{fs},{ft}"),
        AbsD { fd, fs } => format!("abs.d   {fd},{fs}"),
        MovD { fd, fs } => format!("mov.d   {fd},{fs}"),
        NegD { fd, fs } => format!("neg.d   {fd},{fs}"),
        CvtDW { fd, fs } => format!("cvt.d.w {fd},{fs}"),
        CvtWD { fd, fs } => format!("cvt.w.d {fd},{fs}"),
        CEqD { fs, ft } => format!("c.eq.d  {fs},{ft}"),
        CLtD { fs, ft } => format!("c.lt.d  {fs},{ft}"),
        CLeD { fs, ft } => format!("c.le.d  {fs},{ft}"),
        Bc1t { off } => format!("bc1t    {off}"),
        Bc1f { off } => format!("bc1f    {off}"),
    }
}

/// Disassembles a raw instruction word, or formats it as `.word`.
pub fn disasm_word(w: u32) -> String {
    match decode(w) {
        Ok(i) => disasm(i),
        Err(_) => format!(".word   {w:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::*;

    #[test]
    fn nop_prints_as_nop() {
        assert_eq!(disasm_word(0), "nop");
    }

    #[test]
    fn special_noop_prints_as_li_zero() {
        let i = Inst::Addiu {
            rt: ZERO,
            rs: ZERO,
            imm: 4,
        };
        assert_eq!(disasm(i), "li      zero,4");
    }

    #[test]
    fn figure2_style_store() {
        let i = Inst::Sw {
            rt: RA,
            base: SP,
            off: 20,
        };
        assert_eq!(disasm(i), "sw      ra,20(sp)");
        assert_eq!(disasm_word(encode(i)), "sw      ra,20(sp)");
    }
}
