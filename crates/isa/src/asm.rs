//! An embedded assembler for W3K.
//!
//! Programs — the twelve workloads, the kernels and the tracing
//! runtime — are written in Rust against this builder API, which plays
//! the role of the Mahler/MIPS assembler: it records labels as
//! symbols, emits relocations for every branch, jump and address
//! constant, and carries the supplementary side tables (basic-block
//! flags, uninstrumentable ranges) that the link-time instrumenter
//! needs.
//!
//! # Examples
//!
//! ```
//! use wrl_isa::asm::Asm;
//! use wrl_isa::reg::*;
//!
//! let mut a = Asm::new("demo");
//! a.global("main");
//! a.label("main");
//! a.li(T0, 10);
//! a.label("loop");
//! a.addiu(T0, T0, -1);
//! a.bne(T0, ZERO, "loop");
//! a.nop(); // delay slot
//! a.jr(RA);
//! a.nop();
//! let obj = a.finish();
//! assert!(obj.symbol("main").is_some());
//! ```

use crate::encode::encode;
use crate::inst::Inst;
use crate::obj::{Object, Reloc, RelocKind, SecId, Symbol, TextRange};
use crate::reg::{FReg, Reg, AT, RA, ZERO};

/// Assembler state building one [`Object`].
pub struct Asm {
    obj: Object,
    cur: SecId,
    uninstr_open: Option<u32>,
    hand_open: Option<u32>,
}

impl Asm {
    /// Creates a new assembler for an object named `name`, positioned
    /// in the text section.
    pub fn new(name: &str) -> Asm {
        Asm {
            obj: Object::new(name),
            cur: SecId::Text,
            uninstr_open: None,
            hand_open: None,
        }
    }

    /// Switches to the text section.
    pub fn text(&mut self) {
        self.cur = SecId::Text;
    }

    /// Switches to the data section.
    pub fn data(&mut self) {
        self.cur = SecId::Data;
    }

    /// Current byte offset in the active section.
    pub fn here(&self) -> u32 {
        match self.cur {
            SecId::Text => self.obj.text_bytes(),
            SecId::Data => self.obj.data.len() as u32,
            SecId::Bss => self.obj.bss_size,
        }
    }

    /// Defines a label at the current position (a local symbol, unless
    /// previously marked global with [`Asm::global`]).
    pub fn label(&mut self, name: &str) {
        let (sec, off) = (self.cur, self.here());
        if let Some(s) = self
            .obj
            .symbols
            .iter_mut()
            .find(|s| s.name == name && s.off == u32::MAX)
        {
            // Resolve a forward `global` declaration.
            s.sec = sec;
            s.off = off;
            return;
        }
        self.obj.symbols.push(Symbol {
            name: name.to_string(),
            sec,
            off,
            global: false,
        });
    }

    /// Marks a previously- or subsequently-defined label as global.
    pub fn global(&mut self, name: &str) {
        if let Some(s) = self.obj.symbols.iter_mut().find(|s| s.name == name) {
            s.global = true;
        } else {
            // Remember the request; applied when the label appears.
            self.obj.symbols.push(Symbol {
                name: name.to_string(),
                sec: SecId::Text,
                off: u32::MAX,
                global: true,
            });
        }
    }

    /// Defines a global label at the current position.
    pub fn global_label(&mut self, name: &str) {
        let here = self.here();
        let cur = self.cur;
        if let Some(s) = self.obj.symbols.iter_mut().find(|s| s.name == name) {
            s.sec = cur;
            s.off = here;
            s.global = true;
        } else {
            self.obj.symbols.push(Symbol {
                name: name.to_string(),
                sec: cur,
                off: here,
                global: true,
            });
        }
    }

    /// Opens an uninstrumented region: epoxie will not rewrite the
    /// instructions emitted until [`Asm::end_uninstrumented`].
    pub fn begin_uninstrumented(&mut self) {
        assert!(self.uninstr_open.is_none(), "uninstrumented region open");
        self.uninstr_open = Some(self.here());
    }

    /// Closes the uninstrumented region opened previously.
    pub fn end_uninstrumented(&mut self) {
        let start = self
            .uninstr_open
            .take()
            .expect("no uninstrumented region open");
        let end = self.here();
        self.obj.uninstrumented.push(TextRange { start, end });
    }

    /// Opens a hand-traced region (left alone by epoxie; its trace
    /// records are emitted by hand-written code inside the region).
    pub fn begin_hand_traced(&mut self) {
        assert!(self.hand_open.is_none(), "hand-traced region open");
        self.hand_open = Some(self.here());
    }

    /// Closes the hand-traced region opened previously.
    pub fn end_hand_traced(&mut self) {
        let start = self.hand_open.take().expect("no hand-traced region open");
        let end = self.here();
        self.obj.hand_traced.push(TextRange { start, end });
    }

    /// Flags the basic block starting here as beginning idle-loop
    /// execution (instruction counting, §3.5).
    pub fn mark_idle_start(&mut self) {
        let off = self.here();
        self.obj.bb_flags.entry(off).or_default().idle_start = true;
    }

    /// Flags the basic block starting here as ending idle-loop
    /// execution.
    pub fn mark_idle_stop(&mut self) {
        let off = self.here();
        self.obj.bb_flags.entry(off).or_default().idle_stop = true;
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, i: Inst) {
        assert_eq!(self.cur, SecId::Text, "instructions only in .text");
        self.obj.text.push(encode(i));
    }

    fn text_reloc(&mut self, kind: RelocKind, sym: &str, addend: i32) {
        let off = self.here();
        self.obj.text_relocs.push(Reloc {
            off,
            kind,
            sym: sym.to_string(),
            addend,
        });
    }

    // ---- data directives ----

    /// Aligns the data section to a 4-byte boundary.
    pub fn align4(&mut self) {
        assert_eq!(self.cur, SecId::Data);
        while !self.obj.data.len().is_multiple_of(4) {
            self.obj.data.push(0);
        }
    }

    /// Emits a 32-bit little-endian word in the data section.
    pub fn word(&mut self, w: u32) {
        assert_eq!(self.cur, SecId::Data);
        self.obj.data.extend_from_slice(&w.to_le_bytes());
    }

    /// Emits a word holding the address of `sym + addend`.
    pub fn word_sym(&mut self, sym: &str, addend: i32) {
        assert_eq!(self.cur, SecId::Data);
        let off = self.obj.data.len() as u32;
        self.obj.data_relocs.push(Reloc {
            off,
            kind: RelocKind::Word32,
            sym: sym.to_string(),
            addend,
        });
        self.word(0);
    }

    /// Emits raw bytes in the data section.
    pub fn bytes(&mut self, b: &[u8]) {
        assert_eq!(self.cur, SecId::Data);
        self.obj.data.extend_from_slice(b);
    }

    /// Emits a NUL-terminated string in the data section.
    pub fn asciiz(&mut self, s: &str) {
        assert_eq!(self.cur, SecId::Data);
        self.obj.data.extend_from_slice(s.as_bytes());
        self.obj.data.push(0);
    }

    /// Reserves `n` zeroed bytes in the data section.
    pub fn space(&mut self, n: u32) {
        assert_eq!(self.cur, SecId::Data);
        self.obj.data.resize(self.obj.data.len() + n as usize, 0);
    }

    /// Reserves `n` bytes of bss and labels them `name`.
    pub fn bss(&mut self, name: &str, n: u32) {
        let off = self.obj.bss_size;
        self.obj.symbols.push(Symbol {
            name: name.to_string(),
            sec: SecId::Bss,
            off,
            global: false,
        });
        self.obj.bss_size += (n + 3) & !3;
    }

    // ---- pseudo-instructions ----

    /// `nop`.
    pub fn nop(&mut self) {
        self.inst(Inst::nop());
    }

    /// Loads a 32-bit constant into `rt` (one or two instructions).
    pub fn li(&mut self, rt: Reg, v: i32) {
        let u = v as u32;
        if (-32768..=32767).contains(&v) {
            self.inst(Inst::Addiu {
                rt,
                rs: ZERO,
                imm: v as i16,
            });
        } else if u <= 0xffff {
            self.inst(Inst::Ori {
                rt,
                rs: ZERO,
                imm: u as u16,
            });
        } else {
            self.inst(Inst::Lui {
                rt,
                imm: (u >> 16) as u16,
            });
            if u & 0xffff != 0 {
                self.inst(Inst::Ori {
                    rt,
                    rs: rt,
                    imm: (u & 0xffff) as u16,
                });
            }
        }
    }

    /// Loads the address of `sym` into `rt` (always two instructions,
    /// with Hi16/Lo16 relocations).
    pub fn la(&mut self, rt: Reg, sym: &str) {
        self.la_off(rt, sym, 0);
    }

    /// Loads the address of `sym + addend` into `rt`.
    pub fn la_off(&mut self, rt: Reg, sym: &str, addend: i32) {
        self.text_reloc(RelocKind::Hi16, sym, addend);
        self.inst(Inst::Lui { rt, imm: 0 });
        self.text_reloc(RelocKind::Lo16, sym, addend);
        self.inst(Inst::Ori { rt, rs: rt, imm: 0 });
    }

    /// `move rd, rs` (`addu rd, rs, zero`).
    pub fn move_(&mut self, rd: Reg, rs: Reg) {
        self.inst(Inst::Addu { rd, rs, rt: ZERO });
    }

    /// Unconditional branch to a label (`beq zero, zero, label`).
    pub fn b(&mut self, label: &str) {
        self.beq(ZERO, ZERO, label);
    }

    /// Subtract immediate: `addiu rt, rs, -imm`.
    pub fn subiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.inst(Inst::Addiu { rt, rs, imm: -imm });
    }

    // ---- branches and jumps (label-relative, relocated) ----

    /// `beq rs, rt, label`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.text_reloc(RelocKind::Br16, label, 0);
        self.inst(Inst::Beq { rs, rt, off: 0 });
    }

    /// `bne rs, rt, label`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.text_reloc(RelocKind::Br16, label, 0);
        self.inst(Inst::Bne { rs, rt, off: 0 });
    }

    /// `blez rs, label`.
    pub fn blez(&mut self, rs: Reg, label: &str) {
        self.text_reloc(RelocKind::Br16, label, 0);
        self.inst(Inst::Blez { rs, off: 0 });
    }

    /// `bgtz rs, label`.
    pub fn bgtz(&mut self, rs: Reg, label: &str) {
        self.text_reloc(RelocKind::Br16, label, 0);
        self.inst(Inst::Bgtz { rs, off: 0 });
    }

    /// `bltz rs, label`.
    pub fn bltz(&mut self, rs: Reg, label: &str) {
        self.text_reloc(RelocKind::Br16, label, 0);
        self.inst(Inst::Bltz { rs, off: 0 });
    }

    /// `bgez rs, label`.
    pub fn bgez(&mut self, rs: Reg, label: &str) {
        self.text_reloc(RelocKind::Br16, label, 0);
        self.inst(Inst::Bgez { rs, off: 0 });
    }

    /// `bc1t label` (branch if FP condition set).
    pub fn bc1t(&mut self, label: &str) {
        self.text_reloc(RelocKind::Br16, label, 0);
        self.inst(Inst::Bc1t { off: 0 });
    }

    /// `bc1f label`.
    pub fn bc1f(&mut self, label: &str) {
        self.text_reloc(RelocKind::Br16, label, 0);
        self.inst(Inst::Bc1f { off: 0 });
    }

    /// `j label`.
    pub fn j(&mut self, label: &str) {
        self.text_reloc(RelocKind::J26, label, 0);
        self.inst(Inst::J { target: 0 });
    }

    /// `jal label`.
    pub fn jal(&mut self, label: &str) {
        self.text_reloc(RelocKind::J26, label, 0);
        self.inst(Inst::Jal { target: 0 });
    }

    /// `jr rs`.
    pub fn jr(&mut self, rs: Reg) {
        self.inst(Inst::Jr { rs });
    }

    /// `jalr rs` (link register `ra`).
    pub fn jalr(&mut self, rs: Reg) {
        self.inst(Inst::Jalr { rd: RA, rs });
    }

    // ---- plain instruction helpers ----

    /// `addiu rt, rs, imm`.
    pub fn addiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.inst(Inst::Addiu { rt, rs, imm });
    }

    /// `addu rd, rs, rt`.
    pub fn addu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::Addu { rd, rs, rt });
    }

    /// `subu rd, rs, rt`.
    pub fn subu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::Subu { rd, rs, rt });
    }

    /// `and rd, rs, rt`.
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::And { rd, rs, rt });
    }

    /// `or rd, rs, rt`.
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::Or { rd, rs, rt });
    }

    /// `xor rd, rs, rt`.
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::Xor { rd, rs, rt });
    }

    /// `nor rd, rs, rt`.
    pub fn nor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::Nor { rd, rs, rt });
    }

    /// `slt rd, rs, rt`.
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::Slt { rd, rs, rt });
    }

    /// `sltu rd, rs, rt`.
    pub fn sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::Sltu { rd, rs, rt });
    }

    /// `slti rt, rs, imm`.
    pub fn slti(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.inst(Inst::Slti { rt, rs, imm });
    }

    /// `sltiu rt, rs, imm`.
    pub fn sltiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.inst(Inst::Sltiu { rt, rs, imm });
    }

    /// `andi rt, rs, imm`.
    pub fn andi(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.inst(Inst::Andi { rt, rs, imm });
    }

    /// `ori rt, rs, imm`.
    pub fn ori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.inst(Inst::Ori { rt, rs, imm });
    }

    /// `xori rt, rs, imm`.
    pub fn xori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.inst(Inst::Xori { rt, rs, imm });
    }

    /// `lui rt, imm`.
    pub fn lui(&mut self, rt: Reg, imm: u16) {
        self.inst(Inst::Lui { rt, imm });
    }

    /// `sll rd, rt, sh`.
    pub fn sll(&mut self, rd: Reg, rt: Reg, sh: u8) {
        self.inst(Inst::Sll { rd, rt, sh });
    }

    /// `srl rd, rt, sh`.
    pub fn srl(&mut self, rd: Reg, rt: Reg, sh: u8) {
        self.inst(Inst::Srl { rd, rt, sh });
    }

    /// `sra rd, rt, sh`.
    pub fn sra(&mut self, rd: Reg, rt: Reg, sh: u8) {
        self.inst(Inst::Sra { rd, rt, sh });
    }

    /// `sllv rd, rt, rs`.
    pub fn sllv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.inst(Inst::Sllv { rd, rt, rs });
    }

    /// `srlv rd, rt, rs`.
    pub fn srlv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.inst(Inst::Srlv { rd, rt, rs });
    }

    /// `mult rs, rt`.
    pub fn mult(&mut self, rs: Reg, rt: Reg) {
        self.inst(Inst::Mult { rs, rt });
    }

    /// `multu rs, rt`.
    pub fn multu(&mut self, rs: Reg, rt: Reg) {
        self.inst(Inst::Multu { rs, rt });
    }

    /// `div rs, rt`.
    pub fn div(&mut self, rs: Reg, rt: Reg) {
        self.inst(Inst::Div { rs, rt });
    }

    /// `divu rs, rt`.
    pub fn divu(&mut self, rs: Reg, rt: Reg) {
        self.inst(Inst::Divu { rs, rt });
    }

    /// `mfhi rd`.
    pub fn mfhi(&mut self, rd: Reg) {
        self.inst(Inst::Mfhi { rd });
    }

    /// `mflo rd`.
    pub fn mflo(&mut self, rd: Reg) {
        self.inst(Inst::Mflo { rd });
    }

    /// `lw rt, off(base)`.
    pub fn lw(&mut self, rt: Reg, off: i16, base: Reg) {
        self.inst(Inst::Lw { rt, base, off });
    }

    /// `lb rt, off(base)`.
    pub fn lb(&mut self, rt: Reg, off: i16, base: Reg) {
        self.inst(Inst::Lb { rt, base, off });
    }

    /// `lbu rt, off(base)`.
    pub fn lbu(&mut self, rt: Reg, off: i16, base: Reg) {
        self.inst(Inst::Lbu { rt, base, off });
    }

    /// `lh rt, off(base)`.
    pub fn lh(&mut self, rt: Reg, off: i16, base: Reg) {
        self.inst(Inst::Lh { rt, base, off });
    }

    /// `lhu rt, off(base)`.
    pub fn lhu(&mut self, rt: Reg, off: i16, base: Reg) {
        self.inst(Inst::Lhu { rt, base, off });
    }

    /// `sw rt, off(base)`.
    pub fn sw(&mut self, rt: Reg, off: i16, base: Reg) {
        self.inst(Inst::Sw { rt, base, off });
    }

    /// `sb rt, off(base)`.
    pub fn sb(&mut self, rt: Reg, off: i16, base: Reg) {
        self.inst(Inst::Sb { rt, base, off });
    }

    /// `sh rt, off(base)`.
    pub fn sh(&mut self, rt: Reg, off: i16, base: Reg) {
        self.inst(Inst::Sh { rt, base, off });
    }

    /// `lwc1 ft, off(base)`.
    pub fn lwc1(&mut self, ft: FReg, off: i16, base: Reg) {
        self.inst(Inst::Lwc1 { ft, base, off });
    }

    /// `swc1 ft, off(base)`.
    pub fn swc1(&mut self, ft: FReg, off: i16, base: Reg) {
        self.inst(Inst::Swc1 { ft, base, off });
    }

    /// Loads the double at `off(base)` into pair `ft` (two `lwc1`).
    pub fn ldc1(&mut self, ft: FReg, off: i16, base: Reg) {
        self.lwc1(ft, off, base);
        self.lwc1(FReg(ft.0 + 1), off + 4, base);
    }

    /// Stores the double in pair `ft` to `off(base)` (two `swc1`).
    pub fn sdc1(&mut self, ft: FReg, off: i16, base: Reg) {
        self.swc1(ft, off, base);
        self.swc1(FReg(ft.0 + 1), off + 4, base);
    }

    /// `syscall` with a code field.
    pub fn syscall(&mut self, code: u32) {
        self.inst(Inst::Syscall { code });
    }

    /// `break` with a code field.
    pub fn break_(&mut self, code: u32) {
        self.inst(Inst::Break { code });
    }

    /// `mfc0 rt, cp0reg`.
    pub fn mfc0(&mut self, rt: Reg, rd: u8) {
        self.inst(Inst::Mfc0 { rt, rd });
    }

    /// `mtc0 rt, cp0reg`.
    pub fn mtc0(&mut self, rt: Reg, rd: u8) {
        self.inst(Inst::Mtc0 { rt, rd });
    }

    /// `add.d fd, fs, ft`.
    pub fn add_d(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.inst(Inst::AddD { fd, fs, ft });
    }

    /// `sub.d fd, fs, ft`.
    pub fn sub_d(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.inst(Inst::SubD { fd, fs, ft });
    }

    /// `mul.d fd, fs, ft`.
    pub fn mul_d(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.inst(Inst::MulD { fd, fs, ft });
    }

    /// `div.d fd, fs, ft`.
    pub fn div_d(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.inst(Inst::DivD { fd, fs, ft });
    }

    /// `mov.d fd, fs`.
    pub fn mov_d(&mut self, fd: FReg, fs: FReg) {
        self.inst(Inst::MovD { fd, fs });
    }

    /// `neg.d fd, fs`.
    pub fn neg_d(&mut self, fd: FReg, fs: FReg) {
        self.inst(Inst::NegD { fd, fs });
    }

    /// `abs.d fd, fs`.
    pub fn abs_d(&mut self, fd: FReg, fs: FReg) {
        self.inst(Inst::AbsD { fd, fs });
    }

    /// `cvt.d.w fd, fs`.
    pub fn cvt_d_w(&mut self, fd: FReg, fs: FReg) {
        self.inst(Inst::CvtDW { fd, fs });
    }

    /// `cvt.w.d fd, fs`.
    pub fn cvt_w_d(&mut self, fd: FReg, fs: FReg) {
        self.inst(Inst::CvtWD { fd, fs });
    }

    /// `c.lt.d fs, ft`.
    pub fn c_lt_d(&mut self, fs: FReg, ft: FReg) {
        self.inst(Inst::CLtD { fs, ft });
    }

    /// `c.le.d fs, ft`.
    pub fn c_le_d(&mut self, fs: FReg, ft: FReg) {
        self.inst(Inst::CLeD { fs, ft });
    }

    /// `c.eq.d fs, ft`.
    pub fn c_eq_d(&mut self, fs: FReg, ft: FReg) {
        self.inst(Inst::CEqD { fs, ft });
    }

    /// `mtc1 rt, fs`.
    pub fn mtc1(&mut self, rt: Reg, fs: FReg) {
        self.inst(Inst::Mtc1 { rt, fs });
    }

    /// `mfc1 rt, fs`.
    pub fn mfc1(&mut self, rt: Reg, fs: FReg) {
        self.inst(Inst::Mfc1 { rt, fs });
    }

    /// Loads the IEEE-754 double constant `v` into pair `ft` via `at`.
    pub fn li_d(&mut self, ft: FReg, v: f64) {
        let bits = v.to_bits();
        let lo = bits as u32;
        let hi = (bits >> 32) as u32;
        self.li(AT, lo as i32);
        self.mtc1(AT, ft);
        self.li(AT, hi as i32);
        self.mtc1(AT, FReg(ft.0 + 1));
    }

    /// Finalises and returns the object module.
    ///
    /// # Panics
    ///
    /// Panics if an uninstrumented or hand-traced region is left open,
    /// or if a `global` request never saw its label.
    pub fn finish(self) -> Object {
        assert!(
            self.uninstr_open.is_none(),
            "unclosed uninstrumented region"
        );
        assert!(self.hand_open.is_none(), "unclosed hand-traced region");
        for s in &self.obj.symbols {
            assert!(
                s.off != u32::MAX,
                "global symbol `{}` was never defined in {}",
                s.name,
                self.obj.name
            );
        }
        self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn labels_and_relocs() {
        let mut a = Asm::new("t");
        a.label("start");
        a.li(T0, 3);
        a.label("loop");
        a.addiu(T0, T0, -1);
        a.bne(T0, ZERO, "loop");
        a.nop();
        let o = a.finish();
        assert_eq!(o.text.len(), 4);
        assert_eq!(o.symbol("loop").unwrap().off, 4);
        assert_eq!(o.text_relocs.len(), 1);
        assert_eq!(o.text_relocs[0].off, 8);
    }

    #[test]
    fn la_emits_two_relocs() {
        let mut a = Asm::new("t");
        a.la(T1, "buf");
        a.data();
        a.label("buf");
        a.word(42);
        let o = a.finish();
        assert_eq!(o.text_relocs.len(), 2);
        assert!(matches!(o.text_relocs[0].kind, RelocKind::Hi16));
        assert!(matches!(o.text_relocs[1].kind, RelocKind::Lo16));
    }

    #[test]
    fn li_widths() {
        let mut a = Asm::new("t");
        a.li(T0, 5); // 1 inst
        a.li(T0, -5); // 1 inst
        a.li(T0, 0x1_0000); // lui only
        a.li(T0, 0x12345678); // lui+ori
        let o = a.finish();
        assert_eq!(o.text.len(), 5);
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_global_panics() {
        let mut a = Asm::new("t");
        a.global("missing");
        a.finish();
    }

    #[test]
    fn idle_flags_recorded() {
        let mut a = Asm::new("t");
        a.nop();
        a.mark_idle_start();
        a.label("idle");
        a.nop();
        let o = a.finish();
        assert!(o.bb_flags.get(&4).unwrap().idle_start);
    }
}
