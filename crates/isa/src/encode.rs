//! Binary encoding and decoding of W3K instructions.
//!
//! The encodings follow MIPS-I: a 6-bit major opcode, with `SPECIAL`
//! (0) and `REGIMM` (1) subdecodes and coprocessor opcodes for CP0 and
//! CP1. Code lives in simulated memory in this 32-bit form; the
//! `memtrace` runtime routine relies on being able to *partially*
//! decode the instruction in its caller's delay slot to find the base
//! register and offset of a memory reference, exactly as the paper's
//! memtrace does (§3.2).

use crate::inst::Inst;
use crate::reg::{FReg, Reg};

/// Error produced when a word does not decode to a valid instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The undecodable instruction word.
    pub word: u32,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "reserved instruction {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Major opcodes.
const OP_SPECIAL: u32 = 0;
const OP_REGIMM: u32 = 1;
const OP_J: u32 = 2;
const OP_JAL: u32 = 3;
const OP_BEQ: u32 = 4;
const OP_BNE: u32 = 5;
const OP_BLEZ: u32 = 6;
const OP_BGTZ: u32 = 7;
const OP_ADDIU: u32 = 9;
const OP_SLTI: u32 = 10;
const OP_SLTIU: u32 = 11;
const OP_ANDI: u32 = 12;
const OP_ORI: u32 = 13;
const OP_XORI: u32 = 14;
const OP_LUI: u32 = 15;
const OP_COP0: u32 = 16;
const OP_COP1: u32 = 17;
const OP_LB: u32 = 32;
const OP_LH: u32 = 33;
const OP_LW: u32 = 35;
const OP_LBU: u32 = 36;
const OP_LHU: u32 = 37;
const OP_SB: u32 = 40;
const OP_SH: u32 = 41;
const OP_SW: u32 = 43;
const OP_CACHE: u32 = 47;
const OP_LWC1: u32 = 49;
const OP_SWC1: u32 = 57;

// SPECIAL function codes.
const F_SLL: u32 = 0;
const F_SRL: u32 = 2;
const F_SRA: u32 = 3;
const F_SLLV: u32 = 4;
const F_SRLV: u32 = 6;
const F_SRAV: u32 = 7;
const F_JR: u32 = 8;
const F_JALR: u32 = 9;
const F_SYSCALL: u32 = 12;
const F_BREAK: u32 = 13;
const F_MFHI: u32 = 16;
const F_MTHI: u32 = 17;
const F_MFLO: u32 = 18;
const F_MTLO: u32 = 19;
const F_MULT: u32 = 24;
const F_MULTU: u32 = 25;
const F_DIV: u32 = 26;
const F_DIVU: u32 = 27;
const F_ADDU: u32 = 33;
const F_SUBU: u32 = 35;
const F_AND: u32 = 36;
const F_OR: u32 = 37;
const F_XOR: u32 = 38;
const F_NOR: u32 = 39;
const F_SLT: u32 = 42;
const F_SLTU: u32 = 43;

// CP1 (double format) function codes.
const FD_ADD: u32 = 0;
const FD_SUB: u32 = 1;
const FD_MUL: u32 = 2;
const FD_DIV: u32 = 3;
const FD_ABS: u32 = 5;
const FD_MOV: u32 = 6;
const FD_NEG: u32 = 7;
const FD_CVTW: u32 = 36;
const FD_CEQ: u32 = 50;
const FD_CLT: u32 = 60;
const FD_CLE: u32 = 62;

#[inline]
fn rtype(op: u32, rs: u32, rt: u32, rd: u32, sh: u32, f: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (sh << 6) | f
}

#[inline]
fn itype(op: u32, rs: u32, rt: u32, imm: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (imm & 0xffff)
}

/// Extracts the `rs`/base field (bits 25:21) of an encoded instruction.
#[inline]
pub fn field_rs(word: u32) -> u8 {
    ((word >> 21) & 31) as u8
}

/// Extracts the `rt` field (bits 20:16) of an encoded instruction.
#[inline]
pub fn field_rt(word: u32) -> u8 {
    ((word >> 16) & 31) as u8
}

/// Extracts the sign-extended 16-bit immediate of an encoded instruction.
#[inline]
pub fn field_imm(word: u32) -> i16 {
    word as u16 as i16
}

/// Extracts the major opcode (bits 31:26).
#[inline]
pub fn field_op(word: u32) -> u8 {
    (word >> 26) as u8
}

/// Returns true if the encoded word is a store instruction.
///
/// This is the partial decode that the `memtrace` runtime performs on
/// the instruction in its caller's delay slot.
pub fn encoded_is_store(word: u32) -> bool {
    matches!(field_op(word) as u32, OP_SB | OP_SH | OP_SW | OP_SWC1)
}

/// Encodes an instruction to its 32-bit binary form.
pub fn encode(inst: Inst) -> u32 {
    use Inst::*;
    let r = |r: Reg| r.0 as u32;
    let f = |f: FReg| f.0 as u32;
    match inst {
        Sll { rd, rt, sh } => rtype(OP_SPECIAL, 0, r(rt), r(rd), sh as u32, F_SLL),
        Srl { rd, rt, sh } => rtype(OP_SPECIAL, 0, r(rt), r(rd), sh as u32, F_SRL),
        Sra { rd, rt, sh } => rtype(OP_SPECIAL, 0, r(rt), r(rd), sh as u32, F_SRA),
        Sllv { rd, rt, rs } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_SLLV),
        Srlv { rd, rt, rs } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_SRLV),
        Srav { rd, rt, rs } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_SRAV),
        Addu { rd, rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_ADDU),
        Subu { rd, rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_SUBU),
        And { rd, rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_AND),
        Or { rd, rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_OR),
        Xor { rd, rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_XOR),
        Nor { rd, rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_NOR),
        Slt { rd, rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_SLT),
        Sltu { rd, rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), r(rd), 0, F_SLTU),
        Mult { rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), 0, 0, F_MULT),
        Multu { rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), 0, 0, F_MULTU),
        Div { rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), 0, 0, F_DIV),
        Divu { rs, rt } => rtype(OP_SPECIAL, r(rs), r(rt), 0, 0, F_DIVU),
        Mfhi { rd } => rtype(OP_SPECIAL, 0, 0, r(rd), 0, F_MFHI),
        Mflo { rd } => rtype(OP_SPECIAL, 0, 0, r(rd), 0, F_MFLO),
        Mthi { rs } => rtype(OP_SPECIAL, r(rs), 0, 0, 0, F_MTHI),
        Mtlo { rs } => rtype(OP_SPECIAL, r(rs), 0, 0, 0, F_MTLO),
        Jr { rs } => rtype(OP_SPECIAL, r(rs), 0, 0, 0, F_JR),
        Jalr { rd, rs } => rtype(OP_SPECIAL, r(rs), 0, r(rd), 0, F_JALR),
        Syscall { code } => ((code & 0xfffff) << 6) | F_SYSCALL,
        Break { code } => ((code & 0xfffff) << 6) | F_BREAK,
        Addiu { rt, rs, imm } => itype(OP_ADDIU, r(rs), r(rt), imm as u16 as u32),
        Slti { rt, rs, imm } => itype(OP_SLTI, r(rs), r(rt), imm as u16 as u32),
        Sltiu { rt, rs, imm } => itype(OP_SLTIU, r(rs), r(rt), imm as u16 as u32),
        Andi { rt, rs, imm } => itype(OP_ANDI, r(rs), r(rt), imm as u32),
        Ori { rt, rs, imm } => itype(OP_ORI, r(rs), r(rt), imm as u32),
        Xori { rt, rs, imm } => itype(OP_XORI, r(rs), r(rt), imm as u32),
        Lui { rt, imm } => itype(OP_LUI, 0, r(rt), imm as u32),
        Lb { rt, base, off } => itype(OP_LB, r(base), r(rt), off as u16 as u32),
        Lbu { rt, base, off } => itype(OP_LBU, r(base), r(rt), off as u16 as u32),
        Lh { rt, base, off } => itype(OP_LH, r(base), r(rt), off as u16 as u32),
        Lhu { rt, base, off } => itype(OP_LHU, r(base), r(rt), off as u16 as u32),
        Lw { rt, base, off } => itype(OP_LW, r(base), r(rt), off as u16 as u32),
        Sb { rt, base, off } => itype(OP_SB, r(base), r(rt), off as u16 as u32),
        Sh { rt, base, off } => itype(OP_SH, r(base), r(rt), off as u16 as u32),
        Sw { rt, base, off } => itype(OP_SW, r(base), r(rt), off as u16 as u32),
        Lwc1 { ft, base, off } => itype(OP_LWC1, r(base), f(ft), off as u16 as u32),
        Swc1 { ft, base, off } => itype(OP_SWC1, r(base), f(ft), off as u16 as u32),
        Cache { op, base, off } => itype(OP_CACHE, r(base), op as u32, off as u16 as u32),
        Beq { rs, rt, off } => itype(OP_BEQ, r(rs), r(rt), off as u16 as u32),
        Bne { rs, rt, off } => itype(OP_BNE, r(rs), r(rt), off as u16 as u32),
        Blez { rs, off } => itype(OP_BLEZ, r(rs), 0, off as u16 as u32),
        Bgtz { rs, off } => itype(OP_BGTZ, r(rs), 0, off as u16 as u32),
        Bltz { rs, off } => itype(OP_REGIMM, r(rs), 0, off as u16 as u32),
        Bgez { rs, off } => itype(OP_REGIMM, r(rs), 1, off as u16 as u32),
        J { target } => (OP_J << 26) | (target & 0x03ff_ffff),
        Jal { target } => (OP_JAL << 26) | (target & 0x03ff_ffff),
        Mfc0 { rt, rd } => rtype(OP_COP0, 0, r(rt), rd as u32, 0, 0),
        Mtc0 { rt, rd } => rtype(OP_COP0, 4, r(rt), rd as u32, 0, 0),
        Tlbr => (OP_COP0 << 26) | (1 << 25) | 1,
        Tlbwi => (OP_COP0 << 26) | (1 << 25) | 2,
        Tlbwr => (OP_COP0 << 26) | (1 << 25) | 6,
        Tlbp => (OP_COP0 << 26) | (1 << 25) | 8,
        Rfe => (OP_COP0 << 26) | (1 << 25) | 16,
        Mfc1 { rt, fs } => rtype(OP_COP1, 0, r(rt), f(fs), 0, 0),
        Mtc1 { rt, fs } => rtype(OP_COP1, 4, r(rt), f(fs), 0, 0),
        Bc1t { off } => itype(OP_COP1, 8, 1, off as u16 as u32),
        Bc1f { off } => itype(OP_COP1, 8, 0, off as u16 as u32),
        AddD { fd, fs, ft } => rtype(OP_COP1, 17, f(ft), f(fs), f(fd), FD_ADD),
        SubD { fd, fs, ft } => rtype(OP_COP1, 17, f(ft), f(fs), f(fd), FD_SUB),
        MulD { fd, fs, ft } => rtype(OP_COP1, 17, f(ft), f(fs), f(fd), FD_MUL),
        DivD { fd, fs, ft } => rtype(OP_COP1, 17, f(ft), f(fs), f(fd), FD_DIV),
        AbsD { fd, fs } => rtype(OP_COP1, 17, 0, f(fs), f(fd), FD_ABS),
        MovD { fd, fs } => rtype(OP_COP1, 17, 0, f(fs), f(fd), FD_MOV),
        NegD { fd, fs } => rtype(OP_COP1, 17, 0, f(fs), f(fd), FD_NEG),
        CvtWD { fd, fs } => rtype(OP_COP1, 17, 0, f(fs), f(fd), FD_CVTW),
        CEqD { fs, ft } => rtype(OP_COP1, 17, f(ft), f(fs), 0, FD_CEQ),
        CLtD { fs, ft } => rtype(OP_COP1, 17, f(ft), f(fs), 0, FD_CLT),
        CLeD { fs, ft } => rtype(OP_COP1, 17, f(ft), f(fs), 0, FD_CLE),
        CvtDW { fd, fs } => rtype(OP_COP1, 20, 0, f(fs), f(fd), 33),
    }
}

/// Decodes a 32-bit word to an instruction.
///
/// Returns [`DecodeError`] for reserved encodings, which the simulator
/// turns into a Reserved Instruction exception.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    use Inst::*;
    let op = word >> 26;
    let rs = Reg(((word >> 21) & 31) as u8);
    let rt = Reg(((word >> 16) & 31) as u8);
    let rd = Reg(((word >> 11) & 31) as u8);
    let sh = ((word >> 6) & 31) as u8;
    let imm = word as u16 as i16;
    let uimm = word as u16;
    let err = Err(DecodeError { word });
    Ok(match op {
        OP_SPECIAL => match word & 63 {
            F_SLL => Sll { rd, rt, sh },
            F_SRL => Srl { rd, rt, sh },
            F_SRA => Sra { rd, rt, sh },
            F_SLLV => Sllv { rd, rt, rs },
            F_SRLV => Srlv { rd, rt, rs },
            F_SRAV => Srav { rd, rt, rs },
            F_JR => Jr { rs },
            F_JALR => Jalr { rd, rs },
            F_SYSCALL => Syscall {
                code: (word >> 6) & 0xfffff,
            },
            F_BREAK => Break {
                code: (word >> 6) & 0xfffff,
            },
            F_MFHI => Mfhi { rd },
            F_MTHI => Mthi { rs },
            F_MFLO => Mflo { rd },
            F_MTLO => Mtlo { rs },
            F_MULT => Mult { rs, rt },
            F_MULTU => Multu { rs, rt },
            F_DIV => Div { rs, rt },
            F_DIVU => Divu { rs, rt },
            F_ADDU => Addu { rd, rs, rt },
            F_SUBU => Subu { rd, rs, rt },
            F_AND => And { rd, rs, rt },
            F_OR => Or { rd, rs, rt },
            F_XOR => Xor { rd, rs, rt },
            F_NOR => Nor { rd, rs, rt },
            F_SLT => Slt { rd, rs, rt },
            F_SLTU => Sltu { rd, rs, rt },
            _ => return err,
        },
        OP_REGIMM => match rt.0 {
            0 => Bltz { rs, off: imm },
            1 => Bgez { rs, off: imm },
            _ => return err,
        },
        OP_J => J {
            target: word & 0x03ff_ffff,
        },
        OP_JAL => Jal {
            target: word & 0x03ff_ffff,
        },
        OP_BEQ => Beq { rs, rt, off: imm },
        OP_BNE => Bne { rs, rt, off: imm },
        OP_BLEZ => Blez { rs, off: imm },
        OP_BGTZ => Bgtz { rs, off: imm },
        OP_ADDIU => Addiu { rt, rs, imm },
        OP_SLTI => Slti { rt, rs, imm },
        OP_SLTIU => Sltiu { rt, rs, imm },
        OP_ANDI => Andi { rt, rs, imm: uimm },
        OP_ORI => Ori { rt, rs, imm: uimm },
        OP_XORI => Xori { rt, rs, imm: uimm },
        OP_LUI => Lui { rt, imm: uimm },
        OP_LB => Lb {
            rt,
            base: rs,
            off: imm,
        },
        OP_LH => Lh {
            rt,
            base: rs,
            off: imm,
        },
        OP_LW => Lw {
            rt,
            base: rs,
            off: imm,
        },
        OP_LBU => Lbu {
            rt,
            base: rs,
            off: imm,
        },
        OP_LHU => Lhu {
            rt,
            base: rs,
            off: imm,
        },
        OP_SB => Sb {
            rt,
            base: rs,
            off: imm,
        },
        OP_SH => Sh {
            rt,
            base: rs,
            off: imm,
        },
        OP_SW => Sw {
            rt,
            base: rs,
            off: imm,
        },
        OP_CACHE => Cache {
            op: rt.0,
            base: rs,
            off: imm,
        },
        OP_LWC1 => Lwc1 {
            ft: FReg(rt.0),
            base: rs,
            off: imm,
        },
        OP_SWC1 => Swc1 {
            ft: FReg(rt.0),
            base: rs,
            off: imm,
        },
        OP_COP0 => {
            if word & (1 << 25) != 0 {
                match word & 63 {
                    1 => Tlbr,
                    2 => Tlbwi,
                    6 => Tlbwr,
                    8 => Tlbp,
                    16 => Rfe,
                    _ => return err,
                }
            } else {
                match rs.0 {
                    0 => Mfc0 { rt, rd: rd.0 },
                    4 => Mtc0 { rt, rd: rd.0 },
                    _ => return err,
                }
            }
        }
        OP_COP1 => match rs.0 {
            0 => Mfc1 { rt, fs: FReg(rd.0) },
            4 => Mtc1 { rt, fs: FReg(rd.0) },
            8 => match rt.0 {
                0 => Bc1f { off: imm },
                1 => Bc1t { off: imm },
                _ => return err,
            },
            17 => {
                let ft = FReg(rt.0);
                let fs = FReg(rd.0);
                let fd = FReg(sh);
                match word & 63 {
                    FD_ADD => AddD { fd, fs, ft },
                    FD_SUB => SubD { fd, fs, ft },
                    FD_MUL => MulD { fd, fs, ft },
                    FD_DIV => DivD { fd, fs, ft },
                    FD_ABS => AbsD { fd, fs },
                    FD_MOV => MovD { fd, fs },
                    FD_NEG => NegD { fd, fs },
                    FD_CVTW => CvtWD { fd, fs },
                    FD_CEQ => CEqD { fs, ft },
                    FD_CLT => CLtD { fs, ft },
                    FD_CLE => CLeD { fs, ft },
                    _ => return err,
                }
            }
            20 => match word & 63 {
                33 => CvtDW {
                    fd: FReg(sh),
                    fs: FReg(rd.0),
                },
                _ => return err,
            },
            _ => return err,
        },
        _ => return err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(encode(Inst::nop()), 0);
        assert_eq!(decode(0).unwrap(), Inst::nop());
    }

    #[test]
    fn store_partial_decode() {
        let w = encode(Inst::Sw {
            rt: RA,
            base: SP,
            off: 20,
        });
        assert!(encoded_is_store(w));
        assert_eq!(field_rs(w), SP.0);
        assert_eq!(field_imm(w), 20);
        let l = encode(Inst::Lw {
            rt: T0,
            base: GP,
            off: -8,
        });
        assert!(!encoded_is_store(l));
        assert_eq!(field_rs(l), GP.0);
        assert_eq!(field_imm(l), -8);
    }

    #[test]
    fn reserved_word_fails() {
        assert!(decode(0xffff_ffff).is_err());
        // Major opcode 8 (ADDI with overflow trap) is not implemented.
        assert!(decode(8 << 26).is_err());
    }
}
