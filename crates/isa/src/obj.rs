//! Relocatable object modules.
//!
//! The paper's epoxie rewrites *object files at link time* rather than
//! executables, because "the symbol and relocation tables present in
//! object code allow epoxie to distinguish unambiguously between uses
//! of addresses and uses of coincidentally similar constants", and
//! allow all address correction to be done statically (§3.2). This
//! module defines that object format: a text section of instruction
//! words, a data section of bytes, a bss size, symbols, relocations,
//! and the supplementary side tables (uninstrumentable ranges,
//! hand-traced ranges, idle-loop flags) that Mahler-style object
//! modules carried to support code modification.

use std::collections::HashMap;

/// Identifies a section within an object module.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SecId {
    /// Executable instructions (word granularity).
    Text,
    /// Initialised data (byte granularity).
    Data,
    /// Uninitialised data (size only).
    Bss,
}

/// The kind of fixup a relocation applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelocKind {
    /// High 16 bits of an absolute address, patched into a `lui`.
    Hi16,
    /// Low 16 bits of an absolute address, patched into an `ori`.
    Lo16,
    /// A full 32-bit absolute address in the data section.
    Word32,
    /// The 26-bit word-target field of a `j`/`jal`.
    J26,
    /// The 16-bit PC-relative word offset of a conditional branch.
    Br16,
}

/// A relocation: patch the item at `off` within a section so that it
/// refers to `sym + addend`.
#[derive(Clone, Debug)]
pub struct Reloc {
    /// Byte offset of the patched word within its section.
    pub off: u32,
    /// What kind of field to patch.
    pub kind: RelocKind,
    /// Name of the referenced symbol (local to the object, or global).
    pub sym: String,
    /// Constant added to the symbol's address.
    pub addend: i32,
}

/// A symbol: a named location within a section.
#[derive(Clone, Debug)]
pub struct Symbol {
    /// The symbol name.
    pub name: String,
    /// Which section it lives in.
    pub sec: SecId,
    /// Byte offset within that section.
    pub off: u32,
    /// Whether the symbol is visible to other objects.
    pub global: bool,
}

/// Per-basic-block flags recorded by the assembler and honoured by the
/// instrumentation tools and the trace parser (§3.5).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct BbFlags {
    /// Entering this block starts the idle-loop instruction counter.
    pub idle_start: bool,
    /// Entering this block stops the idle-loop instruction counter.
    pub idle_stop: bool,
}

/// A half-open byte range `[start, end)` within the text section.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TextRange {
    /// Inclusive start offset.
    pub start: u32,
    /// Exclusive end offset.
    pub end: u32,
}

impl TextRange {
    /// Returns true if `off` lies within the range.
    pub fn contains(&self, off: u32) -> bool {
        off >= self.start && off < self.end
    }
}

/// A relocatable object module.
#[derive(Clone, Debug, Default)]
pub struct Object {
    /// Module name (for diagnostics).
    pub name: String,
    /// Text section as instruction words.
    pub text: Vec<u32>,
    /// Initialised data bytes.
    pub data: Vec<u8>,
    /// Size of the zero-initialised bss section in bytes.
    pub bss_size: u32,
    /// Symbol table.
    pub symbols: Vec<Symbol>,
    /// Relocations against the text section.
    pub text_relocs: Vec<Reloc>,
    /// Relocations against the data section.
    pub data_relocs: Vec<Reloc>,
    /// Text ranges that must not be rewritten by the instrumenter at
    /// all (they implement the tracing system itself, §3.3).
    pub uninstrumented: Vec<TextRange>,
    /// Text ranges instrumented by hand: the instrumenter leaves them
    /// alone but the trace parser knows their (hand-emitted) records.
    pub hand_traced: Vec<TextRange>,
    /// Flags attached to basic blocks, keyed by text byte offset.
    pub bb_flags: HashMap<u32, BbFlags>,
}

impl Object {
    /// Creates an empty object module with the given name.
    pub fn new(name: &str) -> Object {
        Object {
            name: name.to_string(),
            ..Object::default()
        }
    }

    /// Looks up a symbol by name within this object.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Returns true if the text byte offset falls in an uninstrumented
    /// or hand-traced range (epoxie must not rewrite it).
    pub fn is_protected(&self, off: u32) -> bool {
        self.uninstrumented.iter().any(|r| r.contains(off))
            || self.hand_traced.iter().any(|r| r.contains(off))
    }

    /// Total text size in bytes.
    pub fn text_bytes(&self) -> u32 {
        (self.text.len() * 4) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_ranges() {
        let mut o = Object::new("t");
        o.uninstrumented.push(TextRange { start: 8, end: 16 });
        o.hand_traced.push(TextRange { start: 32, end: 36 });
        assert!(!o.is_protected(4));
        assert!(o.is_protected(8));
        assert!(o.is_protected(12));
        assert!(!o.is_protected(16));
        assert!(o.is_protected(32));
    }

    #[test]
    fn symbol_lookup() {
        let mut o = Object::new("t");
        o.symbols.push(Symbol {
            name: "main".into(),
            sec: SecId::Text,
            off: 0,
            global: true,
        });
        assert!(o.symbol("main").is_some());
        assert!(o.symbol("absent").is_none());
    }
}
