//! The W3K instruction-set architecture.
//!
//! W3K is a MIPS-I-like 32-bit RISC ISA — the substrate on which this
//! reproduction of *Software Methods for System Address Tracing*
//! (Chen, Wall & Borg, WRL 94/6) runs. The crate provides:
//!
//! * [`inst`] / [`mod@encode`] — the instruction set and its 32-bit binary
//!   encoding, including the partial-decode helpers the `memtrace`
//!   runtime uses on delay-slot instructions;
//! * [`asm`] — an embedded assembler producing relocatable [`obj`]
//!   modules with the symbol, relocation and basic-block side tables
//!   that link-time instrumentation depends on;
//! * [`mod@link`] — the linker that lays out executables and applies all
//!   address correction statically;
//! * [`disasm`] — a disassembler for diagnostics and the Figure-2
//!   reproduction.

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod link;
pub mod obj;
pub mod reg;

pub use asm::Asm;
pub use encode::{decode, encode, DecodeError};
pub use inst::{Inst, MemClass, Width};
pub use link::{link, Executable, Layout, LinkError, Linked, Placement};
pub use obj::{BbFlags, Object, Reloc, RelocKind, SecId, Symbol, TextRange};
pub use reg::{FReg, Reg};
