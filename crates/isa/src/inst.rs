//! The W3K instruction set.
//!
//! W3K is a MIPS-I-like 32-bit RISC ISA with branch delay slots, a
//! HI/LO multiply unit, a system control coprocessor (CP0) managing a
//! software-refilled TLB, and a double-precision floating-point
//! coprocessor (CP1). The subset implemented here is the subset the
//! WRL tracing systems depended on: every user-visible instruction the
//! workloads and the kernel need, plus the privileged TLB and
//! exception-return instructions.

use crate::reg::{FReg, Reg};

/// Width of a memory access in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Width {
    /// One byte.
    Byte,
    /// Two bytes (halfword).
    Half,
    /// Four bytes (word).
    Word,
}

impl Width {
    /// Returns the access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }
}

/// A decoded W3K instruction.
///
/// Instructions are stored in simulated memory in their 32-bit binary
/// encoding (see [`mod@crate::encode`]); this enum is the decoded form used
/// by the simulator, the assembler and the instrumentation tools.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    // --- Shifts ---
    /// Shift left logical by immediate. `sll rd, rt, sh`.
    Sll { rd: Reg, rt: Reg, sh: u8 },
    /// Shift right logical by immediate.
    Srl { rd: Reg, rt: Reg, sh: u8 },
    /// Shift right arithmetic by immediate.
    Sra { rd: Reg, rt: Reg, sh: u8 },
    /// Shift left logical by register.
    Sllv { rd: Reg, rt: Reg, rs: Reg },
    /// Shift right logical by register.
    Srlv { rd: Reg, rt: Reg, rs: Reg },
    /// Shift right arithmetic by register.
    Srav { rd: Reg, rt: Reg, rs: Reg },

    // --- Three-register ALU ---
    /// Add unsigned (no overflow trap).
    Addu { rd: Reg, rs: Reg, rt: Reg },
    /// Subtract unsigned.
    Subu { rd: Reg, rs: Reg, rt: Reg },
    /// Bitwise AND.
    And { rd: Reg, rs: Reg, rt: Reg },
    /// Bitwise OR.
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// Bitwise XOR.
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// Bitwise NOR.
    Nor { rd: Reg, rs: Reg, rt: Reg },
    /// Set on less than (signed).
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// Set on less than (unsigned).
    Sltu { rd: Reg, rs: Reg, rt: Reg },

    // --- Multiply / divide ---
    /// Signed multiply into HI/LO.
    Mult { rs: Reg, rt: Reg },
    /// Unsigned multiply into HI/LO.
    Multu { rs: Reg, rt: Reg },
    /// Signed divide into LO (quotient) / HI (remainder).
    Div { rs: Reg, rt: Reg },
    /// Unsigned divide.
    Divu { rs: Reg, rt: Reg },
    /// Move from HI.
    Mfhi { rd: Reg },
    /// Move from LO.
    Mflo { rd: Reg },
    /// Move to HI.
    Mthi { rs: Reg },
    /// Move to LO.
    Mtlo { rs: Reg },

    // --- Immediate ALU ---
    /// Add immediate unsigned (sign-extended immediate, no trap).
    Addiu { rt: Reg, rs: Reg, imm: i16 },
    /// Set on less than immediate (signed).
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// Set on less than immediate (unsigned comparison).
    Sltiu { rt: Reg, rs: Reg, imm: i16 },
    /// AND with zero-extended immediate.
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// OR with zero-extended immediate.
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// XOR with zero-extended immediate.
    Xori { rt: Reg, rs: Reg, imm: u16 },
    /// Load upper immediate.
    Lui { rt: Reg, imm: u16 },

    // --- Loads / stores ---
    /// Load byte (sign-extended).
    Lb { rt: Reg, base: Reg, off: i16 },
    /// Load byte unsigned.
    Lbu { rt: Reg, base: Reg, off: i16 },
    /// Load halfword (sign-extended).
    Lh { rt: Reg, base: Reg, off: i16 },
    /// Load halfword unsigned.
    Lhu { rt: Reg, base: Reg, off: i16 },
    /// Load word.
    Lw { rt: Reg, base: Reg, off: i16 },
    /// Store byte.
    Sb { rt: Reg, base: Reg, off: i16 },
    /// Store halfword.
    Sh { rt: Reg, base: Reg, off: i16 },
    /// Store word.
    Sw { rt: Reg, base: Reg, off: i16 },
    /// Load word to FP coprocessor register.
    Lwc1 { ft: FReg, base: Reg, off: i16 },
    /// Store word from FP coprocessor register.
    Swc1 { ft: FReg, base: Reg, off: i16 },

    // --- Branches (one delay slot each) ---
    /// Branch if equal. `off` is in instructions relative to the delay slot.
    Beq { rs: Reg, rt: Reg, off: i16 },
    /// Branch if not equal.
    Bne { rs: Reg, rt: Reg, off: i16 },
    /// Branch if less than or equal to zero.
    Blez { rs: Reg, off: i16 },
    /// Branch if greater than zero.
    Bgtz { rs: Reg, off: i16 },
    /// Branch if less than zero.
    Bltz { rs: Reg, off: i16 },
    /// Branch if greater than or equal to zero.
    Bgez { rs: Reg, off: i16 },

    // --- Jumps ---
    /// Jump to a 26-bit word target within the current 256 MB region.
    J { target: u32 },
    /// Jump and link: `ra` receives the address after the delay slot.
    Jal { target: u32 },
    /// Jump register.
    Jr { rs: Reg },
    /// Jump and link register.
    Jalr { rd: Reg, rs: Reg },

    // --- Traps ---
    /// System call exception.
    Syscall { code: u32 },
    /// Breakpoint exception.
    Break { code: u32 },

    // --- CP0 (system control) ---
    /// Move from CP0 register `rd`.
    Mfc0 { rt: Reg, rd: u8 },
    /// Move to CP0 register `rd`.
    Mtc0 { rt: Reg, rd: u8 },
    /// Read the TLB entry indexed by CP0 Index.
    Tlbr,
    /// Write the TLB entry indexed by CP0 Index.
    Tlbwi,
    /// Write the TLB entry indexed by CP0 Random.
    Tlbwr,
    /// Probe the TLB for a match with EntryHi.
    Tlbp,
    /// Restore from exception: pop the CP0 status KU/IE stack.
    Rfe,
    /// Cache management: invalidate the line holding `off(base)`.
    ///
    /// `op` 0 invalidates an I-cache line, 1 a D-cache line.
    Cache { op: u8, base: Reg, off: i16 },

    // --- CP1 (floating point, double precision) ---
    /// Move a word from FP register `fs` to GPR `rt`.
    Mfc1 { rt: Reg, fs: FReg },
    /// Move a word from GPR `rt` to FP register `fs`.
    Mtc1 { rt: Reg, fs: FReg },
    /// Double-precision add.
    AddD { fd: FReg, fs: FReg, ft: FReg },
    /// Double-precision subtract.
    SubD { fd: FReg, fs: FReg, ft: FReg },
    /// Double-precision multiply.
    MulD { fd: FReg, fs: FReg, ft: FReg },
    /// Double-precision divide.
    DivD { fd: FReg, fs: FReg, ft: FReg },
    /// Double-precision absolute value.
    AbsD { fd: FReg, fs: FReg },
    /// Double-precision register move.
    MovD { fd: FReg, fs: FReg },
    /// Double-precision negate.
    NegD { fd: FReg, fs: FReg },
    /// Convert word (in `fs`) to double.
    CvtDW { fd: FReg, fs: FReg },
    /// Convert double to word (truncating).
    CvtWD { fd: FReg, fs: FReg },
    /// Compare equal, setting the FP condition bit.
    CEqD { fs: FReg, ft: FReg },
    /// Compare less-than, setting the FP condition bit.
    CLtD { fs: FReg, ft: FReg },
    /// Compare less-or-equal, setting the FP condition bit.
    CLeD { fs: FReg, ft: FReg },
    /// Branch if FP condition true.
    Bc1t { off: i16 },
    /// Branch if FP condition false.
    Bc1f { off: i16 },
}

/// Classification of an instruction's memory behaviour, used by the
/// instrumentation tools and the trace parser.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemClass {
    /// A load from `off(base)`.
    Load { base: Reg, off: i16, width: Width },
    /// A store to `off(base)`.
    Store { base: Reg, off: i16, width: Width },
}

impl Inst {
    /// Returns the canonical no-op (`sll zero, zero, 0`).
    pub const fn nop() -> Inst {
        Inst::Sll {
            rd: Reg(0),
            rt: Reg(0),
            sh: 0,
        }
    }

    /// Returns the memory classification if this is a load or store.
    pub fn mem_class(&self) -> Option<MemClass> {
        use Inst::*;
        Some(match *self {
            Lb { base, off, .. } | Lbu { base, off, .. } => MemClass::Load {
                base,
                off,
                width: Width::Byte,
            },
            Lh { base, off, .. } | Lhu { base, off, .. } => MemClass::Load {
                base,
                off,
                width: Width::Half,
            },
            Lw { base, off, .. } | Lwc1 { base, off, .. } => MemClass::Load {
                base,
                off,
                width: Width::Word,
            },
            Sb { base, off, .. } => MemClass::Store {
                base,
                off,
                width: Width::Byte,
            },
            Sh { base, off, .. } => MemClass::Store {
                base,
                off,
                width: Width::Half,
            },
            Sw { base, off, .. } | Swc1 { base, off, .. } => MemClass::Store {
                base,
                off,
                width: Width::Word,
            },
            _ => return None,
        })
    }

    /// Returns true if this is a conditional branch (PC-relative).
    pub fn is_branch(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Beq { .. }
                | Bne { .. }
                | Blez { .. }
                | Bgtz { .. }
                | Bltz { .. }
                | Bgez { .. }
                | Bc1t { .. }
                | Bc1f { .. }
        )
    }

    /// Returns true if this is any control-transfer instruction
    /// (branch, jump, or trap) that ends a basic block.
    pub fn is_control(&self) -> bool {
        use Inst::*;
        self.is_branch()
            || matches!(
                self,
                J { .. }
                    | Jal { .. }
                    | Jr { .. }
                    | Jalr { .. }
                    | Syscall { .. }
                    | Break { .. }
                    | Rfe
            )
    }

    /// Returns true if the instruction has a branch delay slot.
    pub fn has_delay_slot(&self) -> bool {
        use Inst::*;
        self.is_branch() || matches!(self, J { .. } | Jal { .. } | Jr { .. } | Jalr { .. })
    }

    /// Returns the general-purpose register written by this instruction,
    /// if any.
    pub fn writes_gpr(&self) -> Option<Reg> {
        use Inst::*;
        let r = match *self {
            Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Sllv { rd, .. }
            | Srlv { rd, .. }
            | Srav { rd, .. }
            | Addu { rd, .. }
            | Subu { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Nor { rd, .. }
            | Slt { rd, .. }
            | Sltu { rd, .. }
            | Mfhi { rd }
            | Mflo { rd }
            | Jalr { rd, .. } => rd,
            Addiu { rt, .. }
            | Slti { rt, .. }
            | Sltiu { rt, .. }
            | Andi { rt, .. }
            | Ori { rt, .. }
            | Xori { rt, .. }
            | Lui { rt, .. }
            | Lb { rt, .. }
            | Lbu { rt, .. }
            | Lh { rt, .. }
            | Lhu { rt, .. }
            | Lw { rt, .. }
            | Mfc0 { rt, .. }
            | Mfc1 { rt, .. } => rt,
            Jal { .. } => Reg(31),
            _ => return None,
        };
        if r.0 == 0 {
            None
        } else {
            Some(r)
        }
    }

    /// Returns the general-purpose registers read by this instruction.
    pub fn reads_gprs(&self) -> ([Option<Reg>; 2], ()) {
        use Inst::*;
        let rs2 = |a: Reg, b: Reg| ([Some(a), Some(b)], ());
        let rs1 = |a: Reg| ([Some(a), None], ());
        let rs0 = || ([None, None], ());
        match *self {
            Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => rs1(rt),
            Sllv { rt, rs, .. } | Srlv { rt, rs, .. } | Srav { rt, rs, .. } => rs2(rs, rt),
            Addu { rs, rt, .. }
            | Subu { rs, rt, .. }
            | And { rs, rt, .. }
            | Or { rs, rt, .. }
            | Xor { rs, rt, .. }
            | Nor { rs, rt, .. }
            | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. }
            | Mult { rs, rt }
            | Multu { rs, rt }
            | Div { rs, rt }
            | Divu { rs, rt }
            | Beq { rs, rt, .. }
            | Bne { rs, rt, .. } => rs2(rs, rt),
            Mthi { rs }
            | Mtlo { rs }
            | Jr { rs }
            | Jalr { rs, .. }
            | Blez { rs, .. }
            | Bgtz { rs, .. }
            | Bltz { rs, .. }
            | Bgez { rs, .. } => rs1(rs),
            Addiu { rs, .. }
            | Slti { rs, .. }
            | Sltiu { rs, .. }
            | Andi { rs, .. }
            | Ori { rs, .. }
            | Xori { rs, .. } => rs1(rs),
            Lb { base, .. }
            | Lbu { base, .. }
            | Lh { base, .. }
            | Lhu { base, .. }
            | Lw { base, .. }
            | Lwc1 { base, .. }
            | Cache { base, .. } => rs1(base),
            Sb { rt, base, .. } | Sh { rt, base, .. } | Sw { rt, base, .. } => rs2(base, rt),
            Swc1 { base, .. } => rs1(base),
            Mtc0 { rt, .. } | Mtc1 { rt, .. } => rs1(rt),
            _ => rs0(),
        }
    }

    /// Returns true if the instruction reads general-purpose register `r`.
    pub fn reads_gpr(&self, r: Reg) -> bool {
        let ([a, b], ()) = self.reads_gprs();
        a == Some(r) || b == Some(r)
    }

    /// Returns true if this instruction is privileged (CP0).
    pub fn is_privileged(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Mfc0 { .. } | Mtc0 { .. } | Tlbr | Tlbwi | Tlbwr | Tlbp | Rfe | Cache { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::*;

    #[test]
    fn nop_is_not_control() {
        assert!(!Inst::nop().is_control());
        assert!(Inst::nop().mem_class().is_none());
    }

    #[test]
    fn mem_class_widths() {
        let i = Inst::Lw {
            rt: T0,
            base: SP,
            off: 4,
        };
        assert_eq!(
            i.mem_class(),
            Some(MemClass::Load {
                base: SP,
                off: 4,
                width: Width::Word
            })
        );
        let s = Inst::Sb {
            rt: T0,
            base: A0,
            off: -1,
        };
        assert!(matches!(s.mem_class(), Some(MemClass::Store { .. })));
    }

    #[test]
    fn jal_writes_ra() {
        assert_eq!(Inst::Jal { target: 0 }.writes_gpr(), Some(RA));
        assert_eq!(Inst::Jalr { rd: RA, rs: T9 }.writes_gpr(), Some(RA));
    }

    #[test]
    fn control_classification() {
        assert!(Inst::J { target: 0 }.is_control());
        assert!(Inst::J { target: 0 }.has_delay_slot());
        assert!(Inst::Syscall { code: 0 }.is_control());
        assert!(!Inst::Syscall { code: 0 }.has_delay_slot());
        assert!(Inst::Bc1t { off: -2 }.is_branch());
    }

    #[test]
    fn store_reads_base_and_value() {
        let s = Inst::Sw {
            rt: RA,
            base: SP,
            off: 20,
        };
        assert!(s.reads_gpr(RA));
        assert!(s.reads_gpr(SP));
        assert!(!s.reads_gpr(T0));
    }

    #[test]
    fn writes_to_zero_are_discarded() {
        let i = Inst::Addiu {
            rt: ZERO,
            rs: ZERO,
            imm: 4,
        };
        assert_eq!(i.writes_gpr(), None);
    }
}
