//! Property-based tests of the ISA layer: encode/decode round trips,
//! decoder totality, and assembler/linker invariants.

use proptest::prelude::*;
use wrl_isa::reg::Reg;
use wrl_isa::{decode, encode, FReg, Inst};

/// Strategy over valid general-purpose registers.
fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

/// Even FP register pairs.
fn freg() -> impl Strategy<Value = FReg> {
    (0u8..16).prop_map(|n| FReg(n * 2))
}

/// Strategy over every instruction variant with arbitrary fields.
fn inst() -> impl Strategy<Value = Inst> {
    use Inst::*;
    prop_oneof![
        (reg(), reg(), 0u8..32).prop_map(|(rd, rt, sh)| Sll { rd, rt, sh }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, rt, sh)| Srl { rd, rt, sh }),
        (reg(), reg(), 0u8..32).prop_map(|(rd, rt, sh)| Sra { rd, rt, sh }),
        (reg(), reg(), reg()).prop_map(|(rd, rt, rs)| Sllv { rd, rt, rs }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Addu { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Subu { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| And { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Or { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Nor { rd, rs, rt }),
        (reg(), reg(), reg()).prop_map(|(rd, rs, rt)| Slt { rd, rs, rt }),
        (reg(), reg()).prop_map(|(rs, rt)| Mult { rs, rt }),
        (reg(), reg()).prop_map(|(rs, rt)| Divu { rs, rt }),
        reg().prop_map(|rd| Mfhi { rd }),
        reg().prop_map(|rs| Mtlo { rs }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Addiu { rt, rs, imm }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, rs, imm)| Slti { rt, rs, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Andi { rt, rs, imm }),
        (reg(), reg(), any::<u16>()).prop_map(|(rt, rs, imm)| Ori { rt, rs, imm }),
        (reg(), any::<u16>()).prop_map(|(rt, imm)| Lui { rt, imm }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, off)| Lb { rt, base, off }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, off)| Lhu { rt, base, off }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, off)| Lw { rt, base, off }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, off)| Sb { rt, base, off }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, off)| Sw { rt, base, off }),
        (freg(), reg(), any::<i16>()).prop_map(|(ft, base, off)| Lwc1 { ft, base, off }),
        (freg(), reg(), any::<i16>()).prop_map(|(ft, base, off)| Swc1 { ft, base, off }),
        (reg(), reg(), any::<i16>()).prop_map(|(rs, rt, off)| Beq { rs, rt, off }),
        (reg(), reg(), any::<i16>()).prop_map(|(rs, rt, off)| Bne { rs, rt, off }),
        (reg(), any::<i16>()).prop_map(|(rs, off)| Blez { rs, off }),
        (reg(), any::<i16>()).prop_map(|(rs, off)| Bltz { rs, off }),
        (reg(), any::<i16>()).prop_map(|(rs, off)| Bgez { rs, off }),
        (0u32..(1 << 26)).prop_map(|target| J { target }),
        (0u32..(1 << 26)).prop_map(|target| Jal { target }),
        reg().prop_map(|rs| Jr { rs }),
        (reg(), reg()).prop_map(|(rd, rs)| Jalr { rd, rs }),
        (0u32..(1 << 20)).prop_map(|code| Syscall { code }),
        (0u32..(1 << 20)).prop_map(|code| Break { code }),
        (reg(), 0u8..16).prop_map(|(rt, rd)| Mfc0 { rt, rd }),
        (reg(), 0u8..16).prop_map(|(rt, rd)| Mtc0 { rt, rd }),
        Just(Inst::Tlbwr),
        Just(Inst::Tlbp),
        Just(Inst::Rfe),
        (freg(), freg(), freg()).prop_map(|(fd, fs, ft)| AddD { fd, fs, ft }),
        (freg(), freg(), freg()).prop_map(|(fd, fs, ft)| MulD { fd, fs, ft }),
        (freg(), freg(), freg()).prop_map(|(fd, fs, ft)| DivD { fd, fs, ft }),
        (freg(), freg()).prop_map(|(fd, fs)| CvtDW { fd, fs }),
        (freg(), freg()).prop_map(|(fs, ft)| CLtD { fs, ft }),
        any::<i16>().prop_map(|off| Bc1t { off }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, off)| Sh { rt, base, off }),
        (reg(), reg(), any::<i16>()).prop_map(|(rt, base, off)| Lh { rt, base, off }),
    ]
}

proptest! {
    /// Every constructible instruction round-trips through its
    /// binary encoding.
    #[test]
    fn encode_decode_round_trip(i in inst()) {
        let w = encode(i);
        let back = decode(w).expect("own encodings must decode");
        prop_assert_eq!(back, i);
    }

    /// The decoder never panics on arbitrary words, and re-encoding a
    /// successfully decoded word reproduces it (no information loss
    /// for accepted encodings of the canonical forms).
    #[test]
    fn decode_is_total(w in any::<u32>()) {
        if let Ok(i) = decode(w) {
            // Re-encoded form must itself decode to the same inst
            // (the encoding may canonicalise don't-care fields).
            let w2 = encode(i);
            prop_assert_eq!(decode(w2).unwrap(), i);
        }
    }

    /// Classification helpers agree with the variant structure.
    #[test]
    fn classification_consistency(i in inst()) {
        if i.has_delay_slot() {
            prop_assert!(i.is_control());
        }
        if i.mem_class().is_some() {
            prop_assert!(!i.is_control());
        }
        // Writes to r0 are never reported.
        if let Some(r) = i.writes_gpr() {
            prop_assert!(r.0 != 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Linked straight-line programs place every emitted instruction
    /// and the linker resolves all branches within range.
    #[test]
    fn assembler_linker_round_trip(n in 1usize..60, vals in proptest::collection::vec(any::<i16>(), 1..60)) {
        use wrl_isa::asm::Asm;
        use wrl_isa::link::{link, Layout};
        use wrl_isa::reg::*;
        let mut a = Asm::new("gen");
        a.global_label("main");
        for (k, v) in vals.iter().take(n).enumerate() {
            a.label(&format!("l{k}"));
            a.addiu(T0, T0, *v);
            a.bne(T0, ZERO, &format!("l{k}"));
            a.nop();
        }
        a.jr(RA);
        a.nop();
        let obj = a.finish();
        let words = obj.text.len();
        let linked = link(&[obj], Layout::user(), "main").unwrap();
        prop_assert_eq!(linked.exe.text.len(), words);
        // Every emitted word decodes.
        for w in &linked.exe.text {
            prop_assert!(wrl_isa::decode(*w).is_ok());
        }
    }
}
