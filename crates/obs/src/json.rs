//! Minimal JSON support: string escaping for the exporter and a
//! small strict parser used by the schema-check and pinned-metrics
//! tests (the build environment is offline, so no serde).
//!
//! The parser accepts the full JSON grammar with two deliberate
//! simplifications: numbers are held as `f64` plus the raw text (so
//! integer values up to `u64::MAX` can be recovered exactly via
//! [`JsonValue::as_u64`]), and `\u` escapes outside the BMP are not
//! combined into surrogate pairs (our exports never emit them).

use std::collections::BTreeMap;
use std::fmt;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number: parsed value plus the raw source text.
    Num(f64, String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order normalised).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if it was written as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an exact `i64`, if it was written as one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v, _) => Some(*v),
            _ => None,
        }
    }
}

/// Parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let raw = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        let v: f64 = raw.parse().map_err(|_| self.err("bad number"))?;
        Ok(JsonValue::Num(v, raw.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            map.insert(k, v);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(out));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f — §4.1";
        let js = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&js).unwrap(), JsonValue::Str(nasty.to_string()));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        let o = v.as_object().unwrap();
        let a = o["a"].as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[1].as_u64(), None, "negative is not a u64");
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(o["b"].as_object().unwrap()["c"], JsonValue::Bool(true));
        assert_eq!(o["e"].as_str(), Some("x"));
    }

    #[test]
    fn big_u64_is_exact() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("'single'").is_err());
    }
}
