//! `wrl-obs`: measuring the measurement system.
//!
//! The paper's whole argument rests on quantifying its own tracing
//! machinery — §4.1 measures time dilation, §4.3 measures detection
//! probability. This crate gives the reproduction the same property:
//! a lightweight metrics layer every subsystem records into, so that
//! queue depths, backpressure stalls, phase timings and hot-path
//! event counts are *recorded numbers* instead of ad-hoc prints.
//!
//! # Model
//!
//! Four metric types, all registered by name in a process-global
//! [`Registry`]:
//!
//! * [`Counter`] — a monotonically increasing event count (relaxed
//!   atomic add on the hot path);
//! * [`Gauge`] — a sampled value with a high-water mark (queue
//!   depths, end-of-run exports of hardware counters);
//! * [`Histogram`] — a power-of-two-bucketed value distribution that
//!   supports exact merging;
//! * [`Span`] — a phase timer accumulating call count and total
//!   nanoseconds (see [`Span::start`] and the [`time!`] macro).
//!
//! Registration is **constructor-time, not record-time**: each
//! subsystem registers its full metric set up front (e.g. when a
//! pipeline is built), so the registry's contents are deterministic
//! and `docs/METRICS.md` can be checked against it mechanically, even
//! for metrics whose recording sites never fire in a given run.
//!
//! # Overhead
//!
//! Recording is gated twice:
//!
//! * at **compile time** by the `record` cargo feature (on by
//!   default) — without it every recording call is a no-op and the
//!   optimizer deletes the call entirely;
//! * at **run time** by [`set_recording`] — a single relaxed atomic
//!   load guards each recording call, which lets one binary measure
//!   its own metrics overhead by interleaving recording-on and
//!   recording-off runs (see `crates/bench/src/bin/obs_overhead.rs`
//!   and EXPERIMENTS.md: the measured end-to-end overhead is < 1%).
//!
//! Exports ([`Registry::snapshot`]) always work regardless of either
//! gate; a disabled build simply exports zeros.

#![deny(missing_docs)]

mod json;
mod metric;
mod registry;

pub use json::{parse as parse_json, JsonError, JsonValue};
pub use metric::{Counter, Gauge, HistSnap, Histogram, Kind, Span, SpanTimer, HIST_BUCKETS};
pub use registry::{Desc, MetricSnap, Registry, Snapshot, ValueSnap};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// JSON schema identifier written by [`Snapshot::to_json`]; bumped on
/// any incompatible change to the export format.
pub const SCHEMA: &str = "wrl-obs-metrics/v1";

static RECORDING: AtomicBool = AtomicBool::new(true);

/// Whether recording is currently enabled (compile-time `record`
/// feature AND the runtime switch). Recording sites check this; when
/// it returns `false` they do no atomic writes and read no clocks.
#[inline]
pub fn recording() -> bool {
    cfg!(feature = "record") && RECORDING.load(Ordering::Relaxed)
}

/// Whether this build of `wrl-obs` has the `record` feature — i.e.
/// whether recording sites exist at all. Lets downstream crates
/// (which cannot see this crate's features via `cfg!`) report or
/// branch on the compile-time gate.
pub fn compiled_with_recording() -> bool {
    cfg!(feature = "record")
}

/// Runtime kill-switch for all recording. Registration and export
/// are unaffected. Intended for overhead measurement (interleave
/// on/off runs in one process) and for callers that want a quiet
/// registry; not meant to be toggled while recording sites are
/// mid-flight (a gauge inc/dec pair straddling the toggle can leave
/// a small residue, which [`Registry::reset`] clears).
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// The process-global registry almost all instrumentation uses.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Registers (or looks up) a [`Counter`] in a registry, capturing the
/// call site's file as the metric's source site.
///
/// ```
/// let c = wrl_obs::counter!(wrl_obs::global(), "doc.example.count",
///     "events", "§4.3", "Example counter registered from a doctest.");
/// c.inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($reg:expr, $name:expr, $unit:expr, $paper:expr, $help:expr) => {
        $reg.counter($crate::Desc {
            name: $name,
            unit: $unit,
            site: file!(),
            paper: $paper,
            help: $help,
        })
    };
}

/// Registers (or looks up) a [`Gauge`]; see [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($reg:expr, $name:expr, $unit:expr, $paper:expr, $help:expr) => {
        $reg.gauge($crate::Desc {
            name: $name,
            unit: $unit,
            site: file!(),
            paper: $paper,
            help: $help,
        })
    };
}

/// Registers (or looks up) a [`Histogram`]; see [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($reg:expr, $name:expr, $unit:expr, $paper:expr, $help:expr) => {
        $reg.histogram($crate::Desc {
            name: $name,
            unit: $unit,
            site: file!(),
            paper: $paper,
            help: $help,
        })
    };
}

/// Registers (or looks up) a [`Span`]; see [`counter!`].
#[macro_export]
macro_rules! span {
    ($reg:expr, $name:expr, $unit:expr, $paper:expr, $help:expr) => {
        $reg.span($crate::Desc {
            name: $name,
            unit: $unit,
            site: file!(),
            paper: $paper,
            help: $help,
        })
    };
}

/// Times an expression into a [`Span`]: reads the clock only when
/// [`recording`] is on, records the elapsed nanoseconds when the
/// expression finishes (even via `?`/early return inside a closure —
/// the timer records on drop).
///
/// ```
/// let s = wrl_obs::span!(wrl_obs::global(), "doc.example.phase",
///     "ns", "§5", "Example phase span.");
/// let x = wrl_obs::time!(s, 1 + 1);
/// assert_eq!(x, 2);
/// ```
#[macro_export]
macro_rules! time {
    ($span:expr, $body:expr) => {{
        let _wrl_obs_timer = $span.start();
        $body
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recording_switch_gates_counters() {
        let c = Counter::default();
        c.add(3);
        assert_eq!(c.get(), if cfg!(feature = "record") { 3 } else { 0 });
        set_recording(false);
        c.add(5);
        set_recording(true);
        assert_eq!(c.get(), if cfg!(feature = "record") { 3 } else { 0 });
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        let c = Arc::new(Counter::default());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        if cfg!(feature = "record") {
            assert_eq!(c.get(), 800_000);
        }
    }

    #[test]
    fn macros_register_in_global_registry() {
        let c = counter!(global(), "test.lib.counter", "events", "—", "macro test");
        c.add(2);
        let again = counter!(global(), "test.lib.counter", "events", "—", "macro test");
        again.add(1);
        if cfg!(feature = "record") {
            assert_eq!(c.get(), 3, "same name must yield the same counter");
        }
        let snap = global().snapshot();
        let m = snap
            .metrics
            .iter()
            .find(|m| m.desc.name == "test.lib.counter")
            .expect("registered");
        assert_eq!(m.kind, Kind::Counter);
        assert!(m.desc.site.ends_with("lib.rs"));
    }
}
