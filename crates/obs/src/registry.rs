//! The metrics registry and its export forms.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::json::escape;
use crate::metric::{Counter, Gauge, HistSnap, Histogram, Kind, Span};

/// Static metadata for one metric. `site` is normally filled by the
/// registration macros with `file!()`, so it is the workspace-relative
/// path of the registering module — the "source site" column of
/// `docs/METRICS.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Desc {
    /// Dotted metric name, e.g. `stream.queue.chunks`. Unique per
    /// registry.
    pub name: &'static str,
    /// Unit of the recorded value (`ns`, `events`, `cycles`, …).
    pub unit: &'static str,
    /// Workspace-relative path of the registering file.
    pub site: &'static str,
    /// Paper section this metric illuminates (e.g. `§4.1`).
    pub paper: &'static str,
    /// One-line description.
    pub help: &'static str,
}

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Span(Arc<Span>),
}

impl Handle {
    fn kind(&self) -> Kind {
        match self {
            Handle::Counter(_) => Kind::Counter,
            Handle::Gauge(_) => Kind::Gauge,
            Handle::Histogram(_) => Kind::Histogram,
            Handle::Span(_) => Kind::Span,
        }
    }
}

struct Entry {
    desc: Desc,
    handle: Handle,
}

/// A named collection of metrics. Most code uses the process-global
/// registry ([`crate::global`]); tests can build private ones.
///
/// Registration is idempotent: registering an existing name returns
/// the existing metric (the descriptor must agree). Registering the
/// same name as a different kind panics — that is a programming
/// error, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<&'static str, Entry>>,
}

macro_rules! register_fn {
    ($fn_name:ident, $variant:ident, $ty:ty) => {
        /// Registers (or looks up) a metric of this kind.
        pub fn $fn_name(&self, desc: Desc) -> Arc<$ty> {
            let mut map = self.inner.lock().expect("obs registry lock");
            let entry = map.entry(desc.name).or_insert_with(|| Entry {
                desc,
                handle: Handle::$variant(Arc::new(<$ty>::default())),
            });
            match &entry.handle {
                Handle::$variant(h) => Arc::clone(h),
                other => panic!(
                    "metric {:?} already registered as {}, not {}",
                    desc.name,
                    other.kind().as_str(),
                    Kind::$variant.as_str()
                ),
            }
        }
    };
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    register_fn!(counter, Counter, Counter);
    register_fn!(gauge, Gauge, Gauge);
    register_fn!(histogram, Histogram, Histogram);
    register_fn!(span, Span, Span);

    /// Zeroes every registered metric, keeping the registrations.
    /// Used between interleaved measurement runs and by tests.
    pub fn reset(&self) {
        let map = self.inner.lock().expect("obs registry lock");
        for e in map.values() {
            match &e.handle {
                Handle::Counter(c) => c.reset(),
                Handle::Gauge(g) => g.reset(),
                Handle::Histogram(h) => h.reset(),
                Handle::Span(s) => s.reset(),
            }
        }
    }

    /// Plain-data copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("obs registry lock");
        Snapshot {
            metrics: map
                .values()
                .map(|e| MetricSnap {
                    desc: e.desc,
                    kind: e.handle.kind(),
                    value: match &e.handle {
                        Handle::Counter(c) => ValueSnap::Counter(c.get()),
                        Handle::Gauge(g) => ValueSnap::Gauge {
                            value: g.get(),
                            high: g.high(),
                        },
                        Handle::Histogram(h) => ValueSnap::Histogram(Box::new(h.snap())),
                        Handle::Span(s) => ValueSnap::Span {
                            count: s.count(),
                            total_ns: s.total_ns(),
                            last_ns: s.last_ns(),
                            max_ns: s.max_ns(),
                        },
                    },
                })
                .collect(),
        }
    }
}

/// One metric's state in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct MetricSnap {
    /// Static metadata.
    pub desc: Desc,
    /// Metric kind.
    pub kind: Kind,
    /// Recorded value(s).
    pub value: ValueSnap,
}

/// The kind-specific value payload of a [`MetricSnap`].
#[derive(Clone, Debug)]
pub enum ValueSnap {
    /// Counter value.
    Counter(u64),
    /// Gauge value and high-water mark.
    Gauge {
        /// Last set/accumulated value.
        value: i64,
        /// Highest value reached.
        high: i64,
    },
    /// Full histogram state (boxed: 65 buckets dwarf the other
    /// variants).
    Histogram(Box<HistSnap>),
    /// Span totals.
    Span {
        /// Executions recorded.
        count: u64,
        /// Accumulated nanoseconds.
        total_ns: u64,
        /// Most recent execution's nanoseconds.
        last_ns: u64,
        /// Longest execution's nanoseconds.
        max_ns: u64,
    },
}

/// A plain-data export of a registry, sorted by metric name.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All metrics, ascending by name.
    pub metrics: Vec<MetricSnap>,
}

impl Snapshot {
    /// Serialises to the stable `wrl-obs-metrics/v1` JSON schema (see
    /// `docs/METRICS.md` for the field reference). `labels` are
    /// free-form context pairs (workload, OS, generator) and are
    /// emitted in the given order.
    pub fn to_json(&self, labels: &[(&str, &str)]) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", crate::SCHEMA));
        out.push_str("  \"labels\": {");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
        }
        out.push_str("},\n  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!(
                "\"name\": \"{}\", \"kind\": \"{}\", \"unit\": \"{}\", \"site\": \"{}\", \"paper\": \"{}\"",
                escape(m.desc.name),
                m.kind.as_str(),
                escape(m.desc.unit),
                escape(m.desc.site),
                escape(m.desc.paper),
            ));
            match &m.value {
                ValueSnap::Counter(v) => out.push_str(&format!(", \"value\": {v}")),
                ValueSnap::Gauge { value, high } => {
                    out.push_str(&format!(", \"value\": {value}, \"high\": {high}"))
                }
                ValueSnap::Histogram(h) => {
                    let min = if h.count == 0 { 0 } else { h.min };
                    out.push_str(&format!(
                        ", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                        h.count, h.sum, min, h.max
                    ));
                    for (j, (le, n)) in h.nonzero_buckets().iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{le}, {n}]"));
                    }
                    out.push(']');
                }
                ValueSnap::Span {
                    count,
                    total_ns,
                    last_ns,
                    max_ns,
                } => out.push_str(&format!(
                    ", \"count\": {count}, \"total_ns\": {total_ns}, \"last_ns\": {last_ns}, \"max_ns\": {max_ns}"
                )),
            }
            out.push('}');
            if i + 1 < self.metrics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders an aligned human-readable table.
    pub fn render(&self) -> String {
        let name_w = self
            .metrics
            .iter()
            .map(|m| m.desc.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        out.push_str(&format!(
            "{:name_w$} | {:9} | {:7} | value\n",
            "name", "kind", "unit"
        ));
        out.push_str(&format!("{:-<w$}\n", "", w = name_w + 40));
        for m in &self.metrics {
            let v = match &m.value {
                ValueSnap::Counter(v) => format!("{v}"),
                ValueSnap::Gauge { value, high } => format!("{value} (high {high})"),
                ValueSnap::Histogram(h) => {
                    if h.count == 0 {
                        "empty".to_string()
                    } else {
                        format!(
                            "n={} sum={} min={} max={} mean={:.1}",
                            h.count,
                            h.sum,
                            h.min,
                            h.max,
                            h.sum as f64 / h.count as f64
                        )
                    }
                }
                ValueSnap::Span {
                    count, total_ns, ..
                } => format!("n={} total={:.3}ms", count, *total_ns as f64 / 1e6),
            };
            out.push_str(&format!(
                "{:name_w$} | {:9} | {:7} | {}\n",
                m.desc.name,
                m.kind.as_str(),
                m.desc.unit,
                v
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JsonValue;

    fn desc(name: &'static str) -> Desc {
        Desc {
            name,
            unit: "events",
            site: "crates/obs/src/registry.rs",
            paper: "—",
            help: "test metric",
        }
    }

    #[test]
    fn registration_is_idempotent_and_sorted() {
        let r = Registry::new();
        let a = r.counter(desc("b.count"));
        let b = r.counter(desc("b.count"));
        a.add(1);
        b.add(1);
        r.gauge(desc("a.gauge")).set(5);
        let snap = r.snapshot();
        let names: Vec<_> = snap.metrics.iter().map(|m| m.desc.name).collect();
        assert_eq!(names, vec!["a.gauge", "b.count"], "sorted by name");
        if cfg!(feature = "record") {
            assert!(matches!(snap.metrics[1].value, ValueSnap::Counter(2)));
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter(desc("x"));
        r.gauge(desc("x"));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let r = Registry::new();
        let c = r.counter(desc("c"));
        let h = r.histogram(desc("h"));
        c.add(9);
        h.record(3);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(r.snapshot().metrics.len(), 2);
    }

    #[test]
    fn json_export_parses_and_round_trips_values() {
        let r = Registry::new();
        r.counter(desc("c")).add(7);
        r.gauge(desc("g")).set(-2);
        r.histogram(desc("h")).record(5);
        r.span(desc("s")).record_ns(1000);
        let js = r
            .snapshot()
            .to_json(&[("workload", "sed"), ("os", "ultrix")]);
        let v = crate::parse_json(&js).expect("export must be valid JSON");
        let obj = v.as_object().unwrap();
        assert_eq!(obj["schema"].as_str().unwrap(), crate::SCHEMA, "schema tag");
        assert_eq!(
            obj["labels"].as_object().unwrap()["workload"].as_str(),
            Some("sed")
        );
        let metrics = obj["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 4);
        let by_name = |n: &str| -> &JsonValue {
            metrics
                .iter()
                .find(|m| m.as_object().unwrap()["name"].as_str() == Some(n))
                .unwrap()
        };
        if cfg!(feature = "record") {
            assert_eq!(by_name("c").as_object().unwrap()["value"].as_u64(), Some(7));
            assert_eq!(
                by_name("g").as_object().unwrap()["value"].as_i64(),
                Some(-2)
            );
            assert_eq!(by_name("h").as_object().unwrap()["count"].as_u64(), Some(1));
            assert_eq!(
                by_name("s").as_object().unwrap()["total_ns"].as_u64(),
                Some(1000)
            );
        }
    }

    #[test]
    fn render_mentions_every_metric() {
        let r = Registry::new();
        r.counter(desc("zz.one"));
        r.span(desc("zz.two"));
        let text = r.snapshot().render();
        assert!(text.contains("zz.one") && text.contains("zz.two"));
    }
}
