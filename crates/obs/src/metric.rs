//! The four metric types and their recording primitives.
//!
//! All recording uses relaxed atomics — these are statistics, not
//! synchronization — and every recording method is gated on
//! [`crate::recording`], so a disabled build or a runtime-disabled
//! process pays one predictable branch per call site.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// What a metric is; determines which value fields an export carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing event count.
    Counter,
    /// Sampled value with a high-water mark.
    Gauge,
    /// Power-of-two-bucketed value distribution.
    Histogram,
    /// Phase timer: call count plus accumulated nanoseconds.
    Span,
}

impl Kind {
    /// Lower-case name used in exports and `docs/METRICS.md`.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
            Kind::Span => "span",
        }
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::recording() {
            self.v.fetch_add(n, Relaxed);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.v.load(Relaxed)
    }

    /// Zeroes the counter (export plumbing; not a recording site).
    pub fn reset(&self) {
        self.v.store(0, Relaxed);
    }
}

/// A sampled value with a high-water mark. Used for queue depths
/// (inc/dec around channel operations) and for end-of-run exports of
/// whole-run totals (hardware counters, parse statistics).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
    hi: AtomicI64,
}

impl Gauge {
    /// Sets the value (and raises the high-water mark).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::recording() {
            self.v.store(v, Relaxed);
            self.hi.fetch_max(v, Relaxed);
        }
    }

    /// Adds `d` (use a negative delta to decrement) and raises the
    /// high-water mark past the new value if needed.
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::recording() {
            let now = self.v.fetch_add(d, Relaxed) + d;
            self.hi.fetch_max(now, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Relaxed)
    }

    /// Highest value ever set or reached.
    pub fn high(&self) -> i64 {
        self.hi.load(Relaxed)
    }

    /// Zeroes value and high-water mark.
    pub fn reset(&self) {
        self.v.store(0, Relaxed);
        self.hi.store(0, Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucketing is exact-by-construction mergeable: two histograms over
/// disjoint sample sets merge field-wise into the histogram of the
/// union ([`Histogram::merge_snap`]). `sum`, `min` and `max` are kept
/// exactly alongside the buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Exclusive upper bound of bucket `i` (`1` for bucket 0, else `2^i`).
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= 64 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::recording() {
            self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
            self.min.fetch_min(v, Relaxed);
            self.max.fetch_max(v, Relaxed);
        }
    }

    /// Consistent-enough point-in-time copy (fields are read
    /// individually; quiesce recording for exact snapshots).
    pub fn snap(&self) -> HistSnap {
        HistSnap {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Relaxed)),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }

    /// Folds another histogram's snapshot into this one. Exact:
    /// buckets, count and sum add; min/max combine.
    pub fn merge_snap(&self, other: &HistSnap) {
        for (i, &n) in other.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count, Relaxed);
        self.sum.fetch_add(other.sum, Relaxed);
        self.min.fetch_min(other.min, Relaxed);
        self.max.fetch_max(other.max, Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Zeroes everything.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// A plain-data copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnap {
    /// Per-bucket sample counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistSnap {
    /// `(exclusive upper bound, count)` for each non-empty bucket, in
    /// ascending bound order — the export form.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_bound(i), n))
            .collect()
    }
}

/// A phase timer: how many times a phase ran and how long it took.
#[derive(Debug, Default)]
pub struct Span {
    count: AtomicU64,
    total_ns: AtomicU64,
    last_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Span {
    /// Starts timing one execution of the phase; the returned guard
    /// records on drop. When recording is off no clock is read.
    #[inline]
    pub fn start(&self) -> SpanTimer<'_> {
        SpanTimer {
            span: self,
            t0: crate::recording().then(Instant::now),
        }
    }

    /// Records one phase execution of `ns` nanoseconds directly.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if crate::recording() {
            self.count.fetch_add(1, Relaxed);
            self.total_ns.fetch_add(ns, Relaxed);
            self.last_ns.store(ns, Relaxed);
            self.max_ns.fetch_max(ns, Relaxed);
        }
    }

    /// Executions recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Accumulated nanoseconds across all executions.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Relaxed)
    }

    /// Duration of the most recent execution.
    pub fn last_ns(&self) -> u64 {
        self.last_ns.load(Relaxed)
    }

    /// Longest single execution.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Relaxed)
    }

    /// Zeroes everything.
    pub fn reset(&self) {
        self.count.store(0, Relaxed);
        self.total_ns.store(0, Relaxed);
        self.last_ns.store(0, Relaxed);
        self.max_ns.store(0, Relaxed);
    }
}

/// Drop guard returned by [`Span::start`].
pub struct SpanTimer<'a> {
    span: &'a Span,
    t0: Option<Instant>,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.t0 {
            self.span.record_ns(t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's range is [bound(i-1), bound(i)).
        for v in [0u64, 1, 2, 3, 7, 8, 100, 4095, 4096, 1 << 40] {
            let i = bucket_of(v);
            assert!(v < bucket_bound(i), "v={v} bucket={i}");
            if i > 0 {
                assert!(v >= bucket_bound(i - 1), "v={v} bucket={i}");
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        if !cfg!(feature = "record") {
            return;
        }
        let h = Histogram::default();
        for v in [0u64, 1, 1, 5, 4096] {
            h.record(v);
        }
        let s = h.snap();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 4103);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 4096);
        assert_eq!(
            s.nonzero_buckets(),
            vec![(1, 1), (2, 2), (8, 1), (8192, 1)],
            "0→[0,1); 1,1→[1,2); 5→[4,8); 4096→[4096,8192)"
        );
    }

    #[test]
    fn histogram_merge_equals_union() {
        if !cfg!(feature = "record") {
            return;
        }
        let a = Histogram::default();
        let b = Histogram::default();
        let all = Histogram::default();
        for v in [3u64, 9, 100, 0] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 9, 1 << 30] {
            b.record(v);
            all.record(v);
        }
        a.merge_snap(&b.snap());
        assert_eq!(a.snap(), all.snap(), "merge must equal the union");
    }

    #[test]
    fn concurrent_histogram_is_exact() {
        if !cfg!(feature = "record") {
            return;
        }
        let h = std::sync::Arc::new(Histogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..50_000u64 {
                        h.record(t * 1000 + (i % 7));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 200_000);
    }

    #[test]
    fn gauge_tracks_high_water() {
        if !cfg!(feature = "record") {
            return;
        }
        let g = Gauge::default();
        g.add(1);
        g.add(1);
        g.add(-1);
        g.add(1);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high(), 2);
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.high(), 7);
    }

    #[test]
    fn span_accumulates() {
        if !cfg!(feature = "record") {
            return;
        }
        let s = Span::default();
        s.record_ns(10);
        s.record_ns(30);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_ns(), 40);
        assert_eq!(s.last_ns(), 30);
        assert_eq!(s.max_ns(), 30);
        {
            let _t = s.start();
        }
        assert_eq!(s.count(), 3);
    }
}
