//! Property-based tests of the machine substrate: memory access
//! consistency, write-buffer timing monotonicity, TLB invariants, and
//! arithmetic correctness of the executor against a Rust oracle.

use proptest::prelude::*;
use wrl_machine::cache::{Cache, CacheCfg, WriteBuffer};
use wrl_machine::mem::Mem;
use wrl_machine::tlb::{Tlb, TlbEntry, TlbLookup};

proptest! {
    /// Byte/half/word views of memory agree with a little-endian
    /// shadow model.
    #[test]
    fn memory_matches_shadow(ops in proptest::collection::vec(
        (0u32..4096, any::<u32>(), 0u8..3), 1..200))
    {
        let mut m = Mem::new(8192);
        let mut shadow = vec![0u8; 8192];
        for (addr, val, kind) in ops {
            match kind {
                0 => {
                    m.write_byte(addr, val as u8);
                    shadow[addr as usize] = val as u8;
                }
                1 => {
                    let a = addr & !1;
                    m.write_half(a, val as u16);
                    shadow[a as usize..a as usize + 2]
                        .copy_from_slice(&(val as u16).to_le_bytes());
                }
                _ => {
                    let a = addr & !3;
                    m.write_word(a, val);
                    shadow[a as usize..a as usize + 4].copy_from_slice(&val.to_le_bytes());
                }
            }
        }
        for a in (0..8192u32).step_by(4) {
            let want = u32::from_le_bytes(shadow[a as usize..a as usize + 4].try_into().unwrap());
            prop_assert_eq!(m.read_word(a), want);
        }
    }

    /// The write buffer never travels backwards in time and never
    /// reports spurious stalls when drained.
    #[test]
    fn write_buffer_time_is_monotonic(gaps in proptest::collection::vec(0u64..40, 1..300)) {
        let mut wb = WriteBuffer::new(4, 5);
        let mut now = 0u64;
        let mut prev_stalls = 0;
        for g in gaps {
            now += g;
            let after = wb.push(now);
            prop_assert!(after >= now);
            prop_assert!(wb.stall_cycles >= prev_stalls);
            // A stall can only grow when the buffer was pressed.
            if after > now {
                prop_assert!(wb.stall_cycles > prev_stalls);
            }
            prev_stalls = wb.stall_cycles;
            now = after;
        }
    }

    /// Direct-mapped cache: hit iff the most recent access to this
    /// index had the same tag (oracle model).
    #[test]
    fn cache_matches_oracle(addrs in proptest::collection::vec(0u32..(1 << 16), 1..400)) {
        let cfg = CacheCfg { size: 2048, line: 16 };
        let mut c = Cache::new(cfg);
        let lines = cfg.size / cfg.line;
        let mut oracle = vec![u32::MAX; lines as usize];
        for a in addrs {
            let lineno = a / cfg.line;
            let idx = (lineno % lines) as usize;
            let want_hit = oracle[idx] == lineno;
            prop_assert_eq!(c.access(a), want_hit);
            oracle[idx] = lineno;
        }
    }

    /// TLB: after a random write, looking up that page hits; wired
    /// entries survive any number of random writes.
    #[test]
    fn tlb_random_write_invariants(pages in proptest::collection::vec(1u32..0x4000, 1..150)) {
        let mut t = Tlb::new();
        t.flush();
        // A wired mapping in entry 0.
        t.write_indexed(0, TlbEntry {
            vpn: 0xabcd0, asid: 9, pfn: 0x42, valid: true, dirty: true,
            global: false, noncacheable: false,
        });
        for vpn in pages {
            t.tick();
            t.write_random(TlbEntry {
                vpn, asid: 1, pfn: vpn + 7, valid: true, dirty: true,
                global: false, noncacheable: false,
            });
            match t.lookup(vpn << 12, 1) {
                TlbLookup::Hit { pfn, .. } => prop_assert_eq!(pfn, vpn + 7),
                other => {
                    // A duplicate older entry for the same vpn may
                    // shadow the new one; it must still be a hit.
                    prop_assert!(matches!(other, TlbLookup::Hit { .. }), "{:?}", other);
                }
            }
        }
        // The wired entry is untouched.
        let wired = t.lookup(0xabcd0 << 12, 9);
        prop_assert!(matches!(wired, TlbLookup::Hit { pfn: 0x42, .. }), "wired entry lost");
    }
}

mod exec_oracle {
    use super::*;
    use wrl_isa::asm::Asm;
    use wrl_isa::link::{link, Layout};
    use wrl_isa::reg::*;
    use wrl_machine::{Config, Machine, StopEvent};

    /// ALU operations agree with Rust's wrapping arithmetic.
    #[derive(Debug, Clone, Copy)]
    pub enum Op {
        Add,
        Sub,
        And,
        Or,
        Xor,
        Slt,
        Sltu,
        MulLo,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            Just(Op::Add),
            Just(Op::Sub),
            Just(Op::And),
            Just(Op::Or),
            Just(Op::Xor),
            Just(Op::Slt),
            Just(Op::Sltu),
            Just(Op::MulLo),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn alu_matches_rust(a in any::<i32>(), b in any::<i32>(), o in op()) {
            let mut asmr = Asm::new("alu");
            asmr.global_label("main");
            asmr.li(T0, a);
            asmr.li(T1, b);
            match o {
                Op::Add => asmr.addu(T2, T0, T1),
                Op::Sub => asmr.subu(T2, T0, T1),
                Op::And => asmr.and(T2, T0, T1),
                Op::Or => asmr.or(T2, T0, T1),
                Op::Xor => asmr.xor(T2, T0, T1),
                Op::Slt => asmr.slt(T2, T0, T1),
                Op::Sltu => asmr.sltu(T2, T0, T1),
                Op::MulLo => {
                    asmr.mult(T0, T1);
                    asmr.mflo(T2);
                }
            }
            asmr.break_(0);
            let linked = link(&[asmr.finish()], Layout::user(), "main").unwrap();
            let mut m = Machine::new(Config::bare(), vec![]);
            m.load_executable(&linked.exe);
            m.set_pc(linked.exe.entry);
            prop_assert_eq!(m.run(100), StopEvent::Break(0));
            let want = match o {
                Op::Add => a.wrapping_add(b) as u32,
                Op::Sub => a.wrapping_sub(b) as u32,
                Op::And => (a & b) as u32,
                Op::Or => (a | b) as u32,
                Op::Xor => (a ^ b) as u32,
                Op::Slt => u32::from(a < b),
                Op::Sltu => u32::from((a as u32) < (b as u32)),
                Op::MulLo => (a as i64).wrapping_mul(b as i64) as u32,
            };
            prop_assert_eq!(m.cpu.regs[T2.idx()], want);
        }

        #[test]
        fn fp_add_mul_match_rust(x in -1.0e6f64..1.0e6, y in -1.0e6f64..1.0e6) {
            let mut asmr = Asm::new("fp");
            asmr.global_label("main");
            asmr.li_d(F0, x);
            asmr.li_d(F2, y);
            asmr.add_d(F4, F0, F2);
            asmr.mul_d(F6, F0, F2);
            asmr.break_(0);
            let linked = link(&[asmr.finish()], Layout::user(), "main").unwrap();
            let mut m = Machine::new(Config::bare(), vec![]);
            m.load_executable(&linked.exe);
            m.set_pc(linked.exe.entry);
            prop_assert_eq!(m.run(100), StopEvent::Break(0));
            prop_assert_eq!(m.cpu.get_d(4), x + y);
            prop_assert_eq!(m.cpu.get_d(6), x * y);
        }
    }
}
