//! End-to-end execution tests: assemble W3K programs, run them on the
//! machine, and check architectural behaviour (delay slots, linkage,
//! exceptions, TLB refill, timing counters).

use wrl_isa::asm::Asm;
use wrl_isa::link::{link, Layout};
use wrl_isa::reg::*;
use wrl_machine::{Config, Machine, StopEvent};

/// Assembles, links and loads a bare-mode program; returns the machine
/// ready to run from the entry point.
fn boot(asm: Asm) -> Machine {
    let obj = asm.finish();
    let linked = link(&[obj], Layout::user(), "main").expect("link");
    let mut m = Machine::new(Config::bare(), vec![]);
    m.load_executable(&linked.exe);
    m.set_pc(linked.exe.entry);
    m
}

#[test]
fn arithmetic_loop_computes_sum() {
    let mut a = Asm::new("sum");
    a.global_label("main");
    a.li(T0, 0); // acc
    a.li(T1, 100); // counter
    a.label("loop");
    a.addu(T0, T0, T1);
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "loop");
    a.nop();
    a.break_(0);
    let mut m = boot(a);
    assert_eq!(m.run(10_000), StopEvent::Break(0));
    assert_eq!(m.cpu.regs[T0.idx()], 5050);
}

#[test]
fn delay_slot_executes_after_taken_branch() {
    let mut a = Asm::new("ds");
    a.global_label("main");
    a.li(T0, 0);
    a.b("over");
    a.li(T0, 42); // delay slot must execute
    a.li(T0, 7); // skipped
    a.label("over");
    a.break_(0);
    let mut m = boot(a);
    m.run(100);
    assert_eq!(m.cpu.regs[T0.idx()], 42);
}

#[test]
fn jal_links_past_delay_slot() {
    let mut a = Asm::new("jal");
    a.global_label("main");
    a.jal("fn");
    a.li(T1, 1); // delay slot
    a.li(T2, 2); // return lands here
    a.break_(0);
    a.label("fn");
    a.jr(RA);
    a.nop();
    let mut m = boot(a);
    m.run(100);
    assert_eq!(m.cpu.regs[T1.idx()], 1);
    assert_eq!(m.cpu.regs[T2.idx()], 2);
}

#[test]
fn memory_round_trip_and_counters() {
    let mut a = Asm::new("mem");
    a.global_label("main");
    a.la(T0, "buf");
    a.li(T1, 0x01020304);
    a.sw(T1, 0, T0);
    a.lw(T2, 0, T0);
    a.lbu(T3, 0, T0);
    a.lhu(T4, 2, T0);
    a.sb(T3, 5, T0);
    a.lb(T5, 5, T0);
    a.break_(0);
    a.data();
    a.label("buf");
    a.space(16);
    let mut m = boot(a);
    m.run(100);
    assert_eq!(m.cpu.regs[T2.idx()], 0x01020304);
    assert_eq!(m.cpu.regs[T3.idx()], 0x04);
    assert_eq!(m.cpu.regs[T4.idx()], 0x0102);
    assert_eq!(m.cpu.regs[T5.idx()], 0x04);
    assert_eq!(m.counters.loads, 4);
    assert_eq!(m.counters.stores, 2);
}

#[test]
fn mult_div_and_hilo() {
    let mut a = Asm::new("md");
    a.global_label("main");
    a.li(T0, -6);
    a.li(T1, 7);
    a.mult(T0, T1);
    a.mflo(T2); // -42
    a.li(T0, 43);
    a.li(T1, 5);
    a.div(T0, T1);
    a.mflo(T3); // 8
    a.mfhi(T4); // 3
    a.break_(0);
    let mut m = boot(a);
    m.run(100);
    assert_eq!(m.cpu.regs[T2.idx()] as i32, -42);
    assert_eq!(m.cpu.regs[T3.idx()], 8);
    assert_eq!(m.cpu.regs[T4.idx()], 3);
    // mflo immediately after mult interlocks on both clocks.
    assert!(m.counters.fp_stall_cycles > 0);
    assert!(m.counters.fp_stall_ideal > 0);
}

#[test]
fn fp_pipeline_computes_and_interlocks() {
    let mut a = Asm::new("fp");
    a.global_label("main");
    a.li_d(F0, 1.5);
    a.li_d(F2, 2.5);
    a.add_d(F4, F0, F2); // 4.0
    a.mul_d(F6, F4, F4); // 16.0  (waits on F4)
    a.li_d(F8, 64.0);
    a.div_d(F10, F8, F6); // 4.0
    a.c_lt_d(F6, F8); // 16 < 64
    a.bc1t("yes");
    a.nop();
    a.li(T0, 0);
    a.break_(1);
    a.label("yes");
    a.li(T0, 1);
    a.break_(0);
    let mut m = boot(a);
    assert_eq!(m.run(1000), StopEvent::Break(0));
    assert_eq!(m.cpu.regs[T0.idx()], 1);
    assert_eq!(m.cpu.get_d(10), 4.0);
    assert!(m.counters.fp_stall_cycles > 0);
}

#[test]
fn fp_store_to_memory() {
    let mut a = Asm::new("fps");
    a.global_label("main");
    a.li_d(F0, 3.25);
    a.la(T0, "d");
    a.sdc1(F0, 0, T0);
    a.ldc1(F2, 0, T0);
    a.break_(0);
    a.data();
    a.align4();
    a.label("d");
    a.space(8);
    let mut m = boot(a);
    m.run(100);
    assert_eq!(m.cpu.get_d(2), 3.25);
}

#[test]
fn syscall_returns_to_host_in_bare_mode() {
    let mut a = Asm::new("sys");
    a.global_label("main");
    a.li(V0, 4); // pretend "write"
    a.syscall(0);
    a.li(T0, 99); // resumes here
    a.break_(0);
    let mut m = boot(a);
    assert_eq!(m.run(100), StopEvent::Syscall(0));
    assert_eq!(m.cpu.regs[V0.idx()], 4);
    assert_eq!(m.run(100), StopEvent::Break(0));
    assert_eq!(m.cpu.regs[T0.idx()], 99);
}

#[test]
fn cycle_accounting_exceeds_instruction_count() {
    let mut a = Asm::new("cyc");
    a.global_label("main");
    a.li(T1, 2000);
    a.la(T0, "buf");
    a.label("loop");
    // Stores at a fast rate pressure the write buffer.
    a.sw(T1, 0, T0);
    a.sw(T1, 4, T0);
    a.sw(T1, 8, T0);
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "loop");
    a.nop();
    a.break_(0);
    a.data();
    a.label("buf");
    a.space(64);
    let mut m = boot(a);
    m.run(100_000);
    assert!(m.counters.wb_stall_cycles > 0, "write buffer never stalled");
    assert!(m.counters.cycles > m.counters.insts());
}

#[test]
fn icache_misses_on_large_footprint() {
    // A straight-line function body bigger than the 64 KB I-cache,
    // executed twice: every line misses both times it is revisited
    // only if evicted; here the loop body fits, so after warmup the
    // misses stop. We check both phases.
    let mut a = Asm::new("ic");
    a.global_label("main");
    a.li(T1, 3);
    a.label("again");
    for _ in 0..1000 {
        a.addu(T0, T0, T1);
    }
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "again");
    a.nop();
    a.break_(0);
    let mut m = boot(a);
    m.run(100_000);
    let misses = m.counters.icache_misses;
    // 1004-ish instructions = ~251 lines, touched cold once.
    assert!((250..300).contains(&misses), "misses = {misses}");
}

#[test]
fn budget_stop_event() {
    let mut a = Asm::new("spin");
    a.global_label("main");
    a.label("loop");
    a.b("loop");
    a.nop();
    let mut m = boot(a);
    assert_eq!(m.run(1000), StopEvent::Budget);
    assert_eq!(m.counters.insts(), 1000);
}

#[test]
fn reference_tracer_sees_all_refs() {
    use std::cell::RefCell;
    use std::rc::Rc;
    use wrl_machine::RefEvent;

    let mut a = Asm::new("trc");
    a.global_label("main");
    a.la(T0, "buf");
    a.lw(T1, 0, T0);
    a.sw(T1, 4, T0);
    a.break_(0);
    a.data();
    a.label("buf");
    a.space(16);
    let mut m = boot(a);
    let events: Rc<RefCell<Vec<RefEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = events.clone();
    m.set_tracer(Some(Box::new(move |e| sink.borrow_mut().push(e))));
    m.run(100);
    let ev = events.borrow();
    let ifetches = ev
        .iter()
        .filter(|e| matches!(e, RefEvent::Ifetch { .. }))
        .count();
    let loads = ev
        .iter()
        .filter(|e| matches!(e, RefEvent::Load { .. }))
        .count();
    let stores = ev
        .iter()
        .filter(|e| matches!(e, RefEvent::Store { .. }))
        .count();
    assert_eq!(ifetches, 5); // la(2) + lw + sw + break
    assert_eq!(loads, 1);
    assert_eq!(stores, 1);
}

/// Builds a kernel-mode program (kseg0) with a general exception
/// handler, exercising the full exception path without `bare` mode.
#[test]
fn exception_vector_and_rfe() {
    let mut a = Asm::new("kern");
    // Vectors are at fixed kseg0 addresses; pad to them.
    // Text base is 0x8003_0000, so we place trampoline code there and
    // copy nothing: instead, install handler directly via the linker
    // by putting the kernel at the vector base.
    a.global_label("main");
    // Set up: count syscalls in T5, then syscall twice and spin.
    a.li(T5, 0);
    a.syscall(0);
    a.syscall(0);
    a.label("spin");
    a.b("spin");
    a.nop();
    a.global_label("handler");
    a.addiu(T5, T5, 1);
    a.mfc0(K0, 14); // EPC
    a.addiu(K0, K0, 4);
    a.mtc0(K0, 14);
    a.mfc0(K0, 14);
    a.jr(K0);
    a.inst(wrl_isa::Inst::Rfe); // rfe in the jr delay slot
    let obj = a.finish();

    // Link twice: handler stub at the general vector, body in kseg0.
    let linked = link(
        &[obj],
        Layout {
            text_base: 0x8000_0100,
            data_base: 0x8030_0000,
        },
        "main",
    )
    .unwrap();
    let mut m = Machine::new(Config::default(), vec![]);
    m.load_executable(&linked.exe);
    // Install a jump at the general vector 0x8000_0080 to `handler`.
    let handler = linked.exe.sym("handler").unwrap();
    let j = wrl_isa::encode(wrl_isa::Inst::J {
        target: (handler >> 2) & 0x03ff_ffff,
    });
    m.mem.write_word(0x80, j);
    m.mem.write_word(0x84, 0); // delay-slot nop
    m.set_pc(linked.exe.entry);

    m.run(100);
    assert_eq!(m.cpu.regs[T5.idx()], 2, "both syscalls handled");
    assert_eq!(m.counters.exceptions[8], 2);
}

#[test]
fn utlb_refill_handler_installs_mapping() {
    use wrl_isa::Inst;
    // Kernel at kseg0 sets up a page table in kseg0 memory, points
    // Context at it, switches to user mode and jumps to user code.
    // The 9-instruction UTLB handler refills from the page table.
    let mut k = Asm::new("kern");
    k.global_label("main");
    // Build one PTE: map user vpn of `uprog` to pfn chosen below.
    // Page table base (kseg0): 0x8060_0000 — Context's PTE-base field
    // is bits 31:21, so the table must be 2 MB aligned. Entry for vpn
    // v lives at base + 4*v. User text at 0x0040_0000 => vpn 0x400.
    k.li(T0, 0x8060_0000u32 as i32);
    k.mtc0(T0, 4); // Context = PTE base (top bits)
                   // PTE for vpn 0x400: pfn 0x0000_0060 (paddr 0x60000), valid+dirty.
    let pte: u32 = (0x60 << 12) | (1 << 10) | (1 << 9);
    k.li(T1, pte as i32);
    k.li(T2, 0x8060_0000u32 as i32 + 4 * 0x400);
    k.sw(T1, 0, T2);
    // Enter user mode: status bits IEc(0) KUc(1) IEp(2) KUp(3); rfe
    // pops KUp into KUc.
    k.li(T3, 0b1000); // KUp = 1
    k.mtc0(T3, 12);
    k.li(K0, 0x0040_0000);
    k.jr(K0);
    k.inst(Inst::Rfe);
    let kobj = k.finish();
    let klinked = link(
        &[kobj],
        Layout {
            text_base: 0x8000_0200,
            data_base: 0x8030_0000,
        },
        "main",
    )
    .unwrap();

    // UTLB refill handler (the paper's nine-instruction handler).
    let mut h = Asm::new("utlb");
    h.global_label("utlb");
    h.mfc0(K0, 4); // Context: base | vpn<<2
    h.lw(K0, 0, K0); // load PTE
    h.nop();
    h.mtc0(K0, 2); // EntryLo
    h.inst(Inst::Tlbwr);
    h.mfc0(K0, 14); // EPC
    h.jr(K0);
    h.inst(Inst::Rfe);
    let hlinked = link(
        &[h.finish()],
        Layout {
            text_base: 0x8000_0000,
            data_base: 0x8031_0000,
        },
        "utlb",
    )
    .unwrap();

    // User program: add and halt via break (vectors to general; we
    // detect completion via register value and budget).
    let mut u = Asm::new("user");
    u.global_label("umain");
    u.li(T0, 11);
    u.li(T1, 31);
    u.addu(T2, T0, T1);
    u.label("spin");
    u.b("spin");
    u.nop();
    let ulinked = link(&[u.finish()], Layout::user(), "umain").unwrap();

    let mut m = Machine::new(Config::default(), vec![]);
    m.load_executable(&klinked.exe);
    m.load_executable(&hlinked.exe);
    // Load user text at physical 0x60000 (the frame the PTE names).
    let mut bytes = Vec::new();
    for w in &ulinked.exe.text {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    m.load_segment_mapped(0x60000, &bytes);
    m.set_pc(klinked.exe.entry);
    m.run(200);
    assert_eq!(m.cpu.regs[T2.idx()], 42);
    assert_eq!(m.counters.utlb_misses, 1);
    assert!(m.cp0.user_mode());
}

#[test]
fn misaligned_word_access_faults() {
    let mut a = Asm::new("mis");
    a.global_label("main");
    a.la(T0, "buf");
    a.lw(T1, 2, T0); // misaligned word load
    a.break_(0);
    a.data();
    a.align4();
    a.label("buf");
    a.space(16);
    let mut m = boot(a);
    // Bare mode surfaces the AdEL as an unhandled exception.
    assert_eq!(
        m.run(100),
        StopEvent::UnhandledException(wrl_machine::ExcCode::AdEL as u8)
    );
}

#[test]
fn user_mode_cannot_touch_cp0_or_kernel_space() {
    use wrl_isa::Inst;
    // Build a kernel that drops to user mode; the user code tries
    // mtc0 and a kseg0 load — each must raise an exception, which the
    // general vector turns into a halt with a recognisable code.
    let mut a = Asm::new("priv");
    a.global_label("main");
    // Wire the user text mapping straight into TLB entry 0 (no
    // refill handler in this minimal kernel).
    let pte: u32 = (0x60 << 12) | (1 << 10) | (1 << 9);
    a.li(T0, 0x0040_0000);
    a.mtc0(T0, 10); // EntryHi: vpn 0x400, asid 0
    a.li(T1, pte as i32);
    a.mtc0(T1, 2); // EntryLo
    a.mtc0(ZERO, 0); // Index 0
    a.inst(Inst::Tlbwi);
    a.li(T3, 0b1000);
    a.mtc0(T3, 12);
    a.li(K0, 0x0040_0000);
    a.jr(K0);
    a.inst(Inst::Rfe);
    a.global_label("handler");
    // Any exception from user: record the cause code and halt.
    a.mfc0(T5, 13);
    a.andi(T5, T5, 0x7c);
    a.srl(A0, T5, 2);
    a.li(T6, 0xbc00_0004u32 as i32); // HALT device via kseg1
    a.sw(A0, 0, T6);
    a.label("spin2");
    a.b("spin2");
    a.nop();
    let obj = a.finish();
    let linked = link(
        &[obj],
        Layout {
            text_base: 0x8000_0200,
            data_base: 0x8030_0000,
        },
        "main",
    )
    .unwrap();

    for (uinst, expect) in [
        (
            wrl_isa::encode(wrl_isa::Inst::Mtc0 { rt: T0, rd: 12 }),
            11u32,
        ), // CpU
        (wrl_isa::encode(wrl_isa::Inst::Tlbwr), 11u32), // CpU
    ] {
        let mut m = Machine::new(Config::default(), vec![]);
        m.load_executable(&linked.exe);
        let handler = linked.exe.sym("handler").unwrap();
        let j = wrl_isa::encode(wrl_isa::Inst::J {
            target: (handler >> 2) & 0x03ff_ffff,
        });
        m.mem.write_word(0x80, j);
        m.mem.write_word(0x84, 0);
        // User code at paddr 0x60000: the probe instruction + spin.
        let mut code = vec![uinst];
        code.push(wrl_isa::encode(wrl_isa::Inst::Beq {
            rs: ZERO,
            rt: ZERO,
            off: -1,
        }));
        code.push(0);
        let mut bytes = Vec::new();
        for w in &code {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        m.load_segment_mapped(0x60000, &bytes);
        m.set_pc(linked.exe.entry);
        match m.run(500) {
            StopEvent::Halted(code) => assert_eq!(code, expect),
            other => panic!("expected privileged fault, got {other:?}"),
        }
    }

    // A kseg0 load from user mode is an address error (AdEL = 4).
    let mut m = Machine::new(Config::default(), vec![]);
    m.load_executable(&linked.exe);
    let handler = linked.exe.sym("handler").unwrap();
    let j = wrl_isa::encode(wrl_isa::Inst::J {
        target: (handler >> 2) & 0x03ff_ffff,
    });
    m.mem.write_word(0x80, j);
    m.mem.write_word(0x84, 0);
    let mut a2 = Asm::new("probe");
    a2.global_label("p");
    a2.lui(T0, 0x8000);
    a2.lw(T1, 0, T0); // kseg0 from user mode
    a2.label("s");
    a2.b("s");
    a2.nop();
    let probe = link(&[a2.finish()], Layout::user(), "p").unwrap();
    let mut bytes = Vec::new();
    for w in &probe.exe.text {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    m.load_segment_mapped(0x60000, &bytes);
    m.set_pc(linked.exe.entry);
    match m.run(500) {
        StopEvent::Halted(code) => assert_eq!(code, 4, "AdEL expected"),
        other => panic!("expected address error, got {other:?}"),
    }
}

#[test]
fn shift_variants_match_oracle() {
    let mut a = Asm::new("sh");
    a.global_label("main");
    a.li(T0, 0x8000_0001u32 as i32);
    a.li(T1, 7);
    a.sllv(T2, T0, T1);
    a.srlv(T3, T0, T1);
    a.inst(wrl_isa::Inst::Srav {
        rd: T4,
        rt: T0,
        rs: T1,
    });
    a.sra(T5, T0, 1);
    a.nor(T6, T0, ZERO);
    a.xori(T7, T0, 0xffff);
    a.break_(0);
    let mut m = boot(a);
    m.run(100);
    let x = 0x8000_0001u32;
    assert_eq!(m.cpu.regs[T2.idx()], x << 7);
    assert_eq!(m.cpu.regs[T3.idx()], x >> 7);
    assert_eq!(m.cpu.regs[T4.idx()], ((x as i32) >> 7) as u32);
    assert_eq!(m.cpu.regs[T5.idx()], ((x as i32) >> 1) as u32);
    assert_eq!(m.cpu.regs[T6.idx()], !x);
    assert_eq!(m.cpu.regs[T7.idx()], x ^ 0xffff);
}

#[test]
fn fp_divide_and_compare_chain() {
    let mut a = Asm::new("fpd");
    a.global_label("main");
    a.li_d(F0, -10.0);
    a.abs_d(F2, F0);
    a.li_d(F4, 4.0);
    a.div_d(F6, F2, F4); // 2.5
    a.neg_d(F8, F6); // -2.5
    a.c_le_d(F8, F6); // -2.5 <= 2.5
    a.bc1f("bad");
    a.nop();
    a.cvt_w_d(F10, F6); // trunc(2.5) = 2
    a.mfc1(T0, F10);
    a.break_(0);
    a.label("bad");
    a.break_(1);
    let mut m = boot(a);
    assert_eq!(m.run(200), StopEvent::Break(0));
    assert_eq!(m.cpu.get_d(6), 2.5);
    assert_eq!(m.cpu.get_d(8), -2.5);
    assert_eq!(m.cpu.regs[T0.idx()], 2);
}
