//! Hardware event counters.
//!
//! These play the role of the paper's measurement hardware: the
//! high-resolution timer used for Table 2's "measured" column and the
//! kernel's user-TLB miss counter used for Table 3. They also include
//! the per-address reference-counting facility of §4.3 ("reference
//! counting tools were used to make a dynamic count of the number of
//! times each instruction in the kernel was executed").

use std::collections::HashMap;

/// Event counters maintained by the machine.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Instructions retired in user mode.
    pub user_insts: u64,
    /// Instructions retired in kernel mode.
    pub kernel_insts: u64,
    /// Total machine cycles (the "high resolution timer").
    pub cycles: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache read misses.
    pub dcache_misses: u64,
    /// Uncached instruction fetches (kseg1 or isolated cache).
    pub uncached_ifetches: u64,
    /// Uncached data references.
    pub uncached_data: u64,
    /// Cycles stalled on a full write buffer.
    pub wb_stall_cycles: u64,
    /// Cycles stalled on floating-point/HI-LO interlocks, as they
    /// actually occurred (overlapped with memory delays).
    pub fp_stall_cycles: u64,
    /// FP/HI-LO interlock cycles as a *pixie-style static estimate*:
    /// computed against an ideal 1-cycle-per-instruction clock with no
    /// memory delays. This is the "arithmetic stalls measured by
    /// pixie" input to the §5.1 time predictor.
    pub fp_stall_ideal: u64,
    /// User-segment TLB refill exceptions (the UTLB miss counter).
    pub utlb_misses: u64,
    /// Mapped-kernel-segment TLB misses (KTLB, via the general vector).
    pub ktlb_misses: u64,
    /// Exceptions taken, by cause code index.
    pub exceptions: [u64; 16],
    /// External interrupts delivered.
    pub interrupts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Instructions retired while the PC was in the configured
    /// idle-loop range.
    pub idle_insts: u64,
    /// Cycles elapsed while the PC was in the idle-loop range.
    pub idle_cycles: u64,
}

impl Counters {
    /// Total instructions retired.
    pub fn insts(&self) -> u64 {
        self.user_insts + self.kernel_insts
    }

    /// Machine cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.insts() == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insts() as f64
        }
    }
}

/// Optional per-address execution counting (§4.3's reference counter).
#[derive(Clone, Debug, Default)]
pub struct RefCounter {
    counts: HashMap<u32, u64>,
}

impl RefCounter {
    /// Creates an empty counter.
    pub fn new() -> RefCounter {
        RefCounter::default()
    }

    /// Records one execution of the instruction at `vaddr`.
    #[inline]
    pub fn bump(&mut self, vaddr: u32) {
        *self.counts.entry(vaddr).or_insert(0) += 1;
    }

    /// Execution count of the instruction at `vaddr`.
    pub fn count(&self, vaddr: u32) -> u64 {
        self.counts.get(&vaddr).copied().unwrap_or(0)
    }

    /// Total executions in the half-open range `[lo, hi)`.
    pub fn count_range(&self, lo: u32, hi: u32) -> u64 {
        self.counts
            .iter()
            .filter(|(&a, _)| a >= lo && a < hi)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Iterates `(vaddr, count)` pairs in address order.
    pub fn iter_sorted(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&a, &c)| (a, c)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_computation() {
        let c = Counters {
            user_insts: 80,
            kernel_insts: 20,
            cycles: 250,
            ..Counters::default()
        };
        assert_eq!(c.insts(), 100);
        assert!((c.cpi() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn refcounter_ranges() {
        let mut r = RefCounter::new();
        for _ in 0..3 {
            r.bump(0x100);
        }
        r.bump(0x104);
        r.bump(0x200);
        assert_eq!(r.count(0x100), 3);
        assert_eq!(r.count_range(0x100, 0x108), 4);
        assert_eq!(r.count_range(0x0, 0x1000), 5);
        assert_eq!(r.count(0x300), 0);
    }
}
