//! Hardware event counters.
//!
//! These play the role of the paper's measurement hardware: the
//! high-resolution timer used for Table 2's "measured" column and the
//! kernel's user-TLB miss counter used for Table 3. They also include
//! the per-address reference-counting facility of §4.3 ("reference
//! counting tools were used to make a dynamic count of the number of
//! times each instruction in the kernel was executed").

use std::collections::HashMap;
use std::sync::Arc;

use wrl_obs::{gauge, global, Gauge};

/// Event counters maintained by the machine.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Instructions retired in user mode.
    pub user_insts: u64,
    /// Instructions retired in kernel mode.
    pub kernel_insts: u64,
    /// Total machine cycles (the "high resolution timer").
    pub cycles: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache read misses.
    pub dcache_misses: u64,
    /// Uncached instruction fetches (kseg1 or isolated cache).
    pub uncached_ifetches: u64,
    /// Uncached data references.
    pub uncached_data: u64,
    /// Cycles stalled on a full write buffer.
    pub wb_stall_cycles: u64,
    /// Cycles stalled on floating-point/HI-LO interlocks, as they
    /// actually occurred (overlapped with memory delays).
    pub fp_stall_cycles: u64,
    /// FP/HI-LO interlock cycles as a *pixie-style static estimate*:
    /// computed against an ideal 1-cycle-per-instruction clock with no
    /// memory delays. This is the "arithmetic stalls measured by
    /// pixie" input to the §5.1 time predictor.
    pub fp_stall_ideal: u64,
    /// User-segment TLB refill exceptions (the UTLB miss counter).
    pub utlb_misses: u64,
    /// Mapped-kernel-segment TLB misses (KTLB, via the general vector).
    pub ktlb_misses: u64,
    /// Exceptions taken, by cause code index.
    pub exceptions: [u64; 16],
    /// External interrupts delivered.
    pub interrupts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Instructions retired while the PC was in the configured
    /// idle-loop range.
    pub idle_insts: u64,
    /// Cycles elapsed while the PC was in the idle-loop range.
    pub idle_cycles: u64,
}

impl Counters {
    /// Total instructions retired.
    pub fn insts(&self) -> u64 {
        self.user_insts + self.kernel_insts
    }

    /// Machine cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.insts() == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insts() as f64
        }
    }

    /// Registers (idempotently) and sets the `machine.*` gauges from
    /// this counter block — the end-of-run export of the "measurement
    /// hardware" readings.
    pub fn export_obs(&self) {
        CountersObs::register().export(self);
    }
}

/// Gauges mirroring the hot [`Counters`] fields, set once per run by
/// [`Counters::export_obs`]. The machine keeps counting in plain
/// fields on its hot path; the export copies them out, so enabling
/// metrics costs the simulated machine nothing per instruction.
pub struct CountersObs {
    cycles: Arc<Gauge>,
    user_insts: Arc<Gauge>,
    kernel_insts: Arc<Gauge>,
    idle_insts: Arc<Gauge>,
    utlb_misses: Arc<Gauge>,
    ktlb_misses: Arc<Gauge>,
    imisses: Arc<Gauge>,
    dmisses: Arc<Gauge>,
    uncached_ifetches: Arc<Gauge>,
    wb_stall_cycles: Arc<Gauge>,
    interrupts: Arc<Gauge>,
    exceptions: Arc<Gauge>,
}

impl CountersObs {
    /// Registers the machine-counter gauges in the global registry.
    pub fn register() -> CountersObs {
        let r = global();
        CountersObs {
            cycles: gauge!(
                r,
                "machine.cycles",
                "cycles",
                "§5.1",
                "Total machine cycles (the high-resolution timer)."
            ),
            user_insts: gauge!(
                r,
                "machine.insts.user",
                "insts",
                "§5.1",
                "Instructions retired in user mode."
            ),
            kernel_insts: gauge!(
                r,
                "machine.insts.kernel",
                "insts",
                "§5.1",
                "Instructions retired in kernel mode."
            ),
            idle_insts: gauge!(
                r,
                "machine.insts.idle",
                "insts",
                "§4.2",
                "Instructions retired inside the idle loop."
            ),
            utlb_misses: gauge!(
                r,
                "machine.tlb.utlb_misses",
                "misses",
                "§5.2",
                "User-segment TLB refill exceptions (Table 3's counter)."
            ),
            ktlb_misses: gauge!(
                r,
                "machine.tlb.ktlb_misses",
                "misses",
                "§5.2",
                "Mapped-kernel-segment TLB misses."
            ),
            imisses: gauge!(
                r,
                "machine.cache.imisses",
                "misses",
                "§5.1",
                "Instruction-cache misses."
            ),
            dmisses: gauge!(
                r,
                "machine.cache.dmisses",
                "misses",
                "§5.1",
                "Data-cache read misses."
            ),
            uncached_ifetches: gauge!(
                r,
                "machine.cache.uncached_ifetches",
                "fetches",
                "§5.1",
                "Uncached instruction fetches."
            ),
            wb_stall_cycles: gauge!(
                r,
                "machine.wb.stall_cycles",
                "cycles",
                "§5.1",
                "Cycles stalled on a full write buffer."
            ),
            interrupts: gauge!(
                r,
                "machine.interrupts",
                "interrupts",
                "§3.3",
                "External interrupts delivered."
            ),
            exceptions: gauge!(
                r,
                "machine.exceptions",
                "exceptions",
                "§3.3",
                "Exceptions taken (all cause codes summed)."
            ),
        }
    }

    /// Sets every gauge from one run's counter block.
    pub fn export(&self, c: &Counters) {
        self.cycles.set(c.cycles as i64);
        self.user_insts.set(c.user_insts as i64);
        self.kernel_insts.set(c.kernel_insts as i64);
        self.idle_insts.set(c.idle_insts as i64);
        self.utlb_misses.set(c.utlb_misses as i64);
        self.ktlb_misses.set(c.ktlb_misses as i64);
        self.imisses.set(c.icache_misses as i64);
        self.dmisses.set(c.dcache_misses as i64);
        self.uncached_ifetches.set(c.uncached_ifetches as i64);
        self.wb_stall_cycles.set(c.wb_stall_cycles as i64);
        self.interrupts.set(c.interrupts as i64);
        self.exceptions.set(c.exceptions.iter().sum::<u64>() as i64);
    }
}

/// Optional per-address execution counting (§4.3's reference counter).
#[derive(Clone, Debug, Default)]
pub struct RefCounter {
    counts: HashMap<u32, u64>,
}

impl RefCounter {
    /// Creates an empty counter.
    pub fn new() -> RefCounter {
        RefCounter::default()
    }

    /// Records one execution of the instruction at `vaddr`.
    #[inline]
    pub fn bump(&mut self, vaddr: u32) {
        *self.counts.entry(vaddr).or_insert(0) += 1;
    }

    /// Execution count of the instruction at `vaddr`.
    pub fn count(&self, vaddr: u32) -> u64 {
        self.counts.get(&vaddr).copied().unwrap_or(0)
    }

    /// Total executions in the half-open range `[lo, hi)`.
    pub fn count_range(&self, lo: u32, hi: u32) -> u64 {
        self.counts
            .iter()
            .filter(|(&a, _)| a >= lo && a < hi)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Iterates `(vaddr, count)` pairs in address order.
    pub fn iter_sorted(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&a, &c)| (a, c)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_computation() {
        let c = Counters {
            user_insts: 80,
            kernel_insts: 20,
            cycles: 250,
            ..Counters::default()
        };
        assert_eq!(c.insts(), 100);
        assert!((c.cpi() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn refcounter_ranges() {
        let mut r = RefCounter::new();
        for _ in 0..3 {
            r.bump(0x100);
        }
        r.bump(0x104);
        r.bump(0x200);
        assert_eq!(r.count(0x100), 3);
        assert_eq!(r.count_range(0x100, 0x108), 4);
        assert_eq!(r.count_range(0x0, 0x1000), 5);
        assert_eq!(r.count(0x300), 0);
    }
}
