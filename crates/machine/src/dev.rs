//! Memory-mapped devices: console, line clock, disk controller, and
//! the trace-analysis doorbell.
//!
//! Devices live at physical address [`DEV_BASE`], reachable by the
//! kernel through kseg1 (uncached) at `0xbc00_0000`. The disk models a
//! fixed per-operation latency that is *independent of CPU speed* —
//! exactly the property that produces the paper's time-dilation
//! distortion (§4.1): an instrumented system does ~15x less useful
//! work per disk service time, so I/O appears 15x faster to it.

/// Physical base address of the device page.
pub const DEV_BASE: u32 = 0x1c00_0000;
/// kseg1 virtual address of the device page (what kernels use).
pub const DEV_BASE_K1: u32 = 0xbc00_0000;

/// Device register offsets from [`DEV_BASE`].
pub mod regs {
    /// Write: transmit one byte to the console.
    pub const CONSOLE_TX: u32 = 0x00;
    /// Write: halt the machine with this exit code.
    pub const HALT: u32 = 0x04;
    /// Write: clock interrupt interval in cycles (0 disables).
    pub const CLOCK_INTERVAL: u32 = 0x08;
    /// Write: acknowledge (clear) the clock interrupt.
    pub const CLOCK_ACK: u32 = 0x0c;
    /// Write: disk block number for the next command.
    pub const DISK_BLOCK: u32 = 0x10;
    /// Write: physical memory address for disk DMA.
    pub const DISK_ADDR: u32 = 0x14;
    /// Write: disk command (1 = read, 2 = write); starts the operation.
    pub const DISK_CMD: u32 = 0x18;
    /// Read: 1 while an operation is in flight. Write: ack interrupt.
    pub const DISK_STAT: u32 = 0x1c;
    /// Write: ring the trace-analysis doorbell; the machine stops and
    /// returns control to the host analysis program.
    pub const TRACE_REQ: u32 = 0x20;
    /// Read: low word of the cycle counter.
    pub const CYCLES_LO: u32 = 0x24;
    /// Read: high word of the cycle counter.
    pub const CYCLES_HI: u32 = 0x28;
    /// Read: number of clock ticks raised since boot.
    pub const CLOCK_TICKS: u32 = 0x2c;
}

/// Interrupt line numbers (0..5 map to cause bits IP2..IP7).
pub mod irq {
    /// Disk-completion interrupt line.
    pub const DISK: u32 = 2;
    /// Line-clock interrupt line.
    pub const CLOCK: u32 = 3;
}

/// Disk block size in bytes (one page, as the kernels' buffer caches
/// use page-sized blocks).
pub const DISK_BLOCK_SIZE: u32 = 4096;

/// A pending disk operation.
#[derive(Clone, Copy, Debug)]
pub struct DiskOp {
    /// 1 = read, 2 = write.
    pub cmd: u32,
    /// Block number.
    pub block: u32,
    /// Physical DMA address.
    pub paddr: u32,
    /// Cycle at which the operation completes.
    pub done_at: u64,
}

/// Side effects a device write asks the machine to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DevAction {
    /// Nothing further.
    None,
    /// Halt the machine with an exit code.
    Halt(u32),
    /// Stop and hand control to the host trace-analysis program.
    TraceRequest(u32),
}

/// Device state.
pub struct Devices {
    /// Console output captured for the host.
    pub console: Vec<u8>,
    /// Clock interval in cycles (0 = disabled).
    pub clock_interval: u64,
    /// Next cycle at which the clock fires.
    pub clock_next: u64,
    /// Clock interrupt line currently asserted.
    pub clock_pending: bool,
    /// Ticks raised since boot.
    pub clock_ticks: u64,
    /// Disk contents.
    pub disk_image: Vec<u8>,
    /// In-flight disk operation.
    pub disk_op: Option<DiskOp>,
    /// Disk interrupt line currently asserted.
    pub disk_pending: bool,
    /// Fixed disk operation latency in cycles.
    pub disk_latency: u64,
    /// Staged DMA address.
    disk_addr: u32,
    /// Staged block number.
    disk_block: u32,
    /// Count of disk operations started.
    pub disk_ops: u64,
}

impl Devices {
    /// Creates the device complex with the given disk image and
    /// per-operation latency.
    pub fn new(disk_image: Vec<u8>, disk_latency: u64) -> Devices {
        Devices {
            console: Vec::new(),
            clock_interval: 0,
            clock_next: u64::MAX,
            clock_pending: false,
            clock_ticks: 0,
            disk_image,
            disk_op: None,
            disk_pending: false,
            disk_latency,
            disk_addr: 0,
            disk_block: 0,
            disk_ops: 0,
        }
    }

    /// True if `paddr` falls in the device page.
    #[inline]
    pub fn owns(paddr: u32) -> bool {
        (DEV_BASE..DEV_BASE + 0x1000).contains(&paddr)
    }

    /// Handles a word read from a device register.
    pub fn read(&mut self, paddr: u32, now: u64) -> u32 {
        match paddr - DEV_BASE {
            regs::DISK_STAT => u32::from(self.disk_op.is_some()),
            regs::CYCLES_LO => now as u32,
            regs::CYCLES_HI => (now >> 32) as u32,
            regs::CLOCK_TICKS => self.clock_ticks as u32,
            _ => 0,
        }
    }

    /// Handles a word write to a device register, returning any
    /// machine-level action required.
    pub fn write(&mut self, paddr: u32, v: u32, now: u64) -> DevAction {
        match paddr - DEV_BASE {
            regs::CONSOLE_TX => self.console.push(v as u8),
            regs::HALT => return DevAction::Halt(v),
            regs::CLOCK_INTERVAL => {
                self.clock_interval = v as u64;
                self.clock_next = if v == 0 { u64::MAX } else { now + v as u64 };
            }
            regs::CLOCK_ACK => self.clock_pending = false,
            regs::DISK_BLOCK => self.disk_block = v,
            regs::DISK_ADDR => self.disk_addr = v,
            regs::DISK_CMD
                // Ignore a second command while one is in flight; real
                // controllers would error, our kernels never do this.
                if self.disk_op.is_none() => {
                    self.disk_op = Some(DiskOp {
                        cmd: v,
                        block: self.disk_block,
                        paddr: self.disk_addr,
                        done_at: now + self.disk_latency,
                    });
                    self.disk_ops += 1;
                }
            regs::DISK_STAT => self.disk_pending = false,
            regs::TRACE_REQ => return DevAction::TraceRequest(v),
            _ => {}
        }
        DevAction::None
    }

    /// Earliest cycle at which a device event is due.
    pub fn next_event(&self) -> u64 {
        let disk = self.disk_op.map_or(u64::MAX, |op| op.done_at);
        self.clock_next.min(disk)
    }

    /// Advances device state to `now`; returns `(clock_line,
    /// disk_line, completed_op)`. The completed operation's DMA is the
    /// machine's job (it owns memory).
    pub fn tick(&mut self, now: u64) -> Option<DiskOp> {
        if now >= self.clock_next {
            self.clock_pending = true;
            self.clock_ticks += 1;
            // Skip any missed intervals rather than bursting.
            while self.clock_next <= now {
                self.clock_next += self.clock_interval.max(1);
            }
        }
        if let Some(op) = self.disk_op {
            if now >= op.done_at {
                self.disk_op = None;
                self.disk_pending = true;
                return Some(op);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_fires_and_acks() {
        let mut d = Devices::new(vec![], 100);
        d.write(DEV_BASE + regs::CLOCK_INTERVAL, 50, 0);
        assert_eq!(d.next_event(), 50);
        assert!(d.tick(49).is_none());
        assert!(!d.clock_pending);
        d.tick(50);
        assert!(d.clock_pending);
        assert_eq!(d.clock_ticks, 1);
        d.write(DEV_BASE + regs::CLOCK_ACK, 0, 55);
        assert!(!d.clock_pending);
        assert_eq!(d.next_event(), 100);
    }

    #[test]
    fn disk_completes_after_latency() {
        let mut d = Devices::new(vec![0u8; 8192], 1000);
        d.write(DEV_BASE + regs::DISK_BLOCK, 1, 0);
        d.write(DEV_BASE + regs::DISK_ADDR, 0x2000, 0);
        d.write(DEV_BASE + regs::DISK_CMD, 1, 0);
        assert_eq!(d.read(DEV_BASE + regs::DISK_STAT, 1), 1);
        assert!(d.tick(999).is_none());
        let op = d.tick(1000).unwrap();
        assert_eq!(op.block, 1);
        assert_eq!(op.paddr, 0x2000);
        assert!(d.disk_pending);
        assert_eq!(d.read(DEV_BASE + regs::DISK_STAT, 1001), 0);
    }

    #[test]
    fn halt_and_doorbell_actions() {
        let mut d = Devices::new(vec![], 10);
        assert_eq!(d.write(DEV_BASE + regs::HALT, 3, 0), DevAction::Halt(3));
        assert_eq!(
            d.write(DEV_BASE + regs::TRACE_REQ, 7, 0),
            DevAction::TraceRequest(7)
        );
    }

    #[test]
    fn console_collects_bytes() {
        let mut d = Devices::new(vec![], 10);
        for b in b"ok" {
            d.write(DEV_BASE + regs::CONSOLE_TX, *b as u32, 0);
        }
        assert_eq!(d.console, b"ok");
    }
}
