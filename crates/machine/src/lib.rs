//! The W3K whole-machine simulator.
//!
//! This crate is the "real hardware" substrate for the reproduction of
//! *Software Methods for System Address Tracing* (WRL 94/6): a
//! DECstation 5000/200-style machine with an R3000-like CPU ([`Machine`]),
//! software-managed [`tlb::Tlb`], physically-indexed [`cache`]s, a write
//! buffer, a line clock and a disk controller ([`dev`]), and hardware
//! event [`counters`] that provide the *measured* columns of the
//! paper's Tables 2 and 3.

pub mod cache;
pub mod counters;
pub mod cp0;
pub mod dev;
pub mod machine;
pub mod mem;
pub mod tlb;

pub use cache::{Cache, CacheCfg, WriteBuffer};
pub use counters::{Counters, CountersObs, RefCounter};
pub use cp0::{Cp0, ExcCode, Exception};
pub use dev::{DevAction, Devices, DISK_BLOCK_SIZE};
pub use machine::{Config, Cpu, Latencies, Machine, RefEvent, RefTracer, StopEvent};
pub use mem::Mem;
pub use tlb::{Tlb, TlbEntry, TlbLookup, TLB_ENTRIES, TLB_WIRED};
