//! The system control coprocessor (CP0).
//!
//! Implements the R3000-style register file the kernels program: the
//! three-deep kernel/user + interrupt-enable stack in Status (pushed
//! on exception, popped by `rfe`), the Cause register with its
//! branch-delay bit, EPC, BadVAddr, Context (for the UTLB handler's
//! one-load page-table walk) and the EntryHi/EntryLo/Index TLB
//! interface registers.

/// CP0 register numbers (as used by `mfc0`/`mtc0`).
pub mod reg {
    /// TLB index for `tlbwi`/`tlbr`.
    pub const INDEX: u8 = 0;
    /// Random replacement index (read-only).
    pub const RANDOM: u8 = 1;
    /// TLB entry low half.
    pub const ENTRYLO: u8 = 2;
    /// Page-table base + VPN shortcut for the UTLB handler.
    pub const CONTEXT: u8 = 4;
    /// Faulting virtual address.
    pub const BADVADDR: u8 = 8;
    /// Status: KU/IE stack, interrupt mask, cache isolate.
    pub const STATUS: u8 = 12;
    /// Cause: exception code, pending interrupts, branch-delay bit.
    pub const CAUSE: u8 = 13;
    /// Exception program counter.
    pub const EPC: u8 = 14;
    /// TLB entry high half (VPN + ASID).
    pub const ENTRYHI: u8 = 10;
    /// Processor revision identifier (read-only).
    pub const PRID: u8 = 15;
}

/// Exception codes, as stored in Cause bits 6:2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ExcCode {
    /// External interrupt.
    Int = 0,
    /// TLB modification (store to a clean page).
    Mod = 1,
    /// TLB miss or invalid on a load or instruction fetch.
    TlbL = 2,
    /// TLB miss or invalid on a store.
    TlbS = 3,
    /// Address error on load/fetch (misaligned or privilege).
    AdEL = 4,
    /// Address error on store.
    AdES = 5,
    /// System call.
    Sys = 8,
    /// Breakpoint.
    Bp = 9,
    /// Reserved instruction.
    RI = 10,
    /// Coprocessor unusable.
    CpU = 11,
    /// Arithmetic overflow.
    Ovf = 12,
}

/// An exception with its associated fault address, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exception {
    /// The exception code.
    pub code: ExcCode,
    /// BadVAddr for address-related exceptions.
    pub badvaddr: Option<u32>,
    /// True if this TLB miss should use the UTLB refill vector
    /// (a user-segment miss, §4.1).
    pub utlb: bool,
}

impl Exception {
    /// Creates an exception with no fault address.
    pub fn plain(code: ExcCode) -> Exception {
        Exception {
            code,
            badvaddr: None,
            utlb: false,
        }
    }

    /// Creates an address-fault exception.
    pub fn addr(code: ExcCode, badvaddr: u32, utlb: bool) -> Exception {
        Exception {
            code,
            badvaddr: Some(badvaddr),
            utlb,
        }
    }
}

// Status register bits.
const ST_IEC: u32 = 1 << 0;
const ST_KUC: u32 = 1 << 1;
const ST_STACK_MASK: u32 = 0x3f; // KU/IE c,p,o
/// Isolate-cache bit: while set, instruction fetches bypass the cache
/// (the mechanism behind the Mach 3.0 flush bug of §4.4).
pub const ST_ISC: u32 = 1 << 16;
/// Interrupt-mask field base (IM0 at bit 8).
pub const ST_IM_SHIFT: u32 = 8;

/// Cause register branch-delay bit.
pub const CAUSE_BD: u32 = 1 << 31;

/// The CP0 register file.
#[derive(Clone, Debug)]
pub struct Cp0 {
    /// Status register.
    pub status: u32,
    /// Cause register (IP bits maintained by the machine's devices).
    pub cause: u32,
    /// Exception PC.
    pub epc: u32,
    /// Faulting address of the last address exception.
    pub badvaddr: u32,
    /// EntryHi (VPN + current ASID).
    pub entryhi: u32,
    /// EntryLo.
    pub entrylo: u32,
    /// Index for indexed TLB ops.
    pub index: u32,
    /// Context: page-table base (bits 31:21) | faulting VPN slot.
    pub context: u32,
}

impl Default for Cp0 {
    fn default() -> Self {
        Self::new()
    }
}

impl Cp0 {
    /// Creates a CP0 in the boot state: kernel mode, interrupts off.
    pub fn new() -> Cp0 {
        Cp0 {
            status: 0,
            cause: 0,
            epc: 0,
            badvaddr: 0,
            entryhi: 0,
            entrylo: 0,
            index: 0,
            context: 0,
        }
    }

    /// True if the processor is currently in user mode.
    #[inline]
    pub fn user_mode(&self) -> bool {
        self.status & ST_KUC != 0
    }

    /// True if interrupts are currently enabled.
    #[inline]
    pub fn interrupts_enabled(&self) -> bool {
        self.status & ST_IEC != 0
    }

    /// True if the cache-isolate bit is set.
    #[inline]
    pub fn cache_isolated(&self) -> bool {
        self.status & ST_ISC != 0
    }

    /// Current address-space identifier (EntryHi ASID field).
    #[inline]
    pub fn asid(&self) -> u8 {
        ((self.entryhi >> 6) & 63) as u8
    }

    /// The set of pending, enabled interrupt lines.
    #[inline]
    pub fn pending_interrupts(&self) -> u32 {
        let im = (self.status >> ST_IM_SHIFT) & 0xff;
        let ip = (self.cause >> 8) & 0xff;
        im & ip
    }

    /// Raises (or clears) external interrupt line `line` (0..5 mapped
    /// to IP2..IP7).
    pub fn set_hw_interrupt(&mut self, line: u32, asserted: bool) {
        let bit = 1 << (8 + 2 + line);
        if asserted {
            self.cause |= bit;
        } else {
            self.cause &= !bit;
        }
    }

    /// Enters an exception: pushes the KU/IE stack (to kernel mode,
    /// interrupts disabled), records EPC/Cause/BadVAddr/Context.
    pub fn enter_exception(&mut self, exc: Exception, epc: u32, in_delay_slot: bool) {
        let stack = self.status & ST_STACK_MASK;
        self.status = (self.status & !ST_STACK_MASK) | ((stack << 2) & ST_STACK_MASK);
        self.cause = (self.cause & !0x7c) | ((exc.code as u32) << 2);
        if in_delay_slot {
            self.cause |= CAUSE_BD;
        } else {
            self.cause &= !CAUSE_BD;
        }
        self.epc = epc;
        if let Some(bv) = exc.badvaddr {
            self.badvaddr = bv;
            // Context: preserve the PTE base, fill the VPN slot so the
            // UTLB handler can do its one-load walk.
            self.context = (self.context & 0xffe0_0000) | (((bv >> 12) << 2) & 0x001f_fffc);
            self.entryhi = (self.entryhi & 0xfff) | (bv & 0xffff_f000);
        }
    }

    /// Returns from exception: pops the KU/IE stack (`rfe`).
    pub fn rfe(&mut self) {
        let stack = self.status & ST_STACK_MASK;
        self.status = (self.status & !0xf) | ((stack >> 2) & 0xf);
    }

    /// Reads a CP0 register by number (Random supplied by caller).
    pub fn read(&self, r: u8, random: u32) -> u32 {
        match r {
            reg::INDEX => self.index,
            reg::RANDOM => random << 8,
            reg::ENTRYLO => self.entrylo,
            reg::CONTEXT => self.context,
            reg::BADVADDR => self.badvaddr,
            reg::STATUS => self.status,
            reg::CAUSE => self.cause,
            reg::EPC => self.epc,
            reg::ENTRYHI => self.entryhi,
            reg::PRID => 0x0230, // W3K revision 3.0
            _ => 0,
        }
    }

    /// Writes a CP0 register by number.
    pub fn write(&mut self, r: u8, v: u32) {
        match r {
            reg::INDEX => self.index = v,
            reg::ENTRYLO => self.entrylo = v,
            reg::CONTEXT => self.context = (self.context & 0x001f_fffc) | (v & 0xffe0_0000),
            reg::STATUS => self.status = v,
            reg::CAUSE => {
                // Only the two software-interrupt bits are writable.
                self.cause = (self.cause & !0x300) | (v & 0x300);
            }
            reg::EPC => self.epc = v,
            reg::ENTRYHI => self.entryhi = v,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exception_pushes_and_rfe_pops() {
        let mut c = Cp0::new();
        // User mode, interrupts on.
        c.status = ST_KUC | ST_IEC;
        assert!(c.user_mode());
        c.enter_exception(Exception::plain(ExcCode::Sys), 0x400100, false);
        assert!(!c.user_mode());
        assert!(!c.interrupts_enabled());
        assert_eq!(c.epc, 0x400100);
        assert_eq!((c.cause >> 2) & 31, ExcCode::Sys as u32);
        c.rfe();
        assert!(c.user_mode());
        assert!(c.interrupts_enabled());
    }

    #[test]
    fn nested_exception_three_deep() {
        let mut c = Cp0::new();
        c.status = ST_KUC | ST_IEC;
        c.enter_exception(Exception::plain(ExcCode::Int), 0x1000, false);
        c.enter_exception(Exception::plain(ExcCode::TlbL), 0x80001000, false);
        assert!(!c.user_mode());
        c.rfe();
        assert!(!c.user_mode()); // back in first handler
        c.rfe();
        assert!(c.user_mode()); // back to user
    }

    #[test]
    fn badvaddr_fills_context_and_entryhi() {
        let mut c = Cp0::new();
        c.context = 0x8040_0000; // PTE base
        c.enter_exception(
            Exception::addr(ExcCode::TlbL, 0x0012_3456, true),
            0x400,
            false,
        );
        assert_eq!(c.badvaddr, 0x0012_3456);
        assert_eq!(c.context & 0xffe0_0000, 0x8040_0000);
        assert_eq!((c.context >> 2) & 0x7ffff, 0x0012_3456 >> 12);
        assert_eq!(c.entryhi & 0xffff_f000, 0x0012_3000);
    }

    #[test]
    fn bd_bit_set_in_delay_slot() {
        let mut c = Cp0::new();
        c.enter_exception(Exception::plain(ExcCode::Bp), 0x500, true);
        assert!(c.cause & CAUSE_BD != 0);
        c.enter_exception(Exception::plain(ExcCode::Bp), 0x500, false);
        assert!(c.cause & CAUSE_BD == 0);
    }

    #[test]
    fn interrupt_masking() {
        let mut c = Cp0::new();
        c.set_hw_interrupt(3, true); // IP5
        assert_eq!(c.pending_interrupts(), 0);
        c.status |= 1 << (8 + 5); // unmask IM5
        assert_ne!(c.pending_interrupts(), 0);
        c.set_hw_interrupt(3, false);
        assert_eq!(c.pending_interrupts(), 0);
    }
}
