//! The whole-machine simulator.
//!
//! Executes W3K code with R3000 semantics (branch delay slots,
//! software-refilled TLB, precise exceptions) and a DECstation
//! 5000/200-style timing model: one cycle per issued instruction plus
//! cache-miss penalties, write-buffer stalls, floating-point
//! interlocks and uncached-access penalties, with all of those
//! *overlapping* as they do in hardware. This is the "real machine"
//! side of the paper's validation: its cycle counter is the
//! high-resolution timer of Table 2, and its UTLB-refill counter is
//! the TLB miss counter of Table 3.

use crate::cache::{Cache, CacheCfg, WriteBuffer};
use crate::counters::{Counters, RefCounter};
use crate::cp0::{Cp0, ExcCode, Exception};
use crate::dev::{irq, Devices, DISK_BLOCK_SIZE};
use crate::mem::Mem;
use crate::tlb::{Tlb, TlbLookup};
use wrl_isa::reg::RA;
use wrl_isa::{Executable, Inst};

/// Latency table (in cycles) for long-running operations.
#[derive(Clone, Copy, Debug)]
pub struct Latencies {
    /// FP add/subtract.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// FP convert.
    pub fp_cvt: u64,
    /// FP compare.
    pub fp_cmp: u64,
    /// Integer multiply (HI/LO ready).
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            fp_add: 2,
            fp_mul: 5,
            fp_div: 19,
            fp_cvt: 3,
            fp_cmp: 2,
            int_mul: 12,
            int_div: 35,
        }
    }
}

/// Machine configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Physical memory size in bytes.
    pub mem_bytes: u32,
    /// Instruction cache geometry.
    pub icache: CacheCfg,
    /// Data cache geometry.
    pub dcache: CacheCfg,
    /// Write buffer depth.
    pub wb_entries: usize,
    /// Cycles for one write-buffer entry to retire.
    pub wb_drain_cycles: u64,
    /// I-cache miss penalty in cycles.
    pub imiss_penalty: u64,
    /// D-cache read miss penalty in cycles.
    pub dmiss_penalty: u64,
    /// Uncached access penalty in cycles.
    pub uncached_penalty: u64,
    /// Pipeline cycles to enter an exception handler.
    pub exc_entry_cycles: u64,
    /// Pipeline cycles for `rfe`.
    pub rfe_cycles: u64,
    /// Disk operation latency in cycles.
    pub disk_latency: u64,
    /// Operation latencies.
    pub lat: Latencies,
    /// Bare mode: no kernel — kuseg is identity-mapped without TLB
    /// refills, and `syscall`/`break` return control to the host.
    /// Used for standalone program runs (pixie-style estimates,
    /// instrumentation verification, workload unit tests).
    pub bare: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mem_bytes: 32 << 20,
            icache: CacheCfg::dec5000_icache(),
            dcache: CacheCfg::dec5000_dcache(),
            wb_entries: 4,
            wb_drain_cycles: 5,
            imiss_penalty: 15,
            dmiss_penalty: 15,
            uncached_penalty: 20,
            exc_entry_cycles: 4,
            rfe_cycles: 3,
            disk_latency: 60_000,
            lat: Latencies::default(),
            bare: false,
        }
    }
}

impl Config {
    /// Bare-machine configuration for standalone user programs.
    pub fn bare() -> Config {
        Config {
            bare: true,
            ..Config::default()
        }
    }
}

/// Why the machine stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopEvent {
    /// A store to the HALT device register; payload is the exit code.
    Halted(u32),
    /// A store to the TRACE_REQ doorbell: the host trace-analysis
    /// program should run (§3.1's switch to trace-analysis mode).
    TraceRequest(u32),
    /// Bare mode: a `syscall` reached the host; payload is the code
    /// field. The machine has already advanced past the instruction.
    Syscall(u32),
    /// Bare mode: a `break` reached the host.
    Break(u32),
    /// The instruction budget given to [`Machine::run`] was exhausted.
    Budget,
    /// An exception was raised with no handler installed (bare mode
    /// only); payload is the cause code.
    UnhandledException(u8),
}

/// A memory reference observed by the optional reference tracer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefEvent {
    /// Instruction fetch at a virtual address.
    Ifetch {
        /// Virtual address of the instruction.
        vaddr: u32,
        /// True if executed in user mode.
        user: bool,
    },
    /// Data load.
    Load {
        /// Virtual address loaded.
        vaddr: u32,
        /// True if executed in user mode.
        user: bool,
    },
    /// Data store.
    Store {
        /// Virtual address stored.
        vaddr: u32,
        /// True if executed in user mode.
        user: bool,
    },
}

/// Callback type receiving reference events.
pub type RefTracer = Box<dyn FnMut(RefEvent)>;

/// CPU architectural state.
pub struct Cpu {
    /// General-purpose registers (`regs[0]` is forced to zero).
    pub regs: [u32; 32],
    /// FP register words (doubles in even/odd little-endian pairs).
    pub fregs: [u32; 32],
    /// FP condition bit.
    pub fcc: bool,
    /// HI register.
    pub hi: u32,
    /// LO register.
    pub lo: u32,
    /// Address of the next instruction to execute.
    pub pc: u32,
    /// Address of the instruction after that (branch target capture).
    pub next_pc: u32,
}

impl Cpu {
    fn new() -> Cpu {
        Cpu {
            regs: [0; 32],
            fregs: [0; 32],
            fcc: false,
            hi: 0,
            lo: 0,
            pc: 0,
            next_pc: 4,
        }
    }

    /// Reads a double from an even/odd FP register pair.
    pub fn get_d(&self, f: u8) -> f64 {
        let lo = self.fregs[f as usize & 30] as u64;
        let hi = self.fregs[(f as usize & 30) + 1] as u64;
        f64::from_bits(lo | (hi << 32))
    }

    /// Writes a double to an even/odd FP register pair.
    pub fn set_d(&mut self, f: u8, v: f64) {
        let bits = v.to_bits();
        self.fregs[f as usize & 30] = bits as u32;
        self.fregs[(f as usize & 30) + 1] = (bits >> 32) as u32;
    }
}

/// The machine: CPU, CP0/TLB, memory, caches, devices, counters.
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: Cpu,
    /// System control coprocessor.
    pub cp0: Cp0,
    /// The TLB.
    pub tlb: Tlb,
    /// Physical memory.
    pub mem: Mem,
    /// Devices.
    pub dev: Devices,
    /// Event counters.
    pub counters: Counters,
    cfg: Config,
    icache: Cache,
    dcache: Cache,
    wb: WriteBuffer,
    // Scoreboards: absolute cycle at which each resource is ready.
    fp_ready: [u64; 32],
    fcc_ready: u64,
    hilo_ready: u64,
    // Ideal-clock (1 IPC, perfect memory) scoreboards for the
    // pixie-style arithmetic-stall estimate.
    fp_ready_i: [u64; 32],
    fcc_ready_i: u64,
    hilo_ready_i: u64,
    /// True if the instruction about to execute sits in a delay slot.
    next_is_delay: bool,
    /// Idle-loop PC range for idle accounting, if configured.
    idle_range: Option<(u32, u32)>,
    /// Optional reference tracer.
    tracer: Option<RefTracer>,
    /// Optional per-address execution counter.
    pub refcount: Option<RefCounter>,
    halted: Option<StopEvent>,
}

enum Access {
    Fetch,
    Load,
    Store,
}

impl Machine {
    /// Creates a machine with the given configuration and disk image.
    pub fn new(cfg: Config, disk_image: Vec<u8>) -> Machine {
        let mut tlb = Tlb::new();
        tlb.flush();
        Machine {
            cpu: Cpu::new(),
            cp0: Cp0::new(),
            tlb,
            mem: Mem::new(cfg.mem_bytes),
            dev: Devices::new(disk_image, cfg.disk_latency),
            counters: Counters::default(),
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            wb: WriteBuffer::new(cfg.wb_entries, cfg.wb_drain_cycles),
            cfg: cfg.clone(),
            fp_ready: [0; 32],
            fcc_ready: 0,
            hilo_ready: 0,
            fp_ready_i: [0; 32],
            fcc_ready_i: 0,
            hilo_ready_i: 0,
            next_is_delay: false,
            idle_range: None,
            tracer: None,
            refcount: None,
            halted: None,
        }
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Total cycles elapsed (wraps the counter for convenience).
    pub fn cycles(&self) -> u64 {
        self.counters.cycles
    }

    /// Sets the PC (and clears any pending branch).
    pub fn set_pc(&mut self, pc: u32) {
        self.cpu.pc = pc;
        self.cpu.next_pc = pc.wrapping_add(4);
        self.next_is_delay = false;
    }

    /// Configures the idle-loop PC range `[lo, hi)` for idle-time
    /// accounting (the "measured idle" side of §5.1).
    pub fn set_idle_range(&mut self, range: Option<(u32, u32)>) {
        self.idle_range = range;
    }

    /// Installs a reference tracer receiving every I/D reference (the
    /// independent "CPU simulator" trace of §4.3).
    pub fn set_tracer(&mut self, t: Option<RefTracer>) {
        self.tracer = t;
    }

    /// Enables or disables per-address execution counting.
    pub fn set_refcount(&mut self, on: bool) {
        self.refcount = if on { Some(RefCounter::new()) } else { None };
    }

    /// Loads an executable image into physical memory.
    ///
    /// kseg addresses map to `vaddr & 0x1fff_ffff`; kuseg addresses
    /// are placed identity-mapped (bare runs) unless a page map is
    /// supplied via [`Machine::load_segment_mapped`].
    pub fn load_executable(&mut self, exe: &Executable) {
        let to_phys = |v: u32| if v >= 0x8000_0000 { v & 0x1fff_ffff } else { v };
        for (i, w) in exe.text.iter().enumerate() {
            self.mem
                .write_word(to_phys(exe.text_base) + (i as u32) * 4, *w);
        }
        self.mem.write_bytes(to_phys(exe.data_base), &exe.data);
        // bss is already zero (fresh memory) for initial loads; clear
        // explicitly in case of reuse.
        for off in (0..exe.bss_size).step_by(4) {
            self.mem.write_word(to_phys(exe.bss_base) + off, 0);
        }
    }

    /// Copies a byte slice to a physical address (segment loading
    /// under an explicit page map).
    pub fn load_segment_mapped(&mut self, paddr: u32, bytes: &[u8]) {
        self.mem.write_bytes(paddr, bytes);
    }

    /// Reads a word at a virtual address without side effects, using
    /// the current TLB state (host diagnostics, the analysis program's
    /// `/dev/kmem` view).
    pub fn peek_virt_word(&self, vaddr: u32) -> Option<u32> {
        let paddr = self.probe_translate(vaddr)?;
        if !self.mem.in_range(paddr, 4) {
            return None;
        }
        Some(self.mem.read_word(paddr & !3))
    }

    /// Translates a virtual address with no side effects.
    pub fn probe_translate(&self, vaddr: u32) -> Option<u32> {
        if self.cfg.bare && vaddr < 0x8000_0000 {
            return Some(vaddr);
        }
        match vaddr {
            0x8000_0000..=0x9fff_ffff => Some(vaddr - 0x8000_0000),
            0xa000_0000..=0xbfff_ffff => Some(vaddr - 0xa000_0000),
            _ => match self.tlb.lookup(vaddr, self.cp0.asid()) {
                TlbLookup::Hit { pfn, .. } => Some((pfn << 12) | (vaddr & 0xfff)),
                _ => None,
            },
        }
    }

    /// Runs until a stop event or until `max_insts` instructions
    /// retire.
    pub fn run(&mut self, max_insts: u64) -> StopEvent {
        if let Some(e) = self.halted {
            return e;
        }
        let target = self.counters.insts() + max_insts;
        while self.counters.insts() < target {
            if let Some(e) = self.step() {
                if matches!(e, StopEvent::Halted(_)) {
                    self.halted = Some(e);
                }
                return e;
            }
        }
        StopEvent::Budget
    }

    /// Translates for an access, raising the architectural exception
    /// on failure. Returns `(paddr, cached)`.
    fn translate(&mut self, vaddr: u32, access: Access) -> Result<(u32, bool), Exception> {
        let user = self.cp0.user_mode();
        if vaddr < 0x8000_0000 {
            if self.cfg.bare {
                return Ok((vaddr, true));
            }
            return self.translate_mapped(vaddr, access, true);
        }
        if user {
            let code = match access {
                Access::Store => ExcCode::AdES,
                _ => ExcCode::AdEL,
            };
            return Err(Exception::addr(code, vaddr, false));
        }
        match vaddr {
            0x8000_0000..=0x9fff_ffff => Ok((vaddr - 0x8000_0000, true)),
            0xa000_0000..=0xbfff_ffff => Ok((vaddr - 0xa000_0000, false)),
            _ => self.translate_mapped(vaddr, access, false),
        }
    }

    fn translate_mapped(
        &mut self,
        vaddr: u32,
        access: Access,
        user_segment: bool,
    ) -> Result<(u32, bool), Exception> {
        match self.tlb.lookup(vaddr, self.cp0.asid()) {
            TlbLookup::Hit {
                pfn,
                dirty,
                noncacheable,
            } => {
                if matches!(access, Access::Store) && !dirty {
                    return Err(Exception::addr(ExcCode::Mod, vaddr, false));
                }
                Ok(((pfn << 12) | (vaddr & 0xfff), !noncacheable))
            }
            TlbLookup::Miss => {
                if user_segment {
                    self.counters.utlb_misses += 1;
                } else {
                    self.counters.ktlb_misses += 1;
                }
                let code = match access {
                    Access::Store => ExcCode::TlbS,
                    _ => ExcCode::TlbL,
                };
                Err(Exception::addr(code, vaddr, user_segment))
            }
            TlbLookup::Invalid => {
                let code = match access {
                    Access::Store => ExcCode::TlbS,
                    _ => ExcCode::TlbL,
                };
                Err(Exception::addr(code, vaddr, false))
            }
        }
    }

    fn take_exception(&mut self, exc: Exception, epc_inst: u32, in_delay: bool) {
        let epc = if in_delay {
            epc_inst.wrapping_sub(4)
        } else {
            epc_inst
        };
        self.cp0.enter_exception(exc, epc, in_delay);
        self.counters.exceptions[(exc.code as usize) & 15] += 1;
        if exc.code == ExcCode::Int {
            self.counters.interrupts += 1;
        }
        self.counters.cycles += self.cfg.exc_entry_cycles;
        let vector = if exc.utlb { 0x8000_0000 } else { 0x8000_0080 };
        self.cpu.pc = vector;
        self.cpu.next_pc = vector + 4;
        self.next_is_delay = false;
    }

    fn sync_irq_lines(&mut self) {
        self.cp0
            .set_hw_interrupt(irq::CLOCK, self.dev.clock_pending);
        self.cp0.set_hw_interrupt(irq::DISK, self.dev.disk_pending);
    }

    fn dma(&mut self, op: crate::dev::DiskOp) {
        let base = (op.block * DISK_BLOCK_SIZE) as usize;
        let end = base + DISK_BLOCK_SIZE as usize;
        if end > self.dev.disk_image.len() {
            self.dev.disk_image.resize(end, 0);
        }
        if op.cmd == 1 {
            let mut buf = [0u8; DISK_BLOCK_SIZE as usize];
            buf.copy_from_slice(&self.dev.disk_image[base..end]);
            self.mem.write_bytes(op.paddr, &buf);
        } else {
            let mut buf = [0u8; DISK_BLOCK_SIZE as usize];
            self.mem.read_bytes(op.paddr, &mut buf);
            self.dev.disk_image[base..end].copy_from_slice(&buf);
        }
    }

    /// Executes one instruction; returns a stop event if the machine
    /// should hand control to the host.
    pub fn step(&mut self) -> Option<StopEvent> {
        let now = self.counters.cycles;

        // Device progress and interrupt lines.
        if now >= self.dev.next_event() {
            if let Some(op) = self.dev.tick(now) {
                self.dma(op);
            }
            self.sync_irq_lines();
        }

        // Interrupt dispatch (before the instruction at pc issues).
        if self.cp0.interrupts_enabled() && self.cp0.pending_interrupts() != 0 {
            let pc = self.cpu.pc;
            let in_delay = self.next_is_delay;
            self.take_exception(Exception::plain(ExcCode::Int), pc, in_delay);
        }

        let ipc = self.cpu.pc;
        let in_delay = self.next_is_delay;
        let user = self.cp0.user_mode();

        // Fetch.
        let (paddr, cached) = match self.translate(ipc, Access::Fetch) {
            Ok(v) => v,
            Err(e) => {
                if self.cfg.bare {
                    return Some(StopEvent::UnhandledException(e.code as u8));
                }
                self.take_exception(e, ipc, in_delay);
                return None;
            }
        };
        if ipc & 3 != 0 || !self.mem.in_range(paddr, 4) {
            let e = Exception::addr(ExcCode::AdEL, ipc, false);
            if self.cfg.bare {
                return Some(StopEvent::UnhandledException(e.code as u8));
            }
            self.take_exception(e, ipc, in_delay);
            return None;
        }
        self.counters.cycles += 1;
        self.tlb.tick();
        if cached && !self.cp0.cache_isolated() {
            if !self.icache.access(paddr) {
                self.counters.icache_misses += 1;
                self.counters.cycles += self.cfg.imiss_penalty;
            }
        } else {
            self.counters.uncached_ifetches += 1;
            self.counters.cycles += self.cfg.uncached_penalty;
        }
        if let Some(t) = self.tracer.as_mut() {
            t(RefEvent::Ifetch { vaddr: ipc, user });
        }
        if let Some(rc) = self.refcount.as_mut() {
            rc.bump(ipc);
        }

        let inst = match self.mem.fetch(paddr) {
            Ok(i) => i,
            Err(_) => {
                if self.cfg.bare {
                    return Some(StopEvent::UnhandledException(ExcCode::RI as u8));
                }
                self.take_exception(Exception::plain(ExcCode::RI), ipc, in_delay);
                return None;
            }
        };

        // Advance PC state (the two-register delay-slot scheme).
        self.cpu.pc = self.cpu.next_pc;
        self.cpu.next_pc = self.cpu.pc.wrapping_add(4);

        // Execute.
        let stop = match self.exec(inst, ipc, in_delay, user) {
            Ok(stop) => stop,
            Err(e) => {
                if self.cfg.bare {
                    return Some(StopEvent::UnhandledException(e.code as u8));
                }
                self.take_exception(e, ipc, in_delay);
                self.retire(ipc, user);
                return None;
            }
        };
        self.next_is_delay = inst.has_delay_slot();
        self.retire(ipc, user);
        stop
    }

    #[inline]
    fn retire(&mut self, ipc: u32, user: bool) {
        if user {
            self.counters.user_insts += 1;
        } else {
            self.counters.kernel_insts += 1;
        }
        if let Some((lo, hi)) = self.idle_range {
            if ipc >= lo && ipc < hi {
                self.counters.idle_insts += 1;
            }
        }
    }

    #[inline]
    fn rd(&self, r: wrl_isa::Reg) -> u32 {
        self.cpu.regs[r.idx()]
    }

    #[inline]
    fn wr(&mut self, r: wrl_isa::Reg, v: u32) {
        if r.idx() != 0 {
            self.cpu.regs[r.idx()] = v;
        }
    }

    /// Waits on the real and ideal FP scoreboards for register `f`.
    #[inline]
    fn fp_wait(&mut self, f: u8) {
        let r = self.fp_ready[f as usize & 30];
        let now = self.counters.cycles;
        if r > now {
            self.counters.fp_stall_cycles += r - now;
            self.counters.cycles = r;
        }
        let icyc = self.ideal_cycle();
        let ri = self.fp_ready_i[f as usize & 30];
        if ri > icyc {
            self.counters.fp_stall_ideal += ri - icyc;
        }
    }

    #[inline]
    fn ideal_cycle(&self) -> u64 {
        self.counters.insts() + self.counters.fp_stall_ideal
    }

    #[inline]
    fn fp_done(&mut self, f: u8, lat: u64) {
        self.fp_ready[f as usize & 30] = self.counters.cycles + lat;
        self.fp_ready_i[f as usize & 30] = self.ideal_cycle() + lat;
    }

    #[inline]
    fn hilo_wait(&mut self) {
        let now = self.counters.cycles;
        if self.hilo_ready > now {
            self.counters.fp_stall_cycles += self.hilo_ready - now;
            self.counters.cycles = self.hilo_ready;
        }
        let icyc = self.ideal_cycle();
        if self.hilo_ready_i > icyc {
            self.counters.fp_stall_ideal += self.hilo_ready_i - icyc;
        }
    }

    fn load(&mut self, vaddr: u32, width: u32, user: bool) -> Result<u32, Exception> {
        if !vaddr.is_multiple_of(width) {
            return Err(Exception::addr(ExcCode::AdEL, vaddr, false));
        }
        let (paddr, cached) = self.translate(vaddr, Access::Load)?;
        self.counters.loads += 1;
        if let Some(t) = self.tracer.as_mut() {
            t(RefEvent::Load { vaddr, user });
        }
        if Devices::owns(paddr) {
            self.counters.uncached_data += 1;
            self.counters.cycles += self.cfg.uncached_penalty;
            return Ok(self.dev.read(paddr, self.counters.cycles));
        }
        if !self.mem.in_range(paddr, width) {
            return Err(Exception::addr(ExcCode::AdEL, vaddr, false));
        }
        if cached {
            if !self.dcache.access(paddr) {
                self.counters.dcache_misses += 1;
                self.counters.cycles += self.cfg.dmiss_penalty;
            }
        } else {
            self.counters.uncached_data += 1;
            self.counters.cycles += self.cfg.uncached_penalty;
        }
        Ok(match width {
            1 => self.mem.read_byte(paddr) as u32,
            2 => self.mem.read_half(paddr) as u32,
            _ => self.mem.read_word(paddr),
        })
    }

    fn store(&mut self, vaddr: u32, v: u32, width: u32, user: bool) -> Result<(), Exception> {
        if !vaddr.is_multiple_of(width) {
            return Err(Exception::addr(ExcCode::AdES, vaddr, false));
        }
        let (paddr, cached) = self.translate(vaddr, Access::Store)?;
        self.counters.stores += 1;
        if let Some(t) = self.tracer.as_mut() {
            t(RefEvent::Store { vaddr, user });
        }
        if Devices::owns(paddr) {
            self.counters.uncached_data += 1;
            self.counters.cycles += self.cfg.uncached_penalty;
            // Halt/doorbell actions are intercepted by `dev_store`
            // before word stores reach here; other widths and actions
            // are plain register writes.
            let _ = self.dev.write(paddr, v, self.counters.cycles);
            self.sync_irq_lines();
            return Ok(());
        }
        if !self.mem.in_range(paddr, width) {
            return Err(Exception::addr(ExcCode::AdES, vaddr, false));
        }
        // Write-through with write buffer.
        if cached {
            self.dcache.write_update(paddr);
            let now = self.wb.push(self.counters.cycles);
            let stall = self.wb.stall_cycles;
            self.counters.cycles = now;
            self.counters.wb_stall_cycles = stall;
        } else {
            self.counters.uncached_data += 1;
            self.counters.cycles += self.cfg.uncached_penalty;
        }
        match width {
            1 => self.mem.write_byte(paddr, v as u8),
            2 => self.mem.write_half(paddr, v as u16),
            _ => self.mem.write_word(paddr, v),
        }
        Ok(())
    }

    /// Pending device action captured during a store (halt/doorbell).
    fn dev_store(&mut self, vaddr: u32, v: u32, width: u32, user: bool) -> DevStore {
        // Peek whether this hits the device page for halt/doorbell.
        let is_dev = self
            .probe_translate(vaddr)
            .map(Devices::owns)
            .unwrap_or(false);
        if is_dev && width == 4 {
            let paddr = self.probe_translate(vaddr).expect("probed above");
            let off = paddr - crate::dev::DEV_BASE;
            if off == crate::dev::regs::HALT {
                return DevStore::Halt(v);
            }
            if off == crate::dev::regs::TRACE_REQ {
                // Perform the store (for the doorbell payload), then stop.
                let _ = self.store(vaddr, v, width, user);
                return DevStore::Doorbell(v);
            }
        }
        match self.store(vaddr, v, width, user) {
            Ok(()) => DevStore::Done,
            Err(e) => DevStore::Fault(e),
        }
    }

    fn exec(
        &mut self,
        inst: Inst,
        ipc: u32,
        in_delay: bool,
        user: bool,
    ) -> Result<Option<StopEvent>, Exception> {
        use Inst::*;
        let lat = self.cfg.lat;
        match inst {
            Sll { rd, rt, sh } => self.wr(rd, self.rd(rt) << sh),
            Srl { rd, rt, sh } => self.wr(rd, self.rd(rt) >> sh),
            Sra { rd, rt, sh } => self.wr(rd, ((self.rd(rt) as i32) >> sh) as u32),
            Sllv { rd, rt, rs } => self.wr(rd, self.rd(rt) << (self.rd(rs) & 31)),
            Srlv { rd, rt, rs } => self.wr(rd, self.rd(rt) >> (self.rd(rs) & 31)),
            Srav { rd, rt, rs } => self.wr(rd, ((self.rd(rt) as i32) >> (self.rd(rs) & 31)) as u32),
            Addu { rd, rs, rt } => self.wr(rd, self.rd(rs).wrapping_add(self.rd(rt))),
            Subu { rd, rs, rt } => self.wr(rd, self.rd(rs).wrapping_sub(self.rd(rt))),
            And { rd, rs, rt } => self.wr(rd, self.rd(rs) & self.rd(rt)),
            Or { rd, rs, rt } => self.wr(rd, self.rd(rs) | self.rd(rt)),
            Xor { rd, rs, rt } => self.wr(rd, self.rd(rs) ^ self.rd(rt)),
            Nor { rd, rs, rt } => self.wr(rd, !(self.rd(rs) | self.rd(rt))),
            Slt { rd, rs, rt } => {
                self.wr(rd, u32::from((self.rd(rs) as i32) < (self.rd(rt) as i32)))
            }
            Sltu { rd, rs, rt } => self.wr(rd, u32::from(self.rd(rs) < self.rd(rt))),
            Mult { rs, rt } => {
                let p = (self.rd(rs) as i32 as i64) * (self.rd(rt) as i32 as i64);
                self.cpu.lo = p as u32;
                self.cpu.hi = (p >> 32) as u32;
                self.hilo_ready = self.counters.cycles + lat.int_mul;
                self.hilo_ready_i = self.ideal_cycle() + lat.int_mul;
            }
            Multu { rs, rt } => {
                let p = (self.rd(rs) as u64) * (self.rd(rt) as u64);
                self.cpu.lo = p as u32;
                self.cpu.hi = (p >> 32) as u32;
                self.hilo_ready = self.counters.cycles + lat.int_mul;
                self.hilo_ready_i = self.ideal_cycle() + lat.int_mul;
            }
            Div { rs, rt } => {
                let a = self.rd(rs) as i32;
                let b = self.rd(rt) as i32;
                if b != 0 {
                    self.cpu.lo = a.wrapping_div(b) as u32;
                    self.cpu.hi = a.wrapping_rem(b) as u32;
                }
                self.hilo_ready = self.counters.cycles + lat.int_div;
                self.hilo_ready_i = self.ideal_cycle() + lat.int_div;
            }
            Divu { rs, rt } => {
                let a = self.rd(rs);
                let b = self.rd(rt);
                // Division by zero leaves HI/LO unchanged (undefined
                // on the real part; we pick the stable behaviour).
                if let Some(q) = a.checked_div(b) {
                    self.cpu.lo = q;
                    self.cpu.hi = a % b;
                }
                self.hilo_ready = self.counters.cycles + lat.int_div;
                self.hilo_ready_i = self.ideal_cycle() + lat.int_div;
            }
            Mfhi { rd } => {
                self.hilo_wait();
                self.wr(rd, self.cpu.hi);
            }
            Mflo { rd } => {
                self.hilo_wait();
                self.wr(rd, self.cpu.lo);
            }
            Mthi { rs } => self.cpu.hi = self.rd(rs),
            Mtlo { rs } => self.cpu.lo = self.rd(rs),
            Addiu { rt, rs, imm } => self.wr(rt, self.rd(rs).wrapping_add(imm as u32)),
            Slti { rt, rs, imm } => self.wr(rt, u32::from((self.rd(rs) as i32) < imm as i32)),
            Sltiu { rt, rs, imm } => self.wr(rt, u32::from(self.rd(rs) < imm as i32 as u32)),
            Andi { rt, rs, imm } => self.wr(rt, self.rd(rs) & imm as u32),
            Ori { rt, rs, imm } => self.wr(rt, self.rd(rs) | imm as u32),
            Xori { rt, rs, imm } => self.wr(rt, self.rd(rs) ^ imm as u32),
            Lui { rt, imm } => self.wr(rt, (imm as u32) << 16),
            Lb { rt, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                let v = self.load(a, 1, user)? as i8 as i32 as u32;
                self.wr(rt, v);
            }
            Lbu { rt, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                let v = self.load(a, 1, user)?;
                self.wr(rt, v);
            }
            Lh { rt, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                let v = self.load(a, 2, user)? as i16 as i32 as u32;
                self.wr(rt, v);
            }
            Lhu { rt, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                let v = self.load(a, 2, user)?;
                self.wr(rt, v);
            }
            Lw { rt, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                let v = self.load(a, 4, user)?;
                self.wr(rt, v);
            }
            Sb { rt, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                self.store(a, self.rd(rt), 1, user)?;
            }
            Sh { rt, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                self.store(a, self.rd(rt), 2, user)?;
            }
            Sw { rt, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                match self.dev_store(a, self.rd(rt), 4, user) {
                    DevStore::Done => {}
                    DevStore::Fault(e) => return Err(e),
                    DevStore::Halt(code) => return Ok(Some(StopEvent::Halted(code))),
                    DevStore::Doorbell(v) => return Ok(Some(StopEvent::TraceRequest(v))),
                }
            }
            Lwc1 { ft, base, off } => {
                let a = self.rd(base).wrapping_add(off as u32);
                let v = self.load(a, 4, user)?;
                self.cpu.fregs[ft.idx()] = v;
                // Loading either half makes the pair "written".
                let even = ft.0 & 30;
                self.fp_ready[even as usize] =
                    self.fp_ready[even as usize].max(self.counters.cycles);
            }
            Swc1 { ft, base, off } => {
                self.fp_wait(ft.0);
                let a = self.rd(base).wrapping_add(off as u32);
                self.store(a, self.cpu.fregs[ft.idx()], 4, user)?;
            }
            Beq { rs, rt, off } => {
                if self.rd(rs) == self.rd(rt) {
                    self.cpu.next_pc = branch_target(ipc, off);
                }
            }
            Bne { rs, rt, off } => {
                if self.rd(rs) != self.rd(rt) {
                    self.cpu.next_pc = branch_target(ipc, off);
                }
            }
            Blez { rs, off } => {
                if (self.rd(rs) as i32) <= 0 {
                    self.cpu.next_pc = branch_target(ipc, off);
                }
            }
            Bgtz { rs, off } => {
                if (self.rd(rs) as i32) > 0 {
                    self.cpu.next_pc = branch_target(ipc, off);
                }
            }
            Bltz { rs, off } => {
                if (self.rd(rs) as i32) < 0 {
                    self.cpu.next_pc = branch_target(ipc, off);
                }
            }
            Bgez { rs, off } => {
                if (self.rd(rs) as i32) >= 0 {
                    self.cpu.next_pc = branch_target(ipc, off);
                }
            }
            J { target } => {
                self.cpu.next_pc = (ipc.wrapping_add(4) & 0xf000_0000) | (target << 2);
            }
            Jal { target } => {
                self.wr(RA, ipc.wrapping_add(8));
                self.cpu.next_pc = (ipc.wrapping_add(4) & 0xf000_0000) | (target << 2);
            }
            Jr { rs } => {
                self.cpu.next_pc = self.rd(rs);
            }
            Jalr { rd, rs } => {
                let t = self.rd(rs);
                self.wr(rd, ipc.wrapping_add(8));
                self.cpu.next_pc = t;
            }
            Syscall { code } => {
                if self.cfg.bare {
                    // The host services the call; resume after it.
                    debug_assert!(!in_delay, "syscall in a delay slot");
                    return Ok(Some(StopEvent::Syscall(code)));
                }
                return Err(Exception::plain(ExcCode::Sys));
            }
            Break { code } => {
                if self.cfg.bare {
                    return Ok(Some(StopEvent::Break(code)));
                }
                return Err(Exception::plain(ExcCode::Bp));
            }
            Mfc0 { rt, rd } => {
                if user {
                    return Err(Exception::plain(ExcCode::CpU));
                }
                let v = self.cp0.read(rd, self.tlb.random() as u32);
                self.wr(rt, v);
            }
            Mtc0 { rt, rd } => {
                if user {
                    return Err(Exception::plain(ExcCode::CpU));
                }
                self.cp0.write(rd, self.rd(rt));
            }
            Tlbr => {
                if user {
                    return Err(Exception::plain(ExcCode::CpU));
                }
                let e = self.tlb.read_indexed((self.cp0.index >> 8) as usize);
                self.cp0.entryhi = e.entry_hi();
                self.cp0.entrylo = e.entry_lo();
            }
            Tlbwi => {
                if user {
                    return Err(Exception::plain(ExcCode::CpU));
                }
                let e = crate::tlb::TlbEntry::from_regs(self.cp0.entryhi, self.cp0.entrylo);
                self.tlb.write_indexed((self.cp0.index >> 8) as usize, e);
            }
            Tlbwr => {
                if user {
                    return Err(Exception::plain(ExcCode::CpU));
                }
                let e = crate::tlb::TlbEntry::from_regs(self.cp0.entryhi, self.cp0.entrylo);
                self.tlb.write_random(e);
            }
            Tlbp => {
                if user {
                    return Err(Exception::plain(ExcCode::CpU));
                }
                self.cp0.index = match self.tlb.probe(self.cp0.entryhi) {
                    Some(i) => (i as u32) << 8,
                    None => 0x8000_0000,
                };
            }
            Rfe => {
                if user {
                    return Err(Exception::plain(ExcCode::CpU));
                }
                self.cp0.rfe();
                self.counters.cycles += self.cfg.rfe_cycles;
            }
            Cache { op, base, off } => {
                if user {
                    return Err(Exception::plain(ExcCode::CpU));
                }
                let vaddr = self.rd(base).wrapping_add(off as u32);
                if let Some(paddr) = self.probe_translate(vaddr) {
                    if op == 0 {
                        self.icache.invalidate_line(paddr);
                    } else {
                        self.dcache.invalidate_line(paddr);
                    }
                }
            }
            Mfc1 { rt, fs } => {
                self.fp_wait(fs.0);
                self.wr(rt, self.cpu.fregs[fs.idx()]);
            }
            Mtc1 { rt, fs } => {
                self.cpu.fregs[fs.idx()] = self.rd(rt);
                let even = fs.0 & 30;
                self.fp_ready[even as usize] =
                    self.fp_ready[even as usize].max(self.counters.cycles);
            }
            AddD { fd, fs, ft } => {
                self.fp_wait(fs.0);
                self.fp_wait(ft.0);
                let v = self.cpu.get_d(fs.0) + self.cpu.get_d(ft.0);
                self.cpu.set_d(fd.0, v);
                self.fp_done(fd.0, lat.fp_add);
            }
            SubD { fd, fs, ft } => {
                self.fp_wait(fs.0);
                self.fp_wait(ft.0);
                let v = self.cpu.get_d(fs.0) - self.cpu.get_d(ft.0);
                self.cpu.set_d(fd.0, v);
                self.fp_done(fd.0, lat.fp_add);
            }
            MulD { fd, fs, ft } => {
                self.fp_wait(fs.0);
                self.fp_wait(ft.0);
                let v = self.cpu.get_d(fs.0) * self.cpu.get_d(ft.0);
                self.cpu.set_d(fd.0, v);
                self.fp_done(fd.0, lat.fp_mul);
            }
            DivD { fd, fs, ft } => {
                self.fp_wait(fs.0);
                self.fp_wait(ft.0);
                let v = self.cpu.get_d(fs.0) / self.cpu.get_d(ft.0);
                self.cpu.set_d(fd.0, v);
                self.fp_done(fd.0, lat.fp_div);
            }
            AbsD { fd, fs } => {
                self.fp_wait(fs.0);
                let v = self.cpu.get_d(fs.0).abs();
                self.cpu.set_d(fd.0, v);
                self.fp_done(fd.0, lat.fp_add);
            }
            MovD { fd, fs } => {
                self.fp_wait(fs.0);
                let v = self.cpu.get_d(fs.0);
                self.cpu.set_d(fd.0, v);
                self.fp_done(fd.0, 1);
            }
            NegD { fd, fs } => {
                self.fp_wait(fs.0);
                let v = -self.cpu.get_d(fs.0);
                self.cpu.set_d(fd.0, v);
                self.fp_done(fd.0, lat.fp_add);
            }
            CvtDW { fd, fs } => {
                self.fp_wait(fs.0);
                let w = self.cpu.fregs[fs.idx()] as i32;
                self.cpu.set_d(fd.0, w as f64);
                self.fp_done(fd.0, lat.fp_cvt);
            }
            CvtWD { fd, fs } => {
                self.fp_wait(fs.0);
                let v = self.cpu.get_d(fs.0);
                self.cpu.fregs[fd.idx()] = v as i32 as u32;
                self.fp_done(fd.0, lat.fp_cvt);
            }
            CEqD { fs, ft } => {
                self.fp_wait(fs.0);
                self.fp_wait(ft.0);
                self.cpu.fcc = self.cpu.get_d(fs.0) == self.cpu.get_d(ft.0);
                self.fcc_ready = self.counters.cycles + lat.fp_cmp;
                self.fcc_ready_i = self.ideal_cycle() + lat.fp_cmp;
            }
            CLtD { fs, ft } => {
                self.fp_wait(fs.0);
                self.fp_wait(ft.0);
                self.cpu.fcc = self.cpu.get_d(fs.0) < self.cpu.get_d(ft.0);
                self.fcc_ready = self.counters.cycles + lat.fp_cmp;
                self.fcc_ready_i = self.ideal_cycle() + lat.fp_cmp;
            }
            CLeD { fs, ft } => {
                self.fp_wait(fs.0);
                self.fp_wait(ft.0);
                self.cpu.fcc = self.cpu.get_d(fs.0) <= self.cpu.get_d(ft.0);
                self.fcc_ready = self.counters.cycles + lat.fp_cmp;
                self.fcc_ready_i = self.ideal_cycle() + lat.fp_cmp;
            }
            Bc1t { off } => {
                self.fcc_wait();
                if self.cpu.fcc {
                    self.cpu.next_pc = branch_target(ipc, off);
                }
            }
            Bc1f { off } => {
                self.fcc_wait();
                if !self.cpu.fcc {
                    self.cpu.next_pc = branch_target(ipc, off);
                }
            }
        }
        Ok(None)
    }

    #[inline]
    fn fcc_wait(&mut self) {
        let now = self.counters.cycles;
        if self.fcc_ready > now {
            self.counters.fp_stall_cycles += self.fcc_ready - now;
            self.counters.cycles = self.fcc_ready;
        }
        let icyc = self.ideal_cycle();
        if self.fcc_ready_i > icyc {
            self.counters.fp_stall_ideal += self.fcc_ready_i - icyc;
        }
    }
}

enum DevStore {
    Done,
    Fault(Exception),
    Halt(u32),
    Doorbell(u32),
}

#[inline]
fn branch_target(ipc: u32, off: i16) -> u32 {
    ipc.wrapping_add(4).wrapping_add(((off as i32) << 2) as u32)
}
