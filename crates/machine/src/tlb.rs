//! The software-managed translation lookaside buffer.
//!
//! A 64-entry fully-associative TLB with 4 KB pages, 6-bit address
//! space identifiers, and the R3000's random-replacement register:
//! `tlbwr` writes the entry indexed by Random, which cycles through
//! 8..63 (the low eight entries are "wired" and only reachable via
//! `tlbwi`). The kernel's 9-instruction UTLB refill handler and the
//! explicit `tlbdropin`/`tlb_map_random` writes both go through this
//! model, which is what makes Table 3's error structure reproducible.

/// One TLB entry, mirroring the EntryHi/EntryLo register pair.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (bits 31:12 of the vaddr).
    pub vpn: u32,
    /// Address-space identifier (0..63).
    pub asid: u8,
    /// Physical frame number.
    pub pfn: u32,
    /// Entry is valid.
    pub valid: bool,
    /// Page is writable ("dirty" in R3000 terms).
    pub dirty: bool,
    /// Entry matches regardless of ASID.
    pub global: bool,
    /// Accesses through this entry bypass the cache.
    pub noncacheable: bool,
}

impl TlbEntry {
    /// Packs the EntryHi register image.
    pub fn entry_hi(&self) -> u32 {
        (self.vpn << 12) | ((self.asid as u32) << 6)
    }

    /// Packs the EntryLo register image.
    pub fn entry_lo(&self) -> u32 {
        (self.pfn << 12)
            | ((self.noncacheable as u32) << 11)
            | ((self.dirty as u32) << 10)
            | ((self.valid as u32) << 9)
            | ((self.global as u32) << 8)
    }

    /// Unpacks from EntryHi/EntryLo register images.
    pub fn from_regs(hi: u32, lo: u32) -> TlbEntry {
        TlbEntry {
            vpn: hi >> 12,
            asid: ((hi >> 6) & 63) as u8,
            pfn: lo >> 12,
            noncacheable: lo & (1 << 11) != 0,
            dirty: lo & (1 << 10) != 0,
            valid: lo & (1 << 9) != 0,
            global: lo & (1 << 8) != 0,
        }
    }
}

/// Number of TLB entries.
pub const TLB_ENTRIES: usize = 64;
/// First entry index reachable by `tlbwr` (entries below are wired).
pub const TLB_WIRED: usize = 8;

/// The outcome of a TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbLookup {
    /// Translation hit: physical address base and cacheability.
    Hit {
        /// Physical frame number.
        pfn: u32,
        /// Entry allows writes.
        dirty: bool,
        /// Bypass the cache for this page.
        noncacheable: bool,
    },
    /// No matching entry.
    Miss,
    /// Matching entry exists but is invalid.
    Invalid,
}

/// The TLB array plus the Random replacement register.
pub struct Tlb {
    entries: [TlbEntry; TLB_ENTRIES],
    /// The Random register value (TLB_WIRED..TLB_ENTRIES).
    random: usize,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tlb {
    /// Creates an empty (all-invalid) TLB.
    pub fn new() -> Tlb {
        Tlb {
            entries: [TlbEntry::default(); TLB_ENTRIES],
            random: TLB_ENTRIES - 1,
        }
    }

    /// Advances the Random register (called once per instruction
    /// cycle, as on the R3000).
    #[inline]
    pub fn tick(&mut self) {
        self.random = if self.random <= TLB_WIRED {
            TLB_ENTRIES - 1
        } else {
            self.random - 1
        };
    }

    /// Current Random register value.
    pub fn random(&self) -> usize {
        self.random
    }

    /// Looks up `vaddr` under `asid`.
    pub fn lookup(&self, vaddr: u32, asid: u8) -> TlbLookup {
        let vpn = vaddr >> 12;
        for e in &self.entries {
            if e.vpn == vpn && (e.global || e.asid == asid) {
                if !e.valid {
                    return TlbLookup::Invalid;
                }
                return TlbLookup::Hit {
                    pfn: e.pfn,
                    dirty: e.dirty,
                    noncacheable: e.noncacheable,
                };
            }
        }
        TlbLookup::Miss
    }

    /// Probes for an entry matching EntryHi, returning its index
    /// (the `tlbp` instruction).
    pub fn probe(&self, hi: u32) -> Option<usize> {
        let vpn = hi >> 12;
        let asid = ((hi >> 6) & 63) as u8;
        self.entries
            .iter()
            .position(|e| e.vpn == vpn && (e.global || e.asid == asid))
    }

    /// Writes entry `index` (the `tlbwi` instruction).
    pub fn write_indexed(&mut self, index: usize, e: TlbEntry) {
        self.entries[index % TLB_ENTRIES] = e;
    }

    /// Writes the entry selected by Random (the `tlbwr` instruction).
    pub fn write_random(&mut self, e: TlbEntry) -> usize {
        let i = self.random;
        self.entries[i] = e;
        i
    }

    /// Reads entry `index` (the `tlbr` instruction).
    pub fn read_indexed(&self, index: usize) -> TlbEntry {
        self.entries[index % TLB_ENTRIES]
    }

    /// Invalidates every entry (used at boot and by tests).
    pub fn flush(&mut self) {
        self.entries = [TlbEntry::default(); TLB_ENTRIES];
        // Leave `vpn = 0` entries harmless: mark all invalid and
        // non-matching by pointing them at distinct impossible pages.
        for (i, e) in self.entries.iter_mut().enumerate() {
            e.vpn = 0xfff00 + i as u32;
        }
    }

    /// Iterates over the entries (diagnostics, page-map extraction).
    pub fn entries(&self) -> &[TlbEntry; TLB_ENTRIES] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u32, asid: u8, pfn: u32) -> TlbEntry {
        TlbEntry {
            vpn,
            asid,
            pfn,
            valid: true,
            dirty: true,
            global: false,
            noncacheable: false,
        }
    }

    #[test]
    fn hit_requires_matching_asid() {
        let mut t = Tlb::new();
        t.flush();
        t.write_indexed(0, entry(0x123, 5, 0x77));
        assert_eq!(
            t.lookup(0x0012_3abc, 5),
            TlbLookup::Hit {
                pfn: 0x77,
                dirty: true,
                noncacheable: false
            }
        );
        assert_eq!(t.lookup(0x0012_3abc, 6), TlbLookup::Miss);
    }

    #[test]
    fn global_ignores_asid() {
        let mut t = Tlb::new();
        t.flush();
        let mut e = entry(0x40, 1, 0x10);
        e.global = true;
        t.write_indexed(3, e);
        assert!(matches!(t.lookup(0x0004_0000, 9), TlbLookup::Hit { .. }));
    }

    #[test]
    fn invalid_entry_reports_invalid() {
        let mut t = Tlb::new();
        t.flush();
        let mut e = entry(0x99, 0, 0x1);
        e.valid = false;
        t.write_indexed(1, e);
        assert_eq!(t.lookup(0x0009_9000, 0), TlbLookup::Invalid);
    }

    #[test]
    fn random_cycles_through_unwired() {
        let mut t = Tlb::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            t.tick();
            seen.insert(t.random());
        }
        assert!(seen.iter().all(|&i| (TLB_WIRED..TLB_ENTRIES).contains(&i)));
        assert_eq!(seen.len(), TLB_ENTRIES - TLB_WIRED);
    }

    #[test]
    fn register_images_round_trip() {
        let e = TlbEntry {
            vpn: 0xabcde,
            asid: 33,
            pfn: 0x00321,
            valid: true,
            dirty: false,
            global: true,
            noncacheable: true,
        };
        let e2 = TlbEntry::from_regs(e.entry_hi(), e.entry_lo());
        assert_eq!(e, e2);
    }

    #[test]
    fn probe_finds_index() {
        let mut t = Tlb::new();
        t.flush();
        t.write_indexed(42, entry(0x55, 2, 0x9));
        let hi = (0x55 << 12) | (2 << 6);
        assert_eq!(t.probe(hi), Some(42));
        assert_eq!(t.probe(0x66 << 12), None);
    }
}
