//! Physically-indexed caches and the write buffer.
//!
//! The DECstation 5000/200 memory system the paper models: a 64 KB
//! direct-mapped instruction cache with 16-byte lines, a 64 KB
//! direct-mapped write-through data cache with 4-byte lines, and a
//! small write buffer that drains to memory at a fixed rate. Because
//! the caches are physically indexed and larger than a page, the
//! virtual-to-physical page mapping policy determines which lines
//! compete — the effect §4.2 and §5.1 attribute up to 10% of run time
//! to.
//!
//! Only tags are modelled: data always comes from simulated memory, so
//! the cache affects *timing and event counts*, never values.

/// Configuration of one direct-mapped cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheCfg {
    /// Total size in bytes (power of two).
    pub size: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
}

impl CacheCfg {
    /// The DECstation 5000/200 instruction cache: 64 KB, 16 B lines.
    pub fn dec5000_icache() -> CacheCfg {
        CacheCfg {
            size: 64 * 1024,
            line: 16,
        }
    }

    /// The DECstation 5000/200 data cache: 64 KB, 4 B lines.
    pub fn dec5000_dcache() -> CacheCfg {
        CacheCfg {
            size: 64 * 1024,
            line: 4,
        }
    }
}

/// A direct-mapped, tag-only cache.
pub struct Cache {
    cfg: CacheCfg,
    /// Tag per line; `u32::MAX` means invalid.
    tags: Vec<u32>,
    line_shift: u32,
    index_mask: u32,
}

/// Tag value representing an invalid line.
const INVALID: u32 = u32::MAX;

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if size or line are not powers of two, or size < line.
    pub fn new(cfg: CacheCfg) -> Cache {
        assert!(cfg.size.is_power_of_two() && cfg.line.is_power_of_two());
        assert!(cfg.size >= cfg.line);
        let lines = cfg.size / cfg.line;
        Cache {
            cfg,
            tags: vec![INVALID; lines as usize],
            line_shift: cfg.line.trailing_zeros(),
            index_mask: lines - 1,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.tags.len() as u32
    }

    /// Accesses `paddr`; returns true on hit, allocating on miss.
    #[inline]
    pub fn access(&mut self, paddr: u32) -> bool {
        let lineno = paddr >> self.line_shift;
        let idx = (lineno & self.index_mask) as usize;
        let tag = lineno >> self.index_mask.trailing_ones();
        if self.tags[idx] == tag {
            true
        } else {
            self.tags[idx] = tag;
            false
        }
    }

    /// Accesses `paddr` without allocating on miss (write-through,
    /// no-write-allocate stores).
    #[inline]
    pub fn access_no_allocate(&mut self, paddr: u32) -> bool {
        let lineno = paddr >> self.line_shift;
        let idx = (lineno & self.index_mask) as usize;
        let tag = lineno >> self.index_mask.trailing_ones();
        self.tags[idx] == tag
    }

    /// Updates the line on a write hit (write-through keeps the line).
    #[inline]
    pub fn write_update(&mut self, paddr: u32) -> bool {
        self.access_no_allocate(paddr)
    }

    /// Invalidates the line containing `paddr` (the `cache`
    /// instruction used by the kernel's flush routines).
    pub fn invalidate_line(&mut self, paddr: u32) {
        let lineno = paddr >> self.line_shift;
        let idx = (lineno & self.index_mask) as usize;
        self.tags[idx] = INVALID;
    }

    /// Invalidates the whole cache.
    pub fn invalidate_all(&mut self) {
        self.tags.fill(INVALID);
    }

    /// The configuration this cache was built with.
    pub fn cfg(&self) -> CacheCfg {
        self.cfg
    }
}

/// A FIFO write buffer draining one entry every `drain_cycles`.
///
/// Stores enter the buffer; when it is full the processor stalls until
/// the oldest entry retires. Retirement times are tracked as absolute
/// cycle numbers, so drain overlaps naturally with whatever else the
/// processor is doing — the overlap the paper's trace-driven simulator
/// does *not* model (§5.1, the `liv` error).
pub struct WriteBuffer {
    /// Completion times of in-flight entries (monotonic).
    slots: std::collections::VecDeque<u64>,
    capacity: usize,
    drain_cycles: u64,
    last_completion: u64,
    /// Total cycles the processor has stalled on a full buffer.
    pub stall_cycles: u64,
    /// Total stall events.
    pub stalls: u64,
}

impl WriteBuffer {
    /// Creates a write buffer with `capacity` entries.
    pub fn new(capacity: usize, drain_cycles: u64) -> WriteBuffer {
        WriteBuffer {
            slots: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            drain_cycles,
            last_completion: 0,
            stall_cycles: 0,
            stalls: 0,
        }
    }

    /// Pushes a store at time `now`; returns the new current time
    /// (which is later than `now` if the processor had to stall).
    #[inline]
    pub fn push(&mut self, mut now: u64) -> u64 {
        while let Some(&front) = self.slots.front() {
            if front <= now {
                self.slots.pop_front();
            } else {
                break;
            }
        }
        if self.slots.len() >= self.capacity {
            // Stall until the oldest entry retires.
            let front = self.slots.pop_front().expect("capacity > 0");
            self.stall_cycles += front - now;
            self.stalls += 1;
            now = front;
        }
        let start = self.last_completion.max(now);
        let done = start + self.drain_cycles;
        self.last_completion = done;
        self.slots.push_back(done);
        now
    }

    /// Number of entries still in flight at time `now`.
    pub fn in_flight(&self, now: u64) -> usize {
        self.slots.iter().filter(|&&t| t > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheCfg {
            size: 1024,
            line: 16,
        });
        assert!(!c.access(0)); // cold miss
        assert!(c.access(4)); // same line
        assert!(!c.access(1024)); // conflicting line
        assert!(!c.access(0)); // evicted
    }

    #[test]
    fn no_allocate_does_not_install() {
        let mut c = Cache::new(CacheCfg {
            size: 1024,
            line: 16,
        });
        assert!(!c.access_no_allocate(64));
        assert!(!c.access_no_allocate(64)); // still not resident
        c.access(64);
        assert!(c.access_no_allocate(64));
    }

    #[test]
    fn invalidate_line_and_all() {
        let mut c = Cache::new(CacheCfg {
            size: 1024,
            line: 16,
        });
        c.access(128);
        c.invalidate_line(128);
        assert!(!c.access(128));
        c.access(256);
        c.invalidate_all();
        assert!(!c.access(256));
    }

    #[test]
    fn write_buffer_stalls_when_full() {
        let mut wb = WriteBuffer::new(2, 10);
        let t0 = wb.push(0); // completes at 10
        assert_eq!(t0, 0);
        let t1 = wb.push(0); // completes at 20
        assert_eq!(t1, 0);
        let t2 = wb.push(0); // full: stall to 10
        assert_eq!(t2, 10);
        assert_eq!(wb.stall_cycles, 10);
        assert_eq!(wb.stalls, 1);
    }

    #[test]
    fn write_buffer_drains_over_time() {
        let mut wb = WriteBuffer::new(2, 10);
        wb.push(0);
        wb.push(0);
        // At cycle 100 everything has drained; no stall.
        let t = wb.push(100);
        assert_eq!(t, 100);
        assert_eq!(wb.stall_cycles, 0);
        assert_eq!(wb.in_flight(100), 1);
    }
}
