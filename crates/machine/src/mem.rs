//! Physical memory with a predecode cache.
//!
//! Memory is word-organised (little-endian within words). A parallel
//! predecode array caches the decoded form of instruction words so the
//! simulator does not re-decode on every fetch; any store to a word
//! invalidates its predecoded entry, so self-modifying code (and
//! program loading) stays correct.

use wrl_isa::{decode, Inst};

/// Physical memory.
pub struct Mem {
    words: Vec<u32>,
    decoded: Vec<Option<Inst>>,
}

impl Mem {
    /// Creates `bytes` of zeroed physical memory (rounded up to a word).
    pub fn new(bytes: u32) -> Mem {
        let n = bytes.div_ceil(4) as usize;
        Mem {
            words: vec![0; n],
            decoded: vec![None; n],
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Returns true if `paddr..paddr+len` lies within memory.
    pub fn in_range(&self, paddr: u32, len: u32) -> bool {
        (paddr as u64 + len as u64) <= self.size() as u64
    }

    /// Reads the word containing `paddr` (which must be word-aligned
    /// and in range).
    #[inline]
    pub fn read_word(&self, paddr: u32) -> u32 {
        self.words[(paddr >> 2) as usize]
    }

    /// Writes a word (invalidating any predecoded instruction).
    #[inline]
    pub fn write_word(&mut self, paddr: u32, v: u32) {
        let i = (paddr >> 2) as usize;
        self.words[i] = v;
        self.decoded[i] = None;
    }

    /// Reads a byte.
    #[inline]
    pub fn read_byte(&self, paddr: u32) -> u8 {
        let w = self.words[(paddr >> 2) as usize];
        (w >> ((paddr & 3) * 8)) as u8
    }

    /// Writes a byte.
    #[inline]
    pub fn write_byte(&mut self, paddr: u32, v: u8) {
        let i = (paddr >> 2) as usize;
        let sh = (paddr & 3) * 8;
        self.words[i] = (self.words[i] & !(0xffu32 << sh)) | ((v as u32) << sh);
        self.decoded[i] = None;
    }

    /// Reads a halfword (must be 2-byte aligned).
    #[inline]
    pub fn read_half(&self, paddr: u32) -> u16 {
        let w = self.words[(paddr >> 2) as usize];
        (w >> ((paddr & 2) * 8)) as u16
    }

    /// Writes a halfword (must be 2-byte aligned).
    #[inline]
    pub fn write_half(&mut self, paddr: u32, v: u16) {
        let i = (paddr >> 2) as usize;
        let sh = (paddr & 2) * 8;
        self.words[i] = (self.words[i] & !(0xffffu32 << sh)) | ((v as u32) << sh);
        self.decoded[i] = None;
    }

    /// Fetches and decodes the instruction at word-aligned `paddr`,
    /// using the predecode cache.
    #[inline]
    pub fn fetch(&mut self, paddr: u32) -> Result<Inst, u32> {
        let i = (paddr >> 2) as usize;
        if let Some(inst) = self.decoded[i] {
            return Ok(inst);
        }
        let w = self.words[i];
        match decode(w) {
            Ok(inst) => {
                self.decoded[i] = Some(inst);
                Ok(inst)
            }
            Err(_) => Err(w),
        }
    }

    /// Copies bytes into memory (used by program loading and disk DMA).
    pub fn write_bytes(&mut self, paddr: u32, bytes: &[u8]) {
        for (k, &b) in bytes.iter().enumerate() {
            self.write_byte(paddr + k as u32, b);
        }
    }

    /// Copies bytes out of memory.
    pub fn read_bytes(&self, paddr: u32, out: &mut [u8]) {
        for (k, b) in out.iter_mut().enumerate() {
            *b = self.read_byte(paddr + k as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_lanes() {
        let mut m = Mem::new(64);
        m.write_word(0, 0x11223344);
        assert_eq!(m.read_byte(0), 0x44);
        assert_eq!(m.read_byte(3), 0x11);
        m.write_byte(1, 0xaa);
        assert_eq!(m.read_word(0), 0x1122aa44);
        assert_eq!(m.read_half(0), 0xaa44);
        m.write_half(2, 0xbeef);
        assert_eq!(m.read_word(0), 0xbeefaa44);
    }

    #[test]
    fn predecode_invalidation() {
        let mut m = Mem::new(64);
        // nop decodes fine.
        assert!(m.fetch(0).is_ok());
        // Overwrite with a reserved word: fetch must see the new word.
        m.write_word(0, 0xffff_ffff);
        assert_eq!(m.fetch(0), Err(0xffff_ffff));
    }

    #[test]
    fn bulk_copy_round_trips() {
        let mut m = Mem::new(128);
        let src: Vec<u8> = (0..100u8).collect();
        m.write_bytes(4, &src);
        let mut dst = vec![0u8; 100];
        m.read_bytes(4, &mut dst);
        assert_eq!(src, dst);
    }
}
