//! The five repo analyses, ported onto [`AnalysisSink`].
//!
//! Each of these used to be welded into its own harness entry or
//! experiment binary; here they are ordinary sinks, so any subset runs
//! composed over one parse. Bit-identity with the dedicated passes
//! they replace is pinned by `tests/tracer_differential.rs`:
//!
//! * [`CacheSink`] — the §3.1 cache-design-study geometry (identical
//!   to `bench::CacheStudy`);
//! * [`TlbSink`] — the full memory-system simulation behind the §5
//!   TLB/time predictions (wraps [`MemSim`]);
//! * [`DilationSink`] — the §4.1 trace-expansion measurements (words
//!   and references per traced instruction);
//! * [`PagemapSink`] — the §4.2 page-mapping study (distinct pages
//!   and frames touched per address space);
//! * [`DefenseSink`] — the §4.3 defensive checks (space/address
//!   sanity, alignment) as a standalone watchdog.

use std::collections::BTreeMap;

use wrl_isa::Width;
use wrl_memsim::{AssocCache, MemSim, PageMap, SimCfg, SpaceKey};
use wrl_trace::Space;

use crate::sink::{AnalysisSink, SinkError, SinkReport};

/// Translates like the cache study and the simulator do: kseg0/kseg1
/// drop the segment bits, everything else goes through the page map
/// under the right space key (kernel refs below kseg2 use the current
/// process's map).
fn study_key(vaddr: u32, space: Space, cur_asid: u8) -> SpaceKey {
    if vaddr >= 0xc000_0000 {
        SpaceKey::Kernel
    } else {
        match space {
            Space::User(a) => SpaceKey::User(a),
            Space::Kernel => SpaceKey::User(cur_asid),
        }
    }
}

/// The §3.1 cache-design-study sink: one I-cache and one D-cache of a
/// chosen geometry (16-byte lines), physically indexed through a page
/// map. Event-for-event identical to `bench::CacheStudy`.
#[derive(Debug)]
pub struct CacheSink {
    /// The instruction cache under study.
    pub icache: AssocCache,
    /// The data cache under study.
    pub dcache: AssocCache,
    size: u32,
    ways: usize,
    pagemap: PageMap,
    cur_asid: u8,
}

impl CacheSink {
    /// A study of one geometry, translating through `pagemap`.
    pub fn new(size: u32, ways: usize, pagemap: PageMap) -> CacheSink {
        CacheSink {
            icache: AssocCache::new(size, 16, ways),
            dcache: AssocCache::new(size, 16, ways),
            size,
            ways,
            pagemap,
            cur_asid: 1,
        }
    }

    fn translate(&mut self, vaddr: u32, space: Space) -> u32 {
        match vaddr {
            0x8000_0000..=0xbfff_ffff => vaddr & 0x1fff_ffff,
            _ => {
                let key = study_key(vaddr, space, self.cur_asid);
                self.pagemap.translate(key, vaddr)
            }
        }
    }
}

impl AnalysisSink for CacheSink {
    fn name(&self) -> String {
        format!("cache:{}:{}", self.size, self.ways)
    }

    fn iref(&mut self, vaddr: u32, space: Space, _idle: bool) -> Result<(), SinkError> {
        let pa = self.translate(vaddr, space);
        self.icache.access(pa);
        Ok(())
    }

    fn dref(&mut self, vaddr: u32, _store: bool, _w: Width, space: Space) -> Result<(), SinkError> {
        let pa = self.translate(vaddr, space);
        self.dcache.access(pa);
        Ok(())
    }

    fn ctx_switch(&mut self, asid: u8) -> Result<(), SinkError> {
        self.cur_asid = asid;
        Ok(())
    }

    fn finish(&mut self) -> SinkReport {
        let mut r = SinkReport::new(self.name());
        r.push("icache_accesses", self.icache.accesses);
        r.push("icache_misses", self.icache.misses);
        r.push("icache_miss_ratio", self.icache.miss_ratio());
        r.push("dcache_accesses", self.dcache.accesses);
        r.push("dcache_misses", self.dcache.misses);
        r.push("dcache_miss_ratio", self.dcache.miss_ratio());
        r
    }
}

/// The full memory-system simulation as a sink: caches, write buffer,
/// and the TLB whose misses drive the Table 3 predictions. Wraps
/// [`MemSim`]; the report carries every [`wrl_memsim::SimStats`]
/// counter so bit-identity with a dedicated simulation pass is a
/// field-for-field report comparison.
pub struct TlbSink {
    /// The wrapped simulator (public so callers can lift the raw
    /// stats or drive the §5.1 predictor from them).
    pub sim: MemSim,
}

impl TlbSink {
    /// A simulation sink over a configuration and page map.
    pub fn new(cfg: SimCfg, pagemap: PageMap) -> TlbSink {
        TlbSink {
            sim: MemSim::new(cfg, pagemap),
        }
    }
}

impl AnalysisSink for TlbSink {
    fn name(&self) -> String {
        "tlb".into()
    }

    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) -> Result<(), SinkError> {
        wrl_trace::TraceSink::iref(&mut self.sim, vaddr, space, idle);
        Ok(())
    }

    fn dref(&mut self, vaddr: u32, store: bool, w: Width, space: Space) -> Result<(), SinkError> {
        wrl_trace::TraceSink::dref(&mut self.sim, vaddr, store, w, space);
        Ok(())
    }

    fn ctx_switch(&mut self, asid: u8) -> Result<(), SinkError> {
        wrl_trace::TraceSink::ctx_switch(&mut self.sim, asid);
        Ok(())
    }

    fn finish(&mut self) -> SinkReport {
        let s = &self.sim.stats;
        let mut r = SinkReport::new(self.name());
        r.push("user_irefs", s.user_irefs);
        r.push("kernel_irefs", s.kernel_irefs);
        r.push("user_drefs", s.user_drefs);
        r.push("kernel_drefs", s.kernel_drefs);
        r.push("imisses", s.imisses);
        r.push("imisses_kernel", s.imisses_kernel);
        r.push("dmisses", s.dmisses);
        r.push("dmisses_kernel", s.dmisses_kernel);
        r.push("uncached", s.uncached);
        r.push("wb_stall_cycles", s.wb_stall_cycles);
        r.push("utlb_misses", s.utlb_misses);
        r.push("synth_irefs", s.synth_irefs);
        r.push("idle_insts", s.idle_insts);
        r.push("stores", s.stores);
        r.push("sanity_violations", s.sanity_violations);
        r.push("kernel_cycles", s.kernel_cycles);
        r.push("user_cycles", s.user_cycles);
        r.push("cycles", self.sim.cycles);
        r
    }
}

/// The §4.1 trace-expansion sink: how many trace words and memory
/// references the traced system emits per original instruction — the
/// denominator side of the paper's "factor of 10–25" dilation claim.
/// Wants word hooks (it counts raw words), so it forces the
/// sequential one-pass drive.
#[derive(Debug, Default)]
pub struct DilationSink {
    words: u64,
    irefs: u64,
    drefs: u64,
    ctx_switches: u64,
    mode_transitions: u64,
}

impl AnalysisSink for DilationSink {
    fn name(&self) -> String {
        "dilation".into()
    }

    fn wants_words(&self) -> bool {
        true
    }

    fn after_word(&mut self, _pos: u64, _word: u32) -> Result<(), SinkError> {
        self.words += 1;
        Ok(())
    }

    fn iref(&mut self, _v: u32, _s: Space, _i: bool) -> Result<(), SinkError> {
        self.irefs += 1;
        Ok(())
    }

    fn dref(&mut self, _v: u32, _st: bool, _w: Width, _s: Space) -> Result<(), SinkError> {
        self.drefs += 1;
        Ok(())
    }

    fn ctx_switch(&mut self, _a: u8) -> Result<(), SinkError> {
        self.ctx_switches += 1;
        Ok(())
    }

    fn mode_transition(&mut self, _g: bool) -> Result<(), SinkError> {
        self.mode_transitions += 1;
        Ok(())
    }

    fn finish(&mut self) -> SinkReport {
        let mut r = SinkReport::new(self.name());
        r.push("words", self.words);
        r.push("insts", self.irefs);
        r.push("drefs", self.drefs);
        r.push("ctx_switches", self.ctx_switches);
        r.push("mode_transitions", self.mode_transitions);
        if self.irefs > 0 {
            r.push("words_per_inst", self.words as f64 / self.irefs as f64);
            r.push(
                "refs_per_inst",
                (self.irefs + self.drefs) as f64 / self.irefs as f64,
            );
        }
        r
    }
}

/// The §4.2 page-mapping sink: distinct virtual pages touched per
/// address space, and the frames a mapping policy hands them. The
/// per-space rows come back as report children, ordered by space key.
pub struct PagemapSink {
    pagemap: PageMap,
    cur_asid: u8,
    /// Per space: (distinct pages via the map, references).
    rows: BTreeMap<u32, (u64, u64)>,
    pages_before: u64,
}

impl PagemapSink {
    /// A page-usage study translating through `pagemap` (its
    /// pre-existing mappings are not counted as touched).
    pub fn new(pagemap: PageMap) -> PagemapSink {
        let pages_before = pagemap.len() as u64;
        PagemapSink {
            pagemap,
            cur_asid: 1,
            rows: BTreeMap::new(),
            pages_before,
        }
    }

    fn touch(&mut self, vaddr: u32, space: Space) {
        // kseg0/kseg1 are unmapped segments: no page map involved.
        if (0x8000_0000..=0xbfff_ffff).contains(&vaddr) {
            return;
        }
        let key = study_key(vaddr, space, self.cur_asid);
        let before = self.pagemap.len() as u64;
        self.pagemap.translate(key, vaddr);
        let row = self.rows.entry(key.index()).or_insert((0, 0));
        row.0 += self.pagemap.len() as u64 - before;
        row.1 += 1;
    }
}

impl AnalysisSink for PagemapSink {
    fn name(&self) -> String {
        "pagemap".into()
    }

    fn iref(&mut self, vaddr: u32, space: Space, _idle: bool) -> Result<(), SinkError> {
        self.touch(vaddr, space);
        Ok(())
    }

    fn dref(&mut self, vaddr: u32, _store: bool, _w: Width, space: Space) -> Result<(), SinkError> {
        self.touch(vaddr, space);
        Ok(())
    }

    fn ctx_switch(&mut self, asid: u8) -> Result<(), SinkError> {
        self.cur_asid = asid;
        Ok(())
    }

    fn finish(&mut self) -> SinkReport {
        let mut r = SinkReport::new(self.name());
        r.push("spaces", self.rows.len() as u64);
        r.push(
            "pages_mapped",
            self.pagemap.len() as u64 - self.pages_before,
        );
        r.push("mapped_refs", self.rows.values().map(|v| v.1).sum::<u64>());
        for (key, (pages, refs)) in &self.rows {
            let label = if *key == 0 {
                "kernel".to_string()
            } else {
                format!("asid:{}", key - 1)
            };
            let mut child = SinkReport::new(label);
            child.push("pages", *pages);
            child.push("refs", *refs);
            r.children.push(child);
        }
        r
    }
}

/// The §4.3 defensive-check sink: the parser's redundancy checks,
/// runnable standalone over any source. Kernel irefs must carry
/// kernel addresses (and vice versa), user refs must never carry
/// kernel addresses, and data references must be aligned to their
/// width.
#[derive(Debug, Default)]
pub struct DefenseSink {
    irefs: u64,
    drefs: u64,
    sanity_violations: u64,
    user_kernel_drefs: u64,
    misaligned: u64,
    mode_transitions: u64,
}

impl AnalysisSink for DefenseSink {
    fn name(&self) -> String {
        "defense".into()
    }

    fn iref(&mut self, vaddr: u32, space: Space, _idle: bool) -> Result<(), SinkError> {
        self.irefs += 1;
        // The same check MemSim applies (§4.3): kernel instruction
        // addresses must be in the kernel instruction address space.
        let is_kaddr = vaddr >= 0x8000_0000;
        if matches!(space, Space::Kernel) != is_kaddr {
            self.sanity_violations += 1;
        }
        Ok(())
    }

    fn dref(&mut self, vaddr: u32, _store: bool, w: Width, space: Space) -> Result<(), SinkError> {
        self.drefs += 1;
        // Kernel legally touches user memory (copyin/copyout), but a
        // user-mode reference to a kernel address is always wrong.
        if matches!(space, Space::User(_)) && vaddr >= 0x8000_0000 {
            self.user_kernel_drefs += 1;
        }
        if !vaddr.is_multiple_of(w.bytes()) {
            self.misaligned += 1;
        }
        Ok(())
    }

    fn mode_transition(&mut self, _g: bool) -> Result<(), SinkError> {
        self.mode_transitions += 1;
        Ok(())
    }

    fn finish(&mut self) -> SinkReport {
        let mut r = SinkReport::new(self.name());
        r.push("irefs", self.irefs);
        r.push("drefs", self.drefs);
        r.push("sanity_violations", self.sanity_violations);
        r.push("user_kernel_drefs", self.user_kernel_drefs);
        r.push("misaligned", self.misaligned);
        r.push("mode_transitions", self.mode_transitions);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_memsim::Policy;

    #[test]
    fn defense_flags_wrong_space_and_misalignment() {
        let mut d = DefenseSink::default();
        d.iref(0x0040_0000, Space::Kernel, false).unwrap();
        d.iref(0x8003_0000, Space::Kernel, false).unwrap();
        d.dref(0x8000_0001, false, Width::Word, Space::User(1))
            .unwrap();
        let r = d.finish();
        assert_eq!(r.get_u64("sanity_violations"), Some(1));
        assert_eq!(r.get_u64("user_kernel_drefs"), Some(1));
        assert_eq!(r.get_u64("misaligned"), Some(1));
    }

    #[test]
    fn pagemap_rows_count_distinct_pages_per_space() {
        let mut p = PagemapSink::new(PageMap::new(Policy::FirstFree { base_pfn: 0x100 }));
        p.iref(0x0040_0000, Space::User(1), false).unwrap();
        p.iref(0x0040_0004, Space::User(1), false).unwrap(); // same page
        p.iref(0x0040_1000, Space::User(1), false).unwrap(); // next page
        p.dref(0xc000_0000, false, Width::Word, Space::Kernel)
            .unwrap();
        p.iref(0x8003_0000, Space::Kernel, false).unwrap(); // kseg0: unmapped
        let r = p.finish();
        assert_eq!(r.get_u64("spaces"), Some(2));
        assert_eq!(r.get_u64("pages_mapped"), Some(3));
        assert_eq!(r.get_u64("mapped_refs"), Some(4));
        assert_eq!(r.children[0].sink, "kernel");
        assert_eq!(r.children[0].get_u64("pages"), Some(1));
        assert_eq!(r.children[1].sink, "asid:1");
        assert_eq!(r.children[1].get_u64("pages"), Some(2));
    }

    #[test]
    fn dilation_counts_words_via_hooks() {
        let mut d = DilationSink::default();
        assert!(d.wants_words());
        for i in 0..10 {
            d.after_word(i, 0).unwrap();
        }
        d.iref(0x8000_0000, Space::Kernel, false).unwrap();
        d.iref(0x8000_0004, Space::Kernel, false).unwrap();
        let r = d.finish();
        assert_eq!(r.get_u64("words"), Some(10));
        assert_eq!(r.get("words_per_inst"), Some(&crate::Value::F64(5.0)));
    }
}
