//! The sink-stack spec language used by `tracedump analyze` and the
//! CI smoke jobs: a comma-separated list of sink items, each
//! `name[:arg[:arg...]]`.
//!
//! ```text
//! cache[:size[:ways]]          cache study   (default 65536:2)
//! tlb                          full memory-system simulation
//! dilation                     trace-expansion counters
//! pagemap                      per-space page usage
//! defense                      §4.3 defensive checks
//! sampled[:on[:off[:seed]]]    sampled windows (default 64k:448k:0)
//! wset[:window]                working-set curves (default 4096)
//! phase[:window[:threshold]]   phase detector (default 4096:0.5)
//! ```
//!
//! Every size/window argument takes the same `k`/`K` (×1024) and
//! `m`/`M` (×1024²) suffixes the sampled sub-spec does, so
//! `cache:64k:2` and `wset:16k` read as written.

use wrl_memsim::{PageMap, SimCfg, UtlbSynth};

use crate::analyses::{CacheSink, DefenseSink, DilationSink, PagemapSink, TlbSink};
use crate::driver::Stack;
use crate::windows::{PhaseSink, SampledCfg, SampledCfgError, SampledWindowSink, WorkingSetSink};

/// Errors from [`build_stack`].
#[derive(Clone, Debug, PartialEq)]
pub enum SinkSpecError {
    /// An item named a sink this spec language does not know.
    UnknownSink(String),
    /// A numeric argument failed to parse.
    BadArg {
        /// The sink item the argument belongs to.
        item: String,
        /// The offending argument.
        arg: String,
    },
    /// Too many `:` arguments for the item.
    TooManyArgs(String),
    /// The sampled-window sub-spec was rejected.
    Sampled(SampledCfgError),
    /// The spec was empty (an empty stack analyzes nothing).
    Empty,
}

impl std::fmt::Display for SinkSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkSpecError::UnknownSink(s) => write!(f, "unknown sink {s:?}"),
            SinkSpecError::BadArg { item, arg } => write!(f, "bad argument {arg:?} in {item:?}"),
            SinkSpecError::TooManyArgs(s) => write!(f, "too many arguments in {s:?}"),
            SinkSpecError::Sampled(e) => write!(f, "sampled: {e}"),
            SinkSpecError::Empty => write!(f, "empty sink spec"),
        }
    }
}

impl std::error::Error for SinkSpecError {}

fn num<T: std::str::FromStr>(item: &str, arg: &str) -> Result<T, SinkSpecError> {
    arg.parse().map_err(|_| SinkSpecError::BadArg {
        item: item.to_string(),
        arg: arg.to_string(),
    })
}

/// A size/window argument with optional `k`/`K` (×1024) or `m`/`M`
/// (×1024²) suffix, matching [`SampledCfg::parse`]'s fields.
fn scaled(item: &str, arg: &str) -> Result<u64, SinkSpecError> {
    let (digits, mult) = match arg.chars().last() {
        Some('k') | Some('K') => (&arg[..arg.len() - 1], 1024u64),
        Some('m') | Some('M') => (&arg[..arg.len() - 1], 1024 * 1024),
        _ => (arg, 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| SinkSpecError::BadArg {
            item: item.to_string(),
            arg: arg.to_string(),
        })
}

/// Builds a [`Stack`] from a spec string. Sinks that translate
/// addresses (cache, tlb, pagemap) each get their own clone of
/// `pagemap`, so composed sinks never share mutable translation
/// state.
pub fn build_stack(spec: &str, pagemap: &PageMap) -> Result<Stack, SinkSpecError> {
    let mut stack = Stack::new();
    for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, rest) = match item.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (item, None),
        };
        let args: Vec<&str> = rest.map(|r| r.split(':').collect()).unwrap_or_default();
        match name {
            "cache" => {
                if args.len() > 2 {
                    return Err(SinkSpecError::TooManyArgs(item.to_string()));
                }
                let size: u32 = args
                    .first()
                    .map(|a| {
                        scaled(item, a).and_then(|n| {
                            u32::try_from(n).map_err(|_| SinkSpecError::BadArg {
                                item: item.to_string(),
                                arg: (*a).to_string(),
                            })
                        })
                    })
                    .transpose()?
                    .unwrap_or(65536);
                let ways: usize = args.get(1).map(|a| num(item, a)).transpose()?.unwrap_or(2);
                stack.push(CacheSink::new(size, ways, pagemap.clone()));
            }
            "tlb" => {
                if !args.is_empty() {
                    return Err(SinkSpecError::TooManyArgs(item.to_string()));
                }
                let cfg = SimCfg {
                    utlb: Some(UtlbSynth::wrl_kernel()),
                    ..SimCfg::default()
                };
                stack.push(TlbSink::new(cfg, pagemap.clone()));
            }
            "dilation" => {
                if !args.is_empty() {
                    return Err(SinkSpecError::TooManyArgs(item.to_string()));
                }
                stack.push(DilationSink::default());
            }
            "pagemap" => {
                if !args.is_empty() {
                    return Err(SinkSpecError::TooManyArgs(item.to_string()));
                }
                stack.push(PagemapSink::new(pagemap.clone()));
            }
            "defense" => {
                if !args.is_empty() {
                    return Err(SinkSpecError::TooManyArgs(item.to_string()));
                }
                stack.push(DefenseSink::default());
            }
            "sampled" => {
                let cfg = match rest {
                    Some(r) => SampledCfg::parse(r).map_err(SinkSpecError::Sampled)?,
                    None => SampledCfg::default(),
                };
                stack.push(SampledWindowSink::new(cfg));
            }
            "wset" => {
                if args.len() > 1 {
                    return Err(SinkSpecError::TooManyArgs(item.to_string()));
                }
                let window: u64 = args
                    .first()
                    .map(|a| scaled(item, a))
                    .transpose()?
                    .unwrap_or(4096);
                stack.push(WorkingSetSink::new(window));
            }
            "phase" => {
                if args.len() > 2 {
                    return Err(SinkSpecError::TooManyArgs(item.to_string()));
                }
                let window: u64 = args
                    .first()
                    .map(|a| scaled(item, a))
                    .transpose()?
                    .unwrap_or(4096);
                let threshold: f64 = args
                    .get(1)
                    .map(|a| num(item, a))
                    .transpose()?
                    .unwrap_or(0.5);
                stack.push(PhaseSink::new(window, threshold));
            }
            other => return Err(SinkSpecError::UnknownSink(other.to_string())),
        }
    }
    if stack.is_empty() {
        return Err(SinkSpecError::Empty);
    }
    Ok(stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_memsim::Policy;

    fn pm() -> PageMap {
        PageMap::new(Policy::FirstFree { base_pfn: 0x100 })
    }

    #[test]
    fn full_grammar_round_trips_into_names() {
        let stack = build_stack(
            "cache:32768:4, tlb, dilation, pagemap, defense, sampled:1k:3k:9, wset:64, phase:64:0.25",
            &pm(),
        )
        .unwrap();
        assert_eq!(
            stack.names(),
            vec![
                "cache:32768:4",
                "tlb",
                "dilation",
                "pagemap",
                "defense",
                "sampled:1024:3072:9",
                "wset:64",
                "phase:64",
            ]
        );
        assert!(stack.wants_words(), "sampled wants word hooks");
    }

    #[test]
    fn size_and_window_arguments_take_k_and_m_suffixes() {
        let stack = build_stack("cache:64k:2, wset:16k, phase:1m", &pm()).unwrap();
        assert_eq!(
            stack.names(),
            vec!["cache:65536:2", "wset:16384", "phase:1048576"]
        );
        // A cache size past u32 and a bare suffix both refuse.
        assert!(matches!(
            build_stack("cache:4096m", &pm()),
            Err(SinkSpecError::BadArg { .. })
        ));
        assert!(matches!(
            build_stack("wset:k", &pm()),
            Err(SinkSpecError::BadArg { .. })
        ));
    }

    #[test]
    fn defaults_and_errors() {
        let stack = build_stack("cache,wset,phase", &pm()).unwrap();
        assert_eq!(
            stack.names(),
            vec!["cache:65536:2", "wset:4096", "phase:4096"]
        );
        assert!(!stack.wants_words());
        assert_eq!(
            build_stack("nope", &pm()).unwrap_err(),
            SinkSpecError::UnknownSink("nope".into())
        );
        assert_eq!(build_stack("", &pm()).unwrap_err(), SinkSpecError::Empty);
        assert_eq!(
            build_stack("tlb:9", &pm()).unwrap_err(),
            SinkSpecError::TooManyArgs("tlb:9".into())
        );
        assert!(matches!(
            build_stack("cache:x", &pm()),
            Err(SinkSpecError::BadArg { .. })
        ));
        assert!(matches!(
            build_stack("sampled:0", &pm()),
            Err(SinkSpecError::Sampled(SampledCfgError::ZeroOn))
        ));
    }
}
