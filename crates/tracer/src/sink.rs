//! The [`AnalysisSink`] trait and its composition rules.
//!
//! An analysis sink is a [`wrl_trace::TraceSink`] that can *also*
//! observe raw trace words (for analyses whose unit is the word
//! position, like sampled tracing windows), can *fail* with a typed
//! error instead of panicking, and ends in a structured
//! [`SinkReport`]. Sinks compose: tuples and vectors of sinks are
//! themselves sinks (the era_vm tracer-stack idiom), so a whole
//! analysis suite rides one decode+parse pass as a single value.

use core::fmt;

use wrl_isa::Width;
use wrl_trace::Space;

/// A typed mid-pass analysis failure. Surfacing one *never* aborts
/// the pass: the driver records the error in the failing sink's
/// report slot, stops feeding that sink, and keeps every sibling
/// sink's stream intact (`tests/tracer_differential.rs` and the
/// `tracer.sink` chaos site hold that contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SinkError {
    /// The failing sink's [`AnalysisSink::name`].
    pub sink: String,
    /// What went wrong.
    pub what: String,
}

impl SinkError {
    /// A new error attributed to `sink`.
    pub fn new(sink: impl Into<String>, what: impl Into<String>) -> SinkError {
        SinkError {
            sink: sink.into(),
            what: what.into(),
        }
    }
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sink {} failed: {}", self.sink, self.what)
    }
}

impl std::error::Error for SinkError {}

/// One scalar in a [`SinkReport`]. `F64` compares by bit pattern, so
/// report equality is the bit-identical equality the differential
/// suite pins.
#[derive(Clone, Debug)]
pub enum Value {
    /// An exact count.
    U64(u64),
    /// A derived ratio or estimate.
    F64(f64),
    /// A label.
    Text(String),
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::U64(a), Value::U64(b)) => a == b,
            (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            // `{:?}` prints the shortest decimal that round-trips the
            // exact bit pattern — a deterministic, pinnable rendering.
            Value::F64(v) => write!(f, "{v:?}"),
            Value::Text(v) => f.write_str(v),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

/// What one finished sink found: an ordered list of named scalars,
/// plus one child report per member for composed sinks. Field order
/// is insertion order and the rendering is deterministic, so a report
/// can be pinned byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SinkReport {
    /// The reporting sink's [`AnalysisSink::name`].
    pub sink: String,
    /// Named result scalars, in insertion order.
    pub fields: Vec<(String, Value)>,
    /// Member reports of a composed (tuple/vec) sink.
    pub children: Vec<SinkReport>,
}

impl SinkReport {
    /// An empty report for `sink`.
    pub fn new(sink: impl Into<String>) -> SinkReport {
        SinkReport {
            sink: sink.into(),
            fields: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Appends one named scalar.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((key.into(), value.into()));
    }

    /// Looks a field up by name (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A field's `U64` value, if present and of that kind.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Value::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Renders `sink <name>` then one `  key = value` line per field,
    /// then the children indented by two more spaces — deterministic,
    /// so golden tests pin it verbatim.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&format!("{pad}sink {}\n", self.sink));
        for (k, v) in &self.fields {
            out.push_str(&format!("{pad}  {k} = {v}\n"));
        }
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// A composable trace analysis: the [`wrl_trace::TraceSink`]
/// callbacks made fallible, optional raw-word hooks, and a final
/// structured report.
///
/// Every callback defaults to a no-op `Ok(())`, so a sink implements
/// only what it observes. A sink that needs *word positions* (duty
/// cycles, offsets into the raw stream) overrides
/// [`AnalysisSink::wants_words`] to `true`; the driver then feeds the
/// parser word-at-a-time and brackets each word with
/// [`AnalysisSink::before_word`]/[`AnalysisSink::after_word`], so
/// events parsed from a word land between its two hooks.
pub trait AnalysisSink {
    /// A stable display name (`cache:65536:2`, `wset:4096`, ...).
    fn name(&self) -> String;

    /// `true` if this sink needs per-word hooks. A composed sink
    /// wants words if any member does. Must be constant over the
    /// sink's lifetime (the driver samples it once per pass).
    fn wants_words(&self) -> bool {
        false
    }

    /// Called before raw word `word` at stream position `pos` is
    /// parsed (only when [`AnalysisSink::wants_words`] holds).
    fn before_word(&mut self, _pos: u64, _word: u32) -> Result<(), SinkError> {
        Ok(())
    }

    /// Called after raw word `word` at stream position `pos` was
    /// parsed (only when [`AnalysisSink::wants_words`] holds).
    fn after_word(&mut self, _pos: u64, _word: u32) -> Result<(), SinkError> {
        Ok(())
    }

    /// An instruction fetch at `vaddr` (uninstrumented address).
    fn iref(&mut self, _vaddr: u32, _space: Space, _idle: bool) -> Result<(), SinkError> {
        Ok(())
    }

    /// A data reference at `vaddr`.
    fn dref(
        &mut self,
        _vaddr: u32,
        _store: bool,
        _width: Width,
        _space: Space,
    ) -> Result<(), SinkError> {
        Ok(())
    }

    /// The base context switched to the given ASID.
    fn ctx_switch(&mut self, _asid: u8) -> Result<(), SinkError> {
        Ok(())
    }

    /// Trace generation was suspended (`false`) or resumed (`true`).
    fn mode_transition(&mut self, _generating: bool) -> Result<(), SinkError> {
        Ok(())
    }

    /// Finalises the analysis and reports what it found.
    fn finish(&mut self) -> SinkReport;
}

impl<S: AnalysisSink + ?Sized> AnalysisSink for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn wants_words(&self) -> bool {
        (**self).wants_words()
    }
    fn before_word(&mut self, pos: u64, word: u32) -> Result<(), SinkError> {
        (**self).before_word(pos, word)
    }
    fn after_word(&mut self, pos: u64, word: u32) -> Result<(), SinkError> {
        (**self).after_word(pos, word)
    }
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) -> Result<(), SinkError> {
        (**self).iref(vaddr, space, idle)
    }
    fn dref(
        &mut self,
        vaddr: u32,
        store: bool,
        width: Width,
        space: Space,
    ) -> Result<(), SinkError> {
        (**self).dref(vaddr, store, width, space)
    }
    fn ctx_switch(&mut self, asid: u8) -> Result<(), SinkError> {
        (**self).ctx_switch(asid)
    }
    fn mode_transition(&mut self, generating: bool) -> Result<(), SinkError> {
        (**self).mode_transition(generating)
    }
    fn finish(&mut self) -> SinkReport {
        (**self).finish()
    }
}

/// A vector of sinks is a sink: every callback fans out to each
/// member in order; the first member error aborts the whole vector
/// slot (for per-member error isolation, push members into a
/// [`crate::Stack`] instead). Its report is a parent with one child
/// per member.
impl<S: AnalysisSink> AnalysisSink for Vec<S> {
    fn name(&self) -> String {
        let names: Vec<String> = self.iter().map(|s| s.name()).collect();
        format!("[{}]", names.join("+"))
    }
    fn wants_words(&self) -> bool {
        self.iter().any(|s| s.wants_words())
    }
    fn before_word(&mut self, pos: u64, word: u32) -> Result<(), SinkError> {
        self.iter_mut().try_for_each(|s| s.before_word(pos, word))
    }
    fn after_word(&mut self, pos: u64, word: u32) -> Result<(), SinkError> {
        self.iter_mut().try_for_each(|s| s.after_word(pos, word))
    }
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) -> Result<(), SinkError> {
        self.iter_mut().try_for_each(|s| s.iref(vaddr, space, idle))
    }
    fn dref(
        &mut self,
        vaddr: u32,
        store: bool,
        width: Width,
        space: Space,
    ) -> Result<(), SinkError> {
        self.iter_mut()
            .try_for_each(|s| s.dref(vaddr, store, width, space))
    }
    fn ctx_switch(&mut self, asid: u8) -> Result<(), SinkError> {
        self.iter_mut().try_for_each(|s| s.ctx_switch(asid))
    }
    fn mode_transition(&mut self, generating: bool) -> Result<(), SinkError> {
        self.iter_mut()
            .try_for_each(|s| s.mode_transition(generating))
    }
    fn finish(&mut self) -> SinkReport {
        let mut r = SinkReport::new(self.name());
        r.children = self.iter_mut().map(|s| s.finish()).collect();
        r
    }
}

/// Tuples of sinks are sinks (2- and 3-tuples; nest for more).
macro_rules! tuple_sink {
    ($($idx:tt $t:ident),+) => {
        impl<$($t: AnalysisSink),+> AnalysisSink for ($($t,)+) {
            fn name(&self) -> String {
                let names = [$(self.$idx.name()),+];
                format!("({})", names.join("+"))
            }
            fn wants_words(&self) -> bool {
                false $(|| self.$idx.wants_words())+
            }
            fn before_word(&mut self, pos: u64, word: u32) -> Result<(), SinkError> {
                $(self.$idx.before_word(pos, word)?;)+
                Ok(())
            }
            fn after_word(&mut self, pos: u64, word: u32) -> Result<(), SinkError> {
                $(self.$idx.after_word(pos, word)?;)+
                Ok(())
            }
            fn iref(&mut self, vaddr: u32, space: Space, idle: bool) -> Result<(), SinkError> {
                $(self.$idx.iref(vaddr, space, idle)?;)+
                Ok(())
            }
            fn dref(
                &mut self,
                vaddr: u32,
                store: bool,
                width: Width,
                space: Space,
            ) -> Result<(), SinkError> {
                $(self.$idx.dref(vaddr, store, width, space)?;)+
                Ok(())
            }
            fn ctx_switch(&mut self, asid: u8) -> Result<(), SinkError> {
                $(self.$idx.ctx_switch(asid)?;)+
                Ok(())
            }
            fn mode_transition(&mut self, generating: bool) -> Result<(), SinkError> {
                $(self.$idx.mode_transition(generating)?;)+
                Ok(())
            }
            fn finish(&mut self) -> SinkReport {
                let mut r = SinkReport::new(self.name());
                r.children = vec![$(self.$idx.finish()),+];
                r
            }
        }
    };
}

tuple_sink!(0 A, 1 B);
tuple_sink!(0 A, 1 B, 2 C);

#[cfg(test)]
mod tests {
    use super::*;

    struct Count {
        irefs: u64,
        words: bool,
    }

    impl AnalysisSink for Count {
        fn name(&self) -> String {
            "count".into()
        }
        fn wants_words(&self) -> bool {
            self.words
        }
        fn iref(&mut self, _v: u32, _s: Space, _i: bool) -> Result<(), SinkError> {
            self.irefs += 1;
            Ok(())
        }
        fn finish(&mut self) -> SinkReport {
            let mut r = SinkReport::new(self.name());
            r.push("irefs", self.irefs);
            r
        }
    }

    #[test]
    fn tuples_and_vecs_compose_and_report_children() {
        let mut t = (
            Count {
                irefs: 0,
                words: false,
            },
            vec![Count {
                irefs: 0,
                words: true,
            }],
        );
        assert!(t.wants_words());
        t.iref(0x1000, Space::Kernel, false).unwrap();
        let r = t.finish();
        assert_eq!(r.sink, "(count+[count])");
        assert_eq!(r.children.len(), 2);
        assert_eq!(r.children[0].get_u64("irefs"), Some(1));
        assert_eq!(r.children[1].children[0].get_u64("irefs"), Some(1));
    }

    #[test]
    fn f64_values_compare_by_bits_and_render_round_trip() {
        let a = Value::F64(0.1 + 0.2);
        let b = Value::F64(0.3);
        assert_ne!(a, b);
        assert_eq!(a.to_string().parse::<f64>().unwrap(), 0.1 + 0.2);
        let mut r = SinkReport::new("x");
        r.push("ratio", 0.25);
        r.push("n", 3u64);
        assert_eq!(r.render(), "sink x\n  ratio = 0.25\n  n = 3\n");
    }
}
