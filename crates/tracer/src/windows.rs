//! The three sinks the one-pass framework makes cheap: sampled
//! tracing windows, per-ASID working-set curves, and a phase
//! detector.
//!
//! All three are deterministic: the sampled windows derive their
//! phase offset from a seed (no clocks), and the window analyses use
//! tumbling reference-count windows, so the same trace always yields
//! the same report — the golden-trace tests pin exact values.

use std::collections::{BTreeMap, BTreeSet};

use wrl_isa::Width;
use wrl_trace::Space;

use crate::sink::{AnalysisSink, SinkError, SinkReport};

/// splitmix64: one deterministic scramble of the seed, used to place
/// the duty-cycle's phase offset so that seed choice shifts *where*
/// the windows fall without changing their shape.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Errors from [`SampledCfg::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampledCfgError {
    /// A numeric field failed to parse or overflowed.
    BadNumber(String),
    /// The on-window was zero (nothing would ever be sampled).
    ZeroOn,
    /// `on + off` overflowed u64.
    PeriodOverflow,
    /// Wrong number of `:`-separated fields.
    BadShape(String),
}

impl std::fmt::Display for SampledCfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampledCfgError::BadNumber(s) => write!(f, "bad number {s:?}"),
            SampledCfgError::ZeroOn => write!(f, "on-window must be nonzero"),
            SampledCfgError::PeriodOverflow => write!(f, "on + off overflows"),
            SampledCfgError::BadShape(s) => write!(f, "want on[:off[:seed]], got {s:?}"),
        }
    }
}

impl std::error::Error for SampledCfgError {}

/// Deterministic on/off duty-cycle configuration for
/// [`SampledWindowSink`], in trace words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampledCfg {
    /// Words traced per window.
    pub on: u64,
    /// Words skipped between windows.
    pub off: u64,
    /// Seed for the phase offset (where the first window starts).
    pub seed: u64,
}

impl Default for SampledCfg {
    fn default() -> Self {
        SampledCfg {
            on: 1 << 16,
            off: 7 << 16,
            seed: 0,
        }
    }
}

/// Parses one numeric field with optional `k`/`K` (×1024) or `m`/`M`
/// (×1024²) suffix, rejecting overflow.
fn parse_scaled(s: &str) -> Result<u64, SampledCfgError> {
    let bad = || SampledCfgError::BadNumber(s.to_string());
    let (digits, scale) = match s.chars().last() {
        Some('k') | Some('K') => (&s[..s.len() - 1], 1024u64),
        Some('m') | Some('M') => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    n.checked_mul(scale).ok_or_else(bad)
}

impl SampledCfg {
    /// Parses `on[:off[:seed]]` with `k`/`m` suffixes, e.g.
    /// `64k:448k:7`. Omitted `off` defaults to `7*on` (a 1-in-8 duty
    /// cycle), omitted `seed` to 0.
    pub fn parse(spec: &str) -> Result<SampledCfg, SampledCfgError> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.is_empty() || parts.len() > 3 || parts.iter().any(|p| p.is_empty()) {
            return Err(SampledCfgError::BadShape(spec.to_string()));
        }
        let on = parse_scaled(parts[0])?;
        if on == 0 {
            return Err(SampledCfgError::ZeroOn);
        }
        let off = match parts.get(1) {
            Some(p) => parse_scaled(p)?,
            None => on.checked_mul(7).ok_or(SampledCfgError::PeriodOverflow)?,
        };
        let seed = match parts.get(2) {
            Some(p) => parse_scaled(p)?,
            None => 0,
        };
        if on.checked_add(off).is_none() {
            return Err(SampledCfgError::PeriodOverflow);
        }
        Ok(SampledCfg { on, off, seed })
    }

    /// The full duty-cycle period in words.
    pub fn period(&self) -> u64 {
        self.on + self.off
    }

    /// The seeded phase offset in `[0, period)`.
    pub fn phase(&self) -> u64 {
        if self.off == 0 {
            return 0;
        }
        splitmix64(self.seed) % self.period()
    }
}

/// Sampled tracing windows (Metz & Lencevicius-style duty-cycle
/// profiling): the sink observes only the events inside deterministic
/// on-windows of the word stream and scales its counts up by the duty
/// cycle. Wants word hooks — the duty cycle is defined over raw trace
/// words, the paper's unit of trace volume.
#[derive(Debug)]
pub struct SampledWindowSink {
    cfg: SampledCfg,
    phase: u64,
    active: bool,
    words: u64,
    sampled_words: u64,
    windows: u64,
    sampled_irefs: u64,
    sampled_drefs: u64,
}

impl SampledWindowSink {
    /// A sampler over `cfg`'s duty cycle.
    pub fn new(cfg: SampledCfg) -> SampledWindowSink {
        SampledWindowSink {
            phase: cfg.phase(),
            cfg,
            active: false,
            words: 0,
            sampled_words: 0,
            windows: 0,
            sampled_irefs: 0,
            sampled_drefs: 0,
        }
    }
}

impl AnalysisSink for SampledWindowSink {
    fn name(&self) -> String {
        format!("sampled:{}:{}:{}", self.cfg.on, self.cfg.off, self.cfg.seed)
    }

    fn wants_words(&self) -> bool {
        true
    }

    fn before_word(&mut self, pos: u64, _word: u32) -> Result<(), SinkError> {
        let now = (pos + self.phase) % self.cfg.period() < self.cfg.on;
        if now && !self.active {
            self.windows += 1;
        }
        self.active = now;
        Ok(())
    }

    fn after_word(&mut self, _pos: u64, _word: u32) -> Result<(), SinkError> {
        self.words += 1;
        if self.active {
            self.sampled_words += 1;
        }
        Ok(())
    }

    fn iref(&mut self, _v: u32, _s: Space, _i: bool) -> Result<(), SinkError> {
        if self.active {
            self.sampled_irefs += 1;
        }
        Ok(())
    }

    fn dref(&mut self, _v: u32, _st: bool, _w: Width, _s: Space) -> Result<(), SinkError> {
        if self.active {
            self.sampled_drefs += 1;
        }
        Ok(())
    }

    fn finish(&mut self) -> SinkReport {
        let mut r = SinkReport::new(self.name());
        r.push("windows", self.windows);
        r.push("words", self.words);
        r.push("sampled_words", self.sampled_words);
        r.push("sampled_irefs", self.sampled_irefs);
        r.push("sampled_drefs", self.sampled_drefs);
        let coverage = if self.words == 0 {
            0.0
        } else {
            self.sampled_words as f64 / self.words as f64
        };
        r.push("coverage", coverage);
        // Duty-cycle scale-up: the §3.1 trick of estimating full-run
        // counts from sampled windows.
        let scale = self.cfg.period() as f64 / self.cfg.on as f64;
        r.push("est_irefs", self.sampled_irefs as f64 * scale);
        r.push("est_drefs", self.sampled_drefs as f64 * scale);
        r
    }
}

/// Per-ASID working-set curves: distinct 4 KB pages touched per
/// tumbling window of references, one row per address space (key 256
/// is the kernel). The per-row curves come back as report children.
#[derive(Debug)]
pub struct WorkingSetSink {
    /// References per tumbling window.
    window: u64,
    rows: BTreeMap<u16, WsRow>,
}

#[derive(Debug, Default)]
struct WsRow {
    refs: u64,
    pages: BTreeSet<u32>,
    cur: BTreeSet<u32>,
    cur_refs: u64,
    windows: u64,
    peak: u64,
    sum: u64,
}

impl WsRow {
    fn touch(&mut self, page: u32, window: u64) {
        self.refs += 1;
        self.pages.insert(page);
        self.cur.insert(page);
        self.cur_refs += 1;
        if self.cur_refs == window {
            self.roll();
        }
    }

    fn roll(&mut self) {
        let n = self.cur.len() as u64;
        self.windows += 1;
        self.peak = self.peak.max(n);
        self.sum += n;
        self.cur.clear();
        self.cur_refs = 0;
    }
}

impl WorkingSetSink {
    /// A working-set study with `window` references per window.
    pub fn new(window: u64) -> WorkingSetSink {
        WorkingSetSink {
            window: window.max(1),
            rows: BTreeMap::new(),
        }
    }

    fn touch(&mut self, vaddr: u32, space: Space) {
        let key = match space {
            Space::User(a) => a as u16,
            Space::Kernel => 256,
        };
        let window = self.window;
        self.rows.entry(key).or_default().touch(vaddr >> 12, window);
    }
}

impl AnalysisSink for WorkingSetSink {
    fn name(&self) -> String {
        format!("wset:{}", self.window)
    }

    fn iref(&mut self, vaddr: u32, space: Space, _idle: bool) -> Result<(), SinkError> {
        self.touch(vaddr, space);
        Ok(())
    }

    fn dref(&mut self, vaddr: u32, _store: bool, _w: Width, space: Space) -> Result<(), SinkError> {
        self.touch(vaddr, space);
        Ok(())
    }

    fn finish(&mut self) -> SinkReport {
        let mut r = SinkReport::new(self.name());
        // A trailing partial window still describes a working set.
        for row in self.rows.values_mut() {
            if row.cur_refs > 0 {
                row.roll();
            }
        }
        r.push("spaces", self.rows.len() as u64);
        r.push("refs", self.rows.values().map(|v| v.refs).sum::<u64>());
        r.push(
            "pages",
            self.rows
                .values()
                .map(|v| v.pages.len() as u64)
                .sum::<u64>(),
        );
        for (key, row) in &self.rows {
            let label = if *key == 256 {
                "kernel".to_string()
            } else {
                format!("asid:{key}")
            };
            let mut child = SinkReport::new(label);
            child.push("windows", row.windows);
            child.push("pages", row.pages.len() as u64);
            child.push("peak", row.peak);
            let mean = if row.windows == 0 {
                0.0
            } else {
                row.sum as f64 / row.windows as f64
            };
            child.push("mean", mean);
            child.push("refs", row.refs);
            r.children.push(child);
        }
        r
    }
}

/// Phase detector: Jaccard distance between the page sets of
/// consecutive tumbling reference windows; a distance above the
/// threshold is a change-point (the program moved to a new phase).
/// The trailing partial window is ignored — its distance would be an
/// artifact of truncation, not a phase change.
#[derive(Debug)]
pub struct PhaseSink {
    window: u64,
    threshold: f64,
    cur: BTreeSet<u32>,
    cur_refs: u64,
    prev: Option<BTreeSet<u32>>,
    windows: u64,
    change_points: Vec<u64>,
    dist_sum: f64,
    dist_max: f64,
    distances: u64,
}

impl PhaseSink {
    /// A detector with `window` references per window and a Jaccard
    /// change-point `threshold` in `(0, 1]`.
    pub fn new(window: u64, threshold: f64) -> PhaseSink {
        PhaseSink {
            window: window.max(1),
            threshold,
            cur: BTreeSet::new(),
            cur_refs: 0,
            prev: None,
            windows: 0,
            change_points: Vec::new(),
            dist_sum: 0.0,
            dist_max: 0.0,
            distances: 0,
        }
    }

    fn touch(&mut self, vaddr: u32) {
        self.cur.insert(vaddr >> 12);
        self.cur_refs += 1;
        if self.cur_refs == self.window {
            self.roll();
        }
    }

    fn roll(&mut self) {
        let cur = std::mem::take(&mut self.cur);
        self.cur_refs = 0;
        self.windows += 1;
        if let Some(prev) = &self.prev {
            let inter = prev.intersection(&cur).count() as f64;
            let union = prev.union(&cur).count() as f64;
            let d = if union == 0.0 {
                0.0
            } else {
                1.0 - inter / union
            };
            self.dist_sum += d;
            self.dist_max = self.dist_max.max(d);
            self.distances += 1;
            if d > self.threshold {
                self.change_points.push(self.windows - 1);
            }
        }
        self.prev = Some(cur);
    }
}

impl AnalysisSink for PhaseSink {
    fn name(&self) -> String {
        format!("phase:{}", self.window)
    }

    fn iref(&mut self, vaddr: u32, _space: Space, _idle: bool) -> Result<(), SinkError> {
        self.touch(vaddr);
        Ok(())
    }

    fn dref(&mut self, vaddr: u32, _store: bool, _w: Width, _s: Space) -> Result<(), SinkError> {
        self.touch(vaddr);
        Ok(())
    }

    fn finish(&mut self) -> SinkReport {
        let mut r = SinkReport::new(self.name());
        r.push("windows", self.windows);
        r.push("change_points", self.change_points.len() as u64);
        let mean = if self.distances == 0 {
            0.0
        } else {
            self.dist_sum / self.distances as f64
        };
        r.push("mean_distance", mean);
        r.push("max_distance", self.dist_max);
        for (i, cp) in self.change_points.iter().take(8).enumerate() {
            r.push(format!("cp{i}"), *cp);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_cfg_parses_suffixes_and_defaults() {
        assert_eq!(
            SampledCfg::parse("64k").unwrap(),
            SampledCfg {
                on: 65536,
                off: 7 * 65536,
                seed: 0
            }
        );
        assert_eq!(
            SampledCfg::parse("1k:3k:9").unwrap(),
            SampledCfg {
                on: 1024,
                off: 3072,
                seed: 9
            }
        );
        assert_eq!(SampledCfg::parse("0:5"), Err(SampledCfgError::ZeroOn));
        assert!(matches!(
            SampledCfg::parse("a:b"),
            Err(SampledCfgError::BadNumber(_))
        ));
        assert!(matches!(
            SampledCfg::parse("1:2:3:4"),
            Err(SampledCfgError::BadShape(_))
        ));
        assert!(matches!(
            SampledCfg::parse(&format!("{}", u64::MAX)),
            Err(SampledCfgError::PeriodOverflow)
        ));
    }

    #[test]
    fn sampler_duty_cycle_is_exact_and_seeded() {
        let cfg = SampledCfg {
            on: 4,
            off: 4,
            seed: 0,
        };
        let mut s = SampledWindowSink::new(cfg);
        for pos in 0..64u64 {
            s.before_word(pos, 0).unwrap();
            s.iref(0x8000_0000, Space::Kernel, false).unwrap();
            s.after_word(pos, 0).unwrap();
        }
        let r = s.finish();
        // Exactly half the words are inside on-windows.
        assert_eq!(r.get_u64("sampled_words"), Some(32));
        assert_eq!(r.get_u64("sampled_irefs"), Some(32));
        // est scales back to the full run.
        assert_eq!(r.get("est_irefs"), Some(&crate::Value::F64(64.0)));
        // A different seed shifts the phase, not the coverage.
        let mut s2 = SampledWindowSink::new(SampledCfg { seed: 1, ..cfg });
        for pos in 0..64u64 {
            s2.before_word(pos, 0).unwrap();
            s2.after_word(pos, 0).unwrap();
        }
        assert_eq!(s2.finish().get_u64("sampled_words"), Some(32));
    }

    #[test]
    fn working_set_counts_distinct_pages_per_window() {
        let mut w = WorkingSetSink::new(4);
        // Window 1: pages 0,1 (4 refs). Window 2: page 2 only.
        for va in [0x0000u32, 0x0004, 0x1000, 0x1004] {
            w.iref(va, Space::User(1), false).unwrap();
        }
        for va in [0x2000u32, 0x2004, 0x2008, 0x200c] {
            w.iref(va, Space::User(1), false).unwrap();
        }
        w.dref(0x8000_0000, false, Width::Word, Space::Kernel)
            .unwrap();
        let r = w.finish();
        assert_eq!(r.get_u64("spaces"), Some(2));
        let u1 = &r.children[0];
        assert_eq!(u1.sink, "asid:1");
        assert_eq!(u1.get_u64("windows"), Some(2));
        assert_eq!(u1.get_u64("peak"), Some(2));
        assert_eq!(u1.get("mean"), Some(&crate::Value::F64(1.5)));
        assert_eq!(r.children[1].sink, "kernel");
        assert_eq!(r.children[1].get_u64("windows"), Some(1));
    }

    #[test]
    fn phase_detector_flags_a_working_set_change() {
        let mut p = PhaseSink::new(4, 0.5);
        // Two identical windows on pages {0,1}, then a jump to {8,9}.
        for _ in 0..2 {
            for va in [0x0000u32, 0x0100, 0x1000, 0x1100] {
                p.iref(va, Space::User(1), false).unwrap();
            }
        }
        for va in [0x8000u32, 0x8100, 0x9000, 0x9100] {
            p.iref(va, Space::User(1), false).unwrap();
        }
        let r = p.finish();
        assert_eq!(r.get_u64("windows"), Some(3));
        assert_eq!(r.get_u64("change_points"), Some(1));
        assert_eq!(r.get_u64("cp0"), Some(2));
        assert_eq!(r.get("max_distance"), Some(&crate::Value::F64(1.0)));
    }
}
