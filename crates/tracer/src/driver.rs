//! The one-pass driver: feed N composed sinks from a single
//! decode+parse pass.
//!
//! A [`Stack`] owns the sinks as isolated *slots*: every parsed event
//! is routed to each live slot, a slot whose sink surfaces a
//! [`SinkError`] is disabled on the spot (its error becomes its
//! report), and the pass continues for the siblings — a failing
//! analysis can never corrupt or abort the others. The `tracer.sink`
//! chaos site holds that contract under seeded injected failures.
//!
//! Three sources feed a stack through the same routing:
//!
//! * **a word stream** — [`Driver`]/[`analyze_words`]: one
//!   incremental parse, word hooks available;
//! * **a store** — [`analyze_store`]: sequential one-pass over the
//!   block reader, or the replay farm when workers are asked for and
//!   no sink wants word hooks;
//! * **a live machine run** — the harness's `run_analyzed` drives a
//!   [`Driver`] from the machine's drain callback.

use wrl_isa::Width;
use wrl_store::{replay, FarmCfg, StoreError, TraceStore};
use wrl_trace::{ParseStats, Space, TraceParser, TraceSink};

use crate::obs::TracerObs;
use crate::sink::{AnalysisSink, SinkError, SinkReport};

/// One isolated sink slot: the sink, and the error that disabled it
/// (if any).
struct Slot {
    sink: Box<dyn AnalysisSink + Send>,
    wants_words: bool,
    err: Option<SinkError>,
}

impl Slot {
    /// Routes one callback, disabling the slot on its first error.
    fn route(&mut self, f: impl FnOnce(&mut dyn AnalysisSink) -> Result<(), SinkError>) {
        if self.err.is_none() {
            if let Err(e) = f(&mut *self.sink) {
                self.err = Some(e);
            }
        }
    }
}

/// An ordered set of isolated analysis sinks, fed together from one
/// parse. Implements [`TraceSink`], so a stack rides anything that
/// feeds one — `parse_all`, the streaming pipeline, the replay farm.
#[derive(Default)]
pub struct Stack {
    slots: Vec<Slot>,
    /// Event×sink applications routed so far.
    applied: u64,
    obs: Option<TracerObs>,
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field("sinks", &self.names())
            .field("applied", &self.applied)
            .finish()
    }
}

impl Stack {
    /// An empty stack.
    pub fn new() -> Stack {
        Stack::default()
    }

    /// Appends a sink as its own isolated slot and returns the stack
    /// (builder style).
    pub fn with(mut self, sink: impl AnalysisSink + Send + 'static) -> Stack {
        self.push(sink);
        self
    }

    /// Appends a sink as its own isolated slot.
    pub fn push(&mut self, sink: impl AnalysisSink + Send + 'static) {
        self.push_boxed(Box::new(sink));
    }

    /// Appends an already-boxed sink as its own isolated slot.
    pub fn push_boxed(&mut self, sink: Box<dyn AnalysisSink + Send>) {
        let wants_words = sink.wants_words();
        self.slots.push(Slot {
            sink,
            wants_words,
            err: None,
        });
    }

    /// Attaches the `tracer.*` metrics, recorded when a pass
    /// finishes.
    pub fn attach_obs(&mut self, obs: TracerObs) {
        self.obs = Some(obs);
    }

    /// Number of sinks.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the stack holds no sinks.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `true` if any sink needs per-word hooks (forces the
    /// word-at-a-time sequential drive).
    pub fn wants_words(&self) -> bool {
        self.slots.iter().any(|s| s.wants_words)
    }

    /// The sinks' display names, in slot order.
    pub fn names(&self) -> Vec<String> {
        self.slots.iter().map(|s| s.sink.name()).collect()
    }

    /// Routes a before-word hook to every live word-hooked slot.
    fn before_word(&mut self, pos: u64, word: u32) {
        for s in self.slots.iter_mut().filter(|s| s.wants_words) {
            s.route(|k| k.before_word(pos, word));
        }
    }

    /// Routes an after-word hook to every live word-hooked slot.
    fn after_word(&mut self, pos: u64, word: u32) {
        for s in self.slots.iter_mut().filter(|s| s.wants_words) {
            s.route(|k| k.after_word(pos, word));
        }
    }

    fn live(&self) -> u64 {
        self.slots.iter().filter(|s| s.err.is_none()).count() as u64
    }

    /// Finalises every slot into the pass report. Slots that failed
    /// mid-pass report their typed error instead of a result.
    pub fn finish(mut self, parse: ParseStats, words: u64) -> StackReport {
        let reports: Vec<Result<SinkReport, SinkError>> = self
            .slots
            .iter_mut()
            .map(|s| match s.err.take() {
                Some(e) => Err(e),
                None => Ok(s.sink.finish()),
            })
            .collect();
        let report = StackReport {
            reports,
            parse,
            words,
            applied: self.applied,
        };
        if let Some(obs) = &self.obs {
            obs.record(&report, self.slots.len());
        }
        report
    }
}

impl TraceSink for Stack {
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) {
        self.applied += self.live();
        for s in &mut self.slots {
            s.route(|k| k.iref(vaddr, space, idle));
        }
    }

    fn dref(&mut self, vaddr: u32, store: bool, width: Width, space: Space) {
        self.applied += self.live();
        for s in &mut self.slots {
            s.route(|k| k.dref(vaddr, store, width, space));
        }
    }

    fn ctx_switch(&mut self, asid: u8) {
        self.applied += self.live();
        for s in &mut self.slots {
            s.route(|k| k.ctx_switch(asid));
        }
    }

    fn mode_transition(&mut self, generating: bool) {
        self.applied += self.live();
        for s in &mut self.slots {
            s.route(|k| k.mode_transition(generating));
        }
    }
}

/// What one pass over one source produced: per-slot reports (or the
/// typed error that disabled the slot), the parse statistics of the
/// single shared parse, and the pass shape.
#[derive(Debug)]
pub struct StackReport {
    /// One entry per sink, in stack order.
    pub reports: Vec<Result<SinkReport, SinkError>>,
    /// Statistics of the shared parse.
    pub parse: ParseStats,
    /// Raw trace words in the pass.
    pub words: u64,
    /// Event×sink applications routed (events × live sinks).
    pub applied: u64,
}

impl StackReport {
    /// Slots that surfaced a typed error.
    pub fn failed(&self) -> usize {
        self.reports.iter().filter(|r| r.is_err()).count()
    }

    /// The successful report of slot `i`, if any.
    pub fn ok(&self, i: usize) -> Option<&SinkReport> {
        self.reports.get(i).and_then(|r| r.as_ref().ok())
    }

    /// Renders every slot deterministically: each sink's
    /// [`SinkReport::render`] block, or one `sink <name> FAILED: ...`
    /// line for a slot disabled by a typed error.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            match r {
                Ok(rep) => out.push_str(&rep.render()),
                Err(e) => out.push_str(&format!("sink {} FAILED: {}\n", e.sink, e.what)),
            }
        }
        out
    }
}

/// Incremental word-stream driver: feed drained buffers as they
/// arrive, then [`Driver::finish`]. Used by the harness's
/// `run_analyzed` (the live-machine source) and by the sequential
/// paths of [`analyze_words`]/[`analyze_store`].
pub struct Driver {
    parser: TraceParser,
    stack: Stack,
    wants_words: bool,
    pos: u64,
}

impl Driver {
    /// A driver parsing with `parser` into `stack`. Whether any sink
    /// wants word hooks is sampled here, once per pass.
    pub fn new(parser: TraceParser, stack: Stack) -> Driver {
        let wants_words = stack.wants_words();
        Driver {
            parser,
            stack,
            wants_words,
            pos: 0,
        }
    }

    /// Parses one buffer of raw trace words into every sink. With no
    /// word-hooked sink the whole slice is pushed at once; otherwise
    /// each word is bracketed by its before/after hooks.
    pub fn feed(&mut self, words: &[u32]) {
        if self.stack.is_empty() {
            self.pos += words.len() as u64;
            return;
        }
        if !self.wants_words {
            self.parser.push_words(words, &mut self.stack);
            self.pos += words.len() as u64;
            return;
        }
        for &w in words {
            self.stack.before_word(self.pos, w);
            self.parser.push_word(w, &mut self.stack);
            self.stack.after_word(self.pos, w);
            self.pos += 1;
        }
    }

    /// Finalises the parse (flushing partial blocks) and every sink.
    pub fn finish(mut self) -> StackReport {
        if !self.stack.is_empty() {
            self.parser.finish(&mut self.stack);
        }
        self.stack.finish(self.parser.stats.clone(), self.pos)
    }
}

/// One-pass analysis of an in-memory word stream: a single
/// incremental parse with `parser` feeds every sink in `stack`.
pub fn analyze_words(parser: TraceParser, words: &[u32], stack: Stack) -> StackReport {
    let mut d = Driver::new(parser, stack);
    d.feed(words);
    d.finish()
}

/// A farm sink wrapping one slot: routes events to the sink until its
/// first error, then swallows the rest (never dropping items — the
/// farm's desync accounting must stay intact).
struct SlotSink {
    sink: Box<dyn AnalysisSink + Send>,
    applied: u64,
    err: Option<SinkError>,
}

impl SlotSink {
    fn route(&mut self, f: impl FnOnce(&mut dyn AnalysisSink) -> Result<(), SinkError>) {
        if self.err.is_none() {
            self.applied += 1;
            if let Err(e) = f(&mut *self.sink) {
                self.err = Some(e);
            }
        }
    }
}

impl TraceSink for SlotSink {
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) {
        self.route(|k| k.iref(vaddr, space, idle));
    }
    fn dref(&mut self, vaddr: u32, store: bool, width: Width, space: Space) {
        self.route(|k| k.dref(vaddr, store, width, space));
    }
    fn ctx_switch(&mut self, asid: u8) {
        self.route(|k| k.ctx_switch(asid));
    }
    fn mode_transition(&mut self, generating: bool) {
        self.route(|k| k.mode_transition(generating));
    }
}

/// One-pass analysis of a [`TraceStore`].
///
/// With one worker — or whenever a sink wants word hooks, which only
/// the sequential drive can provide — the store's block reader feeds
/// one incremental parse (a single decode+parse for all N sinks).
/// With more workers and event-only sinks, the replay farm spreads
/// the sinks over threads; both schedules are bit-identical to the
/// sequential pass by the farm's ordering guarantee.
pub fn analyze_store(
    store: &TraceStore,
    stack: Stack,
    cfg: FarmCfg,
) -> Result<StackReport, StoreError> {
    if cfg.workers <= 1 || stack.wants_words() || stack.len() <= 1 {
        let mut d = Driver::new(store.parser(), stack);
        let mut reader = store.block_reader();
        while let Some(block) = reader.next_block() {
            d.feed(block?);
        }
        return Ok(d.finish());
    }
    let Stack {
        slots,
        applied: _,
        obs,
    } = stack;
    let sinks: Vec<SlotSink> = slots
        .into_iter()
        .map(|s| SlotSink {
            sink: s.sink,
            applied: 0,
            err: s.err,
        })
        .collect();
    let n = sinks.len();
    let (farm, mut sinks) = replay(store, sinks, cfg)?;
    let reports: Vec<Result<SinkReport, SinkError>> = sinks
        .iter_mut()
        .map(|s| match s.err.take() {
            Some(e) => Err(e),
            None => Ok(s.sink.finish()),
        })
        .collect();
    let report = StackReport {
        reports,
        parse: farm.stats,
        words: farm.words,
        applied: sinks.iter().map(|s| s.applied).sum(),
    };
    if let Some(obs) = &obs {
        obs.record(&report, n);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts events; fails with a typed error at a chosen event.
    struct Fussy {
        label: &'static str,
        events: u64,
        fail_at: Option<u64>,
    }

    impl Fussy {
        fn tick(&mut self) -> Result<(), SinkError> {
            self.events += 1;
            if Some(self.events) == self.fail_at {
                return Err(SinkError::new(self.label, "injected"));
            }
            Ok(())
        }
    }

    impl AnalysisSink for Fussy {
        fn name(&self) -> String {
            self.label.into()
        }
        fn iref(&mut self, _v: u32, _s: Space, _i: bool) -> Result<(), SinkError> {
            self.tick()
        }
        fn dref(&mut self, _v: u32, _st: bool, _w: Width, _s: Space) -> Result<(), SinkError> {
            self.tick()
        }
        fn ctx_switch(&mut self, _a: u8) -> Result<(), SinkError> {
            self.tick()
        }
        fn finish(&mut self) -> SinkReport {
            let mut r = SinkReport::new(self.name());
            r.push("events", self.events);
            r
        }
    }

    #[test]
    fn a_failing_slot_reports_typed_and_leaves_siblings_exact() {
        let mut stack = Stack::new()
            .with(Fussy {
                label: "healthy",
                events: 0,
                fail_at: None,
            })
            .with(Fussy {
                label: "doomed",
                events: 0,
                fail_at: Some(3),
            });
        for i in 0..10u32 {
            stack.iref(0x8000_0000 + i * 4, Space::Kernel, false);
        }
        let report = stack.finish(ParseStats::default(), 0);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.ok(0).unwrap().get_u64("events"), Some(10));
        let err = report.reports[1].as_ref().unwrap_err();
        assert_eq!(err.sink, "doomed");
        assert_eq!(err.what, "injected");
        // 10 events × 2 live sinks until event 3 disables one slot:
        // 3 of them went to both, 7 to one.
        assert_eq!(report.applied, 3 * 2 + 7);
    }
}
