//! Observability for the analysis framework: per-pass shape gauges,
//! cumulative work counters, and the §4.3-style sink-failure tally.
//!
//! Rows in `docs/METRICS.md` are kept honest by the
//! `metrics_doc_sync` test.

use std::sync::Arc;

use wrl_obs::{counter, gauge, global, Counter, Gauge};

use crate::driver::StackReport;

/// Counters and gauges for the `tracer.*` family.
#[derive(Clone)]
pub struct TracerObs {
    passes: Arc<Counter>,
    sinks: Arc<Gauge>,
    words: Arc<Gauge>,
    applied: Arc<Counter>,
    sink_errors: Arc<Counter>,
}

impl TracerObs {
    /// Registers every `tracer.*` metric in the global registry.
    pub fn register() -> TracerObs {
        let r = global();
        TracerObs {
            passes: counter!(
                r,
                "tracer.passes",
                "passes",
                "§3.4",
                "Completed one-pass analyses (each feeds every composed sink)."
            ),
            sinks: gauge!(
                r,
                "tracer.sinks",
                "sinks",
                "§3.4",
                "Analysis sinks composed in the last pass."
            ),
            words: gauge!(
                r,
                "tracer.words",
                "words",
                "§3.4",
                "Trace words decoded+parsed once in the last pass."
            ),
            applied: counter!(
                r,
                "tracer.events.applied",
                "events",
                "§3.4",
                "Event-to-sink applications routed (events x live sinks)."
            ),
            sink_errors: counter!(
                r,
                "tracer.sink_errors",
                "errors",
                "§4.3",
                "Sinks disabled mid-pass by a typed error (siblings unaffected)."
            ),
        }
    }

    /// Records one finished pass.
    pub fn record(&self, report: &StackReport, n_sinks: usize) {
        self.passes.inc();
        self.sinks.set(n_sinks as i64);
        self.words.set(report.words as i64);
        self.applied.add(report.applied);
        self.sink_errors.add(report.failed() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_trace::ParseStats;

    #[test]
    fn record_sets_pass_shape() {
        let obs = TracerObs::register();
        let report = StackReport {
            reports: vec![Err(crate::SinkError::new("x", "boom"))],
            parse: ParseStats::default(),
            words: 17,
            applied: 5,
        };
        let before = obs.passes.get();
        obs.record(&report, 3);
        if wrl_obs::recording() {
            assert_eq!(obs.passes.get(), before + 1);
            assert_eq!(obs.sink_errors.get(), 1);
        }
    }
}
