//! `wrl-tracer`: the composable analysis-sink framework.
//!
//! The paper's central claim is that software tracing makes
//! *analysis* cheap once the address stream exists (§3.1: the
//! analysis program runs on the fly, over traces too large to ever
//! store raw). This crate makes that claim structural: any number of
//! analyses run **composed over one decode+parse pass** instead of
//! each owning its own pipeline.
//!
//! * [`sink`] — the [`AnalysisSink`] trait (parsed-event hooks,
//!   optional raw-word hooks, `finish() -> SinkReport`) plus blanket
//!   impls so tuples and vectors of sinks are themselves sinks;
//! * [`driver`] — the [`Stack`] of isolated sink slots, the
//!   incremental [`Driver`], and the one-pass entry points
//!   [`analyze_words`] / [`analyze_store`] (sequential or farmed);
//! * [`analyses`] — the five repo analyses ported onto the trait
//!   (cache study, full memory-system/TLB simulation, dilation,
//!   pagemap, defensive checks);
//! * [`windows`] — the three sinks the framework makes cheap:
//!   sampled tracing windows, per-ASID working-set curves, and a
//!   phase detector;
//! * [`spec`] — the `cache:65536:2,wset,phase` stack-spec grammar
//!   behind `tracedump analyze`;
//! * [`obs`] — the `tracer.*` metrics.
//!
//! Error handling is per-slot: a sink that fails mid-pass surfaces a
//! typed [`SinkError`] in its slot of the [`StackReport`] and is
//! disabled; sibling sinks keep receiving the full event stream and
//! their reports are unaffected (the `tracer.sink` chaos site holds
//! this under seeded fault injection).

#![deny(missing_docs)]

pub mod analyses;
pub mod driver;
pub mod obs;
pub mod sink;
pub mod spec;
pub mod windows;

pub use analyses::{CacheSink, DefenseSink, DilationSink, PagemapSink, TlbSink};
pub use driver::{analyze_store, analyze_words, Driver, Stack, StackReport};
pub use obs::TracerObs;
pub use sink::{AnalysisSink, SinkError, SinkReport, Value};
pub use spec::{build_stack, SinkSpecError};
pub use windows::{PhaseSink, SampledCfg, SampledCfgError, SampledWindowSink, WorkingSetSink};
