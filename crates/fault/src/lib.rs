//! `wrl-fault`: seeded, deterministic fault injection and chaos
//! campaigns for the decode/replay stack.
//!
//! The paper's §4.3 discipline is that a tracing system must *count
//! the dirt*: every anomaly is either detected and tallied or
//! demonstrably harmless, because an analysis that silently digests
//! corrupt input produces numbers nobody can trust. This crate turns
//! that discipline into an executable contract. It injects faults at
//! every boundary of the stack — raw trace words before the parser,
//! container bytes under the store, chunks and items inside the
//! streaming pipeline and replay farm, response frames on the trace
//! service's wire — and classifies what the stack did about each one:
//!
//! * [`plan`] — a [`FaultPlan`] is `(site, seed, intensity)`, round-
//!   trippable through a one-line `site:seed:intensity` spec, so any
//!   campaign failure replays from the line a CI log prints.
//! * [`inject`] — the corruption primitives: seeded bit flips,
//!   truncations/short reads, and a structural region map of an
//!   encoded store so plans aim at header, blocks, index or trailer.
//! * [`chaos`] — runs plans against a golden trace and classifies
//!   each outcome detected / harmless / absorbed / forbidden; the
//!   campaign invariant is an empty forbidden set.
//! * [`obs`] — the `fault.*` counter family (see `docs/METRICS.md`);
//!   `fault.forbidden = 0` is the pass criterion, exported.
//!
//! Everything is deterministic: the only random source is a fixed
//! [`SplitMix64`] seeded from the plan, so one `(base_seed, n)` pair
//! reproduces an entire campaign on any machine.

#![deny(missing_docs)]

pub mod chaos;
pub mod inject;
pub mod obs;
pub mod plan;
pub mod rng;

pub use chaos::{run_campaign, run_plan, CampaignReport, ChaosInput, Outcome};
pub use inject::{
    flip_byte_bits_in, flip_word_bits, short_read, store_regions, truncate_words, StoreRegions,
};
pub use obs::FaultObs;
pub use plan::{campaign, BadPlanSpec, FaultPlan, FaultSite, Layer, ALL_SITES};
pub use rng::SplitMix64;
