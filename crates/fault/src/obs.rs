//! Observability for chaos campaigns: the `fault.*` counter family.
//!
//! One counter per [`crate::Outcome`] class plus a plans-run total,
//! bumped live as [`crate::run_campaign`] classifies each plan. A
//! healthy campaign records `fault.forbidden = 0` — that row being
//! zero *is* the campaign's pass criterion, so exporting it makes the
//! chaos run auditable from the metrics artifact alone, like every
//! other §4.3 defensive tally. Rows in `docs/METRICS.md` are kept
//! honest by the `metrics_doc_sync` test.

use std::sync::Arc;

use wrl_obs::{counter, global, Counter};

use crate::chaos::Outcome;

/// Live tallies for a chaos campaign's outcomes.
#[derive(Clone)]
pub struct FaultObs {
    plans: Arc<Counter>,
    detected: Arc<Counter>,
    harmless: Arc<Counter>,
    absorbed: Arc<Counter>,
    forbidden: Arc<Counter>,
}

impl FaultObs {
    /// Registers every `fault.*` metric in the global registry.
    pub fn register() -> FaultObs {
        let r = global();
        FaultObs {
            plans: counter!(
                r,
                "fault.plans",
                "plans",
                "§4.3",
                "Fault plans executed by chaos campaigns this run."
            ),
            detected: counter!(
                r,
                "fault.detected",
                "plans",
                "§4.3",
                "Injected faults surfaced as typed errors or defensive tallies."
            ),
            harmless: counter!(
                r,
                "fault.harmless",
                "plans",
                "§4.3",
                "Injected faults with bit-identical results (stalls, reorders)."
            ),
            absorbed: counter!(
                r,
                "fault.absorbed",
                "plans",
                "§4.3",
                "Faults forging well-formed traces, processed deterministically."
            ),
            forbidden: counter!(
                r,
                "fault.forbidden",
                "plans",
                "§4.3",
                "Panics or silently wrong answers under fault (must stay 0)."
            ),
        }
    }

    /// Bumps the plan total and the matching outcome counter.
    pub fn tally(&self, outcome: &Outcome) {
        self.plans.inc();
        match outcome {
            Outcome::Detected { .. } => self.detected.inc(),
            Outcome::Harmless => self.harmless.inc(),
            Outcome::Absorbed => self.absorbed.inc(),
            Outcome::Forbidden { .. } => self.forbidden.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_are_tallied_to_their_counter() {
        let obs = FaultObs::register();
        let before = (obs.plans.get(), obs.detected.get(), obs.forbidden.get());
        obs.tally(&Outcome::Detected { what: "x".into() });
        obs.tally(&Outcome::Harmless);
        if wrl_obs::recording() {
            assert_eq!(obs.plans.get(), before.0 + 2);
            assert_eq!(obs.detected.get(), before.1 + 1);
            assert_eq!(obs.forbidden.get(), before.2, "nothing forbidden here");
        }
    }
}
