//! The injectors: seeded corruption primitives for each stack layer.
//!
//! Each injector is a pure function of `(input, rng, intensity)` so a
//! [`crate::FaultPlan`] replays the identical corruption everywhere.
//! Word and byte flips attack content; truncation models short reads;
//! [`store_regions`] maps an encoded store's byte ranges so a plan can
//! aim at exactly one structural region (header+tables, block area,
//! footer index, or trailer) and the campaign can assert per-region
//! detection guarantees.

use crate::SplitMix64;
use wrl_store::TRAILER_BYTES;
use wrl_trace::archive::decode_table_section;

/// Flips `n` random single bits across `words` (no-op on an empty
/// slice). The same `(rng state, n)` always flips the same bits.
pub fn flip_word_bits(words: &mut [u32], rng: &mut SplitMix64, n: u32) {
    if words.is_empty() {
        return;
    }
    for _ in 0..n {
        let i = rng.below(words.len() as u64) as usize;
        let bit = rng.below(32) as u32;
        words[i] ^= 1 << bit;
    }
}

/// Flips `n` random single bits within `bytes[range]` (no-op on an
/// empty range).
pub fn flip_byte_bits_in(
    bytes: &mut [u8],
    range: core::ops::Range<usize>,
    rng: &mut SplitMix64,
    n: u32,
) {
    if range.is_empty() {
        return;
    }
    for _ in 0..n {
        let i = range.start + rng.below(range.len() as u64) as usize;
        let bit = rng.below(8) as u32;
        bytes[i] ^= 1 << bit;
    }
}

/// Truncates `words` at a random point strictly inside the slice —
/// the short-read model for the raw word stream.
pub fn truncate_words(words: &mut Vec<u32>, rng: &mut SplitMix64) {
    if words.is_empty() {
        return;
    }
    let keep = rng.below(words.len() as u64) as usize;
    words.truncate(keep);
}

/// Truncates `bytes` at a random point strictly inside the buffer —
/// the short-read model for an encoded store.
pub fn short_read(bytes: &mut Vec<u8>, rng: &mut SplitMix64) {
    if bytes.is_empty() {
        return;
    }
    let keep = rng.below(bytes.len() as u64) as usize;
    bytes.truncate(keep);
}

/// The structural byte ranges of an encoded v2 store, located the way
/// a real reader does: table section from the front, index position
/// from the fixed trailer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreRegions {
    /// Magic, version, block size, table section and word count — the
    /// decoding metadata ahead of the blocks.
    pub header: core::ops::Range<usize>,
    /// The concatenated compressed blocks.
    pub blocks: core::ops::Range<usize>,
    /// The footer index entries.
    pub index: core::ops::Range<usize>,
    /// The fixed trailer (n_blocks, index_pos, meta CRC, tail magic).
    pub trailer: core::ops::Range<usize>,
}

/// Maps the regions of an encoded v2 store. Returns `None` when the
/// buffer isn't a well-formed v2 container (the injectors only target
/// stores they themselves encoded, so this never fires in a campaign).
pub fn store_regions(bytes: &[u8]) -> Option<StoreRegions> {
    if bytes.len() < 16 + TRAILER_BYTES {
        return None;
    }
    let (_, _, used) = decode_table_section(&bytes[16..]).ok()?;
    let blocks_at = 16 + used + 8;
    let tail_at = bytes.len() - TRAILER_BYTES;
    let index_pos =
        u64::from_le_bytes(bytes.get(tail_at + 4..tail_at + 12)?.try_into().ok()?) as usize;
    if blocks_at > index_pos || index_pos > tail_at {
        return None;
    }
    Some(StoreRegions {
        header: 0..blocks_at,
        blocks: blocks_at..index_pos,
        index: index_pos..tail_at,
        trailer: tail_at..bytes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_store::{TraceStore, INDEX_ENTRY_BYTES};
    use wrl_trace::TraceArchive;

    fn encoded_store() -> Vec<u8> {
        let a = TraceArchive {
            words: (0..500).map(|i| 0x8000_0000 + i * 4).collect(),
            ..TraceArchive::default()
        };
        TraceStore::from_archive(&a, 64).encode()
    }

    #[test]
    fn regions_tile_the_store_exactly() {
        let bytes = encoded_store();
        let r = store_regions(&bytes).unwrap();
        assert_eq!(r.header.start, 0);
        assert_eq!(r.header.end, r.blocks.start);
        assert_eq!(r.blocks.end, r.index.start);
        assert_eq!(r.index.end, r.trailer.start);
        assert_eq!(r.trailer.end, bytes.len());
        assert_eq!(r.trailer.len(), TRAILER_BYTES);
        assert_eq!(r.index.len() % INDEX_ENTRY_BYTES, 0);
        assert!(!r.blocks.is_empty());
    }

    #[test]
    fn injectors_replay_identically_per_seed() {
        let mut a = vec![0u32; 100];
        let mut b = vec![0u32; 100];
        flip_word_bits(&mut a, &mut SplitMix64::new(9), 5);
        flip_word_bits(&mut b, &mut SplitMix64::new(9), 5);
        assert_eq!(a, b);
        assert_ne!(a, vec![0u32; 100], "five flips must change something");

        let mut x = vec![0u8; 64];
        let mut y = vec![0u8; 64];
        flip_byte_bits_in(&mut x, 10..20, &mut SplitMix64::new(3), 4);
        flip_byte_bits_in(&mut y, 10..20, &mut SplitMix64::new(3), 4);
        assert_eq!(x, y);
        assert!(x[..10].iter().all(|&v| v == 0), "flips stay in range");
        assert!(x[20..].iter().all(|&v| v == 0), "flips stay in range");
    }

    #[test]
    fn truncation_always_shortens() {
        let mut w: Vec<u32> = (0..50).collect();
        truncate_words(&mut w, &mut SplitMix64::new(1));
        assert!(w.len() < 50);
        let mut b = encoded_store();
        let before = b.len();
        short_read(&mut b, &mut SplitMix64::new(1));
        assert!(b.len() < before);
    }
}
