//! The injectors: seeded corruption primitives for each stack layer.
//!
//! Each injector is a pure function of `(input, rng, intensity)` so a
//! [`crate::FaultPlan`] replays the identical corruption everywhere.
//! Word and byte flips attack content; truncation models short reads;
//! [`store_regions`] maps an encoded store's byte ranges so a plan can
//! aim at exactly one structural region (header+tables, block area,
//! footer index, or trailer) and the campaign can assert per-region
//! detection guarantees.

use crate::SplitMix64;
use wrl_store::{INDEX_ENTRY_BYTES_V4, TRAILER_BYTES};
use wrl_trace::archive::decode_table_section;

/// Flips `n` random single bits across `words` (no-op on an empty
/// slice). The same `(rng state, n)` always flips the same bits.
pub fn flip_word_bits(words: &mut [u32], rng: &mut SplitMix64, n: u32) {
    if words.is_empty() {
        return;
    }
    for _ in 0..n {
        let i = rng.below(words.len() as u64) as usize;
        let bit = rng.below(32) as u32;
        words[i] ^= 1 << bit;
    }
}

/// Flips `n` random single bits within `bytes[range]` (no-op on an
/// empty range).
pub fn flip_byte_bits_in(
    bytes: &mut [u8],
    range: core::ops::Range<usize>,
    rng: &mut SplitMix64,
    n: u32,
) {
    if range.is_empty() {
        return;
    }
    for _ in 0..n {
        let i = range.start + rng.below(range.len() as u64) as usize;
        let bit = rng.below(8) as u32;
        bytes[i] ^= 1 << bit;
    }
}

/// Truncates `words` at a random point strictly inside the slice —
/// the short-read model for the raw word stream.
pub fn truncate_words(words: &mut Vec<u32>, rng: &mut SplitMix64) {
    if words.is_empty() {
        return;
    }
    let keep = rng.below(words.len() as u64) as usize;
    words.truncate(keep);
}

/// Truncates `bytes` at a random point strictly inside the buffer —
/// the short-read model for an encoded store.
pub fn short_read(bytes: &mut Vec<u8>, rng: &mut SplitMix64) {
    if bytes.is_empty() {
        return;
    }
    let keep = rng.below(bytes.len() as u64) as usize;
    bytes.truncate(keep);
}

/// The structural byte ranges of an encoded v2 store, located the way
/// a real reader does: table section from the front, index position
/// from the fixed trailer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreRegions {
    /// Magic, version, block size, table section and word count — the
    /// decoding metadata ahead of the blocks.
    pub header: core::ops::Range<usize>,
    /// The concatenated compressed blocks.
    pub blocks: core::ops::Range<usize>,
    /// The footer index entries.
    pub index: core::ops::Range<usize>,
    /// The fixed trailer (n_blocks, index_pos, meta CRC, tail magic).
    pub trailer: core::ops::Range<usize>,
}

/// Maps the regions of an encoded v2 store. Returns `None` when the
/// buffer isn't a well-formed v2 container (the injectors only target
/// stores they themselves encoded, so this never fires in a campaign).
pub fn store_regions(bytes: &[u8]) -> Option<StoreRegions> {
    if bytes.len() < 16 + TRAILER_BYTES {
        return None;
    }
    let (_, _, used) = decode_table_section(&bytes[16..]).ok()?;
    let blocks_at = 16 + used + 8;
    let tail_at = bytes.len() - TRAILER_BYTES;
    let index_pos =
        u64::from_le_bytes(bytes.get(tail_at + 4..tail_at + 12)?.try_into().ok()?) as usize;
    if blocks_at > index_pos || index_pos > tail_at {
        return None;
    }
    Some(StoreRegions {
        header: 0..blocks_at,
        blocks: blocks_at..index_pos,
        index: index_pos..tail_at,
        trailer: tail_at..bytes.len(),
    })
}

/// The byte range of one randomly chosen block's *column sections*
/// inside an encoded v4 store — past the block's leading encoded-CRC
/// word, so a flip lands in real column data and only the CRC checks
/// (not the framing parse) stand between it and a wrong answer.
/// `None` when the buffer is not a well-formed v4 container.
pub fn v4_column_target(bytes: &[u8], rng: &mut SplitMix64) -> Option<core::ops::Range<usize>> {
    if u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?) != wrl_store::STORE_VERSION_V4 {
        return None;
    }
    let r = store_regions(bytes)?;
    let n = r.index.len() / INDEX_ENTRY_BYTES_V4;
    if n == 0 {
        return None;
    }
    let i = rng.below(n as u64) as usize;
    let at = r.index.start + i * INDEX_ENTRY_BYTES_V4;
    let offset = u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?) as usize;
    let comp_len = u32::from_le_bytes(bytes.get(at + 8..at + 12)?.try_into().ok()?) as usize;
    let start = r.blocks.start.checked_add(offset)?;
    let end = start.checked_add(comp_len)?;
    // Skip the 4-byte encoded-CRC prefix; a ≤4-byte block has no
    // section bytes to attack.
    (comp_len > 4 && end <= r.blocks.end).then(|| start + 4..end)
}

/// Flips `n` random bits across the ASID zonemap fields of a v4
/// store's index. The mask is *pruning* metadata: a cleared live bit
/// would make ASID queries silently skip blocks that contain matching
/// words — the one §4.3-forbidden outcome — so the zonemap must sit
/// under the metadata CRC and any flip must surface as a typed
/// [`wrl_store::StoreError::MetaCrcMismatch`] before the index is
/// trusted. (An adversary who can also re-seal that CRC can equally
/// re-seal every block CRC; forged-and-resealed metadata is outside
/// the integrity model, exactly as for the v3 summaries.) Returns
/// `false` when the buffer is not a well-formed v4 container.
pub fn flip_zonemap_bits(bytes: &mut [u8], rng: &mut SplitMix64, n: u32) -> bool {
    if bytes.len() < 12
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != wrl_store::STORE_VERSION_V4
    {
        return false;
    }
    let Some(r) = store_regions(bytes) else {
        return false;
    };
    let n_blocks = r.index.len() / INDEX_ENTRY_BYTES_V4;
    if n_blocks == 0 {
        return false;
    }
    for _ in 0..n {
        let i = rng.below(n_blocks as u64) as usize;
        let mask_at = r.index.start + i * INDEX_ENTRY_BYTES_V4 + 39;
        let bit = rng.below(64) as usize;
        bytes[mask_at + bit / 8] ^= 1 << (bit % 8);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_store::{BlockFormat, TraceStore, INDEX_ENTRY_BYTES};
    use wrl_trace::TraceArchive;

    fn encoded_store() -> Vec<u8> {
        let a = TraceArchive {
            words: (0..500).map(|i| 0x8000_0000 + i * 4).collect(),
            ..TraceArchive::default()
        };
        TraceStore::from_archive(&a, 64).encode()
    }

    #[test]
    fn regions_tile_the_store_exactly() {
        let bytes = encoded_store();
        let r = store_regions(&bytes).unwrap();
        assert_eq!(r.header.start, 0);
        assert_eq!(r.header.end, r.blocks.start);
        assert_eq!(r.blocks.end, r.index.start);
        assert_eq!(r.index.end, r.trailer.start);
        assert_eq!(r.trailer.end, bytes.len());
        assert_eq!(r.trailer.len(), TRAILER_BYTES);
        assert_eq!(r.index.len() % INDEX_ENTRY_BYTES, 0);
        assert!(!r.blocks.is_empty());
    }

    #[test]
    fn injectors_replay_identically_per_seed() {
        let mut a = vec![0u32; 100];
        let mut b = vec![0u32; 100];
        flip_word_bits(&mut a, &mut SplitMix64::new(9), 5);
        flip_word_bits(&mut b, &mut SplitMix64::new(9), 5);
        assert_eq!(a, b);
        assert_ne!(a, vec![0u32; 100], "five flips must change something");

        let mut x = vec![0u8; 64];
        let mut y = vec![0u8; 64];
        flip_byte_bits_in(&mut x, 10..20, &mut SplitMix64::new(3), 4);
        flip_byte_bits_in(&mut y, 10..20, &mut SplitMix64::new(3), 4);
        assert_eq!(x, y);
        assert!(x[..10].iter().all(|&v| v == 0), "flips stay in range");
        assert!(x[20..].iter().all(|&v| v == 0), "flips stay in range");
    }

    #[test]
    fn v4_targets_resolve_and_reject_row_stores() {
        let a = TraceArchive {
            words: (0..500).map(|i| 0x8000_0000 + i * 4).collect(),
            ..TraceArchive::default()
        };
        let v4 = TraceStore::from_archive_with(&a, 64, BlockFormat::Columnar).encode();
        let r = store_regions(&v4).unwrap();
        let target = v4_column_target(&v4, &mut SplitMix64::new(7)).unwrap();
        assert!(target.start >= r.blocks.start + 4);
        assert!(target.end <= r.blocks.end);
        let v3 = encoded_store();
        assert_eq!(v4_column_target(&v3, &mut SplitMix64::new(7)), None);
        assert!(!flip_zonemap_bits(
            &mut v3.clone(),
            &mut SplitMix64::new(7),
            3
        ));
        // A zonemap flip lands under the metadata CRC: the store must
        // refuse to decode rather than trust a forged mask.
        let mut forged = v4.clone();
        assert!(flip_zonemap_bits(&mut forged, &mut SplitMix64::new(7), 3));
        assert_ne!(forged, v4);
        assert!(matches!(
            TraceStore::decode(&forged),
            Err(wrl_store::StoreError::MetaCrcMismatch { .. })
        ));
    }

    #[test]
    fn truncation_always_shortens() {
        let mut w: Vec<u32> = (0..50).collect();
        truncate_words(&mut w, &mut SplitMix64::new(1));
        assert!(w.len() < 50);
        let mut b = encoded_store();
        let before = b.len();
        short_read(&mut b, &mut SplitMix64::new(1));
        assert!(b.len() < before);
    }
}
