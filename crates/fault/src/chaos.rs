//! The chaos engine: run one [`FaultPlan`] against a golden trace and
//! classify what the stack did about it.
//!
//! Every plan ends in exactly one [`Outcome`]:
//!
//! * **Detected** — the stack surfaced the fault as a typed error, a
//!   parse-error tally, or a lost-chunk count. The §4.3 discipline at
//!   work: damage you can name.
//! * **Harmless** — the fault demonstrably changed nothing: results
//!   are bit-identical to the unfaulted baseline. Stalls and
//!   reorderings *must* land here (they may only cost throughput).
//! * **Absorbed** — the corrupted input happens to be a well-formed
//!   trace in its own right (a flip forging a valid word, a
//!   truncation at a record boundary). Indistinguishable from a
//!   different trace, so no detector can fire — but the stack must
//!   still process it deterministically, which the engine verifies by
//!   comparing a batch parse against a streaming parse of the same
//!   corrupted words.
//! * **Forbidden** — a panic, or a silently wrong answer (different
//!   results with no error raised, or nondeterminism). The campaign's
//!   invariant is that this set is empty.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use crate::inject::{
    flip_byte_bits_in, flip_word_bits, flip_zonemap_bits, short_read, store_regions,
    truncate_words, v4_column_target,
};
use crate::plan::{FaultPlan, FaultSite, Layer};
use crate::SplitMix64;
use wrl_fabric::{split_store, Coordinator, FabricCfg, Manifest, PlanKind};
use wrl_serve::{Catalog, Client, ClientCfg, ServeCfg, ServeHooks, Server, TailItem, WireFate};
use wrl_store::{
    filter_stream, replay_with_hooks, BlockFormat, FarmCfg, FarmHooks, Predicate, TraceStore,
};
use wrl_trace::{
    ChaosHooks, ChunkFate, CollectSink, ParseStats, Pipeline, PipelineCfg, StageSite, TraceArchive,
};
use wrl_tracer::{analyze_words, AnalysisSink, DefenseSink, DilationSink, SinkError, Stack};

/// How the stack handled one injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The fault was surfaced: a typed error, parse-error tallies, or
    /// a nonzero lost-chunk count.
    Detected {
        /// What fired (an error's display text or a tally name).
        what: String,
    },
    /// Results are bit-identical to the unfaulted baseline.
    Harmless,
    /// The corrupted input is itself a well-formed trace — nothing to
    /// detect — and the stack processed it deterministically.
    Absorbed,
    /// A panic, a silently wrong answer, or nondeterminism. Must
    /// never happen.
    Forbidden {
        /// What went wrong.
        why: String,
    },
}

impl Outcome {
    /// Short classification label (for tables and tallies).
    pub fn kind(&self) -> &'static str {
        match self {
            Outcome::Detected { .. } => "detected",
            Outcome::Harmless => "harmless",
            Outcome::Absorbed => "absorbed",
            Outcome::Forbidden { .. } => "forbidden",
        }
    }
}

/// The golden input a campaign attacks, prepared once: the archive,
/// its unfaulted baseline results, and its block-store encoding.
pub struct ChaosInput {
    /// The pristine trace (tables + words).
    pub archive: TraceArchive,
    /// Baseline sink state from a sequential batch parse.
    pub baseline: CollectSink,
    /// Baseline statistics from the same parse.
    pub baseline_stats: ParseStats,
    /// The archive encoded as a block store (block size
    /// [`ChaosInput::BLOCK_WORDS`]), the store injectors' target and
    /// the wire sites' served catalog.
    pub store_bytes: Vec<u8>,
    /// The same archive encoded as a columnar v4 store — the target
    /// of the v4-specific injector sites (`store.column`,
    /// `store.zonemap`).
    pub store_bytes_v4: Vec<u8>,
}

impl ChaosInput {
    /// Words per store block — small enough that the golden trace
    /// spans tens of blocks, so block-granular faults have targets.
    pub const BLOCK_WORDS: usize = 256;
    /// Words per pipeline chunk, matching the block size so stream
    /// faults likewise have tens of chunks to pick from.
    pub const CHUNK_WORDS: usize = 256;

    /// Prepares a campaign input from a pristine archive.
    pub fn new(archive: TraceArchive) -> ChaosInput {
        let mut parser = archive.parser();
        let mut baseline = CollectSink::default();
        parser.parse_all(&archive.words, &mut baseline);
        let baseline_stats = parser.stats.clone();
        let store_bytes = TraceStore::from_archive(&archive, Self::BLOCK_WORDS).encode();
        let store_bytes_v4 =
            TraceStore::from_archive_with(&archive, Self::BLOCK_WORDS, BlockFormat::Columnar)
                .encode();
        ChaosInput {
            archive,
            baseline,
            baseline_stats,
            store_bytes,
            store_bytes_v4,
        }
    }

    /// Chunks the golden word stream spans at
    /// [`ChaosInput::CHUNK_WORDS`] words per chunk.
    pub fn n_chunks(&self) -> u64 {
        self.archive.words.len().div_ceil(Self::CHUNK_WORDS) as u64
    }

    fn sinks_equal(&self, sink: &CollectSink) -> bool {
        sink.irefs == self.baseline.irefs
            && sink.drefs == self.baseline.drefs
            && sink.switches == self.baseline.switches
    }
}

/// Batch-parses `words` with the input's tables.
fn batch(input: &ChaosInput, words: &[u32]) -> (ParseStats, CollectSink) {
    let mut parser = input.archive.parser();
    let mut sink = CollectSink::default();
    parser.parse_all(words, &mut sink);
    (parser.stats, sink)
}

/// Streams `words` through a hooked pipeline at the given worker
/// count and chunk size, returning the report and sink.
fn stream(
    input: &ChaosInput,
    words: &[u32],
    workers: usize,
    hooks: ChaosHooks,
) -> (wrl_trace::PipelineReport, CollectSink) {
    let cfg = PipelineCfg {
        chunk_words: ChaosInput::CHUNK_WORDS,
        workers,
        ..PipelineCfg::default()
    };
    let mut pipe = Pipeline::with_hooks(input.archive.parser(), CollectSink::default(), cfg, hooks);
    pipe.feed(words);
    pipe.finish()
}

/// Classifies a corrupted word stream: errors ⇒ detected; identical
/// results ⇒ harmless; otherwise the corruption forged a well-formed
/// trace, which is absorbed only if batch and streaming parses of it
/// agree exactly (determinism is the last line of defence when no
/// detector can fire).
fn classify_words(input: &ChaosInput, words: &[u32]) -> Outcome {
    let (stats, sink) = batch(input, words);
    if stats.errors > 0 {
        return Outcome::Detected {
            what: format!("trace.parse.error tallies ({} errors)", stats.errors),
        };
    }
    if stats == input.baseline_stats && input.sinks_equal(&sink) {
        return Outcome::Harmless;
    }
    let (report, ssink) = stream(input, words, 2, ChaosHooks::default());
    if report.parse == stats
        && report.lost_chunks == 0
        && ssink.irefs == sink.irefs
        && ssink.drefs == sink.drefs
        && ssink.switches == sink.switches
    {
        Outcome::Absorbed
    } else {
        Outcome::Forbidden {
            why: "batch and streaming parses of the corrupted words disagree".into(),
        }
    }
}

/// Classifies a corrupted store encoding: any typed error on decode
/// or word extraction ⇒ detected; bit-identical words ⇒ harmless; a
/// store that decodes cleanly to *different* words is a silent wrong
/// answer ⇒ forbidden (the meta CRC and per-block CRCs exist exactly
/// to make this branch unreachable).
fn classify_store(input: &ChaosInput, bytes: &[u8]) -> Outcome {
    let store = match TraceStore::decode_any(bytes) {
        Ok(s) => s,
        Err(e) => {
            return Outcome::Detected {
                what: e.to_string(),
            }
        }
    };
    match store.words() {
        Err(e) => Outcome::Detected {
            what: e.to_string(),
        },
        Ok(words) if words == input.archive.words => Outcome::Harmless,
        Ok(_) => Outcome::Forbidden {
            why: "store decoded cleanly to different words".into(),
        },
    }
}

/// [`classify_store`] plus the projected read path: when the full
/// word extraction comes through clean, a panel of ASID and window
/// queries (the path that decodes only some columns of a v4 block)
/// must each either raise a typed error or answer exactly what the
/// reference filter selects from the pristine words — never a third
/// thing.
fn classify_store_v4(input: &ChaosInput, bytes: &[u8]) -> Outcome {
    let base = classify_store(input, bytes);
    if base != Outcome::Harmless {
        return base;
    }
    let store = TraceStore::decode_any(bytes).expect("classified harmless above");
    let panel = [
        Predicate {
            asid: Some(0),
            window: None,
        },
        Predicate {
            asid: Some(1),
            window: None,
        },
        Predicate {
            asid: None,
            window: Some((64, 700)),
        },
        Predicate {
            asid: Some(0),
            window: Some((10, 2000)),
        },
    ];
    for pred in panel {
        match store.query(&pred) {
            Err(e) => {
                return Outcome::Detected {
                    what: e.to_string(),
                }
            }
            Ok(q) if q.words == filter_stream(&input.archive.words, &pred) => {}
            Ok(_) => {
                return Outcome::Forbidden {
                    why: format!("projected query answered wrongly without an error ({pred:?})"),
                }
            }
        }
    }
    Outcome::Harmless
}

/// Distinct random values in `0..n` ( `count` clamped to `n`).
fn pick_distinct(rng: &mut SplitMix64, n: u64, count: u64) -> HashSet<u64> {
    let mut set = HashSet::new();
    while (set.len() as u64) < count.min(n) {
        set.insert(rng.below(n));
    }
    set
}

fn run_site(input: &ChaosInput, plan: FaultPlan) -> Outcome {
    let mut rng = SplitMix64::new(plan.seed);
    let intensity = plan.intensity.max(1);
    match plan.site {
        FaultSite::ParserBitFlip => {
            let mut words = input.archive.words.clone();
            flip_word_bits(&mut words, &mut rng, intensity);
            classify_words(input, &words)
        }
        FaultSite::ParserTruncate => {
            let mut words = input.archive.words.clone();
            truncate_words(&mut words, &mut rng);
            classify_words(input, &words)
        }
        FaultSite::StoreBlock
        | FaultSite::StoreIndex
        | FaultSite::StoreHeader
        | FaultSite::StoreTrailer => {
            let mut bytes = input.store_bytes.clone();
            let r = store_regions(&bytes).expect("golden store is well-formed");
            let region = match plan.site {
                FaultSite::StoreBlock => r.blocks,
                FaultSite::StoreIndex => r.index,
                FaultSite::StoreHeader => r.header,
                _ => r.trailer,
            };
            flip_byte_bits_in(&mut bytes, region, &mut rng, intensity);
            classify_store(input, &bytes)
        }
        FaultSite::StoreShortRead => {
            let mut bytes = input.store_bytes.clone();
            short_read(&mut bytes, &mut rng);
            classify_store(input, &bytes)
        }
        FaultSite::StoreColumn => {
            let mut bytes = input.store_bytes_v4.clone();
            let target =
                v4_column_target(&bytes, &mut rng).expect("golden v4 store has column targets");
            flip_byte_bits_in(&mut bytes, target, &mut rng, intensity);
            classify_store_v4(input, &bytes)
        }
        FaultSite::StoreZonemap => {
            let mut bytes = input.store_bytes_v4.clone();
            assert!(
                flip_zonemap_bits(&mut bytes, &mut rng, intensity),
                "golden v4 store has zonemaps"
            );
            classify_store_v4(input, &bytes)
        }
        FaultSite::StreamStall => {
            // Stall every k-th chunk at the parse boundary; by
            // contract this may only cost throughput.
            let workers = 1 + rng.below(4) as usize;
            let every = 1 + u64::from(intensity);
            let hooks = ChaosHooks::on_chunk(move |_, seq| {
                if seq % every == 0 {
                    ChunkFate::Stall(Duration::from_micros(200))
                } else {
                    ChunkFate::Deliver
                }
            });
            let (report, sink) = stream(input, &input.archive.words, workers, hooks);
            if report.lost_chunks == 0
                && report.parse == input.baseline_stats
                && input.sinks_equal(&sink)
            {
                Outcome::Harmless
            } else {
                Outcome::Forbidden {
                    why: format!("stalls changed results (workers {workers})"),
                }
            }
        }
        FaultSite::StreamReorder => {
            // Stall one of the two decode workers (workers = 4 is the
            // only topology with parallel decoders) so chunks finish
            // out of order; the parse stage's sequence reordering must
            // make this invisible.
            let hooks = ChaosHooks::on_chunk(move |site, seq| {
                if site == StageSite::Decode && seq % 2 == 0 {
                    ChunkFate::Stall(Duration::from_micros(300))
                } else {
                    ChunkFate::Deliver
                }
            });
            let (report, sink) = stream(input, &input.archive.words, 4, hooks);
            if report.lost_chunks == 0
                && report.parse == input.baseline_stats
                && input.sinks_equal(&sink)
            {
                Outcome::Harmless
            } else {
                Outcome::Forbidden {
                    why: "reordering changed results".into(),
                }
            }
        }
        FaultSite::StreamDrop => {
            // Drop chunks at the parse boundary; every drop must be
            // counted in `lost_chunks`, never silently shorten the
            // stream.
            let workers = 1 + rng.below(4) as usize;
            let dropped = pick_distinct(&mut rng, input.n_chunks(), u64::from(intensity));
            let n_dropped = dropped.len() as u64;
            let hooks = ChaosHooks::on_chunk(move |site, seq| {
                if site == StageSite::Parse && dropped.contains(&seq) {
                    ChunkFate::Drop
                } else {
                    ChunkFate::Deliver
                }
            });
            let (report, _) = stream(input, &input.archive.words, workers, hooks);
            if report.lost_chunks == n_dropped {
                Outcome::Detected {
                    what: format!("stream.chunks.lost = {n_dropped}"),
                }
            } else {
                Outcome::Forbidden {
                    why: format!(
                        "dropped {n_dropped} chunks but lost_chunks = {} (workers {workers})",
                        report.lost_chunks
                    ),
                }
            }
        }
        FaultSite::FarmStall | FaultSite::FarmDrop => {
            let store = TraceStore::decode_any(&input.store_bytes).expect("golden store decodes");
            let shared_parse = rng.chance(1, 2);
            let cfg = FarmCfg {
                workers: 2,
                shared_parse,
                batch_events: 512,
                ..FarmCfg::default()
            };
            let hooks = if plan.site == FaultSite::FarmStall {
                let every = 1 + u64::from(intensity);
                FarmHooks::on_item(move |worker, seq| {
                    if worker == 0 && seq % every == 0 {
                        ChunkFate::Stall(Duration::from_micros(200))
                    } else {
                        ChunkFate::Deliver
                    }
                })
            } else {
                // Drop one early item on one worker; item sequences
                // are blocks (per-worker mode) or batches (shared
                // mode), and both streams have more than four items
                // for the golden input.
                let worker = rng.below(2) as usize;
                let seq = rng.below(4);
                FarmHooks::on_item(move |w, s| {
                    if w == worker && s == seq {
                        ChunkFate::Drop
                    } else {
                        ChunkFate::Deliver
                    }
                })
            };
            let sinks = vec![CollectSink::default(); 2];
            match (plan.site, replay_with_hooks(&store, sinks, cfg, hooks)) {
                (FaultSite::FarmStall, Ok((report, sinks))) => {
                    if report.stats == input.baseline_stats
                        && sinks.iter().all(|s| input.sinks_equal(s))
                    {
                        Outcome::Harmless
                    } else {
                        Outcome::Forbidden {
                            why: format!("farm stalls changed results (shared {shared_parse})"),
                        }
                    }
                }
                (FaultSite::FarmStall, Err(e)) => Outcome::Forbidden {
                    why: format!("farm stalls raised an error: {e}"),
                },
                (_, Err(e @ wrl_store::StoreError::FarmDesync { .. })) => Outcome::Detected {
                    what: e.to_string(),
                },
                (_, Err(e)) => Outcome::Forbidden {
                    why: format!("farm drop raised the wrong error: {e}"),
                },
                (_, Ok(_)) => Outcome::Forbidden {
                    why: "farm drop went unnoticed".into(),
                },
            }
        }
        FaultSite::WireCorrupt
        | FaultSite::WireDrop
        | FaultSite::WirePartial
        | FaultSite::WireStall => run_wire(input, plan, &mut rng),
        FaultSite::WireSubStall => run_sub_stall(input, &mut rng),
        FaultSite::FabricScatter => run_fabric_scatter(input, intensity, &mut rng),
        FaultSite::FabricNodeLoss => run_fabric_node_loss(input, &mut rng),
        FaultSite::TracerSink => run_tracer_sink(input, intensity, &mut rng),
    }
}

/// A sink that surfaces a typed [`SinkError`] at a seeded ordinal of
/// one seeded callback — the `tracer.sink` injector.
struct FailingSink {
    /// Which callback fails: 0 `iref`, 1 `dref`, 2 `ctx_switch`,
    /// 3 `before_word`.
    hook: u8,
    /// Fail on the `at`-th invocation of that callback (1-based).
    at: u64,
    seen: u64,
}

impl FailingSink {
    fn tick(&mut self, hook: u8) -> Result<(), SinkError> {
        if hook != self.hook {
            return Ok(());
        }
        self.seen += 1;
        if self.seen == self.at {
            return Err(SinkError::new("chaos.fail", "injected sink fault"));
        }
        Ok(())
    }
}

impl AnalysisSink for FailingSink {
    fn name(&self) -> String {
        "chaos.fail".into()
    }
    fn wants_words(&self) -> bool {
        self.hook == 3
    }
    fn before_word(&mut self, _pos: u64, _word: u32) -> Result<(), SinkError> {
        self.tick(3)
    }
    fn iref(&mut self, _v: u32, _s: wrl_trace::Space, _i: bool) -> Result<(), SinkError> {
        self.tick(0)
    }
    fn dref(
        &mut self,
        _v: u32,
        _st: bool,
        _w: wrl_isa::Width,
        _s: wrl_trace::Space,
    ) -> Result<(), SinkError> {
        self.tick(1)
    }
    fn ctx_switch(&mut self, _a: u8) -> Result<(), SinkError> {
        self.tick(2)
    }
    fn finish(&mut self) -> wrl_tracer::SinkReport {
        wrl_tracer::SinkReport::new(self.name())
    }
}

/// `tracer.sink`: one analysis sink errors mid-pass inside a composed
/// stack. The driver's isolation contract: the error surfaces *typed*
/// on exactly that slot (detected), the pass never panics, and the
/// sibling sinks' reports stay bit-identical to an unfaulted pass of
/// the same stream. A seeded ordinal past the stream's events fires
/// nothing — then the faulty sink must be indistinguishable from a
/// healthy one (harmless).
fn run_tracer_sink(input: &ChaosInput, intensity: u32, rng: &mut SplitMix64) -> Outcome {
    let hook = rng.below(4) as u8;
    let at = 1 + rng.below(512 * u64::from(intensity));
    let baseline = analyze_words(
        input.archive.parser(),
        &input.archive.words,
        Stack::new()
            .with(DilationSink::default())
            .with(DefenseSink::default()),
    );
    let faulted = analyze_words(
        input.archive.parser(),
        &input.archive.words,
        Stack::new()
            .with(DilationSink::default())
            .with(FailingSink { hook, at, seen: 0 })
            .with(DefenseSink::default()),
    );
    let siblings_exact = faulted.ok(0) == baseline.ok(0)
        && faulted.ok(2) == baseline.ok(1)
        && faulted.parse == baseline.parse
        && faulted.words == baseline.words;
    if !siblings_exact {
        return Outcome::Forbidden {
            why: format!("a failing sink perturbed its siblings (hook {hook}, at {at})"),
        };
    }
    match &faulted.reports[1] {
        Err(e) if e.sink == "chaos.fail" => Outcome::Detected {
            what: format!("typed sink error: {e}"),
        },
        Err(e) => Outcome::Forbidden {
            why: format!("sink error misattributed to {}", e.sink),
        },
        // The seeded ordinal lay beyond the stream: nothing fired,
        // and the pass proved unperturbed above.
        Ok(_) => Outcome::Harmless,
    }
}

/// `fabric.scatter`: flip bits in an encoded shard manifest before a
/// coordinator would trust it. The manifest carries pruning proofs —
/// a damaged zonemap or word offset would make the coordinator
/// silently skip blocks with matching words — so *every* flip must be
/// detected (magic/version rejection or the trailing CRC) before any
/// field is believed. A manifest that decodes cleanly to a different
/// plan is a silent wrong answer, forbidden.
fn run_fabric_scatter(input: &ChaosInput, intensity: u32, rng: &mut SplitMix64) -> Outcome {
    let store = TraceStore::decode_any(&input.store_bytes_v4).expect("golden v4 store decodes");
    let kind = if rng.chance(1, 2) {
        PlanKind::BlockRange
    } else {
        PlanKind::AsidHash
    };
    let (manifest, _) = split_store(&store, "golden", 2, kind).expect("golden store splits");
    let mut bytes = manifest.encode();
    let n_bits = bytes.len() as u64 * 8;
    for bit in pick_distinct(rng, n_bits, u64::from(intensity)) {
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
    match Manifest::decode(&bytes) {
        Err(e) => Outcome::Detected {
            what: e.to_string(),
        },
        Ok(back) if back == manifest => Outcome::Harmless,
        Ok(_) => Outcome::Forbidden {
            why: "damaged manifest decoded cleanly to a different plan".into(),
        },
    }
}

/// `fabric.node_loss`: kill a shard node behind a coordinator. Half
/// the plans list a replica: the coordinator must fail the lost
/// sub-query over and the merged answer must stay bit-identical — a
/// duplicated or dropped row is exactly the silent corruption the
/// whole-unit retry exists to prevent. The other half leave the shard
/// unreplicated: the only lawful answer is the typed `unavailable`
/// error naming the shard, never a partial result.
fn run_fabric_node_loss(input: &ChaosInput, rng: &mut SplitMix64) -> Outcome {
    let store = TraceStore::decode_any(&input.store_bytes).expect("golden store decodes");
    let kind = if rng.chance(1, 2) {
        PlanKind::BlockRange
    } else {
        PlanKind::AsidHash
    };
    let (manifest, shard_stores) =
        split_store(&store, "golden", 2, kind).expect("golden store splits");
    let with_replica = rng.chance(1, 2);
    // Kill the primary of the first shard that owns blocks: either a
    // mid-response cut (the node dies while answering) or an endpoint
    // nothing listens on (the node died before the query).
    let victim = manifest
        .shards
        .iter()
        .position(|s| s.n_blocks > 0)
        .expect("golden store has blocks");
    let dead_primary = !with_replica && rng.chance(1, 2);
    let cut_at = rng.next_u64();
    let cfg = ServeCfg {
        read_timeout: Duration::from_millis(5),
        max_stalls: 60,
        ..ServeCfg::default()
    };
    let ccfg = ClientCfg {
        read_timeout: Duration::from_millis(5),
        max_stalls: 60,
        ..ClientCfg::default()
    };
    let stores: Vec<Arc<TraceStore>> = shard_stores.into_iter().map(Arc::new).collect();
    let catalog_of = |s: usize| {
        let mut c = Catalog::new();
        c.add(manifest.shards[s].name.clone(), Arc::clone(&stores[s]));
        c
    };
    let mut servers = Vec::new();
    let mut endpoints = Vec::new();
    for s in 0..manifest.n_shards() {
        let mut eps = Vec::new();
        if manifest.shards[s].n_blocks > 0 {
            if s == victim {
                if dead_primary {
                    let l = std::net::TcpListener::bind("127.0.0.1:0")
                        .expect("loopback bind for a dead endpoint");
                    eps.push(l.local_addr().expect("bound address"));
                } else {
                    let hooks = ServeHooks::on_response(move |seq| match seq {
                        0 => WireFate::CutAfter { at: cut_at },
                        _ => WireFate::Deliver,
                    });
                    let srv =
                        match Server::start_with_hooks("127.0.0.1:0", catalog_of(s), cfg, hooks) {
                            Ok(srv) => srv,
                            Err(e) => {
                                return Outcome::Forbidden {
                                    why: format!("victim shard server failed to start: {e}"),
                                }
                            }
                        };
                    eps.push(srv.addr());
                    servers.push(srv);
                }
                if with_replica {
                    match Server::start("127.0.0.1:0", catalog_of(s), cfg) {
                        Ok(srv) => {
                            eps.push(srv.addr());
                            servers.push(srv);
                        }
                        Err(e) => {
                            return Outcome::Forbidden {
                                why: format!("replica server failed to start: {e}"),
                            }
                        }
                    }
                }
            } else {
                match Server::start("127.0.0.1:0", catalog_of(s), cfg) {
                    Ok(srv) => {
                        eps.push(srv.addr());
                        servers.push(srv);
                    }
                    Err(e) => {
                        return Outcome::Forbidden {
                            why: format!("shard server failed to start: {e}"),
                        }
                    }
                }
            }
        }
        endpoints.push(eps);
    }
    let coord = match Coordinator::start(
        "127.0.0.1:0",
        manifest,
        endpoints,
        FabricCfg {
            client: ccfg,
            ..FabricCfg::default()
        },
    ) {
        Ok(c) => c,
        Err(e) => {
            return Outcome::Forbidden {
                why: format!("coordinator failed to start: {e}"),
            }
        }
    };
    // Generous upstream stall budget: the coordinator's failover
    // (downstream reconnects, stall budgets) runs inside this wait.
    let up = ClientCfg {
        read_timeout: Duration::from_millis(5),
        max_stalls: 400,
        ..ClientCfg::default()
    };
    let everything = Predicate::default();
    let damaged = Client::connect_cfg(coord.addr(), up)
        .map_err(wrl_serve::ServeError::Io)
        .and_then(|mut c| c.query("golden", &everything));
    let outcome = if with_replica {
        match damaged {
            Ok(q) if q.words == input.archive.words => {
                // The loss is absorbed; the fabric must also still
                // answer a fresh connection perfectly.
                let probe = Client::connect_cfg(coord.addr(), up)
                    .map_err(wrl_serve::ServeError::Io)
                    .and_then(|mut c| c.query("golden", &everything));
                match probe {
                    Ok(p) if p.words == input.archive.words => Outcome::Harmless,
                    Ok(_) => Outcome::Forbidden {
                        why: "fabric answered the recovery probe wrongly".into(),
                    },
                    Err(e) => Outcome::Forbidden {
                        why: format!("fabric did not recover after failover: {e}"),
                    },
                }
            }
            Ok(_) => Outcome::Forbidden {
                why: "failover duplicated or dropped rows".into(),
            },
            Err(e) => Outcome::Forbidden {
                why: format!("a replicated shard loss surfaced as an error: {e}"),
            },
        }
    } else {
        match damaged {
            Ok(_) => Outcome::Forbidden {
                why: "unreplicated node loss went unnoticed".into(),
            },
            Err(wrl_serve::ServeError::Remote { code, msg })
                if code == wrl_serve::wire::err::UNAVAILABLE && msg.contains("shard") =>
            {
                Outcome::Detected {
                    what: format!("typed unavailable: {msg}"),
                }
            }
            Err(e) => Outcome::Forbidden {
                why: format!("wrong error for an unreplicated node loss: {e}"),
            },
        }
    };
    coord.shutdown();
    for s in servers {
        s.shutdown();
    }
    outcome
}

/// Runs one wire-layer plan: serve the golden store on a loopback
/// socket with a fault seam that shapes exactly the first response
/// frame, query it, then prove the server survived by running a clean
/// query on a fresh connection and comparing it word-for-word against
/// the archive.
///
/// Corrupting fates (`wire.corrupt`, `wire.drop`) must surface as a
/// typed client error: the frame CRC covers the whole body and the
/// length prefix is range-checked, so *any* single-bit flip and *any*
/// truncation point must land detected — an `Ok` answer from the
/// damaged exchange means the wire let corruption through silently,
/// which is forbidden. Merely-slow fates (`wire.partial` short-write
/// storms, `wire.stall` mid-frame pauses) are harmless by contract:
/// the shaped exchange must *succeed bit-identically* — an error (or
/// a wrong answer) from a fault that only delays bytes is forbidden.
fn run_wire(input: &ChaosInput, plan: FaultPlan, rng: &mut SplitMix64) -> Outcome {
    let store = TraceStore::decode_any(&input.store_bytes).expect("golden store decodes");
    let fate = match plan.site {
        FaultSite::WireCorrupt => WireFate::FlipBit {
            at: rng.next_u64(),
            bit: rng.below(8) as u8,
        },
        FaultSite::WirePartial => WireFate::Trickle {
            // 64..256 bytes per writability event: a genuine storm on
            // a 32 KB query response, still bounded well under a
            // second of event-loop passes.
            chunk: 64 + rng.below(192) as usize,
        },
        FaultSite::WireStall => WireFate::StallMid {
            at: rng.next_u64(),
            // 1..=8 reactor ticks ≈ ≤ 40 ms at the 5 ms tick below —
            // far inside the client's 60-tick (300 ms) stall budget.
            ticks: 1 + rng.below(8) as u32,
        },
        _ => WireFate::CutAfter { at: rng.next_u64() },
    };
    let benign = matches!(plan.site, FaultSite::WirePartial | FaultSite::WireStall);
    // Damage only the first response; the recovery probe below rides
    // the same server and must come through clean.
    let hooks = ServeHooks::on_response(move |seq| match seq {
        0 => fate,
        _ => WireFate::Deliver,
    });
    let mut catalog = Catalog::new();
    catalog.add("golden", Arc::new(store));
    // Short ticks keep the worst case (a flipped length prefix makes
    // the client wait for bytes that never come) bounded well under a
    // second per plan.
    let cfg = ServeCfg {
        read_timeout: Duration::from_millis(5),
        max_stalls: 60,
        ..ServeCfg::default()
    };
    let ccfg = ClientCfg {
        read_timeout: Duration::from_millis(5),
        max_stalls: 60,
        ..ClientCfg::default()
    };
    let server = match Server::start_with_hooks("127.0.0.1:0", catalog, cfg, hooks) {
        Ok(s) => s,
        Err(e) => {
            return Outcome::Forbidden {
                why: format!("loopback server failed to start: {e}"),
            }
        }
    };
    let everything = Predicate::default();
    let damaged = Client::connect_cfg(server.addr(), ccfg)
        .map_err(wrl_serve::ServeError::Io)
        .and_then(|mut c| c.query("golden", &everything));
    // Whatever the shaped exchange did, the server must still answer
    // a fresh connection perfectly.
    let probe = |on_ok: Outcome| {
        let clean = Client::connect_cfg(server.addr(), ccfg)
            .map_err(wrl_serve::ServeError::Io)
            .and_then(|mut c| c.query("golden", &everything));
        match clean {
            Ok(q) if q.words == input.archive.words => on_ok,
            Ok(_) => Outcome::Forbidden {
                why: "server answered the recovery probe wrongly".into(),
            },
            Err(e2) => Outcome::Forbidden {
                why: format!("server did not recover after the fault: {e2}"),
            },
        }
    };
    let outcome = match (benign, damaged) {
        (false, Ok(_)) => Outcome::Forbidden {
            why: "damaged response decoded cleanly (CRC failed to fire)".into(),
        },
        (false, Err(e)) => probe(Outcome::Detected {
            what: format!("client error: {e}"),
        }),
        (true, Ok(q)) if q.words == input.archive.words => probe(Outcome::Harmless),
        (true, Ok(_)) => Outcome::Forbidden {
            why: "shaped response arrived with wrong words".into(),
        },
        (true, Err(e)) => Outcome::Forbidden {
            why: format!("a merely-slow wire fault surfaced as an error: {e}"),
        },
    };
    server.shutdown();
    outcome
}

/// Drains a live tail to its end-of-feed marker, concatenating the
/// pushed words. `Ok(None)` means an `EVENT` carried a `seq` offset
/// disagreeing with the words already delivered — a wrong tail by
/// construction, whatever the words say.
fn collect_tail(c: &mut Client) -> Result<Option<Vec<u32>>, wrl_serve::ServeError> {
    let mut words: Vec<u32> = Vec::new();
    loop {
        match c.next_event()? {
            TailItem::Event { seq, words: w } => {
                if seq != words.len() as u64 {
                    return Ok(None);
                }
                words.extend(w);
            }
            TailItem::End => return Ok(Some(words)),
        }
    }
}

/// Runs one `wire.sub_stall` plan: publish the whole golden stream
/// into a live feed and *finish it before anyone subscribes*, so the
/// response sequence is deterministic across replays — response 0 is
/// the `Subscribed` ack and response 1 is the first catch-up `EVENT`,
/// the frame every variant attacks. Three seeded variants:
///
/// * **cut** — sever the connection inside that `EVENT`: the client
///   must surface a typed error (detected), never a short tail that
///   reads as complete;
/// * **stall** — pause mid-frame within both stall budgets: the tail
///   must still arrive bit-identical to [`filter_stream`] (harmless);
/// * **walk away** — the subscriber stops reading and severs right
///   after the ack: nothing to detect on a connection nobody is
///   reading, but the server must shed it (harmless).
///
/// Every variant ends with a fresh subscriber proving the server
/// still pushes the exact filtered stream.
fn run_sub_stall(input: &ChaosInput, rng: &mut SplitMix64) -> Outcome {
    let variant = rng.below(3);
    let fate = match variant {
        0 => WireFate::CutAfter { at: rng.next_u64() },
        1 => WireFate::StallMid {
            at: rng.next_u64(),
            // Same bound as `wire.stall`: ≤ 40 ms at the 5 ms tick,
            // far inside the client's 60-tick stall budget.
            ticks: 1 + rng.below(8) as u32,
        },
        _ => WireFate::Deliver,
    };
    // A seeded predicate, re-aimed at match-everything when it admits
    // nothing: the attacked catch-up EVENT must exist, and a nonempty
    // tail is what makes a cut impossible to mistake for completion.
    let mut pred = match rng.below(3) {
        0 => Predicate::default(),
        1 => Predicate {
            window: Some((0, (input.archive.words.len() as u64 / 2).max(1))),
            ..Predicate::default()
        },
        _ => Predicate {
            asid: Some(0),
            ..Predicate::default()
        },
    };
    let mut expected = filter_stream(&input.archive.words, &pred);
    if expected.is_empty() {
        pred = Predicate::default();
        expected = filter_stream(&input.archive.words, &pred);
    }
    let hooks = ServeHooks::on_response(move |seq| match seq {
        1 => fate,
        _ => WireFate::Deliver,
    });
    let cfg = ServeCfg {
        read_timeout: Duration::from_millis(5),
        max_stalls: 60,
        ..ServeCfg::default()
    };
    let ccfg = ClientCfg {
        read_timeout: Duration::from_millis(5),
        max_stalls: 60,
        ..ClientCfg::default()
    };
    let server = match Server::start_with_hooks("127.0.0.1:0", Catalog::new(), cfg, hooks) {
        Ok(s) => s,
        Err(e) => {
            return Outcome::Forbidden {
                why: format!("loopback server failed to start: {e}"),
            }
        }
    };
    let feed = server.live_feed("golden");
    feed.publish(&input.archive.words);
    feed.finish();
    // Whatever the shaped push did, a fresh subscriber must still
    // receive the exact filtered stream, start to end marker.
    let probe = |on_ok: Outcome| {
        let clean = Client::connect_cfg(server.addr(), ccfg)
            .map_err(wrl_serve::ServeError::Io)
            .and_then(|mut c| {
                c.subscribe("golden", &pred, true)?;
                collect_tail(&mut c)
            });
        match clean {
            Ok(Some(t)) if t == expected => on_ok,
            Ok(_) => Outcome::Forbidden {
                why: "server pushed a wrong tail to the recovery probe".into(),
            },
            Err(e) => Outcome::Forbidden {
                why: format!("server did not recover after the subscriber fault: {e}"),
            },
        }
    };
    let outcome = if variant == 2 {
        let walker = Client::connect_cfg(server.addr(), ccfg)
            .map_err(wrl_serve::ServeError::Io)
            .and_then(|mut c| c.subscribe("golden", &pred, true).map(|()| c));
        match walker {
            Ok(c) => {
                // Walk away mid-push: sever without reading a single
                // EVENT frame.
                drop(c);
                probe(Outcome::Harmless)
            }
            Err(e) => Outcome::Forbidden {
                why: format!("an undamaged subscribe failed: {e}"),
            },
        }
    } else {
        let damaged = Client::connect_cfg(server.addr(), ccfg)
            .map_err(wrl_serve::ServeError::Io)
            .and_then(|mut c| {
                c.subscribe("golden", &pred, true)?;
                collect_tail(&mut c)
            });
        match (variant, damaged) {
            (0, Err(e)) => probe(Outcome::Detected {
                what: format!("client error: {e}"),
            }),
            (0, Ok(_)) => Outcome::Forbidden {
                why: "a severed tail completed without an error".into(),
            },
            (_, Ok(Some(t))) if t == expected => probe(Outcome::Harmless),
            (_, Ok(_)) => Outcome::Forbidden {
                why: "a stalled tail arrived with wrong words".into(),
            },
            (_, Err(e)) => Outcome::Forbidden {
                why: format!("a merely-slow push surfaced as an error: {e}"),
            },
        }
    };
    server.shutdown();
    outcome
}

/// Runs one plan against the input, converting any panic on the
/// injection path into [`Outcome::Forbidden`] (worker-thread panics
/// propagate through the joins inside, so they are caught here too).
pub fn run_plan(input: &ChaosInput, plan: FaultPlan) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| run_site(input, plan))) {
        Ok(outcome) => outcome,
        Err(e) => {
            let why = e
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| e.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".into());
            Outcome::Forbidden {
                why: format!("panic: {why}"),
            }
        }
    }
}

/// One finished campaign: every plan with its outcome, in order.
pub struct CampaignReport {
    /// Plans and their outcomes.
    pub results: Vec<(FaultPlan, Outcome)>,
}

impl CampaignReport {
    /// Totals as (detected, harmless, absorbed, forbidden).
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0);
        for (_, o) in &self.results {
            match o {
                Outcome::Detected { .. } => t.0 += 1,
                Outcome::Harmless => t.1 += 1,
                Outcome::Absorbed => t.2 += 1,
                Outcome::Forbidden { .. } => t.3 += 1,
            }
        }
        t
    }

    /// The forbidden outcomes (plan + reason) — must be empty.
    pub fn forbidden(&self) -> Vec<(FaultPlan, String)> {
        self.results
            .iter()
            .filter_map(|(p, o)| match o {
                Outcome::Forbidden { why } => Some((*p, why.clone())),
                _ => None,
            })
            .collect()
    }

    /// Layers with at least one *detected* fault.
    pub fn detected_layers(&self) -> HashSet<Layer> {
        self.results
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::Detected { .. }))
            .map(|(p, _)| p.site.layer())
            .collect()
    }

    /// A per-site outcome table (markdown), for logs and artifacts.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "| site | plans | detected | harmless | absorbed | forbidden |\n\
             |---|---|---|---|---|---|\n",
        );
        for site in crate::plan::ALL_SITES {
            let mut row = [0u64; 4];
            let mut n = 0u64;
            for (_, o) in self.results.iter().filter(|(p, _)| p.site == site) {
                n += 1;
                match o {
                    Outcome::Detected { .. } => row[0] += 1,
                    Outcome::Harmless => row[1] += 1,
                    Outcome::Absorbed => row[2] += 1,
                    Outcome::Forbidden { .. } => row[3] += 1,
                }
            }
            out.push_str(&format!(
                "| {site} | {n} | {} | {} | {} | {} |\n",
                row[0], row[1], row[2], row[3]
            ));
        }
        let (d, h, a, f) = self.totals();
        out.push_str(&format!(
            "| **total** | {} | {d} | {h} | {a} | {f} |\n",
            self.results.len()
        ));
        out
    }
}

/// Runs every plan, tallying outcomes into the `fault.*` metric
/// family as it goes.
pub fn run_campaign(input: &ChaosInput, plans: &[FaultPlan]) -> CampaignReport {
    let obs = crate::obs::FaultObs::register();
    let results = plans
        .iter()
        .map(|&plan| {
            let outcome = run_plan(input, plan);
            obs.tally(&outcome);
            (plan, outcome)
        })
        .collect();
    CampaignReport { results }
}
