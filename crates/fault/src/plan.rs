//! Fault plans: the replayable one-line spec of one injected fault.
//!
//! A campaign is nothing but a list of [`FaultPlan`]s, and a plan is
//! three values — *where* ([`FaultSite`]), *how hard* (intensity) and
//! *which exact bits* (seed). `Display`/`FromStr` round-trip the
//! whole plan through a `site:seed:intensity` string, so any campaign
//! failure is reproducible from the one line a CI log prints.

use core::fmt;
use core::str::FromStr;

/// The stack layer a fault site belongs to — the campaign asserts at
/// least one *detected* corruption per layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layer {
    /// The `wrl-trace` parser and its raw word stream.
    Parser,
    /// The `wrl-store` container bytes.
    Store,
    /// The streaming pipeline and replay farm channels.
    Farm,
    /// The `wrl-serve` wire protocol between server and client.
    Wire,
    /// The `wrl-fabric` coordinator: shard manifests and the
    /// scatter-gather/failover path.
    Fabric,
    /// The `wrl-tracer` analysis-sink framework: composed sinks on
    /// the one-pass driver.
    Tracer,
}

/// Where in the stack one fault is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Flip random bits in raw trace words before the parser.
    ParserBitFlip,
    /// Truncate the word stream at a random point before the parser.
    ParserTruncate,
    /// Flip random bits in the store's compressed block area.
    StoreBlock,
    /// Flip random bits in the store's footer index.
    StoreIndex,
    /// Flip random bits in the store's header + table section.
    StoreHeader,
    /// Flip random bits in the store's fixed trailer.
    StoreTrailer,
    /// Truncate the encoded store (a short read).
    StoreShortRead,
    /// Flip random bits inside one v4 block's column sections (must be
    /// detected by the column-level encoded CRC or the decoded-words
    /// CRC — on every read path, the projected one included).
    StoreColumn,
    /// Flip random bits in the v4 index's ASID zonemaps. The mask is
    /// pruning metadata — a cleared live bit would silently skip
    /// blocks with matching words — so it sits under the metadata CRC
    /// and every flip must be detected before the index is trusted.
    StoreZonemap,
    /// Stall pipeline chunks at stage boundaries (harmless by
    /// contract: stalls may only cost throughput).
    StreamStall,
    /// Drop pipeline chunks (must be detected as lost chunks).
    StreamDrop,
    /// Stall one of two decode workers so chunks finish out of order
    /// (harmless by contract: the parse stage reorders by sequence).
    StreamReorder,
    /// Stall farm workers (harmless by contract).
    FarmStall,
    /// Drop farm items on one worker (must be detected as a desync).
    FarmDrop,
    /// Flip one bit in an encoded `wrl-serve` response frame right
    /// before the socket write (must surface as a typed client
    /// error — the frame CRC detects any single-bit damage).
    WireCorrupt,
    /// Sever the connection partway through writing a response (must
    /// surface as a typed truncation error, and the server must keep
    /// answering other clients).
    WireDrop,
    /// Deliver a response as a short-write storm — a bounded number
    /// of bytes per writability event (harmless by contract: the
    /// frame must still arrive bit-identical, only slower).
    WirePartial,
    /// Pause mid-way through writing a response frame for a bounded
    /// number of reactor ticks (harmless by contract: the stall must
    /// stay under both sides' stall budgets and the frame must still
    /// arrive bit-identical).
    WireStall,
    /// Attack a live-tail subscriber mid-push: stall a pushed `EVENT`
    /// frame within budget (harmless: the tail still arrives
    /// bit-identical), sever it mid-frame (detected: a typed client
    /// error), or walk the subscriber away without reading (harmless:
    /// the server evicts or reaps it and keeps serving others) —
    /// never a wrong or reordered tail.
    WireSubStall,
    /// Kill a shard node mid-query behind a fabric coordinator. With
    /// a replica listed the failover must absorb the loss — the
    /// merged answer stays bit-identical with no duplicated or
    /// dropped rows; without one the client must see the typed
    /// `unavailable` error, never a partial answer.
    FabricNodeLoss,
    /// Flip random bits in an encoded shard manifest before the
    /// coordinator trusts it (must be detected by the manifest CRC —
    /// scatter plans built from damaged pruning proofs would silently
    /// drop rows).
    FabricScatter,
    /// Fail one analysis sink mid-pass inside a composed
    /// `wrl-tracer` stack (must surface as a typed `SinkError` on
    /// that slot, never panic, and never perturb the sibling sinks'
    /// reports — they stay bit-identical to an unfaulted pass).
    TracerSink,
}

/// Every site, in campaign round-robin order.
pub const ALL_SITES: [FaultSite; 22] = [
    FaultSite::ParserBitFlip,
    FaultSite::ParserTruncate,
    FaultSite::StoreBlock,
    FaultSite::StoreIndex,
    FaultSite::StoreHeader,
    FaultSite::StoreTrailer,
    FaultSite::StoreShortRead,
    FaultSite::StoreColumn,
    FaultSite::StoreZonemap,
    FaultSite::StreamStall,
    FaultSite::StreamDrop,
    FaultSite::StreamReorder,
    FaultSite::FarmStall,
    FaultSite::FarmDrop,
    FaultSite::WireCorrupt,
    FaultSite::WireDrop,
    FaultSite::WirePartial,
    FaultSite::WireStall,
    FaultSite::WireSubStall,
    FaultSite::FabricNodeLoss,
    FaultSite::FabricScatter,
    FaultSite::TracerSink,
];

impl FaultSite {
    /// The stable spec name (`Display`/`FromStr` use it).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ParserBitFlip => "parser.bitflip",
            FaultSite::ParserTruncate => "parser.truncate",
            FaultSite::StoreBlock => "store.block",
            FaultSite::StoreIndex => "store.index",
            FaultSite::StoreHeader => "store.header",
            FaultSite::StoreTrailer => "store.trailer",
            FaultSite::StoreShortRead => "store.shortread",
            FaultSite::StoreColumn => "store.column",
            FaultSite::StoreZonemap => "store.zonemap",
            FaultSite::StreamStall => "stream.stall",
            FaultSite::StreamDrop => "stream.drop",
            FaultSite::StreamReorder => "stream.reorder",
            FaultSite::FarmStall => "farm.stall",
            FaultSite::FarmDrop => "farm.drop",
            FaultSite::WireCorrupt => "wire.corrupt",
            FaultSite::WireDrop => "wire.drop",
            FaultSite::WirePartial => "wire.partial",
            FaultSite::WireStall => "wire.stall",
            FaultSite::WireSubStall => "wire.sub_stall",
            FaultSite::FabricNodeLoss => "fabric.node_loss",
            FaultSite::FabricScatter => "fabric.scatter",
            FaultSite::TracerSink => "tracer.sink",
        }
    }

    /// Parses a spec name back to a site.
    pub fn parse(s: &str) -> Option<FaultSite> {
        ALL_SITES.into_iter().find(|site| site.name() == s)
    }

    /// The layer this site attacks.
    pub fn layer(self) -> Layer {
        match self {
            FaultSite::ParserBitFlip | FaultSite::ParserTruncate => Layer::Parser,
            FaultSite::StoreBlock
            | FaultSite::StoreIndex
            | FaultSite::StoreHeader
            | FaultSite::StoreTrailer
            | FaultSite::StoreShortRead
            | FaultSite::StoreColumn
            | FaultSite::StoreZonemap => Layer::Store,
            FaultSite::StreamStall
            | FaultSite::StreamDrop
            | FaultSite::StreamReorder
            | FaultSite::FarmStall
            | FaultSite::FarmDrop => Layer::Farm,
            FaultSite::WireCorrupt
            | FaultSite::WireDrop
            | FaultSite::WirePartial
            | FaultSite::WireStall
            | FaultSite::WireSubStall => Layer::Wire,
            FaultSite::FabricNodeLoss | FaultSite::FabricScatter => Layer::Fabric,
            FaultSite::TracerSink => Layer::Tracer,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One replayable fault: a site, a seed selecting the exact bits or
/// chunks attacked, and an intensity scaling how many.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the injection's [`crate::SplitMix64`].
    pub seed: u64,
    /// Where the fault strikes.
    pub site: FaultSite,
    /// How many corruptions (bit flips, dropped items, stall events)
    /// the injector aims for; clamped to ≥ 1.
    pub intensity: u32,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}:{}", self.site, self.seed, self.intensity)
    }
}

/// A plan spec that failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BadPlanSpec(pub String);

impl fmt::Display for BadPlanSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault-plan spec {:?} (want site:seed:intensity)",
            self.0
        )
    }
}

impl std::error::Error for BadPlanSpec {}

impl FromStr for FaultPlan {
    type Err = BadPlanSpec;

    /// Parses `site:seed:intensity`; the seed accepts decimal or
    /// `0x`-prefixed hex (the `Display` form).
    fn from_str(s: &str) -> Result<FaultPlan, BadPlanSpec> {
        let bad = || BadPlanSpec(s.to_string());
        let mut it = s.split(':');
        let site = FaultSite::parse(it.next().ok_or_else(bad)?).ok_or_else(bad)?;
        let seed_s = it.next().ok_or_else(bad)?;
        let seed = match seed_s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => seed_s.parse(),
        }
        .map_err(|_| bad())?;
        let intensity = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if it.next().is_some() {
            return Err(bad());
        }
        Ok(FaultPlan {
            seed,
            site,
            intensity,
        })
    }
}

/// A deterministic campaign: `n` plans cycling round-robin through
/// every site, with per-plan seeds and intensities drawn from
/// `base_seed`. Campaign (base_seed, n) is the whole spec — the same
/// pair replays the same faults anywhere.
pub fn campaign(base_seed: u64, n: usize) -> Vec<FaultPlan> {
    let mut rng = crate::SplitMix64::new(base_seed);
    (0..n)
        .map(|i| FaultPlan {
            seed: rng.next_u64(),
            site: ALL_SITES[i % ALL_SITES.len()],
            intensity: 1 + rng.below(8) as u32,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_for_every_site() {
        for site in ALL_SITES {
            let plan = FaultPlan {
                seed: 0xdead_beef_cafe_f00d,
                site,
                intensity: 5,
            };
            let spec = plan.to_string();
            assert_eq!(spec.parse::<FaultPlan>().unwrap(), plan, "{spec}");
        }
    }

    #[test]
    fn decimal_seeds_parse_too() {
        let p: FaultPlan = "store.block:12345:2".parse().unwrap();
        assert_eq!(p.seed, 12345);
        assert_eq!(p.site, FaultSite::StoreBlock);
    }

    #[test]
    fn junk_specs_are_rejected() {
        for bad in [
            "",
            "store.block",
            "store.block:5",
            "nowhere:1:1",
            "store.block:xyz:1",
            "store.block:1:1:extra",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn campaigns_are_deterministic_and_cover_all_sites() {
        let a = campaign(1, 440);
        assert_eq!(a, campaign(1, 440));
        assert_ne!(a, campaign(2, 440));
        for site in ALL_SITES {
            let hits = a.iter().filter(|p| p.site == site).count();
            assert_eq!(hits, 440 / ALL_SITES.len(), "{site}");
        }
        assert!(a.iter().all(|p| p.intensity >= 1 && p.intensity <= 8));
    }
}
