//! The campaign's deterministic random source.
//!
//! Replayability is the whole point of a [`crate::FaultPlan`]: the
//! same seed must inject the same corruption on every machine, every
//! run, forever. So the generator is a fixed, dependency-free
//! SplitMix64 — a 64-bit state advanced by a Weyl constant and
//! finalised with two xor-shift multiplies — rather than anything
//! platform- or version-dependent.

/// A deterministic 64-bit generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Equal seeds yield equal
    /// sequences on every platform.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A value uniform in `0..n` (`n` > 0). Uses a widening multiply;
    /// the bias for any n that fits in practice is immaterial for
    /// fault placement.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_stays_in_range_and_covers_it() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws must cover 0..10");
    }
}
