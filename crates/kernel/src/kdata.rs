//! Kernel data-structure layout (offsets shared between the assembly
//! generators and the host-side loader, which pokes initial values
//! directly into the kernel data segment).

/// Process-table entry field offsets (bytes).
pub mod proc_off {
    /// 0 free, 1 ready, 2 running, 3 blocked on disk, 4 zombie,
    /// 5 blocked in IPC call, 6 server blocked in receive.
    pub const STATE: i16 = 0;
    /// Address-space identifier.
    pub const ASID: i16 = 4;
    /// CP0 Context value (kseg2 page-table base).
    pub const CONTEXT: i16 = 8;
    /// Saved exception PC.
    pub const EPC: i16 = 12;
    /// Saved HI.
    pub const HI: i16 = 16;
    /// Saved LO.
    pub const LO: i16 = 20;
    /// Nonzero if the process is traced.
    pub const TRACED: i16 = 24;
    /// Disk block this process waits on (-1 = none).
    pub const WAIT_BLOCK: i16 = 28;
    /// Nonzero if this is the Mach UNIX server.
    pub const IS_SERVER: i16 = 32;
    /// Current program break.
    pub const BRK: i16 = 36;
    /// Nonzero until the first dispatch flushes the I-cache over the
    /// process text.
    pub const NEED_IFLUSH: i16 = 40;
    /// Text start (virtual) for the I-cache flush.
    pub const TEXT_START: i16 = 44;
    /// Text end (virtual).
    pub const TEXT_END: i16 = 48;
    /// IPC: index of the client this server must reply to (-1 none).
    pub const REPLY_TO: i16 = 52;
    /// Exit code (valid in zombie state).
    pub const EXIT_CODE: i16 = 56;
    /// Physical address of this process's mailbox frame (Mach).
    pub const MAILBOX_PHYS: i16 = 60;
    /// IPC: user buffer a reply's data lands in (Mach read calls).
    pub const IPC_BUF: i16 = 64;
    /// Saved general registers r0..r31 (r0 slot unused).
    pub const REGS: i16 = 68;
    /// Start of the trace runtime's text in this binary (traced
    /// builds): the kernel defers the per-process buffer copy when it
    /// interrupts the runtime mid-entry (§3.3's delicate handling).
    pub const RT_START: i16 = 196;
    /// End of the trace runtime's text.
    pub const RT_END: i16 = 200;
    /// Trace-context token written in CtxSwitch records. Equal to the
    /// hardware ASID for single-threaded processes; threads sharing an
    /// address space get distinct tokens so the parser can keep their
    /// partially-parsed blocks apart (§3.6).
    pub const TOKEN: i16 = 204;
    /// Size of one entry in bytes (208 = 128+64+16 for cheap indexing).
    pub const SIZE: u32 = 208;

    /// Offset of saved register `r`.
    pub const fn reg(r: u8) -> i16 {
        REGS + (r as i16) * 4
    }
}

/// Kernel exception-stack frame offsets (for nested interrupts).
pub mod frame_off {
    /// Saved exception PC.
    pub const EPC: i16 = 0;
    /// Saved HI.
    pub const HI: i16 = 4;
    /// Saved LO.
    pub const LO: i16 = 8;
    /// 1 if the interrupted context's live xregs were the *kernel's*
    /// trace registers; 0 if they belonged to a user context (a KTLB
    /// miss nested inside the UTLB refill handler); 2 for kernel
    /// xregs that need a direct return — the §3.3 "no intermediate
    /// party is available to maintain the kernel's tracing state"
    /// problem.
    pub const XK: i16 = 24;
    /// Saved trace-bookkeeping slots (SCRATCH, SCRATCH2, RA_SAVE):
    /// the interrupted kernel context may be mid-bbtrace/memtrace,
    /// and the nested handler's own trace calls reuse the same
    /// bookkeeping area — the §3.3 trace-state maintenance problem.
    pub const BK: i16 = 12;
    /// Saved general registers r0..r31.
    pub const REGS: i16 = 28;
    /// Frame size in bytes.
    pub const SIZE: u32 = 28 + 32 * 4;

    /// Offset of saved register `r`.
    pub const fn reg(r: u8) -> i16 {
        REGS + (r as i16) * 4
    }
}

/// Buffer-cache entry field offsets.
pub mod bc_off {
    /// Cached disk block number (-1 = empty).
    pub const BLOCK: i16 = 0;
    /// Physical frame address of the cached data.
    pub const FRAME: i16 = 4;
    /// Nonzero while a disk operation on this entry is in flight.
    pub const IN_FLIGHT: i16 = 8;
    /// Dirty (written, not yet on disk).
    pub const DIRTY: i16 = 12;
    /// Entry size in bytes.
    pub const SIZE: u32 = 16;
}

/// Global file-descriptor table entry offsets.
pub mod fd_off {
    /// Directory index (-1 = free).
    pub const DIR: i16 = 0;
    /// Current file offset.
    pub const OFFSET: i16 = 4;
    /// Entry size in bytes.
    pub const SIZE: u32 = 8;
    /// Number of entries.
    pub const COUNT: u32 = 16;
}

/// On-disk / in-memory directory entry offsets.
pub mod dir_off {
    /// NUL-terminated name (20 bytes).
    pub const NAME: i16 = 0;
    /// First disk block.
    pub const START: i16 = 20;
    /// Length in bytes.
    pub const LEN: i16 = 24;
    /// Entry size in bytes.
    pub const SIZE: u32 = 32;
    /// Maximum entries.
    pub const COUNT: u32 = 64;
}

/// IPC mailbox message offsets (within the mailbox page).
pub mod msg_off {
    /// Operation (syscall number).
    pub const OP: i16 = 0;
    /// First argument (fd, or unused).
    pub const A1: i16 = 4;
    /// Second argument (length).
    pub const A2: i16 = 8;
    /// Return value.
    pub const RET: i16 = 12;
    /// Inline data area.
    pub const DATA: i16 = 16;
    /// Maximum inline data bytes per message.
    pub const DATA_MAX: u32 = 4000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_regs_fit() {
        assert_eq!(proc_off::reg(31), 68 + 124);
        assert!((proc_off::reg(31) as u32) < proc_off::SIZE);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn frame_regs_fit() {
        assert_eq!(frame_off::reg(31), 28 + 124);
        assert!(frame_off::XK < frame_off::REGS);
        assert!(frame_off::BK + 12 <= frame_off::XK);
    }
}
