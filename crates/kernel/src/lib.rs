//! The W3K operating systems: an Ultrix-like monolithic kernel and a
//! Mach-like microkernel + user-level UNIX server, both written in
//! W3K assembly and instrumentable with epoxie.
//!
//! The kernels implement everything the paper's traced systems needed:
//! exception vectors with the nine-instruction UTLB refill handler,
//! nested-interrupt frames, a round-robin scheduler with an
//! idle-counted idle loop, system calls (including the added
//! `trace_ctl`), a file system with a buffer cache, disk driver and
//! read-ahead (Ultrix) or a user-level server reached by IPC (Mach),
//! and the in-kernel trace-control subsystem of §3.1/§3.3.

pub mod build;
pub mod kdata;
pub mod kdataobj;
pub mod kmain;
pub mod layout;
pub mod server;
pub mod vectors;

pub use build::{build_system, KernelConfig, ProcMeta, System, SystemRun};
pub use kmain::{KmainCfg, Variant};
