//! Kernel memory layout.
//!
//! Physical memory (64 MB in the full-system configuration):
//!
//! ```text
//! 0x0000_0000  exception vectors (UTLB refill at 0, general at 0x80)
//!              and kernel text
//! 0x0030_0000  kernel data
//! 0x0060_0000  per-process linear page tables (32 KB each, mapped
//!              into kseg2 at 2 MB-aligned Context bases)
//! 0x0080_0000  buffer-cache frames
//! 0x0100_0000  in-kernel trace buffer (configurable size)
//! 0x0200_0000  user page-frame pool
//! ```
//!
//! The in-kernel trace buffer "is allocated statically at boot time
//! and is never seen by the kernel memory management subsystem"
//! (§3.1); on the host side it is read directly out of physical
//! memory, the moral equivalent of the paper's `/dev/kmem` special
//! file (Ultrix) or of mapping the buffer (Mach).

/// Maximum number of processes.
pub const MAX_PROCS: usize = 6;

/// kseg0 virtual base (identity minus 0x8000_0000).
pub const KSEG0: u32 = 0x8000_0000;
/// kseg2 virtual base (mapped kernel segment).
pub const KSEG2: u32 = 0xc000_0000;

/// Kernel text base: the very start of kseg0 so the first object's
/// offset 0x000 is the UTLB refill vector and 0x080 the general
/// vector.
pub const KTEXT_BASE: u32 = 0x8000_0000;
/// Kernel data base.
pub const KDATA_BASE: u32 = 0x8030_0000;

/// Physical base of the per-process page-table pool.
pub const PT_POOL_PHYS: u32 = 0x0060_0000;
/// Bytes of linear page table per process (covers user vaddrs below
/// 32 MB: 8192 PTEs).
pub const PT_BYTES: u32 = 32 * 1024;
/// kseg2 virtual base of process `i`'s page table: Context's PTE-base
/// field is bits 31:21, so each table gets its own 2 MB-aligned slot.
pub const fn pt_kseg2(i: usize) -> u32 {
    KSEG2 + (i as u32) * 0x0020_0000
}
/// Physical address of process `i`'s page table.
pub const fn pt_phys(i: usize) -> u32 {
    PT_POOL_PHYS + (i as u32) * PT_BYTES
}

/// Physical base of the buffer-cache frames.
pub const BCACHE_PHYS: u32 = 0x0080_0000;
/// Number of buffer-cache entries.
pub const BCACHE_ENTRIES: u32 = 16;

/// Physical base of the per-thread trace-frame pool: one 17-frame
/// set (bookkeeping page + 16 buffer pages) per spawnable thread,
/// staged by the loader and handed out by `spawn` (§3.6: "independent
/// trace pages are allocated for each thread").
pub const THREAD_POOL_PHYS: u32 = 0x00a0_0000;
/// Frames per thread trace set.
pub const THREAD_SET_FRAMES: u32 = 17;

/// Physical base of the in-kernel trace buffer.
pub const KTRACE_PHYS: u32 = 0x0100_0000;
/// kseg0 address of the in-kernel trace buffer.
pub const KTRACE_BUF: u32 = KSEG0 + KTRACE_PHYS;
/// Default in-kernel trace buffer size in bytes (configurable; the
/// paper's production system used 64 MB).
pub const KTRACE_BYTES_DEFAULT: u32 = 4 << 20;
/// Slack below the hard end left for reaching a safe point after the
/// soft limit trips (§3.3).
pub const KTRACE_SLACK: u32 = 256 * 1024;

/// Physical base of the user frame pool.
pub const UFRAME_POOL_PHYS: u32 = 0x0200_0000;
/// Frames in the user pool (32 MB).
pub const UFRAME_POOL_FRAMES: u32 = 8192;

/// Physical memory for the full-system configuration.
pub const MEM_BYTES: u32 = 64 << 20;

/// User-space virtual layout (see also `wrl_trace::layout::user`).
pub mod uvm {
    /// Per-process heap base (sbrk arena), above data/bss.
    pub const HEAP_BASE: u32 = 0x0140_0000;
    /// Heap ceiling.
    pub const HEAP_MAX: u32 = 0x01c0_0000;
    /// IPC mailbox page, mapped per process (Mach variant).
    pub const MAILBOX: u32 = 0x01d0_0000;
}

/// PTE encoding helpers (EntryLo format).
pub mod pte {
    /// Valid bit.
    pub const V: u32 = 1 << 9;
    /// Writable ("dirty") bit.
    pub const D: u32 = 1 << 10;
    /// Builds a PTE for a physical frame number.
    pub const fn make(pfn: u32) -> u32 {
        (pfn << 12) | V | D
    }
}

/// Clock interrupt interval in cycles for the untraced system
/// (25 MHz / 250 Hz).
pub const CLOCK_INTERVAL: u32 = 100_000;
/// The time-dilation compensation (§4.1): the traced system's clock
/// interrupts at 1/Nth the rate. The paper used 15 for its
/// instrumentation; our modified-epoxie slowdown is ~12x, so the
/// matching divisor is 12.
pub const CLOCK_DILATION: u32 = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_tables_fit_before_bcache() {
        assert!(pt_phys(MAX_PROCS - 1) + PT_BYTES <= BCACHE_PHYS);
    }

    #[test]
    fn kseg2_bases_are_2mb_aligned_and_distinct() {
        for i in 0..MAX_PROCS {
            assert_eq!(pt_kseg2(i) & 0x001f_ffff, 0);
            for j in 0..i {
                assert_ne!(pt_kseg2(i), pt_kseg2(j));
            }
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn regions_do_not_overlap() {
        assert!(KDATA_BASE - KSEG0 >= 0x0010_0000);
        assert!(BCACHE_PHYS + BCACHE_ENTRIES * 4096 <= THREAD_POOL_PHYS);
        assert!(THREAD_POOL_PHYS + (MAX_PROCS as u32) * THREAD_SET_FRAMES * 4096 <= KTRACE_PHYS);
        assert!(KTRACE_PHYS + KTRACE_BYTES_DEFAULT <= UFRAME_POOL_PHYS);
        assert!(UFRAME_POOL_PHYS + UFRAME_POOL_FRAMES * 4096 <= MEM_BYTES);
    }

    #[test]
    fn pte_encoding_round_trips() {
        let p = pte::make(0x2345);
        assert_eq!(p >> 12, 0x2345);
        assert!(p & pte::V != 0);
        assert!(p & pte::D != 0);
    }
}
