//! Building and booting a complete traced (or untraced) system.
//!
//! The host side plays three roles the paper's infrastructure also
//! needed: the *build system* (assembling and epoxie-instrumenting
//! the kernel and the workloads), the *boot loader* (placing segments
//! into page frames chosen by the page-mapping policy, writing page
//! tables and the process table), and the *analysis program* (drained
//! from the in-kernel buffer at the trace-analysis doorbell — the
//! `/dev/kmem` read of §3.1, or Mach's buffer mapping).

use std::collections::HashMap;
use std::sync::Arc;

use wrl_epoxie::{build_traced, FullPolicy, Mode};
use wrl_isa::link::{link, Layout, Linked};
use wrl_isa::Object;
use wrl_isa::Width;
use wrl_machine::{CacheCfg, Config as MachineConfig, Machine, StopEvent};
use wrl_memsim::pagemap::{PageMap, Policy, PAGE_SIZE};
use wrl_memsim::sim::SpaceKey;
use wrl_trace::bbinfo::{BbInfo, BbTable, BbTraceFlags, MemOp};
use wrl_trace::layout::{bk, user as utrace};
use wrl_workloads::Workload;

use crate::kdata::{dir_off, proc_off};
use crate::kdataobj::{self, KdataCfg};
use crate::kmain::{self, KmainCfg, Variant};
use crate::layout::{self, pte, uvm};
use crate::server;
use crate::vectors;

/// Full-system build configuration.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// OS personality.
    pub variant: Variant,
    /// Instrument kernel and workloads with epoxie.
    pub traced: bool,
    /// Instrumentation mode.
    pub mode: Mode,
    /// In-kernel trace buffer size.
    pub ktrace_bytes: u32,
    /// Clock divisor applied when traced (§4.1's factor of fifteen).
    pub clock_divisor: u32,
    /// Page-mapping policy.
    pub page_policy: Policy,
    /// Conservative (write-through) file writes.
    pub conservative_write: bool,
    /// Plant the §4.4 I-cache flush bug.
    pub icache_flush_bug: bool,
    /// Physical memory size.
    pub mem_bytes: u32,
    /// Disk operation latency in cycles.
    pub disk_latency: u64,
}

impl KernelConfig {
    /// Ultrix-like system, not traced (the "measured" side).
    pub fn ultrix() -> KernelConfig {
        KernelConfig {
            variant: Variant::Ultrix,
            traced: false,
            mode: Mode::Modified,
            ktrace_bytes: layout::KTRACE_BYTES_DEFAULT,
            clock_divisor: 1,
            page_policy: Policy::FirstFree { base_pfn: 0x2000 },
            conservative_write: true,
            icache_flush_bug: false,
            mem_bytes: layout::MEM_BYTES,
            disk_latency: 60_000,
        }
    }

    /// Mach-like system, not traced.
    pub fn mach() -> KernelConfig {
        KernelConfig {
            variant: Variant::Mach,
            page_policy: Policy::Random {
                seed: 0x3a11,
                base_pfn: 0x2000,
                frames: layout::UFRAME_POOL_FRAMES,
            },
            conservative_write: false,
            ..KernelConfig::ultrix()
        }
    }

    /// The traced version of this configuration (instrumented
    /// binaries, clock at 1/15th rate).
    pub fn traced(mut self) -> KernelConfig {
        self.traced = true;
        self.clock_divisor = layout::CLOCK_DILATION;
        self
    }
}

/// Metadata about one loaded process.
#[derive(Clone, Debug)]
pub struct ProcMeta {
    /// Workload (or "uxserver") name.
    pub name: String,
    /// ASID (= process index + 1).
    pub asid: u8,
    /// Basic-block table for the traced binary, if traced.
    pub table: Option<Arc<BbTable>>,
    /// The original (uninstrumented) linked binary.
    pub orig: Linked,
}

/// A built system, ready to run.
pub struct System {
    /// The loader's page map — the "page-map extracted from the
    /// running system" of §4.2, including the kseg2 page-table pages
    /// under [`SpaceKey::Kernel`].
    pub pagemap: PageMap,
    /// The machine, loaded and pointed at the kernel entry.
    pub machine: Machine,
    /// The kernel basic-block table (traced builds).
    pub kernel_table: Option<Arc<BbTable>>,
    /// The original (uninstrumented) kernel link.
    pub kernel_orig: Linked,
    /// The kernel link actually running.
    pub kernel_exe: Linked,
    /// Loaded processes in index order.
    pub procs: Vec<ProcMeta>,
    /// The configuration used.
    pub cfg: KernelConfig,
    /// Idle-loop address range in the *running* kernel (for the
    /// machine's measured idle counters).
    pub idle_range: (u32, u32),
}

/// Result of running a system to completion.
#[derive(Debug, Default)]
pub struct SystemRun {
    /// Exit code from the HALT device.
    pub exit_code: u32,
    /// Trace words drained at analysis doorbells, in order.
    pub trace_words: Vec<u32>,
    /// Number of analysis phases (doorbells).
    pub drains: u64,
    /// Trace words drained. Equals `trace_words.len()` after
    /// [`System::run_with`]; after [`System::run_streaming`] the words
    /// were handed to the drain callback without being retained, so
    /// this count is the only record of them here.
    pub words_drained: u64,
    /// Console output.
    pub console: Vec<u8>,
}

fn kernel_objects(cfg: &KernelConfig) -> Vec<Object> {
    let kd = KdataCfg {
        trace_on: cfg.traced,
        ktrace_bytes: cfg.ktrace_bytes,
        clock_interval: layout::CLOCK_INTERVAL * cfg.clock_divisor,
    };
    vec![
        vectors::object(),
        kmain::object(&KmainCfg {
            variant: cfg.variant,
            conservative_write: cfg.conservative_write,
            icache_flush_bug: cfg.icache_flush_bug,
        }),
        kdataobj::object(&kd),
    ]
}

fn kernel_layout() -> Layout {
    Layout {
        text_base: layout::KTEXT_BASE,
        data_base: layout::KDATA_BASE,
    }
}

/// The hand-traced console-loop record (§3.5): registered manually,
/// exactly as the paper's hand-instrumented routines were.
fn hand_records(instr: &Linked, orig: &Linked, table: &mut BbTable) {
    let id = instr.exe.sym("k_cons_record").expect("k_cons_record");
    let orig_va = orig.exe.sym("k_cons_record").expect("k_cons_record");
    table.insert(
        id,
        BbInfo {
            orig_vaddr: orig_va,
            n_insts: 2,
            ops: vec![
                MemOp {
                    index: 0,
                    store: false,
                    width: Width::Byte,
                },
                MemOp {
                    index: 1,
                    store: true,
                    width: Width::Word,
                },
            ],
            flags: BbTraceFlags {
                idle_start: false,
                idle_stop: false,
                hand_traced: true,
            },
        },
    );
}

struct LoadedProgram {
    exe: Linked,
    orig: Linked,
    table: Option<Arc<BbTable>>,
}

fn build_user(objects: &[Object], cfg: &KernelConfig) -> LoadedProgram {
    if cfg.traced {
        let tp = build_traced(
            objects,
            Layout::user(),
            "__start",
            cfg.mode,
            FullPolicy::Syscall,
        )
        .expect("user program instruments");
        LoadedProgram {
            exe: tp.instr,
            orig: tp.orig,
            table: Some(Arc::new(tp.table)),
        }
    } else {
        let l = link(objects, Layout::user(), "__start").expect("user program links");
        LoadedProgram {
            exe: l.clone(),
            orig: l,
            table: None,
        }
    }
}

/// Builds a complete system running the given workloads.
///
/// Under Mach a UNIX server process is added automatically.
pub fn build_system(cfg: &KernelConfig, workloads: &[&Workload]) -> System {
    assert!(!workloads.is_empty(), "need at least one workload");
    assert!(
        !cfg.traced || cfg.mode == Mode::Modified,
        "full-system tracing requires Modified mode: the Original \
         (inline) scheme's store/bump pairs are not interrupt-safe \
         in kernel context (see DESIGN.md)"
    );
    assert!(
        layout::KTRACE_PHYS + cfg.ktrace_bytes <= layout::UFRAME_POOL_PHYS,
        "in-kernel trace buffer ({} MB) would overlap the user frame pool;          the static layout allows at most {} MB",
        cfg.ktrace_bytes >> 20,
        (layout::UFRAME_POOL_PHYS - layout::KTRACE_PHYS) >> 20
    );
    let kobjs = kernel_objects(cfg);

    let (kernel_exe, kernel_orig, kernel_table) = if cfg.traced {
        let tp = build_traced(
            &kobjs,
            kernel_layout(),
            "kboot",
            cfg.mode,
            FullPolicy::KernelFlag,
        )
        .expect("kernel instruments");
        let mut table = tp.table;
        hand_records(&tp.instr, &tp.orig, &mut table);
        (tp.instr, tp.orig, Some(Arc::new(table)))
    } else {
        let l = link(&kobjs, kernel_layout(), "kboot").expect("kernel links");
        (l.clone(), l, None)
    };

    // User programs.
    struct Staged {
        name: String,
        prog: LoadedProgram,
        files: Vec<(String, Vec<u8>)>,
    }
    let mut programs: Vec<Staged> = Vec::new();
    for w in workloads {
        programs.push(Staged {
            name: w.name.to_string(),
            prog: build_user(&w.objects, cfg),
            files: w.files.clone(),
        });
    }
    let server_idx = if cfg.variant == Variant::Mach {
        let objs = vec![
            server::object(),
            wrl_workloads::support::crt0(),
            wrl_workloads::support::libw3k(),
        ];
        programs.push(Staged {
            name: "uxserver".to_string(),
            prog: build_user(&objs, cfg),
            files: vec![],
        });
        Some(programs.len() - 1)
    } else {
        None
    };
    assert!(programs.len() <= layout::MAX_PROCS);

    // ---------------- Disk image and directory -------------------
    let mut disk = vec![0u8; 4 * 4096]; // directory blocks reserved
    let mut dir_entries: Vec<(String, u32, u32)> = Vec::new();
    for staged in &programs {
        for (name, content) in &staged.files {
            let start_block = (disk.len() / 4096) as u32;
            disk.extend_from_slice(content);
            // Pad to a block boundary.
            let pad = (4096 - disk.len() % 4096) % 4096;
            disk.resize(disk.len() + pad, 0);
            dir_entries.push((name.clone(), start_block, content.len() as u32));
        }
    }
    let next_free_block = (disk.len() / 4096) as u32;
    // Leave room for created output files.
    disk.resize(disk.len() + 64 * 4096 * 8, 0);

    // ---------------- Machine ------------------------------------
    let mut m = Machine::new(
        MachineConfig {
            mem_bytes: cfg.mem_bytes,
            disk_latency: cfg.disk_latency,
            bare: false,
            icache: CacheCfg::dec5000_icache(),
            dcache: CacheCfg::dec5000_dcache(),
            ..MachineConfig::default()
        },
        disk,
    );
    m.load_executable(&kernel_exe.exe);

    // Poke helpers.
    let sym = |name: &str| -> u32 {
        kernel_exe
            .exe
            .sym(name)
            .unwrap_or_else(|| panic!("kernel symbol {name}"))
    };
    let poke = |m: &mut Machine, vaddr: u32, v: u32| {
        m.mem.write_word(vaddr - layout::KSEG0, v);
    };

    // Directory into kernel data.
    let dir_base = sym("k_fs_dir");
    for (i, (name, start, len)) in dir_entries.iter().enumerate() {
        let e = dir_base + (i as u32) * dir_off::SIZE;
        for (k, b) in name.as_bytes().iter().enumerate().take(19) {
            m.mem
                .write_byte(e - layout::KSEG0 + dir_off::NAME as u32 + k as u32, *b);
        }
        poke(&mut m, e + dir_off::START as u32, *start);
        poke(&mut m, e + dir_off::LEN as u32, *len);
    }
    poke(&mut m, sym("k_fs_next_block"), next_free_block);
    poke(
        &mut m,
        sym("k_nlive"),
        (programs.len() - usize::from(server_idx.is_some())) as u32,
    );
    if let Some(si) = server_idx {
        poke(&mut m, sym("k_server_idx"), si as u32);
    }

    // ---------------- Processes ----------------------------------
    let mut pagemap = PageMap::new(cfg.page_policy.clone());
    let mut kseg2_entries: Vec<((SpaceKey, u32), u32)> = Vec::new();
    let ktlb_dir = sym("k_ktlb_dir");
    let proc_base_sym = sym("k_proc");
    let mut procs = Vec::new();

    for (i, staged) in programs.iter().enumerate() {
        let (name, prog) = (&staged.name, &staged.prog);
        let asid = (i + 1) as u8;
        let key = SpaceKey::User(asid);
        let exe = &prog.exe.exe;
        let pt_phys = layout::pt_phys(i);

        // Map a virtual range eagerly, returning nothing; segments are
        // copied separately through the map.
        let mut map_range = |m: &mut Machine, lo: u32, hi: u32| {
            let mut va = lo & !(PAGE_SIZE - 1);
            while va < hi {
                let vpn = va >> 12;
                let pfn = pagemap.frame(key, vpn);
                m.mem.write_word(pt_phys + vpn * 4, pte::make(pfn));
                va += PAGE_SIZE;
            }
        };
        let text_end = exe.text_end();
        map_range(&mut m, exe.text_base, text_end);
        map_range(&mut m, exe.data_base, exe.brk() + PAGE_SIZE);
        map_range(&mut m, uvm::HEAP_BASE, uvm::HEAP_MAX);
        if cfg.traced {
            map_range(
                &mut m,
                utrace::BOOKKEEPING,
                utrace::TRACE_BUF + utrace::TRACE_BUF_BYTES,
            );
        }
        if cfg.variant == Variant::Mach {
            map_range(&mut m, uvm::MAILBOX, uvm::MAILBOX + PAGE_SIZE);
        }

        // Copy segments through the page map.
        let mut copy_out = |m: &mut Machine, vaddr: u32, bytes: &[u8]| {
            for (k, &b) in bytes.iter().enumerate() {
                let va = vaddr + k as u32;
                let pfn = pagemap.frame(key, va >> 12);
                m.mem.write_byte((pfn << 12) | (va & 0xfff), b);
            }
        };
        let mut text_bytes = Vec::with_capacity(exe.text.len() * 4);
        for w in &exe.text {
            text_bytes.extend_from_slice(&w.to_le_bytes());
        }
        copy_out(&mut m, exe.text_base, &text_bytes);
        copy_out(&mut m, exe.data_base, &exe.data);

        // Trace bookkeeping page content.
        if cfg.traced {
            let buf_end = utrace::TRACE_BUF + utrace::TRACE_BUF_BYTES;
            let bkp = pagemap.frame(key, utrace::BOOKKEEPING >> 12) << 12;
            m.mem.write_word(bkp + bk::BUF_END as u32, buf_end - 512);
            m.mem.write_word(bkp + bk::HARD_END as u32, buf_end);
        }

        // KTLB directory entries for this process's page-table pages,
        // mirrored into the extracted page map for the simulator.
        for p in 0..(layout::PT_BYTES / PAGE_SIZE) {
            let pte_page_pfn = (pt_phys >> 12) + p;
            let kseg2_vpn = (layout::pt_kseg2(i) >> 12) + p;
            kseg2_entries.push(((SpaceKey::Kernel, kseg2_vpn), pte_page_pfn));
            let slot = (i as u32) * 512 + p;
            // Global bit set: kseg2 mappings are ASID-independent.
            poke(
                &mut m,
                ktlb_dir + slot * 4,
                pte::make(pte_page_pfn) | (1 << 8),
            );
        }

        // Process-table entry.
        let pb = proc_base_sym + (i as u32) * proc_off::SIZE;
        poke(&mut m, pb + proc_off::STATE as u32, 1); // ready
        poke(&mut m, pb + proc_off::ASID as u32, asid as u32);
        poke(&mut m, pb + proc_off::CONTEXT as u32, layout::pt_kseg2(i));
        poke(&mut m, pb + proc_off::EPC as u32, exe.entry);
        poke(&mut m, pb + proc_off::TRACED as u32, u32::from(cfg.traced));
        poke(&mut m, pb + proc_off::WAIT_BLOCK as u32, -1i32 as u32);
        poke(
            &mut m,
            pb + proc_off::IS_SERVER as u32,
            u32::from(Some(i) == server_idx),
        );
        poke(&mut m, pb + proc_off::BRK as u32, uvm::HEAP_BASE);
        poke(&mut m, pb + proc_off::NEED_IFLUSH as u32, 1);
        poke(&mut m, pb + proc_off::TEXT_START as u32, exe.text_base);
        poke(&mut m, pb + proc_off::TEXT_END as u32, text_end);
        poke(&mut m, pb + proc_off::REPLY_TO as u32, -1i32 as u32);
        poke(&mut m, pb + proc_off::TOKEN as u32, asid as u32);
        if cfg.variant == Variant::Mach {
            let mb = pagemap.frame(key, uvm::MAILBOX >> 12) << 12;
            poke(&mut m, pb + proc_off::MAILBOX_PHYS as u32, mb);
        }
        if cfg.traced {
            poke(
                &mut m,
                pb + proc_off::reg(wrl_trace::layout::XREG1.0) as u32,
                utrace::TRACE_BUF,
            );
            poke(
                &mut m,
                pb + proc_off::reg(wrl_trace::layout::XREG3.0) as u32,
                utrace::BOOKKEEPING,
            );
            // The trace runtime is the last object in the link; the
            // kernel defers buffer copies for interrupts landing here.
            let rt_start = prog
                .exe
                .placements
                .last()
                .expect("runtime placement")
                .text_addr;
            poke(&mut m, pb + proc_off::RT_START as u32, rt_start);
            poke(&mut m, pb + proc_off::RT_END as u32, text_end);
            // This context's trace-page PTEs, for the per-thread
            // remap at dispatch (§3.6).
            let tpte = sym("k_tpte") + (i as u32) * 17 * 4;
            for (k, vpn) in ((utrace::BOOKKEEPING >> 12)
                ..=(utrace::TRACE_BUF + utrace::TRACE_BUF_BYTES - 1) >> 12)
                .enumerate()
            {
                let pfn = pagemap.frame(key, vpn);
                poke(&mut m, tpte + (k as u32) * 4, pte::make(pfn));
            }
        }

        // Mach: the server needs the directory too.
        if Some(i) == server_idx {
            let sv_dir = prog.exe.exe.sym("sv_dir").expect("server directory symbol");
            for (k, (fname, start, len)) in dir_entries.iter().enumerate() {
                let e = sv_dir + (k as u32) * dir_off::SIZE;
                for (b_i, b) in fname.as_bytes().iter().enumerate().take(19) {
                    let va = e + dir_off::NAME as u32 + b_i as u32;
                    let pfn = pagemap.frame(key, va >> 12);
                    m.mem.write_byte((pfn << 12) | (va & 0xfff), *b);
                }
                let mut w = |va: u32, v: u32| {
                    let pfn = pagemap.frame(key, va >> 12);
                    m.mem.write_word((pfn << 12) | (va & 0xfff), v);
                };
                w(e + dir_off::START as u32, *start);
                w(e + dir_off::LEN as u32, *len);
            }
            let nb = prog.exe.exe.sym("sv_next_block").expect("sv_next_block");
            let pfn = pagemap.frame(key, nb >> 12);
            m.mem
                .write_word((pfn << 12) | (nb & 0xfff), next_free_block);
        }

        procs.push(ProcMeta {
            name: name.clone(),
            asid,
            table: prog.table.clone(),
            orig: prog.orig.clone(),
        });
    }

    let idle_range = (
        kernel_exe.exe.sym("idle_loop").expect("idle_loop"),
        kernel_exe.exe.sym("idle_out").expect("idle_out"),
    );
    m.set_idle_range(Some(idle_range));
    m.set_pc(kernel_exe.exe.entry);

    for (k, v) in kseg2_entries {
        pagemap.insert(k, v);
    }
    System {
        pagemap,
        machine: m,
        kernel_table,
        kernel_orig,
        kernel_exe,
        procs,
        cfg: cfg.clone(),
        idle_range,
    }
}

/// How `run_inner` delivers each drained trace buffer.
enum Drain<'a> {
    /// Accumulate in `SystemRun::trace_words`; callback sees a slice.
    Keep(&'a mut dyn FnMut(&[u32])),
    /// Hand each buffer over by value; nothing is retained.
    Stream(&'a mut dyn FnMut(Vec<u32>)),
}

impl System {
    /// Runs the system to halt, draining the trace buffer at every
    /// analysis doorbell.
    ///
    /// # Panics
    ///
    /// Panics if the instruction budget is exhausted before halt.
    pub fn run(&mut self, max_insts: u64) -> SystemRun {
        self.run_with(max_insts, |_| {})
    }

    /// Like [`System::run`], but hands each drained buffer to
    /// `on_drain` as it is read out — the paper's actual workflow,
    /// where the analysis program consumes the in-kernel buffer while
    /// the traced processes are paused (§3.3), rather than archiving
    /// the whole trace first.
    ///
    /// # Panics
    ///
    /// Panics if the instruction budget is exhausted before halt.
    pub fn run_with(&mut self, max_insts: u64, mut on_drain: impl FnMut(&[u32])) -> SystemRun {
        self.run_inner(max_insts, &mut Drain::Keep(&mut on_drain))
    }

    /// Like [`System::run_with`], but the drained words are *not*
    /// accumulated in the returned [`SystemRun`] — each buffer is read
    /// into a fresh vector handed to `on_drain` by value. This is the
    /// producer half of the streaming pipeline: the buffer goes
    /// zero-copy into the analysis channel, and long runs never grow
    /// (and later re-walk) a whole-trace vector that exists purely to
    /// be replayed once.
    ///
    /// # Panics
    ///
    /// Panics if the instruction budget is exhausted before halt.
    pub fn run_streaming(
        &mut self,
        max_insts: u64,
        mut on_drain: impl FnMut(Vec<u32>),
    ) -> SystemRun {
        self.run_inner(max_insts, &mut Drain::Stream(&mut on_drain))
    }

    fn run_inner(&mut self, max_insts: u64, drain: &mut Drain<'_>) -> SystemRun {
        let mut out = SystemRun::default();
        let mut budget = max_insts;
        loop {
            let before = self.machine.counters.insts();
            let ev = self.machine.run(budget);
            budget = budget.saturating_sub(self.machine.counters.insts() - before);
            match ev {
                StopEvent::TraceRequest(fill) => {
                    out.drains += 1;
                    let end = fill - layout::KSEG0;
                    let n = ((end - layout::KTRACE_PHYS) / 4) as usize;
                    out.words_drained += n as u64;
                    match drain {
                        Drain::Keep(f) => {
                            let start = out.trace_words.len();
                            out.trace_words.reserve(n);
                            let mut a = layout::KTRACE_PHYS;
                            while a < end {
                                out.trace_words.push(self.machine.mem.read_word(a));
                                a += 4;
                            }
                            f(&out.trace_words[start..]);
                        }
                        Drain::Stream(f) => {
                            let mut buf = Vec::with_capacity(n);
                            let mut a = layout::KTRACE_PHYS;
                            while a < end {
                                buf.push(self.machine.mem.read_word(a));
                                a += 4;
                            }
                            f(buf);
                        }
                    }
                }
                StopEvent::Halted(code) => {
                    out.exit_code = code;
                    break;
                }
                other => panic!(
                    "system stopped unexpectedly: {other:?} at pc={:#010x} after {} insts",
                    self.machine.cpu.pc,
                    self.machine.counters.insts()
                ),
            }
            if budget == 0 {
                panic!(
                    "system budget exhausted at pc={:#010x}",
                    self.machine.cpu.pc
                );
            }
        }
        out.console = self.machine.dev.console.clone();
        out
    }

    /// Builds a trace parser wired with this system's tables,
    /// including tables for threads spawned at run time (discovered
    /// from the final process table: a thread shares its parent's
    /// binary, so it shares the parent's table under its own token).
    ///
    /// # Panics
    ///
    /// Panics when called on an untraced build.
    pub fn parser(&self) -> wrl_trace::TraceParser {
        let kt = self
            .kernel_table
            .clone()
            .expect("parser() needs a traced build");
        let mut p = wrl_trace::TraceParser::new(kt);
        for pr in &self.procs {
            if let Some(t) = &pr.table {
                p.set_user_table(pr.asid, t.clone());
            }
        }
        // Runtime-spawned threads.
        let proc_base = self.kernel_exe.exe.sym("k_proc").expect("k_proc symbol") - layout::KSEG0;
        for slot in self.procs.len()..layout::MAX_PROCS {
            let pb = proc_base + (slot as u32) * proc_off::SIZE;
            let state = self.machine.mem.read_word(pb + proc_off::STATE as u32);
            if state == 0 {
                continue;
            }
            let token = self.machine.mem.read_word(pb + proc_off::TOKEN as u32) as u8;
            let ctx = self.machine.mem.read_word(pb + proc_off::CONTEXT as u32);
            let parent = ((ctx - layout::KSEG2) / 0x0020_0000) as usize;
            if let Some(t) = self.procs.get(parent).and_then(|pr| pr.table.clone()) {
                p.set_user_table(token, t);
            }
        }
        p
    }

    /// Bundles a run's trace with this system's tables for
    /// distribution (the §3.4 "traces on tape").
    ///
    /// # Panics
    ///
    /// Panics when called on an untraced build.
    pub fn archive(&self, run: &SystemRun) -> wrl_trace::TraceArchive {
        wrl_trace::TraceArchive {
            kernel_table: (**self.kernel_table.as_ref().expect("traced build")).clone(),
            user_tables: self
                .procs
                .iter()
                .filter_map(|p| p.table.as_ref().map(|t| (p.asid, (**t).clone())))
                .collect(),
            words: run.trace_words.clone(),
        }
    }

    /// Tokens of threads spawned at run time, with their parents'
    /// ASIDs (read from the final process table).
    pub fn thread_parents(&self) -> Vec<(u8, u8)> {
        let proc_base = self.kernel_exe.exe.sym("k_proc").expect("k_proc symbol") - layout::KSEG0;
        let mut out = Vec::new();
        for slot in self.procs.len()..layout::MAX_PROCS {
            let pb = proc_base + (slot as u32) * proc_off::SIZE;
            if self.machine.mem.read_word(pb + proc_off::STATE as u32) == 0 {
                continue;
            }
            let token = self.machine.mem.read_word(pb + proc_off::TOKEN as u32) as u8;
            let asid = self.machine.mem.read_word(pb + proc_off::ASID as u32) as u8;
            out.push((token, asid));
        }
        out
    }

    /// Map of process names to ASIDs.
    pub fn asids(&self) -> HashMap<String, u8> {
        self.procs
            .iter()
            .map(|p| (p.name.clone(), p.asid))
            .collect()
    }
}
