//! The Mach UNIX server: a user-level process implementing the file
//! services (§3.6).
//!
//! "Mach 3.0 is a microkernel that implements and exports a small
//! number of low-level system services, with higher-level services
//! implemented in a user-level UNIX server." The server loops on
//! `recv`, dispatches file operations against its *user-space* buffer
//! cache and directory, reaches the disk through the kernel's raw
//! block calls, and `reply`s. Because all of this is ordinary mapped
//! user code, Mach shows far higher user-TLB miss counts than Ultrix
//! for the same workloads — the structure behind Table 3.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;
use wrl_trace::layout::{sys, user as uvm_trace};

use crate::kdata::{dir_off, fd_off, msg_off};
use crate::layout::uvm;

/// User-space cache entries.
const SV_CACHE_ENTRIES: u32 = 12;

/// Builds the server program object (linked with crt0 + libw3k).
pub fn object() -> Object {
    let mut a = Asm::new("uxserver");

    // main: allocate page-aligned cache frames, then serve forever.
    a.global_label("main");
    a.addiu(SP, SP, -16);
    a.sw(RA, 12, SP);
    // sbrk a page-aligned arena for the cache frames.
    a.li(A0, ((SV_CACHE_ENTRIES + 1) * 4096) as i32);
    a.jal("__sbrk");
    a.nop();
    a.addiu(T0, V0, 4095);
    a.srl(T0, T0, 12);
    a.sll(T0, T0, 12); // aligned frame base
    a.la(T1, "sv_frame_base");
    a.sw(T0, 0, T1);

    a.label("sv_loop");
    a.li(V0, sys::RECV as i32);
    a.syscall(0);
    // v0 = operation; the message is in our mailbox page.
    a.move_(S0, V0);
    a.li(T0, uvm::MAILBOX as i32);
    a.li(T1, sys::OPEN as i32);
    a.beq(S0, T1, "sv_open");
    a.nop();
    a.li(T1, sys::CREAT as i32);
    a.beq(S0, T1, "sv_creat");
    a.nop();
    a.li(T1, sys::READ as i32);
    a.beq(S0, T1, "sv_read");
    a.nop();
    a.li(T1, sys::WRITE as i32);
    a.beq(S0, T1, "sv_write");
    a.nop();
    a.li(T1, sys::CLOSE as i32);
    a.beq(S0, T1, "sv_close");
    a.nop();
    // Unknown: reply -1.
    a.li(A0, -1);
    a.label("sv_reply");
    a.li(V0, sys::REPLY as i32);
    a.syscall(0);
    a.b("sv_loop");
    a.nop();

    // ---- open(path in msg DATA) ----
    a.label("sv_open");
    a.addiu(A0, T0, msg_off::DATA);
    a.jal("sv_dir_find");
    a.nop();
    a.bltz(V0, "sv_openfail");
    a.nop();
    a.move_(A0, V0);
    a.jal("sv_fd_alloc");
    a.nop();
    a.move_(A0, V0);
    a.b("sv_reply");
    a.nop();
    a.label("sv_openfail");
    a.li(A0, -1);
    a.b("sv_reply");
    a.nop();

    // ---- creat(path) ----
    a.label("sv_creat");
    a.addiu(A0, T0, msg_off::DATA);
    a.jal("sv_dir_find");
    a.nop();
    a.bgez(V0, "sv_cr_have");
    a.nop();
    // Fresh directory slot.
    a.li(S1, 0);
    a.label("sv_cr_scan");
    a.li(T1, dir_off::COUNT as i32);
    a.beq(S1, T1, "sv_openfail");
    a.nop();
    a.sll(T2, S1, 5);
    a.la(T3, "sv_dir");
    a.addu(T2, T3, T2);
    a.lbu(T4, dir_off::NAME, T2);
    a.beq(T4, ZERO, "sv_cr_fresh");
    a.nop();
    a.b("sv_cr_scan");
    a.addiu(S1, S1, 1);
    a.label("sv_cr_fresh");
    // Copy the name from the message.
    a.li(T4, 0);
    a.li(T0, uvm::MAILBOX as i32);
    a.label("sv_cr_name");
    a.addu(T5, T0, T4);
    a.lbu(T6, msg_off::DATA, T5);
    a.addu(T5, T2, T4);
    a.sb(T6, dir_off::NAME, T5);
    a.beq(T6, ZERO, "sv_cr_named");
    a.nop();
    a.li(T7, 19);
    a.beq(T4, T7, "sv_cr_named");
    a.nop();
    a.b("sv_cr_name");
    a.addiu(T4, T4, 1);
    a.label("sv_cr_named");
    a.la(T5, "sv_next_block");
    a.lw(T6, 0, T5);
    a.sw(T6, dir_off::START, T2);
    a.addiu(T7, T6, 64);
    a.sw(T7, 0, T5);
    a.sw(ZERO, dir_off::LEN, T2);
    a.move_(V0, S1);
    a.label("sv_cr_have");
    a.sll(T2, V0, 5);
    a.la(T3, "sv_dir");
    a.addu(T2, T3, T2);
    a.sw(ZERO, dir_off::LEN, T2); // truncate
    a.move_(A0, V0);
    a.jal("sv_fd_alloc");
    a.nop();
    a.move_(A0, V0);
    a.b("sv_reply");
    a.nop();

    // ---- close(fd in A1) ----
    a.label("sv_close");
    a.lw(T1, msg_off::A1, T0);
    a.addiu(T1, T1, -3);
    a.bltz(T1, "sv_cl_done");
    a.nop();
    a.sll(T2, T1, 3);
    a.la(T3, "sv_fdtab");
    a.addu(T2, T3, T2);
    a.li(T4, -1);
    a.sw(T4, fd_off::DIR, T2);
    a.label("sv_cl_done");
    a.li(A0, 0);
    a.b("sv_reply");
    a.nop();

    // ---- read(fd in A1, len in A2): data goes back in the message --
    a.label("sv_read");
    a.lw(T1, msg_off::A1, T0);
    a.addiu(T1, T1, -3);
    a.bltz(T1, "sv_openfail");
    a.nop();
    a.sll(T2, T1, 3);
    a.la(T3, "sv_fdtab");
    a.addu(S1, T3, T2); // fd entry
    a.lw(S2, fd_off::DIR, S1); // dir index
    a.bltz(S2, "sv_openfail");
    a.nop();
    a.sll(T4, S2, 5);
    a.la(T5, "sv_dir");
    a.addu(S2, T5, T4); // dir entry
    a.lw(T6, dir_off::LEN, S2);
    a.lw(T7, fd_off::OFFSET, S1);
    a.subu(T8, T6, T7); // remaining
    a.bgtz(T8, "sv_rd_some");
    a.nop();
    a.li(A0, 0); // EOF
    a.b("sv_reply");
    a.nop();
    a.label("sv_rd_some");
    a.lw(S3, msg_off::A2, T0); // requested length
    a.slt(T9, T8, S3);
    a.beq(T9, ZERO, "sv_rd_m1");
    a.nop();
    a.move_(S3, T8);
    a.label("sv_rd_m1");
    a.andi(T9, T7, 0xfff);
    a.li(T8, 4096);
    a.subu(T8, T8, T9);
    a.slt(T9, T8, S3);
    a.beq(T9, ZERO, "sv_rd_m2");
    a.nop();
    a.move_(S3, T8);
    a.label("sv_rd_m2");
    // Block number, ensure cached in user space.
    a.lw(T8, dir_off::START, S2);
    a.srl(T9, T7, 12);
    a.addu(A0, T8, T9);
    a.jal("sv_get_block"); // v0 = frame vaddr
    a.nop();
    a.move_(S4, V0);
    // Copy frame+off -> message DATA.
    a.lw(T7, fd_off::OFFSET, S1);
    a.andi(T9, T7, 0xfff);
    a.addu(A1, S4, T9); // src
    a.li(A0, uvm::MAILBOX as i32);
    a.addiu(A0, A0, msg_off::DATA); // dst
    a.move_(A2, S3);
    a.jal("__memcpy");
    a.nop();
    a.lw(T7, fd_off::OFFSET, S1);
    a.addu(T7, T7, S3);
    a.sw(T7, fd_off::OFFSET, S1);
    a.move_(A0, S3);
    a.b("sv_reply");
    a.nop();

    // ---- write(fd in A1, n in A2, data in msg DATA) ----
    a.label("sv_write");
    a.lw(T1, msg_off::A1, T0);
    a.addiu(T1, T1, -3);
    a.bltz(T1, "sv_openfail");
    a.nop();
    a.sll(T2, T1, 3);
    a.la(T3, "sv_fdtab");
    a.addu(S1, T3, T2);
    a.lw(S2, fd_off::DIR, S1);
    a.bltz(S2, "sv_openfail");
    a.nop();
    a.sll(T4, S2, 5);
    a.la(T5, "sv_dir");
    a.addu(S2, T5, T4);
    a.lw(T7, fd_off::OFFSET, S1);
    a.lw(S3, msg_off::A2, T0); // n
                               // Clamp to the current block.
    a.andi(T9, T7, 0xfff);
    a.li(T8, 4096);
    a.subu(T8, T8, T9);
    a.slt(T9, T8, S3);
    a.beq(T9, ZERO, "sv_wr_m1");
    a.nop();
    a.move_(S3, T8);
    a.label("sv_wr_m1");
    a.lw(T8, dir_off::START, S2);
    a.srl(T9, T7, 12);
    a.addu(A0, T8, T9);
    a.jal("sv_get_block_for_write");
    a.nop();
    a.move_(S4, V0);
    a.lw(T7, fd_off::OFFSET, S1);
    a.andi(T9, T7, 0xfff);
    a.addu(A0, S4, T9); // dst in cache frame
    a.li(A1, uvm::MAILBOX as i32);
    a.addiu(A1, A1, msg_off::DATA);
    a.move_(A2, S3);
    a.jal("__memcpy");
    a.nop();
    a.lw(T7, fd_off::OFFSET, S1);
    a.addu(T7, T7, S3);
    a.sw(T7, fd_off::OFFSET, S1);
    a.lw(T8, dir_off::LEN, S2);
    a.slt(T9, T8, T7);
    a.beq(T9, ZERO, "sv_wr_lenok");
    a.nop();
    a.sw(T7, dir_off::LEN, S2);
    a.label("sv_wr_lenok");
    a.move_(A0, S3);
    a.b("sv_reply");
    a.nop();

    // ---- sv_dir_find(a0 = path) -> v0 = dir index or -1 ----
    a.global_label("sv_dir_find");
    a.li(T8, 0);
    a.label("sdf_outer");
    a.li(T9, dir_off::COUNT as i32);
    a.beq(T8, T9, "sdf_fail");
    a.nop();
    a.sll(T1, T8, 5);
    a.la(T2, "sv_dir");
    a.addu(T1, T2, T1);
    a.lbu(T3, dir_off::NAME, T1);
    a.beq(T3, ZERO, "sdf_next");
    a.nop();
    a.li(T4, 0);
    a.label("sdf_cmp");
    a.addu(T5, A0, T4);
    a.lbu(T6, 0, T5);
    a.addu(T5, T1, T4);
    a.lbu(T7, dir_off::NAME, T5);
    a.bne(T6, T7, "sdf_next");
    a.nop();
    a.beq(T6, ZERO, "sdf_hit");
    a.nop();
    a.b("sdf_cmp");
    a.addiu(T4, T4, 1);
    a.label("sdf_hit");
    a.jr(RA);
    a.move_(V0, T8);
    a.label("sdf_next");
    a.b("sdf_outer");
    a.addiu(T8, T8, 1);
    a.label("sdf_fail");
    a.jr(RA);
    a.li(V0, -1);

    // ---- sv_fd_alloc(a0 = dir index) -> v0 = fd or -1 ----
    a.global_label("sv_fd_alloc");
    a.li(T8, 0);
    a.label("sfa_loop");
    a.li(T9, fd_off::COUNT as i32);
    a.beq(T8, T9, "sdf_fail");
    a.nop();
    a.sll(T1, T8, 3);
    a.la(T2, "sv_fdtab");
    a.addu(T1, T2, T1);
    a.lw(T3, fd_off::DIR, T1);
    a.bltz(T3, "sfa_hit");
    a.nop();
    a.b("sfa_loop");
    a.addiu(T8, T8, 1);
    a.label("sfa_hit");
    a.sw(A0, fd_off::DIR, T1);
    a.sw(ZERO, fd_off::OFFSET, T1);
    a.jr(RA);
    a.addiu(V0, T8, 3);

    // ---- sv_get_block(a0 = block) -> v0 = cached frame vaddr,
    //      reading from disk through sys_bread on a miss. ----
    for (name, write_intent) in [("sv_get_block", false), ("sv_get_block_for_write", true)] {
        let pfx = if write_intent { "sgw" } else { "sgr" };
        a.global_label(name);
        a.addiu(SP, SP, -16);
        a.sw(RA, 12, SP);
        a.sw(S0, 8, SP);
        a.move_(S0, A0);
        // Lookup.
        a.li(T8, 0);
        a.label(&format!("{pfx}_look"));
        a.li(T9, SV_CACHE_ENTRIES as i32);
        a.beq(T8, T9, format!("{pfx}_miss").as_str());
        a.nop();
        a.sll(T1, T8, 2);
        a.la(T2, "sv_cache_blocks");
        a.addu(T1, T2, T1);
        a.lw(T3, 0, T1);
        a.beq(T3, S0, format!("{pfx}_hit").as_str());
        a.nop();
        a.b(format!("{pfx}_look").as_str());
        a.addiu(T8, T8, 1);
        a.label(&format!("{pfx}_miss"));
        // Victim: round robin.
        a.la(T4, "sv_cache_hand");
        a.lw(T8, 0, T4);
        a.addiu(T5, T8, 1);
        a.li(T6, SV_CACHE_ENTRIES as i32);
        a.slt(T7, T5, T6);
        a.bne(T7, ZERO, format!("{pfx}_wrapok").as_str());
        a.nop();
        a.li(T5, 0);
        a.label(&format!("{pfx}_wrapok"));
        a.sw(T5, 0, T4);
        a.sll(T1, T8, 2);
        a.la(T2, "sv_cache_blocks");
        a.addu(T1, T2, T1);
        a.sw(S0, 0, T1);
        if !write_intent {
            // Fill from disk.
            a.move_(A0, S0);
            a.jal("sv_frame_addr_idx8"); // v0 = frame vaddr for T8
            a.nop();
            a.move_(A1, V0);
            a.move_(A0, S0);
            a.li(V0, sys::BREAD as i32);
            a.syscall(0);
        }
        a.label(&format!("{pfx}_hit"));
        a.jal("sv_frame_addr_idx8");
        a.nop();
        a.lw(RA, 12, SP);
        a.lw(S0, 8, SP);
        a.jr(RA);
        a.addiu(SP, SP, 16);
    }

    // Helper: v0 = sv_frame_base + t8*4096 (t8 = cache index).
    a.global_label("sv_frame_addr_idx8");
    a.la(T1, "sv_frame_base");
    a.lw(T1, 0, T1);
    a.sll(T2, T8, 12);
    a.jr(RA);
    a.addu(V0, T1, T2);

    a.data();
    a.align4();
    a.global_label("sv_dir");
    a.space(dir_off::COUNT * dir_off::SIZE);
    a.global_label("sv_next_block");
    a.word(4); // poked by the loader
    a.label("sv_fdtab");
    for _ in 0..fd_off::COUNT {
        a.word(-1i32 as u32);
        a.word(0);
    }
    a.label("sv_cache_blocks");
    for _ in 0..SV_CACHE_ENTRIES {
        a.word(-1i32 as u32);
    }
    a.label("sv_cache_hand");
    a.word(0);
    a.label("sv_frame_base");
    a.word(0);

    let _ = uvm_trace::TRACE_BUF; // (trace pages are mapped by the loader)
    a.finish()
}
