//! The instrumentable kernel body: cause dispatch, interrupt
//! handlers, the scheduler and idle loop, the system-call layer, the
//! Ultrix-style in-kernel file system (buffer cache, disk driver,
//! read-ahead, write policy) and the Mach-style IPC layer.
//!
//! Everything here is rewritten by epoxie when building a traced
//! kernel ("all relevant parts of the kernel are traced", §3.3); only
//! the console output loop is instrumented by hand, as the paper's
//! showcase for special basic-block records (§3.5).

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::Object;
use wrl_machine::cp0::reg as c0;
use wrl_machine::dev::{regs as devregs, DEV_BASE_K1};
use wrl_trace::layout::{sys, trapcode};

use crate::kdata::{bc_off, dir_off, fd_off, msg_off, proc_off};
use crate::layout::{self, uvm};

/// Which operating-system personality to build (§3.5 vs §3.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Monolithic: file services in the kernel.
    Ultrix,
    /// Microkernel: file services in the user-level UNIX server,
    /// reached through IPC.
    Mach,
}

/// Build-time options for the kernel body.
#[derive(Clone, Copy, Debug)]
pub struct KmainCfg {
    /// OS personality.
    pub variant: Variant,
    /// Conservative (write-through) file writes: each write blocks
    /// until the disk acknowledges — the Ultrix policy whose inflated
    /// I/O delays §4.4 calls out.
    pub conservative_write: bool,
    /// Plant the §4.4 Mach I-cache-flush bug: the flush routine
    /// isolates the cache and forgets to de-isolate it, causing "an
    /// excessive number of uncached instruction references".
    pub icache_flush_bug: bool,
}

/// End of the fixed user trace-buffer window.
const fn utrace_buf_end() -> u32 {
    wrl_trace::layout::user::TRACE_BUF + wrl_trace::layout::user::TRACE_BUF_BYTES
}

const DEV_CLOCK_ACK: i32 = (DEV_BASE_K1 + devregs::CLOCK_ACK) as i32;
const DEV_DISK_STAT: i32 = (DEV_BASE_K1 + devregs::DISK_STAT) as i32;
const DEV_DISK_BLOCK: i32 = (DEV_BASE_K1 + devregs::DISK_BLOCK) as i32;
const DEV_DISK_ADDR: i32 = (DEV_BASE_K1 + devregs::DISK_ADDR) as i32;
const DEV_DISK_CMD: i32 = (DEV_BASE_K1 + devregs::DISK_CMD) as i32;
const DEV_CONSOLE: i32 = (DEV_BASE_K1 + devregs::CONSOLE_TX) as i32;

/// Emits `dst = k_proc + idx*SIZE` (SIZE = 208 = 128+64+16).
fn emit_proc_base(a: &mut Asm, dst: Reg, idx: Reg, scratch: Reg) {
    a.sll(dst, idx, 7);
    a.sll(scratch, idx, 6);
    a.addu(dst, dst, scratch);
    a.sll(scratch, idx, 4);
    a.addu(dst, dst, scratch);
    a.la(scratch, "k_proc");
    a.addu(dst, dst, scratch);
}

/// Builds the kernel body object.
pub fn object(cfg: &KmainCfg) -> Object {
    let mut a = Asm::new("kmain");

    emit_dispatch(&mut a);
    emit_interrupts(&mut a);
    emit_sched_idle(&mut a, cfg);
    emit_syscalls(&mut a, cfg);
    match cfg.variant {
        Variant::Ultrix => emit_fs(&mut a, cfg),
        Variant::Mach => {
            emit_ipc(&mut a);
            emit_blockio(&mut a);
        }
    }
    emit_util(&mut a, cfg);

    a.finish()
}

// =====================================================================
// Cause dispatch
// =====================================================================
fn emit_dispatch(a: &mut Asm) {
    a.global_label("gv_dispatch");
    // A kernel stack for this nesting depth.
    a.la(T0, "k_kstack_ptr");
    a.lw(T0, 0, T0);
    a.la(T1, "k_kstack");
    a.subu(T0, T0, T1);
    a.sll(T2, T0, 3); // 140-byte frames -> 1120-byte C stacks
    a.la(SP, "k_cstack_top");
    a.subu(SP, SP, T2);

    // Cause was captured into s1 by the entry stub (live CP0 Cause
    // may be stale after nested refills during the trace copy).
    a.andi(T4, S1, 0x7c);
    a.srl(T4, T4, 2);
    a.beq(T4, ZERO, "h_interrupt");
    a.nop();
    a.li(T5, 8);
    a.beq(T4, T5, "h_syscall");
    a.nop();
    a.li(T5, 2);
    a.beq(T4, T5, "h_tlb_fault");
    a.nop();
    a.li(T5, 3);
    a.beq(T4, T5, "h_tlb_fault");
    a.nop();
    a.li(T5, 9);
    a.beq(T4, T5, "h_break");
    a.nop();
    // Anything else is fatal.
    a.li(A0, 0xdead);
    a.j("khalt");
    a.nop();

    // ---- KTLB refill: misses on the mapped kernel segment "are
    // handled through the general exception mechanism, which is much
    // slower (several hundred instructions)" (§4.1). ----
    a.label("h_tlb_fault");
    a.move_(T0, S2); // BadVAddr captured by the entry stub
    a.lui(T1, 0xc000);
    a.sltu(T2, T0, T1);
    a.bne(T2, ZERO, "h_fault_fatal");
    a.nop();
    a.subu(T3, T0, T1);
    a.srl(T3, T3, 12);
    // Bounds: MAX_PROCS * 512 directory slots.
    a.li(T4, (layout::MAX_PROCS as i32) * 512);
    a.sltu(T5, T3, T4);
    a.beq(T5, ZERO, "h_fault_fatal");
    a.nop();
    a.sll(T4, T3, 2);
    a.la(T5, "k_ktlb_dir");
    a.addu(T5, T5, T4);
    a.lw(T6, 0, T5);
    a.beq(T6, ZERO, "h_fault_fatal");
    a.nop();
    a.mtc0(T6, c0::ENTRYLO);
    a.inst(wrl_isa::Inst::Tlbwr);
    // This KTLB miss usually nests inside the UTLB refill handler,
    // whose EntryHi (the *user* VPN) we just clobbered. The faulting
    // kseg2 address is the Context value, which encodes that user VPN
    // in bits 20:2 — reconstruct and restore EntryHi so the
    // interrupted handler's tlbwr installs the right mapping.
    a.sll(T7, T0, 11);
    a.srl(T7, T7, 13); // user VPN
    a.sll(T7, T7, 12);
    a.mfc0(T8, c0::ENTRYHI);
    a.andi(T8, T8, 0xfff); // keep the ASID
    a.or(T7, T7, T8);
    a.mtc0(T7, c0::ENTRYHI);
    // The interrupted refill handler cannot be resumed: the entry
    // stub consumed its k0 (the PTE address). Instead, finish its
    // job here — read the user PTE through kseg0 (we know the PTE
    // page's frame from the directory entry) and install the user
    // mapping — and let the exit path return straight to the
    // original faulting context.
    a.srl(T9, T6, 12);
    a.sll(T9, T9, 12); // PTE page frame
    a.lui(T8, 0x8000);
    a.or(T9, T9, T8); // kseg0 view
    a.andi(T8, T0, 0xfff); // offset of the PTE within its page
    a.addu(T9, T9, T8);
    a.lw(T9, 0, T9); // the user PTE
    a.mtc0(T9, c0::ENTRYLO);
    a.inst(wrl_isa::Inst::Tlbwr);
    a.j("gv_exit");
    a.nop();
    a.label("h_fault_fatal");
    a.li(A0, 0xbad1);
    a.j("khalt");
    a.nop();

    // ---- Breakpoint: kill the offending process. ----
    a.label("h_break");
    a.la(S0, "k_cur_save");
    a.lw(S0, 0, S0);
    a.li(A0, 0xbb);
    a.j("sys_exit");
    a.nop();
}

// =====================================================================
// Interrupts
// =====================================================================
fn emit_interrupts(a: &mut Asm) {
    a.global_label("h_interrupt");
    a.mfc0(T0, c0::CAUSE);
    a.andi(T1, T0, 0x2000); // IP5: line clock
    a.beq(T1, ZERO, "hi_disk");
    a.nop();
    a.li(T2, DEV_CLOCK_ACK);
    a.sw(ZERO, 0, T2);
    a.la(T3, "k_ticks");
    a.lw(T4, 0, T3);
    a.addiu(T4, T4, 1);
    a.sw(T4, 0, T3);
    a.la(T5, "k_resched");
    a.li(T6, 1);
    a.sw(T6, 0, T5);
    a.label("hi_disk");
    a.mfc0(T0, c0::CAUSE);
    a.andi(T1, T0, 0x1000); // IP4: disk
    a.beq(T1, ZERO, "hi_done");
    a.nop();
    a.li(T2, DEV_DISK_STAT);
    a.sw(ZERO, 0, T2); // acknowledge
    a.jal("disk_complete");
    a.nop();
    a.label("hi_done");
    a.j("gv_exit");
    a.nop();

    // disk_complete: retire the finished operation, wake every
    // disk-blocked process (they restart their system call and
    // re-check the cache), and start any queued operation.
    a.global_label("disk_complete");
    a.addiu(SP, SP, -8);
    a.sw(RA, 4, SP);
    a.la(T0, "k_disk_cur_entry");
    a.lw(T1, 0, T0);
    a.beq(T1, ZERO, "dc_noentry");
    a.nop();
    a.sw(ZERO, bc_off::IN_FLIGHT, T1);
    a.sw(ZERO, bc_off::DIRTY, T1);
    a.label("dc_noentry");
    a.sw(ZERO, 0, T0);
    a.la(T0, "k_disk_busy");
    a.sw(ZERO, 0, T0);
    // Raw-bread completion marker.
    a.la(T0, "k_bread_done");
    a.li(T1, 1);
    a.sw(T1, 0, T0);
    // Wake all disk-blocked processes.
    a.li(T2, 0); // index
    a.label("dc_wake");
    emit_proc_base(a, T3, T2, T4);
    a.lw(T5, proc_off::STATE, T3);
    a.li(T6, 3);
    a.bne(T5, T6, "dc_next");
    a.nop();
    a.li(T6, 1);
    a.sw(T6, proc_off::STATE, T3);
    a.label("dc_next");
    a.addiu(T2, T2, 1);
    a.li(T7, layout::MAX_PROCS as i32);
    a.bne(T2, T7, "dc_wake");
    a.nop();
    a.la(T0, "k_resched");
    a.li(T1, 1);
    a.sw(T1, 0, T0);
    // Start a queued operation, if any.
    a.la(T0, "k_dpend_valid");
    a.lw(T1, 0, T0);
    a.beq(T1, ZERO, "dc_out");
    a.nop();
    a.sw(ZERO, 0, T0);
    a.la(T2, "k_dpend_cmd");
    a.lw(A0, 0, T2);
    a.la(T2, "k_dpend_block");
    a.lw(A1, 0, T2);
    a.la(T2, "k_dpend_addr");
    a.lw(A2, 0, T2);
    a.la(T2, "k_dpend_entry");
    a.lw(A3, 0, T2);
    a.jal("disk_start");
    a.nop();
    a.label("dc_out");
    a.lw(RA, 4, SP);
    a.jr(RA);
    a.addiu(SP, SP, 8);

    // disk_start(a0 = cmd, a1 = block, a2 = paddr, a3 = entry or 0):
    // programs the controller or queues the request. v0 = 1 if the
    // request was accepted (started or queued), 0 if dropped.
    a.global_label("disk_start");
    a.la(T0, "k_disk_busy");
    a.lw(T1, 0, T0);
    a.bne(T1, ZERO, "ds_queue");
    a.nop();
    a.li(T2, 1);
    a.sw(T2, 0, T0);
    a.la(T3, "k_disk_cur_entry");
    a.sw(A3, 0, T3);
    a.li(T4, DEV_DISK_BLOCK);
    a.sw(A1, 0, T4);
    a.li(T4, DEV_DISK_ADDR);
    a.sw(A2, 0, T4);
    a.li(T4, DEV_DISK_CMD);
    a.sw(A0, 0, T4);
    a.jr(RA);
    a.li(V0, 1);
    a.label("ds_queue");
    a.la(T0, "k_dpend_valid");
    a.lw(T1, 0, T0);
    a.bne(T1, ZERO, "ds_drop");
    a.nop();
    a.li(T2, 1);
    a.sw(T2, 0, T0);
    a.la(T3, "k_dpend_cmd");
    a.sw(A0, 0, T3);
    a.la(T3, "k_dpend_block");
    a.sw(A1, 0, T3);
    a.la(T3, "k_dpend_addr");
    a.sw(A2, 0, T3);
    a.la(T3, "k_dpend_entry");
    a.sw(A3, 0, T3);
    a.jr(RA);
    a.li(V0, 1);
    a.label("ds_drop");
    a.jr(RA);
    a.li(V0, 0);
}

// =====================================================================
// Scheduler and idle loop
// =====================================================================
fn emit_sched_idle(a: &mut Asm, _cfg: &KmainCfg) {
    a.global_label("sched_entry");
    a.la(T0, "k_cur_proc");
    a.lw(T1, 0, T0);
    a.bltz(T1, "sc_scan");
    a.nop();
    emit_proc_base(a, T6, T1, T7);
    a.lw(T8, proc_off::STATE, T6);
    a.li(T9, 2);
    a.bne(T8, T9, "sc_scan");
    a.nop();
    a.li(T9, 1);
    a.sw(T9, proc_off::STATE, T6);
    a.label("sc_scan");
    a.li(S1, 1); // round-robin distance
    a.label("sc_loop");
    a.li(T0, layout::MAX_PROCS as i32);
    a.slt(T1, T0, S1);
    a.bne(T1, ZERO, "sc_idle"); // distance > MAX: nothing ready
    a.nop();
    a.la(T2, "k_cur_proc");
    a.lw(T2, 0, T2);
    a.addu(T2, T2, S1);
    a.li(T3, layout::MAX_PROCS as i32);
    a.slt(T4, T2, T3);
    a.bne(T4, ZERO, "sc_mod_ok");
    a.nop();
    a.subu(T2, T2, T3);
    a.label("sc_mod_ok");
    emit_proc_base(a, T6, T2, T7);
    a.lw(T8, proc_off::STATE, T6);
    a.li(T9, 1);
    a.beq(T8, T9, "sc_found");
    a.nop();
    a.addiu(S1, S1, 1);
    a.b("sc_loop");
    a.nop();
    a.label("sc_found");
    a.la(T0, "k_cur_proc");
    a.sw(T2, 0, T0);
    a.la(T0, "k_cur_save");
    a.sw(T6, 0, T0);
    a.li(T9, 2);
    a.sw(T9, proc_off::STATE, T6);
    a.la(T0, "k_resched");
    a.sw(ZERO, 0, T0);
    // First dispatch of a newly loaded image flushes the I-cache.
    a.lw(T3, proc_off::NEED_IFLUSH, T6);
    a.beq(T3, ZERO, "sc_nofl");
    a.nop();
    a.sw(ZERO, proc_off::NEED_IFLUSH, T6);
    a.move_(S2, T6);
    a.jal("k_iflush");
    a.nop();
    a.move_(T6, S2);
    a.label("sc_nofl");
    a.move_(A0, T6);
    a.j("dispatch_tail");
    a.nop();
    a.label("sc_idle");
    a.j("k_idle");
    a.nop();

    // ---- Idle loop: its blocks are flagged so the trace parser's
    // instruction counters can measure idle time (§3.5, §5.1).
    //
    // Interrupts stay masked while polling; when a device raises an
    // interrupt line the loop opens a two-instruction window at a
    // *trace-safe* point — no bbtrace/memtrace store/bump pair is in
    // flight there, so the handler's own trace entries can never
    // interleave with a half-written one. This is the kernel-side
    // answer to §3.3's "no intermediate party is available to
    // maintain the kernel's tracing state when the kernel itself is
    // interrupted". ----
    a.global_label("k_idle");
    a.mark_idle_start();
    a.global_label("idle_loop");
    a.mfc0(T0, c0::CAUSE);
    a.andi(T1, T0, 0x3000); // any device line pending?
    a.bne(T1, ZERO, "idle_window");
    a.nop();
    a.b("idle_loop");
    a.nop();
    a.label("idle_window");
    a.mfc0(T0, c0::STATUS);
    a.ori(T0, T0, 1);
    a.mtc0(T0, c0::STATUS); // enable: the interrupt lands below
    a.nop();
    a.nop();
    a.mfc0(T0, c0::STATUS);
    a.li(T3, !1);
    a.and(T0, T0, T3);
    a.mtc0(T0, c0::STATUS); // masked again
    a.la(T1, "k_resched");
    a.lw(T2, 0, T1);
    a.beq(T2, ZERO, "idle_loop");
    a.nop();
    a.mark_idle_stop();
    a.global_label("idle_out");
    a.la(T1, "k_resched");
    a.sw(ZERO, 0, T1);
    a.j("sched_entry");
    a.nop();
}

// =====================================================================
// System calls
// =====================================================================
fn emit_syscalls(a: &mut Asm, cfg: &KmainCfg) {
    a.global_label("h_syscall");
    a.la(S0, "k_cur_save");
    a.lw(S0, 0, S0);
    // Distinguish the bbtrace flush trap from ABI calls by the code
    // field of the syscall instruction itself.
    a.lw(T0, proc_off::EPC, S0);
    a.lw(T1, 0, T0); // user text word (through the TLB)
    a.srl(T2, T1, 6);
    a.li(T3, trapcode::TRACE_FLUSH as i32);
    a.bne(T2, T3, "hs_abi");
    a.nop();
    // Flush trap: the entry stub already copied and reset the buffer.
    a.addiu(T0, T0, 4);
    a.sw(T0, proc_off::EPC, S0);
    a.j("gv_exit");
    a.nop();

    a.label("hs_abi");
    a.addiu(T0, T0, 4);
    a.sw(T0, proc_off::EPC, S0); // blocking handlers undo this
    a.lw(S1, proc_off::reg(V0.0), S0);
    a.lw(A0, proc_off::reg(A0.0), S0);
    a.lw(A1, proc_off::reg(A1.0), S0);
    a.lw(A2, proc_off::reg(A2.0), S0);
    for (num, target) in [
        (sys::EXIT, "sys_exit"),
        (sys::SBRK, "sys_sbrk"),
        (sys::GETPID, "sys_getpid"),
        (sys::YIELD, "sys_yield"),
        (sys::WRITE, "sys_write"),
        (sys::TRACE_CTL, "sys_trace_ctl"),
        (sys::SPAWN, "sys_spawn"),
    ] {
        a.li(T4, num as i32);
        a.beq(S1, T4, target);
        a.nop();
    }
    match cfg.variant {
        Variant::Ultrix => {
            for (num, target) in [
                (sys::OPEN, "sys_open"),
                (sys::CREAT, "sys_creat"),
                (sys::READ, "sys_read"),
                (sys::CLOSE, "sys_close"),
            ] {
                a.li(T4, num as i32);
                a.beq(S1, T4, target);
                a.nop();
            }
        }
        Variant::Mach => {
            for (num, target) in [
                (sys::OPEN, "ipc_call"),
                (sys::CREAT, "ipc_call"),
                (sys::READ, "ipc_call"),
                (sys::CLOSE, "ipc_call"),
                (sys::RECV, "sys_recv"),
                (sys::REPLY, "sys_reply"),
                (sys::BREAD, "sys_bread"),
                (sys::BWRITE, "sys_bwrite"),
            ] {
                a.li(T4, num as i32);
                a.beq(S1, T4, target);
                a.nop();
            }
        }
    }
    a.li(V0, -1);
    a.label("hs_ret");
    a.sw(V0, proc_off::reg(V0.0), S0);
    a.j("gv_exit");
    a.nop();

    // Common blocking helper: undo the EPC advance (the call restarts
    // when the process wakes) and block on the disk.
    a.global_label("hs_block_restart");
    a.lw(T0, proc_off::EPC, S0);
    a.addiu(T0, T0, -4);
    a.sw(T0, proc_off::EPC, S0);
    a.li(T1, 3);
    a.sw(T1, proc_off::STATE, S0);
    a.j("gv_exit");
    a.nop();

    // ---- exit ----
    a.global_label("sys_exit");
    a.sw(A0, proc_off::EXIT_CODE, S0);
    a.li(T0, 4);
    a.sw(T0, proc_off::STATE, S0);
    a.lw(T1, proc_off::IS_SERVER, S0);
    a.bne(T1, ZERO, "se_out");
    a.nop();
    a.la(T2, "k_nlive");
    a.lw(T3, 0, T2);
    a.addiu(T3, T3, -1);
    a.sw(T3, 0, T2);
    a.bne(T3, ZERO, "se_out");
    a.nop();
    a.j("khalt"); // a0 = exit code of the last workload process
    a.nop();
    a.label("se_out");
    a.j("gv_exit");
    a.nop();

    // ---- sbrk ----
    a.global_label("sys_sbrk");
    a.lw(V0, proc_off::BRK, S0);
    a.addu(T0, V0, A0);
    a.li(T1, uvm::HEAP_MAX as i32);
    a.sltu(T2, T1, T0);
    a.beq(T2, ZERO, "sb_ok");
    a.nop();
    a.li(A0, 0xbad2);
    a.j("khalt");
    a.nop();
    a.label("sb_ok");
    a.sw(T0, proc_off::BRK, S0);
    a.j("hs_ret");
    a.nop();

    // ---- getpid ----
    a.global_label("sys_getpid");
    a.lw(V0, proc_off::ASID, S0);
    a.j("hs_ret");
    a.nop();

    // ---- yield ----
    a.global_label("sys_yield");
    a.li(V0, 0);
    a.j("hs_ret");
    a.nop();

    // ---- spawn(entry, stack_top, arg) -> token (§3.6) ----
    // Creates a thread in the caller's address space: same ASID and
    // page table, own register state, own trace-context token and —
    // when traced — its own trace pages from the loader-staged pool.
    a.global_label("sys_spawn");
    a.li(T0, 0);
    a.label("sp_scan");
    emit_proc_base(a, T1, T0, T2);
    a.lw(T2, proc_off::STATE, T1);
    a.beq(T2, ZERO, "sp_found");
    a.nop();
    a.addiu(T0, T0, 1);
    a.li(T3, layout::MAX_PROCS as i32);
    a.bne(T0, T3, "sp_scan");
    a.nop();
    a.li(V0, -1);
    a.j("hs_ret");
    a.nop();
    a.label("sp_found");
    // T1 = new entry, T0 = slot; parent is S0.
    a.lw(T2, proc_off::ASID, S0);
    a.sw(T2, proc_off::ASID, T1);
    a.lw(T2, proc_off::CONTEXT, S0);
    a.sw(T2, proc_off::CONTEXT, T1);
    a.lw(T2, proc_off::TRACED, S0);
    a.sw(T2, proc_off::TRACED, T1);
    a.lw(T2, proc_off::RT_START, S0);
    a.sw(T2, proc_off::RT_START, T1);
    a.lw(T2, proc_off::RT_END, S0);
    a.sw(T2, proc_off::RT_END, T1);
    a.lw(T2, proc_off::BRK, S0);
    a.sw(T2, proc_off::BRK, T1);
    a.addiu(T2, T0, 1);
    a.sw(T2, proc_off::TOKEN, T1);
    a.sw(A0, proc_off::EPC, T1);
    a.sw(A1, proc_off::reg(SP.0), T1);
    a.sw(A2, proc_off::reg(A0.0), T1);
    a.li(T2, -1);
    a.sw(T2, proc_off::WAIT_BLOCK, T1);
    a.sw(T2, proc_off::REPLY_TO, T1);
    a.sw(ZERO, proc_off::IS_SERVER, T1);
    a.sw(ZERO, proc_off::NEED_IFLUSH, T1);
    a.sw(ZERO, proc_off::EXIT_CODE, T1);
    a.lw(T2, proc_off::TRACED, T1);
    a.beq(T2, ZERO, "sp_notrace");
    a.nop();
    // Take the next 17-frame trace set from the pool.
    a.la(T3, "k_tpool_next");
    a.lw(T4, 0, T3);
    a.addiu(T5, T4, 1);
    a.sw(T5, 0, T3);
    // set base phys = THREAD_POOL + n * 17 * 4096 (= n<<16 + n<<12).
    a.sll(T5, T4, 16);
    a.sll(T6, T4, 12);
    a.addu(T5, T5, T6);
    a.li(T6, layout::THREAD_POOL_PHYS as i32);
    a.addu(T5, T5, T6); // set base (phys)
                        // Fill this slot's PTE list: pte = ((base>>12)+k)<<12 | D|V.
    a.sll(T6, T0, 6);
    a.sll(T7, T0, 2);
    a.addu(T6, T6, T7);
    a.la(T7, "k_tpte");
    a.addu(T6, T6, T7); // &k_tpte[slot]
    a.move_(T7, T5);
    a.li(T8, 17);
    a.label("sp_pte");
    a.li(T9, 0x600); // D|V
    a.or(T9, T9, T7);
    a.sw(T9, 0, T6);
    a.addiu(T6, T6, 4);
    a.li(T9, 4096);
    a.addu(T7, T7, T9);
    a.addiu(T8, T8, -1);
    a.bne(T8, ZERO, "sp_pte");
    a.nop();
    // Initialise the new bookkeeping frame (first frame of the set)
    // through kseg0.
    a.lui(T6, 0x8000);
    a.or(T6, T6, T5);
    a.li(T7, (utrace_buf_end() - 512) as i32);
    a.sw(T7, wrl_trace::layout::bk::BUF_END, T6);
    a.li(T7, utrace_buf_end() as i32);
    a.sw(T7, wrl_trace::layout::bk::HARD_END, T6);
    // Thread trace registers.
    a.li(T7, wrl_trace::layout::user::TRACE_BUF as i32);
    a.sw(T7, proc_off::reg(wrl_trace::layout::XREG1.0), T1);
    a.li(T7, wrl_trace::layout::user::BOOKKEEPING as i32);
    a.sw(T7, proc_off::reg(wrl_trace::layout::XREG3.0), T1);
    a.label("sp_notrace");
    a.li(T2, 1);
    a.sw(T2, proc_off::STATE, T1);
    a.la(T3, "k_nlive");
    a.lw(T4, 0, T3);
    a.addiu(T4, T4, 1);
    a.sw(T4, 0, T3);
    a.lw(V0, proc_off::TOKEN, T1);
    a.j("hs_ret");
    a.nop();

    // ---- trace_ctl(cmd) ----
    // Manipulates the live trace registers, so it must not itself be
    // rewritten by epoxie (stolen-register shadowing would redirect
    // the xreg writes to the shadow slots).
    {
        use wrl_trace::format::{ctl as mkctl, CtlOp};
        use wrl_trace::layout::{bk, trace_ctl, XREG1, XREG3};
        a.begin_uninstrumented();
        a.global_label("sys_trace_ctl");
        a.li(T0, trace_ctl::START as i32);
        a.bne(A0, T0, "tc_stop");
        a.nop();
        a.la(T1, "k_trace_on");
        a.li(T2, 1);
        a.sw(T2, 0, T1);
        a.la(T1, "k_cfg_buf_base");
        a.lw(XREG1, 0, T1); // xreg1 := main buffer
        a.la(T1, "k_cfg_soft_end");
        a.lw(T2, 0, T1);
        a.sw(T2, bk::BUF_END, XREG3);
        a.la(T1, "k_cfg_hard_end");
        a.lw(T2, 0, T1);
        a.sw(T2, bk::HARD_END, XREG3);
        a.sw(ZERO, bk::NEED_FLUSH, XREG3);
        a.li(T2, mkctl(CtlOp::TraceOn, 0) as i32);
        a.sw(T2, 0, XREG1);
        a.addiu(XREG1, XREG1, 4);
        // We are inside the kernel: re-open the kernel trace context
        // (its KExit comes from the eventual dispatch).
        a.li(T2, mkctl(CtlOp::KEnter, 8) as i32);
        a.sw(T2, 0, XREG1);
        a.addiu(XREG1, XREG1, 4);
        a.li(V0, 0);
        a.j("hs_ret");
        a.nop();
        a.label("tc_stop");
        a.li(T0, trace_ctl::STOP as i32);
        a.bne(A0, T0, "tc_bad");
        a.nop();
        // Close the current kernel trace context (its exit-path KExit
        // will be suppressed once tracing is off), then hand the
        // accumulated trace to the analysis program before abandoning
        // the buffer.
        a.li(T2, mkctl(CtlOp::KExit, 0) as i32);
        a.sw(T2, 0, XREG1);
        a.addiu(XREG1, XREG1, 4);
        a.jal("ktrace_flush_now");
        a.nop();
        a.la(T1, "k_trace_on");
        a.sw(ZERO, 0, T1);
        a.la(T1, "k_bb_base");
        a.lw(XREG1, 0, T1); // xreg1 := bit bucket
        a.la(T1, "k_bb_soft");
        a.lw(T2, 0, T1);
        a.sw(T2, bk::BUF_END, XREG3);
        a.la(T1, "k_bb_hard");
        a.lw(T2, 0, T1);
        a.sw(T2, bk::HARD_END, XREG3);
        a.sw(ZERO, bk::NEED_FLUSH, XREG3);
        a.li(V0, 0);
        a.j("hs_ret");
        a.nop();
        a.label("tc_bad");
        a.li(V0, -1);
        a.j("hs_ret");
        a.nop();
        a.end_uninstrumented();
    }

    // ---- write ----
    a.global_label("sys_write");
    a.li(T0, 1);
    a.bne(A0, T0, "wr_file");
    a.nop();
    a.j("cons_write");
    a.nop();
    a.label("wr_file");
    match cfg.variant {
        Variant::Ultrix => {
            a.j("fs_write");
            a.nop();
        }
        Variant::Mach => {
            a.j("ipc_call");
            a.nop();
        }
    }
}

// =====================================================================
// The Ultrix in-kernel file system
// =====================================================================
fn emit_fs(a: &mut Asm, cfg: &KmainCfg) {
    // dir_find(a0 = user path ptr) -> v0 = dir entry base or 0.
    a.global_label("dir_find");
    a.li(T9, 0); // index
    a.label("df_outer");
    a.li(T0, dir_off::COUNT as i32);
    a.beq(T9, T0, "df_fail");
    a.nop();
    a.sll(T1, T9, 5); // *32
    a.la(T2, "k_fs_dir");
    a.addu(T1, T2, T1); // entry base
    a.lbu(T3, dir_off::NAME, T1);
    a.beq(T3, ZERO, "df_next"); // empty slot
    a.nop();
    // Compare names byte by byte.
    a.li(T4, 0);
    a.label("df_cmp");
    a.addu(T5, A0, T4);
    a.lbu(T6, 0, T5); // user byte
    a.addu(T5, T1, T4);
    a.lbu(T7, dir_off::NAME, T5);
    a.bne(T6, T7, "df_next");
    a.nop();
    a.beq(T6, ZERO, "df_hit"); // both NUL: match
    a.nop();
    a.b("df_cmp");
    a.addiu(T4, T4, 1);
    a.label("df_hit");
    a.jr(RA);
    a.move_(V0, T1);
    a.label("df_next");
    a.b("df_outer");
    a.addiu(T9, T9, 1);
    a.label("df_fail");
    a.jr(RA);
    a.li(V0, 0);

    // fd_alloc(a0 = dir entry base) -> v0 = fd (or -1).
    a.global_label("fd_alloc");
    a.li(T0, 0);
    a.label("fa_loop");
    a.li(T1, fd_off::COUNT as i32);
    a.beq(T0, T1, "fa_fail");
    a.nop();
    a.sll(T2, T0, 3);
    a.la(T3, "k_fdtab");
    a.addu(T2, T3, T2);
    a.lw(T4, fd_off::DIR, T2);
    a.li(T5, -1);
    a.beq(T4, T5, "fa_hit");
    a.nop();
    a.b("fa_loop");
    a.addiu(T0, T0, 1);
    a.label("fa_hit");
    a.sw(A0, fd_off::DIR, T2); // store the dir entry ADDRESS
    a.sw(ZERO, fd_off::OFFSET, T2);
    a.jr(RA);
    a.addiu(V0, T0, 3);
    a.label("fa_fail");
    a.jr(RA);
    a.li(V0, -1);

    // ---- open(path) ----
    a.global_label("sys_open");
    a.jal("dir_find");
    a.nop();
    a.beq(V0, ZERO, "op_fail");
    a.nop();
    a.move_(A0, V0);
    a.jal("fd_alloc");
    a.nop();
    a.j("hs_ret");
    a.nop();
    a.label("op_fail");
    a.li(V0, -1);
    a.j("hs_ret");
    a.nop();

    // ---- creat(path) ----
    a.global_label("sys_creat");
    a.move_(S2, A0); // keep path
    a.jal("dir_find");
    a.nop();
    a.bne(V0, ZERO, "cr_have"); // existing: truncate
    a.nop();
    // Allocate a fresh directory slot.
    a.li(T9, 0);
    a.label("cr_scan");
    a.li(T0, dir_off::COUNT as i32);
    a.beq(T9, T0, "op_fail");
    a.nop();
    a.sll(T1, T9, 5);
    a.la(T2, "k_fs_dir");
    a.addu(T1, T2, T1);
    a.lbu(T3, dir_off::NAME, T1);
    a.beq(T3, ZERO, "cr_fresh");
    a.nop();
    a.b("cr_scan");
    a.addiu(T9, T9, 1);
    a.label("cr_fresh");
    // Copy the name (at most 19 bytes + NUL).
    a.li(T4, 0);
    a.label("cr_name");
    a.addu(T5, S2, T4);
    a.lbu(T6, 0, T5);
    a.addu(T5, T1, T4);
    a.sb(T6, dir_off::NAME, T5);
    a.beq(T6, ZERO, "cr_named");
    a.nop();
    a.li(T7, 19);
    a.beq(T4, T7, "cr_named");
    a.nop();
    a.b("cr_name");
    a.addiu(T4, T4, 1);
    a.label("cr_named");
    // Reserve 64 blocks of disk.
    a.la(T5, "k_fs_next_block");
    a.lw(T6, 0, T5);
    a.sw(T6, dir_off::START, T1);
    a.addiu(T7, T6, 64);
    a.sw(T7, 0, T5);
    a.sw(ZERO, dir_off::LEN, T1);
    a.move_(V0, T1);
    a.label("cr_have");
    a.sw(ZERO, dir_off::LEN, V0); // truncate
    a.move_(A0, V0);
    a.jal("fd_alloc");
    a.nop();
    a.j("hs_ret");
    a.nop();

    // ---- close(fd) ----
    a.global_label("sys_close");
    a.addiu(T0, A0, -3);
    a.bltz(T0, "cl_done");
    a.nop();
    a.sll(T1, T0, 3);
    a.la(T2, "k_fdtab");
    a.addu(T1, T2, T1);
    a.li(T3, -1);
    a.sw(T3, fd_off::DIR, T1);
    a.label("cl_done");
    a.li(V0, 0);
    a.j("hs_ret");
    a.nop();

    // ---- read(fd, buf, len) ----
    // s1 = fd entry, s2 = dir entry, s3 = block, s4 = chunk size.
    a.global_label("sys_read");
    a.addiu(T0, A0, -3);
    a.bltz(T0, "rd_fail");
    a.nop();
    a.sll(T1, T0, 3);
    a.la(T2, "k_fdtab");
    a.addu(S1, T2, T1);
    a.lw(S2, fd_off::DIR, S1);
    a.li(T3, -1);
    a.beq(S2, T3, "rd_fail");
    a.nop();
    a.lw(T3, dir_off::LEN, S2);
    a.lw(T4, fd_off::OFFSET, S1);
    a.subu(T5, T3, T4); // remaining
    a.bgtz(T5, "rd_some");
    a.nop();
    a.li(V0, 0); // EOF
    a.j("hs_ret");
    a.nop();
    a.label("rd_some");
    // chunk = min(len, remaining, 4096 - off%4096)
    a.move_(S4, A2);
    a.slt(T6, T5, S4);
    a.beq(T6, ZERO, "rd_m1");
    a.nop();
    a.move_(S4, T5);
    a.label("rd_m1");
    a.andi(T7, T4, 0xfff); // block offset
    a.li(T8, 4096);
    a.subu(T8, T8, T7);
    a.slt(T6, T8, S4);
    a.beq(T6, ZERO, "rd_m2");
    a.nop();
    a.move_(S4, T8);
    a.label("rd_m2");
    a.lw(T9, dir_off::START, S2);
    a.srl(T5, T4, 12);
    a.addu(S3, T9, T5); // block number
    a.move_(S2, A1); // from here s2 = user buffer
    a.move_(A0, S3);
    a.jal("bc_lookup");
    a.nop();
    a.beq(V0, ZERO, "rd_miss");
    a.nop();
    a.lw(T0, bc_off::IN_FLIGHT, V0);
    a.bne(T0, ZERO, "hs_block_restart");
    a.nop();
    // Hit: copy out, advance, read ahead.
    a.lw(T1, bc_off::FRAME, V0);
    a.lui(T2, 0x8000);
    a.addu(T1, T1, T2); // kseg0 view of the frame
    a.lw(T4, fd_off::OFFSET, S1);
    a.andi(T3, T4, 0xfff);
    a.addu(A1, T1, T3); // src
    a.move_(A0, S2); // dst (user)
    a.move_(A2, S4);
    a.jal("kcopy");
    a.nop();
    a.lw(T4, fd_off::OFFSET, S1);
    a.addu(T4, T4, S4);
    a.sw(T4, fd_off::OFFSET, S1);
    a.addiu(A0, S3, 1);
    a.lw(A1, fd_off::DIR, S1);
    a.jal("maybe_readahead");
    a.nop();
    a.move_(V0, S4);
    a.j("hs_ret");
    a.nop();
    a.label("rd_miss");
    a.move_(A0, S3);
    a.jal("bc_alloc");
    a.nop();
    a.beq(V0, ZERO, "hs_block_restart"); // no frame: wait and retry
    a.nop();
    a.lw(A2, bc_off::FRAME, V0);
    a.move_(A3, V0);
    a.li(A0, 1); // read
    a.move_(A1, S3);
    a.jal("disk_start");
    a.nop();
    a.j("hs_block_restart");
    a.nop();
    a.label("rd_fail");
    a.li(V0, -1);
    a.j("hs_ret");
    a.nop();

    // ---- fs_write(fd, buf, len): jumped from sys_write ----
    a.global_label("fs_write");
    a.addiu(T0, A0, -3);
    a.bltz(T0, "rd_fail");
    a.nop();
    a.sll(T1, T0, 3);
    a.la(T2, "k_fdtab");
    a.addu(S1, T2, T1); // fd entry
    a.lw(S2, fd_off::DIR, S1); // dir entry
    a.li(T3, -1);
    a.beq(S2, T3, "rd_fail");
    a.nop();
    a.lw(T4, fd_off::OFFSET, S1);
    // chunk = min(len, 4096 - off%4096)
    a.move_(S4, A2);
    a.andi(T7, T4, 0xfff);
    a.li(T8, 4096);
    a.subu(T8, T8, T7);
    a.slt(T6, T8, S4);
    a.beq(T6, ZERO, "wr_m1");
    a.nop();
    a.move_(S4, T8);
    a.label("wr_m1");
    a.lw(T9, dir_off::START, S2);
    a.srl(T5, T4, 12);
    a.addu(S3, T9, T5); // block
    a.move_(T9, A1); // user buffer
    a.move_(A0, S3);
    a.sw(T9, proc_off::IPC_BUF, S0); // stash buf across calls
    a.jal("bc_lookup");
    a.nop();
    a.bne(V0, ZERO, "wr_have");
    a.nop();
    a.move_(A0, S3);
    a.jal("bc_alloc");
    a.nop();
    a.beq(V0, ZERO, "hs_block_restart");
    a.nop();
    a.sw(ZERO, bc_off::IN_FLIGHT, V0); // fresh frame, no disk read
    a.label("wr_have");
    a.lw(T0, bc_off::IN_FLIGHT, V0);
    a.bne(T0, ZERO, "hs_block_restart"); // write-back in progress
    a.nop();
    a.move_(S2, V0); // cache entry
                     // Copy user data into the frame.
    a.lw(T1, bc_off::FRAME, S2);
    a.lui(T2, 0x8000);
    a.addu(T1, T1, T2);
    a.lw(T4, fd_off::OFFSET, S1);
    a.andi(T3, T4, 0xfff);
    a.addu(A0, T1, T3); // dst (kseg0 frame)
    a.lw(A1, proc_off::IPC_BUF, S0); // src (user)
    a.move_(A2, S4);
    a.jal("kcopy");
    a.nop();
    // Advance offset and file length.
    a.lw(T4, fd_off::OFFSET, S1);
    a.addu(T4, T4, S4);
    a.sw(T4, fd_off::OFFSET, S1);
    a.lw(T5, fd_off::DIR, S1);
    a.lw(T6, dir_off::LEN, T5);
    a.slt(T7, T6, T4);
    a.beq(T7, ZERO, "wr_len_ok");
    a.nop();
    a.sw(T4, dir_off::LEN, T5);
    a.label("wr_len_ok");
    if cfg.conservative_write {
        // Conservative policy: write through and sleep until the disk
        // acknowledges (§4.4's "greatly increased I/O delays").
        a.li(A0, 2);
        a.move_(A1, S3);
        a.lw(A2, bc_off::FRAME, S2);
        a.move_(A3, S2);
        a.li(T0, 1);
        a.sw(T0, bc_off::IN_FLIGHT, S2);
        a.jal("disk_start");
        a.nop();
        // Sleep-after-complete: the return value is already decided.
        a.sw(S4, proc_off::reg(V0.0), S0);
        a.li(T1, 3);
        a.sw(T1, proc_off::STATE, S0);
        a.j("gv_exit");
        a.nop();
    } else {
        a.li(T0, 1);
        a.sw(T0, bc_off::DIRTY, S2);
        a.move_(V0, S4);
        a.j("hs_ret");
        a.nop();
    }

    // bc_lookup(a0 = block) -> v0 = entry base or 0.
    a.global_label("bc_lookup");
    a.li(T0, 0);
    a.label("bl_loop");
    a.li(T1, layout::BCACHE_ENTRIES as i32);
    a.beq(T0, T1, "bl_fail");
    a.nop();
    a.sll(T2, T0, 4);
    a.la(T3, "k_bcache");
    a.addu(T2, T3, T2);
    a.lw(T4, bc_off::BLOCK, T2);
    a.beq(T4, A0, "bl_hit");
    a.nop();
    a.b("bl_loop");
    a.addiu(T0, T0, 1);
    a.label("bl_hit");
    a.jr(RA);
    a.move_(V0, T2);
    a.label("bl_fail");
    a.jr(RA);
    a.li(V0, 0);

    // bc_alloc(a0 = block) -> v0 = entry base (marked in-flight for
    // the caller's disk read) or 0 when no victim is available.
    a.global_label("bc_alloc");
    a.li(T0, 0); // tries
    a.label("ba_loop");
    a.li(T1, layout::BCACHE_ENTRIES as i32);
    a.beq(T0, T1, "ba_fail");
    a.nop();
    a.la(T2, "k_bc_hand");
    a.lw(T3, 0, T2);
    a.addiu(T4, T3, 1);
    a.li(T5, layout::BCACHE_ENTRIES as i32);
    a.slt(T6, T4, T5);
    a.bne(T6, ZERO, "ba_wrap_ok");
    a.nop();
    a.li(T4, 0);
    a.label("ba_wrap_ok");
    a.sw(T4, 0, T2);
    a.sll(T7, T3, 4);
    a.la(T8, "k_bcache");
    a.addu(T7, T8, T7); // candidate entry
    a.lw(T9, bc_off::IN_FLIGHT, T7);
    a.bne(T9, ZERO, "ba_next");
    a.nop();
    a.lw(T9, bc_off::DIRTY, T7);
    a.bne(T9, ZERO, "ba_next"); // prefer clean victims
    a.nop();
    a.sw(A0, bc_off::BLOCK, T7);
    a.li(T9, 1);
    a.sw(T9, bc_off::IN_FLIGHT, T7);
    a.sw(ZERO, bc_off::DIRTY, T7);
    a.jr(RA);
    a.move_(V0, T7);
    a.label("ba_next");
    a.b("ba_loop");
    a.addiu(T0, T0, 1);
    a.label("ba_fail");
    a.jr(RA);
    a.li(V0, 0);

    // maybe_readahead(a0 = block, a1 = dir entry): start an
    // asynchronous read of the next block when the disk is free
    // (§5.1: "tracing changes the behavior of disk read ahead").
    a.global_label("maybe_readahead");
    a.addiu(SP, SP, -16);
    a.sw(RA, 12, SP);
    a.sw(S2, 8, SP);
    a.move_(S2, A0);
    // Within the file?
    a.lw(T0, dir_off::START, A1);
    a.lw(T1, dir_off::LEN, A1);
    a.addiu(T1, T1, 4095);
    a.srl(T1, T1, 12);
    a.addu(T1, T0, T1); // one past last block
    a.slt(T2, S2, T1);
    a.beq(T2, ZERO, "ra_out");
    a.nop();
    // Disk already busy? Skip (read-ahead is opportunistic).
    a.la(T3, "k_disk_busy");
    a.lw(T3, 0, T3);
    a.bne(T3, ZERO, "ra_out");
    a.nop();
    a.move_(A0, S2);
    a.jal("bc_lookup");
    a.nop();
    a.bne(V0, ZERO, "ra_out"); // already cached
    a.nop();
    a.move_(A0, S2);
    a.jal("bc_alloc");
    a.nop();
    a.beq(V0, ZERO, "ra_out");
    a.nop();
    a.li(A0, 1);
    a.move_(A1, S2);
    a.lw(A2, bc_off::FRAME, V0);
    a.move_(A3, V0);
    a.jal("disk_start");
    a.nop();
    a.label("ra_out");
    a.lw(RA, 12, SP);
    a.lw(S2, 8, SP);
    a.jr(RA);
    a.addiu(SP, SP, 16);
}

// =====================================================================
// Mach IPC and raw block I/O
// =====================================================================
fn emit_ipc(a: &mut Asm) {
    // ipc_call: forward the current syscall (s1 = number, a0..a2) to
    // the UNIX server. The request is staged in the *client's*
    // mailbox frame and queued; delivery copies it into the server's
    // mailbox when the server receives.
    a.global_label("ipc_call");
    // mb = kseg0 view of the client's mailbox frame.
    a.lw(T0, proc_off::MAILBOX_PHYS, S0);
    a.lui(T1, 0x8000);
    a.addu(T0, T0, T1);
    a.sw(S1, msg_off::OP, T0);
    a.sw(A0, msg_off::A1, T0);
    a.sw(A1, proc_off::IPC_BUF, S0); // reply data destination
                                     // Data staging by operation.
    a.li(T2, sys::OPEN as i32);
    a.beq(S1, T2, "ic_path");
    a.nop();
    a.li(T2, sys::CREAT as i32);
    a.beq(S1, T2, "ic_path");
    a.nop();
    a.li(T2, sys::WRITE as i32);
    a.beq(S1, T2, "ic_wdata");
    a.nop();
    // read/close: clamp the length.
    a.li(T3, msg_off::DATA_MAX as i32);
    a.slt(T4, T3, A2);
    a.beq(T4, ZERO, "ic_lenok");
    a.nop();
    a.move_(A2, T3);
    a.label("ic_lenok");
    a.sw(A2, msg_off::A2, T0);
    a.j("ic_enqueue");
    a.nop();
    // Copy the user path string into the message data area.
    a.label("ic_path");
    a.li(T4, 0);
    a.label("ic_pcopy");
    a.addu(T5, A0, T4);
    a.lbu(T6, 0, T5);
    a.addu(T5, T0, T4);
    a.sb(T6, msg_off::DATA, T5);
    a.beq(T6, ZERO, "ic_pdone");
    a.nop();
    a.li(T7, 60);
    a.beq(T4, T7, "ic_pdone");
    a.nop();
    a.b("ic_pcopy");
    a.addiu(T4, T4, 1);
    a.label("ic_pdone");
    // Path messages carry the string in DATA; record its extent so
    // delivery copies it.
    a.li(T4, 64);
    a.sw(T4, msg_off::A2, T0);
    a.j("ic_enqueue");
    a.nop();
    // Copy write data (clamped) into the message.
    a.label("ic_wdata");
    a.li(T3, msg_off::DATA_MAX as i32);
    a.slt(T4, T3, A2);
    a.beq(T4, ZERO, "ic_wlenok");
    a.nop();
    a.move_(A2, T3);
    a.label("ic_wlenok");
    a.sw(A2, msg_off::A2, T0);
    a.li(T4, 0);
    a.label("ic_wcopy");
    a.beq(T4, A2, "ic_enqueue");
    a.nop();
    a.addu(T5, A1, T4);
    a.lbu(T6, 0, T5); // user byte (client mapping is current)
    a.addu(T5, T0, T4);
    a.sb(T6, msg_off::DATA, T5);
    a.b("ic_wcopy");
    a.addiu(T4, T4, 1);
    a.label("ic_enqueue");
    // Queue the client and block it in ipc-wait.
    a.la(T0, "k_cur_proc");
    a.lw(T1, 0, T0);
    a.la(T2, "k_ipcq");
    a.la(T3, "k_ipcq_tail");
    a.lw(T4, 0, T3);
    a.sll(T5, T4, 2);
    a.addu(T5, T2, T5);
    a.sw(T1, 0, T5);
    a.addiu(T4, T4, 1);
    a.andi(T4, T4, 7); // 8-deep ring
    a.sw(T4, 0, T3);
    a.li(T6, 5);
    a.sw(T6, proc_off::STATE, S0);
    // Wake the server if it is parked in receive.
    a.la(T7, "k_server_idx");
    a.lw(T7, 0, T7);
    emit_proc_base(a, T8, T7, T9);
    a.lw(T9, proc_off::STATE, T8);
    a.li(T0, 6);
    a.bne(T9, T0, "ic_nowake");
    a.nop();
    a.li(T0, 1);
    a.sw(T0, proc_off::STATE, T8);
    a.label("ic_nowake");
    a.la(T1, "k_resched");
    a.li(T2, 1);
    a.sw(T2, 0, T1);
    a.j("gv_exit");
    a.nop();

    // ---- recv (server): deliver the next queued request ----
    a.global_label("sys_recv");
    a.la(T0, "k_ipcq_head");
    a.lw(T1, 0, T0);
    a.la(T2, "k_ipcq_tail");
    a.lw(T3, 0, T2);
    a.bne(T1, T3, "rv_have");
    a.nop();
    // Queue empty: park in receive-wait (restart on wake).
    a.lw(T4, proc_off::EPC, S0);
    a.addiu(T4, T4, -4);
    a.sw(T4, proc_off::EPC, S0);
    a.li(T5, 6);
    a.sw(T5, proc_off::STATE, S0);
    a.j("gv_exit");
    a.nop();
    a.label("rv_have");
    a.la(T4, "k_ipcq");
    a.sll(T5, T1, 2);
    a.addu(T5, T4, T5);
    a.lw(S2, 0, T5); // client index
    a.addiu(T1, T1, 1);
    a.andi(T1, T1, 7);
    a.sw(T1, 0, T0);
    a.sw(S2, proc_off::REPLY_TO, S0);
    // Copy client mailbox -> server mailbox (kseg0 both sides).
    emit_proc_base(a, T6, S2, T7);
    a.lw(A1, proc_off::MAILBOX_PHYS, T6);
    a.lui(T7, 0x8000);
    a.addu(A1, A1, T7);
    a.lw(A0, proc_off::MAILBOX_PHYS, S0);
    a.addu(A0, A0, T7);
    // length = header + data bytes (A2 field, clamped at build).
    a.lw(T8, msg_off::A2, A1);
    a.addiu(A2, T8, msg_off::DATA);
    a.jal("kcopy");
    a.nop();
    a.lw(A1, proc_off::MAILBOX_PHYS, S0);
    a.lui(T7, 0x8000);
    a.addu(A1, A1, T7);
    a.lw(V0, msg_off::OP, A1);
    a.j("hs_ret");
    a.nop();

    // ---- reply (server, a0 = result): finish the client's call ----
    a.global_label("sys_reply");
    a.lw(S2, proc_off::REPLY_TO, S0);
    a.bltz(S2, "rp_done");
    a.nop();
    emit_proc_base(a, S3, S2, T0);
    a.sw(A0, proc_off::reg(V0.0), S3); // client's return value
                                       // If the finished op was a read, copy data server->client.
    a.lw(T1, proc_off::MAILBOX_PHYS, S0);
    a.lui(T2, 0x8000);
    a.addu(T1, T1, T2); // server mailbox
    a.lw(T3, msg_off::OP, T1);
    a.li(T4, sys::READ as i32);
    a.bne(T3, T4, "rp_nodata");
    a.nop();
    a.blez(A0, "rp_nodata");
    a.nop();
    // kcopy_cross(client, dst uvaddr, src kseg0, n)
    a.move_(A2, A0); // n
    a.addiu(A1, T1, msg_off::DATA); // src
    a.lw(A0, proc_off::IPC_BUF, S3); // client buffer vaddr
    a.move_(A3, S2); // client index
    a.jal("kcopy_cross");
    a.nop();
    a.label("rp_nodata");
    a.li(T5, 1);
    a.sw(T5, proc_off::STATE, S3); // client ready
    a.li(T6, -1);
    a.sw(T6, proc_off::REPLY_TO, S0);
    a.la(T7, "k_resched");
    a.li(T8, 1);
    a.sw(T8, 0, T7);
    a.label("rp_done");
    a.li(V0, 0);
    a.j("hs_ret");
    a.nop();
}

fn emit_blockio(a: &mut Asm) {
    // sys_bread(a0 = block, a1 = page-aligned server vaddr) /
    // sys_bwrite: raw block transfer for the UNIX server. DMA goes
    // straight to the server's frame (the kernel walks the server's
    // page table in software).
    for (name, cmd) in [("sys_bread", 1i32), ("sys_bwrite", 2i32)] {
        let issue = format!("bi_issue_{cmd}");
        a.global_label(name);
        // Completed already?
        a.la(T0, "k_bread_done");
        a.lw(T1, 0, T0);
        a.beq(T1, ZERO, &issue);
        a.nop();
        a.la(T2, "k_bread_block");
        a.lw(T3, 0, T2);
        a.bne(T3, A0, &issue);
        a.nop();
        a.la(T2, "k_bread_cmd");
        a.lw(T3, 0, T2);
        a.li(T4, cmd);
        a.bne(T3, T4, &issue);
        a.nop();
        // Yes: consume the completion.
        a.sw(ZERO, 0, T0);
        a.li(V0, 0);
        a.j("hs_ret");
        a.nop();
        a.label(&issue);
        // Disk free?
        a.la(T5, "k_disk_busy");
        a.lw(T6, 0, T5);
        a.bne(T6, ZERO, "hs_block_restart");
        a.nop();
        // Translate the server buffer: walk our own page table in
        // kseg0 (pt_phys(cur) + vpn*4).
        a.la(T7, "k_cur_proc");
        a.lw(T7, 0, T7);
        a.li(T8, layout::PT_BYTES as i32);
        a.mult(T7, T8);
        a.mflo(T8);
        a.li(T9, (layout::PT_POOL_PHYS + layout::KSEG0) as i32);
        a.addu(T8, T8, T9); // table base (kseg0)
        a.srl(T9, A1, 12);
        a.sll(T9, T9, 2);
        a.addu(T8, T8, T9);
        a.lw(T9, 0, T8); // PTE
        a.srl(T9, T9, 12);
        a.sll(T9, T9, 12); // frame paddr
                           // Record and start.
        a.la(T0, "k_bread_block");
        a.sw(A0, 0, T0);
        a.la(T0, "k_bread_cmd");
        a.li(T1, cmd);
        a.sw(T1, 0, T0);
        a.la(T0, "k_bread_done");
        a.sw(ZERO, 0, T0);
        a.move_(A1, A0); // block
        a.li(A0, cmd);
        a.move_(A2, T9); // frame paddr
        a.li(A3, 0); // no cache entry
        a.jal("disk_start");
        a.nop();
        a.j("hs_block_restart");
        a.nop();
    }
}

// =====================================================================
// Utilities: kcopy, cross-space copy, console output, I-cache flush
// =====================================================================
fn emit_util(a: &mut Asm, cfg: &KmainCfg) {
    // kcopy(a0 = dst, a1 = src, a2 = n): word loop when everything is
    // aligned, byte loop otherwise.
    a.global_label("kcopy");
    a.or(T0, A0, A1);
    a.or(T0, T0, A2);
    a.andi(T0, T0, 3);
    a.bne(T0, ZERO, "kc_bytes");
    a.nop();
    a.li(T1, 0);
    a.label("kc_words");
    a.beq(T1, A2, "kc_done");
    a.nop();
    a.addu(T2, A1, T1);
    a.lw(T3, 0, T2);
    a.addu(T2, A0, T1);
    a.sw(T3, 0, T2);
    a.b("kc_words");
    a.addiu(T1, T1, 4);
    a.label("kc_bytes");
    a.li(T1, 0);
    a.label("kc_bloop");
    a.beq(T1, A2, "kc_done");
    a.nop();
    a.addu(T2, A1, T1);
    a.lbu(T3, 0, T2);
    a.addu(T2, A0, T1);
    a.sb(T3, 0, T2);
    a.b("kc_bloop");
    a.addiu(T1, T1, 1);
    a.label("kc_done");
    a.jr(RA);
    a.nop();

    // kcopy_cross(a0 = dst uvaddr in proc a3, a1 = src kseg0, a2 = n):
    // copies into another process's address space by walking its page
    // table through kseg0, page by page.
    a.global_label("kcopy_cross");
    a.li(T0, 0); // progress
    a.label("kx_loop");
    a.beq(T0, A2, "kx_done");
    a.nop();
    a.addu(T1, A0, T0); // dst vaddr
                        // PTE address: pt_phys(a3) + vpn*4, via kseg0.
    a.li(T2, layout::PT_BYTES as i32);
    a.mult(A3, T2);
    a.mflo(T2);
    a.li(T3, (layout::PT_POOL_PHYS + layout::KSEG0) as i32);
    a.addu(T2, T2, T3);
    a.srl(T3, T1, 12);
    a.sll(T3, T3, 2);
    a.addu(T2, T2, T3);
    a.lw(T3, 0, T2); // PTE
    a.srl(T3, T3, 12);
    a.sll(T3, T3, 12);
    a.andi(T4, T1, 0xfff);
    a.addu(T3, T3, T4);
    a.lui(T4, 0x8000);
    a.addu(T3, T3, T4); // dst kseg0
    a.addu(T5, A1, T0);
    a.lbu(T6, 0, T5);
    a.sb(T6, 0, T3);
    a.b("kx_loop");
    a.addiu(T0, T0, 1);
    a.label("kx_done");
    a.jr(RA);
    a.nop();

    // ---- Console output: the hand-instrumented showcase (§3.5).
    // The loop body is inside a hand-traced region: epoxie leaves it
    // alone, and the code emits its own per-iteration record — one
    // basic-block word (the `k_cons_record` label) and two address
    // words (the user load and the device store). ----
    a.global_label("cons_write");
    // a1 = user buf, a2 = len (from the syscall dispatcher).
    a.la(T7, "k_trace_on");
    a.lw(T7, 0, T7);
    a.li(T6, DEV_CONSOLE);
    a.move_(T5, A1);
    a.move_(T4, A2);
    a.begin_hand_traced();
    a.label("cons_loop");
    a.beq(T4, ZERO, "cons_done");
    a.nop();
    a.beq(T7, ZERO, "cons_notrace");
    a.nop();
    // Hand-emitted trace record.
    a.la(T8, "k_cons_record");
    a.sw(T8, 0, wrl_trace::layout::XREG1);
    a.sw(T5, 4, wrl_trace::layout::XREG1); // load address
    a.sw(T6, 8, wrl_trace::layout::XREG1); // store address
    a.addiu(wrl_trace::layout::XREG1, wrl_trace::layout::XREG1, 12);
    a.label("cons_notrace");
    a.global_label("k_cons_record");
    a.lbu(T9, 0, T5); // the user byte (recorded above)
    a.sw(T9, 0, T6); // to the console device
    a.addiu(T5, T5, 1);
    a.b("cons_loop");
    a.addiu(T4, T4, -1);
    a.label("cons_done");
    a.end_hand_traced();
    a.move_(V0, A2);
    a.j("hs_ret");
    a.nop();

    // ---- I-cache flush over the whole cache (first dispatch of a
    // new image). The buggy variant isolates the cache and "forgets"
    // to de-isolate — every subsequent fetch until the next dispatch
    // goes uncached (§4.4). ----
    a.global_label("k_iflush");
    if cfg.icache_flush_bug {
        a.mfc0(T0, c0::STATUS);
        a.lui(T1, 0x0001); // IsC
        a.or(T0, T0, T1);
        a.mtc0(T0, c0::STATUS);
        // BUG: IsC is never cleared here; dispatch_tail's status
        // write cleans it up much later.
    }
    a.lui(T2, 0x8000);
    a.lui(T3, 0x8001); // 64 KB worth of lines
    a.label("if_loop");
    a.inst(wrl_isa::Inst::Cache {
        op: 0,
        base: T2,
        off: 0,
    });
    a.addiu(T2, T2, 16);
    a.sltu(T4, T2, T3);
    a.bne(T4, ZERO, "if_loop");
    a.nop();
    if !cfg.icache_flush_bug {
        // (Nothing to clean up: the correct routine never isolates.)
    }
    a.jr(RA);
    a.nop();
}
