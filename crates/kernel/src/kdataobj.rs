//! The kernel data segment.
//!
//! Most values are emitted directly from the build configuration; the
//! loader pokes only what depends on the loaded binaries (process
//! table, directory, KTLB directory).

use wrl_isa::asm::Asm;
use wrl_isa::Object;
use wrl_trace::layout::bk;

use crate::kdata::{bc_off, dir_off, fd_off, frame_off, proc_off};
use crate::layout;

/// Data-segment configuration.
#[derive(Clone, Copy, Debug)]
pub struct KdataCfg {
    /// Trace generation enabled from boot.
    pub trace_on: bool,
    /// In-kernel trace buffer size in bytes.
    pub ktrace_bytes: u32,
    /// Clock interval in cycles (already dilation-scaled).
    pub clock_interval: u32,
}

/// Builds the kernel data object.
pub fn object(cfg: &KdataCfg) -> Object {
    let mut a = Asm::new("kdata");
    a.data();
    a.align4();

    a.global_label("k_cur_proc");
    a.word(-1i32 as u32);
    a.global_label("k_cur_save");
    a.word(0);
    a.global_label("k_resched");
    a.word(0);
    a.global_label("k_ticks");
    a.word(0);
    a.global_label("k_nlive");
    a.word(0); // poked by the loader
    a.global_label("k_server_idx");
    a.word(-1i32 as u32); // poked for Mach

    a.global_label("k_kstack_ptr");
    a.word(0);
    a.global_label("k_kstack");
    a.space(frame_off::SIZE * 8);
    // C stacks for nested service code, topmost first.
    a.space(16 * 1024);
    a.global_label("k_cstack_top");
    a.word(0);

    a.global_label("k_ktrace_bk");
    a.space(bk::SIZE);
    a.global_label("k_ktrace_regs");
    // Initial kernel xreg1: main buffer or bit bucket.
    if cfg.trace_on {
        a.word(layout::KTRACE_BUF);
    } else {
        a.word_sym("k_bitbucket", 0);
    }
    a.word(0);
    a.word(0);
    a.global_label("k_trace_on");
    a.word(u32::from(cfg.trace_on));
    a.global_label("k_cfg_buf_base");
    a.word(layout::KTRACE_BUF);
    a.global_label("k_cfg_soft_end");
    a.word(layout::KTRACE_BUF + cfg.ktrace_bytes - layout::KTRACE_SLACK);
    a.global_label("k_cfg_hard_end");
    a.word(layout::KTRACE_BUF + cfg.ktrace_bytes);
    a.global_label("k_cfg_clock");
    a.word(cfg.clock_interval);
    a.global_label("k_bb_base");
    a.word_sym("k_bitbucket", 0);
    a.global_label("k_bb_soft");
    a.word_sym("k_bitbucket", 64 * 1024);
    a.global_label("k_bb_hard");
    a.word_sym("k_bitbucket", 126 * 1024);
    a.global_label("k_bitbucket");
    a.space(128 * 1024);

    a.global_label("k_ktlb_dir");
    a.space(layout::MAX_PROCS as u32 * 512 * 4);

    a.global_label("k_proc");
    a.space(layout::MAX_PROCS as u32 * proc_off::SIZE);

    a.global_label("k_bcache");
    for i in 0..layout::BCACHE_ENTRIES {
        a.word(-1i32 as u32); // BLOCK
        a.word(layout::BCACHE_PHYS + i * 4096); // FRAME
        a.word(0); // IN_FLIGHT
        a.word(0); // DIRTY
    }
    a.global_label("k_bc_hand");
    a.word(0);

    a.global_label("k_fdtab");
    for _ in 0..fd_off::COUNT {
        a.word(-1i32 as u32);
        a.word(0);
    }

    a.global_label("k_fs_dir");
    a.space(dir_off::COUNT * dir_off::SIZE);
    a.global_label("k_fs_next_block");
    a.word(4); // poked by the loader

    for name in [
        "k_disk_busy",
        "k_disk_cur_entry",
        "k_dpend_valid",
        "k_dpend_cmd",
        "k_dpend_block",
        "k_dpend_addr",
        "k_dpend_entry",
        "k_bread_done",
        "k_bread_block",
        "k_bread_cmd",
        "k_ipcq_head",
        "k_ipcq_tail",
    ] {
        a.global_label(name);
        a.word(0);
    }
    a.global_label("k_ipcq");
    a.space(8 * 4);

    // Per-slot trace-page PTE lists (17 entries each): the dispatch
    // path maps these into the page table so each thread sees its own
    // trace pages at the fixed virtual addresses (§3.6).
    a.global_label("k_tpte");
    a.space(layout::MAX_PROCS as u32 * 17 * 4);
    // Next free thread trace-frame set in the loader-staged pool.
    a.global_label("k_tpool_next");
    a.word(0);

    let _ = bc_off::SIZE; // layout sanity references
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_object_defines_the_kernel_globals() {
        let o = object(&KdataCfg {
            trace_on: true,
            ktrace_bytes: 1 << 20,
            clock_interval: 100_000,
        });
        for s in ["k_cur_proc", "k_proc", "k_bcache", "k_fs_dir", "k_ipcq"] {
            assert!(o.symbol(s).is_some(), "missing {s}");
        }
        assert!(o.text.is_empty());
        assert!(o.data.len() > 160 * 1024);
    }
}
