//! The uninstrumented kernel core: exception vectors, register
//! save/restore stubs, and the trace-control subsystem.
//!
//! This object is placed first in the kernel link so that its offset
//! 0x000 is the UTLB refill vector and offset 0x080 the general
//! exception vector. Everything in it is "part of the tracing system
//! and should not be traced" or "too delicate to be rewritten
//! mechanically" (§3.3), so the whole object is marked uninstrumented
//! and epoxie copies it verbatim — preserving the vector offsets in
//! the instrumented kernel.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_isa::{Inst, Object};
use wrl_machine::cp0::reg as c0;
use wrl_machine::dev::{regs as devregs, DEV_BASE_K1};
use wrl_trace::format::{ctl, CtlOp};
use wrl_trace::layout::{bk, XREG1, XREG3};

use crate::kdata::{frame_off, proc_off};

/// Registers saved in exception frames: everything except `zero`,
/// `k0` and `k1` (the MIPS convention — k0/k1 belong to the handler).
fn saved_regs() -> Vec<u8> {
    (1u8..32).filter(|&r| r != 26 && r != 27).collect()
}

/// Builds the vectors object.
pub fn object() -> Object {
    let mut a = Asm::new("kvectors");
    a.begin_uninstrumented();

    // ================= UTLB refill vector (offset 0x000) ===========
    // The paper's "nine-instruction miss handler" (§4.1). EPC is
    // captured in k1 first because the PTE load from kseg2 can itself
    // miss (a KTLB miss through the general vector), which overwrites
    // EPC; the general handler preserves k1 across that excursion.
    a.global_label("__utlb");
    a.mfc0(K1, c0::EPC);
    a.mfc0(K0, c0::CONTEXT);
    a.nop(); // CP0 read interlock
    a.lw(K0, 0, K0); // the PTE (may nest a KTLB miss)
    a.nop(); // load delay
    a.mtc0(K0, c0::ENTRYLO);
    a.inst(Inst::Tlbwr);
    a.jr(K1);
    a.inst(Inst::Rfe);
    // Pad to the general vector at 0x80.
    while a.here() < 0x80 {
        a.nop();
    }

    // ================= General vector (offset 0x080) ===============
    a.global_label("__genvec");
    a.j("gen_handler");
    a.nop();

    // ================= Entry stub ==================================
    a.global_label("gen_handler");
    a.mfc0(K0, c0::STATUS);
    a.andi(K0, K0, 0x8); // KUp: came from user?
    a.bne(K0, ZERO, "gv_user");
    a.nop();

    // ---- From kernel: push a nested-exception frame (§3.5: "the
    // nested interrupts on the DECstation require the tracing system
    // to use a stack to maintain its state"). ----
    a.label("gv_kernel");
    // k1 may be live: it holds the interrupted UTLB handler's saved
    // EPC when this is a nested KTLB miss. Preserve it in the frame
    // (k0 is dead — the status check above already consumed it).
    a.la(K0, "k_kstack_ptr");
    a.lw(K0, 0, K0);
    a.sw(K1, frame_off::reg(27), K0);
    a.move_(K1, K0);
    for r in saved_regs() {
        a.sw(Reg(r), frame_off::reg(r), K1);
    }
    a.mfc0(K0, c0::EPC);
    a.sw(K0, frame_off::EPC, K1);
    a.mfhi(K0);
    a.sw(K0, frame_off::HI, K1);
    a.mflo(K0);
    a.sw(K0, frame_off::LO, K1);
    a.la(T0, "k_kstack_ptr");
    a.addiu(T1, K1, frame_off::SIZE as i16);
    a.sw(T1, 0, T0);
    // Three cases for the interrupted context's trace registers
    // (frame XK): 1 = ordinary interrupted kernel (live xregs are the
    // kernel's; resume normally); 0 = KTLB miss nested in the UTLB
    // handler that fired from USER mode (live xregs are a user's:
    // load the kernel's, return the user's on exit, and return
    // directly to the user EPC the refill handler saved in k1);
    // 2 = KTLB miss nested in the UTLB handler that fired from KERNEL
    // mode (kernel touching user memory: live xregs are already the
    // kernel's — reloading the parked pointer here would clobber live
    // trace — but the refill handler still cannot be resumed, so exit
    // returns directly to its saved k1).
    a.lw(T2, frame_off::EPC, K1);
    a.lui(T3, 0x8000);
    a.subu(T2, T2, T3);
    a.sltiu(T2, T2, 0x80); // 1 if EPC in the UTLB handler
    a.beq(T2, ZERO, "gvk_kxregs");
    a.nop();
    a.mfc0(T4, c0::STATUS);
    a.andi(T4, T4, 0x20); // KUo: the refill handler's interruptee
    a.beq(T4, ZERO, "gvk_nested_kernel");
    a.nop();
    a.sw(ZERO, frame_off::XK, K1); // case 0: user xregs in the frame
    a.la(XREG3, "k_ktrace_bk");
    a.la(T4, "k_ktrace_regs");
    a.lw(XREG1, 0, T4);
    a.b("gvk_xdone"); // user bk lives in user memory: nothing to save
    a.nop();
    a.label("gvk_nested_kernel");
    a.li(T4, 2); // case 2: keep the live kernel xregs
    a.sw(T4, frame_off::XK, K1);
    a.b("gvk_savebk");
    a.nop();
    a.label("gvk_kxregs");
    a.li(T4, 1);
    a.sw(T4, frame_off::XK, K1);
    // The interrupted kernel context may be mid-bbtrace/memtrace:
    // its bookkeeping slots (SCRATCH/SCRATCH2/RA_SAVE) would be
    // clobbered by this handler's own trace calls. Save them.
    a.label("gvk_savebk");
    a.la(T5, "k_ktrace_bk");
    a.lw(T6, bk::SCRATCH, T5);
    a.sw(T6, frame_off::BK, K1);
    a.lw(T6, bk::SCRATCH2, T5);
    a.sw(T6, frame_off::BK + 4, K1);
    a.lw(T6, bk::RA_SAVE, T5);
    a.sw(T6, frame_off::BK + 8, K1);
    a.label("gvk_xdone");
    // Capture the exception state NOW: the service path may itself
    // take nested TLB faults that overwrite CP0 Cause/BadVAddr (this
    // is exactly how trace-system state maintenance bites, §3.3).
    // s1/s2 are frame-saved and survive to gv_dispatch.
    a.mfc0(S1, c0::CAUSE);
    a.mfc0(S2, c0::BADVADDR);
    // KEnter(cause): xreg1 now holds the kernel trace pointer.
    a.la(T0, "k_trace_on");
    a.lw(T0, 0, T0);
    a.beq(T0, ZERO, "gvk_notrace");
    a.nop();
    a.andi(T1, S1, 0x7c); // exccode << 2
    a.sll(T1, T1, 6); // payload byte = exccode << 8
    a.ori(T1, T1, CtlOp::KEnter as u16);
    a.sw(T1, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    a.label("gvk_notrace");
    a.j("gv_dispatch");
    a.nop();

    // ---- From user: save into the process table and bring the
    // kernel's trace state in (§3.1: "exception handlers were modified
    // to copy trace from per-process buffers … whenever traced user
    // processes are interrupted"). ----
    a.label("gv_user");
    a.la(K1, "k_cur_save");
    a.lw(K1, 0, K1);
    for r in saved_regs() {
        a.sw(Reg(r), proc_off::reg(r), K1);
    }
    a.mfc0(K0, c0::EPC);
    a.sw(K0, proc_off::EPC, K1);
    a.mfhi(K0);
    a.sw(K0, proc_off::HI, K1);
    a.mflo(K0);
    a.sw(K0, proc_off::LO, K1);
    // Capture Cause/BadVAddr before the trace copy: copying the user
    // buffer takes nested TLB refills that overwrite them.
    a.mfc0(S1, c0::CAUSE);
    a.mfc0(S2, c0::BADVADDR);
    a.move_(A0, K1);
    a.move_(A1, S1);
    a.jal("ktrace_enter");
    a.nop();
    a.j("gv_dispatch");
    a.nop();

    // ================= ktrace_enter ================================
    // a0 = process-table entry. Loads the kernel trace registers,
    // copies the per-process buffer into the in-kernel buffer
    // (preserving interleaving), resets the user's trace pointer, and
    // writes the CtxSwitch/KEnter control words.
    a.global_label("ktrace_enter");
    a.la(XREG3, "k_ktrace_bk");
    a.la(T0, "k_ktrace_regs");
    a.lw(XREG1, 0, T0);
    a.la(T0, "k_trace_on");
    a.lw(T0, 0, T0);
    a.lw(T2, proc_off::TRACED, A0);
    a.beq(T2, ZERO, "kte_kenter");
    a.nop();
    // If an *interrupt* caught the process inside the trace runtime,
    // it may be between a trace store and its pointer bump: copying
    // and resetting now would lose or duplicate an entry. Defer to
    // the next kernel entry (§3.3's "uninstrumented code in the
    // traced kernel must be carefully handled so as to preserve and
    // maintain the state of the tracing system" — ditto user side).
    a.andi(T3, A1, 0x7c);
    a.li(T4, 0 << 2); // Int
    a.bne(T3, T4, "kte_copy_ok");
    a.nop();
    a.lw(T3, proc_off::EPC, A0);
    a.lw(T4, proc_off::RT_START, A0);
    a.sltu(T4, T3, T4);
    a.bne(T4, ZERO, "kte_copy_ok"); // epc below the runtime
    a.nop();
    a.lw(T4, proc_off::RT_END, A0);
    a.sltu(T4, T3, T4);
    a.bne(T4, ZERO, "kte_kenter"); // inside the runtime: defer
    a.nop();
    a.label("kte_copy_ok");
    // Reset the user trace pointer even when global tracing is off —
    // otherwise a full user buffer would re-trap forever.
    a.beq(T0, ZERO, "kte_reset_only");
    a.nop();
    // CtxSwitch(token): the trace-context token, distinct per thread.
    a.lw(T3, proc_off::TOKEN, A0);
    a.sll(T3, T3, 8);
    a.ori(T3, T3, CtlOp::CtxSwitch as u16);
    a.sw(T3, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    // Copy [TRACE_BUF, saved user xreg1).
    a.lw(T4, proc_off::reg(XREG1.0), A0);
    a.li(T5, wrl_trace::layout::user::TRACE_BUF as i32);
    a.label("kte_copy");
    a.beq(T5, T4, "kte_reset_only");
    a.nop();
    a.lw(T6, 0, T5); // user virtual address: TLB does the work
    a.sw(T6, 0, XREG1);
    a.addiu(T5, T5, 4);
    a.b("kte_copy");
    a.addiu(XREG1, XREG1, 4);
    a.label("kte_reset_only");
    a.li(T5, wrl_trace::layout::user::TRACE_BUF as i32);
    a.sw(T5, proc_off::reg(XREG1.0), A0);
    a.label("kte_kenter");
    a.beq(T0, ZERO, "kte_over");
    a.nop();
    a.andi(T7, A1, 0x7c);
    a.sll(T7, T7, 6);
    a.ori(T7, T7, CtlOp::KEnter as u16);
    a.sw(T7, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    a.label("kte_over");
    // Hard-overflow safety: if even the slack is exhausted, flush now.
    a.lw(T8, bk::HARD_END, XREG3);
    a.sltu(T8, T8, XREG1);
    a.beq(T8, ZERO, "kte_ret");
    a.nop();
    a.jal("ktrace_flush_now");
    a.nop();
    a.label("kte_ret");
    a.jr(RA);
    a.nop();

    // ================= ktrace_flush_now ============================
    // Appends TraceOff, rings the analysis doorbell (the machine
    // pauses while the host analysis program drains the buffer — the
    // trace-analysis mode of §3.1), then resets the pointer and
    // appends TraceOn. Leaf; clobbers t8/t9.
    a.global_label("ktrace_flush_now");
    a.li(T9, ctl(CtlOp::TraceOff, 0) as i32);
    a.sw(T9, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    a.li(T9, (DEV_BASE_K1 + devregs::TRACE_REQ) as i32);
    a.sw(XREG1, 0, T9); // doorbell: payload = current fill pointer
    a.la(T8, "k_cfg_buf_base");
    a.lw(XREG1, 0, T8);
    a.la(T8, "k_cfg_soft_end");
    a.lw(T9, 0, T8);
    a.sw(T9, bk::BUF_END, XREG3);
    a.sw(ZERO, bk::NEED_FLUSH, XREG3);
    a.li(T9, ctl(CtlOp::TraceOn, 0) as i32);
    a.sw(T9, 0, XREG1);
    a.jr(RA);
    a.addiu(XREG1, XREG1, 4);

    // ================= Exception exit ==============================
    // Reached from the service code at a *safe point*: "provisions
    // must be made for critical system operations to complete before
    // tracing is suspended" (§3.3) — the buffer-full flag set by the
    // kernel bbtrace is honoured only here.
    a.global_label("gv_exit");
    // Nested? (frame stack non-empty → return to interrupted kernel.)
    // The flush check happens only on the full-unwind path: rewinding
    // the buffer while an interrupted kernel context is mid-entry
    // below us would corrupt its in-flight store.
    a.la(T5, "k_kstack_ptr");
    a.lw(T6, 0, T5);
    a.la(T7, "k_kstack");
    a.beq(T6, T7, "gve_flush_check");
    a.nop();
    a.b("gve_pop_entry");
    a.nop();
    a.label("gve_flush_check");
    a.lw(T1, bk::NEED_FLUSH, XREG3);
    a.beq(T1, ZERO, "gve_sched");
    a.nop();
    a.la(T0, "k_trace_on");
    a.lw(T0, 0, T0);
    a.beq(T0, ZERO, "gve_bitbucket");
    a.nop();
    a.jal("ktrace_flush_now");
    a.nop();
    a.b("gve_sched");
    a.nop();
    // Tracing is off: the "buffer" is the bit bucket — just rewind it.
    a.label("gve_bitbucket");
    a.la(T2, "k_bb_base");
    a.lw(XREG1, 0, T2);
    a.la(T2, "k_bb_soft");
    a.lw(T3, 0, T2);
    a.sw(T3, bk::BUF_END, XREG3);
    a.sw(ZERO, bk::NEED_FLUSH, XREG3);
    a.b("gve_sched");
    a.nop();
    a.label("gve_pop_entry");
    // Pop the frame: KExit, then restore (keeping the live xreg1).
    a.la(T0, "k_trace_on");
    a.lw(T0, 0, T0);
    a.beq(T0, ZERO, "gve_pop");
    a.nop();
    a.li(T1, ctl(CtlOp::KExit, 0) as i32);
    a.sw(T1, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    a.label("gve_pop");
    a.addiu(T6, T6, -(frame_off::SIZE as i16));
    a.sw(T6, 0, T5);
    // If the frame holds a *user* context's xregs (a KTLB miss nested
    // inside the UTLB refill handler), park the kernel trace pointer,
    // restore the user's, and return DIRECTLY to the original faulting
    // context: the refill handler cannot be resumed (the entry stub
    // consumed its k0), so the KTLB path completed the user refill and
    // we unwind both exception levels at once. The original EPC is the
    // frame's saved k1 (the refill handler's first act was to capture
    // EPC there), and the original KU/IE level is recovered from the
    // status stack's oldest slot.
    a.lw(T0, frame_off::XK, T6);
    // Cases 1 and 2: restore the interrupted context's bookkeeping
    // slots (they were live kernel trace state).
    a.beq(T0, ZERO, "gve_bkdone");
    a.nop();
    a.la(T1, "k_ktrace_bk");
    a.lw(T2, frame_off::BK, T6);
    a.sw(T2, bk::SCRATCH, T1);
    a.lw(T2, frame_off::BK + 4, T6);
    a.sw(T2, bk::SCRATCH2, T1);
    a.lw(T2, frame_off::BK + 8, T6);
    a.sw(T2, bk::RA_SAVE, T1);
    a.label("gve_bkdone");
    a.li(T1, 1);
    a.beq(T0, T1, "gve_keepx"); // case 1: ordinary nested kernel
    a.nop();
    a.bne(T0, ZERO, "gve_direct"); // case 2: keep xregs, direct return
    a.nop();
    // Case 0: give the user context its trace registers back.
    a.la(T1, "k_ktrace_regs");
    a.sw(XREG1, 0, T1);
    a.lw(XREG1, frame_off::reg(XREG1.0), T6);
    a.label("gve_direct");
    // Direct return: the refill handler cannot be resumed (its k0 was
    // consumed by this stub), so its job was finished in h_tlb_fault
    // and we return straight to the EPC it saved in k1, unwinding
    // both exception levels (status KUp/IEp := KUo/IEo, one rfe).
    a.mfc0(T2, c0::STATUS);
    a.srl(T3, T2, 2);
    a.andi(T3, T3, 0xc);
    a.li(T4, !0xcu32 as i32);
    a.and(T2, T2, T4);
    a.or(T2, T2, T3);
    a.mtc0(T2, c0::STATUS);
    a.lw(K0, frame_off::reg(27), T6); // original EPC (saved k1)
    a.b("gve_hilo");
    a.nop();
    a.label("gve_keepx");
    a.lw(K0, frame_off::EPC, T6);
    a.label("gve_hilo");
    a.lw(K1, frame_off::HI, T6);
    a.inst(Inst::Mthi { rs: K1 });
    a.lw(K1, frame_off::LO, T6);
    a.inst(Inst::Mtlo { rs: K1 });
    for r in saved_regs() {
        if Reg(r) == XREG1 {
            continue; // handled above (kept live or restored)
        }
        if Reg(r) == T6 {
            continue; // frame base restored last
        }
        a.lw(Reg(r), frame_off::reg(r), T6);
    }
    a.lw(K1, frame_off::reg(27), T6); // the UTLB handler's k1
    a.lw(T6, frame_off::reg(T6.0), T6);
    a.jr(K0);
    a.inst(Inst::Rfe);
    a.label("gve_sched");
    a.j("sched_entry");
    a.nop();

    // ================= dispatch_tail ===============================
    // a0 = process-table entry, already marked running by the
    // scheduler. Writes the context-switch trace words, parks the
    // kernel trace registers, installs the address space and returns
    // to user mode.
    a.global_label("dispatch_tail");
    a.la(T0, "k_trace_on");
    a.lw(T0, 0, T0);
    a.beq(T0, ZERO, "dt_notrace");
    a.nop();
    a.lw(T1, proc_off::ASID, A0);
    a.sll(T1, T1, 8);
    a.ori(T1, T1, CtlOp::CtxSwitch as u16);
    a.sw(T1, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    a.li(T2, ctl(CtlOp::KExit, 0) as i32);
    a.sw(T2, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    a.label("dt_notrace");
    a.la(T3, "k_ktrace_regs");
    a.sw(XREG1, 0, T3);
    // Address space: EntryHi holds the ASID, Context the PTE base.
    a.lw(T4, proc_off::ASID, A0);
    a.sll(T4, T4, 6);
    a.mtc0(T4, c0::ENTRYHI);
    a.lw(T5, proc_off::CONTEXT, A0);
    a.mtc0(T5, c0::CONTEXT);
    // Status: return-to-user (KUp|IEp set), clear cache isolation.
    a.mfc0(T6, c0::STATUS);
    a.li(T7, !0x0001_003fu32 as i32);
    a.and(T6, T6, T7);
    a.ori(T6, T6, 0xc);
    a.mtc0(T6, c0::STATUS);
    // Restore machine state through k1 (a0 itself gets restored).
    a.move_(K1, A0);
    a.lw(K0, proc_off::HI, K1);
    a.inst(Inst::Mthi { rs: K0 });
    a.lw(K0, proc_off::LO, K1);
    a.inst(Inst::Mtlo { rs: K0 });
    a.lw(K0, proc_off::EPC, K1);
    for r in saved_regs() {
        a.lw(Reg(r), proc_off::reg(r), K1);
    }
    a.jr(K0);
    a.inst(Inst::Rfe);

    // ================= khalt =======================================
    // a0 = exit code. Final trace flush, then stop the machine.
    a.global_label("khalt");
    a.la(T0, "k_trace_on");
    a.lw(T0, 0, T0);
    a.beq(T0, ZERO, "kh_stop");
    a.nop();
    a.li(T1, ctl(CtlOp::Eof, 0) as i32);
    a.sw(T1, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    a.li(T2, (DEV_BASE_K1 + devregs::TRACE_REQ) as i32);
    a.sw(XREG1, 0, T2);
    a.label("kh_stop");
    a.li(T3, (DEV_BASE_K1 + devregs::HALT) as i32);
    a.sw(A0, 0, T3);
    a.label("kh_spin");
    a.b("kh_spin");
    a.nop();

    // ================= kboot =======================================
    a.global_label("kboot");
    // Invalidate the TLB: distinct unmatched VPNs, all invalid.
    a.li(T0, 0);
    a.label("kb_tlb");
    a.sll(T1, T0, 12);
    a.lui(T2, 0xf000);
    a.or(T1, T1, T2);
    a.mtc0(T1, c0::ENTRYHI);
    a.mtc0(ZERO, c0::ENTRYLO);
    a.sll(T3, T0, 8);
    a.mtc0(T3, c0::INDEX);
    a.inst(Inst::Tlbwi);
    a.addiu(T0, T0, 1);
    a.li(T4, 64);
    a.bne(T0, T4, "kb_tlb");
    a.nop();
    // Trace bookkeeping (values staged by the loader in kernel data).
    a.la(XREG3, "k_ktrace_bk");
    a.la(T0, "k_cfg_soft_end");
    a.lw(T1, 0, T0);
    a.sw(T1, bk::BUF_END, XREG3);
    a.la(T0, "k_cfg_hard_end");
    a.lw(T1, 0, T0);
    a.sw(T1, bk::HARD_END, XREG3);
    a.sw(ZERO, bk::NEED_FLUSH, XREG3);
    a.la(T0, "k_cfg_buf_base");
    a.lw(XREG1, 0, T0);
    a.la(T0, "k_trace_on");
    a.lw(T0, 0, T0);
    a.beq(T0, ZERO, "kb_clk");
    a.nop();
    a.li(T1, ctl(CtlOp::TraceOn, 0) as i32);
    a.sw(T1, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    // Boot-time kernel activity runs outside any exception; open a
    // kernel trace context for it (the first dispatch's KExit pops it).
    a.li(T1, ctl(CtlOp::KEnter, 0) as i32);
    a.sw(T1, 0, XREG1);
    a.addiu(XREG1, XREG1, 4);
    a.label("kb_clk");
    // Clock: interval staged by the loader (already dilation-scaled).
    a.la(T0, "k_cfg_clock");
    a.lw(T1, 0, T0);
    a.li(T2, (DEV_BASE_K1 + devregs::CLOCK_INTERVAL) as i32);
    a.sw(T1, 0, T2);
    // Exception-stack pointer.
    a.la(T3, "k_kstack");
    a.la(T4, "k_kstack_ptr");
    a.sw(T3, 0, T4);
    // Unmask clock and disk interrupts (still globally disabled).
    a.li(T5, 0x3000);
    a.mtc0(T5, c0::STATUS);
    a.j("sched_entry");
    a.nop();

    a.end_uninstrumented();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_isa::link::{link, Layout};

    #[test]
    fn vectors_land_at_architected_offsets() {
        let o = object();
        assert_eq!(o.symbol("__utlb").unwrap().off, 0);
        assert_eq!(o.symbol("__genvec").unwrap().off, 0x80);
        // The UTLB handler body is exactly nine instructions.
        let body = &o.text[0..9];
        assert!(body.iter().all(|&w| wrl_isa::decode(w).is_ok()));
        assert_eq!(o.text[9], 0, "padding is nops");
    }

    #[test]
    fn whole_object_is_uninstrumented() {
        let o = object();
        assert!(o.is_protected(0));
        assert!(o.is_protected(o.text_bytes() - 4));
    }

    #[test]
    fn instrumentation_preserves_vector_offsets() {
        use wrl_epoxie::{instrument_object, Mode, RuntimeSyms};
        let o = object();
        let io = instrument_object(&o, Mode::Modified, &RuntimeSyms::default()).unwrap();
        assert_eq!(io.obj.symbol("__utlb").unwrap().off, 0);
        assert_eq!(io.obj.symbol("__genvec").unwrap().off, 0x80);
        assert_eq!(io.obj.text.len(), o.text.len());
        assert!(io.records.is_empty());
    }

    #[test]
    fn object_links_against_stub_externals() {
        // Link with stub definitions of the externals it references.
        let mut stubs = Asm::new("stubs");
        for s in [
            "gv_dispatch",
            "sched_entry",
            "k_kstack_ptr",
            "k_kstack",
            "k_cur_save",
            "k_trace_on",
            "k_ktrace_bk",
            "k_ktrace_regs",
            "k_cfg_soft_end",
            "k_cfg_hard_end",
            "k_cfg_buf_base",
            "k_cfg_clock",
            "k_bb_base",
            "k_bb_soft",
        ] {
            stubs.global_label(s);
            stubs.nop();
        }
        let l = link(
            &[object(), stubs.finish()],
            Layout {
                text_base: crate::layout::KTEXT_BASE,
                data_base: crate::layout::KDATA_BASE,
            },
            "kboot",
        );
        assert!(l.is_ok(), "{:?}", l.err());
    }
}
