//! §3.6: "multiple traced threads in a single address space, as
//! independent trace pages are allocated for each thread.
//! Context-switching code in the kernel maps the correct per-thread
//! pages when a new thread is activated."
//!
//! A program spawns a worker thread; both loop over disjoint buffers
//! in the *same* address space under preemptive scheduling. The trace
//! must carry both activity streams under distinct context tokens and
//! parse without errors.

use wrl_isa::asm::Asm;
use wrl_isa::reg::*;
use wrl_kernel::{build_system, KernelConfig};
use wrl_trace::Space;

fn threaded_workload() -> wrl_workloads::Workload {
    let mut a = Asm::new("threads");

    // worker(arg = iteration count): store a pattern into buf_b, then
    // set the done flag and exit.
    a.global_label("worker");
    a.move_(S0, A0);
    a.la(T0, "buf_b");
    a.label("wk_loop");
    a.sw(S0, 0, T0);
    a.lw(T1, 0, T0);
    a.addiu(S0, S0, -1);
    a.bne(S0, ZERO, "wk_loop");
    a.nop();
    a.la(T0, "done_flag");
    a.li(T1, 1);
    a.sw(T1, 0, T0);
    a.li(A0, 0);
    a.li(V0, wrl_trace::layout::sys::EXIT as i32);
    a.syscall(0);

    // main: spawn the worker, do its own loop over buf_a, wait for
    // the worker, return the combined evidence.
    a.global_label("main");
    a.addiu(SP, SP, -8);
    a.sw(RA, 4, SP);
    a.la_off(A0, "worker", 0);
    a.la_off(A1, "tstack_end", 0);
    a.li(A2, 4000);
    a.jal("__spawn");
    a.nop();
    a.move_(S1, V0); // worker token
    a.li(S0, 6000);
    a.la(T0, "buf_a");
    a.label("mn_loop");
    a.sw(S0, 0, T0);
    a.lw(T1, 0, T0);
    a.addiu(S0, S0, -1);
    a.bne(S0, ZERO, "mn_loop");
    a.nop();
    // Wait for the worker.
    a.label("mn_wait");
    a.jal("__yield");
    a.nop();
    a.la(T0, "done_flag");
    a.lw(T1, 0, T0);
    a.beq(T1, ZERO, "mn_wait");
    a.nop();
    a.move_(V0, S1); // exit code = worker's token
    a.lw(RA, 4, SP);
    a.jr(RA);
    a.addiu(SP, SP, 8);

    a.data();
    a.align4();
    a.global_label("buf_a");
    a.space(16);
    a.global_label("buf_b");
    a.space(16);
    a.global_label("done_flag");
    a.word(0);
    a.space(8 * 1024);
    a.label("tstack_end");
    a.word(0);

    wrl_workloads::Workload {
        name: "threads",
        description: "two traced threads in one address space",
        max_insts: 80_000_000,
        objects: vec![
            a.finish(),
            wrl_workloads::support::crt0(),
            wrl_workloads::support::libw3k(),
        ],
        files: vec![],
    }
}

#[test]
fn threads_share_an_address_space_untraced() {
    let w = threaded_workload();
    let mut sys = build_system(&KernelConfig::ultrix(), &[&w]);
    let run = sys.run(400_000_000);
    // Exit code is the worker's token (slot 1 => token 2).
    assert_eq!(run.exit_code, 2);
}

#[test]
fn per_thread_trace_pages_keep_streams_separate() {
    let w = threaded_workload();
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(4_000_000_000);
    assert_eq!(run.exit_code, 2);

    let mut parser = sys.parser();
    let mut sink = wrl_trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(
        parser.stats.errors,
        0,
        "errors: {:?}",
        &parser.errors[..parser.errors.len().min(5)]
    );

    // Both tokens contribute user instruction streams.
    let count = |tok: u8| {
        sink.irefs
            .iter()
            .filter(|r| r.1 == Space::User(tok))
            .count()
    };
    assert!(count(1) > 20_000, "main thread: {}", count(1));
    assert!(count(2) > 10_000, "worker thread: {}", count(2));

    // Store addresses attribute correctly: the worker's token stores
    // to buf_b, the main token to buf_a — same address space, fully
    // disentangled by the per-thread trace pages.
    let buf_a = sys.procs[0].orig.exe.sym("buf_a").unwrap();
    let buf_b = sys.procs[0].orig.exe.sym("buf_b").unwrap();
    let stores = |tok: u8, va: u32| {
        sink.drefs
            .iter()
            .filter(|d| d.0 == va && d.1 && d.2 == Space::User(tok))
            .count()
    };
    assert!(
        stores(1, buf_a) >= 6000,
        "main stores: {}",
        stores(1, buf_a)
    );
    assert!(
        stores(2, buf_b) >= 4000,
        "worker stores: {}",
        stores(2, buf_b)
    );
    assert_eq!(stores(1, buf_b), 0, "main never stores to buf_b");
    assert_eq!(stores(2, buf_a), 0, "worker never stores to buf_a");
}

#[test]
fn mach_per_thread_trace_pages_work_too() {
    // §3.6 describes threads as the Mach system's feature; the same
    // spawn + dispatch-remap machinery must hold with the user-level
    // server timesharing against both threads.
    let w = threaded_workload();
    let mut sys = build_system(&KernelConfig::mach().traced(), &[&w]);
    let run = sys.run(6_000_000_000);
    // Slot 0 = main, slot 1 = the UNIX server, so the worker thread
    // lands in slot 2 and spawn returns token 3.
    assert_eq!(run.exit_code, 3);

    let mut parser = sys.parser();
    let mut sink = wrl_trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(
        parser.stats.errors,
        0,
        "errors: {:?}",
        &parser.errors[..parser.errors.len().min(5)]
    );
    // Main thread (token 1), server (2), worker thread (3) all
    // contribute user streams under distinct tokens.
    let count = |tok: u8| {
        sink.irefs
            .iter()
            .filter(|r| r.1 == Space::User(tok))
            .count()
    };
    assert!(count(1) > 10_000, "main: {}", count(1));
    // The workload does no file I/O, so the server only runs its
    // startup path before blocking in recv — but that still traces.
    assert!(count(2) > 0, "server: {}", count(2));
    assert!(count(3) > 5_000, "worker: {}", count(3));
}
