//! Full-system boot tests: the kernels running real workloads.

use wrl_kernel::{build_system, KernelConfig};
use wrl_workloads::by_name;

#[test]
fn ultrix_boots_and_runs_sed() {
    let w = by_name("sed").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix(), &[&w]);
    let run = sys.run(100_000_000);
    // sed exits with its line count, printed to the console too.
    let input = wrl_workloads::sed::files().remove(0).1;
    let lines = input.iter().filter(|&&b| b == b'\n').count() as u32;
    assert_eq!(run.exit_code, lines);
    let text = String::from_utf8_lossy(&run.console);
    assert!(
        text.contains(&lines.to_string()),
        "console: {text:?} (expected {lines})"
    );
    // The kernel actually did I/O and took interrupts.
    let c = &sys.machine.counters;
    assert!(sys.machine.dev.disk_ops > 0, "no disk traffic");
    assert!(c.interrupts > 0, "no interrupts");
    assert!(c.utlb_misses > 0, "no user TLB misses");
    assert!(c.kernel_insts > 0 && c.user_insts > 0);
}

#[test]
fn ultrix_traced_sed_trace_parses_cleanly() {
    let w = by_name("sed").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(2_000_000_000);
    let input = wrl_workloads::sed::files().remove(0).1;
    let lines = input.iter().filter(|&&b| b == b'\n').count() as u32;
    assert_eq!(run.exit_code, lines, "traced run must behave identically");
    assert!(!run.trace_words.is_empty(), "no trace collected");

    let mut parser = sys.parser();
    let mut sink = wrl_trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(
        parser.stats.errors,
        0,
        "parse errors: {:?}",
        &parser.errors[..parser.errors.len().min(5)]
    );
    // Both kernel and user references present, interleaved.
    assert!(parser.stats.kernel_irefs > 0, "no kernel irefs");
    assert!(parser.stats.user_irefs > 0, "no user irefs");
    assert!(parser.stats.kernel_entries > 0);
    assert!(parser.stats.ctx_switches > 0);
}

#[test]
fn mach_boots_and_runs_sed_through_the_server() {
    let w = by_name("sed").unwrap();
    let mut sys = build_system(&KernelConfig::mach(), &[&w]);
    let run = sys.run(200_000_000);
    let input = wrl_workloads::sed::files().remove(0).1;
    let lines = input.iter().filter(|&&b| b == b'\n').count() as u32;
    assert_eq!(run.exit_code, lines);
    // The server ran: two processes alive, context switches happened.
    assert!(sys.machine.counters.utlb_misses > 0);
    assert!(sys.machine.dev.disk_ops > 0);
}

#[test]
fn mach_traced_sed_trace_parses_cleanly() {
    let w = by_name("sed").unwrap();
    let mut sys = build_system(&KernelConfig::mach().traced(), &[&w]);
    let run = sys.run(3_000_000_000);
    let input = wrl_workloads::sed::files().remove(0).1;
    let lines = input.iter().filter(|&&b| b == b'\n').count() as u32;
    assert_eq!(run.exit_code, lines);
    let mut parser = sys.parser();
    let mut sink = wrl_trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(
        parser.stats.errors,
        0,
        "parse errors: {:?}",
        &parser.errors[..parser.errors.len().min(5)]
    );
    // Both user address spaces (workload + server) appear.
    let asids: std::collections::HashSet<u8> = sink
        .irefs
        .iter()
        .filter_map(|r| match r.1 {
            wrl_trace::Space::User(a) => Some(a),
            _ => None,
        })
        .collect();
    assert!(asids.len() >= 2, "only one user space traced: {asids:?}");
}

#[test]
fn two_processes_timeshare_under_ultrix() {
    // The paper concentrates on single-process and client-server
    // workloads, but the machinery (ASIDs, per-process trace buffers,
    // round-robin preemption on clock ticks) supports timesharing;
    // exercise it.
    let a = by_name("yacc").unwrap();
    let b = by_name("espresso").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix(), &[&a, &b]);
    let run = sys.run(400_000_000);
    // Exit code is the last exiting process's; both must have run:
    // the scheduler preempted between them on clock ticks.
    assert!(sys.machine.counters.interrupts > 10);
    let _ = run;
}

#[test]
fn two_traced_processes_interleave_in_one_trace() {
    let a = by_name("yacc").unwrap();
    let b = by_name("sed").unwrap();
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&a, &b]);
    let run = sys.run(6_000_000_000);
    let mut parser = sys.parser();
    let mut sink = wrl_trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(
        parser.stats.errors,
        0,
        "errors: {:?}",
        &parser.errors[..parser.errors.len().min(5)]
    );
    // Both user address spaces contribute substantial activity, and
    // the base context actually alternates (preemptive interleaving,
    // not just back-to-back runs).
    let seq: Vec<u8> = sink
        .irefs
        .iter()
        .filter_map(|r| match r.1 {
            wrl_trace::Space::User(a) => Some(a),
            _ => None,
        })
        .collect();
    let a1 = seq.iter().filter(|&&x| x == 1).count();
    let a2 = seq.iter().filter(|&&x| x == 2).count();
    assert!(a1 > 100_000, "asid 1 only {a1} irefs");
    assert!(a2 > 100_000, "asid 2 only {a2} irefs");
    let alternations = seq.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(
        alternations > 4,
        "no preemptive interleaving: {alternations}"
    );
}

#[test]
fn trace_ctl_syscall_starts_and_stops_tracing() {
    // A workload that brackets a phase with trace_ctl: the kernel call
    // the paper added (§3.1).
    use wrl_isa::asm::Asm;
    use wrl_isa::reg::*;
    use wrl_trace::layout::trace_ctl;
    let mut a = Asm::new("ctl");
    a.global_label("main");
    a.addiu(SP, SP, -8);
    a.sw(RA, 4, SP);
    // Tracing starts ON (traced build); stop it, do some work,
    // restart it, do different work, exit.
    a.li(A0, trace_ctl::STOP as i32);
    a.jal("__trace_ctl");
    a.nop();
    a.la(T0, "quiet");
    a.li(T1, 500);
    a.label("off_loop");
    a.sw(T1, 0, T0);
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "off_loop");
    a.nop();
    a.li(A0, trace_ctl::START as i32);
    a.jal("__trace_ctl");
    a.nop();
    a.la(T0, "loud");
    a.li(T1, 200);
    a.label("on_loop");
    a.sw(T1, 0, T0);
    a.addiu(T1, T1, -1);
    a.bne(T1, ZERO, "on_loop");
    a.nop();
    a.li(V0, 0);
    a.lw(RA, 4, SP);
    a.jr(RA);
    a.addiu(SP, SP, 8);
    a.data();
    a.align4();
    a.global_label("quiet");
    a.space(16);
    a.global_label("loud");
    a.space(16);
    let w = wrl_workloads::Workload {
        name: "ctl",
        description: "trace_ctl exerciser",
        max_insts: 10_000_000,
        objects: vec![
            a.finish(),
            wrl_workloads::support::crt0(),
            wrl_workloads::support::libw3k(),
        ],
        files: vec![],
    };
    let mut sys = build_system(&KernelConfig::ultrix().traced(), &[&w]);
    let run = sys.run(400_000_000);
    assert_eq!(run.exit_code, 0);
    let mut parser = sys.parser();
    let mut sink = wrl_trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(
        parser.stats.errors,
        0,
        "{:?}",
        &parser.errors[..parser.errors.len().min(3)]
    );
    // The "quiet" loop's stores must be absent, the "loud" loop's
    // present.
    let quiet = sys.procs[0].orig.exe.sym("quiet").unwrap();
    let loud = sys.procs[0].orig.exe.sym("loud").unwrap();
    let stores_at = |va: u32| sink.drefs.iter().filter(|d| d.0 == va && d.1).count();
    assert_eq!(stores_at(quiet), 0, "traced while off");
    assert!(stores_at(loud) >= 200, "on-phase stores missing");
}

#[test]
fn mach_serves_two_clients_concurrently() {
    // Two independent workloads timeshare against one UNIX server:
    // the IPC request queue interleaves their file operations.
    let a = by_name("sed").unwrap();
    let b = by_name("egrep").unwrap();
    let mut sys = build_system(&KernelConfig::mach().traced(), &[&a, &b]);
    let run = sys.run(6_000_000_000);
    let mut parser = sys.parser();
    let mut sink = wrl_trace::CollectSink::default();
    parser.parse_all(&run.trace_words, &mut sink);
    assert_eq!(
        parser.stats.errors,
        0,
        "errors: {:?}",
        &parser.errors[..parser.errors.len().min(5)]
    );
    // Three user address spaces: sed, egrep, server.
    let mut tokens: Vec<u8> = sink
        .irefs
        .iter()
        .filter_map(|r| match r.1 {
            wrl_trace::Space::User(t) => Some(t),
            _ => None,
        })
        .collect();
    tokens.sort_unstable();
    tokens.dedup();
    assert_eq!(tokens, vec![1, 2, 3]);
}
