//! Unit tests of the instrumenter's §3.2 hazard machinery: each
//! Figure-2 special case is instrumented, executed, and its parsed
//! trace compared against the machine's reference trace.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use wrl_epoxie::{build_traced, instrument_object, run_traced, FullPolicy, Mode, RuntimeSyms};
use wrl_isa::asm::Asm;
use wrl_isa::link::Layout;
use wrl_isa::reg::*;
use wrl_isa::{decode, Inst};
use wrl_machine::{Config, Machine, RefEvent, StopEvent};
use wrl_trace::parser::{Space, TraceParser, TraceSink};

#[derive(Clone, Copy, PartialEq, Debug)]
enum R {
    I(u32),
    L(u32),
    S(u32),
}

struct Sink(Vec<R>);
impl TraceSink for Sink {
    fn iref(&mut self, v: u32, _s: Space, _i: bool) {
        self.0.push(R::I(v));
    }
    fn dref(&mut self, v: u32, st: bool, _w: wrl_isa::Width, _s: Space) {
        self.0.push(if st { R::S(v) } else { R::L(v) });
    }
}

/// Builds, runs both ways, and asserts stream equality.
fn roundtrip(body: impl FnOnce(&mut Asm)) {
    let mut a = Asm::new("case");
    a.global_label("main");
    a.la(SP, "stack_top");
    body(&mut a);
    a.break_(0);
    a.data();
    a.label("buf");
    a.space(256);
    a.space(1024);
    a.label("stack_top");
    a.word(0);
    let objs = [a.finish()];
    let prog = build_traced(
        &objs,
        Layout::user(),
        "main",
        Mode::Modified,
        FullPolicy::Syscall,
    )
    .expect("instruments");

    let mut m = Machine::new(Config::bare(), vec![]);
    m.load_executable(&prog.orig.exe);
    m.set_pc(prog.orig.exe.entry);
    let refs: Rc<RefCell<Vec<R>>> = Rc::new(RefCell::new(Vec::new()));
    let s = refs.clone();
    m.set_tracer(Some(Box::new(move |e| {
        s.borrow_mut().push(match e {
            RefEvent::Ifetch { vaddr, .. } => R::I(vaddr),
            RefEvent::Load { vaddr, .. } => R::L(vaddr),
            RefEvent::Store { vaddr, .. } => R::S(vaddr),
        })
    })));
    assert!(matches!(m.run(1_000_000), StopEvent::Break(_)));
    let reference = refs.borrow().clone();

    let run = run_traced(&prog, 100_000_000, |_, _| false);
    assert!(matches!(run.stop, StopEvent::Break(_)));
    let mut parser = TraceParser::new(Arc::new(wrl_trace::BbTable::new()));
    parser.set_user_table(0, Arc::new(prog.table.clone()));
    let mut parsed = Sink(Vec::new());
    parser.parse_all(&run.words, &mut parsed);
    assert_eq!(parser.stats.errors, 0, "{:?}", parser.errors);
    assert_eq!(parsed.0, reference);
}

#[test]
fn store_reading_ra_gets_dummy_store() {
    // Figure 2's i+1: `sw ra,20(sp)` cannot sit in the memtrace delay
    // slot; the rewriter plants `sw zero,20(sp)` there instead.
    roundtrip(|a| {
        a.li(RA, 0x1234);
        a.addiu(SP, SP, -24);
        a.sw(RA, 20, SP);
        a.lw(T0, 20, SP);
        a.addiu(SP, SP, 24);
    });
}

#[test]
fn load_into_ra_is_hazard() {
    roundtrip(|a| {
        a.la(T0, "buf");
        a.li(T1, 0x4321);
        a.sw(T1, 8, T0);
        a.lw(RA, 8, T0); // writes ra: must not be un-done by memtrace
        a.sw(RA, 12, T0); // and the stored value must be the loaded one
    });
}

#[test]
fn load_clobbering_its_base() {
    roundtrip(|a| {
        a.la(T0, "buf");
        a.la(T1, "buf");
        a.sw(T1, 0, T0); // buf[0] = &buf
        a.lw(T0, 0, T0); // t0 = *t0 — the address must be traced pre-load
        a.lw(T2, 0, T0);
    });
}

#[test]
fn ra_move_mid_block_keeps_shadow_in_sync() {
    roundtrip(|a| {
        a.li(T0, 0x00aa);
        a.move_(RA, T0); // non-load write to ra
        a.la(T1, "buf");
        a.sw(RA, 4, T1); // traced store must record ra = 0xaa
        a.lw(T2, 4, T1);
    });
}

#[test]
fn base_register_is_ra() {
    roundtrip(|a| {
        a.la(RA, "buf");
        a.li(T0, 7);
        a.sw(T0, 16, RA); // memtrace must fetch ra from the shadow
        a.lw(T1, 16, RA);
    });
}

#[test]
fn memory_op_in_taken_branch_delay_slot_is_hoisted() {
    roundtrip(|a| {
        a.la(T0, "buf");
        a.li(T1, 3);
        a.label("top");
        a.addiu(T1, T1, -1);
        a.bne(T1, ZERO, "top");
        a.sw(T1, 0, T0); // the memory op lives in the delay slot
        a.lw(T2, 0, T0);
    });
}

#[test]
fn stolen_register_in_branch_condition() {
    roundtrip(|a| {
        a.li(S5, 2); // stolen register as loop counter
        a.label("top");
        a.addiu(S5, S5, -1);
        a.bne(S5, ZERO, "top"); // branch reads the shadow
        a.nop();
        a.la(T0, "buf");
        a.sw(S5, 0, T0);
    });
}

#[test]
fn unsafe_delay_slot_is_rejected() {
    // jr ra with a slot that *loads into ra* cannot be hoisted.
    let mut a = Asm::new("bad");
    a.global_label("main");
    a.jal("f");
    a.nop();
    a.break_(0);
    a.global_label("f");
    a.jr(RA);
    a.lw(RA, 0, SP); // slot writes the register the jump reads
    let err = instrument_object(&a.finish(), Mode::Modified, &RuntimeSyms::default());
    assert!(err.is_err(), "must reject the unsafe slot");
}

#[test]
fn protected_regions_are_copied_verbatim() {
    let mut a = Asm::new("prot");
    a.global_label("main");
    a.begin_uninstrumented();
    a.la(T0, "buf");
    a.sw(T0, 0, T0);
    a.end_uninstrumented();
    a.jr(RA);
    a.nop();
    a.data();
    a.label("buf");
    a.space(8);
    let src = a.finish();
    let out = instrument_object(&src, Mode::Modified, &RuntimeSyms::default()).unwrap();
    // Protected words appear unchanged at the start.
    for (k, w) in src.text.iter().take(3).enumerate() {
        assert_eq!(out.obj.text[k], *w);
    }
    // And no record covers them.
    assert!(out.records.iter().all(|r| r.orig_off >= 12));
}

#[test]
fn trace_word_counts_match_table() {
    // The `li zero,n` count equals 1 + mem ops for every block.
    let w = wrl_workloads::by_name("compress").unwrap();
    let prog = build_traced(
        &w.objects,
        Layout::user(),
        "__start",
        Mode::Modified,
        FullPolicy::Syscall,
    )
    .unwrap();
    let mut checked = 0;
    for (&id, info) in prog.table.iter() {
        // id is the jal's return address; the delay-slot word at id-4
        // is the li zero,n.
        let w = prog.instr.exe.text_word(id - 4).expect("delay slot");
        match decode(w).unwrap() {
            Inst::Addiu { rt, rs, imm } => {
                assert_eq!(rt.0, 0);
                assert_eq!(rs.0, 0);
                assert_eq!(imm as u32, info.trace_words(), "block {id:#x}");
            }
            other => panic!("expected li zero,n at {id:#x}, got {other:?}"),
        }
        checked += 1;
    }
    assert!(checked > 60, "only {checked} blocks checked");
}
