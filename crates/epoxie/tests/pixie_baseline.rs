//! The pixie baseline: correctness (the rewritten binary behaves
//! identically) and the §3.2 footnote's text-expansion band.

use wrl_epoxie::pixie::{pixie, pixie_entries, prepare_pixie_machine};
use wrl_isa::asm::Asm;
use wrl_isa::link::{link, Layout};
use wrl_isa::reg::*;
use wrl_machine::{Config, Machine, StopEvent};

fn program() -> wrl_isa::link::Linked {
    // Loops, calls (direct + via register), memory traffic.
    let mut a = Asm::new("p");
    a.global_label("main");
    a.la(SP, "stack_top");
    a.la(S0, "buf");
    a.li(S1, 500);
    a.label("loop");
    a.sw(S1, 0, S0);
    a.lw(T0, 0, S0);
    a.addu(S2, S2, T0);
    a.jal("leaf");
    a.nop();
    a.la(T9, "leaf");
    a.jalr(T9);
    a.nop();
    a.addiu(S1, S1, -1);
    a.bne(S1, ZERO, "loop");
    a.nop();
    a.move_(T7, S2);
    a.break_(0);
    a.global_label("leaf");
    a.addiu(SP, SP, -8);
    a.sw(RA, 4, SP);
    a.lw(T1, 0, S0);
    a.addu(S3, S3, T1);
    a.lw(RA, 4, SP);
    a.jr(RA);
    a.addiu(SP, SP, 8);
    a.data();
    a.label("buf");
    a.space(64);
    a.space(4096);
    a.label("stack_top");
    a.word(0);
    link(&[a.finish()], Layout::user(), "main").unwrap()
}

#[test]
fn pixie_rewrite_preserves_behaviour() {
    let orig = program();
    // Reference run.
    let mut m = Machine::new(Config::bare(), vec![]);
    m.load_executable(&orig.exe);
    m.set_pc(orig.exe.entry);
    assert_eq!(m.run(10_000_000), StopEvent::Break(0));
    let want = (m.cpu.regs[T7.idx()], m.cpu.regs[S3.idx()]);

    let prog = pixie(&orig.exe).unwrap();
    let mut pm = prepare_pixie_machine(&prog, 64 << 20);
    assert_eq!(pm.run(100_000_000), StopEvent::Break(0));
    assert_eq!((pm.cpu.regs[T7.idx()], pm.cpu.regs[S3.idx()]), want);
    // It traced: one bb record per executed block plus memory entries.
    let entries = pixie_entries(&prog, &pm);
    assert!(entries > 3000, "only {entries} trace entries");
    // Slowdown: many more instructions than the original run.
    assert!(pm.counters.insts() > 3 * m.counters.insts());
}

#[test]
fn pixie_expansion_in_paper_band() {
    // On a realistic workload binary, pixie's inline expansion is the
    // footnote's 4–6x (epoxie: 1.9–2.3x).
    let w = wrl_workloads::by_name("gcc").unwrap();
    let orig = wrl_workloads::link_user(&w.objects);
    let prog = pixie(&orig.exe).unwrap();
    assert!(
        (3.5..=6.5).contains(&prog.expansion),
        "expansion {}",
        prog.expansion
    );
}

#[test]
fn pixie_runs_a_real_workload() {
    // sed, end to end under pixie, with host syscall emulation.
    let w = wrl_workloads::by_name("sed").unwrap();
    let orig = wrl_workloads::link_user(&w.objects);
    let prog = pixie(&orig.exe).unwrap();
    let mut m = prepare_pixie_machine(&prog, 64 << 20);
    let mut env = wrl_workloads::HostEnv::new(w.files.iter().cloned());
    env.brk = orig.exe.brk();
    loop {
        match m.run(500_000_000) {
            StopEvent::Syscall(0) => {
                if !env.handle(&mut m) {
                    break;
                }
            }
            other => panic!("unexpected stop {other:?}"),
        }
    }
    let input = wrl_workloads::sed::files().remove(0).1;
    let lines = input.iter().filter(|&&b| b == b'\n').count() as u32;
    assert_eq!(env.exit, Some(lines));
    assert!(pixie_entries(&prog, &m) > 100_000);
}
