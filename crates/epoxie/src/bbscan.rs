//! Basic-block discovery on object modules.
//!
//! Epoxie rewrites object files at link time precisely because "the
//! symbol and relocation tables present in object code allow epoxie to
//! distinguish unambiguously between uses of addresses and uses of
//! coincidentally similar constants" (§3.2). Block boundaries come
//! from three sources, all statically certain at link time:
//!
//! 1. every symbol defined in the text section (all computed-jump
//!    targets are reached through symbols);
//! 2. every branch-relocation target;
//! 3. the instruction after every control transfer's delay slot.

use wrl_isa::obj::{Object, RelocKind, SecId};
use wrl_isa::{decode, Inst};

/// A discovered basic block: instruction range `[start, end)` in byte
/// offsets within the object's text section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BbRange {
    /// Start byte offset.
    pub start: u32,
    /// End byte offset (exclusive).
    pub end: u32,
}

impl BbRange {
    /// Number of instructions in the block.
    pub fn n_insts(&self) -> u32 {
        (self.end - self.start) / 4
    }
}

/// Scans an object's text section into basic blocks.
///
/// The returned ranges cover the whole text in order. Delay slots
/// belong to the block their branch terminates.
pub fn scan(obj: &Object) -> Vec<BbRange> {
    let n = obj.text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut leader = vec![false; n + 1];
    leader[0] = true;
    leader[n] = true;

    // Symbols in text start blocks.
    for s in &obj.symbols {
        if s.sec == SecId::Text && (s.off as usize) < n * 4 {
            leader[(s.off / 4) as usize] = true;
        }
    }
    // Branch targets (via relocations to local text symbols).
    for r in &obj.text_relocs {
        if !matches!(r.kind, RelocKind::Br16 | RelocKind::J26) {
            continue;
        }
        if let Some(sym) = obj.symbol(&r.sym) {
            if sym.sec == SecId::Text {
                let t = (sym.off as i64 + r.addend as i64) / 4;
                if (0..=n as i64).contains(&t) {
                    leader[t as usize] = true;
                }
            }
        }
    }
    // Instruction after a control transfer's delay slot (or after a
    // no-delay-slot trap).
    for (i, &w) in obj.text.iter().enumerate() {
        if let Ok(inst) = decode(w) {
            if inst.has_delay_slot() {
                if i + 2 <= n {
                    leader[i + 2] = true;
                }
            } else if matches!(inst, Inst::Syscall { .. } | Inst::Break { .. } | Inst::Rfe) && i < n
            {
                leader[i + 1] = true;
            }
        }
    }
    // A leader inside a delay slot would split the branch from its
    // slot; merge it forward (delay slots are not jump targets in
    // well-formed code, but a symbol may label one).
    for i in 1..n {
        if leader[i] {
            if let Ok(prev) = decode(obj.text[i - 1]) {
                if prev.has_delay_slot() {
                    leader[i] = false;
                    if i < n {
                        leader[i + 1] = true;
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut start = 0usize;
    // Index style: `i` is simultaneously a leader-bitmap index and an
    // instruction offset, which an iterator would obscure.
    #[allow(clippy::needless_range_loop)]
    for i in 1..=n {
        if leader[i] {
            out.push(BbRange {
                start: (start * 4) as u32,
                end: (i * 4) as u32,
            });
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_isa::asm::Asm;
    use wrl_isa::reg::*;

    #[test]
    fn straight_line_with_branch() {
        let mut a = Asm::new("t");
        a.global_label("main");
        a.li(T0, 3); // bb0: insts 0..
        a.label("loop"); // bb1 leader
        a.addiu(T0, T0, -1);
        a.bne(T0, ZERO, "loop");
        a.nop(); // delay slot, part of bb1
        a.jr(RA); // bb2
        a.nop();
        let obj = a.finish();
        let bbs = scan(&obj);
        assert_eq!(bbs.len(), 3);
        assert_eq!(bbs[0], BbRange { start: 0, end: 4 });
        assert_eq!(bbs[1], BbRange { start: 4, end: 16 });
        assert_eq!(bbs[1].n_insts(), 3);
        assert_eq!(bbs[2], BbRange { start: 16, end: 24 });
    }

    #[test]
    fn call_splits_block() {
        let mut a = Asm::new("t");
        a.global_label("main");
        a.jal("f");
        a.nop();
        a.addiu(T0, T0, 1); // new bb after call
        a.jr(RA);
        a.nop();
        a.global_label("f");
        a.jr(RA);
        a.nop();
        let bbs = scan(&a.finish());
        // [jal+nop], [addiu..jr+nop], [f: jr+nop]
        assert_eq!(bbs.len(), 3);
        assert_eq!(bbs[0].end, 8);
        assert_eq!(bbs[1].start, 8);
        assert_eq!(bbs[2].start, 20);
    }

    #[test]
    fn syscall_ends_block_without_delay_slot() {
        let mut a = Asm::new("t");
        a.global_label("main");
        a.li(V0, 1);
        a.syscall(0);
        a.li(V0, 2);
        a.break_(0);
        let bbs = scan(&a.finish());
        assert_eq!(bbs.len(), 2);
        assert_eq!(bbs[0].end, 8);
        assert_eq!(bbs[1].n_insts(), 2);
    }

    #[test]
    fn blocks_tile_text_exactly() {
        let mut a = Asm::new("t");
        a.global_label("main");
        for i in 0..10 {
            a.label(&format!("l{i}"));
            a.addiu(T0, T0, 1);
            a.bne(T0, ZERO, &format!("l{i}"));
            a.nop();
        }
        a.jr(RA);
        a.nop();
        let obj = a.finish();
        let bbs = scan(&obj);
        let mut pos = 0;
        for b in &bbs {
            assert_eq!(b.start, pos);
            assert!(b.end > b.start);
            pos = b.end;
        }
        assert_eq!(pos, obj.text_bytes());
    }
}
