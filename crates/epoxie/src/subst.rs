//! Register substitution in decoded instructions.
//!
//! Used by the register-stealing rewrite: occurrences of a stolen
//! register in an instruction are redirected to the assembler
//! temporary, with shadow loads/stores around the instruction.

use wrl_isa::{Inst, Reg};

/// Replaces every occurrence of GPR `from` with `to` in `inst`.
pub fn subst_gpr(inst: Inst, from: Reg, to: Reg) -> Inst {
    use Inst::*;
    let s = |r: Reg| if r == from { to } else { r };
    match inst {
        Sll { rd, rt, sh } => Sll {
            rd: s(rd),
            rt: s(rt),
            sh,
        },
        Srl { rd, rt, sh } => Srl {
            rd: s(rd),
            rt: s(rt),
            sh,
        },
        Sra { rd, rt, sh } => Sra {
            rd: s(rd),
            rt: s(rt),
            sh,
        },
        Sllv { rd, rt, rs } => Sllv {
            rd: s(rd),
            rt: s(rt),
            rs: s(rs),
        },
        Srlv { rd, rt, rs } => Srlv {
            rd: s(rd),
            rt: s(rt),
            rs: s(rs),
        },
        Srav { rd, rt, rs } => Srav {
            rd: s(rd),
            rt: s(rt),
            rs: s(rs),
        },
        Addu { rd, rs, rt } => Addu {
            rd: s(rd),
            rs: s(rs),
            rt: s(rt),
        },
        Subu { rd, rs, rt } => Subu {
            rd: s(rd),
            rs: s(rs),
            rt: s(rt),
        },
        And { rd, rs, rt } => And {
            rd: s(rd),
            rs: s(rs),
            rt: s(rt),
        },
        Or { rd, rs, rt } => Or {
            rd: s(rd),
            rs: s(rs),
            rt: s(rt),
        },
        Xor { rd, rs, rt } => Xor {
            rd: s(rd),
            rs: s(rs),
            rt: s(rt),
        },
        Nor { rd, rs, rt } => Nor {
            rd: s(rd),
            rs: s(rs),
            rt: s(rt),
        },
        Slt { rd, rs, rt } => Slt {
            rd: s(rd),
            rs: s(rs),
            rt: s(rt),
        },
        Sltu { rd, rs, rt } => Sltu {
            rd: s(rd),
            rs: s(rs),
            rt: s(rt),
        },
        Mult { rs, rt } => Mult {
            rs: s(rs),
            rt: s(rt),
        },
        Multu { rs, rt } => Multu {
            rs: s(rs),
            rt: s(rt),
        },
        Div { rs, rt } => Div {
            rs: s(rs),
            rt: s(rt),
        },
        Divu { rs, rt } => Divu {
            rs: s(rs),
            rt: s(rt),
        },
        Mfhi { rd } => Mfhi { rd: s(rd) },
        Mflo { rd } => Mflo { rd: s(rd) },
        Mthi { rs } => Mthi { rs: s(rs) },
        Mtlo { rs } => Mtlo { rs: s(rs) },
        Addiu { rt, rs, imm } => Addiu {
            rt: s(rt),
            rs: s(rs),
            imm,
        },
        Slti { rt, rs, imm } => Slti {
            rt: s(rt),
            rs: s(rs),
            imm,
        },
        Sltiu { rt, rs, imm } => Sltiu {
            rt: s(rt),
            rs: s(rs),
            imm,
        },
        Andi { rt, rs, imm } => Andi {
            rt: s(rt),
            rs: s(rs),
            imm,
        },
        Ori { rt, rs, imm } => Ori {
            rt: s(rt),
            rs: s(rs),
            imm,
        },
        Xori { rt, rs, imm } => Xori {
            rt: s(rt),
            rs: s(rs),
            imm,
        },
        Lui { rt, imm } => Lui { rt: s(rt), imm },
        Lb { rt, base, off } => Lb {
            rt: s(rt),
            base: s(base),
            off,
        },
        Lbu { rt, base, off } => Lbu {
            rt: s(rt),
            base: s(base),
            off,
        },
        Lh { rt, base, off } => Lh {
            rt: s(rt),
            base: s(base),
            off,
        },
        Lhu { rt, base, off } => Lhu {
            rt: s(rt),
            base: s(base),
            off,
        },
        Lw { rt, base, off } => Lw {
            rt: s(rt),
            base: s(base),
            off,
        },
        Sb { rt, base, off } => Sb {
            rt: s(rt),
            base: s(base),
            off,
        },
        Sh { rt, base, off } => Sh {
            rt: s(rt),
            base: s(base),
            off,
        },
        Sw { rt, base, off } => Sw {
            rt: s(rt),
            base: s(base),
            off,
        },
        Lwc1 { ft, base, off } => Lwc1 {
            ft,
            base: s(base),
            off,
        },
        Swc1 { ft, base, off } => Swc1 {
            ft,
            base: s(base),
            off,
        },
        Cache { op, base, off } => Cache {
            op,
            base: s(base),
            off,
        },
        Beq { rs, rt, off } => Beq {
            rs: s(rs),
            rt: s(rt),
            off,
        },
        Bne { rs, rt, off } => Bne {
            rs: s(rs),
            rt: s(rt),
            off,
        },
        Blez { rs, off } => Blez { rs: s(rs), off },
        Bgtz { rs, off } => Bgtz { rs: s(rs), off },
        Bltz { rs, off } => Bltz { rs: s(rs), off },
        Bgez { rs, off } => Bgez { rs: s(rs), off },
        Jr { rs } => Jr { rs: s(rs) },
        Jalr { rd, rs } => Jalr {
            rd: s(rd),
            rs: s(rs),
        },
        Mfc0 { rt, rd } => Mfc0 { rt: s(rt), rd },
        Mtc0 { rt, rd } => Mtc0 { rt: s(rt), rd },
        Mfc1 { rt, fs } => Mfc1 { rt: s(rt), fs },
        Mtc1 { rt, fs } => Mtc1 { rt: s(rt), fs },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_isa::reg::*;

    #[test]
    fn substitutes_all_positions() {
        let i = Inst::Addu {
            rd: S5,
            rs: S5,
            rt: T0,
        };
        let o = subst_gpr(i, S5, AT);
        assert_eq!(
            o,
            Inst::Addu {
                rd: AT,
                rs: AT,
                rt: T0
            }
        );
    }

    #[test]
    fn leaves_other_registers_alone() {
        let i = Inst::Lw {
            rt: T0,
            base: SP,
            off: 8,
        };
        assert_eq!(subst_gpr(i, S5, AT), i);
    }

    #[test]
    fn substitutes_mem_base() {
        let i = Inst::Sw {
            rt: RA,
            base: S7,
            off: 124,
        };
        let o = subst_gpr(i, S7, AT);
        assert_eq!(
            o,
            Inst::Sw {
                rt: RA,
                base: AT,
                off: 124
            }
        );
    }
}
