//! epoxie: link-time address-tracing instrumentation.
//!
//! The paper's primary tool, reimplemented for W3K: rewrites object
//! modules at link time, inserting the Figure-2 trace-collecting code
//! at the start of every basic block and before every memory
//! instruction, with static address correction, register stealing and
//! delay-slot hazard handling. Also provides the bbtrace/memtrace
//! [`runtime`], the end-to-end [`build`] pipeline that produces the
//! trace-parsing tables, a bare-machine [`harness`], and the
//! executable-level [`mod@pixie`] baseline the paper compares against.

pub mod bbscan;
pub mod build;
pub mod harness;
pub mod instrument;
pub mod pixie;

pub mod runtime;
pub mod subst;

pub use bbscan::{scan, BbRange};
pub use build::{build_traced, BuildError, TracedProgram};
pub use harness::{drain_buffer, init_trace_regs, prepare_machine, run_traced, TracedRun};
pub use instrument::{
    instrument_object, BbRecord, Expansion, InstrumentError, InstrumentedObject, Mode, RuntimeSyms,
};
pub use pixie::{pixie, PixieError, PixieProgram};
pub use runtime::{runtime_object, FullPolicy};
