//! The link-time instrumenter.
//!
//! Rewrites object modules, inserting trace-collecting code "at the
//! beginning of each basic block and before every memory instruction"
//! (§3.2, Figure 2). Two modes are provided:
//!
//! * [`Mode::Modified`] — the paper's modified epoxie: a three-
//!   instruction block preamble calling a shared `bbtrace` routine
//!   (with the trace-word count planted in a `li zero, n` delay-slot
//!   no-op) and a two-instruction `jal memtrace` sequence per memory
//!   instruction, for ≈2x text growth;
//! * [`Mode::Original`] — the original epoxie's inline scheme: every
//!   trace store is expanded in line, trading 4–6x text growth for
//!   fewer taken branches (the §3.2 footnote's comparison point).
//!
//! Register stealing is implemented as in the paper: the three
//! reserved registers' uses in the original binary "are replaced with
//! sequences of instructions that use a 'shadow' value for the
//! register, in memory". Delay-slot hazards (instructions that read
//! or write `ra`, or loads that overwrite their own base) get the
//! Figure-2 treatment: a harmless same-address access in the delay
//! slot with the real instruction issued after the call.

use std::collections::HashMap;

use crate::bbscan::{scan, BbRange};
use crate::subst::subst_gpr;
use wrl_isa::obj::{Object, Reloc, RelocKind, SecId, Symbol, TextRange};
use wrl_isa::reg::{AT, RA, ZERO};
use wrl_isa::{decode, encode, Inst, MemClass, Reg};
use wrl_trace::bbinfo::{BbTraceFlags, MemOp};
use wrl_trace::layout::{bk, XREG1, XREG2, XREG3, XREGS};

/// Instrumentation mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Modified epoxie: shared runtime routines, ≈2x text growth.
    Modified,
    /// Original epoxie: inline trace stores, 4–6x text growth.
    Original,
}

/// Errors the instrumenter can detect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstrumentError {
    /// A delay-slot instruction needs transformation but cannot be
    /// hoisted above its branch safely.
    UnsafeDelaySlot {
        /// The object.
        obj: String,
        /// Text byte offset of the branch.
        off: u32,
    },
    /// An instruction reads two stolen registers at once.
    TwoStolenReads {
        /// The object.
        obj: String,
        /// Text byte offset.
        off: u32,
    },
    /// An instruction mixes the assembler temporary with a stolen
    /// register, leaving no scratch register for the rewrite.
    AtConflict {
        /// The object.
        obj: String,
        /// Text byte offset.
        off: u32,
    },
    /// A text word does not decode.
    BadEncoding {
        /// The object.
        obj: String,
        /// Text byte offset.
        off: u32,
    },
}

impl core::fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InstrumentError::UnsafeDelaySlot { obj, off } => {
                write!(f, "{obj}+{off:#x}: delay slot cannot be hoisted safely")
            }
            InstrumentError::TwoStolenReads { obj, off } => {
                write!(f, "{obj}+{off:#x}: instruction reads two stolen registers")
            }
            InstrumentError::AtConflict { obj, off } => {
                write!(
                    f,
                    "{obj}+{off:#x}: stolen-register rewrite conflicts with $at"
                )
            }
            InstrumentError::BadEncoding { obj, off } => {
                write!(f, "{obj}+{off:#x}: undecodable instruction word")
            }
        }
    }
}

impl std::error::Error for InstrumentError {}

/// Static record for one instrumented basic block, used to build the
/// trace-parsing table once final addresses are known.
#[derive(Clone, Debug)]
pub struct BbRecord {
    /// Byte offset of the block in the *original* object text.
    pub orig_off: u32,
    /// Byte offset of the block's id point in the *instrumented* text
    /// (the return address `bbtrace` stores, or the inline id label).
    pub id_off: u32,
    /// Original instruction count.
    pub n_insts: u16,
    /// Memory operations in trace order.
    pub ops: Vec<MemOp>,
    /// Trace flags (idle markers).
    pub flags: BbTraceFlags,
}

/// An instrumented object plus its block records.
#[derive(Clone, Debug)]
pub struct InstrumentedObject {
    /// The rewritten object module.
    pub obj: Object,
    /// Per-block static records.
    pub records: Vec<BbRecord>,
}

/// Runtime entry points the generated code calls.
#[derive(Clone, Debug)]
pub struct RuntimeSyms {
    /// Basic-block trace routine (Modified mode).
    pub bbtrace: String,
    /// Memory trace routine (Modified mode).
    pub memtrace: String,
    /// Buffer-full handler (Original mode).
    pub trace_full: String,
}

impl Default for RuntimeSyms {
    fn default() -> Self {
        RuntimeSyms {
            bbtrace: "__bbtrace".into(),
            memtrace: "__memtrace".into(),
            trace_full: "__trace_full".into(),
        }
    }
}

struct Emit {
    text: Vec<u32>,
    relocs: Vec<Reloc>,
    syms: Vec<Symbol>,
}

impl Emit {
    fn pos(&self) -> u32 {
        (self.text.len() * 4) as u32
    }

    fn put(&mut self, i: Inst) {
        self.text.push(encode(i));
    }

    fn put_reloc(&mut self, i: Inst, kind: RelocKind, sym: &str, addend: i32) {
        self.relocs.push(Reloc {
            off: self.pos(),
            kind,
            sym: sym.to_string(),
            addend,
        });
        self.put(i);
    }
}

fn is_stolen(r: Reg) -> bool {
    XREGS.contains(&r)
}

fn shadow_slot(r: Reg) -> i16 {
    match r {
        _ if r == XREG1 => bk::XREG1_SHADOW,
        _ if r == XREG2 => bk::XREG2_SHADOW,
        _ => bk::XREG3_SHADOW,
    }
}

/// The stolen-register rewrite of one instruction.
struct Rewritten {
    pre: Vec<Inst>,
    core: Inst,
    post: Vec<Inst>,
}

fn rewrite_stolen(inst: Inst, obj: &str, off: u32) -> Result<Rewritten, InstrumentError> {
    let ([r1, r2], ()) = inst.reads_gprs();
    let stolen_reads: Vec<Reg> = [r1, r2]
        .into_iter()
        .flatten()
        .filter(|r| is_stolen(*r))
        .collect();
    let stolen_write = inst.writes_gpr().filter(|r| is_stolen(*r));
    if stolen_reads.is_empty() && stolen_write.is_none() {
        return Ok(Rewritten {
            pre: vec![],
            core: inst,
            post: vec![],
        });
    }
    // Distinct stolen reads beyond one are unsupported (one scratch).
    let mut distinct = stolen_reads.clone();
    distinct.dedup();
    distinct.sort_by_key(|r| r.0);
    distinct.dedup();
    if distinct.len() > 1 {
        return Err(InstrumentError::TwoStolenReads {
            obj: obj.into(),
            off,
        });
    }
    // The rewrite needs $at; the instruction must not already use it.
    if inst.reads_gpr(AT) || inst.writes_gpr() == Some(AT) {
        return Err(InstrumentError::AtConflict {
            obj: obj.into(),
            off,
        });
    }
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut core = inst;
    if let Some(&r) = distinct.first() {
        pre.push(Inst::Lw {
            rt: AT,
            base: XREG3,
            off: shadow_slot(r),
        });
        core = subst_gpr(core, r, AT);
    }
    if let Some(w) = stolen_write {
        core = subst_gpr(core, w, AT);
        post.push(Inst::Sw {
            rt: AT,
            base: XREG3,
            off: shadow_slot(w),
        });
    }
    Ok(Rewritten { pre, core, post })
}

/// True if the instruction needs any transformation beyond copying.
fn needs_transform(inst: Inst) -> bool {
    let ([r1, r2], ()) = inst.reads_gprs();
    inst.mem_class().is_some()
        || [r1, r2].into_iter().flatten().any(is_stolen)
        || inst.writes_gpr().map(is_stolen).unwrap_or(false)
        || (inst.writes_gpr() == Some(RA) && !inst.has_delay_slot())
}

/// Memory-op hazards that force the Figure-2 dummy-access scheme.
fn mem_hazard(core: Inst) -> bool {
    let writes_ra = core.writes_gpr() == Some(RA);
    let reads_ra = core.reads_gpr(RA);
    let load_clobbers_base = match (core.mem_class(), core.writes_gpr()) {
        (Some(MemClass::Load { base, .. }), Some(rt)) => rt == base,
        _ => false,
    };
    writes_ra || reads_ra || load_clobbers_base
}

/// The harmless same-base/offset access placed in the delay slot when
/// the real instruction is hazardous.
fn dummy_access(core: Inst) -> Inst {
    match core.mem_class().expect("dummy for mem op") {
        MemClass::Load { base, off, .. } => Inst::Lw {
            rt: ZERO,
            base,
            off,
        },
        MemClass::Store { base, off, .. } => Inst::Sw {
            rt: ZERO,
            base,
            off,
        },
    }
}

/// Replaces only the base register of a memory instruction.
fn rebase(i: Inst, to: Reg) -> Inst {
    use Inst::*;
    match i {
        Lb { rt, off, .. } => Lb { rt, base: to, off },
        Lbu { rt, off, .. } => Lbu { rt, base: to, off },
        Lh { rt, off, .. } => Lh { rt, base: to, off },
        Lhu { rt, off, .. } => Lhu { rt, base: to, off },
        Lw { rt, off, .. } => Lw { rt, base: to, off },
        Sb { rt, off, .. } => Sb { rt, base: to, off },
        Sh { rt, off, .. } => Sh { rt, base: to, off },
        Sw { rt, off, .. } => Sw { rt, base: to, off },
        Lwc1 { ft, off, .. } => Lwc1 { ft, base: to, off },
        Swc1 { ft, off, .. } => Swc1 { ft, base: to, off },
        other => other,
    }
}

/// Can `slot` be hoisted above its branch `br`?
fn hoist_safe(br: Inst, slot: Inst) -> bool {
    if slot.has_delay_slot() || slot.is_control() {
        return false;
    }
    if let Some(w) = slot.writes_gpr() {
        if br.reads_gpr(w) {
            return false;
        }
    }
    // jal/jalr write ra before the slot would have run; hoisting is
    // unsafe if the slot touches ra.
    if br.writes_gpr() == Some(RA) && (slot.reads_gpr(RA) || slot.writes_gpr() == Some(RA)) {
        return false;
    }
    true
}

/// Instruments one object module.
pub fn instrument_object(
    src: &Object,
    mode: Mode,
    rt: &RuntimeSyms,
) -> Result<InstrumentedObject, InstrumentError> {
    let bbs = scan(src);
    let mut em = Emit {
        text: Vec::with_capacity(src.text.len() * 3),
        relocs: Vec::new(),
        syms: Vec::new(),
    };
    let mut records: Vec<BbRecord> = Vec::with_capacity(bbs.len());
    // Original word index -> new byte offset of the core instruction.
    let mut pos_map: HashMap<u32, u32> = HashMap::new();
    // Original bb start -> new byte offset of the preamble.
    let mut bb_entry: HashMap<u32, u32> = HashMap::new();
    let mut bb_counter = 0u32;

    for bb in &bbs {
        if src.is_protected(bb.start) {
            bb_entry.insert(bb.start, em.pos());
            copy_verbatim(src, *bb, &mut em, &mut pos_map);
            continue;
        }
        instrument_bb(
            src,
            *bb,
            mode,
            rt,
            &mut em,
            &mut pos_map,
            &mut bb_entry,
            &mut records,
            &mut bb_counter,
        )?;
    }

    // Rebuild symbols.
    let mut symbols = Vec::with_capacity(src.symbols.len());
    for s in &src.symbols {
        let off = if s.sec == SecId::Text {
            if let Some(&p) = bb_entry.get(&s.off) {
                p
            } else if s.off >= src.text_bytes() {
                em.pos()
            } else {
                *pos_map.get(&(s.off / 4)).unwrap_or(&0)
            }
        } else {
            s.off
        };
        symbols.push(Symbol {
            name: s.name.clone(),
            sec: s.sec,
            off,
            global: s.global,
        });
    }
    symbols.append(&mut em.syms);

    // Remap ranges.
    let remap_range = |r: &TextRange| TextRange {
        start: *bb_entry
            .get(&r.start)
            .or_else(|| pos_map.get(&(r.start / 4)))
            .unwrap_or(&r.start),
        end: if r.end >= src.text_bytes() {
            em.pos()
        } else {
            *bb_entry
                .get(&r.end)
                .or_else(|| pos_map.get(&(r.end / 4)))
                .unwrap_or(&r.end)
        },
    };
    let uninstrumented = src.uninstrumented.iter().map(remap_range).collect();
    let hand_traced = src.hand_traced.iter().map(remap_range).collect();

    Ok(InstrumentedObject {
        obj: Object {
            name: format!("{}.epoxie", src.name),
            text: em.text,
            data: src.data.clone(),
            bss_size: src.bss_size,
            symbols,
            text_relocs: em.relocs,
            data_relocs: src.data_relocs.clone(),
            uninstrumented,
            hand_traced,
            bb_flags: HashMap::new(),
        },
        records,
    })
}

fn copy_verbatim(src: &Object, bb: BbRange, em: &mut Emit, pos_map: &mut HashMap<u32, u32>) {
    for i in (bb.start / 4)..(bb.end / 4) {
        pos_map.insert(i, em.pos());
        copy_relocs_at(src, i, em);
        em.text.push(src.text[i as usize]);
    }
}

/// Re-attaches any original relocation on word `i` to the current
/// emission position.
fn copy_relocs_at(src: &Object, i: u32, em: &mut Emit) {
    for r in &src.text_relocs {
        if r.off == i * 4 {
            em.relocs.push(Reloc {
                off: em.pos(),
                kind: r.kind,
                sym: r.sym.clone(),
                addend: r.addend,
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn instrument_bb(
    src: &Object,
    bb: BbRange,
    mode: Mode,
    rt: &RuntimeSyms,
    em: &mut Emit,
    pos_map: &mut HashMap<u32, u32>,
    bb_entry: &mut HashMap<u32, u32>,
    records: &mut Vec<BbRecord>,
    bb_counter: &mut u32,
) -> Result<(), InstrumentError> {
    let nw = bb.n_insts();
    let mut insts = Vec::with_capacity(nw as usize);
    for i in 0..nw {
        let w = src.text[((bb.start / 4) + i) as usize];
        let inst = decode(w).map_err(|_| InstrumentError::BadEncoding {
            obj: src.name.clone(),
            off: bb.start + i * 4,
        })?;
        insts.push(inst);
    }
    // Collect memory operations in original order.
    let mut ops = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        if let Some(mc) = inst.mem_class() {
            let (store, width) = match mc {
                MemClass::Load { width, .. } => (false, width),
                MemClass::Store { width, .. } => (true, width),
            };
            ops.push(MemOp {
                index: i as u16,
                store,
                width,
            });
        }
    }
    let n_words = 1 + ops.len() as i16;

    let preamble = em.pos();
    bb_entry.insert(bb.start, preamble);
    let id_off;
    match mode {
        Mode::Modified => {
            // Figure 2: sw ra,124(xreg3); jal bbtrace; li zero,n.
            em.put(Inst::Sw {
                rt: RA,
                base: XREG3,
                off: bk::RA_SAVE,
            });
            em.put_reloc(Inst::Jal { target: 0 }, RelocKind::J26, &rt.bbtrace, 0);
            em.put(Inst::Addiu {
                rt: ZERO,
                rs: ZERO,
                imm: n_words,
            });
            id_off = em.pos(); // jal's return address
        }
        Mode::Original => {
            // Inline: fullness check, then store the id in line.
            em.put(Inst::Sw {
                rt: RA,
                base: XREG3,
                off: bk::RA_SAVE,
            });
            em.put(Inst::Lw {
                rt: XREG2,
                base: XREG3,
                off: bk::BUF_END,
            });
            em.put(Inst::Sltu {
                rd: XREG2,
                rs: XREG2,
                rt: XREG1,
            });
            // Skip the flush call when there is room: branch over
            // [nop][jal][nop] to the id sequence.
            em.put(Inst::Beq {
                rs: XREG2,
                rt: ZERO,
                off: 3,
            });
            em.put(Inst::nop());
            em.put_reloc(Inst::Jal { target: 0 }, RelocKind::J26, &rt.trace_full, 0);
            em.put(Inst::nop());
            let label = format!("__bb{}_{}", src.name, *bb_counter);
            *bb_counter += 1;
            id_off = em.pos();
            em.syms.push(Symbol {
                name: label.clone(),
                sec: SecId::Text,
                off: id_off,
                global: false,
            });
            em.put_reloc(Inst::Lui { rt: XREG2, imm: 0 }, RelocKind::Hi16, &label, 0);
            em.put_reloc(
                Inst::Ori {
                    rt: XREG2,
                    rs: XREG2,
                    imm: 0,
                },
                RelocKind::Lo16,
                &label,
                0,
            );
            em.put(Inst::Sw {
                rt: XREG2,
                base: XREG1,
                off: 0,
            });
            em.put(Inst::Addiu {
                rt: XREG1,
                rs: XREG1,
                imm: 4,
            });
        }
    }

    records.push(BbRecord {
        orig_off: bb.start,
        id_off,
        n_insts: nw as u16,
        ops,
        flags: BbTraceFlags {
            idle_start: src
                .bb_flags
                .get(&bb.start)
                .map(|f| f.idle_start)
                .unwrap_or(false),
            idle_stop: src
                .bb_flags
                .get(&bb.start)
                .map(|f| f.idle_stop)
                .unwrap_or(false),
            hand_traced: false,
        },
    });

    // Emit the body.
    let mut i = 0usize;
    while i < insts.len() {
        let inst = insts[i];
        let old_idx = bb.start / 4 + i as u32;
        if inst.has_delay_slot() && i + 1 < insts.len() {
            let slot = insts[i + 1];
            let slot_idx = old_idx + 1;
            // A branch reading a stolen register gets the shadow-load
            // prefix itself (it never writes a GPR other than ra).
            let brw = rewrite_stolen(inst, &src.name, old_idx * 4)?;
            let emit_branch = |em: &mut Emit, pos_map: &mut HashMap<u32, u32>| {
                for p in &brw.pre {
                    em.put(*p);
                }
                pos_map.insert(old_idx, em.pos());
                copy_relocs_at(src, old_idx, em);
                em.put(brw.core);
            };
            if needs_transform(slot) {
                if !hoist_safe(inst, slot) {
                    return Err(InstrumentError::UnsafeDelaySlot {
                        obj: src.name.clone(),
                        off: bb.start + (i as u32) * 4,
                    });
                }
                emit_one(src, slot, slot_idx, mode, rt, em, pos_map)?;
                // Branch, then a nop in the vacated slot.
                emit_branch(em, pos_map);
                em.put(Inst::nop());
            } else {
                emit_branch(em, pos_map);
                pos_map.insert(slot_idx, em.pos());
                copy_relocs_at(src, slot_idx, em);
                em.put(slot);
            }
            i += 2;
        } else {
            emit_one(src, inst, old_idx, mode, rt, em, pos_map)?;
            i += 1;
        }
    }
    Ok(())
}

/// Emits one (non-branch) instruction with stolen-register rewriting,
/// memory instrumentation and ra-shadow maintenance.
fn emit_one(
    src: &Object,
    inst: Inst,
    old_idx: u32,
    mode: Mode,
    rt: &RuntimeSyms,
    em: &mut Emit,
    pos_map: &mut HashMap<u32, u32>,
) -> Result<(), InstrumentError> {
    let rw = rewrite_stolen(inst, &src.name, old_idx * 4)?;
    let mut core = rw.core;
    let mut pre = rw.pre;
    // A memory operation whose *base* is `ra` cannot use the dummy
    // scheme (the dummy would read the jal-clobbered ra too): rebase
    // it through the ra shadow instead.
    if let Some(mc) = core.mem_class() {
        let base = match mc {
            MemClass::Load { base, .. } | MemClass::Store { base, .. } => base,
        };
        if base == RA {
            if !pre.is_empty() || core.writes_gpr() == Some(wrl_isa::reg::AT) {
                return Err(InstrumentError::AtConflict {
                    obj: src.name.clone(),
                    off: old_idx * 4,
                });
            }
            pre.push(Inst::Lw {
                rt: wrl_isa::reg::AT,
                base: XREG3,
                off: bk::RA_SAVE,
            });
            core = rebase(core, wrl_isa::reg::AT);
        }
    }
    let rw = Rewritten {
        pre,
        core,
        post: rw.post,
    };
    for p in &rw.pre {
        em.put(*p);
    }
    let core = rw.core;
    if core.mem_class().is_some() {
        match mode {
            Mode::Modified => {
                if mem_hazard(core) {
                    em.put_reloc(Inst::Jal { target: 0 }, RelocKind::J26, &rt.memtrace, 0);
                    em.put(dummy_access(core));
                    pos_map.insert(old_idx, em.pos());
                    copy_relocs_at(src, old_idx, em);
                    em.put(core);
                } else {
                    em.put_reloc(Inst::Jal { target: 0 }, RelocKind::J26, &rt.memtrace, 0);
                    pos_map.insert(old_idx, em.pos());
                    copy_relocs_at(src, old_idx, em);
                    em.put(core);
                }
            }
            Mode::Original => {
                let (base, off) = match core.mem_class().expect("mem op") {
                    MemClass::Load { base, off, .. } | MemClass::Store { base, off, .. } => {
                        (base, off)
                    }
                };
                em.put(Inst::Addiu {
                    rt: XREG2,
                    rs: base,
                    imm: off,
                });
                em.put(Inst::Sw {
                    rt: XREG2,
                    base: XREG1,
                    off: 0,
                });
                em.put(Inst::Addiu {
                    rt: XREG1,
                    rs: XREG1,
                    imm: 4,
                });
                pos_map.insert(old_idx, em.pos());
                copy_relocs_at(src, old_idx, em);
                em.put(core);
            }
        }
    } else {
        pos_map.insert(old_idx, em.pos());
        copy_relocs_at(src, old_idx, em);
        em.put(core);
    }
    for p in &rw.post {
        em.put(*p);
    }
    // Keep the ra shadow in sync with writes to ra.
    if core.writes_gpr() == Some(RA) && !core.has_delay_slot() {
        em.put(Inst::Sw {
            rt: RA,
            base: XREG3,
            off: bk::RA_SAVE,
        });
    }
    Ok(())
}

/// Text expansion statistics for a set of objects.
#[derive(Clone, Copy, Debug, Default)]
pub struct Expansion {
    /// Original text bytes.
    pub orig_bytes: u64,
    /// Instrumented text bytes.
    pub new_bytes: u64,
}

impl Expansion {
    /// Growth factor.
    pub fn factor(&self) -> f64 {
        if self.orig_bytes == 0 {
            1.0
        } else {
            self.new_bytes as f64 / self.orig_bytes as f64
        }
    }
}
