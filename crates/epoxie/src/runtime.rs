//! The bbtrace/memtrace runtime, in W3K assembly.
//!
//! These are the shared routines the Figure-2 instrumentation calls.
//! They are themselves part of the tracing system and therefore live
//! in an *uninstrumented* region (§3.3). They may clobber only the
//! stolen registers and `ra` (which they restore from the bookkeeping
//! shadow before returning, as the paper describes), never `$at` or
//! any other program register.
//!
//! `memtrace` "partially decodes the instruction in the branch delay
//! slot to compute the address of the memory reference" (§3.2): it
//! loads the word at `ra - 4`, extracts the base-register field, and
//! dispatches through a 32-entry jump table to copy that register's
//! live value — with special entries for the stolen registers (read
//! from their shadow slots) and for `ra` (read from the block's saved
//! copy).

use wrl_isa::asm::Asm;
use wrl_isa::reg::{Reg, RA, ZERO};
use wrl_isa::{Inst, Object};
use wrl_trace::layout::{bk, trapcode, XREG1, XREG2, XREG3};

/// How the runtime reacts to a full trace buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FullPolicy {
    /// User processes: trap to the kernel, which copies the
    /// per-process buffer into the in-kernel buffer and resets the
    /// trace pointer (§3.1).
    Syscall,
    /// The kernel itself: raise the soft limit to the hard end of the
    /// slack region and set the needs-analysis flag; the exception
    /// exit path performs the actual mode switch at a safe point
    /// (§3.3).
    KernelFlag,
}

/// Emits the buffer-full sequence. On return the caller may store.
fn emit_full_path(a: &mut Asm, policy: FullPolicy) {
    match policy {
        FullPolicy::Syscall => {
            a.syscall(trapcode::TRACE_FLUSH);
        }
        FullPolicy::KernelFlag => {
            // Raise the soft limit to the hard end and flag the need
            // for analysis; `ra` is already saved by the caller.
            a.lw(RA, bk::HARD_END, XREG3);
            a.sw(RA, bk::BUF_END, XREG3);
            a.addiu(RA, ZERO, 1);
            a.sw(RA, bk::NEED_FLUSH, XREG3);
        }
    }
}

/// Builds the runtime object for one binary.
///
/// Exports `__bbtrace`, `__memtrace` and `__trace_full` (the latter
/// used by the Original-mode inline instrumentation).
pub fn runtime_object(policy: FullPolicy) -> Object {
    let mut a = Asm::new("trace_runtime");
    a.begin_uninstrumented();

    // ---- __bbtrace ----
    a.global_label("__bbtrace");
    // ra = return point = bb id; delay-slot word at ra-4 is
    // `li zero, n` with the block's trace-word count.
    a.sw(RA, bk::SCRATCH2, XREG3);
    a.lw(XREG2, -4, RA);
    a.andi(XREG2, XREG2, 0xffff);
    a.sll(XREG2, XREG2, 2);
    a.addu(XREG2, XREG2, XREG1); // end needed for this block
    a.lw(RA, bk::BUF_END, XREG3);
    a.sltu(RA, RA, XREG2); // buf_end < needed?
    a.beq(RA, ZERO, "__bbt_store");
    a.nop();
    emit_full_path(&mut a, policy);
    a.label("__bbt_store");
    a.lw(RA, bk::SCRATCH2, XREG3); // the bb id
    match policy {
        FullPolicy::Syscall => {
            // Store-then-bump: the kernel copies complete entries
            // ([base, xreg1)) and resets the pointer on every entry.
            a.sw(RA, 0, XREG1);
            a.addiu(XREG1, XREG1, 4);
        }
        FullPolicy::KernelFlag => {
            // Reserve-then-fill: an interrupt between the two
            // instructions finds the slot already reserved, so the
            // handler's trace entries never overwrite an in-flight
            // store (§3.3 nested-interrupt trace state).
            a.addiu(XREG1, XREG1, 4);
            a.sw(RA, -4, XREG1);
        }
    }
    a.lw(XREG2, bk::SCRATCH2, XREG3);
    a.lw(RA, bk::RA_SAVE, XREG3); // restore the program's ra
    a.jr(XREG2);
    a.nop();

    // ---- __memtrace ----
    a.global_label("__memtrace");
    a.sw(RA, bk::SCRATCH2, XREG3);
    a.lw(XREG2, -4, RA); // the memory instruction word
    a.sw(XREG2, bk::SCRATCH, XREG3);
    a.srl(XREG2, XREG2, 21);
    a.andi(XREG2, XREG2, 31); // base register number
    a.sll(XREG2, XREG2, 3); // 8 bytes per table entry
    a.la(RA, "__mt_table");
    a.addu(RA, RA, XREG2);
    a.jr(RA);
    a.nop();
    // Each entry is `j __mt_common` with the register-select in the
    // jump's *delay slot*. (Select-then-jump would be wrong: the
    // jump's delay slot would then be the next entry's select, which
    // would clobber `xreg2` after we had loaded it.)
    a.label("__mt_table");
    for r in 0..32u8 {
        let reg = Reg(r);
        a.j("__mt_common");
        if reg == XREG1 || reg == XREG2 || reg == XREG3 {
            // Stolen base registers: the program's value lives in the
            // shadow slot.
            let slot = match reg {
                _ if reg == XREG1 => bk::XREG1_SHADOW,
                _ if reg == XREG2 => bk::XREG2_SHADOW,
                _ => bk::XREG3_SHADOW,
            };
            a.lw(XREG2, slot, XREG3);
        } else if reg == RA {
            // The program's ra is in the block's saved copy (the jal
            // that got us here clobbered the live one).
            a.lw(XREG2, bk::RA_SAVE, XREG3);
        } else {
            a.inst(Inst::Or {
                rd: XREG2,
                rs: reg,
                rt: ZERO,
            });
        }
    }
    a.label("__mt_common");
    a.lw(RA, bk::SCRATCH, XREG3); // instruction word
    a.sll(RA, RA, 16);
    a.sra(RA, RA, 16); // sign-extended offset
    a.addu(XREG2, XREG2, RA); // effective address
    match policy {
        FullPolicy::Syscall => {
            a.sw(XREG2, 0, XREG1);
            a.addiu(XREG1, XREG1, 4);
        }
        FullPolicy::KernelFlag => {
            a.addiu(XREG1, XREG1, 4);
            a.sw(XREG2, -4, XREG1);
        }
    }
    a.lw(XREG2, bk::SCRATCH2, XREG3);
    a.lw(RA, bk::RA_SAVE, XREG3);
    a.jr(XREG2);
    a.nop();

    // ---- __trace_full (Original-mode inline flush stub) ----
    a.global_label("__trace_full");
    a.sw(RA, bk::SCRATCH2, XREG3);
    emit_full_path(&mut a, policy);
    a.lw(XREG2, bk::SCRATCH2, XREG3);
    a.lw(RA, bk::RA_SAVE, XREG3);
    a.jr(XREG2);
    a.nop();

    a.end_uninstrumented();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_exports_entry_points() {
        let o = runtime_object(FullPolicy::Syscall);
        assert!(o.symbol("__bbtrace").is_some());
        assert!(o.symbol("__memtrace").is_some());
        assert!(o.symbol("__trace_full").is_some());
        assert!(!o.uninstrumented.is_empty());
        // The whole runtime is protected.
        assert!(o.is_protected(0));
        assert!(o.is_protected(o.text_bytes() - 4));
    }

    #[test]
    fn kernel_policy_has_no_syscall() {
        let o = runtime_object(FullPolicy::KernelFlag);
        let has_syscall = o
            .text
            .iter()
            .any(|&w| matches!(wrl_isa::decode(w), Ok(Inst::Syscall { .. })));
        assert!(!has_syscall);
    }
}
