//! A pixie-style baseline: executable-level rewriting.
//!
//! "Pixie does some of this address correction statically, when the
//! original executable is rewritten as an instrumented executable,
//! but it must do part of it dynamically, by including a complete
//! address translation table in the instrumented executable and doing
//! lookups in this table during execution" (§3.2). Without symbol and
//! relocation tables, every register-indirect jump needs a runtime
//! table lookup, and the tracing code is expanded in line — giving
//! the 4–6x text growth the paper's footnote measures against
//! epoxie's ~2x.
//!
//! Conventions of the rewritten binary:
//!
//! * register-held code addresses are *original* addresses: `jal`
//!   links the original return address and `jr`/`jalr` translate
//!   through the table, so function pointers taken from data keep
//!   working;
//! * trace entries (original bb address, then effective addresses) go
//!   to a circular user-level buffer with the wrap check at block
//!   records — pixie manages trace at user level, which is exactly
//!   why it cannot preserve cross-address-space interleaving (§3.3).

use std::collections::HashMap;

use wrl_isa::reg::{AT, RA, ZERO};
use wrl_isa::{decode, encode, Executable, Inst, MemClass, Reg};
use wrl_trace::layout::{XREG1, XREG2, XREG3};

/// Fixed addresses of the pixie trace area (identity-mapped in bare
/// runs, like the epoxie harness area).
pub mod area {
    /// Control block: +0 end, +4 base, +8 wrap count.
    pub const CTRL: u32 = 0x01f0_0000;
    /// Circular trace buffer.
    pub const BUF: u32 = 0x01f0_1000;
    /// Buffer bytes (the wrap check leaves a one-block slack).
    pub const BUF_BYTES: u32 = 64 * 1024;
}

/// Errors from the pixie rewriter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PixieError {
    /// An instruction word did not decode.
    BadEncoding {
        /// Its address.
        at: u32,
    },
    /// The program uses a stolen register (unsupported baseline).
    StolenRegister {
        /// Its address.
        at: u32,
    },
    /// A delay slot could not be hoisted safely.
    UnsafeDelaySlot {
        /// The branch address.
        at: u32,
    },
}

impl core::fmt::Display for PixieError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PixieError::BadEncoding { at } => write!(f, "{at:#010x}: undecodable"),
            PixieError::StolenRegister { at } => {
                write!(f, "{at:#010x}: uses a stolen register")
            }
            PixieError::UnsafeDelaySlot { at } => {
                write!(f, "{at:#010x}: delay slot cannot be hoisted")
            }
        }
    }
}

impl std::error::Error for PixieError {}

/// The pixie-rewritten program.
#[derive(Clone, Debug)]
pub struct PixieProgram {
    /// The rewritten executable (text replaced, data untouched, the
    /// translation table appended beyond bss).
    pub exe: Executable,
    /// Address of the translation table.
    pub table_base: u32,
    /// Original → instrumented address map (the static side).
    pub forward: HashMap<u32, u32>,
    /// Text growth factor.
    pub expansion: f64,
}

struct Emit {
    words: Vec<u32>,
    base: u32,
}

impl Emit {
    fn pc(&self) -> u32 {
        self.base + (self.words.len() * 4) as u32
    }
    fn put(&mut self, i: Inst) {
        self.words.push(encode(i));
    }
    fn li32(&mut self, rt: Reg, v: u32) {
        self.put(Inst::Lui {
            rt,
            imm: (v >> 16) as u16,
        });
        self.put(Inst::Ori {
            rt,
            rs: rt,
            imm: (v & 0xffff) as u16,
        });
    }
}

fn uses_stolen(i: Inst) -> bool {
    let ([a, b], ()) = i.reads_gprs();
    let stolen = [XREG1, XREG2, XREG3];
    [a, b].into_iter().flatten().any(|r| stolen.contains(&r))
        || i.writes_gpr().map(|r| stolen.contains(&r)).unwrap_or(false)
}

// Sizing constants — must match the emission helpers exactly.
const W_BB: u32 = 12; // li32(2) + store(2) + wrap check(8)
const W_MEM: u32 = 4; // addr(1) + store(2) + the instruction
const W_JAL: u32 = 4; // li ra(2) + j + nop
const W_J: u32 = 2; // j + nop
const W_JR: u32 = 9; // translate(8) + jr ... (see emit_translate_jump)
const W_JALR: u32 = 11; // li rd(2) + W_JR
const W_BR: u32 = 2; // branch + nop (slot hoisted separately)

/// Words emitted for one original instruction.
fn cost(i: Inst, is_leader: bool) -> u32 {
    let body = match i {
        Inst::Jal { .. } => W_JAL,
        Inst::Jalr { .. } => W_JALR,
        Inst::Jr { .. } => W_JR,
        Inst::J { .. } => W_J,
        _ if i.mem_class().is_some() => W_MEM,
        _ if i.is_branch() => W_BR,
        _ => 1,
    };
    body + if is_leader { W_BB } else { 0 }
}

/// `xreg2` holds the trace word: store and bump (2 words).
fn emit_store(e: &mut Emit) {
    e.put(Inst::Sw {
        rt: XREG2,
        base: XREG1,
        off: 0,
    });
    e.put(Inst::Addiu {
        rt: XREG1,
        rs: XREG1,
        imm: 4,
    });
}

/// Circular wrap check (8 words): if `xreg1 >= end`, rewind to base
/// and count the wrap. Performed at block records only; the slack
/// below the true end absorbs the block's memory entries.
fn emit_wrap_check(e: &mut Emit) {
    e.put(Inst::Lw {
        rt: XREG2,
        base: XREG3,
        off: 0,
    });
    e.put(Inst::Sltu {
        rd: XREG2,
        rs: XREG1,
        rt: XREG2,
    });
    e.put(Inst::Bne {
        rs: XREG2,
        rt: ZERO,
        off: 5, // over [nop] + the 4-word wrap block
    });
    e.put(Inst::nop());
    e.put(Inst::Lw {
        rt: XREG1,
        base: XREG3,
        off: 4,
    });
    e.put(Inst::Lw {
        rt: XREG2,
        base: XREG3,
        off: 8,
    });
    e.put(Inst::Addiu {
        rt: XREG2,
        rs: XREG2,
        imm: 1,
    });
    e.put(Inst::Sw {
        rt: XREG2,
        base: XREG3,
        off: 8,
    });
}

/// The block record: original bb address + wrap check (12 words).
fn emit_bb_record(e: &mut Emit, orig_pc: u32) {
    e.li32(XREG2, orig_pc);
    emit_store(e);
    emit_wrap_check(e);
}

/// jr translation (9 words): `xreg2 := table[rs - text_base]; jr`.
fn emit_translate_jump(e: &mut Emit, rs: Reg, text_base: u32, table_base: u32) {
    e.li32(XREG2, text_base);
    e.put(Inst::Subu {
        rd: XREG2,
        rs,
        rt: XREG2,
    });
    e.li32(AT, table_base);
    e.put(Inst::Addu {
        rd: XREG2,
        rs: XREG2,
        rt: AT,
    });
    e.put(Inst::Lw {
        rt: XREG2,
        base: XREG2,
        off: 0,
    });
    e.put(Inst::Jr { rs: XREG2 });
    e.put(Inst::nop());
}

fn branch_off(i: Inst) -> i64 {
    use Inst::*;
    match i {
        Beq { off, .. }
        | Bne { off, .. }
        | Blez { off, .. }
        | Bgtz { off, .. }
        | Bltz { off, .. }
        | Bgez { off, .. }
        | Bc1t { off }
        | Bc1f { off } => off as i64,
        _ => unreachable!("not a branch"),
    }
}

fn retarget(i: Inst, disp: i16) -> Inst {
    use Inst::*;
    match i {
        Beq { rs, rt, .. } => Beq { rs, rt, off: disp },
        Bne { rs, rt, .. } => Bne { rs, rt, off: disp },
        Blez { rs, .. } => Blez { rs, off: disp },
        Bgtz { rs, .. } => Bgtz { rs, off: disp },
        Bltz { rs, .. } => Bltz { rs, off: disp },
        Bgez { rs, .. } => Bgez { rs, off: disp },
        Bc1t { .. } => Bc1t { off: disp },
        Bc1f { .. } => Bc1f { off: disp },
        _ => unreachable!("not a branch"),
    }
}

/// Rewrites an executable with inline address tracing.
pub fn pixie(exe: &Executable) -> Result<PixieProgram, PixieError> {
    let n = exe.text.len();
    let base = exe.text_base;

    // Decode and find block leaders.
    let mut insts = Vec::with_capacity(n);
    for (k, &w) in exe.text.iter().enumerate() {
        insts.push(decode(w).map_err(|_| PixieError::BadEncoding {
            at: base + (k as u32) * 4,
        })?);
    }
    let mut leader = vec![false; n + 1];
    leader[0] = true;
    for (k, i) in insts.iter().enumerate() {
        if uses_stolen(*i) {
            return Err(PixieError::StolenRegister {
                at: base + (k as u32) * 4,
            });
        }
        use Inst::*;
        match i {
            i if i.is_branch() => {
                let t = k as i64 + 1 + branch_off(*i);
                if (0..=n as i64).contains(&t) {
                    leader[t as usize] = true;
                }
            }
            J { target } | Jal { target } => {
                let t = ((base & 0xf000_0000) | (target << 2)) as i64;
                let idx = (t - base as i64) / 4;
                if (0..=n as i64).contains(&idx) {
                    leader[idx as usize] = true;
                }
            }
            _ => {}
        }
        if i.has_delay_slot() && k + 2 <= n {
            leader[k + 2] = true;
        } else if matches!(i, Syscall { .. } | Break { .. }) && k < n {
            leader[k + 1] = true;
        }
    }
    for k in 1..n {
        if leader[k] && insts[k - 1].has_delay_slot() {
            leader[k] = false;
            if k < n {
                leader[k + 1] = true;
            }
        }
    }

    // Sizing pass.
    let mut newpos = vec![0u32; n + 1];
    let mut pos = 0u32;
    let mut k = 0;
    while k < n {
        newpos[k] = pos;
        let i = insts[k];
        if i.has_delay_slot() && k + 1 < n {
            let slot = insts[k + 1];
            if slot.has_delay_slot() {
                return Err(PixieError::UnsafeDelaySlot {
                    at: base + (k as u32) * 4,
                });
            }
            newpos[k + 1] = pos; // inside the unit
            pos += 4 * ((if leader[k] { W_BB } else { 0 }) + cost(slot, false) + cost(i, false));
            k += 2;
        } else {
            pos += 4 * cost(i, leader[k]);
            k += 1;
        }
    }
    newpos[n] = pos;

    let table_base = (exe.brk() + 0xfff) & !0xfff;

    // Emission pass.
    let mut e = Emit {
        words: Vec::with_capacity(pos as usize),
        base,
    };
    fn emit_plain(e: &mut Emit, i: Inst) {
        if let Some(mc) = i.mem_class() {
            let (b, off) = match mc {
                MemClass::Load { base, off, .. } | MemClass::Store { base, off, .. } => (base, off),
            };
            e.put(Inst::Addiu {
                rt: XREG2,
                rs: b,
                imm: off,
            });
            emit_store(e);
            e.put(i);
        } else {
            e.put(i);
        }
    }

    let mut k = 0;
    while k < n {
        debug_assert_eq!(e.pc(), base + newpos[k], "layout drift at {k}");
        let i = insts[k];
        let orig_pc = base + (k as u32) * 4;
        if leader[k] {
            emit_bb_record(&mut e, orig_pc);
        }
        if i.has_delay_slot() && k + 1 < n {
            let slot = insts[k + 1];
            // Hoist safety.
            if let Some(w) = slot.writes_gpr() {
                if i.reads_gpr(w) {
                    return Err(PixieError::UnsafeDelaySlot { at: orig_pc });
                }
            }
            if i.writes_gpr() == Some(RA) && (slot.reads_gpr(RA) || slot.writes_gpr() == Some(RA)) {
                return Err(PixieError::UnsafeDelaySlot { at: orig_pc });
            }
            emit_plain(&mut e, slot);
            use Inst::*;
            match i {
                Jal { target } => {
                    let orig_t = (base & 0xf000_0000) | (target << 2);
                    let idx = (((orig_t - base) / 4) as usize).min(n);
                    e.li32(RA, orig_pc + 8);
                    let new_t = base + newpos[idx];
                    e.put(J {
                        target: (new_t >> 2) & 0x03ff_ffff,
                    });
                    e.put(Inst::nop());
                }
                J { target } => {
                    let orig_t = (base & 0xf000_0000) | (target << 2);
                    let idx = (((orig_t - base) / 4) as usize).min(n);
                    let new_t = base + newpos[idx];
                    e.put(J {
                        target: (new_t >> 2) & 0x03ff_ffff,
                    });
                    e.put(Inst::nop());
                }
                Jr { rs } => emit_translate_jump(&mut e, rs, base, table_base),
                Jalr { rd, rs } => {
                    e.li32(rd, orig_pc + 8);
                    emit_translate_jump(&mut e, rs, base, table_base);
                }
                br => {
                    let t = ((k as i64 + 1 + branch_off(br)).max(0) as usize).min(n);
                    let new_t = base + newpos[t];
                    let here = e.pc();
                    let disp = (new_t as i64 - (here as i64 + 4)) >> 2;
                    e.put(retarget(br, disp as i16));
                    e.put(Inst::nop());
                }
            }
            k += 2;
        } else {
            emit_plain(&mut e, i);
            k += 1;
        }
    }

    // Translation table and forward map.
    let mut table = Vec::with_capacity(n);
    let mut forward = HashMap::new();
    #[allow(clippy::needless_range_loop)]
    for k in 0..n {
        let new = base + newpos[k];
        table.push(new);
        forward.insert(base + (k as u32) * 4, new);
    }

    let mut new_exe = exe.clone();
    let expansion = (e.words.len() as f64) / (n.max(1) as f64);
    new_exe.text = e.words;
    new_exe.entry = forward[&exe.entry];
    let gap = (table_base - exe.data_base) as usize;
    new_exe.data.resize(gap + table.len() * 4, 0);
    for (i, w) in table.iter().enumerate() {
        new_exe.data[gap + i * 4..gap + i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }

    Ok(PixieProgram {
        exe: new_exe,
        table_base,
        forward,
        expansion,
    })
}

/// Prepares a bare machine to run a pixie-rewritten program.
pub fn prepare_pixie_machine(prog: &PixieProgram, mem_bytes: u32) -> wrl_machine::Machine {
    let mut m = wrl_machine::Machine::new(
        wrl_machine::Config {
            mem_bytes,
            ..wrl_machine::Config::bare()
        },
        vec![],
    );
    m.load_executable(&prog.exe);
    m.cpu.regs[XREG1.idx()] = area::BUF;
    m.cpu.regs[XREG3.idx()] = area::CTRL;
    // One-block slack below the true end.
    m.mem
        .write_word(area::CTRL, area::BUF + area::BUF_BYTES - 4096);
    m.mem.write_word(area::CTRL + 4, area::BUF);
    m.set_pc(prog.exe.entry);
    m
}

/// Total trace entries a pixie run produced (wraps × capacity + fill).
pub fn pixie_entries(prog: &PixieProgram, m: &wrl_machine::Machine) -> u64 {
    let wraps = m.mem.read_word(area::CTRL + 8) as u64;
    let fill = (m.cpu.regs[XREG1.idx()] - area::BUF) as u64 / 4;
    let _ = prog;
    wraps * ((area::BUF_BYTES as u64 - 4096) / 4) + fill
}
