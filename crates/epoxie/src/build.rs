//! The full instrumentation pipeline: instrument, link, and build the
//! trace-parsing tables.
//!
//! Because epoxie rewrites object files *before* linking, both the
//! instrumented and the original binaries are linked with the same
//! layout bases, and the static basic-block table maps each
//! instrumented block id to its address in the original binary: "the
//! addresses seen by the simulator correspond to the uninstrumented
//! binary" (§3.2). Data addresses coincide by construction (epoxie
//! never touches data sections).

use std::collections::HashMap;

use crate::instrument::{instrument_object, Expansion, InstrumentError, Mode, RuntimeSyms};
use crate::runtime::{runtime_object, FullPolicy};
use wrl_isa::link::{link, Layout, LinkError, Linked};
use wrl_isa::Object;
use wrl_trace::bbinfo::{BbInfo, BbTable};

/// Errors from the build pipeline.
#[derive(Clone, Debug)]
pub enum BuildError {
    /// Instrumentation failed.
    Instrument(InstrumentError),
    /// Linking failed (either binary).
    Link(LinkError),
}

impl From<InstrumentError> for BuildError {
    fn from(e: InstrumentError) -> Self {
        BuildError::Instrument(e)
    }
}

impl From<LinkError> for BuildError {
    fn from(e: LinkError) -> Self {
        BuildError::Link(e)
    }
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::Instrument(e) => write!(f, "instrumentation: {e}"),
            BuildError::Link(e) => write!(f, "link: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A fully built traced program: both binaries plus the parse table.
#[derive(Clone, Debug)]
pub struct TracedProgram {
    /// The instrumented binary (what actually runs).
    pub instr: Linked,
    /// The original binary (whose addresses appear in the trace).
    pub orig: Linked,
    /// The basic-block lookup table keyed by instrumented bb id.
    pub table: BbTable,
    /// Text-size statistics.
    pub expansion: Expansion,
    /// Map from original global text symbols to instrumented entry
    /// addresses (diagnostics).
    pub entry_map: HashMap<String, u32>,
}

/// Instruments `objects`, links both versions, and builds the table.
///
/// `policy` selects the user (syscall) or kernel (flag) buffer-full
/// behaviour; `mode` selects modified (compact) or original (inline)
/// epoxie.
pub fn build_traced(
    objects: &[Object],
    layout: Layout,
    entry: &str,
    mode: Mode,
    policy: FullPolicy,
) -> Result<TracedProgram, BuildError> {
    let syms = RuntimeSyms::default();
    let mut instr_objs = Vec::with_capacity(objects.len() + 1);
    let mut all_records = Vec::with_capacity(objects.len());
    for o in objects {
        let io = instrument_object(o, mode, &syms)?;
        all_records.push(io.records);
        instr_objs.push(io.obj);
    }
    instr_objs.push(runtime_object(policy));

    let instr = link(&instr_objs, layout, entry)?;
    let orig = link(objects, layout, entry)?;

    let mut table = BbTable::new();
    for (i, records) in all_records.iter().enumerate() {
        let ibase = instr.placements[i].text_addr;
        let obase = orig.placements[i].text_addr;
        for r in records {
            table.insert(
                ibase + r.id_off,
                BbInfo {
                    orig_vaddr: obase + r.orig_off,
                    n_insts: r.n_insts,
                    ops: r.ops.clone(),
                    flags: r.flags,
                },
            );
        }
    }

    let expansion = Expansion {
        orig_bytes: orig.exe.text_size() as u64,
        new_bytes: instr.exe.text_size() as u64,
    };

    let mut entry_map = HashMap::new();
    for (name, &oaddr) in &orig.exe.globals {
        if oaddr >= orig.exe.text_base && oaddr < orig.exe.text_end() {
            if let Some(iaddr) = instr.exe.sym(name) {
                entry_map.insert(name.clone(), iaddr);
            }
        }
    }

    Ok(TracedProgram {
        instr,
        orig,
        table,
        expansion,
        entry_map,
    })
}
