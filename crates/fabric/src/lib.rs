//! `wrl-fabric`: a sharded scatter-gather trace fabric.
//!
//! One archive on one `wrl-serve` process is not millions of users.
//! This crate scales the query surface horizontally while keeping the
//! stack's load-bearing guarantee intact — a windowed query answered
//! by the fabric is bit-identical to decoding the whole archive
//! locally and filtering with [`wrl_store::filter_stream`]:
//!
//! * [`manifest`] — the deterministic shard planner and the
//!   CRC-sealed `W3KSHARD` manifest. A store splits into N shards by
//!   block range or ASID hash; each shard is itself a valid v3/v4
//!   archive (compressed bytes, CRCs, ASID summaries and zonemaps
//!   copied verbatim, word offsets re-tiled to shard-local
//!   coordinates), so any stock `wrl-serve` node can serve it. The
//!   manifest records every block's owner, global word offset and
//!   pruning proofs — everything the coordinator needs to scatter.
//! * [`coord`] — the coordinator: speaks `wrl-wire/v1` downstream to
//!   the shard nodes (reusing the [`wrl_serve::Client`] machinery)
//!   and presents a single merged catalog/fetch/query/metrics/shards
//!   surface upstream on the same protocol. Windowed queries scatter
//!   only to shards whose manifest zonemaps can match; sub-results
//!   merge in global stream order. Each shard may list replica
//!   endpoints: a mid-query shard loss transparently retries the
//!   failed sub-query on the next endpoint with no duplicated or
//!   dropped rows (a sub-query either returns a complete frame or a
//!   typed error — there is no partial answer to double-count).
//! * [`obs`] — the `fabric.*` metric family (see `docs/METRICS.md`).
//!
//! Shard-side failures stay typed end-to-end: a store CRC mismatch on
//! a shard surfaces upstream as the same `error` code with the shard
//! named in the message, never as a severed connection.

#![deny(missing_docs)]

pub mod coord;
pub mod manifest;
pub mod obs;

pub use coord::{Coordinator, FabricCfg};
pub use manifest::{
    plan_shards, split_store, Manifest, ManifestBlock, ManifestError, PlanKind, ScatterUnit,
    ShardEntry, MANIFEST_BLOCK_ENTRY_BYTES, MANIFEST_MAGIC, MANIFEST_VERSION, MAX_SHARDS,
};
pub use obs::FabricObs;
