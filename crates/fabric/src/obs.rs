//! Observability for the fabric coordinator: the `fabric.*` family.
//!
//! The fabric's measures of merit mirror the single node's pushdown
//! counters one level up: how many shards a query *didn't* touch
//! (`fabric.units.pruned_shards` stays meaningful only relative to
//! `fabric.subqueries`), and how often the failover path actually
//! ran. `fabric.unavailable` is the coordinator's loss tally — a
//! non-zero row means some query exhausted every endpoint of a shard
//! and answered with the typed `unavailable` error instead of data.
//! Rows in `docs/METRICS.md` are kept honest by `metrics_doc_sync`.

use std::sync::Arc;

use wrl_obs::{counter, global, Counter};

/// Live tallies for the fabric coordinator.
#[derive(Clone)]
pub struct FabricObs {
    /// Scatter-gather queries coordinated (one per upstream `query`).
    pub queries: Arc<Counter>,
    /// Sub-queries issued downstream (one per scatter unit attempt
    /// that reached a shard, including failover retries).
    pub subqueries: Arc<Counter>,
    /// Blocks the coordinator pruned from manifest proofs alone —
    /// never scattered anywhere.
    pub blocks_pruned: Arc<Counter>,
    /// Sub-requests retried on a replica endpoint after a transport
    /// failure on the one before it.
    pub failover: Arc<Counter>,
    /// Sub-requests that exhausted every endpoint of a shard and
    /// surfaced the typed `unavailable` error upstream.
    pub unavailable: Arc<Counter>,
    /// Typed shard-side errors forwarded upstream verbatim (code
    /// preserved, shard named in the message).
    pub remote_errors: Arc<Counter>,
}

impl FabricObs {
    /// Registers every `fabric.*` metric in the global registry
    /// (idempotent — re-registration returns the same handles).
    pub fn register() -> FabricObs {
        let r = global();
        FabricObs {
            queries: counter!(
                r,
                "fabric.queries",
                "requests",
                "§3.4",
                "Scatter-gather queries coordinated across shards."
            ),
            subqueries: counter!(
                r,
                "fabric.subqueries",
                "requests",
                "§3.4",
                "Sub-queries dispatched to shard nodes (retries included)."
            ),
            blocks_pruned: counter!(
                r,
                "fabric.blocks.pruned",
                "blocks",
                "§3.2",
                "Blocks pruned coordinator-side from manifest proofs alone."
            ),
            failover: counter!(
                r,
                "fabric.failover",
                "requests",
                "§4.3",
                "Sub-requests retried on a replica after a transport failure."
            ),
            unavailable: counter!(
                r,
                "fabric.unavailable",
                "requests",
                "§4.3",
                "Sub-requests that exhausted every endpoint of a shard."
            ),
            remote_errors: counter!(
                r,
                "fabric.errors.remote",
                "errors",
                "§4.3",
                "Typed shard errors forwarded upstream with the shard named."
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let a = FabricObs::register();
        let b = FabricObs::register();
        a.queries.inc();
        if wrl_obs::recording() {
            assert_eq!(a.queries.get(), b.queries.get(), "same underlying counter");
        }
    }
}
