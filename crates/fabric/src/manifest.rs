//! The shard planner and the `W3KSHARD` manifest.
//!
//! Splitting is deterministic: the same store, shard count and
//! [`PlanKind`] always produce the same assignment, the same shard
//! archives and the same manifest bytes. Each shard is a complete,
//! self-verifying `W3KTRACE` archive built by [`wrl_store::TraceStore::subset`]:
//! compressed block bytes, CRCs, ASID summaries and zonemaps are
//! copied verbatim from the source, while word offsets are re-tiled
//! to shard-local coordinates (the archive decoder demands tiling).
//! The manifest keeps the global picture: for every block, its owning
//! shard, its *global* word offset and the pruning proofs
//! (`first_asid`, summary flags, zonemap) — enough for a coordinator
//! to prune and scatter a query without touching any shard.
//!
//! Byte layout (all integers little-endian; see `docs/FORMATS.md`):
//!
//! ```text
//! "W3KSHARD" u32 version=1  u8 plan  u32 n_shards  u64 n_words
//! u32 n_blocks  u32 block_words  str16 archive
//! shard entry × n_shards:  str16 name  u32 n_blocks  u64 n_words  u64 asid_mask
//! block entry × n_blocks:  u32 shard  u32 words  u32 comp_len
//!                          u64 first_word  u64 asid_mask  u8 first_asid  u8 flags
//! u32 crc32 (over every preceding byte)
//! ```

use wrl_store::{BlockMeta, Predicate, StoreError, TraceStore};

/// Leading magic of a shard manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"W3KSHARD";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Fixed size of one per-block manifest entry.
pub const MANIFEST_BLOCK_ENTRY_BYTES: usize = 4 + 4 + 4 + 8 + 8 + 1 + 1;

/// How blocks are assigned to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanKind {
    /// Contiguous block ranges, balanced by block count: shard `i`
    /// owns global blocks `i·n/k .. (i+1)·n/k`. Windowed queries
    /// touch few shards.
    BlockRange,
    /// Placement by a mixed hash of each block's entry ASID context
    /// (`first_asid`), so one ASID's blocks cluster on one shard and
    /// per-ASID queries touch few shards.
    AsidHash,
}

impl PlanKind {
    /// The wire/manifest code of this plan kind.
    pub fn code(self) -> u8 {
        match self {
            PlanKind::BlockRange => 0,
            PlanKind::AsidHash => 1,
        }
    }

    /// Decodes a plan-kind code.
    pub fn from_code(c: u8) -> Option<PlanKind> {
        match c {
            0 => Some(PlanKind::BlockRange),
            1 => Some(PlanKind::AsidHash),
            _ => None,
        }
    }

    /// The name used in manifests summaries and `tracedump` flags.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::BlockRange => "block_range",
            PlanKind::AsidHash => "asid_hash",
        }
    }
}

/// Why a manifest failed to build, encode or decode.
#[derive(Debug)]
pub enum ManifestError {
    /// Structural damage: bad magic, truncation, non-tiling offsets,
    /// aggregates that disagree with the block entries.
    Malformed(&'static str),
    /// The manifest's version is not [`MANIFEST_VERSION`].
    UnsupportedVersion(u32),
    /// The trailing CRC does not match the bytes.
    CrcMismatch {
        /// CRC recorded in the manifest.
        want: u32,
        /// CRC computed over the bytes.
        got: u32,
    },
    /// The split request itself was invalid (zero shards, shard count
    /// over the format's limit).
    BadPlan(&'static str),
    /// Extracting a shard archive from the source store failed.
    Store(StoreError),
}

impl core::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ManifestError::Malformed(what) => write!(f, "malformed manifest: {what}"),
            ManifestError::UnsupportedVersion(v) => write!(f, "unsupported manifest version {v}"),
            ManifestError::CrcMismatch { want, got } => {
                write!(
                    f,
                    "manifest crc mismatch: recorded {want:#010x}, computed {got:#010x}"
                )
            }
            ManifestError::BadPlan(what) => write!(f, "bad shard plan: {what}"),
            ManifestError::Store(e) => write!(f, "shard extraction: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<StoreError> for ManifestError {
    fn from(e: StoreError) -> Self {
        ManifestError::Store(e)
    }
}

/// One shard's aggregate row in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// The catalog name the shard's archive is served under
    /// (`<archive>.s<ordinal>`).
    pub name: String,
    /// Blocks assigned to this shard.
    pub n_blocks: u32,
    /// Trace words across this shard's blocks.
    pub n_words: u64,
    /// OR of the shard's per-block zonemaps; `0` when the source
    /// store carries no zonemaps (pre-v4).
    pub asid_mask: u64,
}

/// One block's row in the manifest: owner plus the global offset and
/// the pruning proofs copied from the source index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManifestBlock {
    /// Owning shard ordinal.
    pub shard: u32,
    /// Decoded word count.
    pub words: u32,
    /// Compressed length in bytes (catalog aggregate; also sizes
    /// fetch frames coordinator-side).
    pub comp_len: u32,
    /// Global word offset of the block's first word.
    pub first_word: u64,
    /// Per-ASID zonemap (v4 sources; zero otherwise).
    pub asid_mask: u64,
    /// ASID context at the block's first word.
    pub first_asid: u8,
    /// Summary flags ([`BlockMeta::FLAG_SUMMARY`] and friends).
    pub flags: u8,
}

impl ManifestBlock {
    /// The half-open global word range this block covers.
    pub fn word_range(&self) -> core::ops::Range<u64> {
        self.first_word..self.first_word + u64::from(self.words)
    }

    /// Mirror of [`BlockMeta::single_asid`] over manifest rows.
    pub fn single_asid(&self) -> Option<u8> {
        (self.flags & BlockMeta::FLAG_SUMMARY != 0 && self.flags & BlockMeta::FLAG_CTX_SWITCH == 0)
            .then_some(self.first_asid)
    }
}

/// One sub-query of a scattered query: a maximal run of surviving
/// blocks owned by one shard, consecutive in surviving order. The
/// coordinator sends `pred` (window translated to shard-local word
/// coordinates) to the shard and concatenates unit answers in unit
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScatterUnit {
    /// Owning shard ordinal.
    pub shard: usize,
    /// The shard-local predicate: same ASID filter, window translated
    /// into the shard archive's word coordinates.
    pub pred: Predicate,
    /// First global block of the run (diagnostics).
    pub first_block: u32,
    /// Last global block of the run (diagnostics).
    pub last_block: u32,
    /// Surviving blocks in the run.
    pub blocks: u32,
}

/// A decoded (and validated) shard manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// How blocks were assigned to shards.
    pub plan: PlanKind,
    /// The source archive's catalog name — the name the coordinator
    /// serves the merged surface under.
    pub archive: String,
    /// Total trace words of the source store.
    pub n_words: u64,
    /// Block size the source store was built with.
    pub block_words: u32,
    /// Per-shard aggregates, in shard-ordinal order.
    pub shards: Vec<ShardEntry>,
    /// Per-block rows, in global block order.
    pub blocks: Vec<ManifestBlock>,
    /// Derived per block: (shard-local first word, shard-local block
    /// ordinal). Rebuilt by the constructors, never serialized.
    local: Vec<(u64, u32)>,
}

/// Maximum shard count the format admits.
pub const MAX_SHARDS: usize = 4096;

impl Manifest {
    /// Total blocks across all shards.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of shards in the plan.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Compressed bytes across all shards (the catalog aggregate).
    pub fn compressed_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.comp_len)).sum()
    }

    /// The shard-local word offset and block ordinal of global block
    /// `i`.
    ///
    /// # Panics
    /// When `i` is out of range.
    pub fn local_of(&self, i: usize) -> (u64, u32) {
        self.local[i]
    }

    /// Builds a manifest for `store` split under `assignment` (shard
    /// → ascending global block ids, as produced by [`plan_shards`]).
    pub fn from_store(
        store: &TraceStore,
        archive: &str,
        assignment: &[Vec<usize>],
        plan: PlanKind,
    ) -> Result<Manifest, ManifestError> {
        let n_blocks = store.n_blocks();
        let mut blocks = vec![None; n_blocks];
        let mut shards = Vec::with_capacity(assignment.len());
        if assignment.is_empty() {
            return Err(ManifestError::BadPlan("no shards"));
        }
        if assignment.len() > MAX_SHARDS {
            return Err(ManifestError::BadPlan("shard count over format limit"));
        }
        for (s, ids) in assignment.iter().enumerate() {
            let mut entry = ShardEntry {
                name: format!("{archive}.s{s}"),
                n_blocks: ids.len() as u32,
                n_words: 0,
                asid_mask: 0,
            };
            for &i in ids {
                if i >= n_blocks {
                    return Err(ManifestError::BadPlan("assignment id out of range"));
                }
                let m = store.block_meta(i);
                if blocks[i].is_some() {
                    return Err(ManifestError::BadPlan("block assigned twice"));
                }
                blocks[i] = Some(ManifestBlock {
                    shard: s as u32,
                    words: m.words,
                    comp_len: m.comp_len,
                    first_word: m.first_word,
                    asid_mask: m.asid_mask,
                    first_asid: m.first_asid,
                    flags: m.flags,
                });
                entry.n_words += u64::from(m.words);
                entry.asid_mask |= m.asid_mask;
            }
            shards.push(entry);
        }
        let blocks = blocks
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or(ManifestError::BadPlan("assignment misses a block"))?;
        let mut manifest = Manifest {
            plan,
            archive: archive.to_string(),
            n_words: store.n_words,
            block_words: store.block_words,
            shards,
            blocks,
            local: Vec::new(),
        };
        manifest.index_locals()?;
        Ok(manifest)
    }

    /// Recomputes the derived shard-local coordinates and validates
    /// every cross-field invariant. Used by both constructors, so a
    /// decoded manifest is exactly as trustworthy as a built one.
    fn index_locals(&mut self) -> Result<(), ManifestError> {
        let n_shards = self.shards.len();
        let mut words = vec![0u64; n_shards];
        let mut counts = vec![0u32; n_shards];
        let mut masks = vec![0u64; n_shards];
        let mut tiled = 0u64;
        self.local.clear();
        self.local.reserve(self.blocks.len());
        for b in &self.blocks {
            let s = b.shard as usize;
            if s >= n_shards {
                return Err(ManifestError::Malformed("block owned by unknown shard"));
            }
            if b.first_word != tiled {
                return Err(ManifestError::Malformed(
                    "block offsets do not tile the stream",
                ));
            }
            tiled += u64::from(b.words);
            self.local.push((words[s], counts[s]));
            words[s] += u64::from(b.words);
            counts[s] += 1;
            masks[s] |= b.asid_mask;
        }
        if tiled != self.n_words {
            return Err(ManifestError::Malformed("word total disagrees with blocks"));
        }
        if self.block_words == 0 {
            return Err(ManifestError::Malformed("zero block size"));
        }
        for (s, e) in self.shards.iter().enumerate() {
            if e.n_blocks != counts[s] || e.n_words != words[s] || e.asid_mask != masks[s] {
                return Err(ManifestError::Malformed(
                    "shard aggregates disagree with blocks",
                ));
            }
        }
        Ok(())
    }

    /// Serializes the manifest, CRC-sealed.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.shards.len() * 40 + self.blocks.len() * MANIFEST_BLOCK_ENTRY_BYTES,
        );
        out.extend_from_slice(MANIFEST_MAGIC);
        put_u32(&mut out, MANIFEST_VERSION);
        out.push(self.plan.code());
        put_u32(&mut out, self.shards.len() as u32);
        put_u64(&mut out, self.n_words);
        put_u32(&mut out, self.blocks.len() as u32);
        put_u32(&mut out, self.block_words);
        put_str16(&mut out, &self.archive);
        for e in &self.shards {
            put_str16(&mut out, &e.name);
            put_u32(&mut out, e.n_blocks);
            put_u64(&mut out, e.n_words);
            put_u64(&mut out, e.asid_mask);
        }
        for b in &self.blocks {
            put_u32(&mut out, b.shard);
            put_u32(&mut out, b.words);
            put_u32(&mut out, b.comp_len);
            put_u64(&mut out, b.first_word);
            put_u64(&mut out, b.asid_mask);
            out.push(b.first_asid);
            out.push(b.flags);
        }
        let crc = wrl_store::crc32_bytes(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Parses and validates a manifest. The CRC is checked before any
    /// field is believed; every structural invariant the builder
    /// enforces is re-checked here.
    pub fn decode(buf: &[u8]) -> Result<Manifest, ManifestError> {
        if buf.len() < MANIFEST_MAGIC.len() + 4 {
            return Err(ManifestError::Malformed("shorter than magic and version"));
        }
        if &buf[..8] != MANIFEST_MAGIC {
            return Err(ManifestError::Malformed("bad magic"));
        }
        let version = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        if version != MANIFEST_VERSION {
            return Err(ManifestError::UnsupportedVersion(version));
        }
        if buf.len() < 12 + 4 {
            return Err(ManifestError::Malformed("truncated before crc"));
        }
        let body = &buf[..buf.len() - 4];
        let want = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
        let got = wrl_store::crc32_bytes(body);
        if want != got {
            return Err(ManifestError::CrcMismatch { want, got });
        }
        let mut cur = Cursor { buf: body, pos: 12 };
        let plan =
            PlanKind::from_code(cur.u8()?).ok_or(ManifestError::Malformed("unknown plan kind"))?;
        let n_shards = cur.u32()? as usize;
        if n_shards == 0 || n_shards > MAX_SHARDS {
            return Err(ManifestError::Malformed("shard count out of range"));
        }
        let n_words = cur.u64()?;
        let n_blocks = cur.u32()? as usize;
        if n_blocks > body.len() / MANIFEST_BLOCK_ENTRY_BYTES {
            return Err(ManifestError::Malformed("block count exceeds buffer"));
        }
        let block_words = cur.u32()?;
        let archive = cur.str16()?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(ShardEntry {
                name: cur.str16()?,
                n_blocks: cur.u32()?,
                n_words: cur.u64()?,
                asid_mask: cur.u64()?,
            });
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            blocks.push(ManifestBlock {
                shard: cur.u32()?,
                words: cur.u32()?,
                comp_len: cur.u32()?,
                first_word: cur.u64()?,
                asid_mask: cur.u64()?,
                first_asid: cur.u8()?,
                flags: cur.u8()?,
            });
        }
        if cur.pos != body.len() {
            return Err(ManifestError::Malformed(
                "trailing bytes after block entries",
            ));
        }
        let mut manifest = Manifest {
            plan,
            archive,
            n_words,
            block_words,
            shards,
            blocks,
            local: Vec::new(),
        };
        manifest.index_locals()?;
        Ok(manifest)
    }

    /// The global block ids a predicate cannot be proven to miss —
    /// the exact mirror of [`TraceStore::matching_blocks`] over
    /// manifest rows, so the coordinator prunes precisely the blocks
    /// a single node would.
    pub fn surviving(&self, pred: &Predicate) -> Vec<usize> {
        let range = match pred.window {
            None => 0..self.blocks.len(),
            Some((lo, hi)) => {
                if lo >= hi {
                    return Vec::new();
                }
                let start = self.blocks.partition_point(|b| b.word_range().end <= lo);
                let end = self.blocks.partition_point(|b| b.first_word < hi);
                start..end
            }
        };
        range
            .filter(|&i| {
                let b = &self.blocks[i];
                if let Some(a) = pred.asid {
                    if b.single_asid().is_some_and(|only| only != a) {
                        return false;
                    }
                    if b.flags & BlockMeta::FLAG_COLUMNAR != 0
                        && b.asid_mask & (1u64 << (a & 63)) == 0
                    {
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// Splits a query into scatter units: maximal runs of surviving
    /// blocks owned by one shard, consecutive in surviving order,
    /// each with the window translated to that shard's local word
    /// coordinates. Concatenating unit answers in unit order yields
    /// exactly the single-node answer:
    ///
    /// * every block strictly inside a unit's global span is either
    ///   owned by another shard (outside this shard's local window)
    ///   or was pruned by an ASID proof the shard re-derives from
    ///   identical index metadata — so the shard decodes exactly the
    ///   unit's surviving blocks;
    /// * units are emitted in ascending global order and shards
    ///   preserve stream order, so the concatenation is the global
    ///   stream order.
    pub fn scatter(&self, pred: &Predicate) -> Vec<ScatterUnit> {
        let surv = self.surviving(pred);
        let (g_lo, g_hi) = pred.window.unwrap_or((0, self.n_words));
        let mut units = Vec::new();
        let mut k = 0usize;
        while k < surv.len() {
            let shard = self.blocks[surv[k]].shard;
            let mut j = k;
            while j + 1 < surv.len() && self.blocks[surv[j + 1]].shard == shard {
                j += 1;
            }
            let (b0, b1) = (surv[k], surv[j]);
            let first = &self.blocks[b0];
            let last = &self.blocks[b1];
            let lo = self.local[b0].0 + g_lo.max(first.first_word) - first.first_word;
            let hi = self.local[b1].0 + g_hi.min(last.word_range().end) - last.first_word;
            units.push(ScatterUnit {
                shard: shard as usize,
                pred: Predicate {
                    asid: pred.asid,
                    window: Some((lo, hi)),
                },
                first_block: b0 as u32,
                last_block: b1 as u32,
                blocks: (j - k + 1) as u32,
            });
            k = j + 1;
        }
        units
    }

    /// A human-readable summary (`tracedump info` prints this for
    /// `W3KSHARD` files).
    pub fn summary(&self) -> String {
        use core::fmt::Write as _;
        let mut s = format!(
            "shard manifest \"{}\": {} shards, plan {}, {} blocks / {} words / block size {}\n",
            self.archive,
            self.shards.len(),
            self.plan.name(),
            self.blocks.len(),
            self.n_words,
            self.block_words,
        );
        for (i, e) in self.shards.iter().enumerate() {
            let comp: u64 = self
                .blocks
                .iter()
                .filter(|b| b.shard as usize == i)
                .map(|b| u64::from(b.comp_len))
                .sum();
            let _ = writeln!(
                s,
                "  s{i} \"{}\": {} blocks, {} words, {} compressed bytes, zonemap {}",
                e.name,
                e.n_blocks,
                e.n_words,
                comp,
                if e.asid_mask == 0 {
                    "none".to_string()
                } else {
                    format!("{:#018x}", e.asid_mask)
                },
            );
        }
        s
    }
}

/// SplitMix64's finalizer — the deterministic ASID mixer behind
/// [`PlanKind::AsidHash`].
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically assigns every block of `store` to one of
/// `n_shards` shards. Returns ascending global block ids per shard.
/// Shards may come back empty (a hash plan with few ASIDs); the
/// coordinator simply never scatters to them.
pub fn plan_shards(
    store: &TraceStore,
    n_shards: usize,
    kind: PlanKind,
) -> Result<Vec<Vec<usize>>, ManifestError> {
    if n_shards == 0 {
        return Err(ManifestError::BadPlan("no shards"));
    }
    if n_shards > MAX_SHARDS {
        return Err(ManifestError::BadPlan("shard count over format limit"));
    }
    let n = store.n_blocks();
    let mut out = vec![Vec::new(); n_shards];
    for i in 0..n {
        let s = match kind {
            // `i < n` here (loop bound), so the division is safe.
            PlanKind::BlockRange => i * n_shards / n,
            PlanKind::AsidHash => {
                (mix64(u64::from(store.block_meta(i).first_asid)) % n_shards as u64) as usize
            }
        };
        out[s].push(i);
    }
    Ok(out)
}

/// Plans, extracts and describes in one step: splits `store` into
/// `n_shards` shard archives plus the manifest that binds them. The
/// returned stores parallel the manifest's shard entries.
pub fn split_store(
    store: &TraceStore,
    archive: &str,
    n_shards: usize,
    kind: PlanKind,
) -> Result<(Manifest, Vec<TraceStore>), ManifestError> {
    let assignment = plan_shards(store, n_shards, kind)?;
    let manifest = Manifest::from_store(store, archive, &assignment, kind)?;
    let mut stores = Vec::with_capacity(n_shards);
    for ids in &assignment {
        stores.push(store.subset(ids)?);
    }
    Ok((manifest, stores))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize);
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ManifestError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(ManifestError::Malformed("truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ManifestError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ManifestError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ManifestError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Result<String, ManifestError> {
        let n = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ManifestError::Malformed("string is not utf-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_store::{filter_stream, BlockFormat};
    use wrl_trace::bbinfo::{BbInfo, BbTraceFlags};
    use wrl_trace::{ctl, BbTable, CtlOp, TraceArchive};

    /// A multi-ASID archive: four user contexts round-robin every 50
    /// words, so blocks at small sizes are ASID-pure and zonemaps
    /// and hash placement have something to bite on.
    fn sample_archive(n_words: usize) -> TraceArchive {
        let mut kt = BbTable::new();
        kt.insert(
            0x8003_0100,
            BbInfo {
                orig_vaddr: 0x8003_0000,
                n_insts: 4,
                ops: vec![],
                flags: BbTraceFlags::default(),
            },
        );
        let mut words = Vec::with_capacity(n_words + n_words / 50 + 2);
        let mut asid = 0u8;
        while words.len() < n_words {
            words.push(ctl(CtlOp::CtxSwitch, asid));
            let run = 50.min(n_words - words.len());
            words.extend(std::iter::repeat_n(0x8003_0100, run));
            asid = (asid + 1) % 4;
        }
        TraceArchive {
            kernel_table: kt,
            user_tables: (0..4).map(|a| (a, BbTable::new())).collect(),
            words,
        }
    }

    fn stores() -> Vec<TraceStore> {
        let a = sample_archive(2000);
        vec![
            TraceStore::from_archive(&a, 64),
            TraceStore::from_archive_with(&a, 64, BlockFormat::Columnar),
        ]
    }

    fn predicate_panel(n_words: u64) -> Vec<Predicate> {
        let mid = n_words / 2;
        let mut panel = vec![
            Predicate::default(),
            Predicate {
                window: Some((0, 100)),
                ..Predicate::default()
            },
            Predicate {
                window: Some((mid, mid + 333)),
                ..Predicate::default()
            },
            Predicate {
                window: Some((mid, mid)),
                ..Predicate::default()
            },
            Predicate {
                asid: Some(0xee),
                ..Predicate::default()
            },
        ];
        for asid in 0..4u8 {
            panel.push(Predicate {
                asid: Some(asid),
                ..Predicate::default()
            });
            panel.push(Predicate {
                asid: Some(asid),
                window: Some((mid / 2, mid + mid / 2)),
            });
        }
        panel
    }

    #[test]
    fn planning_is_deterministic_and_total() {
        for store in stores() {
            for kind in [PlanKind::BlockRange, PlanKind::AsidHash] {
                let a = plan_shards(&store, 4, kind).unwrap();
                let b = plan_shards(&store, 4, kind).unwrap();
                assert_eq!(a, b);
                let mut all: Vec<usize> = a.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..store.n_blocks()).collect::<Vec<_>>());
                for ids in &a {
                    assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids ascend");
                }
            }
        }
        assert!(matches!(
            plan_shards(&stores()[0], 0, PlanKind::BlockRange),
            Err(ManifestError::BadPlan(_))
        ));
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        for store in stores() {
            for kind in [PlanKind::BlockRange, PlanKind::AsidHash] {
                let (m, shards) = split_store(&store, "golden", 3, kind).unwrap();
                assert_eq!(shards.len(), 3);
                assert_eq!(shards.iter().map(|s| s.n_words).sum::<u64>(), store.n_words);
                let bytes = m.encode();
                let back = Manifest::decode(&bytes).unwrap();
                assert_eq!(back, m);

                // One flipped bit anywhere is a CRC mismatch (or a
                // magic/version rejection for the leading bytes).
                for at in [3usize, 9, 20, bytes.len() / 2, bytes.len() - 1] {
                    let mut bad = bytes.clone();
                    bad[at] ^= 0x10;
                    assert!(
                        Manifest::decode(&bad).is_err(),
                        "flip at {at} must not decode"
                    );
                }
                let mut wrong_version = bytes.clone();
                wrong_version[8] = 9;
                // Version is checked before the CRC so readers can
                // say "too new" rather than "damaged"; re-seal.
                let body_len = wrong_version.len() - 4;
                let crc = wrl_store::crc32_bytes(&wrong_version[..body_len]);
                wrong_version[body_len..].copy_from_slice(&crc.to_le_bytes());
                assert!(matches!(
                    Manifest::decode(&wrong_version),
                    Err(ManifestError::UnsupportedVersion(9))
                ));
                assert!(matches!(
                    Manifest::decode(&bytes[..bytes.len() - 9]),
                    Err(ManifestError::CrcMismatch { .. })
                ));
            }
        }
    }

    #[test]
    fn scattered_queries_merge_bit_identical_to_single_node() {
        for store in stores() {
            let full = store.words().unwrap();
            for kind in [PlanKind::BlockRange, PlanKind::AsidHash] {
                for n_shards in [1usize, 2, 4] {
                    let (m, shards) = split_store(&store, "golden", n_shards, kind).unwrap();
                    for (i, pred) in predicate_panel(store.n_words).iter().enumerate() {
                        let single = store.query(pred).unwrap();
                        let mut merged = Vec::new();
                        let mut decoded = 0u32;
                        for u in m.scatter(pred) {
                            let q = shards[u.shard].query(&u.pred).unwrap();
                            assert_eq!(
                                q.blocks_decoded, u.blocks,
                                "{kind:?}/{n_shards} pred {i}: shard decodes the unit's blocks"
                            );
                            decoded += q.blocks_decoded;
                            merged.extend_from_slice(&q.words);
                        }
                        assert_eq!(
                            merged, single.words,
                            "{kind:?}/{n_shards} pred {i}: merged answer differs"
                        );
                        assert_eq!(merged, filter_stream(&full, pred));
                        assert_eq!(decoded, single.blocks_decoded);
                    }
                }
            }
        }
    }

    #[test]
    fn summary_names_every_shard() {
        let store = &stores()[1];
        let (m, _) = split_store(store, "golden", 2, PlanKind::AsidHash).unwrap();
        let s = m.summary();
        assert!(s.contains("plan asid_hash"));
        assert!(s.contains("golden.s0"));
        assert!(s.contains("golden.s1"));
    }
}
