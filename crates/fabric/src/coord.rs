//! The fabric coordinator: one `wrl-wire/v1` endpoint fronting many
//! shard nodes.
//!
//! Upstream it is indistinguishable from a single `wrl-serve` node
//! holding the whole archive: the same five opcodes, the same typed
//! errors, and bit-identical query answers. Downstream it is just
//! another [`wrl_serve::Client`] of each shard.
//!
//! A query is answered by scattering
//! [`ScatterUnit`](crate::manifest::ScatterUnit)s
//! ([`Manifest::scatter`](crate::manifest::Manifest::scatter)) to the
//! owning shards in global order and
//! concatenating the answers; blocks the manifest proofs rule out are
//! never sent anywhere. Failover is whole-unit: a sub-request either
//! returns a complete, CRC-framed response or a typed failure, so on
//! a transport failure the coordinator retries the *entire* unit on
//! the shard's next endpoint — no partial answer exists that could
//! duplicate or drop rows. Typed shard errors are different: the
//! shard is alive and has answered, so the error is forwarded
//! upstream with its code intact and the shard named in the message,
//! and no failover happens.
//!
//! Threading is deliberately simple — the coordinator is a fan-out
//! point for a handful of upstream analysis clients, not a
//! 256-connection edge (that is `wrl-serve`'s reactor job): one
//! blocking accept loop, one thread per upstream connection, each
//! owning its private downstream connection cache.

use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use wrl_serve::wire::{
    self, err, read_frame, CatalogEntry, FrameRead, Request, Response, ShardStatus, MAX_FRAME,
};
use wrl_serve::{Client, ClientCfg, ServeError};
use wrl_store::QueryResult;

use crate::manifest::Manifest;
use crate::obs::FabricObs;

/// Coordinator tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct FabricCfg {
    /// Upstream read-timeout tick (shutdown responsiveness).
    pub read_timeout: Duration,
    /// Upstream socket write timeout.
    pub write_timeout: Duration,
    /// Consecutive upstream idle ticks tolerated before the
    /// connection is severed as wedged.
    pub max_stalls: u32,
    /// Socket parameters for the downstream shard connections; the
    /// client stall budget bounds how long a dead shard can hold a
    /// sub-request before failover moves on.
    pub client: ClientCfg,
    /// `Busy` retries per sub-request before the overload is
    /// forwarded upstream.
    pub busy_retries: u32,
}

impl Default for FabricCfg {
    fn default() -> FabricCfg {
        FabricCfg {
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
            max_stalls: 200,
            client: ClientCfg::default(),
            busy_retries: 8,
        }
    }
}

/// Most endpoints (primary + replicas) one shard may list — the
/// `shards` response reports endpoint liveness as a `u16` bitmap.
pub const MAX_ENDPOINTS: usize = 16;

struct Inner {
    manifest: Manifest,
    endpoints: Vec<Vec<SocketAddr>>,
    cfg: FabricCfg,
    obs: FabricObs,
    /// Per shard: bit `e` set = endpoint `e`'s last contact failed.
    /// Purely advisory (the `shards` report); failover always walks
    /// endpoints in listed order so a recovered primary is retaken.
    down: Vec<AtomicU64>,
    shutdown: AtomicBool,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running fabric coordinator.
pub struct Coordinator {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `addr` and serves the fabric described by `manifest`.
    /// `endpoints[s]` lists shard `s`'s nodes in failover order
    /// (primary first); every shard owning blocks needs at least one.
    pub fn start(
        addr: impl ToSocketAddrs,
        manifest: Manifest,
        endpoints: Vec<Vec<SocketAddr>>,
        cfg: FabricCfg,
    ) -> io::Result<Coordinator> {
        if endpoints.len() != manifest.n_shards() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "one endpoint list per manifest shard required",
            ));
        }
        for (s, eps) in endpoints.iter().enumerate() {
            if eps.is_empty() && manifest.shards[s].n_blocks > 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "a shard owning blocks has no endpoints",
                ));
            }
            if eps.len() > MAX_ENDPOINTS {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "too many endpoints for one shard",
                ));
            }
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            down: (0..manifest.n_shards())
                .map(|_| AtomicU64::new(0))
                .collect(),
            manifest,
            endpoints,
            cfg,
            obs: FabricObs::register(),
            shutdown: AtomicBool::new(false),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("fabric-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))?;
        Ok(Coordinator {
            addr: local,
            inner,
            accept: Some(accept),
        })
    }

    /// The bound upstream address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the upstream handler threads and
    /// returns once everything has joined.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handlers = {
            let mut g = self.inner.handlers.lock().expect("handler list poisoned");
            std::mem::take(&mut *g)
        };
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_inner = Arc::clone(&inner);
                let spawned = std::thread::Builder::new()
                    .name("fabric-conn".into())
                    .spawn(move || serve_conn(stream, conn_inner));
                if let Ok(h) = spawned {
                    inner
                        .handlers
                        .lock()
                        .expect("handler list poisoned")
                        .push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// One upstream connection: read frames, dispatch, write responses.
fn serve_conn(mut stream: TcpStream, inner: Arc<Inner>) {
    if stream
        .set_read_timeout(Some(inner.cfg.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(inner.cfg.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut conns = Conns::new(&inner);
    let mut idles = 0u32;
    loop {
        let body = match read_frame(&mut stream, inner.cfg.max_stalls) {
            Ok(FrameRead::Frame(b)) => b,
            Ok(FrameRead::Idle) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                idles += 1;
                if idles > inner.cfg.max_stalls {
                    return;
                }
                continue;
            }
            Ok(FrameRead::Eof) | Err(_) => return,
        };
        idles = 0;
        let (rid, resp) = match wire::decode_request(&body) {
            Ok((rid, req)) => (rid, dispatch(&inner, &mut conns, &req)),
            // Length framing keeps the stream in sync, so a damaged
            // body earns a typed wire error rather than a severed
            // connection; the request id is unrecoverable.
            Err(e) => (
                0,
                Response::Error {
                    code: err::WIRE,
                    msg: e.to_string(),
                },
            ),
        };
        if stream
            .write_all(&wire::encode_response(rid, &resp))
            .is_err()
        {
            return;
        }
    }
}

/// Each upstream connection's private downstream connection cache,
/// lazily populated, dropped on transport failure so failover always
/// reconnects from scratch.
struct Conns {
    by_shard: Vec<Vec<Option<Client>>>,
}

impl Conns {
    fn new(inner: &Inner) -> Conns {
        Conns {
            by_shard: inner
                .endpoints
                .iter()
                .map(|eps| eps.iter().map(|_| None).collect())
                .collect(),
        }
    }
}

/// Runs `f` against shard `shard`, walking its endpoints in listed
/// order until one produces an answer. Transport failures (connect
/// refusal, severed or timed-out sockets, damaged response frames)
/// advance to the next endpoint; typed answers — including typed
/// errors — end the walk.
fn with_shard<T>(
    inner: &Inner,
    conns: &mut Conns,
    shard: usize,
    mut f: impl FnMut(&mut Client) -> Result<T, ServeError>,
) -> Result<T, Response> {
    let name = &inner.manifest.shards[shard].name;
    let mut last: Option<ServeError> = None;
    for e in 0..inner.endpoints[shard].len() {
        if last.is_some() {
            inner.obs.failover.inc();
        }
        let slot = &mut conns.by_shard[shard][e];
        if slot.is_none() {
            match Client::connect_cfg(inner.endpoints[shard][e], inner.cfg.client) {
                Ok(c) => *slot = Some(c),
                Err(ioe) => {
                    inner.down[shard].fetch_or(1 << e, Ordering::Relaxed);
                    last = Some(ServeError::Io(ioe));
                    continue;
                }
            }
        }
        let client = slot.as_mut().expect("slot populated above");
        match f(client) {
            Ok(v) => {
                inner.down[shard].fetch_and(!(1 << e), Ordering::Relaxed);
                return Ok(v);
            }
            Err(ServeError::Remote { code, msg }) => {
                // The shard is alive and answered with a typed error:
                // forward it, code intact, shard named. Failing over
                // would just re-derive the same store-level failure.
                inner.obs.remote_errors.inc();
                return Err(Response::Error {
                    code,
                    msg: format!("shard {name}: {msg}"),
                });
            }
            Err(ServeError::Busy) => return Err(Response::Busy),
            Err(transport) => {
                // Io, TimedOut, Wire, BadReply: the connection can no
                // longer be trusted mid-protocol. Drop it and retry
                // the whole sub-request on the next endpoint.
                *slot = None;
                inner.down[shard].fetch_or(1 << e, Ordering::Relaxed);
                last = Some(transport);
            }
        }
    }
    inner.obs.unavailable.inc();
    let detail = match last {
        Some(e) => format!(" (last: {e})"),
        None => String::new(),
    };
    Err(Response::Error {
        code: err::UNAVAILABLE,
        msg: format!("shard {name}: no endpoint answered{detail}"),
    })
}

fn bad_request(msg: &str) -> Response {
    Response::Error {
        code: err::BAD_REQUEST,
        msg: msg.to_string(),
    }
}

fn dispatch(inner: &Inner, conns: &mut Conns, req: &Request) -> Response {
    let m = &inner.manifest;
    match req {
        Request::Catalog => Response::Catalog(vec![CatalogEntry {
            name: m.archive.clone(),
            n_words: m.n_words,
            n_blocks: m.n_blocks() as u32,
            block_words: m.block_words,
            compressed_bytes: m.compressed_bytes(),
        }]),
        Request::Metrics => Response::Metrics(wrl_obs::global().snapshot().to_json(&[
            ("service", "wrl-fabric"),
            ("schema_wire", wire::WIRE_SCHEMA),
        ])),
        Request::Shards => Response::Shards(
            m.shards
                .iter()
                .enumerate()
                .map(|(s, e)| {
                    let n = inner.endpoints[s].len() as u16;
                    let down = inner.down[s].load(Ordering::Relaxed) as u16;
                    ShardStatus {
                        name: e.name.clone(),
                        endpoints: n,
                        alive: !down & (((1u32 << n) - 1) as u16),
                        n_blocks: e.n_blocks,
                        n_words: e.n_words,
                        asid_mask: e.asid_mask,
                    }
                })
                .collect(),
        ),
        Request::Query { archive, pred } => {
            if *archive != m.archive {
                return Response::Error {
                    code: err::NO_SUCH_ARCHIVE,
                    msg: format!("no archive named {archive:?} in the catalog"),
                };
            }
            inner.obs.queries.inc();
            let units = m.scatter(pred);
            let surviving: u64 = units.iter().map(|u| u64::from(u.blocks)).sum();
            inner.obs.blocks_pruned.add(m.n_blocks() as u64 - surviving);
            let mut words = Vec::new();
            let mut decoded = 0u32;
            for u in &units {
                let name = m.shards[u.shard].name.clone();
                let q = with_shard(inner, conns, u.shard, |c| {
                    inner.obs.subqueries.inc();
                    c.query_retry(&name, &u.pred, inner.cfg.busy_retries)
                });
                match q {
                    Ok(q) => {
                        decoded += q.blocks_decoded;
                        words.extend_from_slice(&q.words);
                    }
                    Err(resp) => return resp,
                }
            }
            if words.len() * 4 + 64 > MAX_FRAME {
                return bad_request("query result exceeds the frame cap; narrow the window");
            }
            Response::Query(QueryResult {
                blocks_decoded: decoded,
                blocks_skipped: m.n_blocks() as u32 - decoded,
                words,
            })
        }
        Request::Fetch {
            archive,
            first_block,
            n_blocks,
        } => {
            if *archive != m.archive {
                return Response::Error {
                    code: err::NO_SUCH_ARCHIVE,
                    msg: format!("no archive named {archive:?} in the catalog"),
                };
            }
            let first = *first_block as usize;
            let Some(end) = first.checked_add(*n_blocks as usize) else {
                return bad_request("block range overflows");
            };
            if end > m.n_blocks() {
                return bad_request("block range out of bounds");
            }
            let mut total = 0usize;
            for b in &m.blocks[first..end] {
                total += 31 + b.comp_len as usize;
                if total > MAX_FRAME - 64 {
                    return bad_request("block range exceeds the frame cap; fetch fewer blocks");
                }
            }
            let mut out = Vec::with_capacity(end - first);
            let mut at = first;
            while at < end {
                let shard = m.blocks[at].shard;
                let mut run = at + 1;
                while run < end && m.blocks[run].shard == shard {
                    run += 1;
                }
                // Consecutive global blocks on one shard are
                // consecutive shard-locally (subsets preserve order),
                // so the run is one downstream fetch.
                let shard = shard as usize;
                let name = m.shards[shard].name.clone();
                let local_first = m.local_of(at).1;
                let count = (run - at) as u32;
                let blocks =
                    with_shard(inner, conns, shard, |c| c.fetch(&name, local_first, count));
                match blocks {
                    Ok(blocks) => {
                        if blocks.len() != run - at {
                            return Response::Error {
                                code: err::UNAVAILABLE,
                                msg: format!("shard {name}: short fetch answer"),
                            };
                        }
                        for (k, mut rb) in blocks.into_iter().enumerate() {
                            // Re-tile to global coordinates: upstream
                            // must see exactly what a single node
                            // holding the whole archive would serve.
                            rb.first_word = m.blocks[at + k].first_word;
                            out.push(rb);
                        }
                    }
                    Err(resp) => return resp,
                }
                at = run;
            }
            Response::Fetch(out)
        }
        // The coordinator fronts finished, sharded archives; live
        // tails are a single-node service (subscribe to the node
        // running the machine instead).
        Request::Subscribe { .. } | Request::Unsubscribe => {
            bad_request("a fabric coordinator serves no live feeds")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{split_store, PlanKind};
    use std::sync::Arc;
    use wrl_serve::{Catalog, ServeCfg, Server};
    use wrl_store::{BlockFormat, Predicate, TraceStore};
    use wrl_trace::bbinfo::{BbInfo, BbTraceFlags};
    use wrl_trace::{ctl, BbTable, CtlOp, TraceArchive};

    fn sample_archive(n_words: usize) -> TraceArchive {
        let mut kt = BbTable::new();
        kt.insert(
            0x8003_0100,
            BbInfo {
                orig_vaddr: 0x8003_0000,
                n_insts: 4,
                ops: vec![],
                flags: BbTraceFlags::default(),
            },
        );
        let mut words = Vec::with_capacity(n_words + n_words / 50 + 2);
        let mut asid = 0u8;
        while words.len() < n_words {
            words.push(ctl(CtlOp::CtxSwitch, asid));
            let run = 50.min(n_words - words.len());
            words.extend(std::iter::repeat_n(0x8003_0100, run));
            asid = (asid + 1) % 4;
        }
        TraceArchive {
            kernel_table: kt,
            user_tables: (0..4).map(|a| (a, BbTable::new())).collect(),
            words,
        }
    }

    fn fast_cfg() -> FabricCfg {
        FabricCfg {
            client: ClientCfg {
                read_timeout: Duration::from_millis(5),
                write_timeout: Duration::from_secs(2),
                max_stalls: 100,
            },
            ..FabricCfg::default()
        }
    }

    #[test]
    fn coordinator_answers_like_a_single_node() {
        let a = sample_archive(1500);
        let store = TraceStore::from_archive_with(&a, 64, BlockFormat::Columnar);
        let (manifest, shard_stores) =
            split_store(&store, "golden", 2, PlanKind::BlockRange).unwrap();

        let mut servers = Vec::new();
        let mut endpoints = Vec::new();
        for (s, shard) in shard_stores.into_iter().enumerate() {
            let mut catalog = Catalog::new();
            catalog.add(manifest.shards[s].name.clone(), Arc::new(shard));
            let server =
                Server::start("127.0.0.1:0", catalog, ServeCfg::default()).expect("shard starts");
            endpoints.push(vec![server.addr()]);
            servers.push(server);
        }
        let coord = Coordinator::start("127.0.0.1:0", manifest, endpoints, fast_cfg())
            .expect("coordinator starts");
        let mut client = Client::connect(coord.addr()).expect("client connects");

        let rows = client.catalog().expect("catalog answers");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "golden");
        assert_eq!(rows[0].n_words, store.n_words);
        assert_eq!(rows[0].compressed_bytes, store.compressed_bytes());

        let shard_rows = client.shards().expect("shards answers");
        assert_eq!(shard_rows.len(), 2);
        assert!(shard_rows.iter().all(|r| r.alive == 1 && r.endpoints == 1));

        let mid = store.n_words / 2;
        for pred in [
            Predicate::default(),
            Predicate {
                asid: Some(2),
                window: Some((mid / 2, mid)),
            },
        ] {
            let single = store.query(&pred).unwrap();
            let q = client.query("golden", &pred).expect("query answers");
            assert_eq!(q.words, single.words, "merged answer differs");
            assert_eq!(q.blocks_decoded, single.blocks_decoded);
            assert_eq!(q.blocks_skipped, single.blocks_skipped);
        }

        // Fetch crosses the shard boundary; answers carry global
        // word offsets and verify client-side.
        let n = store.n_blocks() as u32;
        let blocks = client.fetch("golden", 0, n).expect("fetch answers");
        assert_eq!(blocks.len(), n as usize);
        let mut words = Vec::new();
        for (i, rb) in blocks.iter().enumerate() {
            assert_eq!(rb.first_word, store.block_meta(i).first_word);
            words.extend(rb.decode().expect("block verifies"));
        }
        assert_eq!(words, a.words);

        assert!(matches!(
            client.query("missing", &Predicate::default()),
            Err(ServeError::Remote { code, .. }) if code == err::NO_SUCH_ARCHIVE
        ));

        coord.shutdown();
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn dead_only_endpoint_is_a_typed_unavailable() {
        let a = sample_archive(400);
        let store = TraceStore::from_archive(&a, 64);
        let (manifest, _) = split_store(&store, "golden", 2, PlanKind::BlockRange).unwrap();
        // Bind-then-drop yields addresses nothing listens on.
        let dead = |_: usize| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let endpoints = vec![vec![dead(0)], vec![dead(1)]];
        let coord = Coordinator::start("127.0.0.1:0", manifest, endpoints, fast_cfg())
            .expect("coordinator starts");
        let mut client = Client::connect(coord.addr()).expect("client connects");
        match client.query("golden", &Predicate::default()) {
            Err(ServeError::Remote { code, msg }) => {
                assert_eq!(code, err::UNAVAILABLE);
                assert!(msg.contains("shard"), "shard named in: {msg}");
            }
            other => panic!("expected typed unavailable, got {other:?}"),
        }
        coord.shutdown();
    }
}
