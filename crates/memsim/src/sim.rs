//! The trace-driven memory-system simulator.
//!
//! Consumes the parsed reference stream and models the DECstation
//! 5000/200 memory system: physically-indexed I/D caches, the write
//! buffer, and a 64-entry random-replacement TLB whose misses are
//! *synthesized* into UTLB-handler activity (§4.1: "Rather than
//! tracing the UTLB miss handler, we simulate the TLB, and use misses
//! in the simulator to synthesize the activity of the UTLB miss
//! handler").
//!
//! Deliberately reproduced model deficiencies (§5.1): no CPU pipeline,
//! no overlap of floating-point latency with write-buffer or cache
//! stalls (arithmetic stalls are a separate pixie-style estimate), no
//! exception entry/exit cycles, and no knowledge of explicit kernel
//! TLB writes (`tlbdropin`/`tlb_map_random`) — the stated sources of
//! Table 2/3 prediction error.

use wrl_isa::Width;
use wrl_machine::cache::{Cache, CacheCfg, WriteBuffer};
use wrl_machine::tlb::{Tlb, TlbEntry, TlbLookup};
use wrl_trace::parser::{Space, TraceSink};

use crate::pagemap::PageMap;

/// Identifies an address space for page mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpaceKey {
    /// The kernel (kseg2 mapped pages).
    Kernel,
    /// A user space.
    User(u8),
}

impl SpaceKey {
    /// A small integer for deterministic policy offsets.
    pub fn index(self) -> u32 {
        match self {
            SpaceKey::Kernel => 0,
            SpaceKey::User(a) => 1 + a as u32,
        }
    }
}

/// UTLB-miss synthesis parameters.
#[derive(Clone, Copy, Debug)]
pub struct UtlbSynth {
    /// Address of the refill handler (the UTLB vector).
    pub handler_vaddr: u32,
    /// Handler length in instructions (nine on our kernels).
    pub n_insts: u32,
    /// Base of the faulting space's linear page table. Below kseg2
    /// this is a direct (kseg0) address; at or above kseg2 the
    /// per-ASID table for ASID `a` sits at `base + (a-1) * stride`.
    pub pagetable_base: u32,
    /// Per-ASID stride of the kseg2 page tables.
    pub pagetable_stride: u32,
}

impl Default for UtlbSynth {
    fn default() -> Self {
        UtlbSynth {
            handler_vaddr: 0x8000_0000,
            n_insts: 9,
            pagetable_base: 0x8060_0000,
            pagetable_stride: 0,
        }
    }
}

impl UtlbSynth {
    /// The synthesis parameters matching the wrl-kernel systems:
    /// per-ASID page tables in kseg2 with a 2 MB stride.
    pub fn wrl_kernel() -> UtlbSynth {
        UtlbSynth {
            handler_vaddr: 0x8000_0000,
            n_insts: 9,
            pagetable_base: 0xc000_0000,
            pagetable_stride: 0x0020_0000,
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimCfg {
    /// I-cache geometry.
    pub icache: CacheCfg,
    /// D-cache geometry.
    pub dcache: CacheCfg,
    /// Write-buffer depth.
    pub wb_entries: usize,
    /// Write-buffer drain time.
    pub wb_drain_cycles: u64,
    /// I-miss penalty.
    pub imiss_penalty: u64,
    /// D-miss penalty.
    pub dmiss_penalty: u64,
    /// Uncached-reference penalty.
    pub uncached_penalty: u64,
    /// Synthesize UTLB-handler activity on TLB misses.
    pub utlb: Option<UtlbSynth>,
}

impl Default for SimCfg {
    fn default() -> Self {
        SimCfg {
            icache: CacheCfg::dec5000_icache(),
            dcache: CacheCfg::dec5000_dcache(),
            wb_entries: 4,
            wb_drain_cycles: 5,
            imiss_penalty: 15,
            dmiss_penalty: 15,
            uncached_penalty: 20,
            utlb: Some(UtlbSynth::default()),
        }
    }
}

/// Aggregate simulation results.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Instruction references, user.
    pub user_irefs: u64,
    /// Instruction references, kernel.
    pub kernel_irefs: u64,
    /// Data references, user.
    pub user_drefs: u64,
    /// Data references, kernel.
    pub kernel_drefs: u64,
    /// I-cache misses (user/kernel).
    pub imisses: u64,
    /// I-cache misses attributed to kernel references.
    pub imisses_kernel: u64,
    /// D-cache read misses.
    pub dmisses: u64,
    /// D-cache read misses attributed to kernel references.
    pub dmisses_kernel: u64,
    /// Uncached references.
    pub uncached: u64,
    /// Write-buffer stall cycles.
    pub wb_stall_cycles: u64,
    /// Predicted user-TLB misses (Table 3's "predicted" column).
    pub utlb_misses: u64,
    /// Synthesized handler instruction references.
    pub synth_irefs: u64,
    /// Idle-loop instructions seen in the trace.
    pub idle_insts: u64,
    /// Stores seen.
    pub stores: u64,
    /// Sanity-check violations (§4.3): kernel instruction reference
    /// with a non-kernel address, and vice versa.
    pub sanity_violations: u64,
    /// Cycles attributed to kernel references (incl. synthesized
    /// refill activity) — the numerator of §3.4's kernel CPI.
    pub kernel_cycles: u64,
    /// Cycles attributed to user references.
    pub user_cycles: u64,
}

impl SimStats {
    /// Total instructions.
    pub fn insts(&self) -> u64 {
        self.user_irefs + self.kernel_irefs
    }

    /// Kernel cycles per instruction (the §3.4 Tunix measurement:
    /// "kernel cycles per instruction (CPI) were three times user
    /// CPI").
    pub fn kernel_cpi(&self) -> f64 {
        if self.kernel_irefs == 0 {
            0.0
        } else {
            self.kernel_cycles as f64 / self.kernel_irefs as f64
        }
    }

    /// User cycles per instruction.
    pub fn user_cpi(&self) -> f64 {
        if self.user_irefs == 0 {
            0.0
        } else {
            self.user_cycles as f64 / self.user_irefs as f64
        }
    }

    /// Field-wise accumulation of another run's counters. Every field
    /// is an exact integer count, so merging partial results from a
    /// split workload reproduces the whole-run statistics bit for bit.
    /// Note `wb_stall_cycles` is cumulative within one simulator but a
    /// plain count across simulators, so addition is still exact.
    pub fn merge(&mut self, other: &SimStats) {
        self.user_irefs += other.user_irefs;
        self.kernel_irefs += other.kernel_irefs;
        self.user_drefs += other.user_drefs;
        self.kernel_drefs += other.kernel_drefs;
        self.imisses += other.imisses;
        self.imisses_kernel += other.imisses_kernel;
        self.dmisses += other.dmisses;
        self.dmisses_kernel += other.dmisses_kernel;
        self.uncached += other.uncached;
        self.wb_stall_cycles += other.wb_stall_cycles;
        self.utlb_misses += other.utlb_misses;
        self.synth_irefs += other.synth_irefs;
        self.idle_insts += other.idle_insts;
        self.stores += other.stores;
        self.sanity_violations += other.sanity_violations;
        self.kernel_cycles += other.kernel_cycles;
        self.user_cycles += other.user_cycles;
    }
}

/// The trace-driven simulator. Feed it through [`TraceSink`].
pub struct MemSim {
    cfg: SimCfg,
    icache: Cache,
    dcache: Cache,
    wb: WriteBuffer,
    tlb: Tlb,
    /// The page map (policy or extracted).
    pub pagemap: PageMap,
    /// Results.
    pub stats: SimStats,
    cur_asid: u8,
    /// Cycles spent in synthesized refill activity during the current
    /// reference (so they are charged to the kernel, not the
    /// reference's own space).
    synth_delta: u64,
    /// Simulated time: one cycle per instruction plus stalls (the
    /// no-pipeline model of §5.1).
    pub cycles: u64,
}

impl MemSim {
    /// Creates a simulator with the given configuration and page map.
    pub fn new(cfg: SimCfg, pagemap: PageMap) -> MemSim {
        let mut tlb = Tlb::new();
        tlb.flush();
        MemSim {
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            wb: WriteBuffer::new(cfg.wb_entries, cfg.wb_drain_cycles),
            tlb,
            cfg,
            pagemap,
            stats: SimStats::default(),
            cur_asid: 0,
            synth_delta: 0,
            cycles: 0,
        }
    }

    /// Translates a vaddr for the current context, simulating the TLB
    /// for mapped segments and synthesizing refill activity on misses.
    fn translate(&mut self, vaddr: u32, space: Space) -> (u32, bool) {
        match vaddr {
            0x8000_0000..=0x9fff_ffff => (vaddr - 0x8000_0000, true),
            0xa000_0000..=0xbfff_ffff => (vaddr - 0xa000_0000, false),
            _ => {
                let key = if vaddr >= 0xc000_0000 {
                    SpaceKey::Kernel
                } else {
                    match space {
                        Space::User(a) => SpaceKey::User(a),
                        // Kernel touching user memory uses the current
                        // process's map.
                        Space::Kernel => SpaceKey::User(self.cur_asid),
                    }
                };
                let asid = match key {
                    SpaceKey::Kernel => 63,
                    SpaceKey::User(a) => a,
                };
                match self.tlb.lookup(vaddr, asid) {
                    TlbLookup::Hit { pfn, .. } => ((pfn << 12) | (vaddr & 0xfff), true),
                    _ => {
                        // TLB refill: the simulator attributes every
                        // fill to a miss (it cannot see tlbdropin).
                        if vaddr < 0x8000_0000 {
                            self.stats.utlb_misses += 1;
                        }
                        let pfn = self.pagemap.frame(key, vaddr >> 12);
                        self.tlb.write_random(TlbEntry {
                            vpn: vaddr >> 12,
                            asid,
                            pfn,
                            valid: true,
                            dirty: true,
                            global: false,
                            noncacheable: false,
                        });
                        if vaddr < 0x8000_0000 {
                            let synth_asid = match key {
                                SpaceKey::User(a) => a,
                                SpaceKey::Kernel => 63,
                            };
                            self.synthesize_utlb(vaddr, synth_asid);
                        }
                        ((pfn << 12) | (vaddr & 0xfff), true)
                    }
                }
            }
        }
    }

    /// Injects the UTLB handler's references (§4.1).
    fn synthesize_utlb(&mut self, faulting_vaddr: u32, asid: u8) {
        let Some(synth) = self.cfg.utlb else {
            return;
        };
        let t0 = self.cycles;
        for i in 0..synth.n_insts {
            let va = synth.handler_vaddr + i * 4;
            let pa = va - 0x8000_0000;
            self.cycles += 1;
            self.tlb.tick();
            self.stats.synth_irefs += 1;
            self.stats.kernel_irefs += 1;
            if !self.icache.access(pa) {
                self.stats.imisses += 1;
                self.stats.imisses_kernel += 1;
                self.cycles += self.cfg.imiss_penalty;
            }
        }
        // The handler's one load: the PTE for the faulting page. For
        // kseg2 tables this goes back through the TLB simulation and
        // can itself take a KTLB-style refill.
        let table = if synth.pagetable_base >= 0xc000_0000 && asid != 63 {
            synth.pagetable_base + (asid as u32 - 1) * synth.pagetable_stride
        } else {
            synth.pagetable_base
        };
        let pte_va = table + (faulting_vaddr >> 12) * 4;
        self.stats.kernel_drefs += 1;
        let (pte_pa, cached) = self.translate(pte_va, Space::Kernel);
        if cached && !self.dcache.access(pte_pa) {
            self.stats.dmisses += 1;
            self.stats.dmisses_kernel += 1;
            self.cycles += self.cfg.dmiss_penalty;
        }
        self.stats.kernel_cycles += self.cycles - t0;
        self.synth_delta += self.cycles - t0;
    }
}

impl TraceSink for MemSim {
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) {
        let t0 = self.cycles;
        self.synth_delta = 0;
        // §4.3 sanity check: kernel instruction addresses must be in
        // the kernel instruction address space.
        let is_kaddr = vaddr >= 0x8000_0000;
        if matches!(space, Space::Kernel) != is_kaddr {
            self.stats.sanity_violations += 1;
        }
        self.cycles += 1;
        self.tlb.tick();
        if idle {
            self.stats.idle_insts += 1;
        }
        match space {
            Space::Kernel => self.stats.kernel_irefs += 1,
            Space::User(_) => self.stats.user_irefs += 1,
        }
        let (paddr, cached) = self.translate(vaddr, space);
        if cached {
            if !self.icache.access(paddr) {
                self.stats.imisses += 1;
                if matches!(space, Space::Kernel) {
                    self.stats.imisses_kernel += 1;
                }
                self.cycles += self.cfg.imiss_penalty;
            }
        } else {
            self.stats.uncached += 1;
            self.cycles += self.cfg.uncached_penalty;
        }
        let own = self.cycles - t0 - self.synth_delta;
        match space {
            Space::Kernel => self.stats.kernel_cycles += own,
            Space::User(_) => self.stats.user_cycles += own,
        }
    }

    fn dref(&mut self, vaddr: u32, store: bool, _width: Width, space: Space) {
        let t0 = self.cycles;
        self.synth_delta = 0;
        match space {
            Space::Kernel => self.stats.kernel_drefs += 1,
            Space::User(_) => self.stats.user_drefs += 1,
        }
        let (paddr, cached) = self.translate(vaddr, space);
        if store {
            self.stats.stores += 1;
            if cached {
                self.dcache.write_update(paddr);
                self.cycles = self.wb.push(self.cycles);
                self.stats.wb_stall_cycles = self.wb.stall_cycles;
            } else {
                self.stats.uncached += 1;
                self.cycles += self.cfg.uncached_penalty;
            }
        } else if cached {
            if !self.dcache.access(paddr) {
                self.stats.dmisses += 1;
                if matches!(space, Space::Kernel) {
                    self.stats.dmisses_kernel += 1;
                }
                self.cycles += self.cfg.dmiss_penalty;
            }
        } else {
            self.stats.uncached += 1;
            self.cycles += self.cfg.uncached_penalty;
        }
        let own = self.cycles - t0 - self.synth_delta;
        match space {
            Space::Kernel => self.stats.kernel_cycles += own,
            Space::User(_) => self.stats.user_cycles += own,
        }
    }

    fn ctx_switch(&mut self, asid: u8) {
        self.cur_asid = asid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagemap::Policy;

    fn sim() -> MemSim {
        MemSim::new(
            SimCfg::default(),
            PageMap::new(Policy::FirstFree { base_pfn: 0x100 }),
        )
    }

    #[test]
    fn kseg0_needs_no_tlb() {
        let mut s = sim();
        s.iref(0x8003_0000, Space::Kernel, false);
        assert_eq!(s.stats.utlb_misses, 0);
        assert_eq!(s.stats.kernel_irefs, 1);
        assert_eq!(s.stats.imisses, 1);
    }

    #[test]
    fn user_ref_synthesizes_utlb_handler() {
        let mut s = sim();
        s.iref(0x0040_0000, Space::User(1), false);
        // One UTLB miss, nine synthesized handler irefs + our iref.
        assert_eq!(s.stats.utlb_misses, 1);
        assert_eq!(s.stats.synth_irefs, 9);
        assert_eq!(s.stats.kernel_irefs, 9);
        assert_eq!(s.stats.user_irefs, 1);
        assert_eq!(s.stats.kernel_drefs, 1); // the PTE load
                                             // Second touch of the same page: no miss.
        s.iref(0x0040_0004, Space::User(1), false);
        assert_eq!(s.stats.utlb_misses, 1);
    }

    #[test]
    fn utlb_synthesis_can_be_disabled() {
        let mut s = MemSim::new(
            SimCfg {
                utlb: None,
                ..SimCfg::default()
            },
            PageMap::new(Policy::Identity),
        );
        s.iref(0x0040_0000, Space::User(1), false);
        assert_eq!(s.stats.utlb_misses, 1);
        assert_eq!(s.stats.synth_irefs, 0);
    }

    #[test]
    fn writes_go_through_write_buffer() {
        let mut s = sim();
        for i in 0..100 {
            s.dref(0x0100_0000 + i * 4, true, Width::Word, Space::User(0));
        }
        assert!(s.stats.wb_stall_cycles > 0);
        assert_eq!(s.stats.stores, 100);
    }

    #[test]
    fn uncached_kseg1_counts() {
        let mut s = sim();
        s.dref(0xbc00_0000, false, Width::Word, Space::Kernel);
        assert_eq!(s.stats.uncached, 1);
    }

    #[test]
    fn sanity_check_flags_wrong_space() {
        let mut s = sim();
        s.iref(0x0040_0000, Space::Kernel, false);
        assert_eq!(s.stats.sanity_violations, 1);
    }

    #[test]
    fn page_colouring_affects_cache_conflicts() {
        // Two virtual pages that map to conflicting frames under one
        // policy but not another change the miss count.
        let mut ident = MemSim::new(
            SimCfg {
                utlb: None,
                ..SimCfg::default()
            },
            PageMap::new(Policy::Identity),
        );
        // 64 KB cache = 16 colours; vpn 0 and vpn 16 share a colour
        // under identity mapping.
        for _ in 0..100 {
            ident.dref(0x0000_0100, false, Width::Word, Space::User(0));
            ident.dref(0x0001_0100, false, Width::Word, Space::User(0));
        }
        assert!(ident.stats.dmisses >= 200, "conflicting colours thrash");
        let mut seq = MemSim::new(
            SimCfg {
                utlb: None,
                ..SimCfg::default()
            },
            PageMap::new(Policy::FirstFree { base_pfn: 0 }),
        );
        for _ in 0..100 {
            seq.dref(0x0000_0100, false, Width::Word, Space::User(0));
            seq.dref(0x0001_0100, false, Width::Word, Space::User(0));
        }
        assert!(seq.stats.dmisses <= 4, "adjacent frames do not conflict");
    }
}
