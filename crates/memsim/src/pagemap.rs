//! Virtual-to-physical page mapping policies.
//!
//! "The virtual to physical page map is determined by policy
//! implemented in the operating system, and can have significant
//! impact on memory system behavior" (§4.2): with 64 KB
//! physically-indexed caches and 4 KB pages there are sixteen page
//! colours, and the mapping decides which pages collide. The
//! trace-driven simulator either implements the policy itself or uses
//! a page map extracted from the running system.

use std::collections::HashMap;

use crate::sim::SpaceKey;

/// Page size in bytes.
pub const PAGE_SIZE: u32 = 4096;

/// A page-mapping policy.
#[derive(Clone, Debug)]
pub enum Policy {
    /// Identity: pfn = vpn (bare-machine runs).
    Identity,
    /// First-free sequential allocation per address space, starting at
    /// `base_pfn` (deterministic — the Ultrix-like policy).
    FirstFree {
        /// First frame handed out.
        base_pfn: u32,
    },
    /// Uniform-random frame selection (the Mach 3.0 policy whose
    /// run-time variance §5.1 documents).
    Random {
        /// RNG seed; different seeds model different runs.
        seed: u64,
        /// Frames are drawn from `[base_pfn, base_pfn + frames)`.
        base_pfn: u32,
        /// Pool size in frames.
        frames: u32,
    },
}

/// A lazily-populated page map under some [`Policy`].
#[derive(Clone, Debug)]
pub struct PageMap {
    policy: Policy,
    map: HashMap<(SpaceKey, u32), u32>,
    next_free: HashMap<SpaceKey, u32>,
    rng_state: u64,
    used: std::collections::HashSet<u32>,
}

impl PageMap {
    /// Creates an empty map under `policy`.
    pub fn new(policy: Policy) -> PageMap {
        let rng_state = match &policy {
            Policy::Random { seed, .. } => *seed | 1,
            _ => 1,
        };
        PageMap {
            policy,
            map: HashMap::new(),
            next_free: HashMap::new(),
            rng_state,
            used: std::collections::HashSet::new(),
        }
    }

    /// Creates a map pre-populated from an extracted system page map
    /// (§4.2: "the traced Ultrix and Mach 3.0 kernels also provide the
    /// option of extracting the page-map from the running system").
    pub fn extracted(entries: impl IntoIterator<Item = ((SpaceKey, u32), u32)>) -> PageMap {
        let mut pm = PageMap::new(Policy::Identity);
        for (k, v) in entries {
            pm.map.insert(k, v);
        }
        pm
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Translates `(space, vpn)` to a frame, allocating on first use.
    pub fn frame(&mut self, space: SpaceKey, vpn: u32) -> u32 {
        if let Some(&pfn) = self.map.get(&(space, vpn)) {
            return pfn;
        }
        let pfn = match self.policy {
            Policy::Identity => vpn,
            Policy::FirstFree { base_pfn } => {
                let next = self.next_free.entry(space).or_insert(0);
                let pfn = base_pfn + *next + (space.index() << 8);
                *next += 1;
                pfn
            }
            Policy::Random {
                base_pfn, frames, ..
            } => {
                // Draw until an unused frame is found (the pool is
                // always much larger than the footprint).
                let mut pfn;
                loop {
                    pfn = base_pfn + (self.xorshift() % frames as u64) as u32;
                    if self.used.insert(pfn) {
                        break;
                    }
                }
                pfn
            }
        };
        self.map.insert((space, vpn), pfn);
        pfn
    }

    /// Translates a full virtual address.
    pub fn translate(&mut self, space: SpaceKey, vaddr: u32) -> u32 {
        let pfn = self.frame(space, vaddr >> 12);
        (pfn << 12) | (vaddr & 0xfff)
    }

    /// Inserts an explicit mapping (extracted-map construction).
    pub fn insert(&mut self, key: (SpaceKey, u32), pfn: u32) {
        self.map.insert(key, pfn);
    }

    /// Duplicates every mapping of `from` under `to` (threads share
    /// their parent's address space but trace under their own token).
    pub fn duplicate_space(&mut self, from: SpaceKey, to: SpaceKey) {
        let dup: Vec<(u32, u32)> = self
            .map
            .iter()
            .filter(|((s, _), _)| *s == from)
            .map(|((_, vpn), &pfn)| (*vpn, pfn))
            .collect();
        for (vpn, pfn) in dup {
            self.map.entry((to, vpn)).or_insert(pfn);
        }
    }

    /// Iterates over all mappings.
    pub fn entries(&self) -> impl Iterator<Item = (&(SpaceKey, u32), &u32)> {
        self.map.iter()
    }

    /// Pages allocated so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_policy() {
        let mut pm = PageMap::new(Policy::Identity);
        assert_eq!(pm.translate(SpaceKey::Kernel, 0x0123_4567), 0x0123_4567);
    }

    #[test]
    fn first_free_is_deterministic_and_stable() {
        let mut pm = PageMap::new(Policy::FirstFree { base_pfn: 0x100 });
        let a1 = pm.frame(SpaceKey::User(1), 0x400);
        let a2 = pm.frame(SpaceKey::User(1), 0x401);
        assert_eq!(a2, a1 + 1);
        // Same vpn again: same frame.
        assert_eq!(pm.frame(SpaceKey::User(1), 0x400), a1);
        // Different space gets a different frame.
        assert_ne!(pm.frame(SpaceKey::User(2), 0x400), a1);
    }

    #[test]
    fn random_policy_varies_with_seed_but_not_within_a_run() {
        let mut a = PageMap::new(Policy::Random {
            seed: 7,
            base_pfn: 0,
            frames: 4096,
        });
        let mut b = PageMap::new(Policy::Random {
            seed: 8,
            base_pfn: 0,
            frames: 4096,
        });
        let fa: Vec<u32> = (0..32).map(|v| a.frame(SpaceKey::User(0), v)).collect();
        let fb: Vec<u32> = (0..32).map(|v| b.frame(SpaceKey::User(0), v)).collect();
        assert_ne!(fa, fb);
        // Stability within a run.
        assert_eq!(a.frame(SpaceKey::User(0), 5), fa[5]);
        // No frame handed out twice.
        let set: std::collections::HashSet<_> = fa.iter().collect();
        assert_eq!(set.len(), fa.len());
    }

    #[test]
    fn extracted_map_passes_through() {
        let mut pm = PageMap::extracted([((SpaceKey::User(3), 0x400), 0x77)]);
        assert_eq!(pm.translate(SpaceKey::User(3), 0x0040_0123), 0x0007_7123);
    }
}
