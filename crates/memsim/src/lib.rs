//! The trace-driven memory-system simulator — the paper's "analysis
//! program".
//!
//! Consumes parsed address traces and models caches, write buffer and
//! TLB ([`sim`]), applies a virtual-to-physical page-mapping policy
//! ([`pagemap`]) and produces the four-component execution-time
//! predictions of §5.1 ([`mod@predict`]). The simulator intentionally
//! shares the paper's model deficiencies (no pipeline, no FP/memory
//! overlap, no exception entry cycles, no knowledge of explicit TLB
//! writes) so that the validation errors of Tables 2 and 3 arise from
//! the same mechanisms.

pub mod assoc;
pub mod obs;
pub mod pagemap;
pub mod predict;
pub mod sim;

pub use assoc::AssocCache;
pub use obs::SimObs;
pub use pagemap::{PageMap, Policy, PAGE_SIZE};
pub use predict::{percent_error, predict, Prediction, TimeModel};
pub use sim::{MemSim, SimCfg, SimStats, SpaceKey, UtlbSynth};
