//! Observability for the simulator: end-of-run exports of
//! [`SimStats`] as `sim.*` gauges.
//!
//! The simulator's hot path counts in plain struct fields; this module
//! copies the finished statistics into the `wrl-obs` registry once per
//! run, so the cache/TLB model pays nothing per reference for metrics.

use std::sync::Arc;

use wrl_obs::{gauge, global, Gauge};

use crate::sim::SimStats;

/// Gauges mirroring [`SimStats`], set once per run by
/// [`SimStats::export_obs`].
pub struct SimObs {
    user_irefs: Arc<Gauge>,
    kernel_irefs: Arc<Gauge>,
    user_drefs: Arc<Gauge>,
    kernel_drefs: Arc<Gauge>,
    imisses: Arc<Gauge>,
    dmisses: Arc<Gauge>,
    uncached: Arc<Gauge>,
    wb_stall_cycles: Arc<Gauge>,
    utlb_misses: Arc<Gauge>,
    synth_irefs: Arc<Gauge>,
    idle_insts: Arc<Gauge>,
    stores: Arc<Gauge>,
    sanity_violations: Arc<Gauge>,
    kernel_cycles: Arc<Gauge>,
    user_cycles: Arc<Gauge>,
}

impl SimObs {
    /// Registers the simulator-statistics gauges in the global
    /// registry.
    pub fn register() -> SimObs {
        let r = global();
        SimObs {
            user_irefs: gauge!(
                r,
                "sim.irefs.user",
                "refs",
                "§5.1",
                "Simulated instruction references, user mode."
            ),
            kernel_irefs: gauge!(
                r,
                "sim.irefs.kernel",
                "refs",
                "§5.1",
                "Simulated instruction references, kernel mode."
            ),
            user_drefs: gauge!(
                r,
                "sim.drefs.user",
                "refs",
                "§5.1",
                "Simulated data references, user mode."
            ),
            kernel_drefs: gauge!(
                r,
                "sim.drefs.kernel",
                "refs",
                "§5.1",
                "Simulated data references, kernel mode."
            ),
            imisses: gauge!(
                r,
                "sim.cache.imisses",
                "misses",
                "§5.1",
                "Simulated instruction-cache misses."
            ),
            dmisses: gauge!(
                r,
                "sim.cache.dmisses",
                "misses",
                "§5.1",
                "Simulated data-cache read misses."
            ),
            uncached: gauge!(
                r,
                "sim.uncached",
                "refs",
                "§5.1",
                "Simulated uncached references."
            ),
            wb_stall_cycles: gauge!(
                r,
                "sim.wb.stall_cycles",
                "cycles",
                "§5.1",
                "Simulated write-buffer stall cycles."
            ),
            utlb_misses: gauge!(
                r,
                "sim.tlb.utlb_misses",
                "misses",
                "§5.2",
                "Predicted user-TLB misses (Table 3's predicted column)."
            ),
            synth_irefs: gauge!(
                r,
                "sim.synth.irefs",
                "refs",
                "§5.2",
                "Synthesized TLB-refill handler references."
            ),
            idle_insts: gauge!(
                r,
                "sim.idle.insts",
                "insts",
                "§4.2",
                "Idle-loop instructions seen in the trace."
            ),
            stores: gauge!(r, "sim.stores", "refs", "§5.1", "Stores seen in the trace."),
            sanity_violations: gauge!(
                r,
                "sim.sanity_violations",
                "errors",
                "§4.3",
                "Address/space sanity-check violations (healthy runs: 0)."
            ),
            kernel_cycles: gauge!(
                r,
                "sim.cycles.kernel",
                "cycles",
                "§3.4",
                "Simulated cycles attributed to kernel references."
            ),
            user_cycles: gauge!(
                r,
                "sim.cycles.user",
                "cycles",
                "§3.4",
                "Simulated cycles attributed to user references."
            ),
        }
    }

    /// Sets every gauge from one run's statistics.
    pub fn export(&self, s: &SimStats) {
        self.user_irefs.set(s.user_irefs as i64);
        self.kernel_irefs.set(s.kernel_irefs as i64);
        self.user_drefs.set(s.user_drefs as i64);
        self.kernel_drefs.set(s.kernel_drefs as i64);
        self.imisses.set(s.imisses as i64);
        self.dmisses.set(s.dmisses as i64);
        self.uncached.set(s.uncached as i64);
        self.wb_stall_cycles.set(s.wb_stall_cycles as i64);
        self.utlb_misses.set(s.utlb_misses as i64);
        self.synth_irefs.set(s.synth_irefs as i64);
        self.idle_insts.set(s.idle_insts as i64);
        self.stores.set(s.stores as i64);
        self.sanity_violations.set(s.sanity_violations as i64);
        self.kernel_cycles.set(s.kernel_cycles as i64);
        self.user_cycles.set(s.user_cycles as i64);
    }
}

impl SimStats {
    /// Registers (idempotently) and sets the `sim.*` gauges from this
    /// run's statistics.
    pub fn export_obs(&self) {
        SimObs::register().export(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_sets_gauges() {
        let s = SimStats {
            user_irefs: 44,
            kernel_irefs: 31_917,
            ..SimStats::default()
        };
        s.export_obs();
        let snap = wrl_obs::global().snapshot();
        let m = snap
            .metrics
            .iter()
            .find(|m| m.desc.name == "sim.irefs.kernel")
            .expect("registered");
        if wrl_obs::recording() {
            match m.value {
                wrl_obs::ValueSnap::Gauge { value, .. } => assert_eq!(value, 31_917),
                _ => panic!("gauge expected"),
            }
        }
    }
}
