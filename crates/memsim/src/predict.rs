//! The §5.1 execution-time predictor.
//!
//! "The predicted times … include contributions from four different
//! sources: CPU cycles, memory system stalls, arithmetic stalls, I/O
//! stalls. Each instruction executed contributes one CPU cycle to the
//! total execution time. Memory system stall cycles are calculated by
//! multiplying counts of penalty events … by the number of stall
//! cycles per event. Pixie was used to estimate arithmetic stalls …
//! The estimate of I/O stalls is derived from a count of idle-loop
//! instruction references made from the memory reference trace",
//! scaled by the time-dilation factor (fifteen in the paper).

use crate::sim::{SimCfg, SimStats};

/// Parameters of the time model.
#[derive(Clone, Copy, Debug)]
pub struct TimeModel {
    /// Cycle time in nanoseconds (40 ns on the 25 MHz DECstation).
    pub cycle_ns: f64,
    /// Idle-loop scaling factor compensating time dilation (§4.1).
    /// The paper used its overall measured slowdown (15) for this;
    /// our instrumentation slows the memory-op-free idle loop less
    /// than average code, so we use the idle loop's own measured
    /// slowdown (7.5). The §5.1 caveat stands either way: "estimates
    /// of idle time are one of the dominant sources of error".
    pub dilation: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        TimeModel {
            cycle_ns: 40.0,
            dilation: 7.5,
        }
    }
}

/// A predicted execution time, decomposed by source.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Prediction {
    /// One cycle per (non-idle) instruction in the trace.
    pub cpu_cycles: f64,
    /// Cache-miss, uncached and write-buffer stall cycles.
    pub mem_stall_cycles: f64,
    /// Arithmetic (FP and HI/LO interlock) stalls — supplied from a
    /// pixie-style static estimate, *not* overlapped with memory
    /// stalls (the §5.1 model deficiency).
    pub arith_stall_cycles: f64,
    /// Idle-loop instructions scaled by the dilation factor.
    pub io_stall_cycles: f64,
}

impl Prediction {
    /// Total predicted cycles.
    pub fn total_cycles(&self) -> f64 {
        self.cpu_cycles + self.mem_stall_cycles + self.arith_stall_cycles + self.io_stall_cycles
    }

    /// Total predicted time in seconds under the model's cycle time.
    pub fn seconds(&self, model: &TimeModel) -> f64 {
        self.total_cycles() * model.cycle_ns * 1e-9
    }
}

/// Builds a prediction from simulator statistics.
///
/// `arith_stalls` is the pixie-estimated arithmetic stall count for
/// the workload; `stats` comes from a [`crate::sim::MemSim`] fed with
/// the parsed trace.
pub fn predict(stats: &SimStats, cfg: &SimCfg, arith_stalls: u64, model: &TimeModel) -> Prediction {
    let insts = stats.insts() as f64;
    let idle = stats.idle_insts as f64;
    let mem = (stats.imisses * cfg.imiss_penalty
        + stats.dmisses * cfg.dmiss_penalty
        + stats.uncached * cfg.uncached_penalty) as f64
        + stats.wb_stall_cycles as f64;
    Prediction {
        cpu_cycles: insts - idle,
        mem_stall_cycles: mem,
        arith_stall_cycles: arith_stalls as f64,
        io_stall_cycles: idle * model.dilation,
    }
}

/// Percent error of a prediction against a measurement (Figure 3).
pub fn percent_error(predicted: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        0.0
    } else {
        (predicted - measured).abs() / measured * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum() {
        let stats = SimStats {
            user_irefs: 800,
            kernel_irefs: 200,
            imisses: 10,
            dmisses: 5,
            uncached: 2,
            wb_stall_cycles: 30,
            idle_insts: 100,
            ..SimStats::default()
        };
        let cfg = SimCfg::default();
        let p = predict(&stats, &cfg, 50, &TimeModel::default());
        assert_eq!(p.cpu_cycles, 900.0);
        assert_eq!(p.mem_stall_cycles, (10 * 15 + 5 * 15 + 2 * 20 + 30) as f64);
        assert_eq!(p.arith_stall_cycles, 50.0);
        assert_eq!(p.io_stall_cycles, 750.0);
        assert!(p.total_cycles() > 1800.0);
    }

    #[test]
    fn percent_error_is_symmetric_in_magnitude() {
        assert!((percent_error(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!((percent_error(90.0, 100.0) - 10.0).abs() < 1e-9);
        assert_eq!(percent_error(1.0, 0.0), 0.0);
    }

    #[test]
    fn seconds_scale_with_cycle_time() {
        let p = Prediction {
            cpu_cycles: 25_000_000.0,
            ..Prediction::default()
        };
        let m = TimeModel::default();
        assert!((p.seconds(&m) - 1.0).abs() < 1e-9);
    }
}
