//! Set-associative cache model for design-space studies.
//!
//! The tracing system's purpose was "accurate simulations of the
//! large memory systems that are required by state-of-the-art
//! processors" (§3.1); the traces fed follow-on studies of cache and
//! page-placement design ([7, 9, 18]). The machine itself is
//! direct-mapped like the DECstation, but trace-driven exploration
//! wants associativity — this LRU model provides it.

/// A set-associative, LRU, tag-only cache.
#[derive(Clone, Debug)]
pub struct AssocCache {
    sets: Vec<Vec<u32>>, // per set: tags in LRU order (front = MRU)
    ways: usize,
    line_shift: u32,
    set_mask: u32,
    /// Accesses observed.
    pub accesses: u64,
    /// Misses observed.
    pub misses: u64,
}

impl AssocCache {
    /// Creates a cache of `size` bytes, `line`-byte lines and `ways`
    /// ways (all powers of two; `ways == 1` is direct-mapped,
    /// `ways == size/line` fully associative).
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two geometry or impossible way counts.
    pub fn new(size: u32, line: u32, ways: usize) -> AssocCache {
        assert!(size.is_power_of_two() && line.is_power_of_two());
        let lines = (size / line) as usize;
        assert!(ways.is_power_of_two() && ways >= 1 && ways <= lines);
        let nsets = lines / ways;
        AssocCache {
            sets: vec![Vec::with_capacity(ways); nsets],
            ways,
            line_shift: line.trailing_zeros(),
            set_mask: (nsets as u32) - 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// Accesses `paddr`; returns true on hit. Misses allocate with
    /// LRU replacement.
    pub fn access(&mut self, paddr: u32) -> bool {
        self.accesses += 1;
        let lineno = paddr >> self.line_shift;
        let set = &mut self.sets[(lineno & self.set_mask) as usize];
        let tag = lineno >> self.set_mask.trailing_ones();
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            self.misses += 1;
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, tag);
            false
        }
    }

    /// Miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_matches_conflict_pattern() {
        let mut c = AssocCache::new(1024, 16, 1);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(!c.access(1024)); // conflicts in a direct-mapped cache
        assert!(!c.access(0));
    }

    #[test]
    fn two_way_resolves_the_same_conflict() {
        let mut c = AssocCache::new(1024, 16, 2);
        assert!(!c.access(0));
        assert!(!c.access(1024));
        assert!(c.access(0)); // both fit in a 2-way set
        assert!(c.access(1024));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = AssocCache::new(64, 16, 2); // 2 sets, 2 ways
                                                // Set 0 lines: 0, 32, 64, ...
        c.access(0);
        c.access(32);
        c.access(0); // 0 is now MRU
        assert!(!c.access(64)); // evicts 32
        assert!(c.access(0));
        assert!(!c.access(32));
    }

    #[test]
    fn fully_associative_has_no_conflicts_within_capacity() {
        let mut c = AssocCache::new(256, 16, 16);
        for i in 0..16 {
            assert!(!c.access(i * 16));
        }
        for i in 0..16 {
            assert!(c.access(i * 16), "line {i} evicted within capacity");
        }
    }

    #[test]
    fn miss_ratio_accounting() {
        let mut c = AssocCache::new(256, 16, 2);
        for _ in 0..3 {
            c.access(0);
        }
        assert_eq!(c.accesses, 3);
        assert_eq!(c.misses, 1);
        assert!((c.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }
}
