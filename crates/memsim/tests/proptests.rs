//! Property-based tests of the analysis side: page-map invariants and
//! simulator conservation laws.

use proptest::prelude::*;
use wrl_isa::Width;
use wrl_memsim::pagemap::{PageMap, Policy};
use wrl_memsim::sim::{MemSim, SimCfg, SpaceKey};
use wrl_trace::parser::{Space, TraceSink};

proptest! {
    /// The random policy never hands the same frame to two pages, and
    /// every frame stays inside the configured pool.
    #[test]
    fn random_policy_is_injective(vpns in proptest::collection::hash_set(0u32..0x2000, 1..300),
                                  seed in any::<u64>()) {
        let mut pm = PageMap::new(Policy::Random { seed, base_pfn: 0x2000, frames: 4096 });
        let mut frames = std::collections::HashSet::new();
        for vpn in &vpns {
            let f = pm.frame(SpaceKey::User(1), *vpn);
            prop_assert!((0x2000..0x2000 + 4096).contains(&f));
            prop_assert!(frames.insert(f), "frame {f:#x} reused");
        }
        // Stability: a second pass returns identical frames.
        for vpn in &vpns {
            let f = pm.frame(SpaceKey::User(1), *vpn);
            prop_assert!(frames.contains(&f));
        }
    }

    /// Distinct address spaces never share frames under either
    /// allocating policy.
    #[test]
    fn spaces_are_disjoint(vpns in proptest::collection::vec(0u32..0x1000, 1..100),
                           random in any::<bool>()) {
        let policy = if random {
            Policy::Random { seed: 11, base_pfn: 0, frames: 8192 }
        } else {
            Policy::FirstFree { base_pfn: 0 }
        };
        let mut pm = PageMap::new(policy);
        let a: std::collections::HashSet<u32> =
            vpns.iter().map(|&v| pm.frame(SpaceKey::User(1), v)).collect();
        let b: std::collections::HashSet<u32> =
            vpns.iter().map(|&v| pm.frame(SpaceKey::User(2), v)).collect();
        prop_assert!(a.is_disjoint(&b));
    }

    /// Simulator conservation: reference counts in equal the stats
    /// out, and cycles never decrease.
    #[test]
    fn memsim_conserves_references(refs in proptest::collection::vec(
        (0u32..0x0200_0000, any::<bool>(), any::<bool>()), 1..500))
    {
        let mut sim = MemSim::new(
            SimCfg { utlb: None, ..SimCfg::default() },
            PageMap::new(Policy::FirstFree { base_pfn: 0x100 }),
        );
        let mut want_i = 0u64;
        let mut want_d = 0u64;
        let mut last_cycles = 0;
        for (va, is_iref, store) in refs {
            if is_iref {
                sim.iref(va, Space::User(1), false);
                want_i += 1;
            } else {
                sim.dref(va, store, Width::Word, Space::User(1));
                want_d += 1;
            }
            prop_assert!(sim.cycles >= last_cycles);
            last_cycles = sim.cycles;
        }
        prop_assert_eq!(sim.stats.user_irefs, want_i);
        prop_assert_eq!(sim.stats.user_drefs, want_d);
        // Each iref costs at least one cycle.
        prop_assert!(sim.cycles >= want_i);
        // Cycle attribution partitions (no synthesis in this config).
        prop_assert!(sim.stats.user_cycles <= sim.cycles);
    }

    /// With UTLB synthesis on, every synthesized burst is nine
    /// instruction references (our handler length), and misses only
    /// ever grow with footprint.
    #[test]
    fn utlb_synthesis_ratio(pages in proptest::collection::vec(0u32..512, 1..300)) {
        let mut sim = MemSim::new(
            SimCfg::default(),
            PageMap::new(Policy::FirstFree { base_pfn: 0x100 }),
        );
        for p in &pages {
            sim.dref(0x0100_0000 + p * 4096, false, Width::Word, Space::User(1));
        }
        prop_assert_eq!(sim.stats.synth_irefs, 9 * sim.stats.utlb_misses);
        let distinct = pages.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        prop_assert!(sim.stats.utlb_misses >= distinct.min(1));
        prop_assert!(sim.stats.utlb_misses <= pages.len() as u64);
    }
}

proptest! {
    /// The set-associative LRU cache agrees with a naive
    /// recently-used-list oracle on hit/miss for every access.
    #[test]
    fn assoc_cache_matches_lru_oracle(
        addrs in proptest::collection::vec(0u32..(1 << 14), 1..500),
        geom in 0usize..4,
    ) {
        let (size, line, ways) = [(1024u32, 16u32, 1usize), (1024, 16, 2), (2048, 32, 4), (512, 16, 8)][geom];
        let mut c = wrl_memsim::AssocCache::new(size, line, ways);
        // Oracle: per set, a Vec of tags in MRU-first order.
        let nsets = (size / line) as usize / ways;
        let mut oracle: Vec<Vec<u32>> = vec![Vec::new(); nsets];
        for &a in &addrs {
            let lineno = a / line;
            let set = (lineno as usize) % nsets;
            let tag = lineno / nsets as u32;
            let want_hit = oracle[set].contains(&tag);
            if want_hit {
                let pos = oracle[set].iter().position(|&t| t == tag).unwrap();
                oracle[set].remove(pos);
            } else if oracle[set].len() == ways {
                oracle[set].pop();
            }
            oracle[set].insert(0, tag);
            prop_assert_eq!(c.access(a), want_hit, "addr {:#x}", a);
        }
        prop_assert_eq!(c.accesses, addrs.len() as u64);
    }

    /// Increasing associativity at fixed size never increases the
    /// miss count for these workload-like streams (LRU inclusion
    /// holds per set only in the fully-associative limit, but for
    /// sequential+reuse streams the design curve must be monotone).
    #[test]
    fn fully_associative_is_best_for_small_working_sets(
        base in 0u32..64,
        n in 1usize..200,
    ) {
        // A working set that fits the cache: loop over it twice.
        let addrs: Vec<u32> = (0..n as u32).map(|k| (base + k) * 16 % 1024).collect();
        let mut direct = wrl_memsim::AssocCache::new(1024, 16, 1);
        let mut full = wrl_memsim::AssocCache::new(1024, 16, 64);
        for pass in 0..2 {
            for &a in &addrs {
                direct.access(a);
                full.access(a);
                let _ = pass;
            }
        }
        // The fully-associative cache holds the whole set: second
        // pass is all hits, so its misses equal distinct lines.
        let distinct = {
            let mut v: Vec<u32> = addrs.iter().map(|a| a / 16).collect();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        prop_assert_eq!(full.misses, distinct);
        prop_assert!(full.misses <= direct.misses);
    }
}
