//! Property-based tests of the block codec and container: compression
//! is lossless on arbitrary word sequences — including page-zero
//! control words, ASID switches and adversarial values the trace path
//! would reject — and decode is total on arbitrary bytes.

use proptest::collection::vec;
use proptest::prelude::*;
use wrl_store::{
    compress_block, crc32_words, decompress_block, filter_stream, BlockFormat, Predicate,
    TraceStore, STORE_VERSION_V4,
};
use wrl_trace::{ctl, CtlOp, TraceArchive};

/// Block sizes exercised everywhere: degenerate (1 word/block), prime
/// and misaligned (7), and the production default (4096).
const BLOCK_SIZES: [usize; 3] = [1, 7, 4096];

/// Trace-shaped words: mostly addresses with recurring structure,
/// salted with control words (context switches to arbitrary ASIDs,
/// kernel crossings, mode transitions) and raw arbitrary values.
fn word_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        // Kernel text/data addresses with loop-like low entropy.
        (0u32..4096).prop_map(|i| 0x8003_0000 + i * 4),
        // User addresses.
        (0u32..4096).prop_map(|i| 0x0040_0000 + i * 4),
        // Control words: every opcode, arbitrary payload (CtxSwitch
        // payload is the ASID, so this covers ASID switches).
        (0u8..6, any::<u8>()).prop_map(|(op, payload)| {
            let op = match op {
                0 => CtlOp::CtxSwitch,
                1 => CtlOp::KEnter,
                2 => CtlOp::KExit,
                3 => CtlOp::TraceOn,
                4 => CtlOp::TraceOff,
                _ => CtlOp::Eof,
            };
            ctl(op, payload)
        }),
        // Fully arbitrary words, including page-zero junk the parser
        // would flag — the codec must round-trip them regardless.
        any::<u32>(),
    ]
}

proptest! {
    #[test]
    fn codec_round_trip_is_identity(words in vec(word_strategy(), 0..2000)) {
        for bs in BLOCK_SIZES {
            for chunk in words.chunks(bs) {
                let bytes = compress_block(chunk);
                let back = decompress_block(&bytes, chunk.len()).expect("own encoding decodes");
                prop_assert_eq!(&back, chunk);
            }
        }
    }

    #[test]
    fn store_round_trip_is_identity_at_every_block_size(
        words in vec(word_strategy(), 0..2000),
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        for bs in BLOCK_SIZES {
            let store = TraceStore::from_archive(&a, bs);
            let decoded = TraceStore::decode(&store.encode()).expect("own encoding decodes");
            prop_assert_eq!(decoded.words().expect("all CRCs hold"), a.words.clone());
            prop_assert_eq!(decoded.n_words, a.words.len() as u64);
        }
    }

    #[test]
    fn index_summaries_round_trip_and_stay_sound_at_every_block_size(
        words in vec(word_strategy(), 0..2000),
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        for bs in BLOCK_SIZES {
            let store = TraceStore::from_archive(&a, bs);
            let decoded = TraceStore::decode(&store.encode()).expect("own encoding decodes");
            let mut first_word = 0u64;
            for i in 0..store.n_blocks() {
                let (m, d) = (store.block_meta(i), decoded.block_meta(i));
                // Summaries survive the encode/decode round trip
                // bit-for-bit.
                prop_assert_eq!(m, d, "block {} at bs {}", i, bs);
                prop_assert!(m.has_summary());
                prop_assert_eq!(m.first_word, first_word);
                first_word += u64::from(m.words);
                // Soundness against the raw words: a block the index
                // declares switch-free must contain no CtxSwitch, and
                // the daddr bounds must be ordered.
                let r = m.word_range();
                let block = &a.words[r.start as usize..r.end as usize];
                let has_switch = block.iter().any(|&w| {
                    matches!(wrl_trace::classify(w),
                        wrl_trace::TraceWord::Ctl(c) if c.op == CtlOp::CtxSwitch)
                });
                if m.single_asid().is_some() {
                    prop_assert!(!has_switch, "block {} at bs {}", i, bs);
                }
                if let Some((lo, hi)) = m.daddr_range() {
                    prop_assert!(lo <= hi);
                }
            }
            prop_assert_eq!(first_word, a.words.len() as u64);
        }
    }

    #[test]
    fn query_equals_filtered_stream_at_every_block_size(
        words in vec(word_strategy(), 0..1500),
        asid_on in any::<bool>(),
        asid_val in any::<u8>(),
        lo in 0u64..1600,
        span in 0u64..1600,
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        let pred = wrl_store::Predicate {
            asid: asid_on.then_some(asid_val),
            window: Some((lo, lo + span)),
        };
        let want = wrl_store::filter_stream(&a.words, &pred);
        for bs in BLOCK_SIZES {
            let store = TraceStore::from_archive(&a, bs);
            let got = store.query(&pred).expect("own encoding queries");
            prop_assert_eq!(&got.words, &want, "bs {}", bs);
            prop_assert_eq!(got.blocks_decoded + got.blocks_skipped,
                store.n_blocks() as u32);
        }
    }

    #[test]
    fn decompress_arbitrary_bytes_never_panics(
        bytes in vec(any::<u8>(), 0..400),
        n_words in 0usize..600,
    ) {
        // Decode must be total: junk either errors or yields exactly
        // n_words (whose CRC the container layer would then check).
        if let Ok(words) = decompress_block(&bytes, n_words) {
            assert_eq!(words.len(), n_words);
            let _ = crc32_words(&words);
        }
    }

    #[test]
    fn store_decode_arbitrary_bytes_never_panics(bytes in vec(any::<u8>(), 0..400)) {
        let _ = TraceStore::decode(&bytes);
    }

    #[test]
    fn truncated_stores_never_decode(words in vec(word_strategy(), 1..500)) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        let bytes = TraceStore::from_archive(&a, 64).encode();
        // The trailer pins the index position and the index pins every
        // block, so any proper prefix must be rejected.
        for cut in [1usize, 8, 16, bytes.len() / 2, bytes.len() - 1] {
            prop_assert!(TraceStore::decode(&bytes[..cut]).is_err(), "cut={}", cut);
        }
    }

    #[test]
    fn v4_store_round_trip_is_identity_at_every_block_size(
        words in vec(word_strategy(), 0..2000),
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        for bs in BLOCK_SIZES {
            let store = TraceStore::from_archive_with(&a, bs, BlockFormat::Columnar);
            let bytes = store.encode();
            prop_assert_eq!(
                u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
                STORE_VERSION_V4
            );
            let decoded = TraceStore::decode_any(&bytes).expect("own encoding decodes");
            prop_assert_eq!(decoded.format(), BlockFormat::Columnar);
            prop_assert_eq!(decoded.words().expect("all CRCs hold"), a.words.clone());
            prop_assert_eq!(decoded.n_words, a.words.len() as u64);
        }
    }

    #[test]
    fn v4_queries_answer_bit_identically_to_v3_and_the_stream_filter(
        words in vec(word_strategy(), 0..1500),
        asid_on in any::<bool>(),
        asid_val in any::<u8>(),
        lo in 0u64..1600,
        span in 0u64..1600,
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        let pred = Predicate {
            asid: asid_on.then_some(asid_val),
            window: Some((lo, lo + span)),
        };
        let want = filter_stream(&a.words, &pred);
        for bs in BLOCK_SIZES {
            let v3 = TraceStore::from_archive(&a, bs);
            let v4 = TraceStore::from_archive_with(&a, bs, BlockFormat::Columnar);
            let q3 = v3.query(&pred).expect("v3 queries");
            let q4 = v4.query(&pred).expect("v4 queries");
            prop_assert_eq!(&q3.words, &want, "v3 bs {}", bs);
            prop_assert_eq!(&q4.words, &want, "v4 bs {}", bs);
            // The zonemap may only strengthen pruning, never weaken it.
            prop_assert!(q4.blocks_skipped >= q3.blocks_skipped, "bs {}", bs);
            prop_assert_eq!(q4.blocks_decoded + q4.blocks_skipped,
                v4.n_blocks() as u32);
        }
    }

    #[test]
    fn any_single_bit_flip_in_a_v4_store_is_a_typed_error(
        words in vec(word_strategy(), 1..800),
        flip_at in any::<usize>(),
        flip_bit in 0u32..8,
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        let mut bytes = TraceStore::from_archive_with(&a, 64, BlockFormat::Columnar).encode();
        let i = flip_at % bytes.len();
        bytes[i] ^= 1 << flip_bit;
        // Every byte sits under a CRC (metadata, per-block encoded, or
        // decoded-words) or a structural check: the flip must surface
        // as a typed error from decode or from the word extraction —
        // never a panic, never silently different words.
        if let Ok(store) = TraceStore::decode_any(&bytes) {
            match store.words() {
                Err(_) => {}
                Ok(w) => prop_assert_eq!(w, a.words.clone(), "flip silently absorbed"),
            }
        }
    }

    #[test]
    fn columnar_decode_of_arbitrary_bytes_never_panics(
        bytes in vec(any::<u8>(), 0..400),
        n_words in 0usize..600,
    ) {
        if let Ok(words) = wrl_store::column::decode_block(&bytes, n_words) {
            assert_eq!(words.len(), n_words);
        }
        let _ = wrl_store::column::section_lens(&bytes);
    }
}
