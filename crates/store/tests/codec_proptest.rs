//! Property-based tests of the block codec and container: compression
//! is lossless on arbitrary word sequences — including page-zero
//! control words, ASID switches and adversarial values the trace path
//! would reject — and decode is total on arbitrary bytes.

use proptest::collection::vec;
use proptest::prelude::*;
use wrl_store::{compress_block, crc32_words, decompress_block, TraceStore};
use wrl_trace::{ctl, CtlOp, TraceArchive};

/// Block sizes exercised everywhere: degenerate (1 word/block), prime
/// and misaligned (7), and the production default (4096).
const BLOCK_SIZES: [usize; 3] = [1, 7, 4096];

/// Trace-shaped words: mostly addresses with recurring structure,
/// salted with control words (context switches to arbitrary ASIDs,
/// kernel crossings, mode transitions) and raw arbitrary values.
fn word_strategy() -> impl Strategy<Value = u32> {
    prop_oneof![
        // Kernel text/data addresses with loop-like low entropy.
        (0u32..4096).prop_map(|i| 0x8003_0000 + i * 4),
        // User addresses.
        (0u32..4096).prop_map(|i| 0x0040_0000 + i * 4),
        // Control words: every opcode, arbitrary payload (CtxSwitch
        // payload is the ASID, so this covers ASID switches).
        (0u8..6, any::<u8>()).prop_map(|(op, payload)| {
            let op = match op {
                0 => CtlOp::CtxSwitch,
                1 => CtlOp::KEnter,
                2 => CtlOp::KExit,
                3 => CtlOp::TraceOn,
                4 => CtlOp::TraceOff,
                _ => CtlOp::Eof,
            };
            ctl(op, payload)
        }),
        // Fully arbitrary words, including page-zero junk the parser
        // would flag — the codec must round-trip them regardless.
        any::<u32>(),
    ]
}

proptest! {
    #[test]
    fn codec_round_trip_is_identity(words in vec(word_strategy(), 0..2000)) {
        for bs in BLOCK_SIZES {
            for chunk in words.chunks(bs) {
                let bytes = compress_block(chunk);
                let back = decompress_block(&bytes, chunk.len()).expect("own encoding decodes");
                prop_assert_eq!(&back, chunk);
            }
        }
    }

    #[test]
    fn store_round_trip_is_identity_at_every_block_size(
        words in vec(word_strategy(), 0..2000),
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        for bs in BLOCK_SIZES {
            let store = TraceStore::from_archive(&a, bs);
            let decoded = TraceStore::decode(&store.encode()).expect("own encoding decodes");
            prop_assert_eq!(decoded.words().expect("all CRCs hold"), a.words.clone());
            prop_assert_eq!(decoded.n_words, a.words.len() as u64);
        }
    }

    #[test]
    fn index_summaries_round_trip_and_stay_sound_at_every_block_size(
        words in vec(word_strategy(), 0..2000),
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        for bs in BLOCK_SIZES {
            let store = TraceStore::from_archive(&a, bs);
            let decoded = TraceStore::decode(&store.encode()).expect("own encoding decodes");
            let mut first_word = 0u64;
            for i in 0..store.n_blocks() {
                let (m, d) = (store.block_meta(i), decoded.block_meta(i));
                // Summaries survive the encode/decode round trip
                // bit-for-bit.
                prop_assert_eq!(m, d, "block {} at bs {}", i, bs);
                prop_assert!(m.has_summary());
                prop_assert_eq!(m.first_word, first_word);
                first_word += u64::from(m.words);
                // Soundness against the raw words: a block the index
                // declares switch-free must contain no CtxSwitch, and
                // the daddr bounds must be ordered.
                let r = m.word_range();
                let block = &a.words[r.start as usize..r.end as usize];
                let has_switch = block.iter().any(|&w| {
                    matches!(wrl_trace::classify(w),
                        wrl_trace::TraceWord::Ctl(c) if c.op == CtlOp::CtxSwitch)
                });
                if m.single_asid().is_some() {
                    prop_assert!(!has_switch, "block {} at bs {}", i, bs);
                }
                if let Some((lo, hi)) = m.daddr_range() {
                    prop_assert!(lo <= hi);
                }
            }
            prop_assert_eq!(first_word, a.words.len() as u64);
        }
    }

    #[test]
    fn query_equals_filtered_stream_at_every_block_size(
        words in vec(word_strategy(), 0..1500),
        asid_on in any::<bool>(),
        asid_val in any::<u8>(),
        lo in 0u64..1600,
        span in 0u64..1600,
    ) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        let pred = wrl_store::Predicate {
            asid: asid_on.then_some(asid_val),
            window: Some((lo, lo + span)),
        };
        let want = wrl_store::filter_stream(&a.words, &pred);
        for bs in BLOCK_SIZES {
            let store = TraceStore::from_archive(&a, bs);
            let got = store.query(&pred).expect("own encoding queries");
            prop_assert_eq!(&got.words, &want, "bs {}", bs);
            prop_assert_eq!(got.blocks_decoded + got.blocks_skipped,
                store.n_blocks() as u32);
        }
    }

    #[test]
    fn decompress_arbitrary_bytes_never_panics(
        bytes in vec(any::<u8>(), 0..400),
        n_words in 0usize..600,
    ) {
        // Decode must be total: junk either errors or yields exactly
        // n_words (whose CRC the container layer would then check).
        if let Ok(words) = decompress_block(&bytes, n_words) {
            assert_eq!(words.len(), n_words);
            let _ = crc32_words(&words);
        }
    }

    #[test]
    fn store_decode_arbitrary_bytes_never_panics(bytes in vec(any::<u8>(), 0..400)) {
        let _ = TraceStore::decode(&bytes);
    }

    #[test]
    fn truncated_stores_never_decode(words in vec(word_strategy(), 1..500)) {
        let a = TraceArchive { words, ..TraceArchive::default() };
        let bytes = TraceStore::from_archive(&a, 64).encode();
        // The trailer pins the index position and the index pins every
        // block, so any proper prefix must be rejected.
        for cut in [1usize, 8, 16, bytes.len() / 2, bytes.len() - 1] {
            prop_assert!(TraceStore::decode(&bytes[..cut]).is_err(), "cut={}", cut);
        }
    }
}
