//! The parallel replay farm: fan one stored trace across many
//! analysis sinks at once.
//!
//! The paper's methodology is *on-the-fly* analysis (§3.4) because
//! traces are too big to keep — but a cache study still wants to run
//! the same reference stream through fifteen cache geometries. The
//! compressed store makes the trace cheap to keep; the farm makes
//! re-running it cheap: one [`TraceStore`] is replayed into N sinks
//! with the work spread over worker threads, and the result is
//! guaranteed bit-identical to feeding each sink from a sequential
//! [`wrl_trace::TraceParser::parse_all`] pass.
//!
//! Two schedules, both exact:
//!
//! * **Shared parse** (the default): one feeder decodes blocks and
//!   parses the word stream *once*, broadcasting batches of parsed
//!   [`RefEvent`]s to every worker over bounded channels; each worker
//!   owns a round-robin share of the sinks and applies every batch to
//!   each of its sinks, in stream order. This amortises the decode and
//!   parse — the expensive, table-driven part — across all N sinks,
//!   which is the winning schedule even on a single CPU.
//! * **Per-worker parse** (`shared_parse = false`): every worker
//!   decodes and parses the whole store itself for its own sinks.
//!   N× the decode work, but zero cross-thread traffic — the
//!   scale-out schedule for machines with cores to spare.
//!
//! Ordering argument: a sink observes exactly the callback sequence of
//! a sequential parse. In shared mode the single feeder produces
//! batches in stream order and each per-worker channel is FIFO; a
//! worker applies batches in arrival order, one whole batch per sink
//! at a time. In per-worker mode each worker *is* a sequential parse.
//! Either way no events are reordered, dropped or duplicated, so any
//! deterministic [`TraceSink`] finishes in the same state — the same
//! bit-identical guarantee the streaming pipeline makes, extended
//! across a worker pool.

use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread;

use wrl_isa::Width;
use wrl_trace::{ChunkFate, ParseStats, RefEvent, Space, TraceSink};

use crate::container::{Predicate, QueryResult, StoreError, TraceStore};

/// Deterministic perturbation hooks for chaos-testing the farm (see
/// the `wrl-fault` crate). The callback is consulted by each worker
/// once per delivered item — an event batch in shared-parse mode, a
/// decoded block in per-worker mode. A [`ChunkFate::Stall`] may only
/// cost throughput; a [`ChunkFate::Drop`] desynchronises the worker
/// and must surface as [`StoreError::FarmDesync`], never as silently
/// different sink state.
#[derive(Clone, Default)]
pub struct FarmHooks {
    item: Option<Arc<dyn Fn(usize, u64) -> ChunkFate + Send + Sync>>,
}

impl FarmHooks {
    /// Hooks that consult `f` with (worker index, item sequence
    /// number) for every item a worker is about to apply.
    pub fn on_item(f: impl Fn(usize, u64) -> ChunkFate + Send + Sync + 'static) -> FarmHooks {
        FarmHooks {
            item: Some(Arc::new(f)),
        }
    }

    /// Resolves one item's fate, sleeping out any stall here. Returns
    /// `false` if the item is to be dropped.
    fn deliver(&self, worker: usize, seq: u64) -> bool {
        match &self.item {
            None => true,
            Some(f) => match f(worker, seq) {
                ChunkFate::Deliver => true,
                ChunkFate::Stall(d) => {
                    std::thread::sleep(d);
                    true
                }
                ChunkFate::Drop => false,
            },
        }
    }
}

/// Farm shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct FarmCfg {
    /// Worker threads. Sinks are dealt round-robin across workers;
    /// extra workers beyond the sink count are not spawned.
    pub workers: usize,
    /// `true`: decode+parse once and broadcast parsed events.
    /// `false`: every worker decodes and parses for itself.
    pub shared_parse: bool,
    /// Events per broadcast batch (shared-parse mode).
    pub batch_events: usize,
    /// Bound of each worker's channel, in batches (shared-parse mode).
    pub depth: usize,
}

impl Default for FarmCfg {
    fn default() -> FarmCfg {
        FarmCfg {
            workers: 4,
            shared_parse: true,
            batch_events: 8192,
            depth: 4,
        }
    }
}

/// What one replay did.
#[derive(Clone, Debug)]
pub struct FarmReport {
    /// Parse statistics for one full pass over the trace. (In
    /// per-worker mode every worker's pass is identical; one is
    /// reported.)
    pub stats: ParseStats,
    /// Blocks decoded per pass.
    pub blocks: usize,
    /// Words replayed per pass.
    pub words: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Sinks fed.
    pub sinks: usize,
    /// Event batches broadcast (shared-parse mode; 0 otherwise).
    pub batches: u64,
}

/// A [`TraceSink`] that buffers events and broadcasts each full batch
/// to every worker channel, sharing one allocation per batch.
struct Broadcast {
    txs: Vec<SyncSender<Arc<Vec<RefEvent>>>>,
    batch: Vec<RefEvent>,
    batch_events: usize,
    batches: u64,
}

impl Broadcast {
    fn new(txs: Vec<SyncSender<Arc<Vec<RefEvent>>>>, batch_events: usize) -> Broadcast {
        let batch_events = batch_events.max(1);
        Broadcast {
            txs,
            batch: Vec::with_capacity(batch_events),
            batch_events,
            batches: 0,
        }
    }

    fn push(&mut self, ev: RefEvent) {
        self.batch.push(ev);
        if self.batch.len() >= self.batch_events {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let batch = Arc::new(std::mem::replace(
            &mut self.batch,
            Vec::with_capacity(self.batch_events),
        ));
        self.batches += 1;
        for tx in &self.txs {
            // A send failure means that worker panicked; its join
            // below will surface the panic.
            let _ = tx.send(batch.clone());
        }
    }
}

impl TraceSink for Broadcast {
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) {
        self.push(RefEvent::Iref { vaddr, space, idle });
    }

    fn dref(&mut self, vaddr: u32, store: bool, width: Width, space: Space) {
        self.push(RefEvent::Dref {
            vaddr,
            store,
            width,
            space,
        });
    }

    fn ctx_switch(&mut self, asid: u8) {
        self.push(RefEvent::CtxSwitch(asid));
    }

    fn mode_transition(&mut self, generating: bool) {
        self.push(RefEvent::ModeTransition(generating));
    }
}

/// A [`TraceSink`] that forwards every callback to each owned sink,
/// in order (per-worker parse mode).
struct FanOut<'a, S>(&'a mut [(usize, S)]);

impl<S: TraceSink> TraceSink for FanOut<'_, S> {
    fn iref(&mut self, vaddr: u32, space: Space, idle: bool) {
        for (_, s) in self.0.iter_mut() {
            s.iref(vaddr, space, idle);
        }
    }

    fn dref(&mut self, vaddr: u32, store: bool, width: Width, space: Space) {
        for (_, s) in self.0.iter_mut() {
            s.dref(vaddr, store, width, space);
        }
    }

    fn ctx_switch(&mut self, asid: u8) {
        for (_, s) in self.0.iter_mut() {
            s.ctx_switch(asid);
        }
    }

    fn mode_transition(&mut self, generating: bool) {
        for (_, s) in self.0.iter_mut() {
            s.mode_transition(generating);
        }
    }
}

/// Replays the whole store into every sink, spreading work across
/// `cfg.workers` threads. Returns the report and the sinks in their
/// original order, each in exactly the state a sequential
/// `parse_all` pass would have left it in. Decode or CRC failures
/// abort the replay with the block's typed error.
pub fn replay<S: TraceSink + Send>(
    store: &TraceStore,
    sinks: Vec<S>,
    cfg: FarmCfg,
) -> Result<(FarmReport, Vec<S>), StoreError> {
    replay_with_hooks(store, sinks, cfg, FarmHooks::default())
}

/// Like [`replay`], with fault-injection hooks consulted by every
/// worker per applied item. Used by the `wrl-fault` chaos campaign;
/// production callers use `replay` (equivalent to default hooks).
pub fn replay_with_hooks<S: TraceSink + Send>(
    store: &TraceStore,
    sinks: Vec<S>,
    cfg: FarmCfg,
    hooks: FarmHooks,
) -> Result<(FarmReport, Vec<S>), StoreError> {
    let n_sinks = sinks.len();
    let workers = cfg.workers.clamp(1, n_sinks.max(1));
    // Deal sinks round-robin, remembering original positions so the
    // returned vector matches the input order.
    let mut shares: Vec<Vec<(usize, S)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, s) in sinks.into_iter().enumerate() {
        shares[i % workers].push((i, s));
    }

    let (report, shares) = if cfg.shared_parse {
        replay_shared(store, shares, cfg, hooks)?
    } else {
        replay_per_worker(store, shares, hooks)?
    };

    let mut out: Vec<Option<S>> = (0..n_sinks).map(|_| None).collect();
    for (i, s) in shares.into_iter().flatten() {
        out[i] = Some(s);
    }
    let sinks = out
        .into_iter()
        .map(|s| s.expect("every sink returns"))
        .collect();
    Ok((
        FarmReport {
            workers,
            sinks: n_sinks,
            ..report
        },
        sinks,
    ))
}

type Shares<S> = Vec<Vec<(usize, S)>>;

fn replay_shared<S: TraceSink + Send>(
    store: &TraceStore,
    shares: Shares<S>,
    cfg: FarmCfg,
    hooks: FarmHooks,
) -> Result<(FarmReport, Shares<S>), StoreError> {
    thread::scope(|scope| {
        let mut txs = Vec::with_capacity(shares.len());
        let mut handles = Vec::with_capacity(shares.len());
        for (w, mut share) in shares.into_iter().enumerate() {
            let (tx, rx) = sync_channel::<Arc<Vec<RefEvent>>>(cfg.depth.max(1));
            txs.push(tx);
            let hooks = hooks.clone();
            handles.push(scope.spawn(move || {
                let mut applied = 0u64;
                for (seq, batch) in rx.into_iter().enumerate() {
                    if !hooks.deliver(w, seq as u64) {
                        continue;
                    }
                    applied += 1;
                    for (_, sink) in share.iter_mut() {
                        for &ev in batch.iter() {
                            ev.apply(sink);
                        }
                    }
                }
                (share, applied)
            }));
        }

        let mut parser = store.parser();
        let mut feed = Broadcast::new(txs, cfg.batch_events);
        let mut failed = None;
        // One continuous parse across all blocks: `push_words` per
        // block (a basic block's words may straddle two store blocks),
        // one `finish` at the end. The batch reader recycles one
        // decode buffer across the whole file.
        let mut reader = store.block_reader();
        while let Some(block) = reader.next_block() {
            match block {
                Ok(words) => parser.push_words(words, &mut feed),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        if failed.is_none() {
            parser.finish(&mut feed);
        }
        feed.flush();
        let batches = feed.batches;
        drop(feed); // close the channels so workers drain and exit
        let mut shares: Shares<S> = Vec::with_capacity(handles.len());
        for (w, h) in handles.into_iter().enumerate() {
            let (share, applied) = h.join().expect("farm worker panicked");
            // Every worker must have applied every broadcast batch; a
            // shortfall means its sinks silently missed events.
            if failed.is_none() && applied != batches {
                failed = Some(StoreError::FarmDesync {
                    worker: w,
                    applied,
                    expected: batches,
                });
            }
            shares.push(share);
        }
        match failed {
            Some(e) => Err(e),
            None => Ok((
                FarmReport {
                    stats: parser.stats.clone(),
                    blocks: store.n_blocks(),
                    words: store.n_words,
                    workers: 0,
                    sinks: 0,
                    batches,
                },
                shares,
            )),
        }
    })
}

fn replay_per_worker<S: TraceSink + Send>(
    store: &TraceStore,
    shares: Shares<S>,
    hooks: FarmHooks,
) -> Result<(FarmReport, Shares<S>), StoreError> {
    thread::scope(|scope| {
        let handles: Vec<_> = shares
            .into_iter()
            .enumerate()
            .map(|(w, mut share)| {
                let hooks = hooks.clone();
                scope.spawn(move || {
                    let mut parser = store.parser();
                    let mut skipped = 0u64;
                    {
                        let mut fan = FanOut(&mut share);
                        let mut buf = Vec::new();
                        for i in 0..store.n_blocks() {
                            if !hooks.deliver(w, i as u64) {
                                skipped += 1;
                                continue;
                            }
                            buf.clear();
                            store.decode_blocks_into(i..i + 1, &mut buf)?;
                            parser.push_words(&buf, &mut fan);
                        }
                        parser.finish(&mut fan);
                    }
                    // A skipped block means this worker's sinks saw a
                    // gapped stream — their state cannot be trusted.
                    if skipped > 0 {
                        return Err(StoreError::FarmDesync {
                            worker: w,
                            applied: store.n_blocks() as u64 - skipped,
                            expected: store.n_blocks() as u64,
                        });
                    }
                    Ok::<_, StoreError>((parser.stats, share))
                })
            })
            .collect();
        let mut stats = None;
        let mut shares = Vec::new();
        let mut failed = None;
        for h in handles {
            match h.join().expect("farm worker panicked") {
                Ok((s, share)) => {
                    stats.get_or_insert(s);
                    shares.push(share);
                }
                Err(e) => failed = Some(e),
            }
        }
        match failed {
            Some(e) => Err(e),
            None => Ok((
                FarmReport {
                    stats: stats.unwrap_or_default(),
                    blocks: store.n_blocks(),
                    words: store.n_words,
                    workers: 0,
                    sinks: 0,
                    batches: 0,
                },
                shares,
            )),
        }
    })
}

/// Runs [`TraceStore::query`] with the block work spread over
/// `workers` threads. Blocks filter independently (each block's
/// entering ASID context comes from the index), so workers pull
/// block indices from a shared counter, filter their blocks locally,
/// and the results are stitched back in stream order — bit-identical
/// to the sequential query by construction. This is the entry the
/// `wrl-serve` service uses so one big query saturates all cores.
pub fn query_parallel(
    store: &TraceStore,
    pred: &Predicate,
    workers: usize,
) -> Result<QueryResult, StoreError> {
    let picked = store.matching_blocks(pred);
    let skipped = (store.n_blocks() - picked.len()) as u32;
    let workers = workers.clamp(1, picked.len().max(1));
    if workers == 1 || picked.len() < 8 {
        // Too little work to pay a scoped-thread spawn per request —
        // filter in place with reused buffers (identical results:
        // both paths visit `picked` in stream order).
        let mut words = Vec::new();
        let mut scratch = Vec::new();
        for &i in &picked {
            store.filter_block_into(i, pred, &mut words, &mut scratch)?;
        }
        return Ok(QueryResult {
            blocks_decoded: picked.len() as u32,
            blocks_skipped: skipped,
            words,
        });
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let parts = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (picked, next) = (&picked, &next);
                scope.spawn(move || {
                    let mut mine: Vec<(usize, Vec<u32>)> = Vec::new();
                    // One decode scratch per worker, reused across its
                    // blocks (filter_block_into never allocates in the
                    // steady state).
                    let mut scratch = Vec::new();
                    loop {
                        let at = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&block) = picked.get(at) else {
                            return Ok(mine);
                        };
                        let mut out = Vec::new();
                        store.filter_block_into(block, pred, &mut out, &mut scratch)?;
                        mine.push((at, out));
                    }
                })
            })
            .collect();
        let mut parts: Vec<(usize, Vec<u32>)> = Vec::with_capacity(picked.len());
        let mut failed: Option<StoreError> = None;
        for h in handles {
            match h.join().expect("query worker panicked") {
                Ok(mine) => parts.extend(mine),
                Err(e) => failed = Some(e),
            }
        }
        match failed {
            Some(e) => Err(e),
            None => Ok(parts),
        }
    });
    let mut parts = parts?;
    parts.sort_unstable_by_key(|(at, _)| *at);
    let mut words = Vec::with_capacity(parts.iter().map(|(_, w)| w.len()).sum());
    for (_, part) in parts {
        words.extend_from_slice(&part);
    }
    Ok(QueryResult {
        blocks_decoded: picked.len() as u32,
        blocks_skipped: skipped,
        words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_trace::bbinfo::{BbInfo, BbTraceFlags, MemOp};
    use wrl_trace::{ctl, BbTable, CollectSink, CtlOp, TraceArchive};

    /// A trace with kernel + user activity, context switches and
    /// nested kernel entries, so ordering bugs have something to bite.
    fn busy_store(block_words: usize) -> TraceStore {
        let mut kt = BbTable::new();
        for i in 0..8u32 {
            kt.insert(
                0x8003_0000 + i * 0x40,
                BbInfo {
                    orig_vaddr: 0x8001_0000 + i * 0x40,
                    n_insts: 3,
                    ops: vec![MemOp {
                        index: 1,
                        store: i % 2 == 0,
                        width: Width::Word,
                    }],
                    flags: BbTraceFlags::default(),
                },
            );
        }
        let mut ut = BbTable::new();
        for i in 0..8u32 {
            ut.insert(
                0x0040_0000 + i * 0x40,
                BbInfo {
                    orig_vaddr: 0x0041_0000 + i * 0x40,
                    n_insts: 2,
                    ops: vec![],
                    flags: BbTraceFlags::default(),
                },
            );
        }
        let mut words = vec![ctl(CtlOp::CtxSwitch, 5)];
        for i in 0..3000u32 {
            let k = i % 8;
            words.push(0x0040_0000 + k * 0x40);
            if i % 7 == 0 {
                words.push(ctl(CtlOp::KEnter, 3));
                words.push(0x8003_0000 + k * 0x40);
                words.push(0x8040_0000 + (i % 16) * 4); // its data word
                words.push(ctl(CtlOp::KExit, 0));
            }
        }
        words.push(ctl(CtlOp::Eof, 0));
        let a = TraceArchive {
            kernel_table: kt,
            user_tables: vec![(5, ut)],
            words,
        };
        TraceStore::from_archive(&a, block_words)
    }

    fn sequential(store: &TraceStore, n: usize) -> Vec<CollectSink> {
        let words = store.words().unwrap();
        (0..n)
            .map(|_| {
                let mut sink = CollectSink::default();
                store.parser().parse_all(&words, &mut sink);
                sink
            })
            .collect()
    }

    fn assert_identical(farmed: &[CollectSink], baseline: &[CollectSink]) {
        assert_eq!(farmed.len(), baseline.len());
        for (f, b) in farmed.iter().zip(baseline) {
            assert_eq!(f.irefs, b.irefs);
            assert_eq!(f.drefs, b.drefs);
        }
    }

    #[test]
    fn shared_parse_matches_sequential_for_any_worker_count() {
        let store = busy_store(256);
        let baseline = sequential(&store, 5);
        for workers in [1, 2, 4, 8] {
            let sinks = vec![CollectSink::default(); 5];
            let cfg = FarmCfg {
                workers,
                batch_events: 100, // small batches: exercise batching
                ..FarmCfg::default()
            };
            let (report, farmed) = replay(&store, sinks, cfg).unwrap();
            assert_identical(&farmed, &baseline);
            assert_eq!(report.workers, workers.min(5));
            assert_eq!(report.words, store.n_words);
            assert!(report.batches > 0);
        }
    }

    #[test]
    fn per_worker_parse_matches_sequential() {
        let store = busy_store(512);
        let baseline = sequential(&store, 3);
        let cfg = FarmCfg {
            workers: 3,
            shared_parse: false,
            ..FarmCfg::default()
        };
        let (report, farmed) = replay(&store, vec![CollectSink::default(); 3], cfg).unwrap();
        assert_identical(&farmed, &baseline);
        assert_eq!(report.batches, 0);
        assert_eq!(report.stats, {
            let mut p = store.parser();
            p.parse_all(&store.words().unwrap(), &mut CollectSink::default());
            p.stats
        });
    }

    #[test]
    fn zero_sinks_still_reports_a_parse() {
        let store = busy_store(256);
        let (report, sinks) = replay::<CollectSink>(&store, vec![], FarmCfg::default()).unwrap();
        assert!(sinks.is_empty());
        assert_eq!(report.words, store.n_words);
        assert!(report.stats.bb_records > 0);
    }

    #[test]
    fn stalled_workers_change_nothing() {
        use std::time::Duration;
        let store = busy_store(256);
        let baseline = sequential(&store, 3);
        for shared_parse in [true, false] {
            let hooks = FarmHooks::on_item(|worker, seq| {
                if worker == 0 && seq % 2 == 0 {
                    ChunkFate::Stall(Duration::from_micros(100))
                } else {
                    ChunkFate::Deliver
                }
            });
            let cfg = FarmCfg {
                workers: 3,
                shared_parse,
                batch_events: 200,
                ..FarmCfg::default()
            };
            let (_, farmed) =
                replay_with_hooks(&store, vec![CollectSink::default(); 3], cfg, hooks).unwrap();
            assert_identical(&farmed, &baseline);
        }
    }

    #[test]
    fn dropped_item_is_a_typed_desync_in_both_modes() {
        let store = busy_store(256);
        for shared_parse in [true, false] {
            let hooks = FarmHooks::on_item(|worker, seq| {
                if worker == 1 && seq == 1 {
                    ChunkFate::Drop
                } else {
                    ChunkFate::Deliver
                }
            });
            let cfg = FarmCfg {
                workers: 2,
                shared_parse,
                batch_events: 100,
                ..FarmCfg::default()
            };
            let err = replay_with_hooks(&store, vec![CollectSink::default(); 2], cfg, hooks)
                .expect_err("a dropped item must abort the replay");
            match err {
                StoreError::FarmDesync {
                    worker,
                    applied,
                    expected,
                } => {
                    assert_eq!(worker, 1);
                    assert_eq!(applied + 1, expected);
                }
                other => panic!("wrong error type: {other}"),
            }
        }
    }

    #[test]
    fn parallel_query_is_bit_identical_to_sequential() {
        let store = busy_store(64);
        let full = store.words().unwrap();
        for pred in [
            Predicate::default(),
            Predicate {
                asid: Some(5),
                ..Predicate::default()
            },
            Predicate {
                window: Some((100, 2000)),
                asid: Some(5),
            },
        ] {
            let seq = store.query(&pred).unwrap();
            assert_eq!(seq.words, crate::filter_stream(&full, &pred), "{pred:?}");
            for workers in [1, 2, 4, 8] {
                let par = query_parallel(&store, &pred, workers).unwrap();
                assert_eq!(par, seq, "workers={workers} {pred:?}");
            }
        }
    }

    #[test]
    fn v4_replay_and_query_match_the_row_store() {
        let v3 = busy_store(64);
        let a = v3.to_archive().unwrap();
        let v4 = TraceStore::from_archive_with(&a, 64, crate::BlockFormat::Columnar);
        let baseline = sequential(&v3, 3);
        let (_, farmed) = replay(&v4, vec![CollectSink::default(); 3], FarmCfg::default()).unwrap();
        assert_identical(&farmed, &baseline);
        for pred in [
            Predicate {
                asid: Some(5),
                ..Predicate::default()
            },
            Predicate {
                window: Some((100, 2000)),
                asid: Some(5),
            },
        ] {
            let seq = v3.query(&pred).unwrap();
            let par = query_parallel(&v4, &pred, 4).unwrap();
            assert_eq!(par.words, seq.words, "{pred:?}");
        }
    }

    #[test]
    fn parallel_query_surfaces_block_corruption() {
        let store = busy_store(64);
        let mut bytes = store.encode();
        let tail_at = bytes.len() - crate::container::TRAILER_BYTES;
        let index_pos =
            u64::from_le_bytes(bytes[tail_at + 4..tail_at + 12].try_into().unwrap()) as usize;
        bytes[index_pos - 1] ^= 0xff;
        let bad = TraceStore::decode(&bytes).unwrap();
        let err = query_parallel(&bad, &Predicate::default(), 4).unwrap_err();
        assert!(matches!(
            err,
            StoreError::CrcMismatch { .. } | StoreError::BlockCodec { .. }
        ));
    }

    #[test]
    fn corrupt_block_aborts_both_modes() {
        let store = busy_store(128);
        let mut bytes = store.encode();
        // Flip the last byte of the block area (just before the index,
        // whose position the trailer records).
        let tail_at = bytes.len() - crate::container::TRAILER_BYTES;
        let index_pos =
            u64::from_le_bytes(bytes[tail_at + 4..tail_at + 12].try_into().unwrap()) as usize;
        bytes[index_pos - 1] ^= 0xff;
        let bad = TraceStore::decode(&bytes).unwrap();
        for shared_parse in [true, false] {
            let cfg = FarmCfg {
                shared_parse,
                ..FarmCfg::default()
            };
            let err = replay(&bad, vec![CollectSink::default(); 2], cfg).unwrap_err();
            assert!(matches!(
                err,
                StoreError::CrcMismatch { .. } | StoreError::BlockCodec { .. }
            ));
        }
    }
}
