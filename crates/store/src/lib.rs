//! `wrl-store`: a compressed, seekable trace container and a parallel
//! replay farm.
//!
//! The paper's central bind is that system traces are too large to
//! store (§3.1–§3.2: on-the-fly analysis exists *because* raw traces
//! outrun any disk of the day), yet every stored trace is worth many
//! analysis runs — the WRL traces were distributed to the community on
//! tape (§3.4) precisely so others could re-run them. This crate
//! resolves the bind for the modern repo:
//!
//! * [`codec`] — a dependency-free delta + finite-context compressor
//!   exploiting the trace word regularities of §3.3; loop-dominated
//!   traces approach one byte per four-byte word.
//! * [`column`](mod@column) — the v4 columnar block coding: per-class columns
//!   (control / user / kernel words) with 1-bit predictor-hit flags,
//!   decodable one column at a time so predicates touch only the
//!   bytes they need.
//! * [`container`] — archive formats v3 (row blocks) and v4 (columnar
//!   blocks + per-ASID zonemaps): fixed-size blocks compressed
//!   independently, with a footer index (offset, word count, CRC-32,
//!   ASID bounds and query summaries per block) so any block is
//!   seekable and decodable on its own, and most blocks are provably
//!   skippable from the index alone. Version-1 and -2 archives still
//!   load transparently.
//! * [`farm`] — replays one store into N analysis sinks across worker
//!   threads, bit-identical to a sequential parse: the schedule moves
//!   work between threads but never reorders a sink's event stream.
//! * [`obs`] — `wrl-obs` wiring: store-shape gauges and §4.3-style
//!   integrity-failure tallies (see `docs/METRICS.md`).

#![deny(missing_docs)]

pub mod codec;
pub mod column;
pub mod container;
pub mod farm;
pub mod obs;

pub use codec::{compress_block, crc32_bytes, crc32_words, decompress_block, CodecError, Crc32};
pub use container::{
    filter_stream, BlockCache, BlockFormat, BlockMeta, BlockReader, ColumnStats, Predicate,
    QueryResult, StoreError, TraceStore, DEFAULT_BLOCK_WORDS, INDEX_ENTRY_BYTES,
    INDEX_ENTRY_BYTES_V2, INDEX_ENTRY_BYTES_V4, STORE_VERSION, STORE_VERSION_V4, TRAILER_BYTES,
};
pub use farm::{query_parallel, replay, replay_with_hooks, FarmCfg, FarmHooks, FarmReport};
pub use obs::StoreObs;
