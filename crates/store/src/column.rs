//! The columnar block codec behind archive format version 4.
//!
//! The row codec ([`crate::codec`]) interleaves every kind of trace
//! word through one model, so a loop that alternates basic-block ids
//! with striding data addresses poisons its own context: the predictor
//! keyed on a fresh data address has never seen the bb-id that
//! follows. Version 4 instead splits each block into *columns by word
//! class* — control words (page zero), user-half addresses
//! (`< 0x8000_0000`) and kernel-half addresses — and runs an
//! independent predictor per column, where the regularity actually
//! lives:
//!
//! * **tag column** — one entry per word naming its class. A small
//!   context table keyed on the last six tags predicts the next one;
//!   loop bodies repeat their tag pattern exactly, so a hit costs one
//!   bit (a miss costs three: the flag plus the explicit 2-bit tag).
//! * **per-class flag column** — one to three bits per word of that
//!   class, from three finite-context predictors tried in order.
//!   The *exact* table, keyed on the previous stream word, is a
//!   differential predictor (last value seen after that word, plus
//!   the stride it moved by): basic-block chains, repeated scalar
//!   references and "the array element after bb `X`" all hit it for
//!   one bit. The *stride-history* table, keyed on the class's last
//!   four strides (small strides kept exact, large ones coarsened to
//!   256-byte granularity so a slowly drifting long-range delta keys
//!   one slot for many iterations), predicts the next stride — the
//!   position-in-loop signal that carries stencil sweeps whose every
//!   address drifts per iteration. The *coarse* table, keyed on the
//!   previous word with its low byte dropped (`prev >> 8`), is the
//!   same differential predictor under a context that survives the
//!   key itself striding. The control class keys everything on its
//!   own previous values instead, so control values decode without
//!   the address columns.
//! * **per-class miss column** — zigzag varint of the word against
//!   the stride-history prediction (the best base when a drifting
//!   context goes stale), the only place whole bytes are spent.
//!
//! A block is the seven sections (tag bits, then flag and miss
//! sections for the three classes) each prefixed with a varint byte
//! length, all behind one leading CRC-32 over the encoded bytes. The
//! layout is what enables *column projection*: an ASID-only predicate
//! reads the tag and control sections alone ([`asid_runs`]) — the
//! class predictors never cross columns, so the control values decode
//! without touching the (much larger) address columns — and the
//! leading CRC lets a partial reader prove the bytes intact without
//! materialising a single row. All model state is per-block, so v4
//! blocks decode independently and in parallel exactly like v3
//! blocks.

use core::cell::RefCell;

use crate::codec::{crc32_bytes, put_varint, take_varint, CodecError};
use wrl_trace::format::{classify, CtlOp, TraceWord, CTL_LIMIT};

/// Number of column sections in an encoded v4 block: the tag column,
/// then a flag and a miss column per word class.
pub const N_COLUMNS: usize = 7;

/// Section names, in their on-disk order (`tracedump info` prints
/// per-column byte totals under these names).
pub const COLUMN_NAMES: [&str; N_COLUMNS] = [
    "tag",
    "ctl.flag",
    "ctl.miss",
    "user.flag",
    "user.miss",
    "kernel.flag",
    "kernel.miss",
];

/// Slots in the tag-context table (indexed by the last six 2-bit
/// tags).
pub const TAG_SLOTS: usize = 1 << 12;
/// Slots in each per-class finite-context table.
pub const VAL_SLOTS: usize = 4096;

/// A run of consecutive words sharing one ASID context, produced by
/// [`asid_runs`]. `start..start + len` are block-local row indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsidRun {
    /// First block-local row of the run.
    pub start: u32,
    /// Number of words in the run.
    pub len: u32,
    /// The ASID context of every word in the run.
    pub asid: u8,
}

/// The word class driving column assignment. Control words are the
/// page-zero range the parser treats as control ([`CTL_LIMIT`]); the
/// address space splits at the kernel half, which keeps basic-block
/// ids and kernel data apart from user-half activity so each column's
/// predictor sees one coherent stream.
#[inline]
fn word_class(w: u32) -> u8 {
    if w < CTL_LIMIT {
        0
    } else if w < 0x8000_0000 {
        1
    } else {
        2
    }
}

#[inline]
fn val_slot(prev: u32) -> usize {
    (prev.wrapping_mul(0x9e37_79b1) >> (32 - 12)) as usize & (VAL_SLOTS - 1)
}

/// Quantised component of the stride-history key: strides under 4096
/// keep their exact value (a cons-cell walk's distinct small deltas
/// stay distinct contexts), larger ones drop their low byte so a
/// long-range delta that drifts a few bytes per loop iteration keys
/// the same slot for many iterations; the top bit keeps the two
/// ranges disjoint.
#[inline]
fn quant_stride(s: u32) -> u32 {
    if (s as i32).unsigned_abs() < 4096 {
        s
    } else {
        (((s as i32) >> 8) as u32) ^ 0x8000_0000
    }
}

#[inline]
fn zigzag32(d: i32) -> u64 {
    (((d << 1) ^ (d >> 31)) as u32) as u64
}

#[inline]
fn unzigzag32(z: u64) -> i32 {
    let z = z as u32;
    ((z >> 1) as i32) ^ -((z & 1) as i32)
}

/// Generation-tagged model tables, reused across blocks: resetting
/// between blocks is a generation bump, not a 100 KiB memset — the
/// difference between a codec that batch-decodes 64-word service
/// blocks at full speed and one that spends its time zeroing tables.
struct Scratch {
    /// Tag-context table; entry = `gen << 2 | tag`, valid iff the
    /// generation matches.
    tag: Vec<u32>,
    /// Per-class *exact* value tables, keyed on the full previous
    /// word; entry = `gen << 32 | word`, valid iff the generation
    /// matches.
    eval: [Vec<u64>; 3],
    /// Strides parallel to `eval` (valid exactly when the `eval`
    /// entry is): the delta the slot's value moved by last time,
    /// making each exact slot a differential predictor.
    estride: [Vec<u32>; 3],
    /// Per-class *coarse* value tables, keyed on `prev >> 8`; entry =
    /// `gen << 32 | word`, valid iff the generation matches.
    val: [Vec<u64>; 3],
    /// Per-class stride tables, parallel to `val` (valid exactly when
    /// the `val` entry is): the delta the slot's value moved by last
    /// time, making each coarse slot a differential predictor.
    stride: [Vec<u32>; 3],
    /// Per-class *stride-history* tables, keyed on a hash of the
    /// class's last four quantised strides; entry =
    /// `gen << 32 | stride`, valid iff the generation matches.
    dstride: [Vec<u64>; 3],
    gen: u32,
}

impl Scratch {
    fn new() -> Scratch {
        Scratch {
            tag: vec![0; TAG_SLOTS],
            eval: [vec![0; VAL_SLOTS], vec![0; VAL_SLOTS], vec![0; VAL_SLOTS]],
            estride: [vec![0; VAL_SLOTS], vec![0; VAL_SLOTS], vec![0; VAL_SLOTS]],
            val: [vec![0; VAL_SLOTS], vec![0; VAL_SLOTS], vec![0; VAL_SLOTS]],
            stride: [vec![0; VAL_SLOTS], vec![0; VAL_SLOTS], vec![0; VAL_SLOTS]],
            dstride: [vec![0; VAL_SLOTS], vec![0; VAL_SLOTS], vec![0; VAL_SLOTS]],
            gen: 0,
        }
    }

    /// Starts a fresh block: every table slot becomes invalid in O(1).
    fn begin(&mut self) {
        self.gen += 1;
        // The tag entries pack the generation above 2 tag bits, so
        // wrap long before the packing could overflow (once per ~10^9
        // blocks) with a real reset.
        if self.gen >= 1 << 29 {
            self.tag.iter_mut().for_each(|e| *e = 0);
            for t in self
                .eval
                .iter_mut()
                .chain(&mut self.val)
                .chain(&mut self.dstride)
            {
                t.iter_mut().for_each(|e| *e = 0);
            }
            for t in self.stride.iter_mut().chain(&mut self.estride) {
                t.iter_mut().for_each(|e| *e = 0);
            }
            self.gen = 1;
        }
    }

    #[inline]
    fn tag_pred(&self, hist: usize) -> Option<u8> {
        let e = self.tag[hist];
        (e >> 2 == self.gen).then_some((e & 3) as u8)
    }

    #[inline]
    fn eval_pred(&self, c: usize, slot: usize) -> Option<u32> {
        let e = self.eval[c][slot];
        ((e >> 32) as u32 == self.gen).then_some(e as u32)
    }

    #[inline]
    fn val_pred(&self, c: usize, slot: usize) -> Option<u32> {
        let e = self.val[c][slot];
        ((e >> 32) as u32 == self.gen).then_some(e as u32)
    }

    #[inline]
    fn dstride_pred(&self, c: usize, slot: usize) -> Option<u32> {
        let e = self.dstride[c][slot];
        ((e >> 32) as u32 == self.gen).then_some(e as u32)
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// LSB-first bit writer.
#[derive(Default)]
struct BitWriter {
    bytes: Vec<u8>,
    cur: u32,
    n: u32,
}

impl BitWriter {
    #[inline]
    fn push(&mut self, b: bool) {
        self.cur |= u32::from(b) << self.n;
        self.n += 1;
        if self.n == 8 {
            self.bytes.push(self.cur as u8);
            self.cur = 0;
            self.n = 0;
        }
    }

    #[inline]
    fn push2(&mut self, v: u8) {
        self.push(v & 1 != 0);
        self.push(v & 2 != 0);
    }

    fn finish(mut self) -> Vec<u8> {
        if self.n > 0 {
            self.bytes.push(self.cur as u8);
        }
        self.bytes
    }
}

/// LSB-first bit reader; every read is bounds-checked so decode stays
/// total on arbitrary bytes.
struct BitReader<'a> {
    bytes: &'a [u8],
    at: usize,
    cur: u32,
    left: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader {
            bytes,
            at: 0,
            cur: 0,
            left: 0,
        }
    }

    #[inline]
    fn bit(&mut self) -> Result<bool, CodecError> {
        if self.left == 0 {
            self.cur = u32::from(*self.bytes.get(self.at).ok_or(CodecError::Truncated)?);
            self.at += 1;
            self.left = 8;
        }
        let b = self.cur & 1;
        self.cur >>= 1;
        self.left -= 1;
        Ok(b != 0)
    }

    #[inline]
    fn two(&mut self) -> Result<u8, CodecError> {
        Ok(u8::from(self.bit()?) | (u8::from(self.bit()?) << 1))
    }

    /// All bytes consumed (padding bits in the final byte excepted)?
    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// Per-class model state (the tables live in [`Scratch`]).
#[derive(Clone, Copy, Default)]
struct ClassState {
    prev: u32,
    stride: u32,
    /// The class's last four quantised strides, most recent first —
    /// the stride-history key.
    hist: [u32; 4],
    /// A class is warm once it has a real previous value; the
    /// stride-history table is only taught from warm strides.
    warm: bool,
}

impl ClassState {
    #[inline]
    fn stride_pred(&self) -> u32 {
        self.prev.wrapping_add(self.stride)
    }

    #[inline]
    fn hist_slot(&self) -> usize {
        let mut k = 0u32;
        for (i, &h) in self.hist.iter().enumerate() {
            k ^= h.rotate_left(11 * i as u32);
        }
        val_slot(k)
    }

    #[inline]
    fn advance(&mut self, w: u32) {
        let s = w.wrapping_sub(self.prev);
        if self.warm {
            self.hist = [quant_stride(s), self.hist[0], self.hist[1], self.hist[2]];
        }
        self.stride = s;
        self.prev = w;
        self.warm = true;
    }
}

/// One word's worth of predictions: the three predictors in flag
/// order, plus the table slots they read (so the update step writes
/// exactly where the prediction looked).
struct Preds {
    e_slot: usize,
    c_slot: usize,
    d_slot: usize,
    /// Exact-table differential prediction; `None` while the slot is
    /// cold this block.
    p1: Option<u32>,
    /// Stride-history prediction (class running stride when cold) —
    /// also the miss-varint base.
    p3: u32,
    /// Coarse-table differential prediction (class running stride
    /// when cold).
    p2: u32,
}

#[inline]
fn predict(s: &Scratch, cls: &ClassState, c: usize, key: u32) -> Preds {
    let e_slot = val_slot(key);
    let c_slot = val_slot(key >> 8);
    let d_slot = cls.hist_slot();
    let p1 = s
        .eval_pred(c, e_slot)
        .map(|v| v.wrapping_add(s.estride[c][e_slot]));
    let p3 = match s.dstride_pred(c, d_slot) {
        Some(st) => cls.prev.wrapping_add(st),
        None => cls.stride_pred(),
    };
    let p2 = match s.val_pred(c, c_slot) {
        Some(v) => v.wrapping_add(s.stride[c][c_slot]),
        None => cls.stride_pred(),
    };
    Preds {
        e_slot,
        c_slot,
        d_slot,
        p1,
        p3,
        p2,
    }
}

/// Teaches every table the observed word, in the slots [`predict`]
/// read, then advances the class state. Encoder and decoder run this
/// identically, which is what keeps them in lockstep.
#[inline]
fn update(s: &mut Scratch, cls: &mut ClassState, c: usize, p: &Preds, w: u32) {
    let g = u64::from(s.gen) << 32;
    s.estride[c][p.e_slot] = s.eval_pred(c, p.e_slot).map_or(0, |v| w.wrapping_sub(v));
    s.eval[c][p.e_slot] = g | u64::from(w);
    s.stride[c][p.c_slot] = s.val_pred(c, p.c_slot).map_or(0, |v| w.wrapping_sub(v));
    s.val[c][p.c_slot] = g | u64::from(w);
    if cls.warm {
        s.dstride[c][p.d_slot] = g | u64::from(w.wrapping_sub(cls.prev));
    }
    cls.advance(w);
}

/// Splits `bytes` into the seven column sections, verifying the
/// leading encoded-bytes CRC first — a reader that only projects some
/// columns still proves *every* byte intact before trusting any.
fn sections(bytes: &[u8]) -> Result<[&[u8]; N_COLUMNS], CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let want = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    let got = crc32_bytes(&bytes[4..]);
    if want != got {
        return Err(CodecError::EncodedCrcMismatch { want, got });
    }
    let mut at = 4usize;
    let mut secs: [&[u8]; N_COLUMNS] = [&[]; N_COLUMNS];
    for s in &mut secs {
        let len = take_varint(bytes, &mut at)? as usize;
        if len > bytes.len() - at {
            return Err(CodecError::Truncated);
        }
        *s = &bytes[at..at + len];
        at += len;
    }
    if at != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - at));
    }
    Ok(secs)
}

/// The encoded byte length of each column section of one block, in
/// [`COLUMN_NAMES`] order — the per-column accounting behind
/// `tracedump info` and the store's [`crate::TraceStore::column_stats`].
pub fn section_lens(bytes: &[u8]) -> Result<[usize; N_COLUMNS], CodecError> {
    Ok(sections(bytes)?.map(<[u8]>::len))
}

/// Compresses one block of trace words into the columnar layout. The
/// output decodes with [`decode_block`] given the exact word count.
pub fn encode_block(words: &[u32]) -> Vec<u8> {
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.begin();
        let mut tag_bits = BitWriter::default();
        let mut flag_bits = [
            BitWriter::default(),
            BitWriter::default(),
            BitWriter::default(),
        ];
        let mut miss: [Vec<u8>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut cls = [ClassState::default(); 3];
        let mut hist = 0usize;
        let mut prev_global = 0u32;
        for &w in words {
            let t = word_class(w);
            match s.tag_pred(hist) {
                Some(p) if p == t => tag_bits.push(true),
                _ => {
                    tag_bits.push(false);
                    tag_bits.push2(t);
                }
            }
            s.tag[hist] = (s.gen << 2) | u32::from(t);
            hist = ((hist << 2) | t as usize) & (TAG_SLOTS - 1);

            let c = t as usize;
            let key = if c == 0 { cls[0].prev } else { prev_global };
            let p = predict(s, &cls[c], c, key);
            if p.p1 == Some(w) {
                flag_bits[c].push(true);
            } else {
                flag_bits[c].push(false);
                if w == p.p3 {
                    flag_bits[c].push(true);
                } else {
                    flag_bits[c].push(false);
                    if w == p.p2 {
                        flag_bits[c].push(true);
                    } else {
                        flag_bits[c].push(false);
                        put_varint(&mut miss[c], zigzag32(w.wrapping_sub(p.p3) as i32));
                    }
                }
            }
            update(s, &mut cls[c], c, &p, w);
            prev_global = w;
        }
        let secs: [Vec<u8>; N_COLUMNS] = [
            tag_bits.finish(),
            std::mem::take(&mut flag_bits[0]).finish(),
            std::mem::take(&mut miss[0]),
            std::mem::take(&mut flag_bits[1]).finish(),
            std::mem::take(&mut miss[1]),
            std::mem::take(&mut flag_bits[2]).finish(),
            std::mem::take(&mut miss[2]),
        ];
        let body: usize = secs.iter().map(|s| s.len() + 5).sum();
        let mut out = Vec::with_capacity(4 + body);
        out.extend_from_slice(&[0; 4]);
        for sec in &secs {
            put_varint(&mut out, sec.len() as u64);
            out.extend_from_slice(sec);
        }
        let crc = crc32_bytes(&out[4..]);
        out[..4].copy_from_slice(&crc.to_le_bytes());
        out
    })
}

/// Decodes a columnar block produced by [`encode_block`], appending
/// onto `out`. `n_words` is the block's word count from the store
/// index; every section must be consumed exactly.
pub fn decode_block_into(
    bytes: &[u8],
    n_words: usize,
    out: &mut Vec<u32>,
) -> Result<(), CodecError> {
    let secs = sections(bytes)?;
    // Every word costs at least one tag bit, so the byte length bounds
    // the preallocation for any (untrusted) count.
    out.reserve(n_words.min(bytes.len().saturating_mul(8)));
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.begin();
        let mut tags = BitReader::new(secs[0]);
        let mut flags = [
            BitReader::new(secs[1]),
            BitReader::new(secs[3]),
            BitReader::new(secs[5]),
        ];
        let mut miss_at = [0usize; 3];
        let mut cls = [ClassState::default(); 3];
        let mut hist = 0usize;
        let mut prev_global = 0u32;
        for _ in 0..n_words {
            let t = if tags.bit()? {
                // A forged hit bit against a cold slot has no defined
                // prediction; class 0 keeps decode total (the CRCs
                // reject it long before results are trusted).
                s.tag_pred(hist).unwrap_or(0)
            } else {
                let t = tags.two()?;
                if t > 2 {
                    return Err(CodecError::Overlong);
                }
                t
            };
            s.tag[hist] = (s.gen << 2) | u32::from(t);
            hist = ((hist << 2) | t as usize) & (TAG_SLOTS - 1);

            let c = t as usize;
            let key = if c == 0 { cls[0].prev } else { prev_global };
            let p = predict(s, &cls[c], c, key);
            let w = if flags[c].bit()? {
                // A forged hit bit against a cold exact slot has no
                // defined prediction; the stride-history base keeps
                // decode total (the CRCs reject the block regardless).
                p.p1.unwrap_or(p.p3)
            } else if flags[c].bit()? {
                p.p3
            } else if flags[c].bit()? {
                p.p2
            } else {
                let sec = secs[2 * c + 2];
                let z = take_varint(sec, &mut miss_at[c])?;
                p.p3.wrapping_add(unzigzag32(z) as u32)
            };
            out.push(w);
            update(s, &mut cls[c], c, &p, w);
            prev_global = w;
        }
        if !tags.done() || flags.iter().any(|f| !f.done()) {
            return Err(CodecError::TrailingBytes(1));
        }
        for c in 0..3 {
            if miss_at[c] != secs[2 * c + 2].len() {
                return Err(CodecError::TrailingBytes(
                    secs[2 * c + 2].len() - miss_at[c],
                ));
            }
        }
        Ok(())
    })
}

/// Decodes a columnar block into a fresh vector (allocating form of
/// [`decode_block_into`]).
pub fn decode_block(bytes: &[u8], n_words: usize) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::new();
    decode_block_into(bytes, n_words, &mut out)?;
    Ok(out)
}

/// Computes the block's ASID context runs by decoding *only* the tag
/// and control columns — the projection behind ASID-predicate
/// pushdown. `first_asid` is the context entering the block (from the
/// index); a word's context is the context after applying it, exactly
/// as [`crate::filter_stream`] attributes context switches. The
/// address columns are never touched, so a block with no matching
/// ASID is dismissed for the cost of its control traffic (typically a
/// few bytes per thousand words).
pub fn asid_runs(bytes: &[u8], n_words: usize, first_asid: u8) -> Result<Vec<AsidRun>, CodecError> {
    let secs = sections(bytes)?;
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        s.begin();
        let mut tags = BitReader::new(secs[0]);
        let mut ctl_flags = BitReader::new(secs[1]);
        let mut ctl_miss_at = 0usize;
        let mut ctl = ClassState::default();
        let mut hist = 0usize;
        let mut runs: Vec<AsidRun> = Vec::new();
        let mut asid = first_asid;
        let mut run_start = 0u32;
        for j in 0..n_words {
            let t = if tags.bit()? {
                s.tag_pred(hist).unwrap_or(0)
            } else {
                let t = tags.two()?;
                if t > 2 {
                    return Err(CodecError::Overlong);
                }
                t
            };
            s.tag[hist] = (s.gen << 2) | u32::from(t);
            hist = ((hist << 2) | t as usize) & (TAG_SLOTS - 1);

            if t == 0 {
                // Control column: decode the value, the tag and class-0
                // streams suffice (the control predictor keys on its
                // own previous value, never the address columns).
                let p = predict(s, &ctl, 0, ctl.prev);
                let w = if ctl_flags.bit()? {
                    p.p1.unwrap_or(p.p3)
                } else if ctl_flags.bit()? {
                    p.p3
                } else if ctl_flags.bit()? {
                    p.p2
                } else {
                    let z = take_varint(secs[2], &mut ctl_miss_at)?;
                    p.p3.wrapping_add(unzigzag32(z) as u32)
                };
                update(s, &mut ctl, 0, &p, w);
                if let TraceWord::Ctl(c) = classify(w) {
                    if c.op == CtlOp::CtxSwitch && c.payload != asid {
                        let j = j as u32;
                        if j > run_start {
                            runs.push(AsidRun {
                                start: run_start,
                                len: j - run_start,
                                asid,
                            });
                        }
                        // The switch word itself belongs to the new
                        // context.
                        run_start = j;
                        asid = c.payload;
                    }
                }
            }
        }
        let n = n_words as u32;
        if n > run_start {
            runs.push(AsidRun {
                start: run_start,
                len: n - run_start,
                asid,
            });
        }
        // The tag column must be fully consumed; the address columns
        // were deliberately never read, so only the control sections
        // get the trailing check.
        if !tags.done() {
            return Err(CodecError::TrailingBytes(1));
        }
        Ok(runs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_trace::{ctl, CtlOp};

    fn loopy(n: usize) -> Vec<u32> {
        let mut words = Vec::new();
        words.push(ctl(CtlOp::CtxSwitch, 3));
        for i in 0..n as u32 {
            words.push(0x8003_0100);
            words.push(0x8003_0140);
            words.push(0x0040_0000 + i * 8); // striding user data
            words.push(0x8003_0180);
        }
        words.push(ctl(CtlOp::Eof, 0));
        words
    }

    #[test]
    fn empty_block_round_trips() {
        let bytes = encode_block(&[]);
        assert_eq!(decode_block(&bytes, 0).unwrap(), Vec::<u32>::new());
        assert_eq!(asid_runs(&bytes, 0, 5).unwrap(), Vec::new());
    }

    #[test]
    fn loopy_trace_compresses_past_the_row_codec() {
        let words = loopy(2000);
        let v4 = encode_block(&words);
        let v3 = crate::codec::compress_block(&words);
        assert_eq!(decode_block(&v4, words.len()).unwrap(), words);
        assert!(
            v4.len() < v3.len(),
            "columnar must beat the row codec on loops: {} vs {} bytes",
            v4.len(),
            v3.len()
        );
        // The stride predictor turns the array sweep into flag bits:
        // comfortably under a byte per word overall.
        assert!(
            v4.len() * 2 < words.len(),
            "expected < 0.5 B/word, got {} bytes for {} words",
            v4.len(),
            words.len()
        );
    }

    #[test]
    fn mixed_controls_and_extremes_round_trip() {
        let words = vec![
            ctl(CtlOp::CtxSwitch, 3),
            0x0050_0000,
            0x7fff_fff0,
            ctl(CtlOp::KEnter, 8),
            0x8003_0100,
            0x8030_0004,
            ctl(CtlOp::KExit, 0),
            0x0050_0040,
            0x0000_0000,
            0xffff_ffff,
            0x0000_ffff, // BadCtl range: still class 0
            ctl(CtlOp::Eof, 0),
        ];
        let bytes = encode_block(&words);
        assert_eq!(decode_block(&bytes, words.len()).unwrap(), words);
    }

    #[test]
    fn asid_runs_match_a_classify_walk() {
        let mut words = loopy(50);
        words.push(ctl(CtlOp::CtxSwitch, 7));
        words.extend_from_slice(&[0x0040_0000, 0x0040_0008]);
        words.push(ctl(CtlOp::CtxSwitch, 3));
        words.push(0x8003_0100);
        // A switch to the *current* asid must not split a run.
        words.push(ctl(CtlOp::CtxSwitch, 3));
        words.push(0x8003_0140);
        let bytes = encode_block(&words);
        let runs = asid_runs(&bytes, words.len(), 0).unwrap();
        // Reference: classify walk over the raw words.
        let mut want = Vec::new();
        let mut asid = 0u8;
        for (j, &w) in words.iter().enumerate() {
            if let TraceWord::Ctl(c) = classify(w) {
                if c.op == CtlOp::CtxSwitch {
                    asid = c.payload;
                }
            }
            want.push((j as u32, asid));
        }
        let mut flat = Vec::new();
        for r in &runs {
            for j in r.start..r.start + r.len {
                flat.push((j, r.asid));
            }
        }
        assert_eq!(flat, want);
        // Runs are maximal: consecutive runs change asid.
        for pair in runs.windows(2) {
            assert_ne!(pair[0].asid, pair[1].asid);
            assert_eq!(pair[0].start + pair[0].len, pair[1].start);
        }
    }

    #[test]
    fn corruption_anywhere_is_detected_by_the_encoded_crc() {
        let words = loopy(100);
        let good = encode_block(&words);
        for at in [0, 4, 5, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            let full = decode_block(&bad, words.len());
            let proj = asid_runs(&bad, words.len(), 0);
            assert!(full.is_err(), "full decode must fail at {at}");
            assert!(proj.is_err(), "projection must fail at {at}");
            if at >= 4 {
                assert!(
                    matches!(full, Err(CodecError::EncodedCrcMismatch { .. })),
                    "flip at {at} inside the sections must be a CRC error"
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let words = loopy(100);
        let good = encode_block(&words);
        for cut in [0, 3, 4, good.len() / 2, good.len() - 1] {
            assert!(
                decode_block(&good[..cut], words.len()).is_err(),
                "cut={cut}"
            );
        }
        // Undercounting words leaves sections unconsumed.
        assert!(matches!(
            decode_block(&good, words.len() - 10),
            Err(CodecError::TrailingBytes(_))
        ));
    }

    #[test]
    fn section_lens_account_for_every_byte() {
        let words = loopy(500);
        let bytes = encode_block(&words);
        let lens = section_lens(&bytes).unwrap();
        let body: usize = lens.iter().sum();
        // 4 CRC bytes + one varint length per section + the sections.
        let header: usize = 4 + {
            let mut n = 0;
            let mut probe = Vec::new();
            for l in lens {
                probe.clear();
                put_varint(&mut probe, l as u64);
                n += probe.len();
            }
            n
        };
        assert_eq!(header + body, bytes.len());
        // The loop's data addresses land in the user columns, the
        // bb-ids in the kernel columns; both flag columns are bits.
        assert!(lens[5] > 0 && lens[0] > 0);
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        let mut x = 0x1234_5678_9abc_def0u64;
        for len in 0..200usize {
            let mut junk = vec![0u8; len];
            for b in &mut junk {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (x >> 56) as u8;
            }
            let _ = decode_block(&junk, len * 8);
            let _ = asid_runs(&junk, len * 8, 0);
            let _ = section_lens(&junk);
        }
    }
}
