//! Observability for the trace store: once-per-run gauges describing
//! the last store built or loaded and the last farm replay, plus
//! rare-path counters for integrity failures.
//!
//! Follows the trace path's split (see `wrl-trace`'s `obs` module):
//! sizes and ratios are exact properties of a finished store and are
//! exported once, while CRC and codec failures are §4.3-style
//! defensive events counted the moment they are detected (a healthy
//! system records all zeros). Rows in `docs/METRICS.md` are kept
//! honest by the `metrics_doc_sync` test.

use std::sync::Arc;

use wrl_obs::{counter, gauge, global, histogram, Counter, Gauge, Histogram};

use crate::container::{StoreError, TraceStore};
use crate::farm::FarmReport;

/// Gauges, histograms and error tallies for the store and farm.
#[derive(Clone)]
pub struct StoreObs {
    blocks: Arc<Gauge>,
    raw_bytes: Arc<Gauge>,
    compressed_bytes: Arc<Gauge>,
    block_comp_bytes: Arc<Histogram>,
    crc_errors: Arc<Counter>,
    codec_errors: Arc<Counter>,
    farm_desyncs: Arc<Counter>,
    farm_workers: Arc<Gauge>,
    farm_sinks: Arc<Gauge>,
    farm_batches: Arc<Gauge>,
    farm_words: Arc<Gauge>,
}

impl StoreObs {
    /// Registers every `store.*` metric in the global registry.
    pub fn register() -> StoreObs {
        let r = global();
        StoreObs {
            blocks: gauge!(
                r,
                "store.blocks",
                "blocks",
                "§3.2",
                "Block count of the last store built or loaded."
            ),
            raw_bytes: gauge!(
                r,
                "store.raw_bytes",
                "bytes",
                "§3.2",
                "Uncompressed word-stream size of the last store."
            ),
            compressed_bytes: gauge!(
                r,
                "store.compressed_bytes",
                "bytes",
                "§3.2",
                "Compressed block-area size of the last store."
            ),
            block_comp_bytes: histogram!(
                r,
                "store.block.comp_bytes",
                "bytes",
                "§3.2",
                "Per-block compressed sizes of the last store."
            ),
            crc_errors: counter!(
                r,
                "store.crc_errors",
                "errors",
                "§4.3",
                "Blocks whose decoded words failed their index CRC."
            ),
            codec_errors: counter!(
                r,
                "store.codec_errors",
                "errors",
                "§4.3",
                "Blocks whose compressed bytes failed to decode."
            ),
            farm_desyncs: counter!(
                r,
                "store.farm.desyncs",
                "errors",
                "§4.3",
                "Farm workers that fell out of step with the feeder (dropped items)."
            ),
            farm_workers: gauge!(
                r,
                "store.farm.workers",
                "workers",
                "§3.4",
                "Worker threads used by the last farm replay."
            ),
            farm_sinks: gauge!(
                r,
                "store.farm.sinks",
                "sinks",
                "§3.4",
                "Analysis sinks fed by the last farm replay."
            ),
            farm_batches: gauge!(
                r,
                "store.farm.batches",
                "batches",
                "§3.4",
                "Event batches broadcast by the last shared-parse replay."
            ),
            farm_words: gauge!(
                r,
                "store.farm.words",
                "words",
                "§3.4",
                "Trace words replayed per pass by the last farm replay."
            ),
        }
    }

    /// Exports one store's shape: block count, raw and compressed
    /// sizes, and the per-block compressed-size distribution.
    pub fn export_store(&self, s: &TraceStore) {
        self.blocks.set(s.n_blocks() as i64);
        self.raw_bytes.set(s.raw_bytes() as i64);
        self.compressed_bytes.set(s.compressed_bytes() as i64);
        for i in 0..s.n_blocks() {
            self.block_comp_bytes
                .record(u64::from(s.block_meta(i).comp_len));
        }
    }

    /// Exports one farm replay's shape.
    pub fn export_farm(&self, r: &FarmReport) {
        self.farm_workers.set(r.workers as i64);
        self.farm_sinks.set(r.sinks as i64);
        self.farm_batches.set(r.batches as i64);
        self.farm_words.set(r.words as i64);
    }

    /// Bumps the matching integrity counter for a detected error
    /// (framing and I/O errors have no counter — they abort loads
    /// rather than accumulating).
    pub fn tally_error(&self, e: &StoreError) {
        match e {
            StoreError::CrcMismatch { .. } => self.crc_errors.inc(),
            StoreError::BlockCodec { .. } => self.codec_errors.inc(),
            StoreError::FarmDesync { .. } => self.farm_desyncs.inc(),
            _ => {}
        }
    }
}

impl FarmReport {
    /// Registers (idempotently) and sets the `store.farm.*` gauges
    /// from this replay.
    pub fn export_obs(&self) {
        StoreObs::register().export_farm(self);
    }
}

impl TraceStore {
    /// Registers (idempotently) and sets the `store.*` size gauges
    /// from this store.
    pub fn export_obs(&self) {
        StoreObs::register().export_store(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_trace::TraceArchive;

    #[test]
    fn export_sets_store_gauges() {
        let a = TraceArchive {
            words: vec![0x8003_0100; 500],
            ..TraceArchive::default()
        };
        let s = TraceStore::from_archive(&a, 64);
        s.export_obs();
        if wrl_obs::recording() {
            let snap = wrl_obs::global().snapshot();
            let blocks = snap
                .metrics
                .iter()
                .find(|m| m.desc.name == "store.blocks")
                .expect("registered");
            match blocks.value {
                wrl_obs::ValueSnap::Gauge { value, .. } => assert_eq!(value, 8),
                _ => panic!("gauge expected"),
            }
        }
    }

    #[test]
    fn crc_errors_are_tallied() {
        let obs = StoreObs::register();
        let before = obs.crc_errors.get();
        obs.tally_error(&StoreError::CrcMismatch {
            block: 0,
            want: 1,
            got: 2,
        });
        obs.tally_error(&StoreError::Malformed("not counted"));
        if wrl_obs::recording() {
            assert_eq!(obs.crc_errors.get(), before + 1);
        }
    }
}
