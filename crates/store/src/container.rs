//! The block-structured, seekable trace container (archive formats
//! version 3 and the columnar version 4; versions 1 and 2 still
//! load).
//!
//! A version-1 `W3KTRACE` archive stores raw words; this container
//! keeps the identical table section but chunks the word stream into
//! fixed-size blocks, compresses each ([`crate::codec`] for the v3
//! row layout, [`crate::column`] for the v4 columnar layout), and
//! appends a footer index so any block can be located and decoded
//! without touching the others:
//!
//! ```text
//! "W3KTRACE" magic, u32 version = 3 | 4, u32 block_words
//! table section (byte-identical to v1's)
//! u64 n_words
//! compressed blocks, concatenated
//! index: { u64 offset, u32 comp_len, u32 words, u32 crc32,
//!          u8 first_asid, u8 last_asid,
//!          u8 flags, u64 first_word, u32 min_daddr, u32 max_daddr
//!          [, u64 asid_mask — v4 only]
//!        }  × n_blocks
//! u32 n_blocks, u64 index_pos, u32 meta_crc, "W3KSIDX\0" tail magic
//! ```
//!
//! The trailer is fixed-size and at the very end, so a reader seeks
//! straight to the index, then decodes blocks independently (and in
//! parallel — see [`crate::farm`]). Each index entry carries the
//! block's CRC-32 over its *decoded* words (end-to-end: catches codec
//! bugs and at-rest corruption alike) and the ASID context at the
//! block's first and last word, maintained by scanning context-switch
//! control words at write time. `meta_crc` is a CRC-32 over every
//! byte *outside* the block area — header, tables, word count, index
//! and the trailer's first two fields — so corruption of the decoding
//! metadata is as detectable as corruption of the blocks themselves
//! (a flipped table byte would otherwise decode to silently wrong
//! events, the one outcome the §4.3 discipline forbids).
//!
//! Version 3 widens each index entry with query summaries, computed
//! at write time by running the real parser over the stream: the
//! block's global word offset (`first_word`), whether the block
//! contains any context-switch control word, and the min/max data
//! address among the words the parser consumed as memory records.
//! These let a [`Predicate`] prove most blocks irrelevant *from the
//! index alone* — the predicate-pushdown behind [`TraceStore::query`]
//! and the `wrl-serve` trace service. Version-2 entries (22 bytes,
//! no summaries) are read by synthesising `first_word` cumulatively
//! and leaving the summary flags clear, which lawfully disables
//! summary-based skipping: a predicate over a v2 store decodes more
//! blocks but selects the identical words.
//!
//! Version 4 keeps the container framing and widens each entry once
//! more with a 64-bit **ASID zonemap** (`asid_mask`): bit `a & 63` is
//! set for every ASID context `a` occurring in the block. The map is
//! exact for ASIDs below 64 and sound above (a clear bit *proves*
//! absence; a set bit merely fails to prove it), so
//! [`TraceStore::matching_blocks`] prunes on the mask even for blocks
//! that do contain context switches — the case v3's single-ASID proof
//! cannot touch. Blocks are columnar ([`crate::column`]): an ASID
//! predicate that survives the zonemap decodes only the tag and
//! control columns to locate matching row runs, and materialises
//! address words only for blocks with actual hits.

use std::io;
use std::sync::Arc;

use crate::codec::{compress_block, crc32_words, decompress_block_into, CodecError, Crc32};
use crate::column;
use wrl_trace::archive::{decode_table_section, encode_table_section, MAGIC};
use wrl_trace::format::{classify, CtlOp, TraceWord};
use wrl_trace::{ArchiveError, BbTable, TraceArchive, TraceParser};

/// Store format version of the row-coded layout (within the
/// `W3KTRACE` magic).
pub const STORE_VERSION: u32 = 3;
/// Store format version of the columnar layout.
pub const STORE_VERSION_V4: u32 = 4;
/// Trailing magic closing the footer index.
pub const TAIL_MAGIC: &[u8; 8] = b"W3KSIDX\0";
/// Default words per block. 4096 words (16 KB raw) amortises per-block
/// model warm-up while keeping parallel decode granular.
pub const DEFAULT_BLOCK_WORDS: usize = 4096;

/// Encoded size of one v3 footer index entry.
pub const INDEX_ENTRY_BYTES: usize = 8 + 4 + 4 + 4 + 1 + 1 + 1 + 8 + 4 + 4;
/// Encoded size of one legacy v2 footer index entry (no summaries).
pub const INDEX_ENTRY_BYTES_V2: usize = 8 + 4 + 4 + 4 + 1 + 1;
/// Encoded size of one v4 footer index entry (v3's plus the ASID
/// zonemap).
pub const INDEX_ENTRY_BYTES_V4: usize = INDEX_ENTRY_BYTES + 8;
/// Encoded size of the fixed trailer: n_blocks, index_pos, meta_crc,
/// tail magic.
pub const TRAILER_BYTES: usize = 4 + 8 + 4 + 8;

/// Errors while reading or verifying a store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The table section or v1 fallback failed to decode.
    Archive(ArchiveError),
    /// Structural damage to the container framing.
    Malformed(&'static str),
    /// The file is a `W3KTRACE` but none of v1 through v4.
    UnsupportedVersion(u32),
    /// One block's compressed bytes failed to decode.
    BlockCodec {
        /// Index of the damaged block.
        block: usize,
        /// The codec's diagnosis.
        err: CodecError,
    },
    /// One block decoded but its words hash to the wrong CRC.
    CrcMismatch {
        /// Index of the damaged block.
        block: usize,
        /// CRC recorded in the index.
        want: u32,
        /// CRC of the decoded words.
        got: u32,
    },
    /// The container metadata (header, tables, index, trailer) hashes
    /// to the wrong CRC — the decoding tables or index cannot be
    /// trusted, even though the framing parsed.
    MetaCrcMismatch {
        /// CRC recorded in the trailer.
        want: u32,
        /// CRC of the metadata bytes as read.
        got: u32,
    },
    /// A farm replay worker fell out of step with the feeder: it
    /// applied a different number of event batches (or decoded
    /// blocks) than were produced, so its sinks cannot be trusted.
    FarmDesync {
        /// Index of the desynchronised worker.
        worker: usize,
        /// Items the worker actually applied.
        applied: u64,
        /// Items the worker was expected to apply.
        expected: u64,
    },
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ArchiveError> for StoreError {
    fn from(e: ArchiveError) -> Self {
        StoreError::Archive(e)
    }
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o: {e}"),
            StoreError::Archive(e) => write!(f, "{e}"),
            StoreError::Malformed(what) => write!(f, "malformed store: {what}"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported store version {v}"),
            StoreError::BlockCodec { block, err } => {
                write!(f, "block {block}: {err}")
            }
            StoreError::CrcMismatch { block, want, got } => {
                write!(
                    f,
                    "block {block}: CRC mismatch (index {want:#010x}, decoded {got:#010x})"
                )
            }
            StoreError::MetaCrcMismatch { want, got } => {
                write!(
                    f,
                    "metadata CRC mismatch (trailer {want:#010x}, computed {got:#010x})"
                )
            }
            StoreError::FarmDesync {
                worker,
                applied,
                expected,
            } => {
                write!(
                    f,
                    "farm worker {worker} applied {applied} of {expected} items"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Per-block index entry (the footer's contents, decoded).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Byte offset of the compressed block within the block area.
    pub offset: u64,
    /// Compressed length in bytes.
    pub comp_len: u32,
    /// Decoded word count.
    pub words: u32,
    /// CRC-32 over the decoded words (little-endian byte view).
    pub crc: u32,
    /// ASID context in effect at the block's first word.
    pub first_asid: u8,
    /// ASID context in effect after the block's last word.
    pub last_asid: u8,
    /// Summary flags ([`BlockMeta::FLAG_SUMMARY`] and friends). All
    /// clear for blocks loaded from a v2 store, which lawfully
    /// disables summary-based skipping.
    pub flags: u8,
    /// Global word offset of the block's first word — the block
    /// covers trace-word offsets `first_word .. first_word + words`.
    pub first_word: u64,
    /// Minimum data address among the block's memory-record words
    /// (meaningful only when [`BlockMeta::FLAG_DADDR`] is set).
    pub min_daddr: u32,
    /// Maximum data address among the block's memory-record words
    /// (meaningful only when [`BlockMeta::FLAG_DADDR`] is set).
    pub max_daddr: u32,
    /// Per-ASID zonemap (v4 entries only; zero otherwise): bit
    /// `a & 63` is set for every ASID context `a` of some word in the
    /// block. Meaningful only when [`BlockMeta::FLAG_COLUMNAR`] is
    /// set — a clear bit proves the ASID absent.
    pub asid_mask: u64,
}

impl BlockMeta {
    /// Summaries were computed at write time; without this flag a
    /// reader must assume nothing about the block's contents.
    pub const FLAG_SUMMARY: u8 = 1;
    /// The block contains at least one context-switch control word,
    /// so its words may belong to more than one ASID.
    pub const FLAG_CTX_SWITCH: u8 = 1 << 1;
    /// The block contains at least one memory-record word, and
    /// `min_daddr`/`max_daddr` bound them.
    pub const FLAG_DADDR: u8 = 1 << 2;
    /// The block's bytes are the columnar [`crate::column`] layout
    /// (v4), and `asid_mask` is a valid zonemap. v4 writers set this
    /// on every entry; a v3/v2 reader never sees it (the decoder
    /// rejects the bit in pre-v4 indexes rather than let a forged
    /// zonemap of zero prune every block).
    pub const FLAG_COLUMNAR: u8 = 1 << 3;

    /// Whether write-time summaries are present (v3 stores).
    pub fn has_summary(&self) -> bool {
        self.flags & Self::FLAG_SUMMARY != 0
    }

    /// The half-open range of global trace-word offsets this block
    /// covers.
    pub fn word_range(&self) -> core::ops::Range<u64> {
        self.first_word..self.first_word + u64::from(self.words)
    }

    /// The inclusive data-address bounds of the block's memory
    /// records, if summaries recorded any.
    pub fn daddr_range(&self) -> Option<(u32, u32)> {
        (self.flags & Self::FLAG_DADDR != 0).then_some((self.min_daddr, self.max_daddr))
    }

    /// `true` when the index *proves* every word in this block sits in
    /// the single ASID context `first_asid`. Requires write-time
    /// summaries; v2 blocks conservatively answer `false`.
    pub fn single_asid(&self) -> Option<u8> {
        (self.has_summary() && self.flags & Self::FLAG_CTX_SWITCH == 0).then_some(self.first_asid)
    }
}

/// How a store's blocks are coded on disk and in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockFormat {
    /// Row layout: one interleaved token stream per block
    /// ([`crate::codec`], archive version 3).
    Row,
    /// Columnar layout: per-class column sections per block
    /// ([`crate::column`], archive version 4).
    Columnar,
}

impl BlockFormat {
    /// The `W3KTRACE` version number this block format encodes as.
    pub fn version(self) -> u32 {
        match self {
            BlockFormat::Row => STORE_VERSION,
            BlockFormat::Columnar => STORE_VERSION_V4,
        }
    }
}

/// A loaded trace store: decoding tables plus independently decodable
/// compressed blocks. Cheap to share across threads behind an [`Arc`]
/// — workers decode blocks concurrently with no coordination.
#[derive(Clone, Debug)]
pub struct TraceStore {
    /// The kernel's basic-block table.
    pub kernel_table: BbTable,
    /// Per-ASID user tables.
    pub user_tables: Vec<(u8, BbTable)>,
    /// Total trace words across all blocks.
    pub n_words: u64,
    /// Nominal words per block (the last block may be short).
    pub block_words: u32,
    /// The footer index.
    index: Vec<BlockMeta>,
    /// The concatenated compressed block area.
    blocks: Arc<Vec<u8>>,
    /// The block coding in force for every block of this store.
    format: BlockFormat,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> Result<u32, StoreError> {
    buf.get(at..at + 4)
        .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
        .ok_or(StoreError::Malformed("truncated"))
}

fn get_u64(buf: &[u8], at: usize) -> Result<u64, StoreError> {
    buf.get(at..at + 8)
        .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
        .ok_or(StoreError::Malformed("truncated"))
}

/// A [`wrl_trace::TraceSink`] that discards every event — the summary
/// scan in [`TraceStore::from_archive`] only wants the parser's
/// *positional* judgement (which words are memory records), not the
/// references themselves.
struct NullSink;

impl wrl_trace::TraceSink for NullSink {
    fn iref(&mut self, _vaddr: u32, _space: wrl_trace::Space, _idle: bool) {}
    fn dref(
        &mut self,
        _vaddr: u32,
        _store: bool,
        _width: wrl_isa::Width,
        _space: wrl_trace::Space,
    ) {
    }
}

impl TraceStore {
    /// Compresses an archive's word stream into a store, chunking at
    /// `block_words` (clamped to ≥ 1) words per block.
    ///
    /// Besides compressing, this computes each block's index
    /// summaries by running the real parser over the stream with a
    /// discarding sink: whether a word is a basic-block id or a data
    /// address is *positional* (§3.3 — data words follow their bb-id
    /// according to the static tables), so the only sound way to
    /// bound a block's data addresses is to let the parser consume
    /// the words. A word is a memory record exactly when the parse
    /// advances `mem_records`, and its raw value *is* the data
    /// address the parser hands to the sink.
    pub fn from_archive(a: &TraceArchive, block_words: usize) -> TraceStore {
        TraceStore::from_archive_with(a, block_words, BlockFormat::Row)
    }

    /// [`TraceStore::from_archive`] with an explicit block coding —
    /// [`BlockFormat::Columnar`] builds a v4 store with per-class
    /// columns and per-ASID zonemaps in the index.
    pub fn from_archive_with(
        a: &TraceArchive,
        block_words: usize,
        format: BlockFormat,
    ) -> TraceStore {
        let block_words = block_words.max(1);
        let mut index = Vec::new();
        let mut blocks = Vec::new();
        let mut asid = 0u8;
        let mut first_word = 0u64;
        let mut parser = a.parser();
        let mut mem_seen = parser.stats.mem_records;
        for chunk in a.words.chunks(block_words) {
            let first_asid = asid;
            let mut flags = BlockMeta::FLAG_SUMMARY;
            let mut min_daddr = 0u32;
            let mut max_daddr = 0u32;
            let mut asid_mask = 0u64;
            for &w in chunk {
                if let TraceWord::Ctl(c) = classify(w) {
                    if c.op == CtlOp::CtxSwitch {
                        asid = c.payload;
                        flags |= BlockMeta::FLAG_CTX_SWITCH;
                    }
                }
                // A word's context is the context after applying it
                // (the switch word belongs to its target ASID), so the
                // zonemap ORs the post-word context per word.
                asid_mask |= 1 << (asid & 63);
                parser.push_word(w, &mut NullSink);
                if parser.stats.mem_records != mem_seen {
                    mem_seen = parser.stats.mem_records;
                    if flags & BlockMeta::FLAG_DADDR == 0 {
                        (min_daddr, max_daddr) = (w, w);
                        flags |= BlockMeta::FLAG_DADDR;
                    } else {
                        min_daddr = min_daddr.min(w);
                        max_daddr = max_daddr.max(w);
                    }
                }
            }
            let comp = match format {
                BlockFormat::Row => compress_block(chunk),
                BlockFormat::Columnar => {
                    flags |= BlockMeta::FLAG_COLUMNAR;
                    column::encode_block(chunk)
                }
            };
            index.push(BlockMeta {
                offset: blocks.len() as u64,
                comp_len: comp.len() as u32,
                words: chunk.len() as u32,
                crc: crc32_words(chunk),
                first_asid,
                last_asid: asid,
                flags,
                first_word,
                min_daddr,
                max_daddr,
                asid_mask: if format == BlockFormat::Columnar {
                    asid_mask
                } else {
                    0
                },
            });
            blocks.extend_from_slice(&comp);
            first_word += chunk.len() as u64;
        }
        TraceStore {
            kernel_table: a.kernel_table.clone(),
            user_tables: a.user_tables.clone(),
            n_words: a.words.len() as u64,
            block_words: block_words as u32,
            index,
            blocks: Arc::new(blocks),
            format,
        }
    }

    /// The block coding of this store.
    pub fn format(&self) -> BlockFormat {
        self.format
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.index.len()
    }

    /// The index entry for one block.
    pub fn block_meta(&self, i: usize) -> &BlockMeta {
        &self.index[i]
    }

    /// Compressed size of the block area in bytes.
    pub fn compressed_bytes(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Raw (uncompressed) size of the word stream in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.n_words * 4
    }

    /// The compressed bytes of one block, exactly as stored — the raw
    /// payload the `wrl-serve` block-range fetch ships over the wire
    /// (the client decompresses and checks the index CRC itself, so
    /// the end-to-end integrity guarantee survives the network hop).
    pub fn block_bytes(&self, i: usize) -> Result<&[u8], StoreError> {
        let m = self
            .index
            .get(i)
            .ok_or(StoreError::Malformed("block index out of range"))?;
        self.blocks
            .get(m.offset as usize..(m.offset + u64::from(m.comp_len)) as usize)
            .ok_or(StoreError::Malformed("block range outside block area"))
    }

    /// Decodes one block, verifying its CRC. Blocks decode
    /// independently; this is the farm workers' entry point and is
    /// safe to call from many threads at once.
    pub fn decode_block(&self, i: usize) -> Result<Vec<u32>, StoreError> {
        let mut out = Vec::new();
        self.decode_blocks_into(i..i + 1, &mut out)?;
        Ok(out)
    }

    /// Batch-decodes a run of consecutive blocks, appending their
    /// words onto `out` and verifying every CRC — the whole-file
    /// reading primitive: one output buffer, no per-block allocation,
    /// and (for v4) the codec's model tables reused across the run.
    pub fn decode_blocks_into(
        &self,
        range: core::ops::Range<usize>,
        out: &mut Vec<u32>,
    ) -> Result<(), StoreError> {
        for i in range {
            let m = *self
                .index
                .get(i)
                .ok_or(StoreError::Malformed("block index out of range"))?;
            let bytes = self.block_bytes(i)?;
            let start = out.len();
            match self.format {
                BlockFormat::Row => decompress_block_into(bytes, m.words as usize, out),
                BlockFormat::Columnar => column::decode_block_into(bytes, m.words as usize, out),
            }
            .map_err(|err| StoreError::BlockCodec { block: i, err })?;
            let got = crc32_words(&out[start..]);
            if got != m.crc {
                return Err(StoreError::CrcMismatch {
                    block: i,
                    want: m.crc,
                    got,
                });
            }
        }
        Ok(())
    }

    /// A whole-file batch reader: yields each block's words in stream
    /// order from one reused buffer (see [`BlockReader`]).
    pub fn block_reader(&self) -> BlockReader<'_> {
        BlockReader {
            store: self,
            next: 0,
            buf: Vec::new(),
        }
    }

    /// Decompresses the whole word stream (verifying every CRC).
    pub fn words(&self) -> Result<Vec<u32>, StoreError> {
        // Valid blocks carry at most one word per compressed byte (v3)
        // or eight (v4, one tag bit per word), so the block area
        // bounds the preallocation for any input.
        let cap = match self.format {
            BlockFormat::Row => self.blocks.len(),
            BlockFormat::Columnar => self.blocks.len().saturating_mul(8),
        };
        let mut out = Vec::with_capacity((self.n_words as usize).min(cap));
        self.decode_blocks_into(0..self.n_blocks(), &mut out)?;
        Ok(out)
    }

    /// Per-column encoded-byte totals across every block — `None` for
    /// row-coded stores, which have no columns to account. The
    /// remainder of the block area (per-block CRCs and section length
    /// prefixes) is reported as `overhead`.
    pub fn column_stats(&self) -> Result<Option<ColumnStats>, StoreError> {
        if self.format != BlockFormat::Columnar {
            return Ok(None);
        }
        let mut stats = ColumnStats {
            section_bytes: [0; column::N_COLUMNS],
            overhead_bytes: 0,
        };
        for i in 0..self.n_blocks() {
            let bytes = self.block_bytes(i)?;
            let lens = column::section_lens(bytes)
                .map_err(|err| StoreError::BlockCodec { block: i, err })?;
            let mut body = 0u64;
            for (total, l) in stats.section_bytes.iter_mut().zip(lens) {
                *total += l as u64;
                body += l as u64;
            }
            stats.overhead_bytes += bytes.len() as u64 - body;
        }
        Ok(Some(stats))
    }

    /// Materialises a v1-style in-memory archive (tables + raw words).
    pub fn to_archive(&self) -> Result<TraceArchive, StoreError> {
        Ok(TraceArchive {
            kernel_table: self.kernel_table.clone(),
            user_tables: self.user_tables.clone(),
            words: self.words()?,
        })
    }

    /// Builds a parser wired with this store's tables.
    pub fn parser(&self) -> TraceParser {
        let mut p = TraceParser::new(Arc::new(self.kernel_table.clone()));
        for (asid, t) in &self.user_tables {
            p.set_user_table(*asid, Arc::new(t.clone()));
        }
        p
    }

    /// Encodes the store to bytes (a version-3 or version-4
    /// `W3KTRACE` file, per [`TraceStore::format`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.blocks.len() + 4096);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, self.format.version());
        put_u32(&mut out, self.block_words);
        encode_table_section(&mut out, &self.kernel_table, &self.user_tables);
        put_u64(&mut out, self.n_words);
        let blocks_at = out.len();
        out.extend_from_slice(&self.blocks);
        let index_pos = out.len() as u64;
        for m in &self.index {
            put_u64(&mut out, m.offset);
            put_u32(&mut out, m.comp_len);
            put_u32(&mut out, m.words);
            put_u32(&mut out, m.crc);
            out.push(m.first_asid);
            out.push(m.last_asid);
            out.push(m.flags);
            put_u64(&mut out, m.first_word);
            put_u32(&mut out, m.min_daddr);
            put_u32(&mut out, m.max_daddr);
            if self.format == BlockFormat::Columnar {
                put_u64(&mut out, m.asid_mask);
            }
        }
        put_u32(&mut out, self.index.len() as u32);
        put_u64(&mut out, index_pos);
        // Metadata CRC: everything except the block area (whose
        // integrity the per-block CRCs already carry), up to and
        // including the trailer's n_blocks and index_pos fields.
        let mut crc = Crc32::new();
        crc.update(&out[..blocks_at])
            .update(&out[index_pos as usize..]);
        put_u32(&mut out, crc.finish());
        out.extend_from_slice(TAIL_MAGIC);
        out
    }

    /// Decodes a version-4, version-3 or version-2 store from bytes
    /// (a v2 index has no summaries; `first_word` is synthesised
    /// cumulatively and the summary flags stay clear). For transparent
    /// loading of any version, v1 included, use
    /// [`TraceStore::decode_any`].
    pub fn decode(buf: &[u8]) -> Result<TraceStore, StoreError> {
        if buf.len() < 16 || &buf[..8] != MAGIC {
            return Err(StoreError::Malformed("bad magic"));
        }
        let version = get_u32(buf, 8)?;
        let entry_bytes = match version {
            2 => INDEX_ENTRY_BYTES_V2,
            STORE_VERSION => INDEX_ENTRY_BYTES,
            STORE_VERSION_V4 => INDEX_ENTRY_BYTES_V4,
            _ => return Err(StoreError::UnsupportedVersion(version)),
        };
        let format = if version == STORE_VERSION_V4 {
            BlockFormat::Columnar
        } else {
            BlockFormat::Row
        };
        let block_words = get_u32(buf, 12)?;
        if block_words == 0 {
            return Err(StoreError::Malformed("zero block size"));
        }
        let (kernel_table, user_tables, used) = decode_table_section(&buf[16..])?;
        let body = 16 + used;
        let n_words = get_u64(buf, body)?;
        let blocks_at = body + 8;

        // Seek to the fixed-size trailer for the index.
        if buf.len() < blocks_at + TRAILER_BYTES {
            return Err(StoreError::Malformed("truncated"));
        }
        let tail_at = buf.len() - TRAILER_BYTES;
        if &buf[buf.len() - 8..] != TAIL_MAGIC {
            return Err(StoreError::Malformed("bad tail magic"));
        }
        let n_blocks = get_u32(buf, tail_at)? as usize;
        let index_pos = get_u64(buf, tail_at + 4)? as usize;
        if index_pos < blocks_at
            || index_pos > tail_at
            || tail_at - index_pos != n_blocks * entry_bytes
        {
            return Err(StoreError::Malformed("index bounds disagree with trailer"));
        }
        // Verify the metadata CRC before trusting the index or the
        // already-decoded tables: the per-block CRCs cover only the
        // block area, so without this a metadata flip could decode to
        // silently wrong events.
        let meta_crc = get_u32(buf, tail_at + 12)?;
        let mut crc = Crc32::new();
        crc.update(&buf[..blocks_at])
            .update(&buf[index_pos..tail_at + 12]);
        let got = crc.finish();
        if got != meta_crc {
            return Err(StoreError::MetaCrcMismatch {
                want: meta_crc,
                got,
            });
        }
        let blocks_len = (index_pos - blocks_at) as u64;
        let mut index = Vec::with_capacity(n_blocks);
        let mut at = index_pos;
        let mut total_words = 0u64;
        for _ in 0..n_blocks {
            let mut m = BlockMeta {
                offset: get_u64(buf, at)?,
                comp_len: get_u32(buf, at + 8)?,
                words: get_u32(buf, at + 12)?,
                crc: get_u32(buf, at + 16)?,
                first_asid: buf[at + 20],
                last_asid: buf[at + 21],
                flags: 0,
                first_word: total_words,
                min_daddr: 0,
                max_daddr: 0,
                asid_mask: 0,
            };
            if version >= 3 {
                m.flags = buf[at + 22];
                m.first_word = get_u64(buf, at + 23)?;
                m.min_daddr = get_u32(buf, at + 31)?;
                m.max_daddr = get_u32(buf, at + 35)?;
                // The word offsets must tile the stream exactly, or
                // window pushdown would skip the wrong blocks.
                if m.first_word != total_words {
                    return Err(StoreError::Malformed(
                        "index word offsets do not tile the stream",
                    ));
                }
                if m.daddr_range().is_some_and(|(lo, hi)| lo > hi) {
                    return Err(StoreError::Malformed("inverted data-address summary"));
                }
            }
            // Version-specific flag discipline: a v3 entry carrying
            // FLAG_COLUMNAR (with its implicit all-zero zonemap) would
            // silently prune every block from ASID queries, so pre-v4
            // readers *reject* the bit; a v4 entry must carry it, so
            // the block decoder and the zonemap agree on the layout.
            if version == STORE_VERSION_V4 {
                m.asid_mask = get_u64(buf, at + 39)?;
                if m.flags & BlockMeta::FLAG_COLUMNAR == 0 {
                    return Err(StoreError::Malformed("v4 entry without columnar flag"));
                }
                if m.flags & !0x0f != 0 {
                    return Err(StoreError::Malformed("unknown flag bits in v4 entry"));
                }
            } else if m.flags & !0x07 != 0 {
                return Err(StoreError::Malformed("unknown flag bits in pre-v4 entry"));
            }
            match m.offset.checked_add(u64::from(m.comp_len)) {
                Some(end) if end <= blocks_len => {}
                _ => return Err(StoreError::Malformed("block range outside block area")),
            }
            // Bound the word count by the compressed length so every
            // decode allocation is bounded by the file size: a row
            // block costs at least one byte per word, a columnar block
            // at least one tag *bit* per word.
            let word_bound = match format {
                BlockFormat::Row => u64::from(m.comp_len),
                BlockFormat::Columnar => u64::from(m.comp_len) * 8,
            };
            if u64::from(m.words) > word_bound {
                return Err(StoreError::Malformed(
                    "block word count exceeds compressed bytes",
                ));
            }
            total_words += u64::from(m.words);
            index.push(m);
            at += entry_bytes;
        }
        if total_words != n_words {
            return Err(StoreError::Malformed(
                "index word counts disagree with header",
            ));
        }
        Ok(TraceStore {
            kernel_table,
            user_tables,
            n_words,
            block_words,
            index,
            blocks: Arc::new(buf[blocks_at..index_pos].to_vec()),
            format,
        })
    }

    /// Decodes any archive version: v4, v3 and v2 natively, v1 by decoding
    /// the raw words and compressing them in memory (so every caller
    /// gets a block-structured store regardless of the on-disk format,
    /// and `tests/data/golden.w3kt` keeps loading forever).
    pub fn decode_any(buf: &[u8]) -> Result<TraceStore, StoreError> {
        match TraceStore::decode(buf) {
            Ok(s) => Ok(s),
            Err(StoreError::UnsupportedVersion(1)) => Ok(TraceStore::from_archive(
                &TraceArchive::decode(buf)?,
                DEFAULT_BLOCK_WORDS,
            )),
            Err(e) => Err(e),
        }
    }

    /// Saves the store to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Loads a trace from a file, accepting v1 through v4 archives.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<TraceStore, StoreError> {
        TraceStore::decode_any(&std::fs::read(path)?)
    }

    /// A new store holding only the named blocks (strictly ascending
    /// global ids) — the shard-extraction primitive of `wrl-fabric`.
    ///
    /// Compressed bytes, CRCs, ASID summaries and zonemaps are copied
    /// verbatim, so every per-block proof the index carries stays
    /// valid; the `first_word` offsets are re-tiled to shard-local
    /// coordinates (the decoder insists offsets tile the stream) and
    /// a fabric coordinator translates query windows between global
    /// and shard-local positions from its manifest. Critically,
    /// `first_asid` keeps the *global* entry context, so a shard
    /// filters ASIDs exactly as the whole store would.
    pub fn subset(&self, ids: &[usize]) -> Result<TraceStore, StoreError> {
        let mut index = Vec::with_capacity(ids.len());
        let mut blocks = Vec::new();
        let mut n_words = 0u64;
        let mut prev: Option<usize> = None;
        for &i in ids {
            if prev.is_some_and(|p| p >= i) {
                return Err(StoreError::Malformed("subset ids must strictly ascend"));
            }
            prev = Some(i);
            let m = *self
                .index
                .get(i)
                .ok_or(StoreError::Malformed("subset id out of range"))?;
            let comp = self.block_bytes(i)?;
            index.push(BlockMeta {
                offset: blocks.len() as u64,
                first_word: n_words,
                ..m
            });
            blocks.extend_from_slice(comp);
            n_words += u64::from(m.words);
        }
        Ok(TraceStore {
            kernel_table: self.kernel_table.clone(),
            user_tables: self.user_tables.clone(),
            n_words,
            block_words: self.block_words,
            index,
            blocks: Arc::new(blocks),
            format: self.format,
        })
    }

    /// The blocks a predicate cannot prove irrelevant, in stream
    /// order — the pushdown step. A block is skipped only when the
    /// index alone proves no word in it matches: its word range
    /// misses the window, a write-time summary shows every word sits
    /// in a single non-matching ASID, or (v4) the ASID zonemap proves
    /// the ASID never occurs. Never decodes anything.
    ///
    /// The window filter binary-searches the index rather than
    /// scanning it: the decoder enforces that `first_word` offsets
    /// tile the stream, so blocks intersecting `lo..hi` form one
    /// contiguous run.
    pub fn matching_blocks(&self, pred: &Predicate) -> Vec<usize> {
        let range = match pred.window {
            None => 0..self.index.len(),
            Some((lo, hi)) => {
                if lo >= hi {
                    return Vec::new();
                }
                // First block whose range reaches past `lo`, then
                // first block starting at or past `hi`.
                let start = self.index.partition_point(|m| m.word_range().end <= lo);
                let end = self.index.partition_point(|m| m.first_word < hi);
                start..end
            }
        };
        range
            .filter(|&i| {
                let m = &self.index[i];
                if let Some(a) = pred.asid {
                    if m.single_asid().is_some_and(|only| only != a) {
                        return false;
                    }
                    // The zonemap's clear bit proves absence (exact
                    // below ASID 64, sound above — distinct ASIDs can
                    // share a bit, never lose one).
                    if m.flags & BlockMeta::FLAG_COLUMNAR != 0
                        && m.asid_mask & (1u64 << (a & 63)) == 0
                    {
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// Decodes and filters the words one block selects under `pred`.
    /// ASID context entering the block comes from the index
    /// (`first_asid`), so blocks filter independently — the unit of
    /// work for the parallel query in [`crate::farm`].
    pub fn filter_block(&self, i: usize, pred: &Predicate) -> Result<Vec<u32>, StoreError> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.filter_block_into(i, pred, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// [`TraceStore::filter_block`] into caller-owned buffers:
    /// matching words append onto `out`, and `scratch` holds decoded
    /// words between calls so a query over many blocks allocates
    /// nothing per block.
    ///
    /// Columnar blocks take a projected path: the window filter is
    /// resolved to block-local row ranges from the index alone, and an
    /// ASID filter decodes *only* the tag and control columns
    /// ([`column::asid_runs`]) to locate matching row runs — the
    /// address columns are materialised only for blocks with actual
    /// hits, and matching runs are then copied out wholesale instead
    /// of re-classifying every word.
    pub fn filter_block_into(
        &self,
        i: usize,
        pred: &Predicate,
        out: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
    ) -> Result<(), StoreError> {
        let m = *self.block_meta(i);
        // The block-local row window the predicate admits.
        let (row_lo, row_hi) = match pred.window {
            None => (0u32, m.words),
            Some((lo, hi)) => {
                let r = m.word_range();
                let lo = lo.max(r.start) - r.start;
                let hi = hi.min(r.end).saturating_sub(r.start);
                if lo >= hi {
                    return Ok(());
                }
                (lo as u32, hi as u32)
            }
        };
        if self.format == BlockFormat::Columnar {
            if let Some(a) = pred.asid {
                // Projected path: locate matching runs from the tag
                // and control columns alone.
                let bytes = self.block_bytes(i)?;
                let runs = column::asid_runs(bytes, m.words as usize, m.first_asid)
                    .map_err(|err| StoreError::BlockCodec { block: i, err })?;
                let mut materialised = false;
                for r in &runs {
                    if r.asid != a {
                        continue;
                    }
                    let lo = r.start.max(row_lo);
                    let hi = (r.start + r.len).min(row_hi);
                    if lo >= hi {
                        continue;
                    }
                    if !materialised {
                        // First hit: materialise the full block once
                        // (also checking the decoded-words CRC).
                        scratch.clear();
                        self.decode_blocks_into(i..i + 1, scratch)?;
                        materialised = true;
                    }
                    out.extend_from_slice(&scratch[lo as usize..hi as usize]);
                }
                return Ok(());
            }
            // Window-only predicate: the admitted rows are one run.
            scratch.clear();
            self.decode_blocks_into(i..i + 1, scratch)?;
            out.extend_from_slice(&scratch[row_lo as usize..row_hi as usize]);
            return Ok(());
        }
        scratch.clear();
        self.decode_blocks_into(i..i + 1, scratch)?;
        let mut asid = m.first_asid;
        for (j, &w) in scratch.iter().enumerate() {
            if let TraceWord::Ctl(c) = classify(w) {
                if c.op == CtlOp::CtxSwitch {
                    asid = c.payload;
                }
            }
            if pred.admits(m.first_word + j as u64, asid) {
                out.push(w);
            }
        }
        Ok(())
    }

    /// Runs a windowed, filtered query: decodes only the blocks the
    /// index cannot rule out and returns the matching words, exactly
    /// the sequence [`filter_stream`] selects from the full decoded
    /// stream. The block-skip counts are the pushdown's measure of
    /// merit (reported by `serve_bench` and the `serve.*` metrics).
    pub fn query(&self, pred: &Predicate) -> Result<QueryResult, StoreError> {
        let picked = self.matching_blocks(pred);
        let mut words = Vec::new();
        let mut scratch = Vec::new();
        for &i in &picked {
            self.filter_block_into(i, pred, &mut words, &mut scratch)?;
        }
        Ok(QueryResult {
            blocks_decoded: picked.len() as u32,
            blocks_skipped: (self.n_blocks() - picked.len()) as u32,
            words,
        })
    }

    /// [`TraceStore::query`] with block materialisation served by a
    /// [`BlockCache`]: the result is identical, but a block whose
    /// decoded words are already cached costs a row-range copy
    /// instead of a CRC-checked decode. This is the windowed-query
    /// hot path of the trace service — a served archive sees the
    /// same few thousand-word windows over and over, and re-decoding
    /// a 4096-word block to ship a slice of it dominates the request
    /// otherwise. `blocks_decoded` keeps its pushdown meaning (blocks
    /// the index could not rule out), cached or not.
    pub fn query_cached(
        &self,
        pred: &Predicate,
        cache: &mut BlockCache,
    ) -> Result<QueryResult, StoreError> {
        let picked = self.matching_blocks(pred);
        let mut words = Vec::new();
        for &i in &picked {
            self.filter_block_cached(i, pred, &mut words, cache)?;
        }
        Ok(QueryResult {
            blocks_decoded: picked.len() as u32,
            blocks_skipped: (self.n_blocks() - picked.len()) as u32,
            words,
        })
    }

    /// [`TraceStore::filter_block_into`] with the materialisation
    /// step routed through `cache`. The pushdown structure is the
    /// same: columnar blocks under an ASID filter still locate runs
    /// from the tag and control columns alone, and only blocks with
    /// actual hits touch the cache at all.
    fn filter_block_cached(
        &self,
        i: usize,
        pred: &Predicate,
        out: &mut Vec<u32>,
        cache: &mut BlockCache,
    ) -> Result<(), StoreError> {
        let m = *self.block_meta(i);
        let (row_lo, row_hi) = match pred.window {
            None => (0u32, m.words),
            Some((lo, hi)) => {
                let r = m.word_range();
                let lo = lo.max(r.start) - r.start;
                let hi = hi.min(r.end).saturating_sub(r.start);
                if lo >= hi {
                    return Ok(());
                }
                (lo as u32, hi as u32)
            }
        };
        if self.format == BlockFormat::Columnar {
            if let Some(a) = pred.asid {
                let bytes = self.block_bytes(i)?;
                let runs = column::asid_runs(bytes, m.words as usize, m.first_asid)
                    .map_err(|err| StoreError::BlockCodec { block: i, err })?;
                for r in &runs {
                    if r.asid != a {
                        continue;
                    }
                    let lo = r.start.max(row_lo);
                    let hi = (r.start + r.len).min(row_hi);
                    if lo < hi {
                        let words = cache.words(self, i)?;
                        out.extend_from_slice(&words[lo as usize..hi as usize]);
                    }
                }
                return Ok(());
            }
            let words = cache.words(self, i)?;
            out.extend_from_slice(&words[row_lo as usize..row_hi as usize]);
            return Ok(());
        }
        if pred.asid.is_none() {
            // Window-only over a row block: the admitted rows are one
            // contiguous run, same as the columnar case.
            let words = cache.words(self, i)?;
            out.extend_from_slice(&words[row_lo as usize..row_hi as usize]);
            return Ok(());
        }
        let words = cache.words(self, i)?;
        let mut asid = m.first_asid;
        for (j, &w) in words.iter().enumerate() {
            if let TraceWord::Ctl(c) = classify(w) {
                if c.op == CtlOp::CtxSwitch {
                    asid = c.payload;
                }
            }
            if pred.admits(m.first_word + j as u64, asid) {
                out.push(w);
            }
        }
        Ok(())
    }
}

/// Per-column encoded-size totals for a columnar store, reported by
/// `tracedump info` — which columns carry the bytes tells you what a
/// projected query saves by not decoding the rest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ColumnStats {
    /// Total encoded bytes of each column section across all blocks,
    /// in [`column::COLUMN_NAMES`] order.
    pub section_bytes: [u64; column::N_COLUMNS],
    /// Bytes outside the sections: per-block encoded-CRC words and
    /// section length prefixes.
    pub overhead_bytes: u64,
}

/// Streams a store's blocks in order through one reused buffer —
/// the whole-file batch reader behind replay and `store_bench`'s
/// decode-throughput measurement. Each [`BlockReader::next_block`]
/// call yields the next block's verified words; the allocation is
/// made once and recycled.
#[derive(Debug)]
pub struct BlockReader<'a> {
    store: &'a TraceStore,
    next: usize,
    buf: Vec<u32>,
}

impl BlockReader<'_> {
    /// Decodes and verifies the next block, returning its words (or
    /// `None` past the last block). The slice borrows the reader's
    /// buffer and is valid until the next call.
    pub fn next_block(&mut self) -> Option<Result<&[u32], StoreError>> {
        if self.next >= self.store.n_blocks() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        self.buf.clear();
        match self.store.decode_blocks_into(i..i + 1, &mut self.buf) {
            Ok(()) => Some(Ok(&self.buf)),
            Err(e) => Some(Err(e)),
        }
    }

    /// Index of the block the next [`BlockReader::next_block`] call
    /// will decode.
    pub fn position(&self) -> usize {
        self.next
    }
}

/// A bounded, direct-mapped cache of decoded blocks — the
/// [`BlockReader`]'s random-access sibling, built for
/// [`TraceStore::query_cached`]. Capacity is fixed at construction
/// (memory bound ≈ `slots × block_words × 4` bytes) and block `i`
/// maps to slot `i % slots`, so a scan-shaped workload degrades to
/// plain per-block decode, never to unbounded memory.
///
/// A slot is keyed by `(block index, stored CRC)`, so a cache
/// mistakenly shared between stores misses (and re-decodes) rather
/// than returning another archive's words.
#[derive(Debug)]
pub struct BlockCache {
    /// `(block index, index CRC, decoded words)`; `usize::MAX` marks
    /// an empty slot.
    slots: Vec<(usize, u32, Vec<u32>)>,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// A cache holding up to `slots` decoded blocks.
    ///
    /// # Panics
    ///
    /// `slots` must be nonzero.
    pub fn new(slots: usize) -> BlockCache {
        assert!(slots > 0, "a zero-slot cache cannot hold a block");
        BlockCache {
            slots: vec![(usize::MAX, 0, Vec::new()); slots],
            hits: 0,
            misses: 0,
        }
    }

    /// Blocks served from a slot without decoding, since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Blocks decoded on a slot miss, since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The verified words of block `i` of `store`, decoding on miss.
    fn words(&mut self, store: &TraceStore, i: usize) -> Result<&[u32], StoreError> {
        let n = self.slots.len();
        let crc = store.block_meta(i).crc;
        let slot = &mut self.slots[i % n];
        if slot.0 == i && slot.1 == crc {
            self.hits += 1;
        } else {
            // Invalidate before decoding: a failed decode must not
            // leave the evicted block's words filed under `i`.
            slot.0 = usize::MAX;
            slot.2.clear();
            store.decode_blocks_into(i..i + 1, &mut slot.2)?;
            slot.0 = i;
            slot.1 = crc;
            self.misses += 1;
        }
        Ok(&self.slots[i % n].2)
    }
}

/// Which trace words a query selects. Both filters are optional and
/// conjunctive; the empty predicate selects every word.
///
/// A word's ASID context is the base context *after* applying the
/// word — a context-switch control word belongs to the ASID it
/// switches to, matching how [`TraceStore::from_archive`] attributes
/// `first_asid` at block boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Predicate {
    /// Keep only words whose base ASID context equals this.
    pub asid: Option<u8>,
    /// Keep only words whose global offset lies in `lo..hi`.
    pub window: Option<(u64, u64)>,
}

impl Predicate {
    /// Whether a word at global offset `pos` in ASID context `asid`
    /// matches.
    pub fn admits(&self, pos: u64, asid: u8) -> bool {
        self.window.is_none_or(|(lo, hi)| pos >= lo && pos < hi)
            && self.asid.is_none_or(|a| a == asid)
    }
}

/// What one [`TraceStore::query`] returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// Blocks the index could not rule out (decoded and filtered).
    pub blocks_decoded: u32,
    /// Blocks the index proved irrelevant (never decoded).
    pub blocks_skipped: u32,
    /// Every matching word, in stream order.
    pub words: Vec<u32>,
}

/// The reference semantics of a [`Predicate`] over a fully decoded
/// word stream: walk the words tracking the base ASID context and
/// keep each word the predicate admits. [`TraceStore::query`] must
/// return exactly this sequence — the differential the loopback
/// service tests and `serve_bench` assert.
pub fn filter_stream(words: &[u32], pred: &Predicate) -> Vec<u32> {
    let mut out = Vec::new();
    let mut asid = 0u8;
    for (pos, &w) in words.iter().enumerate() {
        if let TraceWord::Ctl(c) = classify(w) {
            if c.op == CtlOp::CtxSwitch {
                asid = c.payload;
            }
        }
        if pred.admits(pos as u64, asid) {
            out.push(w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_trace::bbinfo::{BbInfo, BbTraceFlags};
    use wrl_trace::{ctl, CollectSink};

    fn sample_archive(n_words: u32) -> TraceArchive {
        let mut kt = BbTable::new();
        kt.insert(
            0x8003_0100,
            BbInfo {
                orig_vaddr: 0x8003_0000,
                n_insts: 4,
                ops: vec![],
                flags: BbTraceFlags::default(),
            },
        );
        let mut words = vec![ctl(CtlOp::CtxSwitch, 3), ctl(CtlOp::KEnter, 0)];
        words.extend(std::iter::repeat_n(0x8003_0100, n_words as usize));
        words.push(ctl(CtlOp::KExit, 0));
        TraceArchive {
            kernel_table: kt,
            user_tables: vec![(3, BbTable::new())],
            words,
        }
    }

    #[test]
    fn v2_round_trips_and_is_seekable() {
        let a = sample_archive(1000);
        let store = TraceStore::from_archive(&a, 64);
        let bytes = store.encode();
        let back = TraceStore::decode(&bytes).unwrap();
        assert_eq!(back.n_blocks(), store.n_blocks());
        assert_eq!(back.words().unwrap(), a.words);
        // Blocks decode independently, in any order.
        let mut words = vec![Vec::new(); back.n_blocks()];
        for i in (0..back.n_blocks()).rev() {
            words[i] = back.decode_block(i).unwrap();
        }
        assert_eq!(words.concat(), a.words);
    }

    #[test]
    fn asid_context_is_tracked_per_block() {
        let a = sample_archive(100);
        let store = TraceStore::from_archive(&a, 10);
        // First block starts before any switch (ASID 0) and contains
        // the switch to 3; every later block starts at 3.
        assert_eq!(store.block_meta(0).first_asid, 0);
        assert_eq!(store.block_meta(0).last_asid, 3);
        assert_eq!(store.block_meta(1).first_asid, 3);
    }

    #[test]
    fn subset_keeps_proofs_and_retiles_offsets() {
        let a = sample_archive(1000);
        for format in [BlockFormat::Row, BlockFormat::Columnar] {
            let store = TraceStore::from_archive_with(&a, 64, format);
            let ids = [1usize, 2, 5, store.n_blocks() - 1];
            let sub = store.subset(&ids).unwrap();
            // The subset round-trips through the on-disk format.
            let back = TraceStore::decode(&sub.encode()).unwrap();
            assert_eq!(back.n_blocks(), ids.len());
            let mut local = 0u64;
            for (j, &i) in ids.iter().enumerate() {
                let (m, s) = (back.block_meta(j), store.block_meta(i));
                // Global context and proofs survive verbatim...
                assert_eq!(
                    (m.first_asid, m.last_asid, m.flags, m.crc, m.asid_mask),
                    (s.first_asid, s.last_asid, s.flags, s.crc, s.asid_mask)
                );
                // ...while word offsets re-tile to local coordinates.
                assert_eq!(m.first_word, local);
                local += u64::from(m.words);
                assert_eq!(
                    back.decode_block(j).unwrap(),
                    store.decode_block(i).unwrap()
                );
            }
            assert_eq!(back.n_words, local);
            // Bad id lists are typed errors.
            assert!(store.subset(&[0, 0]).is_err());
            assert!(store.subset(&[2, 1]).is_err());
            assert!(store.subset(&[store.n_blocks()]).is_err());
        }
    }

    #[test]
    fn v1_loads_transparently() {
        let a = sample_archive(500);
        let store = TraceStore::decode_any(&a.encode()).unwrap();
        assert_eq!(store.words().unwrap(), a.words);
        assert_eq!(store.n_words, a.words.len() as u64);
    }

    #[test]
    fn corrupted_block_bytes_are_detected() {
        let a = sample_archive(4000);
        let store = TraceStore::from_archive(&a, 256);
        let mut bytes = store.encode();
        // Flip the last byte of the block area (located through the
        // trailer, like a real reader); decoding the block it lands in
        // must fail with a typed codec or CRC error.
        let tail_at = bytes.len() - TRAILER_BYTES;
        let index_pos =
            u64::from_le_bytes(bytes[tail_at + 4..tail_at + 12].try_into().unwrap()) as usize;
        bytes[index_pos - 1] ^= 0x55;
        let back = TraceStore::decode(&bytes).expect("framing is intact");
        let err = (0..back.n_blocks())
            .find_map(|i| back.decode_block(i).err())
            .expect("some block must fail");
        assert!(matches!(
            err,
            StoreError::CrcMismatch { .. } | StoreError::BlockCodec { .. }
        ));
    }

    #[test]
    fn metadata_corruption_is_detected_by_the_meta_crc() {
        let a = sample_archive(1000);
        let store = TraceStore::from_archive(&a, 64);
        let bytes = store.encode();
        let tail_at = bytes.len() - TRAILER_BYTES;
        let index_pos =
            u64::from_le_bytes(bytes[tail_at + 4..tail_at + 12].try_into().unwrap()) as usize;
        // A flip anywhere outside the block area — table section,
        // word-count header, index entries — must surface as a typed
        // error, never as silently different decode results.
        for at in [
            16,
            index_pos - 1 - store.compressed_bytes() as usize,
            index_pos + 3,
        ] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            let err = TraceStore::decode(&bad).expect_err("metadata flip must be caught");
            assert!(
                matches!(
                    err,
                    StoreError::MetaCrcMismatch { .. }
                        | StoreError::Malformed(_)
                        | StoreError::Archive(_)
                ),
                "offset {at}: wrong error {err}"
            );
        }
    }

    #[test]
    fn out_of_range_block_index_is_a_typed_error() {
        let a = sample_archive(100);
        let store = TraceStore::from_archive(&a, 64);
        assert!(matches!(
            store.decode_block(store.n_blocks()),
            Err(StoreError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_and_truncation_error_cleanly() {
        assert!(TraceStore::decode(b"not a store").is_err());
        let a = sample_archive(100);
        let bytes = TraceStore::from_archive(&a, 64).encode();
        for cut in [1, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(TraceStore::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    /// Re-encodes a store as a legacy v2 file: version 2 header,
    /// 22-byte index entries without summaries, fresh meta CRC.
    fn encode_as_v2(store: &TraceStore) -> Vec<u8> {
        let v3 = store.encode();
        let tail_at = v3.len() - TRAILER_BYTES;
        let index_pos =
            u64::from_le_bytes(v3[tail_at + 4..tail_at + 12].try_into().unwrap()) as usize;
        let mut out = v3[..index_pos].to_vec();
        out[8..12].copy_from_slice(&2u32.to_le_bytes());
        for i in 0..store.n_blocks() {
            let at = index_pos + i * INDEX_ENTRY_BYTES;
            out.extend_from_slice(&v3[at..at + INDEX_ENTRY_BYTES_V2]);
        }
        put_u32(&mut out, store.n_blocks() as u32);
        put_u64(&mut out, index_pos as u64);
        let blocks_at = index_pos - store.compressed_bytes() as usize;
        let mut crc = Crc32::new();
        crc.update(&out[..blocks_at]).update(&out[index_pos..]);
        put_u32(&mut out, crc.finish());
        out.extend_from_slice(TAIL_MAGIC);
        out
    }

    #[test]
    fn v2_stores_still_load_and_query_identically() {
        let a = sample_archive(1000);
        let store = TraceStore::from_archive(&a, 64);
        let v2 = encode_as_v2(&store);
        let back = TraceStore::decode(&v2).expect("legacy v2 must decode");
        assert_eq!(back.words().unwrap(), a.words);
        // v2 entries carry no summaries: `first_word` is synthesised,
        // flags stay clear, and ASID pushdown lawfully degrades to
        // decoding every block — while selecting the same words.
        for i in 0..back.n_blocks() {
            let m = back.block_meta(i);
            assert!(!m.has_summary());
            assert_eq!(m.single_asid(), None);
            assert_eq!(m.first_word, store.block_meta(i).first_word);
        }
        for pred in [
            Predicate::default(),
            Predicate {
                asid: Some(3),
                ..Predicate::default()
            },
            Predicate {
                window: Some((10, 200)),
                asid: Some(0),
            },
        ] {
            let q = back.query(&pred).unwrap();
            assert_eq!(q.words, filter_stream(&a.words, &pred), "{pred:?}");
            assert_eq!(q.words, store.query(&pred).unwrap().words, "{pred:?}");
        }
    }

    #[test]
    fn index_summaries_are_exact() {
        use wrl_isa::Width;
        use wrl_trace::bbinfo::MemOp;
        let mut kt = BbTable::new();
        kt.insert(
            0x8003_0100,
            BbInfo {
                orig_vaddr: 0x8003_0000,
                n_insts: 2,
                ops: vec![MemOp {
                    index: 0,
                    store: false,
                    width: Width::Word,
                }],
                flags: BbTraceFlags::default(),
            },
        );
        // bb-id, data word pairs: the data words are 0x9000_0000+i —
        // positionally data, even though they look like addresses.
        let mut words = vec![ctl(CtlOp::KEnter, 0)];
        for i in 0..20u32 {
            words.push(0x8003_0100);
            words.push(0x9000_0000 + i * 0x100);
        }
        words.push(ctl(CtlOp::KExit, 0));
        let a = TraceArchive {
            kernel_table: kt,
            user_tables: vec![],
            words,
        };
        let store = TraceStore::from_archive(&a, 8);
        let mut first_word = 0u64;
        for i in 0..store.n_blocks() {
            let m = store.block_meta(i);
            assert!(m.has_summary());
            assert_eq!(m.first_word, first_word);
            first_word += u64::from(m.words);
            // Recompute the block's data-address bounds from the raw
            // words: in this trace a word is a data word exactly when
            // it is ≥ 0x9000_0000.
            let block = &a.words[m.word_range().start as usize..m.word_range().end as usize];
            let daddrs: Vec<u32> = block
                .iter()
                .copied()
                .filter(|&w| w >= 0x9000_0000)
                .collect();
            assert_eq!(
                m.daddr_range(),
                daddrs
                    .iter()
                    .min()
                    .map(|&lo| (lo, *daddrs.iter().max().unwrap())),
                "block {i}"
            );
        }
        // The summaries round-trip through encode/decode.
        let back = TraceStore::decode(&store.encode()).unwrap();
        for i in 0..store.n_blocks() {
            assert_eq!(back.block_meta(i), store.block_meta(i));
        }
    }

    #[test]
    fn query_matches_filter_stream_and_skips_blocks() {
        let a = sample_archive(1003);
        for block_words in [1, 7, 64] {
            let store = TraceStore::from_archive(&a, block_words);
            for pred in [
                Predicate::default(),
                Predicate {
                    asid: Some(3),
                    ..Predicate::default()
                },
                Predicate {
                    asid: Some(9), // matches no context in this trace
                    ..Predicate::default()
                },
                Predicate {
                    window: Some((5, 40)),
                    asid: None,
                },
                Predicate {
                    window: Some((0, 2)),
                    asid: Some(0),
                },
            ] {
                let q = store.query(&pred).unwrap();
                assert_eq!(
                    q.words,
                    filter_stream(&a.words, &pred),
                    "{block_words}/{pred:?}"
                );
                assert_eq!(q.blocks_decoded + q.blocks_skipped, store.n_blocks() as u32);
            }
            // A tight window proves most blocks irrelevant.
            if block_words == 1 {
                let q = store
                    .query(&Predicate {
                        window: Some((5, 40)),
                        asid: None,
                    })
                    .unwrap();
                assert_eq!(q.blocks_decoded, 35);
            }
        }
    }

    #[test]
    fn asid_pushdown_skips_single_context_blocks() {
        // sample_archive switches to ASID 3 at word 0; with one word
        // per block, every block after the switch is provably ASID 3.
        let a = sample_archive(100);
        let store = TraceStore::from_archive(&a, 1);
        let pred = Predicate {
            asid: Some(7),
            ..Predicate::default()
        };
        let q = store.query(&pred).unwrap();
        assert!(q.words.is_empty());
        // Only the switch-carrying first block survives pushdown.
        assert_eq!(q.blocks_decoded, 1);
        assert_eq!(q.blocks_skipped, store.n_blocks() as u32 - 1);
    }

    #[test]
    fn store_parses_identically_to_archive() {
        let a = sample_archive(300);
        let store = TraceStore::from_archive(&a, 32);
        let mut direct = CollectSink::default();
        a.parser().parse_all(&a.words, &mut direct);
        let mut via_store = CollectSink::default();
        store
            .parser()
            .parse_all(&store.words().unwrap(), &mut via_store);
        assert_eq!(via_store.irefs, direct.irefs);
        assert_eq!(via_store.drefs, direct.drefs);
    }

    /// A multi-ASID archive: rotates context switches through several
    /// ASIDs with user- and kernel-looking address runs in between.
    fn multi_asid_archive(n: usize) -> TraceArchive {
        let mut words = Vec::new();
        for i in 0..n as u32 {
            if i % 37 == 0 {
                words.push(ctl(CtlOp::CtxSwitch, (i / 37 % 5) as u8));
            }
            words.push(if i % 3 == 0 {
                0x8003_0100 + i * 8
            } else {
                0x0040_0000 + i * 4
            });
        }
        TraceArchive {
            kernel_table: BbTable::new(),
            user_tables: vec![],
            words,
        }
    }

    #[test]
    fn v4_round_trips_and_queries_identically_to_v3() {
        let a = multi_asid_archive(3000);
        for block_words in [1, 7, 64, 4096] {
            let v3 = TraceStore::from_archive(&a, block_words);
            let v4 = TraceStore::from_archive_with(&a, block_words, BlockFormat::Columnar);
            assert_eq!(v4.format(), BlockFormat::Columnar);
            let bytes = v4.encode();
            assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 4);
            let back = TraceStore::decode(&bytes).unwrap();
            assert_eq!(back.format(), BlockFormat::Columnar);
            assert_eq!(back.words().unwrap(), a.words);
            for pred in [
                Predicate::default(),
                Predicate {
                    asid: Some(2),
                    ..Predicate::default()
                },
                Predicate {
                    asid: Some(63), // never occurs: zonemap prunes all
                    ..Predicate::default()
                },
                Predicate {
                    window: Some((11, 900)),
                    asid: None,
                },
                Predicate {
                    window: Some((100, 1500)),
                    asid: Some(1),
                },
            ] {
                let want = filter_stream(&a.words, &pred);
                let q3 = v3.query(&pred).unwrap();
                let q4 = back.query(&pred).unwrap();
                assert_eq!(q3.words, want, "v3 {block_words}/{pred:?}");
                assert_eq!(q4.words, want, "v4 {block_words}/{pred:?}");
                // v4's zonemap can only skip *more* blocks than v3's
                // single-ASID proof, never fewer.
                assert!(
                    q4.blocks_skipped >= q3.blocks_skipped,
                    "{block_words}/{pred:?}"
                );
            }
        }
    }

    #[test]
    fn cached_query_is_identical_to_query_across_formats() {
        let a = multi_asid_archive(3000);
        let preds = [
            Predicate::default(),
            Predicate {
                asid: Some(2),
                ..Predicate::default()
            },
            Predicate {
                window: Some((11, 900)),
                asid: None,
            },
            Predicate {
                window: Some((100, 1500)),
                asid: Some(1),
            },
        ];
        for format in [BlockFormat::Row, BlockFormat::Columnar] {
            let store = TraceStore::from_archive_with(&a, 64, format);
            // Two slots against ~47 blocks forces eviction and
            // reuse; the large cache exercises the all-hits path.
            for slots in [2, 1024] {
                let mut cache = BlockCache::new(slots);
                for pred in preds {
                    let plain = store.query(&pred).unwrap();
                    // Twice per predicate: cold slots, then warm.
                    for pass in 0..2 {
                        let cached = store.query_cached(&pred, &mut cache).unwrap();
                        assert_eq!(cached, plain, "{format:?}/{slots}/{pass}/{pred:?}");
                    }
                }
                assert!(cache.misses() > 0);
                // Sequential sweeps thrash a two-slot cache (every
                // access evicts); only the large cache must hit.
                if slots > 2 {
                    assert!(cache.hits() > 0);
                }
            }
        }
    }

    #[test]
    fn a_cache_shared_between_stores_re_decodes_instead_of_lying() {
        // The slot key includes the block's index CRC, so two stores
        // with different blockings of the same trace can (wrongly)
        // share one cache and still each get their own words back.
        let a = multi_asid_archive(1200);
        let s1 = TraceStore::from_archive(&a, 64);
        let s2 = TraceStore::from_archive_with(&a, 32, BlockFormat::Columnar);
        let pred = Predicate {
            window: Some((64, 256)),
            asid: None,
        };
        let want = filter_stream(&a.words, &pred);
        let mut cache = BlockCache::new(8);
        for _ in 0..2 {
            assert_eq!(s1.query_cached(&pred, &mut cache).unwrap().words, want);
            assert_eq!(s2.query_cached(&pred, &mut cache).unwrap().words, want);
        }
    }

    #[test]
    fn v4_zonemap_prunes_blocks_the_v3_summary_cannot() {
        // Every block of this trace contains a context switch, so v3's
        // single-ASID proof never fires — but ASID 9 never occurs, so
        // the v4 zonemap proves every block irrelevant.
        let a = multi_asid_archive(2000);
        let v3 = TraceStore::from_archive(&a, 37);
        let v4 = TraceStore::from_archive_with(&a, 37, BlockFormat::Columnar);
        let pred = Predicate {
            asid: Some(9),
            ..Predicate::default()
        };
        // Switch spacing drifts against the block size, so v3's proof
        // fires on at most a couple of stragglers.
        assert!(v3.query(&pred).unwrap().blocks_decoded >= v3.n_blocks() as u32 - 2);
        let q4 = v4.query(&pred).unwrap();
        assert_eq!(q4.blocks_decoded, 0);
        assert!(q4.words.is_empty());
    }

    #[test]
    fn v4_window_pushdown_binary_search_agrees_with_scan() {
        let a = multi_asid_archive(1024);
        let store = TraceStore::from_archive_with(&a, 16, BlockFormat::Columnar);
        for (lo, hi) in [(0, 10), (5, 5), (100, 101), (1000, 5000), (17, 900)] {
            let pred = Predicate {
                window: Some((lo, hi)),
                asid: None,
            };
            let picked = store.matching_blocks(&pred);
            let scanned: Vec<usize> = (0..store.n_blocks())
                .filter(|&i| {
                    let r = store.block_meta(i).word_range();
                    lo < hi && r.start < hi && r.end > lo
                })
                .collect();
            assert_eq!(picked, scanned, "{lo}..{hi}");
        }
    }

    #[test]
    fn corrupted_v4_column_is_a_typed_error() {
        let a = multi_asid_archive(900);
        let store = TraceStore::from_archive_with(&a, 128, BlockFormat::Columnar);
        let mut bytes = store.encode();
        let tail_at = bytes.len() - TRAILER_BYTES;
        let index_pos =
            u64::from_le_bytes(bytes[tail_at + 4..tail_at + 12].try_into().unwrap()) as usize;
        // Flip a byte in the middle of the block area — inside some
        // column section — and require a typed error from every read
        // path, including the projected one.
        let blocks_at = index_pos - store.compressed_bytes() as usize;
        bytes[blocks_at + (index_pos - blocks_at) / 2] ^= 0x40;
        let back = TraceStore::decode(&bytes).expect("framing is intact");
        let err = (0..back.n_blocks())
            .find_map(|i| back.decode_block(i).err())
            .expect("some block must fail");
        assert!(matches!(
            err,
            StoreError::BlockCodec { .. } | StoreError::CrcMismatch { .. }
        ));
        let pred = Predicate {
            asid: Some(1),
            ..Predicate::default()
        };
        let projected = back.query(&pred);
        assert!(matches!(
            projected,
            Err(StoreError::BlockCodec { .. } | StoreError::CrcMismatch { .. }) | Ok(_)
        ));
    }

    #[test]
    fn forged_columnar_flag_in_a_v3_index_is_rejected() {
        // A v3 entry carrying FLAG_COLUMNAR would pair an all-zero
        // zonemap with zonemap-trusting readers and prune everything;
        // the decoder must refuse the file, not the blocks.
        let a = sample_archive(200);
        let store = TraceStore::from_archive(&a, 64);
        let mut bytes = store.encode();
        let tail_at = bytes.len() - TRAILER_BYTES;
        let index_pos =
            u64::from_le_bytes(bytes[tail_at + 4..tail_at + 12].try_into().unwrap()) as usize;
        bytes[index_pos + 22] |= BlockMeta::FLAG_COLUMNAR;
        // Re-seal the metadata CRC so only the flag discipline can
        // object.
        let blocks_at = index_pos - store.compressed_bytes() as usize;
        let mut crc = Crc32::new();
        crc.update(&bytes[..blocks_at])
            .update(&bytes[index_pos..tail_at + 12]);
        let fresh = crc.finish();
        bytes[tail_at + 12..tail_at + 16].copy_from_slice(&fresh.to_le_bytes());
        assert!(matches!(
            TraceStore::decode(&bytes),
            Err(StoreError::Malformed("unknown flag bits in pre-v4 entry"))
        ));
    }

    #[test]
    fn block_reader_streams_the_whole_file() {
        let a = multi_asid_archive(777);
        for format in [BlockFormat::Row, BlockFormat::Columnar] {
            let store = TraceStore::from_archive_with(&a, 50, format);
            let mut reader = store.block_reader();
            let mut all = Vec::new();
            while let Some(block) = reader.next_block() {
                all.extend_from_slice(block.unwrap());
            }
            assert_eq!(all, a.words, "{format:?}");
            assert_eq!(reader.position(), store.n_blocks());
        }
    }

    #[test]
    fn column_stats_account_for_the_block_area() {
        let a = multi_asid_archive(2000);
        let v3 = TraceStore::from_archive(&a, 256);
        assert_eq!(v3.column_stats().unwrap(), None);
        let v4 = TraceStore::from_archive_with(&a, 256, BlockFormat::Columnar);
        let stats = v4.column_stats().unwrap().expect("columnar store");
        let total: u64 = stats.section_bytes.iter().sum::<u64>() + stats.overhead_bytes;
        assert_eq!(total, v4.compressed_bytes());
    }
}
