//! The block codec: a dependency-free, lossless compressor for
//! trace-word runs.
//!
//! The paper keeps traces out of storage because raw system traces
//! are enormous (§3.1–§3.2: one word per basic block or memory
//! reference adds up to gigabytes per minute of traced execution).
//! But trace words are extremely *regular*, and the regularity is
//! exactly the structure §3.3 describes:
//!
//! * basic-block ids within one run of execution are near-monotone —
//!   consecutive blocks of straight-line code are a few hundred bytes
//!   apart, and loops revisit the *same* block sequence over and over;
//! * data addresses cluster (stack frames, array sweeps) and loops
//!   touch recurring addresses;
//! * page-0 control words are rare (a handful of context switches and
//!   kernel entries per thousands of address words).
//!
//! The codec exploits both forms of locality with one dependency-free
//! model, used two ways per word:
//!
//! 1. **FCM hit** — a finite-context model: a small table maps (a hash
//!    of) the previous word to the word that followed it last time.
//!    Loops make this predictor nearly perfect after their first
//!    iteration, and a hit costs a single byte (varint `0`).
//! 2. **Delta against the prediction** — on a miss, the word is coded
//!    as a zigzag+varint delta against the FCM's (wrong but usually
//!    *close*) prediction, or against the previous word when the slot
//!    is cold. A loop walking an array, or a context revisited with a
//!    slightly different successor, misses by a handful of bytes — a
//!    one-byte token — where a delta against some fixed reference
//!    would pay for the full address.
//!
//! Both encoder and decoder run the identical model state machine, so
//! decompression is exact. All state is per-block: every block decodes
//! independently, which is what lets `farm` workers decode blocks
//! concurrently and lets a seekable reader jump anywhere.

/// Errors from [`decompress_block`] and the columnar
/// [`crate::column`] codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed bytes ended inside a token.
    Truncated,
    /// A varint token ran longer than any valid encoding.
    Overlong,
    /// The block decoded to its word count with bytes left over.
    TrailingBytes(usize),
    /// A columnar block's CRC over its own *encoded* bytes did not
    /// match — some column section is damaged, so not even a partial
    /// (projected) decode can be trusted.
    EncodedCrcMismatch {
        /// CRC stored at the head of the block.
        want: u32,
        /// CRC of the encoded section bytes as read.
        got: u32,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed block truncated mid-token"),
            CodecError::Overlong => write!(f, "overlong varint token"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after last word"),
            CodecError::EncodedCrcMismatch { want, got } => {
                write!(
                    f,
                    "column sections fail their CRC (stored {want:#010x}, computed {got:#010x})"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Entries in the finite-context predictor table (per block, zeroed
/// at each block boundary so blocks stay independent).
pub const FCM_SIZE: usize = 4096;

#[inline]
fn fcm_slot(prev: u32) -> usize {
    // Fibonacci hash of the previous word; the multiplier spreads
    // nearby addresses across the table.
    (prev.wrapping_mul(0x9e37_79b1) >> (32 - 12)) as usize & (FCM_SIZE - 1)
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

pub(crate) fn take_varint(buf: &[u8], at: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*at).ok_or(CodecError::Truncated)?;
        *at += 1;
        // Tokens are ≤ zigzag(u32 delta) + 1 < 2^34, so anything
        // needing more than five varint groups is junk.
        if shift > 28 {
            return Err(CodecError::Overlong);
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Shared model state; encoder and decoder step it identically.
struct Model {
    fcm: Box<[u32; FCM_SIZE]>,
    prev: u32,
}

impl Model {
    fn new() -> Model {
        Model {
            fcm: Box::new([0; FCM_SIZE]),
            prev: 0,
        }
    }

    /// The prediction for the next word, and the miss-delta base: the
    /// prediction itself if the slot is warm, else the previous word.
    /// (A zero slot is indistinguishable from a cold one; both sides
    /// apply the same rule, so the choice only affects size, and zero
    /// is never a *useful* prediction — page-zero words below the
    /// control opcodes don't occur in healthy traces.)
    #[inline]
    fn predict(&self) -> (u32, u32) {
        let pred = self.fcm[fcm_slot(self.prev)];
        let base = if pred != 0 { pred } else { self.prev };
        (pred, base)
    }

    /// Advances the model past one (just-coded) word.
    #[inline]
    fn advance(&mut self, w: u32) {
        self.fcm[fcm_slot(self.prev)] = w;
        self.prev = w;
    }
}

/// Compresses one block of trace words. The output decodes with
/// [`decompress_block`] given the exact word count.
pub fn compress_block(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() + 16);
    let mut m = Model::new();
    for &w in words {
        let (pred, base) = m.predict();
        if pred == w {
            // FCM hit: one byte.
            put_varint(&mut out, 0);
        } else {
            let d = i64::from(w) - i64::from(base);
            put_varint(&mut out, zigzag(d) + 1);
        }
        m.advance(w);
    }
    out
}

/// Decompresses a block produced by [`compress_block`]. `n_words` is
/// the block's word count from the store index; the byte stream must
/// decode to exactly that many words with no bytes left over.
pub fn decompress_block(bytes: &[u8], n_words: usize) -> Result<Vec<u32>, CodecError> {
    // Every word costs at least one token byte, so a count exceeding
    // the byte length is certainly junk — cap the preallocation by it
    // rather than trusting an attacker-controlled count.
    let mut words = Vec::with_capacity(n_words.min(bytes.len()));
    decompress_block_into(bytes, n_words, &mut words)?;
    Ok(words)
}

/// Like [`decompress_block`], but appends onto `out` instead of
/// allocating — the batch-decode form the whole-file readers use to
/// decode block runs into one buffer without per-block allocation.
pub fn decompress_block_into(
    bytes: &[u8],
    n_words: usize,
    out: &mut Vec<u32>,
) -> Result<(), CodecError> {
    out.reserve(n_words.min(bytes.len()));
    let mut m = Model::new();
    let mut at = 0usize;
    for _ in 0..n_words {
        let token = take_varint(bytes, &mut at)?;
        let (pred, base) = m.predict();
        let w = if token == 0 {
            pred
        } else {
            // Wrapping on an out-of-range delta keeps decode total;
            // the CRC catches real corruption.
            (i64::from(base) + unzigzag(token - 1)) as u32
        };
        out.push(w);
        m.advance(w);
    }
    if at != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - at));
    }
    Ok(())
}

/// Compile-time slice-by-8 tables for the reflected IEEE 802.3
/// polynomial. `CRC_TABLES[0]` is the classic one-byte-at-a-time
/// table; `CRC_TABLES[j]` advances a byte `j` positions further, so
/// eight table lookups retire eight input bytes with no loop-carried
/// bit-by-bit dependency. 8 KiB of tables buys roughly an order of
/// magnitude over the bitwise form — and the CRC runs over every
/// stored block, every container checksum and every wire frame, so
/// it sits on the critical path of queries end to end.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = (crc >> 1) ^ (0xedb8_8320 & (crc & 1).wrapping_neg());
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

/// One slice-by-8 step: folds the eight bytes `lo` (low four, already
/// XORed with the running CRC) and `hi` into a fresh CRC value.
#[inline]
fn crc_step8(lo: u32, hi: u32) -> u32 {
    CRC_TABLES[7][(lo & 0xff) as usize]
        ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
        ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
        ^ CRC_TABLES[4][(lo >> 24) as usize]
        ^ CRC_TABLES[3][(hi & 0xff) as usize]
        ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
        ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
        ^ CRC_TABLES[0][(hi >> 24) as usize]
}

/// One slice-by-4 step over `x = crc ^ next_word_le`.
#[inline]
fn crc_step4(x: u32) -> u32 {
    CRC_TABLES[3][(x & 0xff) as usize]
        ^ CRC_TABLES[2][((x >> 8) & 0xff) as usize]
        ^ CRC_TABLES[1][((x >> 16) & 0xff) as usize]
        ^ CRC_TABLES[0][(x >> 24) as usize]
}

/// Carryless-multiply CRC kernel (x86-64 `PCLMULQDQ`): folds the
/// message as 128-bit polynomial lanes instead of walking table
/// slices, roughly an order of magnitude over slice-by-8 on the
/// 16 KiB frames the trace service CRCs twice per query. Runtime
/// feature detection picks it; every other target — and every short
/// input — takes the table path, and the differential test pins the
/// two paths equal against a bitwise reference.
#[cfg(target_arch = "x86_64")]
mod clmul {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_clmulepi64_si128, _mm_cvtsi32_si128, _mm_extract_epi32,
        _mm_loadu_si128, _mm_set_epi32, _mm_set_epi64x, _mm_srli_si128, _mm_xor_si128,
    };
    use std::sync::atomic::{AtomicU8, Ordering};

    // Folding constants for the reflected IEEE 802.3 polynomial,
    // from the Intel white paper "Fast CRC Computation for Generic
    // Polynomials Using PCLMULQDQ" (the same values zlib and the
    // Linux kernel use): K1/K2 fold at distance 512 bits, K3/K4 at
    // 128, K5 reduces 96→64, and P_X/U_PRIME are the Barrett pair.
    const K1: i64 = 0x0001_5444_2bd4;
    const K2: i64 = 0x0001_c6e4_1596;
    const K3: i64 = 0x0001_7519_97d0;
    const K4: i64 = 0x0000_ccaa_009e;
    const K5: i64 = 0x0001_63cd_6124;
    const P_X: i64 = 0x0001_db71_0641;
    const U_PRIME: i64 = 0x0001_f701_1641;

    /// Cached feature probe: 0 = not yet checked, 1 = absent,
    /// 2 = present.
    static DETECTED: AtomicU8 = AtomicU8::new(0);

    /// Whether the CPU has `PCLMULQDQ` + SSE4.1 (cached after the
    /// first call).
    pub fn available() -> bool {
        match DETECTED.load(Ordering::Relaxed) {
            0 => {
                let ok =
                    is_x86_feature_detected!("pclmulqdq") && is_x86_feature_detected!("sse4.1");
                DETECTED.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
                ok
            }
            n => n == 2,
        }
    }

    /// One fold step: `a`'s two 64-bit halves each multiplied by
    /// their key, xored with the incoming lane `b`.
    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    fn fold(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        _mm_xor_si128(
            _mm_xor_si128(b, _mm_clmulepi64_si128(a, keys, 0x00)),
            _mm_clmulepi64_si128(a, keys, 0x11),
        )
    }

    /// Folds `bytes` — length a nonzero multiple of 16 — into the
    /// raw (uncomplemented) shift-register state and reduces back to
    /// 32 bits.
    ///
    /// # Safety
    ///
    /// The caller must have checked [`available`].
    #[target_feature(enable = "pclmulqdq", enable = "sse2", enable = "sse4.1")]
    pub unsafe fn update(state: u32, bytes: &[u8]) -> u32 {
        debug_assert!(!bytes.is_empty() && bytes.len().is_multiple_of(16));
        // SAFETY: `_mm_loadu_si128` has no alignment requirement and
        // every caller slice below is 16 bytes long.
        let load = |c: &[u8]| unsafe { _mm_loadu_si128(c.as_ptr().cast()) };
        let k3k4 = _mm_set_epi64x(K4, K3);
        let seed = _mm_cvtsi32_si128(state as i32);
        let mut data = bytes;
        let mut x;
        if data.len() >= 64 {
            // Four independent lanes hide the clmul latency.
            let k1k2 = _mm_set_epi64x(K2, K1);
            let mut x3 = _mm_xor_si128(load(&data[0..16]), seed);
            let mut x2 = load(&data[16..32]);
            let mut x1 = load(&data[32..48]);
            let mut x0 = load(&data[48..64]);
            data = &data[64..];
            while data.len() >= 64 {
                x3 = fold(x3, load(&data[0..16]), k1k2);
                x2 = fold(x2, load(&data[16..32]), k1k2);
                x1 = fold(x1, load(&data[32..48]), k1k2);
                x0 = fold(x0, load(&data[48..64]), k1k2);
                data = &data[64..];
            }
            x = fold(x3, x2, k3k4);
            x = fold(x, x1, k3k4);
            x = fold(x, x0, k3k4);
        } else {
            x = _mm_xor_si128(load(&data[..16]), seed);
            data = &data[16..];
        }
        while data.len() >= 16 {
            x = fold(x, load(&data[..16]), k3k4);
            data = &data[16..];
        }
        debug_assert!(data.is_empty());
        // 128 → 64: low half × K4 folded into the high half.
        let mask32 = _mm_set_epi32(0, 0, 0, !0);
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        // 96 → 64 via K5 on the low 32 bits.
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );
        // Barrett reduction back to a 32-bit remainder.
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), pu, 0x10);
        let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, mask32), pu, 0x00), x);
        _mm_extract_epi32(t2, 1) as u32
    }
}

/// Folds `bytes` into the raw shift-register state `crc`, picking
/// the carryless-multiply kernel for long runs when the CPU has it.
fn crc_update(crc: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if bytes.len() >= 64 && clmul::available() {
        let main = bytes.len() & !15;
        // SAFETY: `available()` confirmed the features; `main` is a
        // nonzero multiple of 16.
        let crc = unsafe { clmul::update(crc, &bytes[..main]) };
        return crc_update_table(crc, &bytes[main..]);
    }
    crc_update_table(crc, bytes)
}

/// The portable slice-by-8 fold (also the tail handler under the
/// carryless-multiply kernel).
fn crc_update_table(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..].try_into().unwrap());
        crc = crc_step8(lo, hi);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc
}

/// Incremental CRC-32 (IEEE 802.3, reflected). Feed byte slices with
/// [`Crc32::update`]; discontiguous regions hash as if concatenated,
/// which is how the container checksums its metadata around the block
/// area.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the running CRC.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Crc32 {
        self.state = crc_update(self.state, bytes);
        self
    }

    /// The CRC of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// CRC-32 over a byte slice (one-shot form of [`Crc32`]).
pub fn crc32_bytes(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// CRC-32 (IEEE 802.3, reflected) over a little-endian byte view of
/// the words — the end-to-end integrity check of the §4.3 defensive
/// discipline, extended to storage: it runs over the *decoded* words,
/// so it catches codec bugs and at-rest corruption alike.
pub fn crc32_words(words: &[u32]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if words.len() >= 16 && clmul::available() {
        // On a little-endian target the in-memory bytes of a `u32`
        // slice ARE its little-endian byte view, so the byte kernel
        // can run over the words directly.
        // SAFETY: `u32` has no padding and every byte pattern is a
        // valid `u8`; the length covers exactly the slice.
        let bytes =
            unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 4) };
        return !crc_update(!0, bytes);
    }
    // A word's little-endian byte view reinterpreted as a
    // little-endian u32 is the word itself, so the slice-by-8 kernel
    // runs on word pairs directly — no byte buffer, no per-word
    // `update` call.
    let mut crc = !0u32;
    let mut pairs = words.chunks_exact(2);
    for p in &mut pairs {
        crc = crc_step8(p[0] ^ crc, p[1]);
    }
    if let &[w] = pairs.remainder() {
        crc = crc_step4(w ^ crc);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrl_trace::{ctl, CtlOp};

    #[test]
    fn empty_block_round_trips() {
        let bytes = compress_block(&[]);
        assert!(bytes.is_empty());
        assert_eq!(decompress_block(&bytes, 0).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn loopy_trace_compresses_hard() {
        // A loop re-executing the same three-block sequence: after the
        // first iteration the FCM predicts every word, so the whole
        // block approaches one byte per word.
        let mut words = Vec::new();
        for i in 0..1000u32 {
            words.push(0x8003_0100);
            words.push(0x8003_0140);
            words.push(0x8040_0000 + (i % 4) * 8); // recurring data addrs
            words.push(0x8003_0180);
        }
        let bytes = compress_block(&words);
        assert!(
            bytes.len() * 3 <= words.len() * 4,
            "loopy trace must compress ≥3x, got {} bytes for {} words",
            bytes.len(),
            words.len()
        );
        assert_eq!(decompress_block(&bytes, words.len()).unwrap(), words);
    }

    #[test]
    fn mixed_controls_and_addresses_round_trip() {
        let words = vec![
            ctl(CtlOp::CtxSwitch, 3),
            0x0050_0000,
            0x7fff_fff0,
            ctl(CtlOp::KEnter, 8),
            0x8003_0100,
            0x8030_0004,
            ctl(CtlOp::KExit, 0),
            0x0050_0040,
            0x0000_0000, // a (corrupt-trace) zero word must still round-trip
            0xffff_ffff,
            ctl(CtlOp::Eof, 0),
        ];
        let bytes = compress_block(&words);
        assert_eq!(decompress_block(&bytes, words.len()).unwrap(), words);
    }

    #[test]
    fn truncation_and_trailing_bytes_are_detected() {
        let words: Vec<u32> = (0..100).map(|i| 0x8000_0000 + i * 4096).collect();
        let bytes = compress_block(&words);
        assert!(matches!(
            decompress_block(&bytes[..bytes.len() - 1], words.len()),
            Err(CodecError::Truncated)
        ));
        let mut extra = bytes.clone();
        extra.push(0x00);
        assert!(matches!(
            decompress_block(&extra, words.len()),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let junk = vec![0xffu8; 12];
        assert!(matches!(
            decompress_block(&junk, 1),
            Err(CodecError::Overlong)
        ));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32("abcd") little-endian packed as one word.
        let w = u32::from_le_bytes(*b"abcd");
        assert_eq!(crc32_words(&[w]), 0xed82_cd11);
        assert_eq!(crc32_words(&[]), 0);
        assert_eq!(crc32_bytes(b"abcd"), 0xed82_cd11);
    }

    #[test]
    fn incremental_crc_equals_one_shot_over_concatenation() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, data.len()] {
            let mut c = Crc32::new();
            c.update(&data[..split]).update(&data[split..]);
            assert_eq!(c.finish(), crc32_bytes(data), "split={split}");
        }
    }

    /// One-bit-at-a-time reference CRC — the ground truth both the
    /// table and carryless-multiply kernels must match.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = (crc >> 1) ^ (0xedb8_8320 & 0u32.wrapping_sub(crc & 1));
            }
        }
        !crc
    }

    #[test]
    fn crc32_matches_standard_check_value() {
        // The CRC-32/ISO-HDLC check value from the CRC catalogues.
        assert_eq!(crc32_bytes(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32_bitwise(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn fast_crc_paths_match_bitwise_reference_at_every_length() {
        // Deterministic pseudo-random fill (SplitMix64-style), long
        // enough to exercise the 4-lane loop, the single-lane folds,
        // the table tail, and every alignment of the boundaries.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let buf: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(0xd129_6d9c_6a48_83e5).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let lens = (0..130).chain([255, 256, 1023, 1024, 4095, 4096]);
        for len in lens {
            let expect = crc32_bitwise(&buf[..len]);
            assert_eq!(crc32_bytes(&buf[..len]), expect, "len={len}");
            // Split updates must cross the kernel-dispatch boundary
            // without disturbing the running state.
            for split in [0, 1, 15, 16, 63, 64, len] {
                let split = split.min(len);
                let mut c = Crc32::new();
                c.update(&buf[..split]).update(&buf[split..len]);
                assert_eq!(c.finish(), expect, "len={len} split={split}");
            }
        }
    }

    #[test]
    fn crc_over_words_equals_crc_over_their_byte_view() {
        let words: Vec<u32> = (0..997u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(crc32_words(&words), crc32_bytes(&bytes));
        assert_eq!(crc32_words(&words[..7]), crc32_bytes(&bytes[..28]));
    }

    #[test]
    fn oversized_word_count_errors_without_allocating() {
        // A count far beyond the byte length must fail cleanly (and
        // the preallocation is capped by the input size).
        assert!(matches!(
            decompress_block(&[0u8; 8], usize::MAX),
            Err(CodecError::Truncated)
        ));
    }
}
