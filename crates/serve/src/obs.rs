//! Observability for the trace service: the `serve.*` metric family.
//!
//! Traffic counters (connections, requests by opcode, bytes in/out)
//! and per-opcode latency histograms are recorded per request;
//! `serve.inflight` is a gauge whose high-water mark records the
//! deepest the admission gate ever got, and `serve.reject.busy`
//! counts requests the gate refused — together they characterise the
//! server under load the way §4.2 characterises the tracer's time
//! cost. `serve.blocks.decoded`/`.skipped` measure the predicate
//! pushdown: skipped blocks were proven irrelevant from the index
//! alone and never decoded or shipped. The `serve.sub.*` family
//! watches the live tail: subscriptions, pushed events and words, and
//! `serve.sub.evicted` — slow consumers cut at the bounded-queue
//! limit, the push path's analogue of `serve.reject.busy`. Rows in
//! `docs/METRICS.md` are kept honest by the `metrics_doc_sync` test.

use std::sync::Arc;

use wrl_obs::{counter, gauge, global, histogram, Counter, Gauge, Histogram};

use crate::wire::op;

/// Counters, gauges and histograms for the trace service.
#[derive(Clone)]
pub struct ServeObs {
    /// Total connections accepted.
    pub connections: Arc<Counter>,
    /// Requests by opcode: catalog, fetch, query, metrics.
    requests: [Arc<Counter>; 4],
    /// Request-latency histograms by opcode, in nanoseconds.
    latency: [Arc<Histogram>; 4],
    /// Frame bytes read off sockets.
    pub bytes_in: Arc<Counter>,
    /// Frame bytes written to sockets.
    pub bytes_out: Arc<Counter>,
    /// Requests currently executing (high-water = deepest ever).
    pub inflight: Arc<Gauge>,
    /// Requests refused by the admission gate.
    pub reject_busy: Arc<Counter>,
    /// Request frames that were malformed or failed their CRC.
    pub wire_errors: Arc<Counter>,
    /// Blocks decoded to answer queries.
    pub blocks_decoded: Arc<Counter>,
    /// Blocks the pushdown proved irrelevant (never decoded).
    pub blocks_skipped: Arc<Counter>,
    /// Windowed-query blocks served from the decoded-block cache.
    pub cache_hits: Arc<Counter>,
    /// Windowed-query blocks decoded on a cache miss.
    pub cache_misses: Arc<Counter>,
    /// Cross-thread waker firings that interrupted a poll wait.
    pub reactor_wakeups: Arc<Counter>,
    /// Readiness events the pollers delivered to the event loops.
    pub reactor_readiness: Arc<Counter>,
    /// Readability passes that ended with a frame still incomplete.
    pub reactor_partial_read: Arc<Counter>,
    /// Writability passes that flushed only part of a pending frame.
    pub reactor_partial_write: Arc<Counter>,
    /// Connections severed for exhausting a read or write stall budget.
    pub reactor_stalls_cut: Arc<Counter>,
    /// Live-tail subscriptions accepted.
    pub sub_subscribes: Arc<Counter>,
    /// Clean unsubscribes (connection returned to request service).
    pub sub_unsubscribes: Arc<Counter>,
    /// Subscribers attached right now.
    pub sub_active: Arc<Gauge>,
    /// `EVENT` frames pushed to subscribers (end-of-feed markers
    /// included).
    pub sub_events: Arc<Counter>,
    /// Filtered trace words pushed to subscribers.
    pub sub_words: Arc<Counter>,
    /// Subscribers evicted for falling `sub_queue` frames behind.
    pub sub_evicted: Arc<Counter>,
    /// Live-feed words evicted from the front under the
    /// `sub_retention` bound.
    pub sub_retention_evicted: Arc<Counter>,
}

impl ServeObs {
    /// Registers every `serve.*` metric in the global registry.
    pub fn register() -> ServeObs {
        let r = global();
        ServeObs {
            connections: counter!(
                r,
                "serve.connections",
                "connections",
                "§3.4",
                "Connections the trace service accepted."
            ),
            requests: [
                counter!(
                    r,
                    "serve.requests.catalog",
                    "requests",
                    "§3.4",
                    "Catalog requests served."
                ),
                counter!(
                    r,
                    "serve.requests.fetch",
                    "requests",
                    "§3.4",
                    "Raw block-range fetch requests served."
                ),
                counter!(
                    r,
                    "serve.requests.query",
                    "requests",
                    "§3.4",
                    "Windowed predicate-pushdown queries served."
                ),
                counter!(
                    r,
                    "serve.requests.metrics",
                    "requests",
                    "§3.4",
                    "Metrics-snapshot requests served."
                ),
            ],
            latency: [
                histogram!(
                    r,
                    "serve.latency.catalog",
                    "ns",
                    "§4.2",
                    "Catalog request service time."
                ),
                histogram!(
                    r,
                    "serve.latency.fetch",
                    "ns",
                    "§4.2",
                    "Raw block-range fetch service time."
                ),
                histogram!(
                    r,
                    "serve.latency.query",
                    "ns",
                    "§4.2",
                    "Windowed query service time (decode + filter)."
                ),
                histogram!(
                    r,
                    "serve.latency.metrics",
                    "ns",
                    "§4.2",
                    "Metrics-snapshot service time."
                ),
            ],
            bytes_in: counter!(
                r,
                "serve.bytes.in",
                "bytes",
                "§3.4",
                "Frame bytes read from clients."
            ),
            bytes_out: counter!(
                r,
                "serve.bytes.out",
                "bytes",
                "§3.4",
                "Frame bytes written to clients."
            ),
            inflight: gauge!(
                r,
                "serve.inflight",
                "requests",
                "§3.4",
                "Requests executing right now; high-water is the deepest the admission gate got."
            ),
            reject_busy: counter!(
                r,
                "serve.reject.busy",
                "requests",
                "§3.4",
                "Requests answered Busy by the max-inflight admission gate."
            ),
            wire_errors: counter!(
                r,
                "serve.errors.wire",
                "errors",
                "§4.3",
                "Request frames rejected as malformed or CRC-damaged."
            ),
            blocks_decoded: counter!(
                r,
                "serve.blocks.decoded",
                "blocks",
                "§3.2",
                "Store blocks decoded to answer queries."
            ),
            blocks_skipped: counter!(
                r,
                "serve.blocks.skipped",
                "blocks",
                "§3.2",
                "Store blocks predicate pushdown proved irrelevant (never decoded)."
            ),
            cache_hits: counter!(
                r,
                "serve.query.cache.hits",
                "blocks",
                "§3.2",
                "Windowed-query blocks served from the per-archive decoded-block cache."
            ),
            cache_misses: counter!(
                r,
                "serve.query.cache.misses",
                "blocks",
                "§3.2",
                "Windowed-query blocks decoded on a cache miss (and cached)."
            ),
            reactor_wakeups: counter!(
                r,
                "serve.reactor.wakeups",
                "wakeups",
                "§3.4",
                "Cross-thread waker firings that interrupted an event-loop poll wait."
            ),
            reactor_readiness: counter!(
                r,
                "serve.reactor.readiness",
                "events",
                "§3.4",
                "Readiness events the pollers delivered to the event loops."
            ),
            reactor_partial_read: counter!(
                r,
                "serve.reactor.partial.read",
                "reads",
                "§3.4",
                "Readability passes that ended with a request frame still incomplete."
            ),
            reactor_partial_write: counter!(
                r,
                "serve.reactor.partial.write",
                "writes",
                "§3.4",
                "Writability passes that flushed only part of a pending response frame."
            ),
            reactor_stalls_cut: counter!(
                r,
                "serve.reactor.stalls.cut",
                "connections",
                "§3.4",
                "Connections severed for exhausting a mid-frame read or write stall budget."
            ),
            sub_subscribes: counter!(
                r,
                "serve.sub.subscribes",
                "requests",
                "§3.3",
                "Live-tail subscriptions accepted."
            ),
            sub_unsubscribes: counter!(
                r,
                "serve.sub.unsubscribes",
                "requests",
                "§3.3",
                "Clean unsubscribes returning the connection to request service."
            ),
            sub_active: gauge!(
                r,
                "serve.sub.active",
                "subscribers",
                "§3.3",
                "Subscribers attached to live feeds right now."
            ),
            sub_events: counter!(
                r,
                "serve.sub.events",
                "events",
                "§3.3",
                "EVENT frames pushed to live-tail subscribers (end-of-feed markers included)."
            ),
            sub_words: counter!(
                r,
                "serve.sub.words",
                "words",
                "§3.3",
                "Predicate-filtered trace words pushed to live-tail subscribers."
            ),
            sub_evicted: counter!(
                r,
                "serve.sub.evicted",
                "subscribers",
                "§3.3",
                "Slow consumers evicted for falling a full sub_queue of frames behind."
            ),
            sub_retention_evicted: counter!(
                r,
                "serve.sub.retention_evicted",
                "words",
                "§3.3",
                "Live-feed words evicted from the buffer front under the sub_retention bound."
            ),
        }
    }

    fn op_slot(opcode: u8) -> Option<usize> {
        match opcode {
            op::CATALOG => Some(0),
            op::FETCH => Some(1),
            op::QUERY => Some(2),
            op::METRICS => Some(3),
            _ => None,
        }
    }

    /// Counts one served request of the given opcode.
    pub fn count_request(&self, opcode: u8) {
        if let Some(i) = Self::op_slot(opcode) {
            self.requests[i].inc();
        }
    }

    /// Records one request's service time.
    pub fn record_latency(&self, opcode: u8, nanos: u64) {
        if let Some(i) = Self::op_slot(opcode) {
            self.latency[i].record(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_counts_by_opcode() {
        let a = ServeObs::register();
        let b = ServeObs::register();
        let before = a.requests[2].get();
        b.count_request(op::QUERY);
        b.record_latency(op::QUERY, 1234);
        b.count_request(0x55); // unknown opcodes are ignored
        if wrl_obs::recording() {
            assert_eq!(a.requests[2].get(), before + 1);
        }
    }
}
